/* prox_c.h — the stable C ABI of the PROX engine (docs/EMBEDDING.md).
 *
 * A flat, pure-C11 boundary over prox::engine::Engine: opaque handles,
 * integer status codes, and UTF-8 JSON strings in both directions. The
 * JSON request/response documents are exactly the ones the HTTP server
 * speaks (docs/SERVING.md) — a summarize body obtained through this ABI
 * is byte-identical to `prox_cli --json` and to POST /v1/summarize over
 * the same dataset and knobs.
 *
 * Lifecycle:
 *   prox_engine_t* engine = NULL;
 *   char* err = NULL;
 *   if (prox_engine_open("{\"dataset\":{\"family\":\"movielens\"}}",
 *                        &engine, &err) != PROX_STATUS_OK) { ... }
 *   char* body = NULL;
 *   prox_engine_summarize(engine, "{\"w_dist\":0.7}", &body, NULL);
 *   ...
 *   prox_string_free(body);
 *   prox_engine_close(engine);
 *
 * Every char* the library hands out is heap-allocated and owned by the
 * caller; release it with prox_string_free (never plain free — the
 * library and the host may use different allocators).
 *
 * Threading: one engine handle may be shared across threads — the engine
 * serializes domain work internally. Opening and closing handles is not
 * synchronized against concurrent use of the *same* handle: close a
 * handle only after every call on it has returned. A closed handle is
 * remembered and further calls on it fail with
 * PROX_STATUS_INVALID_HANDLE (best effort — the check is precise until
 * the address is recycled by a later open).
 *
 * Versioning: PROX_C_API_VERSION is bumped whenever a declaration
 * changes incompatibly; prox_c_api_version() returns the version the
 * library was built with, so an embedder can verify at runtime that the
 * header it compiled against matches the library it loaded.
 */

#ifndef PROX_C_H_
#define PROX_C_H_

#include <stdint.h>

#ifdef __cplusplus
extern "C" {
#endif

#define PROX_C_API_VERSION 1

#if defined(_WIN32)
#define PROX_C_API __declspec(dllexport)
#elif defined(__GNUC__)
#define PROX_C_API __attribute__((visibility("default")))
#else
#define PROX_C_API
#endif

/* Status codes, mirroring prox::StatusCode 1:1 (common/status.h), plus
 * ABI-boundary codes from 100 up. */
typedef enum prox_status {
  PROX_STATUS_OK = 0,
  PROX_STATUS_INVALID_ARGUMENT = 1,
  PROX_STATUS_NOT_FOUND = 2,
  PROX_STATUS_ALREADY_EXISTS = 3,
  PROX_STATUS_OUT_OF_RANGE = 4,
  PROX_STATUS_FAILED_PRECONDITION = 5,
  PROX_STATUS_UNIMPLEMENTED = 6,
  PROX_STATUS_INTERNAL = 7,
  /* The engine handle is NULL, closed, or was never opened. */
  PROX_STATUS_INVALID_HANDLE = 100,
  /* A required pointer argument was NULL. */
  PROX_STATUS_NULL_ARGUMENT = 101
} prox_status_t;

/* An opaque PROX engine: dataset + session + summary cache + ingest
 * maintainer behind one handle. */
typedef struct prox_engine prox_engine_t;

/* The PROX_C_API_VERSION the library was built with. */
PROX_C_API int32_t prox_c_api_version(void);

/* A static, never-freed name for a status code ("OK", "InvalidArgument",
 * "InvalidHandle", ...). Unknown codes return "Unknown". */
PROX_C_API const char* prox_status_name(prox_status_t status);

/* Opens an engine from a JSON config:
 *   {"dataset": {"family": "movielens" | "wikipedia" | "ddp",
 *                "users": N, "groups": N, "seed": N}
 *             | {"snapshot": "/path/to/file.proxsnap"},
 *    "cache_mb": N}
 * All fields optional; NULL or "" boots the default MovieLens demo
 * dataset. On success *out_engine receives the handle. On failure, if
 * out_error_json is non-NULL, *out_error_json receives the canonical
 * error document ({"error":{"code","message"}}, newline-terminated);
 * free it with prox_string_free. */
PROX_C_API prox_status_t prox_engine_open(const char* config_json,
                                          prox_engine_t** out_engine,
                                          char** out_error_json);

/* Closes the engine and frees everything it owns. NULL is a no-op
 * (PROX_STATUS_OK); a handle that was already closed (or never opened)
 * is rejected with PROX_STATUS_INVALID_HANDLE and not touched. */
PROX_C_API prox_status_t prox_engine_close(prox_engine_t* engine);

/* The five PROX operations. Request/response documents are the
 * docs/SERVING.md schemas; *out_response_json always receives a complete
 * newline-terminated JSON document — the success payload when the call
 * returns PROX_STATUS_OK, the canonical error document otherwise (for
 * handle/argument errors, codes >= 100, no document is produced and
 * *out_response_json is set to NULL). Free with prox_string_free. */

/* POST /v1/select: {"all": true} or selection criteria. */
PROX_C_API prox_status_t prox_engine_select(prox_engine_t* engine,
                                            const char* request_json,
                                            char** out_response_json);

/* POST /v1/summarize: Algorithm 1 with the request's knobs, served from
 * the summary cache when possible. If out_cache_hit is non-NULL it
 * receives 1 when the body came from the cache, 0 when it was computed,
 * -1 when the call failed before the cache was consulted. */
PROX_C_API prox_status_t prox_engine_summarize(prox_engine_t* engine,
                                               const char* request_json,
                                               char** out_response_json,
                                               int32_t* out_cache_hit);

/* POST /v1/ingest: one delta batch, optional "resummarize" directive. */
PROX_C_API prox_status_t prox_engine_ingest(prox_engine_t* engine,
                                            const char* request_json,
                                            char** out_response_json);

/* GET /v1/summary/groups: groups + expression of the latest summary. */
PROX_C_API prox_status_t prox_engine_summary_groups(
    prox_engine_t* engine, char** out_response_json);

/* POST /v1/evaluate: {"on": "summary"|"selection", "assignment": {...}}. */
PROX_C_API prox_status_t prox_engine_evaluate(prox_engine_t* engine,
                                              const char* request_json,
                                              char** out_response_json);

/* The current dataset fingerprint (hex string, no newline). */
PROX_C_API prox_status_t prox_engine_fingerprint(prox_engine_t* engine,
                                                 char** out_fingerprint);

/* Frees a string returned by this library. NULL is a no-op. */
PROX_C_API void prox_string_free(char* str);

#ifdef __cplusplus
} /* extern "C" */
#endif

#endif /* PROX_C_H_ */
