/// \file Experiment E11 — Table 5.1: provenance structure and
/// summarization parameters of the three datasets, regenerated from the
/// actual generator outputs (structure sample, constraints, aggregation,
/// valuation class, φ and VAL-FUNC).

#include <cstdio>
#include <string>

#include "harness/bench_util.h"
#include "provenance/aggregate_expr.h"
#include "provenance/ddp_expr.h"

using namespace prox;
using namespace prox::bench;

namespace {

std::string StructureSample(const Dataset& ds, size_t max_len = 110) {
  std::string text = ds.provenance->ToString(*ds.registry);
  if (text.size() > max_len) {
    // Trim on a UTF-8 character boundary (skip continuation bytes).
    size_t cut = max_len;
    while (cut > 0 &&
           (static_cast<unsigned char>(text[cut]) & 0xC0) == 0x80) {
      --cut;
    }
    text = text.substr(0, cut) + " …";
  }
  return text;
}

void Describe(const char* name, const Dataset& ds,
              const char* constraints_desc, const char* phi_desc,
              const char* valuation_desc) {
  std::printf("Dataset: %s\n", name);
  std::printf("  structure:    %s\n", StructureSample(ds).c_str());
  std::printf("  size:         %lld annotations, %zu domains\n",
              static_cast<long long>(ds.provenance->Size()),
              ds.domains.size());
  std::printf("  constraints:  %s\n", constraints_desc);
  std::printf("  aggregation:  %s\n", AggKindToString(ds.agg));
  std::printf("  valuations:   %s\n", ds.valuation_class->name().c_str());
  std::printf("  (configured): %s\n", valuation_desc);
  std::printf("  phi:          %s\n", phi_desc);
  std::printf("  VAL-FUNC:     %s\n\n", ds.val_func->name().c_str());
}

}  // namespace

int main() {
  std::printf("Table 5.1 — provenance and summarization parameters per "
              "dataset (scale %.2f)\n\n",
              BenchScale());

  Dataset movies = MakeDataset(DatasetKind::kMovieLens, 1);
  Describe("MovieLens (movies)", movies,
           "users share one of Gender / AgeRange / Occupation / ZipCode; "
           "movies share Genre or Year; years share Decade",
           "logical OR",
           "Cancel Single Annotation + Cancel Single Attribute supported");

  Dataset wiki = MakeDataset(DatasetKind::kWikipedia, 1);
  Describe("Wikipedia", wiki,
           "users share one of IsRegistered / Gender / ContributionLevel; "
           "pages share a WordNet taxonomy ancestor (below the root)",
           "logical OR",
           "taxonomy-consistent Cancel Single Annotation");

  Dataset ddp = MakeDataset(DatasetKind::kDdp, 1);
  Describe("DDP", ddp,
           "cost variables within cost tolerance; DB variables freely "
           "(per-structure semiring mapping)",
           "DB vars: logical OR; cost vars: MAX (≡ OR on 0/1 bits)",
           "Cancel Single Attribute (e.g. all cost vars of equal cost)");
  return 0;
}
