/// \file Experiment E2 — Figure 6.1b: average distance as a function of
/// TARGET-SIZE on the MovieLens dataset (wDist = 1, TARGET-DIST cancelled).

#include "harness/experiments.h"

int main() {
  prox::bench::RunTargetSizeExperiment(prox::bench::DatasetKind::kMovieLens,
                                       "MovieLens", "Figure 6.1b",
                                       /*num_seeds=*/3);
  return 0;
}
