/// \file Experiment E9 — Figures 6.8a and 6.9a: the wDist experiment on
/// the DDP dataset (Cancel-Single-Attribute valuations, tropical
/// aggregation, at most 10 steps). No Clustering competitor: feature
/// vectors cannot be constructed for DDP provenance (§6.10).

#include "harness/experiments.h"

int main() {
  prox::bench::RunWdistExperiment(prox::bench::DatasetKind::kDdp, "DDP",
                                  "Figures 6.8a / 6.9a",
                                  /*max_steps=*/10, /*num_seeds=*/3);
  return 0;
}
