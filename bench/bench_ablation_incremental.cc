/// \file Experiment E17 — incremental vs naive candidate scoring: same
/// choices by construction (verified by the test suite), so the only
/// question is wall time. Measures full summarization runs (wDist = 1,
/// 30 steps) at growing input sizes with both scorers.

#include <cstdio>

#include "datasets/movielens.h"
#include "harness/bench_util.h"
#include "summarize/distance.h"
#include "summarize/summarizer.h"

using namespace prox;
using namespace prox::bench;

namespace {

double RunOnce(int users, SummarizerOptions::Incremental mode,
               int64_t* final_size) {
  MovieLensConfig config;
  config.num_users = users;
  config.num_movies = 10;
  config.ratings_per_user = 4;
  config.seed = 11;
  Dataset ds = MovieLensGenerator::Generate(config);
  auto valuations = ds.valuation_class->Generate(*ds.provenance, ds.ctx);
  EnumeratedDistance oracle(ds.provenance.get(), ds.registry.get(),
                            ds.val_func.get(), valuations);
  SummarizerOptions options;
  options.w_dist = 1.0;
  options.w_size = 0.0;
  options.max_steps = 30;
  options.incremental = mode;
  options.phi = ds.phi;
  Summarizer s(ds.provenance.get(), ds.registry.get(), &ds.ctx,
               &ds.constraints, &oracle, &valuations, options);
  auto outcome = s.Run();
  if (!outcome.ok()) return 0.0;
  if (final_size != nullptr) *final_size = outcome.value().final_size;
  return outcome.value().total_nanos / 1e6;
}

}  // namespace

int main() {
  std::printf("Incremental-scoring ablation (MovieLens) — identical "
              "choices, different cost\n");
  std::printf("wDist = 1, 30 steps, scale %.2f\n", BenchScale());

  TablePrinter table({"users", "naive-ms", "incremental-ms", "speedup",
                      "size(=)"});
  table.PrintTitle("Summarization wall time per scorer");
  table.PrintHeader();
  for (int users : {16, 24, 32, 40}) {
    int scaled = Scaled(users);
    int64_t size_naive = 0, size_fast = 0;
    double naive =
        RunOnce(scaled, SummarizerOptions::Incremental::kOff, &size_naive);
    double fast = RunOnce(scaled, SummarizerOptions::Incremental::kEuclidean,
                          &size_fast);
    table.PrintRow({std::to_string(scaled), Cell(naive, 2), Cell(fast, 2),
                    Cell(fast > 0 ? naive / fast : 0.0, 2),
                    size_naive == size_fast ? "yes" : "NO"});
  }
  return 0;
}
