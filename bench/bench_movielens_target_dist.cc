/// \file Experiment E3 — Figure 6.2b: average size as a function of
/// TARGET-DIST on the MovieLens dataset (wDist = 0, TARGET-SIZE cancelled).

#include "harness/experiments.h"

int main() {
  prox::bench::RunTargetDistExperiment(prox::bench::DatasetKind::kMovieLens,
                                       "MovieLens", "Figure 6.2b",
                                       /*num_seeds=*/3);
  return 0;
}
