/// \file bench_serve_throughput.cc
/// \brief Loadgen for prox::serve: starts the server in-process on an
/// ephemeral loopback port, drives N concurrent clients through two waves
/// of identical `POST /v1/summarize` requests, and reports per-wave
/// p50/p99 latency plus the SummaryCache hit rate.
///
/// Wave 1 ("cold") pays one Algorithm 1 run — the router single-flights
/// concurrent identical requests, so every other request in the wave is
/// already a cache hit. Wave 2 ("cached") is hits only and must be faster.
/// All bodies across both waves are checked byte-identical (the cache
/// contract; exits 1 on violation).
///
/// Flags: --clients=N (8) --requests=N per client per wave (16)
///        --threads=N server workers (4) --cache-mb=N (64)
///        --max-steps=N summarize knob (8) --slo-ms=N p99 gate (250)
///
/// `--json` is the committed-baseline mode (BENCH_serve.json): after the
/// waves it reads the server-side p50/p99 from the per-endpoint
/// `prox_serve_route_duration_nanos` rolling-window gauges, self-checks
/// them against the client-side measurements (±15%, with an absolute
/// floor for the sub-millisecond cached requests where loopback connect
/// overhead dominates), verifies the histogram sample count equals the
/// requests served, gates p99 on the `--slo-ms` objective, and prints the
/// result as JSON on stdout (human-readable lines move to stderr). Any
/// violated contract exits 1.
///
/// `--json-net` is the epoll-transport baseline (BENCH_net.json,
/// docs/NET.md), two phases:
///  - wave: an epoll prox::net server faces `--wave-connections` (10000)
///    concurrent keep-alive connections. The loadgen runs in a forked
///    child (this box caps RLIMIT_NOFILE at 20000 — server + client fds
///    cannot share one process) re-exec'd as `--wave-client`: it ramps
///    non-blocking connects in batches, confirms each with
///    EPOLLOUT + SO_ERROR, then sweeps two rounds of /healthz over every
///    connection with a bounded in-flight window. Gates: every connect
///    established, zero request errors, client p99 <= --slo-ms.
///  - fanout: 12 summarize bodies are warmed, persisted as a PROXSNAP
///    snapshot, and three snapshot-booted replicas behind a
///    consistent-hash Balancer serve the cached set against one replica
///    serving it alone. Gates: zero failures, every response a cache hit
///    (the affinity contract), and >= 2x throughput — waived, and
///    recorded as waived, when the host has fewer than 4 hardware
///    threads (replica fan-out cannot beat a single replica for CPU
///    when there is only one core to share).

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "datasets/movielens.h"
#include "obs/metrics.h"
#include "engine/engine.h"
#include "net/balancer.h"
#include "net/epoll_server.h"
#include "serve/client.h"
#include "serve/router.h"
#include "serve/server.h"

using namespace prox;

namespace {

int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double Percentile(std::vector<int64_t> nanos, double p) {
  if (nanos.empty()) return 0.0;
  std::sort(nanos.begin(), nanos.end());
  size_t index = static_cast<size_t>(p * (nanos.size() - 1));
  return static_cast<double>(nanos[index]);
}

struct WaveResult {
  std::vector<int64_t> latencies_nanos;
  std::set<std::string> distinct_bodies;
  int failures = 0;
  int64_t wall_nanos = 0;
};

WaveResult RunWave(int port, int clients, int requests,
                   const std::string& body) {
  WaveResult result;
  std::mutex mu;
  std::vector<std::thread> threads;
  int64_t wave_start = NowNanos();
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      (void)c;
      std::vector<int64_t> local_latencies;
      std::set<std::string> local_bodies;
      int local_failures = 0;
      for (int r = 0; r < requests; ++r) {
        int64_t start = NowNanos();
        Result<serve::ClientResponse> response = serve::Fetch(
            "127.0.0.1", port, "POST", "/v1/summarize", body,
            /*timeout_ms=*/60000);
        int64_t elapsed = NowNanos() - start;
        if (!response.ok() || response.value().status != 200) {
          ++local_failures;
          continue;
        }
        local_latencies.push_back(elapsed);
        local_bodies.insert(response.value().body);
      }
      std::lock_guard<std::mutex> lock(mu);
      result.latencies_nanos.insert(result.latencies_nanos.end(),
                                    local_latencies.begin(),
                                    local_latencies.end());
      result.distinct_bodies.insert(local_bodies.begin(), local_bodies.end());
      result.failures += local_failures;
    });
  }
  for (std::thread& thread : threads) thread.join();
  result.wall_nanos = NowNanos() - wave_start;
  return result;
}

void PrintWave(std::FILE* out, const char* label, const WaveResult& wave) {
  std::fprintf(out,
               "%-8s requests=%zu failures=%d p50=%.0fus p99=%.0fus "
               "wall=%.1fms throughput=%.0f req/s\n",
               label, wave.latencies_nanos.size(), wave.failures,
               Percentile(wave.latencies_nanos, 0.50) / 1e3,
               Percentile(wave.latencies_nanos, 0.99) / 1e3,
               static_cast<double>(wave.wall_nanos) / 1e6,
               wave.latencies_nanos.empty()
                   ? 0.0
                   : static_cast<double>(wave.latencies_nanos.size()) /
                         (static_cast<double>(wave.wall_nanos) / 1e9));
}

/// Server-side view of the /v1/summarize route, read from the metrics
/// registry after RouteStats::ExportGauges().
struct ServerSideStats {
  uint64_t histogram_count = 0;
  double p50_nanos = 0.0;
  double p99_nanos = 0.0;
  double burn_rate = 0.0;
  bool found = false;
};

ServerSideStats ReadServerSideStats() {
  static const char kLabels[] = "route=\"/v1/summarize\"";
  ServerSideStats stats;
  obs::MetricsSnapshot snapshot = obs::MetricsRegistry::Default().Snapshot();
  const obs::HistogramSample* histogram =
      snapshot.FindHistogram("prox_serve_route_duration_nanos", kLabels);
  const obs::GaugeSample* p50 =
      snapshot.FindGauge("prox_serve_route_latency_p50_nanos", kLabels);
  const obs::GaugeSample* p99 =
      snapshot.FindGauge("prox_serve_route_latency_p99_nanos", kLabels);
  const obs::GaugeSample* burn =
      snapshot.FindGauge("prox_serve_route_slo_burn_rate", kLabels);
  if (histogram == nullptr || p50 == nullptr || p99 == nullptr ||
      burn == nullptr) {
    return stats;
  }
  stats.histogram_count = histogram->count;
  stats.p50_nanos = p50->value;
  stats.p99_nanos = p99->value;
  stats.burn_rate = burn->value;
  stats.found = true;
  return stats;
}

/// Server-side and client-side measure the same requests from opposite
/// ends of the loopback socket: they must agree within 15%, plus an
/// absolute floor for sub-millisecond samples (cache hits handle in a few
/// microseconds server-side while the client pays ~0.5 ms of connect +
/// write + read per request; the floor absorbs that overhead with
/// headroom for loaded machines).
bool WithinTolerance(double server_nanos, double client_nanos) {
  const double tolerance =
      std::max(0.15 * client_nanos, 2.0 * 1000.0 * 1000.0);  // 2 ms floor
  return std::abs(server_nanos - client_nanos) <= tolerance;
}

// ---------------------------------------------------------------------------
// Keep-alive connection wave + snapshot fan-out (--json-net, docs/NET.md)
// ---------------------------------------------------------------------------

bool SendAll(int fd, const std::string& data) {
  size_t offset = 0;
  while (offset < data.size()) {
    ssize_t n = send(fd, data.data() + offset, data.size() - offset,
                     MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    offset += static_cast<size_t>(n);
  }
  return true;
}

/// Reads exactly one HTTP response (headers + Content-Length body) off a
/// keep-alive connection. One request is in flight per connection at a
/// time, so nothing past the body can arrive early.
bool ReadOneResponse(int fd) {
  std::string buf;
  size_t header_end = std::string::npos;
  long content_length = -1;
  char chunk[8192];
  while (true) {
    ssize_t n = recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    buf.append(chunk, static_cast<size_t>(n));
    if (header_end == std::string::npos) {
      size_t pos = buf.find("\r\n\r\n");
      if (pos == std::string::npos) continue;
      header_end = pos + 4;
      std::string headers = buf.substr(0, header_end);
      for (char& c : headers) c = static_cast<char>(std::tolower(c));
      size_t marker = headers.find("content-length:");
      if (marker == std::string::npos) return false;
      content_length = std::strtol(headers.c_str() + marker + 15, nullptr, 10);
    }
    if (content_length >= 0 &&
        buf.size() >= header_end + static_cast<size_t>(content_length)) {
      return true;
    }
  }
}

/// The forked loadgen: ramps `connections` non-blocking connects in
/// batches (each confirmed via EPOLLOUT + SO_ERROR before the next batch
/// goes out), then sweeps `rounds` rounds of GET /healthz across every
/// connection with at most `window` requests in flight. Emits a JSON
/// report on stdout for the parent to parse; exit 0 only if every
/// connection established and every request round-tripped.
int RunWaveClient(int port, long connections, long batch, long window,
                  long rounds) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);

  int epoll_fd = epoll_create1(0);
  if (epoll_fd < 0) {
    std::perror("epoll_create1");
    return 1;
  }
  std::vector<int> fds;
  fds.reserve(static_cast<size_t>(connections));
  long errors = 0;
  const int64_t ramp_start = NowNanos();
  for (long done = 0; done < connections && errors == 0; done += batch) {
    const long this_batch = std::min(batch, connections - done);
    std::vector<int> pending;
    pending.reserve(static_cast<size_t>(this_batch));
    for (long i = 0; i < this_batch; ++i) {
      int fd = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
      if (fd < 0) {
        ++errors;
        continue;
      }
      int rc = connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                       sizeof(addr));
      if (rc == 0) {
        fds.push_back(fd);
        continue;
      }
      if (errno != EINPROGRESS) {
        close(fd);
        ++errors;
        continue;
      }
      epoll_event event{};
      event.events = EPOLLOUT;
      event.data.fd = fd;
      if (epoll_ctl(epoll_fd, EPOLL_CTL_ADD, fd, &event) != 0) {
        close(fd);
        ++errors;
        continue;
      }
      pending.push_back(fd);
    }
    size_t resolved = 0;
    while (resolved < pending.size()) {
      epoll_event events[256];
      int n = epoll_wait(epoll_fd, events, 256, 10000);
      if (n <= 0) break;  // stalled ramp; the shortfall counts as errors
      for (int i = 0; i < n; ++i) {
        int fd = events[i].data.fd;
        epoll_ctl(epoll_fd, EPOLL_CTL_DEL, fd, nullptr);
        ++resolved;
        int sock_error = 0;
        socklen_t len = sizeof(sock_error);
        if (getsockopt(fd, SOL_SOCKET, SO_ERROR, &sock_error, &len) != 0 ||
            sock_error != 0) {
          close(fd);
          ++errors;
        } else {
          fds.push_back(fd);
        }
      }
    }
    errors += static_cast<long>(pending.size() - resolved);
  }
  const double ramp_ms = static_cast<double>(NowNanos() - ramp_start) / 1e6;

  // The non-blocking phase is over: the sweep below keeps exactly one
  // request in flight per connection, so blocking send/recv is exact.
  for (int fd : fds) {
    int flags = fcntl(fd, F_GETFL, 0);
    if (flags >= 0) fcntl(fd, F_SETFL, flags & ~O_NONBLOCK);
  }

  const std::string request =
      "GET /healthz HTTP/1.1\r\nHost: bench\r\n\r\n";
  std::vector<int64_t> latencies;
  latencies.reserve(fds.size() * static_cast<size_t>(rounds));
  const int64_t sweep_start = NowNanos();
  for (long round = 0; round < rounds; ++round) {
    for (size_t begin = 0; begin < fds.size();
         begin += static_cast<size_t>(window)) {
      const size_t end =
          std::min(begin + static_cast<size_t>(window), fds.size());
      std::vector<int64_t> starts(end - begin);
      for (size_t i = begin; i < end; ++i) {
        starts[i - begin] = NowNanos();
        if (!SendAll(fds[i], request)) ++errors;
      }
      for (size_t i = begin; i < end; ++i) {
        if (!ReadOneResponse(fds[i])) {
          ++errors;
          continue;
        }
        latencies.push_back(NowNanos() - starts[i - begin]);
      }
    }
  }
  const double sweep_ms = static_cast<double>(NowNanos() - sweep_start) / 1e6;

  std::printf(
      "{\"connections\": %ld, \"established\": %zu, \"errors\": %ld, "
      "\"rounds\": %ld, \"requests\": %zu, \"p50_ns\": %.0f, "
      "\"p99_ns\": %.0f, \"ramp_ms\": %.1f, \"sweep_ms\": %.1f}\n",
      connections, fds.size(), errors, rounds, latencies.size(),
      Percentile(latencies, 0.50), Percentile(latencies, 0.99), ramp_ms,
      sweep_ms);
  for (int fd : fds) close(fd);
  close(epoll_fd);
  return (errors == 0 && static_cast<long>(fds.size()) == connections) ? 0
                                                                       : 1;
}

struct NetWaveResult {
  long connections = 0;
  long established = 0;
  long errors = -1;  ///< -1: the child never reported
  long requests = 0;
  double p50_ns = 0.0;
  double p99_ns = 0.0;
  double ramp_ms = 0.0;
  double sweep_ms = 0.0;
  bool pass = false;
};

/// Wave phase of --json-net: epoll server in this process, loadgen child
/// forked + re-exec'd with --wave-client, its JSON report read off a pipe.
NetWaveResult RunNetWave(long connections, long slo_ms) {
  NetWaveResult result;
  result.connections = connections;

  MovieLensConfig config;
  config.num_users = 25;
  config.num_movies = 8;
  config.seed = 99;
  engine::Engine::Options engine_options;
  engine_options.cache.max_bytes = 16 * 1024 * 1024;
  std::unique_ptr<engine::Engine> eng = engine::Engine::FromDataset(
      MovieLensGenerator::Generate(config), engine_options);
  serve::Router router(eng.get());

  net::EpollServer::Options options;
  options.port = 0;
  options.shards = 2;
  options.handler_threads = 4;
  options.max_inflight = static_cast<int>(connections) + 64;
  // The whole wave must fit inside the budgets: reaping mid-wave would
  // turn held-open keep-alive connections into spurious errors.
  options.read_timeout_ms = 120000;
  options.idle_timeout_ms = 120000;
  net::EpollServer server(options,
                          [&router](const serve::HttpRequest& request) {
                            return router.Handle(request);
                          });
  if (Status status = server.Start(); !status.ok()) {
    std::fprintf(stderr, "wave: server start failed: %s\n",
                 status.ToString().c_str());
    return result;
  }

  std::string port_arg = "--port=" + std::to_string(server.port());
  std::string conn_arg = "--wave-connections=" + std::to_string(connections);
  int pipe_fds[2];
  if (pipe(pipe_fds) != 0) {
    std::perror("pipe");
    server.Stop();
    return result;
  }
  pid_t pid = fork();
  if (pid < 0) {
    std::perror("fork");
    close(pipe_fds[0]);
    close(pipe_fds[1]);
    server.Stop();
    return result;
  }
  if (pid == 0) {
    dup2(pipe_fds[1], STDOUT_FILENO);
    close(pipe_fds[0]);
    close(pipe_fds[1]);
    char self[] = "/proc/self/exe";
    char mode[] = "--wave-client";
    char* child_argv[] = {self, mode, port_arg.data(), conn_arg.data(),
                          nullptr};
    execv(self, child_argv);
    _exit(127);
  }
  close(pipe_fds[1]);
  std::string child_report;
  char buf[4096];
  ssize_t n;
  while ((n = read(pipe_fds[0], buf, sizeof(buf))) > 0) {
    child_report.append(buf, static_cast<size_t>(n));
  }
  close(pipe_fds[0]);
  int wait_status = 0;
  waitpid(pid, &wait_status, 0);
  server.Stop();

  Result<JsonValue> doc = ParseJson(child_report);
  if (!doc.ok()) {
    std::fprintf(stderr, "wave: unparseable child report: %s\n",
                 child_report.c_str());
    return result;
  }
  auto int_field = [&doc](const char* key) -> long {
    const JsonValue* value = doc.value().Find(key);
    return value == nullptr ? -1 : static_cast<long>(value->int_value());
  };
  auto double_field = [&doc](const char* key) -> double {
    const JsonValue* value = doc.value().Find(key);
    return value == nullptr ? 0.0 : value->double_value();
  };
  result.established = int_field("established");
  result.errors = int_field("errors");
  result.requests = int_field("requests");
  result.p50_ns = double_field("p50_ns");
  result.p99_ns = double_field("p99_ns");
  result.ramp_ms = double_field("ramp_ms");
  result.sweep_ms = double_field("sweep_ms");
  result.pass = WIFEXITED(wait_status) && WEXITSTATUS(wait_status) == 0 &&
                result.established == connections && result.errors == 0 &&
                result.p99_ns <= static_cast<double>(slo_ms) * 1e6;
  std::fprintf(stderr,
               "wave: connections=%ld established=%ld errors=%ld "
               "requests=%ld p50=%.0fus p99=%.0fus ramp=%.0fms "
               "sweep=%.0fms %s\n",
               connections, result.established, result.errors,
               result.requests, result.p50_ns / 1e3, result.p99_ns / 1e3,
               result.ramp_ms, result.sweep_ms,
               result.pass ? "PASS" : "FAIL");
  return result;
}

struct FanoutResult {
  long requests = 0;
  long failures = 0;
  long cache_misses = 0;
  double single_rps = 0.0;
  double fanned_rps = 0.0;
  double speedup = 0.0;
  unsigned hardware_threads = 0;
  bool gate_waived = false;
  bool pass = false;
};

/// One replica of the fan-out fleet: engine booted from the shared
/// snapshot behind Router + EpollServer.
struct FanoutReplica {
  std::unique_ptr<engine::Engine> engine;
  std::unique_ptr<serve::Router> router;
  std::unique_ptr<net::EpollServer> server;
};

double MeasureBalancerRps(net::Balancer& balancer,
                          const std::vector<std::string>& bodies, int threads,
                          int per_thread, std::atomic<long>* failures,
                          std::atomic<long>* misses) {
  std::vector<std::thread> workers;
  const int64_t start = NowNanos();
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < per_thread; ++i) {
        serve::HttpRequest request;
        request.method = "POST";
        request.target = "/v1/summarize";
        request.version = "HTTP/1.1";
        request.body = bodies[static_cast<size_t>(t + i) % bodies.size()];
        serve::HttpResponse response = balancer.Handle(request);
        if (response.status != 200) {
          failures->fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        bool hit = false;
        for (const auto& [name, value] : response.headers) {
          if (name == "x-prox-cache" && value == "hit") hit = true;
        }
        if (!hit) misses->fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  const double wall_seconds =
      static_cast<double>(NowNanos() - start) / 1e9;
  return wall_seconds <= 0.0
             ? 0.0
             : static_cast<double>(threads) * per_thread / wall_seconds;
}

/// Fanout phase of --json-net: warm 12 summarize bodies, persist the
/// snapshot, boot 3 replicas from it, and race a 3-replica Balancer
/// against a ring of one over the cached set.
FanoutResult RunNetFanout() {
  FanoutResult result;
  result.hardware_threads = std::thread::hardware_concurrency();
  result.gate_waived = result.hardware_threads < 4;

  std::vector<std::string> bodies;
  for (int i = 0; i < 12; ++i) {
    bodies.push_back("{\"w_dist\":0." + std::to_string(i % 9 + 1) +
                     ",\"max_steps\":" + std::to_string(3 + i) + "}");
  }

  MovieLensConfig config;
  config.num_users = 25;
  config.num_movies = 8;
  config.seed = 99;
  engine::Engine::Options engine_options;
  engine_options.cache.max_bytes = 64 * 1024 * 1024;
  std::unique_ptr<engine::Engine> warm = engine::Engine::FromDataset(
      MovieLensGenerator::Generate(config), engine_options);
  for (const std::string& body : bodies) {
    engine::Engine::Response response = warm->HandleSummarize(body);
    if (!response.ok()) {
      std::fprintf(stderr, "fanout: warmup summarize failed: %s\n",
                   response.status.ToString().c_str());
      return result;
    }
  }
  const std::string snapshot_path =
      "/tmp/prox_bench_net_" + std::to_string(getpid()) + ".proxsnap";
  if (Status status = warm->PersistSnapshot(snapshot_path); !status.ok()) {
    std::fprintf(stderr, "fanout: snapshot persist failed: %s\n",
                 status.ToString().c_str());
    return result;
  }
  warm.reset();

  std::vector<std::unique_ptr<FanoutReplica>> replicas;
  std::vector<std::string> endpoints;
  for (int i = 0; i < 3; ++i) {
    auto replica = std::make_unique<FanoutReplica>();
    engine::Engine::Options replica_options;
    replica_options.dataset.snapshot_path = snapshot_path;
    replica_options.cache.max_bytes = 64 * 1024 * 1024;
    Result<std::unique_ptr<engine::Engine>> booted =
        engine::Engine::Create(replica_options);
    if (!booted.ok()) {
      std::fprintf(stderr, "fanout: replica boot failed: %s\n",
                   booted.status().ToString().c_str());
      std::remove(snapshot_path.c_str());
      return result;
    }
    replica->engine = std::move(booted).value();
    replica->router =
        std::make_unique<serve::Router>(replica->engine.get());
    net::EpollServer::Options server_options;
    server_options.port = 0;
    server_options.shards = 1;
    server_options.handler_threads = 2;
    replica->server = std::make_unique<net::EpollServer>(
        server_options, [router = replica->router.get()](
                            const serve::HttpRequest& request) {
          return router->Handle(request);
        });
    if (Status status = replica->server->Start(); !status.ok()) {
      std::fprintf(stderr, "fanout: replica start failed: %s\n",
                   status.ToString().c_str());
      std::remove(snapshot_path.c_str());
      return result;
    }
    endpoints.push_back("127.0.0.1:" +
                        std::to_string(replica->server->port()));
    replicas.push_back(std::move(replica));
  }

  constexpr int kThreads = 4;
  constexpr int kPerThread = 150;
  std::atomic<long> failures{0};
  std::atomic<long> misses{0};

  net::Balancer::Options single_options;
  single_options.replicas = {endpoints[0]};
  single_options.health_interval_ms = 0;
  net::Balancer single(single_options);
  if (single.Start().ok()) {
    result.single_rps = MeasureBalancerRps(single, bodies, kThreads,
                                           kPerThread, &failures, &misses);
  }
  single.Stop();

  net::Balancer::Options fan_options;
  fan_options.replicas = endpoints;
  fan_options.health_interval_ms = 0;
  net::Balancer fanned(fan_options);
  if (fanned.Start().ok()) {
    result.fanned_rps = MeasureBalancerRps(fanned, bodies, kThreads,
                                           kPerThread, &failures, &misses);
  }
  fanned.Stop();

  for (auto& replica : replicas) replica->server->Stop();
  std::remove(snapshot_path.c_str());

  result.requests = 2L * kThreads * kPerThread;
  result.failures = failures.load();
  result.cache_misses = misses.load();
  result.speedup = result.single_rps <= 0.0
                       ? 0.0
                       : result.fanned_rps / result.single_rps;
  result.pass = result.failures == 0 && result.cache_misses == 0 &&
                result.single_rps > 0.0 && result.fanned_rps > 0.0 &&
                (result.speedup >= 2.0 || result.gate_waived);
  std::fprintf(stderr,
               "fanout: single=%.0f req/s fanned(3)=%.0f req/s "
               "speedup=%.2fx failures=%ld misses=%ld hw_threads=%u%s %s\n",
               result.single_rps, result.fanned_rps, result.speedup,
               result.failures, result.cache_misses, result.hardware_threads,
               result.gate_waived ? " (2x gate waived: <4 threads)" : "",
               result.pass ? "PASS" : "FAIL");
  return result;
}

/// --json-net: both phases, one committed JSON document (BENCH_net.json).
int RunJsonNet(long wave_connections, long slo_ms) {
  NetWaveResult wave = RunNetWave(wave_connections, slo_ms);
  FanoutResult fanout = RunNetFanout();
  const bool ok = wave.pass && fanout.pass;
  std::printf(
      "{\n"
      "  \"bench\": \"bench_serve_throughput --json-net\",\n"
      "  \"workload\": \"wave: %ld keep-alive connections x 2 rounds of "
      "GET /healthz against one epoll replica; fanout: 12 cached "
      "summarize bodies over 3 snapshot-booted replicas behind the "
      "consistent-hash balancer vs a ring of one\",\n"
      "  \"contract\": \"wave: every connect established, zero errors, "
      "client p99 <= slo_ms; fanout: zero failures, every response a "
      "cache hit, speedup >= 2.0 unless hardware_threads < 4 (waiver "
      "recorded)\",\n"
      "  \"wave\": {\n"
      "    \"connections\": %ld,\n"
      "    \"established\": %ld,\n"
      "    \"errors\": %ld,\n"
      "    \"requests\": %ld,\n"
      "    \"p50_ms\": %.3f,\n"
      "    \"p99_ms\": %.3f,\n"
      "    \"ramp_ms\": %.1f,\n"
      "    \"sweep_ms\": %.1f,\n"
      "    \"slo_ms\": %ld,\n"
      "    \"pass\": %s\n"
      "  },\n"
      "  \"fanout\": {\n"
      "    \"replicas\": 3,\n"
      "    \"requests\": %ld,\n"
      "    \"failures\": %ld,\n"
      "    \"cache_misses\": %ld,\n"
      "    \"single_rps\": %.0f,\n"
      "    \"fanned_rps\": %.0f,\n"
      "    \"speedup\": %.2f,\n"
      "    \"hardware_threads\": %u,\n"
      "    \"gate_waived\": %s,\n"
      "    \"pass\": %s\n"
      "  },\n"
      "  \"ok\": %s\n"
      "}\n",
      wave_connections, wave.connections, wave.established, wave.errors,
      wave.requests, wave.p50_ns / 1e6, wave.p99_ns / 1e6, wave.ramp_ms,
      wave.sweep_ms, slo_ms, wave.pass ? "true" : "false", fanout.requests,
      fanout.failures, fanout.cache_misses, fanout.single_rps,
      fanout.fanned_rps, fanout.speedup, fanout.hardware_threads,
      fanout.gate_waived ? "true" : "false", fanout.pass ? "true" : "false",
      ok ? "true" : "false");
  return ok ? 0 : 1;
}

long IntFlag(const std::string& arg, const char* flag, long fallback,
             bool* matched) {
  std::string prefix = std::string(flag) + "=";
  if (arg.rfind(prefix, 0) != 0) {
    *matched = false;
    return fallback;
  }
  *matched = true;
  return std::strtol(arg.c_str() + prefix.size(), nullptr, 10);
}

}  // namespace

int main(int argc, char** argv) {
  long clients = 8;
  long requests = 16;
  long threads = 4;
  long cache_mb = 64;
  long max_steps = 8;
  long slo_ms = 250;
  long wave_connections = 10000;
  long wave_port = 0;
  long wave_batch = 256;
  long wave_window = 512;
  bool json_mode = false;
  bool json_net_mode = false;
  bool wave_client_mode = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json_mode = true;
      continue;
    }
    if (arg == "--json-net") {
      json_net_mode = true;
      continue;
    }
    if (arg == "--wave-client") {
      wave_client_mode = true;
      continue;
    }
    bool matched = false;
    clients = IntFlag(arg, "--clients", clients, &matched);
    if (matched) continue;
    requests = IntFlag(arg, "--requests", requests, &matched);
    if (matched) continue;
    threads = IntFlag(arg, "--threads", threads, &matched);
    if (matched) continue;
    cache_mb = IntFlag(arg, "--cache-mb", cache_mb, &matched);
    if (matched) continue;
    max_steps = IntFlag(arg, "--max-steps", max_steps, &matched);
    if (matched) continue;
    slo_ms = IntFlag(arg, "--slo-ms", slo_ms, &matched);
    if (matched) continue;
    wave_connections =
        IntFlag(arg, "--wave-connections", wave_connections, &matched);
    if (matched) continue;
    wave_port = IntFlag(arg, "--port", wave_port, &matched);
    if (matched) continue;
    wave_batch = IntFlag(arg, "--batch", wave_batch, &matched);
    if (matched) continue;
    wave_window = IntFlag(arg, "--window", wave_window, &matched);
    if (matched) continue;
    std::fprintf(stderr,
                 "usage: bench_serve_throughput [--clients=N] [--requests=N]"
                 " [--threads=N] [--cache-mb=N] [--max-steps=N]"
                 " [--slo-ms=N] [--json]"
                 " [--json-net [--wave-connections=N]]\n");
    return 2;
  }
  if (wave_client_mode) {
    if (wave_port <= 0) {
      std::fprintf(stderr, "--wave-client needs --port=N\n");
      return 2;
    }
    return RunWaveClient(static_cast<int>(wave_port), wave_connections,
                         wave_batch, wave_window, /*rounds=*/2);
  }
  if (json_net_mode) return RunJsonNet(wave_connections, slo_ms);
  if (json_mode && !obs::Enabled()) {
    std::fprintf(stderr,
                 "bench_serve_throughput: --json reads the per-endpoint "
                 "histograms and needs obs recording on (unset PROX_OBS)\n");
    return 2;
  }
  // Human-readable lines move to stderr in --json mode; stdout is the doc.
  std::FILE* out = json_mode ? stderr : stdout;

  MovieLensConfig config;
  config.num_users = 25;
  config.num_movies = 8;
  config.seed = 99;
  engine::Engine::Options engine_options;
  engine_options.cache.max_bytes = static_cast<size_t>(cache_mb) * 1024 * 1024;
  std::unique_ptr<engine::Engine> eng = engine::Engine::FromDataset(
      MovieLensGenerator::Generate(config), engine_options);
  engine::SummaryCache& cache = eng->cache();
  serve::Router::Options router_options;
  router_options.route_stats.slo_latency_nanos = slo_ms * 1'000'000;
  serve::Router router(eng.get(), router_options);

  serve::HttpServer::Options options;
  options.port = 0;
  options.threads = static_cast<int>(threads);
  options.max_inflight = static_cast<int>(clients) * 2 + 8;
  serve::HttpServer server(options, [&router](const serve::HttpRequest& req) {
    return router.Handle(req);
  });
  if (Status status = server.Start(); !status.ok()) {
    std::fprintf(stderr, "bench_serve_throughput: %s\n",
                 status.ToString().c_str());
    return 1;
  }

  const std::string body = "{\"w_dist\":0.7,\"w_size\":0.3,\"max_steps\":" +
                           std::to_string(max_steps) + "}";
  std::fprintf(out,
               "bench_serve_throughput: port=%d clients=%ld requests=%ld "
               "threads=%ld\n",
               server.port(), clients, requests, threads);

  WaveResult cold = RunWave(server.port(), static_cast<int>(clients),
                            static_cast<int>(requests), body);
  engine::SummaryCache::Stats after_cold = cache.stats();
  WaveResult cached = RunWave(server.port(), static_cast<int>(clients),
                              static_cast<int>(requests), body);
  engine::SummaryCache::Stats after_cached = cache.stats();

  PrintWave(out, "cold", cold);
  PrintWave(out, "cached", cached);

  uint64_t wave2_hits = after_cached.hits - after_cold.hits;
  uint64_t total_lookups = after_cached.hits + after_cached.misses;
  std::fprintf(out,
               "cache: hits=%llu misses=%llu hit_rate=%.3f "
               "wave2_hits=%llu entries=%zu bytes=%zu\n",
               static_cast<unsigned long long>(after_cached.hits),
               static_cast<unsigned long long>(after_cached.misses),
               total_lookups == 0 ? 0.0
                                  : static_cast<double>(after_cached.hits) /
                                        static_cast<double>(total_lookups),
               static_cast<unsigned long long>(wave2_hits),
               after_cached.entries, after_cached.bytes);

  // Refresh the rolling-window gauges from the route rings, then read the
  // server-side view of what the waves just did.
  router.route_stats().ExportGauges();
  ServerSideStats server_stats = ReadServerSideStats();

  server.Stop();

  bool ok = true;
  if (cold.failures + cached.failures > 0) {
    std::fprintf(stderr, "FAIL: %d requests failed\n",
                 cold.failures + cached.failures);
    ok = false;
  }
  std::set<std::string> all_bodies = cold.distinct_bodies;
  all_bodies.insert(cached.distinct_bodies.begin(),
                    cached.distinct_bodies.end());
  if (all_bodies.size() != 1) {
    std::fprintf(stderr, "FAIL: %zu distinct response bodies (want 1)\n",
                 all_bodies.size());
    ok = false;
  }
  if (wave2_hits == 0) {
    std::fprintf(stderr, "FAIL: second wave recorded no cache hits\n");
    ok = false;
  }
  if (cached.wall_nanos >= cold.wall_nanos) {
    // Informational, not fatal: on loaded machines wave walls can jitter,
    // but the cold wave includes a full Algorithm 1 run and should lose.
    std::fprintf(stderr,
                 "WARN: cached wave (%.1fms) not faster than cold (%.1fms)\n",
                 static_cast<double>(cached.wall_nanos) / 1e6,
                 static_cast<double>(cold.wall_nanos) / 1e6);
  }

  if (json_mode) {
    // The client saw every request the server histogram counted; compare
    // both percentile views over the same combined sample set.
    std::vector<int64_t> all_latencies = cold.latencies_nanos;
    all_latencies.insert(all_latencies.end(), cached.latencies_nanos.begin(),
                         cached.latencies_nanos.end());
    const double client_p50 = Percentile(all_latencies, 0.50);
    const double client_p99 = Percentile(all_latencies, 0.99);
    const uint64_t requests_served = all_latencies.size();
    const double slo_nanos = static_cast<double>(slo_ms) * 1e6;

    if (!server_stats.found) {
      std::fprintf(stderr,
                   "FAIL: /v1/summarize route metrics absent from the "
                   "registry\n");
      ok = false;
    } else {
      if (server_stats.histogram_count != requests_served) {
        std::fprintf(stderr,
                     "FAIL: route histogram count %llu != %llu requests "
                     "served\n",
                     static_cast<unsigned long long>(
                         server_stats.histogram_count),
                     static_cast<unsigned long long>(requests_served));
        ok = false;
      }
      if (!WithinTolerance(server_stats.p50_nanos, client_p50)) {
        std::fprintf(stderr,
                     "FAIL: server p50 %.0fus vs client p50 %.0fus outside "
                     "tolerance\n",
                     server_stats.p50_nanos / 1e3, client_p50 / 1e3);
        ok = false;
      }
      if (!WithinTolerance(server_stats.p99_nanos, client_p99)) {
        std::fprintf(stderr,
                     "FAIL: server p99 %.0fus vs client p99 %.0fus outside "
                     "tolerance\n",
                     server_stats.p99_nanos / 1e3, client_p99 / 1e3);
        ok = false;
      }
      if (server_stats.p99_nanos > slo_nanos) {
        std::fprintf(stderr,
                     "FAIL: server p99 %.1fms over the %ldms SLO\n",
                     server_stats.p99_nanos / 1e6, slo_ms);
        ok = false;
      }
    }

    std::printf(
        "{\n"
        "  \"bench\": \"bench_serve_throughput --json\",\n"
        "  \"workload\": \"MovieLens 25/8/99, %ld clients x %ld requests x "
        "2 waves, POST /v1/summarize\",\n"
        "  \"contract\": \"server-side p50/p99 within 15%% (2ms floor) of "
        "client-side; route histogram count == requests served; server p99 "
        "<= slo_ms\",\n"
        "  \"requests_served\": %llu,\n"
        "  \"route_histogram_count\": %llu,\n"
        "  \"client\": {\"p50_ns\": %.0f, \"p99_ns\": %.0f},\n"
        "  \"server\": {\"p50_ns\": %.0f, \"p99_ns\": %.0f},\n"
        "  \"slo\": {\"latency_ms\": %ld, \"server_p99_ms\": %.3f, "
        "\"burn_rate\": %.3f, \"pass\": %s},\n"
        "  \"cache_wave2_hits\": %llu,\n"
        "  \"ok\": %s\n"
        "}\n",
        clients, requests,
        static_cast<unsigned long long>(requests_served),
        static_cast<unsigned long long>(server_stats.histogram_count),
        client_p50, client_p99, server_stats.p50_nanos, server_stats.p99_nanos,
        slo_ms, server_stats.p99_nanos / 1e6, server_stats.burn_rate,
        server_stats.p99_nanos <= slo_nanos ? "true" : "false",
        static_cast<unsigned long long>(wave2_hits), ok ? "true" : "false");
  }

  std::fprintf(out, "bench_serve_throughput: %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
