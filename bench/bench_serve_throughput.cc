/// \file bench_serve_throughput.cc
/// \brief Loadgen for prox::serve: starts the server in-process on an
/// ephemeral loopback port, drives N concurrent clients through two waves
/// of identical `POST /v1/summarize` requests, and reports per-wave
/// p50/p99 latency plus the SummaryCache hit rate.
///
/// Wave 1 ("cold") pays one Algorithm 1 run — the router single-flights
/// concurrent identical requests, so every other request in the wave is
/// already a cache hit. Wave 2 ("cached") is hits only and must be faster.
/// All bodies across both waves are checked byte-identical (the cache
/// contract; exits 1 on violation).
///
/// Flags: --clients=N (8) --requests=N per client per wave (16)
///        --threads=N server workers (4) --cache-mb=N (64)
///        --max-steps=N summarize knob (8)

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "datasets/movielens.h"
#include "serve/client.h"
#include "serve/router.h"
#include "serve/server.h"
#include "serve/summary_cache.h"
#include "service/session.h"

using namespace prox;

namespace {

int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double Percentile(std::vector<int64_t> nanos, double p) {
  if (nanos.empty()) return 0.0;
  std::sort(nanos.begin(), nanos.end());
  size_t index = static_cast<size_t>(p * (nanos.size() - 1));
  return static_cast<double>(nanos[index]);
}

struct WaveResult {
  std::vector<int64_t> latencies_nanos;
  std::set<std::string> distinct_bodies;
  int failures = 0;
  int64_t wall_nanos = 0;
};

WaveResult RunWave(int port, int clients, int requests,
                   const std::string& body) {
  WaveResult result;
  std::mutex mu;
  std::vector<std::thread> threads;
  int64_t wave_start = NowNanos();
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      (void)c;
      std::vector<int64_t> local_latencies;
      std::set<std::string> local_bodies;
      int local_failures = 0;
      for (int r = 0; r < requests; ++r) {
        int64_t start = NowNanos();
        Result<serve::ClientResponse> response = serve::Fetch(
            "127.0.0.1", port, "POST", "/v1/summarize", body,
            /*timeout_ms=*/60000);
        int64_t elapsed = NowNanos() - start;
        if (!response.ok() || response.value().status != 200) {
          ++local_failures;
          continue;
        }
        local_latencies.push_back(elapsed);
        local_bodies.insert(response.value().body);
      }
      std::lock_guard<std::mutex> lock(mu);
      result.latencies_nanos.insert(result.latencies_nanos.end(),
                                    local_latencies.begin(),
                                    local_latencies.end());
      result.distinct_bodies.insert(local_bodies.begin(), local_bodies.end());
      result.failures += local_failures;
    });
  }
  for (std::thread& thread : threads) thread.join();
  result.wall_nanos = NowNanos() - wave_start;
  return result;
}

void PrintWave(const char* label, const WaveResult& wave) {
  std::printf("%-8s requests=%zu failures=%d p50=%.0fus p99=%.0fus "
              "wall=%.1fms throughput=%.0f req/s\n",
              label, wave.latencies_nanos.size(), wave.failures,
              Percentile(wave.latencies_nanos, 0.50) / 1e3,
              Percentile(wave.latencies_nanos, 0.99) / 1e3,
              static_cast<double>(wave.wall_nanos) / 1e6,
              wave.latencies_nanos.empty()
                  ? 0.0
                  : static_cast<double>(wave.latencies_nanos.size()) /
                        (static_cast<double>(wave.wall_nanos) / 1e9));
}

long IntFlag(const std::string& arg, const char* flag, long fallback,
             bool* matched) {
  std::string prefix = std::string(flag) + "=";
  if (arg.rfind(prefix, 0) != 0) {
    *matched = false;
    return fallback;
  }
  *matched = true;
  return std::strtol(arg.c_str() + prefix.size(), nullptr, 10);
}

}  // namespace

int main(int argc, char** argv) {
  long clients = 8;
  long requests = 16;
  long threads = 4;
  long cache_mb = 64;
  long max_steps = 8;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    bool matched = false;
    clients = IntFlag(arg, "--clients", clients, &matched);
    if (matched) continue;
    requests = IntFlag(arg, "--requests", requests, &matched);
    if (matched) continue;
    threads = IntFlag(arg, "--threads", threads, &matched);
    if (matched) continue;
    cache_mb = IntFlag(arg, "--cache-mb", cache_mb, &matched);
    if (matched) continue;
    max_steps = IntFlag(arg, "--max-steps", max_steps, &matched);
    if (matched) continue;
    std::fprintf(stderr,
                 "usage: bench_serve_throughput [--clients=N] [--requests=N]"
                 " [--threads=N] [--cache-mb=N] [--max-steps=N]\n");
    return 2;
  }

  MovieLensConfig config;
  config.num_users = 25;
  config.num_movies = 8;
  config.seed = 99;
  ProxSession session(MovieLensGenerator::Generate(config));

  serve::SummaryCache::Options cache_options;
  cache_options.max_bytes = static_cast<size_t>(cache_mb) * 1024 * 1024;
  serve::SummaryCache cache(cache_options);
  serve::Router router(&session, &cache);

  serve::HttpServer::Options options;
  options.port = 0;
  options.threads = static_cast<int>(threads);
  options.max_inflight = static_cast<int>(clients) * 2 + 8;
  serve::HttpServer server(options, [&router](const serve::HttpRequest& req) {
    return router.Handle(req);
  });
  if (Status status = server.Start(); !status.ok()) {
    std::fprintf(stderr, "bench_serve_throughput: %s\n",
                 status.ToString().c_str());
    return 1;
  }

  const std::string body = "{\"w_dist\":0.7,\"w_size\":0.3,\"max_steps\":" +
                           std::to_string(max_steps) + "}";
  std::printf("bench_serve_throughput: port=%d clients=%ld requests=%ld "
              "threads=%ld\n",
              server.port(), clients, requests, threads);

  WaveResult cold = RunWave(server.port(), static_cast<int>(clients),
                            static_cast<int>(requests), body);
  serve::SummaryCache::Stats after_cold = cache.stats();
  WaveResult cached = RunWave(server.port(), static_cast<int>(clients),
                              static_cast<int>(requests), body);
  serve::SummaryCache::Stats after_cached = cache.stats();

  PrintWave("cold", cold);
  PrintWave("cached", cached);

  uint64_t wave2_hits = after_cached.hits - after_cold.hits;
  uint64_t total_lookups = after_cached.hits + after_cached.misses;
  std::printf("cache: hits=%llu misses=%llu hit_rate=%.3f "
              "wave2_hits=%llu entries=%zu bytes=%zu\n",
              static_cast<unsigned long long>(after_cached.hits),
              static_cast<unsigned long long>(after_cached.misses),
              total_lookups == 0 ? 0.0
                                 : static_cast<double>(after_cached.hits) /
                                       static_cast<double>(total_lookups),
              static_cast<unsigned long long>(wave2_hits),
              after_cached.entries, after_cached.bytes);

  server.Stop();

  bool ok = true;
  if (cold.failures + cached.failures > 0) {
    std::fprintf(stderr, "FAIL: %d requests failed\n",
                 cold.failures + cached.failures);
    ok = false;
  }
  std::set<std::string> all_bodies = cold.distinct_bodies;
  all_bodies.insert(cached.distinct_bodies.begin(),
                    cached.distinct_bodies.end());
  if (all_bodies.size() != 1) {
    std::fprintf(stderr, "FAIL: %zu distinct response bodies (want 1)\n",
                 all_bodies.size());
    ok = false;
  }
  if (wave2_hits == 0) {
    std::fprintf(stderr, "FAIL: second wave recorded no cache hits\n");
    ok = false;
  }
  if (cached.wall_nanos >= cold.wall_nanos) {
    // Informational, not fatal: on loaded machines wave walls can jitter,
    // but the cold wave includes a full Algorithm 1 run and should lose.
    std::fprintf(stderr,
                 "WARN: cached wave (%.1fms) not faster than cold (%.1fms)\n",
                 static_cast<double>(cached.wall_nanos) / 1e6,
                 static_cast<double>(cold.wall_nanos) / 1e6);
  }
  std::printf("bench_serve_throughput: %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
