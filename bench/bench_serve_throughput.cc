/// \file bench_serve_throughput.cc
/// \brief Loadgen for prox::serve: starts the server in-process on an
/// ephemeral loopback port, drives N concurrent clients through two waves
/// of identical `POST /v1/summarize` requests, and reports per-wave
/// p50/p99 latency plus the SummaryCache hit rate.
///
/// Wave 1 ("cold") pays one Algorithm 1 run — the router single-flights
/// concurrent identical requests, so every other request in the wave is
/// already a cache hit. Wave 2 ("cached") is hits only and must be faster.
/// All bodies across both waves are checked byte-identical (the cache
/// contract; exits 1 on violation).
///
/// Flags: --clients=N (8) --requests=N per client per wave (16)
///        --threads=N server workers (4) --cache-mb=N (64)
///        --max-steps=N summarize knob (8) --slo-ms=N p99 gate (250)
///
/// `--json` is the committed-baseline mode (BENCH_serve.json): after the
/// waves it reads the server-side p50/p99 from the per-endpoint
/// `prox_serve_route_duration_nanos` rolling-window gauges, self-checks
/// them against the client-side measurements (±15%, with an absolute
/// floor for the sub-millisecond cached requests where loopback connect
/// overhead dominates), verifies the histogram sample count equals the
/// requests served, gates p99 on the `--slo-ms` objective, and prints the
/// result as JSON on stdout (human-readable lines move to stderr). Any
/// violated contract exits 1.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "datasets/movielens.h"
#include "obs/metrics.h"
#include "engine/engine.h"
#include "serve/client.h"
#include "serve/router.h"
#include "serve/server.h"

using namespace prox;

namespace {

int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double Percentile(std::vector<int64_t> nanos, double p) {
  if (nanos.empty()) return 0.0;
  std::sort(nanos.begin(), nanos.end());
  size_t index = static_cast<size_t>(p * (nanos.size() - 1));
  return static_cast<double>(nanos[index]);
}

struct WaveResult {
  std::vector<int64_t> latencies_nanos;
  std::set<std::string> distinct_bodies;
  int failures = 0;
  int64_t wall_nanos = 0;
};

WaveResult RunWave(int port, int clients, int requests,
                   const std::string& body) {
  WaveResult result;
  std::mutex mu;
  std::vector<std::thread> threads;
  int64_t wave_start = NowNanos();
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      (void)c;
      std::vector<int64_t> local_latencies;
      std::set<std::string> local_bodies;
      int local_failures = 0;
      for (int r = 0; r < requests; ++r) {
        int64_t start = NowNanos();
        Result<serve::ClientResponse> response = serve::Fetch(
            "127.0.0.1", port, "POST", "/v1/summarize", body,
            /*timeout_ms=*/60000);
        int64_t elapsed = NowNanos() - start;
        if (!response.ok() || response.value().status != 200) {
          ++local_failures;
          continue;
        }
        local_latencies.push_back(elapsed);
        local_bodies.insert(response.value().body);
      }
      std::lock_guard<std::mutex> lock(mu);
      result.latencies_nanos.insert(result.latencies_nanos.end(),
                                    local_latencies.begin(),
                                    local_latencies.end());
      result.distinct_bodies.insert(local_bodies.begin(), local_bodies.end());
      result.failures += local_failures;
    });
  }
  for (std::thread& thread : threads) thread.join();
  result.wall_nanos = NowNanos() - wave_start;
  return result;
}

void PrintWave(std::FILE* out, const char* label, const WaveResult& wave) {
  std::fprintf(out,
               "%-8s requests=%zu failures=%d p50=%.0fus p99=%.0fus "
               "wall=%.1fms throughput=%.0f req/s\n",
               label, wave.latencies_nanos.size(), wave.failures,
               Percentile(wave.latencies_nanos, 0.50) / 1e3,
               Percentile(wave.latencies_nanos, 0.99) / 1e3,
               static_cast<double>(wave.wall_nanos) / 1e6,
               wave.latencies_nanos.empty()
                   ? 0.0
                   : static_cast<double>(wave.latencies_nanos.size()) /
                         (static_cast<double>(wave.wall_nanos) / 1e9));
}

/// Server-side view of the /v1/summarize route, read from the metrics
/// registry after RouteStats::ExportGauges().
struct ServerSideStats {
  uint64_t histogram_count = 0;
  double p50_nanos = 0.0;
  double p99_nanos = 0.0;
  double burn_rate = 0.0;
  bool found = false;
};

ServerSideStats ReadServerSideStats() {
  static const char kLabels[] = "route=\"/v1/summarize\"";
  ServerSideStats stats;
  obs::MetricsSnapshot snapshot = obs::MetricsRegistry::Default().Snapshot();
  const obs::HistogramSample* histogram =
      snapshot.FindHistogram("prox_serve_route_duration_nanos", kLabels);
  const obs::GaugeSample* p50 =
      snapshot.FindGauge("prox_serve_route_latency_p50_nanos", kLabels);
  const obs::GaugeSample* p99 =
      snapshot.FindGauge("prox_serve_route_latency_p99_nanos", kLabels);
  const obs::GaugeSample* burn =
      snapshot.FindGauge("prox_serve_route_slo_burn_rate", kLabels);
  if (histogram == nullptr || p50 == nullptr || p99 == nullptr ||
      burn == nullptr) {
    return stats;
  }
  stats.histogram_count = histogram->count;
  stats.p50_nanos = p50->value;
  stats.p99_nanos = p99->value;
  stats.burn_rate = burn->value;
  stats.found = true;
  return stats;
}

/// Server-side and client-side measure the same requests from opposite
/// ends of the loopback socket: they must agree within 15%, plus an
/// absolute floor for sub-millisecond samples (cache hits handle in a few
/// microseconds server-side while the client pays ~0.5 ms of connect +
/// write + read per request; the floor absorbs that overhead with
/// headroom for loaded machines).
bool WithinTolerance(double server_nanos, double client_nanos) {
  const double tolerance =
      std::max(0.15 * client_nanos, 2.0 * 1000.0 * 1000.0);  // 2 ms floor
  return std::abs(server_nanos - client_nanos) <= tolerance;
}

long IntFlag(const std::string& arg, const char* flag, long fallback,
             bool* matched) {
  std::string prefix = std::string(flag) + "=";
  if (arg.rfind(prefix, 0) != 0) {
    *matched = false;
    return fallback;
  }
  *matched = true;
  return std::strtol(arg.c_str() + prefix.size(), nullptr, 10);
}

}  // namespace

int main(int argc, char** argv) {
  long clients = 8;
  long requests = 16;
  long threads = 4;
  long cache_mb = 64;
  long max_steps = 8;
  long slo_ms = 250;
  bool json_mode = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json_mode = true;
      continue;
    }
    bool matched = false;
    clients = IntFlag(arg, "--clients", clients, &matched);
    if (matched) continue;
    requests = IntFlag(arg, "--requests", requests, &matched);
    if (matched) continue;
    threads = IntFlag(arg, "--threads", threads, &matched);
    if (matched) continue;
    cache_mb = IntFlag(arg, "--cache-mb", cache_mb, &matched);
    if (matched) continue;
    max_steps = IntFlag(arg, "--max-steps", max_steps, &matched);
    if (matched) continue;
    slo_ms = IntFlag(arg, "--slo-ms", slo_ms, &matched);
    if (matched) continue;
    std::fprintf(stderr,
                 "usage: bench_serve_throughput [--clients=N] [--requests=N]"
                 " [--threads=N] [--cache-mb=N] [--max-steps=N]"
                 " [--slo-ms=N] [--json]\n");
    return 2;
  }
  if (json_mode && !obs::Enabled()) {
    std::fprintf(stderr,
                 "bench_serve_throughput: --json reads the per-endpoint "
                 "histograms and needs obs recording on (unset PROX_OBS)\n");
    return 2;
  }
  // Human-readable lines move to stderr in --json mode; stdout is the doc.
  std::FILE* out = json_mode ? stderr : stdout;

  MovieLensConfig config;
  config.num_users = 25;
  config.num_movies = 8;
  config.seed = 99;
  engine::Engine::Options engine_options;
  engine_options.cache.max_bytes = static_cast<size_t>(cache_mb) * 1024 * 1024;
  std::unique_ptr<engine::Engine> eng = engine::Engine::FromDataset(
      MovieLensGenerator::Generate(config), engine_options);
  engine::SummaryCache& cache = eng->cache();
  serve::Router::Options router_options;
  router_options.route_stats.slo_latency_nanos = slo_ms * 1'000'000;
  serve::Router router(eng.get(), router_options);

  serve::HttpServer::Options options;
  options.port = 0;
  options.threads = static_cast<int>(threads);
  options.max_inflight = static_cast<int>(clients) * 2 + 8;
  serve::HttpServer server(options, [&router](const serve::HttpRequest& req) {
    return router.Handle(req);
  });
  if (Status status = server.Start(); !status.ok()) {
    std::fprintf(stderr, "bench_serve_throughput: %s\n",
                 status.ToString().c_str());
    return 1;
  }

  const std::string body = "{\"w_dist\":0.7,\"w_size\":0.3,\"max_steps\":" +
                           std::to_string(max_steps) + "}";
  std::fprintf(out,
               "bench_serve_throughput: port=%d clients=%ld requests=%ld "
               "threads=%ld\n",
               server.port(), clients, requests, threads);

  WaveResult cold = RunWave(server.port(), static_cast<int>(clients),
                            static_cast<int>(requests), body);
  engine::SummaryCache::Stats after_cold = cache.stats();
  WaveResult cached = RunWave(server.port(), static_cast<int>(clients),
                              static_cast<int>(requests), body);
  engine::SummaryCache::Stats after_cached = cache.stats();

  PrintWave(out, "cold", cold);
  PrintWave(out, "cached", cached);

  uint64_t wave2_hits = after_cached.hits - after_cold.hits;
  uint64_t total_lookups = after_cached.hits + after_cached.misses;
  std::fprintf(out,
               "cache: hits=%llu misses=%llu hit_rate=%.3f "
               "wave2_hits=%llu entries=%zu bytes=%zu\n",
               static_cast<unsigned long long>(after_cached.hits),
               static_cast<unsigned long long>(after_cached.misses),
               total_lookups == 0 ? 0.0
                                  : static_cast<double>(after_cached.hits) /
                                        static_cast<double>(total_lookups),
               static_cast<unsigned long long>(wave2_hits),
               after_cached.entries, after_cached.bytes);

  // Refresh the rolling-window gauges from the route rings, then read the
  // server-side view of what the waves just did.
  router.route_stats().ExportGauges();
  ServerSideStats server_stats = ReadServerSideStats();

  server.Stop();

  bool ok = true;
  if (cold.failures + cached.failures > 0) {
    std::fprintf(stderr, "FAIL: %d requests failed\n",
                 cold.failures + cached.failures);
    ok = false;
  }
  std::set<std::string> all_bodies = cold.distinct_bodies;
  all_bodies.insert(cached.distinct_bodies.begin(),
                    cached.distinct_bodies.end());
  if (all_bodies.size() != 1) {
    std::fprintf(stderr, "FAIL: %zu distinct response bodies (want 1)\n",
                 all_bodies.size());
    ok = false;
  }
  if (wave2_hits == 0) {
    std::fprintf(stderr, "FAIL: second wave recorded no cache hits\n");
    ok = false;
  }
  if (cached.wall_nanos >= cold.wall_nanos) {
    // Informational, not fatal: on loaded machines wave walls can jitter,
    // but the cold wave includes a full Algorithm 1 run and should lose.
    std::fprintf(stderr,
                 "WARN: cached wave (%.1fms) not faster than cold (%.1fms)\n",
                 static_cast<double>(cached.wall_nanos) / 1e6,
                 static_cast<double>(cold.wall_nanos) / 1e6);
  }

  if (json_mode) {
    // The client saw every request the server histogram counted; compare
    // both percentile views over the same combined sample set.
    std::vector<int64_t> all_latencies = cold.latencies_nanos;
    all_latencies.insert(all_latencies.end(), cached.latencies_nanos.begin(),
                         cached.latencies_nanos.end());
    const double client_p50 = Percentile(all_latencies, 0.50);
    const double client_p99 = Percentile(all_latencies, 0.99);
    const uint64_t requests_served = all_latencies.size();
    const double slo_nanos = static_cast<double>(slo_ms) * 1e6;

    if (!server_stats.found) {
      std::fprintf(stderr,
                   "FAIL: /v1/summarize route metrics absent from the "
                   "registry\n");
      ok = false;
    } else {
      if (server_stats.histogram_count != requests_served) {
        std::fprintf(stderr,
                     "FAIL: route histogram count %llu != %llu requests "
                     "served\n",
                     static_cast<unsigned long long>(
                         server_stats.histogram_count),
                     static_cast<unsigned long long>(requests_served));
        ok = false;
      }
      if (!WithinTolerance(server_stats.p50_nanos, client_p50)) {
        std::fprintf(stderr,
                     "FAIL: server p50 %.0fus vs client p50 %.0fus outside "
                     "tolerance\n",
                     server_stats.p50_nanos / 1e3, client_p50 / 1e3);
        ok = false;
      }
      if (!WithinTolerance(server_stats.p99_nanos, client_p99)) {
        std::fprintf(stderr,
                     "FAIL: server p99 %.0fus vs client p99 %.0fus outside "
                     "tolerance\n",
                     server_stats.p99_nanos / 1e3, client_p99 / 1e3);
        ok = false;
      }
      if (server_stats.p99_nanos > slo_nanos) {
        std::fprintf(stderr,
                     "FAIL: server p99 %.1fms over the %ldms SLO\n",
                     server_stats.p99_nanos / 1e6, slo_ms);
        ok = false;
      }
    }

    std::printf(
        "{\n"
        "  \"bench\": \"bench_serve_throughput --json\",\n"
        "  \"workload\": \"MovieLens 25/8/99, %ld clients x %ld requests x "
        "2 waves, POST /v1/summarize\",\n"
        "  \"contract\": \"server-side p50/p99 within 15%% (2ms floor) of "
        "client-side; route histogram count == requests served; server p99 "
        "<= slo_ms\",\n"
        "  \"requests_served\": %llu,\n"
        "  \"route_histogram_count\": %llu,\n"
        "  \"client\": {\"p50_ns\": %.0f, \"p99_ns\": %.0f},\n"
        "  \"server\": {\"p50_ns\": %.0f, \"p99_ns\": %.0f},\n"
        "  \"slo\": {\"latency_ms\": %ld, \"server_p99_ms\": %.3f, "
        "\"burn_rate\": %.3f, \"pass\": %s},\n"
        "  \"cache_wave2_hits\": %llu,\n"
        "  \"ok\": %s\n"
        "}\n",
        clients, requests,
        static_cast<unsigned long long>(requests_served),
        static_cast<unsigned long long>(server_stats.histogram_count),
        client_p50, client_p99, server_stats.p50_nanos, server_stats.p99_nanos,
        slo_ms, server_stats.p99_nanos / 1e6, server_stats.burn_rate,
        server_stats.p99_nanos <= slo_nanos ? "true" : "false",
        static_cast<unsigned long long>(wave2_hits), ok ? "true" : "false");
  }

  std::fprintf(out, "bench_serve_throughput: %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
