/// \file Experiment E15 — ablation of the valuation class (§6.3 notes
/// "two valuation classes were examined ... all combinations have similar
/// results"): the same MovieLens inputs summarized against
/// Cancel-Single-Annotation vs Cancel-Single-Attribute (uniform and
/// group-size-weighted), comparing resulting distance/size per wDist.

#include <cstdio>
#include <memory>

#include "harness/bench_util.h"
#include "summarize/distance.h"
#include "summarize/summarizer.h"
#include "summarize/valuation_class.h"

using namespace prox;
using namespace prox::bench;

namespace {

struct ClassSpec {
  const char* name;
  std::unique_ptr<ValuationClass> (*make)();
};

std::unique_ptr<ValuationClass> MakeAnnotation() {
  return std::make_unique<CancelSingleAnnotation>();
}
std::unique_ptr<ValuationClass> MakeAttribute() {
  return std::make_unique<CancelSingleAttribute>();
}
std::unique_ptr<ValuationClass> MakeWeightedAttribute() {
  return std::make_unique<CancelSingleAttribute>(
      std::vector<DomainId>{}, CancelSingleAttribute::Weighting::kGroupSize);
}

}  // namespace

int main() {
  const int num_seeds = 3;
  std::printf("Valuation-class ablation (MovieLens) — §6.3's class "
              "comparison\n");
  std::printf("max 20 steps, %d seeds, scale %.2f\n", num_seeds,
              BenchScale());

  const ClassSpec specs[] = {
      {"cancel-annotation", &MakeAnnotation},
      {"cancel-attribute", &MakeAttribute},
      {"cancel-attr-weighted", &MakeWeightedAttribute},
  };

  TablePrinter table({"class", "wDist", "distance", "size"}, /*width=*/22);
  table.PrintTitle("Distance/size per valuation class");
  table.PrintHeader();

  for (const ClassSpec& spec : specs) {
    for (double w_dist : {0.0, 0.5, 1.0}) {
      double dist = 0.0, size = 0.0;
      for (int seed = 1; seed <= num_seeds; ++seed) {
        Dataset ds = MakeDataset(DatasetKind::kMovieLens, seed);
        auto cls = spec.make();
        std::vector<Valuation> valuations =
            cls->Generate(*ds.provenance, ds.ctx);
        EnumeratedDistance oracle(ds.provenance.get(), ds.registry.get(),
                                  ds.val_func.get(), valuations);
        SummarizerOptions options;
        options.w_dist = w_dist;
        options.w_size = 1.0 - w_dist;
        options.max_steps = 20;
        options.phi = ds.phi;
        Summarizer s(ds.provenance.get(), ds.registry.get(), &ds.ctx,
                     &ds.constraints, &oracle, &valuations, options);
        auto outcome = s.Run();
        if (!outcome.ok()) continue;
        dist += outcome.value().final_distance / num_seeds;
        size += static_cast<double>(outcome.value().final_size) / num_seeds;
      }
      table.PrintRow({spec.name, Cell(w_dist, 1), Cell(dist), Cell(size, 1)});
    }
  }
  std::printf("\nExpected: the same qualitative wDist tradeoff for every "
              "class (§6.3:\n\"all combinations have similar results\").\n");
  return 0;
}
