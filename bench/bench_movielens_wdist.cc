/// \file Experiment E1 — Figures 6.1a and 6.2a: average distance and size
/// as a function of wDist on the MovieLens dataset (Cancel-Single-Attribute
/// valuations, MAX aggregation, at most 20 steps), for Prov-Approx,
/// Clustering and Random.

#include "harness/experiments.h"

int main() {
  prox::bench::RunWdistExperiment(prox::bench::DatasetKind::kMovieLens,
                                  "MovieLens", "Figures 6.1a / 6.2a",
                                  /*max_steps=*/20, /*num_seeds=*/3);
  return 0;
}
