/// \file Experiment E10 — Figures 6.8b and 6.9b: the TARGET-SIZE and
/// TARGET-DIST experiments on the DDP dataset.

#include "harness/experiments.h"

int main() {
  prox::bench::RunTargetSizeExperiment(prox::bench::DatasetKind::kDdp, "DDP",
                                       "Figure 6.8b", /*num_seeds=*/3);
  std::printf("\n");
  prox::bench::RunTargetDistExperiment(prox::bench::DatasetKind::kDdp, "DDP",
                                       "Figure 6.9b", /*num_seeds=*/3);
  return 0;
}
