/// \file Experiment E6 — Figures 6.5a and 6.5b: candidate-computation time
/// and summarization time as functions of provenance size (MovieLens,
/// wDist = 1, up to 50 steps). Panel (a) uses the per-step records of one
/// run: as the expression shrinks, evaluating one candidate gets cheaper.
/// Panel (b) sweeps input sizes: smaller inputs summarize faster.

#include <cstdio>
#include <vector>

#include "datasets/movielens.h"
#include "exec/thread_pool.h"
#include "harness/bench_util.h"
#include "summarize/distance.h"
#include "summarize/summarizer.h"

using namespace prox;
using namespace prox::bench;

int main() {
  std::printf("Summarization-time experiment (MovieLens) — "
              "Figures 6.5a / 6.5b\n");
  std::printf("wDist = 1, max 50 steps, scale %.2f\n", BenchScale());

  // --- Panel (a): per-candidate time vs current expression size, from the
  // step records of a single large run.
  {
    MovieLensConfig config;
    config.num_users = Scaled(40);
    config.num_movies = Scaled(12);
    config.seed = 17;
    Dataset ds = MovieLensGenerator::Generate(config);
    std::vector<Valuation> valuations =
        ds.valuation_class->Generate(*ds.provenance, ds.ctx);
    EnumeratedDistance oracle(ds.provenance.get(), ds.registry.get(),
                              ds.val_func.get(), valuations);
    SummarizerOptions options;
    options.w_dist = 1.0;
    options.w_size = 0.0;
    options.max_steps = 50;
    options.phi = ds.phi;
    Summarizer summarizer(ds.provenance.get(), ds.registry.get(), &ds.ctx,
                          &ds.constraints, &oracle, &valuations, options);
    auto outcome = summarizer.Run();
    if (!outcome.ok()) {
      std::fprintf(stderr, "run failed: %s\n",
                   outcome.status().ToString().c_str());
      return 1;
    }
    TablePrinter table({"size", "us/candidate", "candidates", "step-ms"});
    table.PrintTitle(
        "Time per candidate vs provenance size, one run (Fig 6.5a)");
    table.PrintHeader();
    for (const StepRecord& step : outcome.value().steps) {
      table.PrintRow({std::to_string(step.size),
                      Cell(step.candidate_eval_nanos / 1e3, 2),
                      std::to_string(step.num_candidates),
                      Cell(step.step_nanos / 1e6, 3)});
    }
  }

  // --- Panel (b): total summarization time vs input provenance size.
  {
    TablePrinter table({"input-size", "summarize-ms", "steps",
                        "us/candidate"});
    table.PrintTitle("Summarization time vs input size (Fig 6.5b)");
    table.PrintHeader();
    for (int users : {10, 16, 22, 28, 34, 40}) {
      MovieLensConfig config;
      config.num_users = Scaled(users);
      config.num_movies = Scaled(12);
      config.seed = 29;
      Dataset ds = MovieLensGenerator::Generate(config);
      int64_t input_size = ds.provenance->Size();
      RunConfig run;
      run.w_dist = 1.0;
      run.max_steps = 50;
      AlgoResult r = RunProvApprox(&ds, run);
      table.PrintRow({std::to_string(input_size), Cell(r.total_nanos / 1e6, 2),
                      std::to_string(r.steps),
                      Cell(r.avg_candidate_nanos / 1e3, 2)});
      std::printf("%s\n",
                  AlgoResultJson("E6b", "movielens", "prov-approx",
                                 run.threads, input_size, r)
                      .c_str());
    }
  }

  // --- Panel (c): summarization time vs thread count on one fixed input
  // (the parallel candidate-scoring engine; results are bit-identical at
  // every thread count, only wall time changes).
  {
    std::vector<int> sweep = {1, 2, 4};
    const int hw = exec::HardwareThreads();
    if (hw > 4) sweep.push_back(hw);
    TablePrinter table({"threads", "summarize-ms", "speedup", "steps"});
    table.PrintTitle("Summarization time vs threads (fixed input)");
    table.PrintHeader();
    double serial_ms = 0.0;
    for (int threads : sweep) {
      MovieLensConfig config;
      config.num_users = Scaled(40);
      config.num_movies = Scaled(12);
      config.seed = 29;
      Dataset ds = MovieLensGenerator::Generate(config);
      int64_t input_size = ds.provenance->Size();
      RunConfig run;
      run.w_dist = 1.0;
      run.max_steps = 50;
      run.threads = threads;
      AlgoResult r = RunProvApprox(&ds, run);
      const double ms = r.total_nanos / 1e6;
      if (threads == 1) serial_ms = ms;
      table.PrintRow({std::to_string(threads), Cell(ms, 2),
                      Cell(ms > 0 ? serial_ms / ms : 0.0, 2),
                      std::to_string(r.steps)});
      std::printf("%s\n", AlgoResultJson("E6c", "movielens", "prov-approx",
                                         threads, input_size, r)
                              .c_str());
    }
    if (hw == 1) {
      std::printf("note: hardware concurrency is 1; speedups above reflect "
                  "oversubscribed pools, not parallel hardware\n");
    }
  }
  return 0;
}
