/// \file Experiment E14 — ablation of the CandidateScore design choices
/// Definition 3.2.4 leaves open: normalized ranks (distance in [0,1], size
/// relative to the input) versus ordinal ranks among the step's candidates,
/// and the taxonomy tie-breaking criterion (MAX vs SUM of Wu-Palmer
/// distances vs arbitrary-first) on the Wikipedia dataset.

#include <cstdio>

#include "harness/bench_util.h"

using namespace prox;
using namespace prox::bench;

int main() {
  const int num_seeds = 3;
  std::printf("Scoring ablation (Wikipedia) — rank form and tie-breaking\n");
  std::printf("wDist = 0.5, max 15 steps, %d seeds, scale %.2f\n\n",
              num_seeds, BenchScale());

  TablePrinter table({"ranks", "tie-break", "distance", "size"});
  table.PrintTitle("CandidateScore variants");
  table.PrintHeader();

  struct Variant {
    const char* rank_name;
    bool ordinal;
    const char* tie_name;
    TieBreak tie;
  };
  const Variant variants[] = {
      {"normalized", false, "taxonomy-MAX", TieBreak::kTaxonomyMax},
      {"normalized", false, "taxonomy-SUM", TieBreak::kTaxonomySum},
      {"normalized", false, "first", TieBreak::kFirst},
      {"ordinal", true, "taxonomy-MAX", TieBreak::kTaxonomyMax},
      {"ordinal", true, "first", TieBreak::kFirst},
  };

  for (const Variant& variant : variants) {
    double dist = 0.0, size = 0.0;
    for (int seed = 1; seed <= num_seeds; ++seed) {
      Dataset ds = MakeDataset(DatasetKind::kWikipedia, seed);
      RunConfig config;
      config.w_dist = 0.5;
      config.max_steps = 15;
      config.use_ordinal_ranks = variant.ordinal;
      config.tie_break = variant.tie;
      AlgoResult r = RunProvApprox(&ds, config);
      dist += r.distance / num_seeds;
      size += r.size / num_seeds;
    }
    table.PrintRow({variant.rank_name, variant.tie_name, Cell(dist),
                    Cell(size, 1)});
  }
  return 0;
}
