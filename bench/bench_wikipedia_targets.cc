/// \file Experiment E8 — Figures 6.6b and 6.7b: the TARGET-SIZE and
/// TARGET-DIST experiments on the Wikipedia dataset.

#include "harness/experiments.h"

int main() {
  prox::bench::RunTargetSizeExperiment(prox::bench::DatasetKind::kWikipedia,
                                       "Wikipedia", "Figure 6.6b",
                                       /*num_seeds=*/3);
  std::printf("\n");
  prox::bench::RunTargetDistExperiment(prox::bench::DatasetKind::kWikipedia,
                                       "Wikipedia", "Figure 6.7b",
                                       /*num_seeds=*/3);
  return 0;
}
