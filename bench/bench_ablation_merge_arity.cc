/// \file Experiment E13 — ablation of the k-way merge extension the
/// thesis's Conclusions chapter proposes as future work: mapping k
/// annotations per step (k ∈ {2, 3, 4}) trades fewer steps against more
/// candidate evaluations per step. Reported: steps to reach a 60% size
/// bound, the distance paid, and wall time.

#include <cstdio>

#include "harness/bench_util.h"

using namespace prox;
using namespace prox::bench;

int main() {
  const int num_seeds = 3;
  std::printf("Merge-arity ablation (MovieLens) — k-way extension (§9)\n");
  std::printf("wDist = 1, TARGET-SIZE = 60%% of input, %d seeds, "
              "scale %.2f\n",
              num_seeds, BenchScale());

  TablePrinter table({"arity", "steps", "distance", "size", "time-ms"});
  table.PrintTitle("k-way merges: steps vs quality");
  table.PrintHeader();

  for (int arity : {2, 3, 4}) {
    double steps = 0.0, dist = 0.0, size = 0.0, ms = 0.0;
    for (int seed = 1; seed <= num_seeds; ++seed) {
      Dataset ds = MakeDataset(DatasetKind::kMovieLens, seed);
      RunConfig config;
      config.w_dist = 1.0;
      config.merge_arity = arity;
      config.target_size = static_cast<int64_t>(ds.provenance->Size() * 0.6);
      config.max_steps = 100000;
      AlgoResult r = RunProvApprox(&ds, config);
      steps += static_cast<double>(r.steps) / num_seeds;
      dist += r.distance / num_seeds;
      size += r.size / num_seeds;
      ms += r.total_nanos / 1e6 / num_seeds;
    }
    table.PrintRow({std::to_string(arity), Cell(steps, 1), Cell(dist),
                    Cell(size, 1), Cell(ms, 2)});
  }
  std::printf(
      "\nExpected shape: larger arity reaches the bound in fewer steps at\n"
      "similar or slightly worse distance, paying more per step in\n"
      "candidate enumeration.\n");
  return 0;
}
