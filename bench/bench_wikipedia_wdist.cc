/// \file Experiment E7 — Figures 6.6a and 6.7a: the wDist experiment on
/// the Wikipedia dataset (taxonomy-consistent Cancel-Single-Annotation
/// valuations, SUM aggregation, at most 20 steps).

#include "harness/experiments.h"

int main() {
  prox::bench::RunWdistExperiment(prox::bench::DatasetKind::kWikipedia,
                                  "Wikipedia", "Figures 6.6a / 6.7a",
                                  /*max_steps=*/20, /*num_seeds=*/3);
  return 0;
}
