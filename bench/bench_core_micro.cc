/// \file Experiment E12 — google-benchmark micro-benchmarks of the core
/// operations every experiment is built from: expression evaluation,
/// homomorphism application, distance estimation, equivalence grouping,
/// candidate generation, DDP evaluation and polynomial arithmetic.
///
/// The distance-oracle benches build their oracles with threads = 0 (the
/// process default), so the PROX_THREADS env var selects the parallelism:
/// `PROX_THREADS=1 bench_core_micro` measures the exact serial path,
/// `PROX_THREADS=$(nproc)` the parallel one. scripts/bench_smoke.sh runs
/// both and gates on serial regressions.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <string_view>
#include <vector>

#include "common/cpu_features.h"
#include "datasets/ddp.h"
#include "datasets/movielens.h"
#include "ir/adopt.h"
#include "ir/term_pool.h"
#include "kernels/batch_eval.h"
#include "kernels/metrics.h"
#include "kernels/valuation_block.h"
#include "semiring/polynomial.h"
#include "summarize/candidates.h"
#include "summarize/distance.h"
#include "summarize/equivalence.h"

using namespace prox;

namespace {

Dataset MakeMovies(int users) {
  MovieLensConfig config;
  config.num_users = users;
  config.num_movies = 12;
  config.seed = 3;
  return MovieLensGenerator::Generate(config);
}

void BM_AggregateEvaluate(benchmark::State& state) {
  Dataset ds = MakeMovies(static_cast<int>(state.range(0)));
  MaterializedValuation v(ds.registry->size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(ds.provenance->Evaluate(v));
  }
  state.SetItemsProcessed(state.iterations() * ds.provenance->Size());
}
BENCHMARK(BM_AggregateEvaluate)->Arg(20)->Arg(40)->Arg(80);

void BM_AggregateApplyHomomorphism(benchmark::State& state) {
  Dataset ds = MakeMovies(static_cast<int>(state.range(0)));
  auto users = ds.registry->AnnotationsInDomain(ds.domain("user"));
  AnnotationId summary =
      ds.registry->AddSummary(ds.domain("user"), "Merged");
  Homomorphism h;
  h.Set(users[0], summary);
  h.Set(users[1], summary);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ds.provenance->Apply(h));
  }
}
BENCHMARK(BM_AggregateApplyHomomorphism)->Arg(20)->Arg(40)->Arg(80);

void BM_IrAggregateEvaluate(benchmark::State& state) {
  Dataset ds = MakeMovies(static_cast<int>(state.range(0)));
  auto pool = std::make_shared<ir::TermPool>();
  auto flat = ir::Adopt(*ds.provenance, pool);
  MaterializedValuation v(ds.registry->size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(flat->Evaluate(v));
  }
  state.SetItemsProcessed(state.iterations() * flat->Size());
}
BENCHMARK(BM_IrAggregateEvaluate)->Arg(20)->Arg(40)->Arg(80);

void BM_IrAggregateApplyHomomorphism(benchmark::State& state) {
  Dataset ds = MakeMovies(static_cast<int>(state.range(0)));
  auto pool = std::make_shared<ir::TermPool>();
  auto flat = ir::Adopt(*ds.provenance, pool);
  auto users = ds.registry->AnnotationsInDomain(ds.domain("user"));
  AnnotationId summary =
      ds.registry->AddSummary(ds.domain("user"), "Merged");
  Homomorphism h;
  h.Set(users[0], summary);
  h.Set(users[1], summary);
  for (auto _ : state) {
    benchmark::DoNotOptimize(flat->Apply(h));
  }
}
BENCHMARK(BM_IrAggregateApplyHomomorphism)->Arg(20)->Arg(40)->Arg(80);

void BM_EnumeratedDistanceOneCandidate(benchmark::State& state) {
  Dataset ds = MakeMovies(static_cast<int>(state.range(0)));
  std::vector<Valuation> valuations =
      ds.valuation_class->Generate(*ds.provenance, ds.ctx);
  EnumeratedDistance oracle(ds.provenance.get(), ds.registry.get(),
                            ds.val_func.get(), valuations, /*threads=*/0);
  auto users = ds.registry->AnnotationsInDomain(ds.domain("user"));
  AnnotationId summary =
      ds.registry->AddSummary(ds.domain("user"), "Merged");
  MappingState mapping(ds.registry.get(), ds.phi);
  mapping.Merge({users[0], users[1]}, summary);
  Homomorphism h;
  h.Set(users[0], summary);
  h.Set(users[1], summary);
  auto cand = ds.provenance->Apply(h);
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle.Distance(*cand, mapping));
  }
  state.counters["valuations"] = static_cast<double>(valuations.size());
}
BENCHMARK(BM_EnumeratedDistanceOneCandidate)->Arg(20)->Arg(40);

void BM_SampledDistanceOneCandidate(benchmark::State& state) {
  Dataset ds = MakeMovies(20);
  SampledDistance::Options options;
  options.num_samples = static_cast<int>(state.range(0));
  options.threads = 0;  // process default; PROX_THREADS selects parallelism
  SampledDistance oracle(ds.provenance.get(), ds.registry.get(),
                         ds.val_func.get(), options);
  auto users = ds.registry->AnnotationsInDomain(ds.domain("user"));
  AnnotationId summary =
      ds.registry->AddSummary(ds.domain("user"), "Merged");
  MappingState mapping(ds.registry.get(), ds.phi);
  mapping.Merge({users[0], users[1]}, summary);
  Homomorphism h;
  h.Set(users[0], summary);
  h.Set(users[1], summary);
  auto cand = ds.provenance->Apply(h);
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle.Distance(*cand, mapping));
  }
}
BENCHMARK(BM_SampledDistanceOneCandidate)->Arg(100)->Arg(1000);

void BM_EquivalenceClasses(benchmark::State& state) {
  Dataset ds = MakeMovies(static_cast<int>(state.range(0)));
  std::vector<Valuation> valuations =
      ds.valuation_class->Generate(*ds.provenance, ds.ctx);
  std::vector<AnnotationId> anns;
  ds.provenance->CollectAnnotations(&anns);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        EquivalenceClasses(anns, valuations, *ds.registry));
  }
}
BENCHMARK(BM_EquivalenceClasses)->Arg(20)->Arg(80);

void BM_CandidateGeneration(benchmark::State& state) {
  Dataset ds = MakeMovies(static_cast<int>(state.range(0)));
  CandidateGenerator gen(&ds.constraints, &ds.ctx);
  MappingState mapping(ds.registry.get(), ds.phi);
  CandidateOptions options;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.Generate(*ds.provenance, mapping, options));
  }
}
BENCHMARK(BM_CandidateGeneration)->Arg(20)->Arg(40);

void BM_DdpEvaluate(benchmark::State& state) {
  DdpConfig config;
  config.num_executions = static_cast<int>(state.range(0));
  Dataset ds = DdpGenerator::Generate(config);
  MaterializedValuation v(ds.registry->size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(ds.provenance->Evaluate(v));
  }
}
BENCHMARK(BM_DdpEvaluate)->Arg(8)->Arg(32);

// Batch kernels (docs/KERNELS.md): one EvaluateBlock pass over a grain-8
// valuation block vs eight per-valuation Evaluate() walks of the same
// flat expression — the raw speedup the oracles' batch path buys before
// any VAL-FUNC reduction. PROX_SIMD / --simd caps apply, so
// `PROX_SIMD=0 bench_core_micro` measures the scalar kernels.

void BM_BatchEvaluateBlock(benchmark::State& state) {
  Dataset ds = MakeMovies(static_cast<int>(state.range(0)));
  auto pool = std::make_shared<ir::TermPool>();
  auto flat = ir::Adopt(*ds.provenance, pool);
  const kernels::BatchEvalFacade* facade = flat->AsBatchEval();
  if (facade == nullptr) {
    state.SkipWithError("no batch lowering");
    return;
  }
  const kernels::BatchProgram program = facade->LowerBatch();
  const size_t n = ds.registry->size();
  std::vector<Valuation> valuations =
      ds.valuation_class->Generate(*ds.provenance, ds.ctx);
  const size_t width =
      std::min<size_t>(EnumeratedDistance::kReductionGrain,
                       valuations.size());
  kernels::ValuationBlock block;
  block.Reset(n, width);
  for (size_t l = 0; l < width; ++l) {
    block.FillLane(l, MaterializedValuation(valuations[l], n));
  }
  kernels::BlockEval evals;
  for (auto _ : state) {
    kernels::EvaluateBlock(program, block, &evals);
    benchmark::DoNotOptimize(evals.values.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(width));
}
BENCHMARK(BM_BatchEvaluateBlock)->Arg(20)->Arg(40)->Arg(80);

void BM_PerValuationEvaluateBlock(benchmark::State& state) {
  Dataset ds = MakeMovies(static_cast<int>(state.range(0)));
  auto pool = std::make_shared<ir::TermPool>();
  auto flat = ir::Adopt(*ds.provenance, pool);
  const size_t n = ds.registry->size();
  std::vector<Valuation> valuations =
      ds.valuation_class->Generate(*ds.provenance, ds.ctx);
  const size_t width =
      std::min<size_t>(EnumeratedDistance::kReductionGrain,
                       valuations.size());
  std::vector<MaterializedValuation> mats;
  for (size_t l = 0; l < width; ++l) {
    mats.emplace_back(valuations[l], n);
  }
  for (auto _ : state) {
    for (const MaterializedValuation& mat : mats) {
      benchmark::DoNotOptimize(flat->Evaluate(mat));
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(width));
}
BENCHMARK(BM_PerValuationEvaluateBlock)->Arg(20)->Arg(40)->Arg(80);

void BM_PolynomialMultiply(benchmark::State& state) {
  Polynomial a, b;
  for (int i = 0; i < state.range(0); ++i) {
    a += Polynomial::FromVar(static_cast<Polynomial::Var>(i));
    b += Polynomial::FromVar(static_cast<Polynomial::Var>(i + 100));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(a * b);
  }
}
BENCHMARK(BM_PolynomialMultiply)->Arg(4)->Arg(16);

// --json baseline mode (BENCH_ir.json). google-benchmark rejects flags it
// does not know, so this is intercepted before benchmark::Initialize sees
// argv. It times the two operations the flat core exists for — Apply and
// Evaluate — legacy tree vs prox::ir on identical inputs, and self-checks
// the docs/IR.md performance contract: IR >= 1.5x on both.

double MinNsPerOp(const std::function<void()>& op) {
  // Warm up, size the inner loop to ~20ms, then take the best of 5 reps
  // (min is the right statistic for a noise-floor microbench baseline).
  op();
  using Clock = std::chrono::steady_clock;
  auto time_iters = [&](long iters) {
    auto start = Clock::now();
    for (long i = 0; i < iters; ++i) op();
    return std::chrono::duration<double, std::nano>(Clock::now() - start)
        .count();
  };
  long iters = 1;
  while (time_iters(iters) < 2e6 && iters < (1L << 30)) iters *= 4;
  double best = time_iters(iters);
  for (int rep = 1; rep < 5; ++rep) best = std::min(best, time_iters(iters));
  return best / static_cast<double>(iters);
}

int RunJsonBaseline() {
  struct Row {
    const char* op;
    int users;
    double legacy_ns;
    double ir_ns;
  };
  std::vector<Row> rows;
  for (int users : {20, 80}) {
    Dataset ds = MakeMovies(users);
    auto pool = std::make_shared<ir::TermPool>();
    auto flat = ir::Adopt(*ds.provenance, pool);
    auto user_anns = ds.registry->AnnotationsInDomain(ds.domain("user"));
    AnnotationId summary =
        ds.registry->AddSummary(ds.domain("user"), "Merged");
    Homomorphism h;
    h.Set(user_anns[0], summary);
    h.Set(user_anns[1], summary);
    MaterializedValuation v(ds.registry->size());
    rows.push_back({"apply", users,
                    MinNsPerOp([&] {
                      benchmark::DoNotOptimize(ds.provenance->Apply(h));
                    }),
                    MinNsPerOp([&] {
                      benchmark::DoNotOptimize(flat->Apply(h));
                    })});
    rows.push_back({"evaluate", users,
                    MinNsPerOp([&] {
                      benchmark::DoNotOptimize(ds.provenance->Evaluate(v));
                    }),
                    MinNsPerOp([&] {
                      benchmark::DoNotOptimize(flat->Evaluate(v));
                    })});
  }
  double min_speedup = 1e300;
  std::printf("{\n  \"bench\": \"bench_core_micro --json\",\n");
  std::printf("  \"workload\": \"MovieLens 12 movies, seed 3\",\n");
  std::printf("  \"contract\": \"ir >= 1.5x legacy on apply and evaluate\",\n");
  std::printf("  \"results\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    double speedup = r.legacy_ns / r.ir_ns;
    min_speedup = std::min(min_speedup, speedup);
    std::printf("    {\"op\": \"%s\", \"users\": %d, "
                "\"legacy_ns_per_op\": %.1f, \"ir_ns_per_op\": %.1f, "
                "\"speedup\": %.2f}%s\n",
                r.op, r.users, r.legacy_ns, r.ir_ns, speedup,
                i + 1 < rows.size() ? "," : "");
  }
  std::printf("  ],\n  \"min_speedup\": %.2f\n}\n", min_speedup);
  if (min_speedup < 1.5) {
    std::fprintf(stderr,
                 "bench_core_micro --json: FAIL min speedup %.2f < 1.5\n",
                 min_speedup);
    return 1;
  }
  return 0;
}

// --json-kernels baseline mode (BENCH_kernels.json). Times one full
// EnumeratedDistance candidate pricing — the batched kernel path vs the
// exact per-valuation scalar loop it replaced — on identical inputs, and
// self-checks the docs/KERNELS.md performance contract: batched >= 2x
// per-valuation on the largest config. The batch engagement is verified
// through the prox_kernel_batch_evals_total counter first, so a silently
// disengaged fast path fails instead of benchmarking scalar vs scalar.

int RunKernelsJsonBaseline() {
  struct Row {
    int users;
    size_t valuations;
    double scalar_ns;
    double batched_ns;
  };
  std::vector<Row> rows;
  for (int users : {20, 40, 80}) {
    Dataset ds = MakeMovies(users);
    std::vector<Valuation> valuations =
        ds.valuation_class->Generate(*ds.provenance, ds.ctx);
    EnumeratedDistance oracle(ds.provenance.get(), ds.registry.get(),
                              ds.val_func.get(), valuations, /*threads=*/1);
    auto user_anns = ds.registry->AnnotationsInDomain(ds.domain("user"));
    AnnotationId summary =
        ds.registry->AddSummary(ds.domain("user"), "Merged");
    MappingState mapping(ds.registry.get(), ds.phi);
    mapping.Merge({user_anns[0], user_anns[1]}, summary);
    Homomorphism h;
    h.Set(user_anns[0], summary);
    h.Set(user_anns[1], summary);
    auto pool = std::make_shared<ir::TermPool>();
    auto cand = ir::Adopt(*ds.provenance->Apply(h), pool);

    const uint64_t evals_before = kernels::BatchEvalsForTesting();
    benchmark::DoNotOptimize(oracle.Distance(*cand, mapping));
    if (kernels::BatchEvalsForTesting() == evals_before) {
      std::fprintf(stderr,
                   "bench_core_micro --json-kernels: FAIL batch path did "
                   "not engage at users=%d\n",
                   users);
      return 1;
    }

    const double batched_ns = MinNsPerOp([&] {
      benchmark::DoNotOptimize(oracle.Distance(*cand, mapping));
    });
    // The per-valuation loop the batch path replaced, verbatim from the
    // oracle's fallback (identity-on-groups branch, serial).
    const std::vector<EvalResult>& base_evals = oracle.base_evals();
    const std::vector<MaterializedValuation>& base_mats = oracle.base_mats();
    const double scalar_ns = MinNsPerOp([&] {
      const size_t n = ds.registry->size();
      double total = 0.0;
      for (size_t i = 0; i < valuations.size(); ++i) {
        MaterializedValuation transformed =
            mapping.TransformFrom(valuations[i], base_mats[i], n);
        EvalResult summ = cand->Evaluate(transformed);
        total += valuations[i].weight() *
                 ds.val_func->Compute(base_evals[i], summ);
      }
      benchmark::DoNotOptimize(total);
    });
    rows.push_back({users, valuations.size(), scalar_ns, batched_ns});
  }
  double largest_speedup = 0.0;
  std::printf("{\n  \"bench\": \"bench_core_micro --json-kernels\",\n");
  std::printf("  \"workload\": \"MovieLens 12 movies, seed 3; one "
              "candidate priced against the full valuation class\",\n");
  std::printf("  \"simd_tier\": \"%s\",\n",
              common::SimdTierName(common::ActiveSimdTier()));
  std::printf("  \"contract\": \"batched distance >= 2x the per-valuation "
              "scalar loop on the largest config\",\n");
  std::printf("  \"results\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    const double speedup = r.scalar_ns / r.batched_ns;
    largest_speedup = speedup;  // rows are ordered smallest to largest
    std::printf("    {\"users\": %d, \"valuations\": %zu, "
                "\"scalar_ns_per_candidate\": %.1f, "
                "\"batched_ns_per_candidate\": %.1f, \"speedup\": %.2f}%s\n",
                r.users, r.valuations, r.scalar_ns, r.batched_ns, speedup,
                i + 1 < rows.size() ? "," : "");
  }
  std::printf("  ],\n  \"largest_config_speedup\": %.2f\n}\n",
              largest_speedup);
  if (largest_speedup < 2.0) {
    std::fprintf(stderr,
                 "bench_core_micro --json-kernels: FAIL largest-config "
                 "speedup %.2f < 2.0\n",
                 largest_speedup);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--json") return RunJsonBaseline();
    if (std::string_view(argv[i]) == "--json-kernels") {
      return RunKernelsJsonBaseline();
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
