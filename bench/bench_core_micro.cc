/// \file Experiment E12 — google-benchmark micro-benchmarks of the core
/// operations every experiment is built from: expression evaluation,
/// homomorphism application, distance estimation, equivalence grouping,
/// candidate generation, DDP evaluation and polynomial arithmetic.
///
/// The distance-oracle benches build their oracles with threads = 0 (the
/// process default), so the PROX_THREADS env var selects the parallelism:
/// `PROX_THREADS=1 bench_core_micro` measures the exact serial path,
/// `PROX_THREADS=$(nproc)` the parallel one. scripts/bench_smoke.sh runs
/// both and gates on serial regressions.

#include <benchmark/benchmark.h>

#include "datasets/ddp.h"
#include "datasets/movielens.h"
#include "semiring/polynomial.h"
#include "summarize/candidates.h"
#include "summarize/distance.h"
#include "summarize/equivalence.h"

using namespace prox;

namespace {

Dataset MakeMovies(int users) {
  MovieLensConfig config;
  config.num_users = users;
  config.num_movies = 12;
  config.seed = 3;
  return MovieLensGenerator::Generate(config);
}

void BM_AggregateEvaluate(benchmark::State& state) {
  Dataset ds = MakeMovies(static_cast<int>(state.range(0)));
  MaterializedValuation v(ds.registry->size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(ds.provenance->Evaluate(v));
  }
  state.SetItemsProcessed(state.iterations() * ds.provenance->Size());
}
BENCHMARK(BM_AggregateEvaluate)->Arg(20)->Arg(40)->Arg(80);

void BM_AggregateApplyHomomorphism(benchmark::State& state) {
  Dataset ds = MakeMovies(static_cast<int>(state.range(0)));
  auto users = ds.registry->AnnotationsInDomain(ds.domain("user"));
  AnnotationId summary =
      ds.registry->AddSummary(ds.domain("user"), "Merged");
  Homomorphism h;
  h.Set(users[0], summary);
  h.Set(users[1], summary);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ds.provenance->Apply(h));
  }
}
BENCHMARK(BM_AggregateApplyHomomorphism)->Arg(20)->Arg(40)->Arg(80);

void BM_EnumeratedDistanceOneCandidate(benchmark::State& state) {
  Dataset ds = MakeMovies(static_cast<int>(state.range(0)));
  std::vector<Valuation> valuations =
      ds.valuation_class->Generate(*ds.provenance, ds.ctx);
  EnumeratedDistance oracle(ds.provenance.get(), ds.registry.get(),
                            ds.val_func.get(), valuations, /*threads=*/0);
  auto users = ds.registry->AnnotationsInDomain(ds.domain("user"));
  AnnotationId summary =
      ds.registry->AddSummary(ds.domain("user"), "Merged");
  MappingState mapping(ds.registry.get(), ds.phi);
  mapping.Merge({users[0], users[1]}, summary);
  Homomorphism h;
  h.Set(users[0], summary);
  h.Set(users[1], summary);
  auto cand = ds.provenance->Apply(h);
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle.Distance(*cand, mapping));
  }
  state.counters["valuations"] = static_cast<double>(valuations.size());
}
BENCHMARK(BM_EnumeratedDistanceOneCandidate)->Arg(20)->Arg(40);

void BM_SampledDistanceOneCandidate(benchmark::State& state) {
  Dataset ds = MakeMovies(20);
  SampledDistance::Options options;
  options.num_samples = static_cast<int>(state.range(0));
  options.threads = 0;  // process default; PROX_THREADS selects parallelism
  SampledDistance oracle(ds.provenance.get(), ds.registry.get(),
                         ds.val_func.get(), options);
  auto users = ds.registry->AnnotationsInDomain(ds.domain("user"));
  AnnotationId summary =
      ds.registry->AddSummary(ds.domain("user"), "Merged");
  MappingState mapping(ds.registry.get(), ds.phi);
  mapping.Merge({users[0], users[1]}, summary);
  Homomorphism h;
  h.Set(users[0], summary);
  h.Set(users[1], summary);
  auto cand = ds.provenance->Apply(h);
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle.Distance(*cand, mapping));
  }
}
BENCHMARK(BM_SampledDistanceOneCandidate)->Arg(100)->Arg(1000);

void BM_EquivalenceClasses(benchmark::State& state) {
  Dataset ds = MakeMovies(static_cast<int>(state.range(0)));
  std::vector<Valuation> valuations =
      ds.valuation_class->Generate(*ds.provenance, ds.ctx);
  std::vector<AnnotationId> anns;
  ds.provenance->CollectAnnotations(&anns);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        EquivalenceClasses(anns, valuations, *ds.registry));
  }
}
BENCHMARK(BM_EquivalenceClasses)->Arg(20)->Arg(80);

void BM_CandidateGeneration(benchmark::State& state) {
  Dataset ds = MakeMovies(static_cast<int>(state.range(0)));
  CandidateGenerator gen(&ds.constraints, &ds.ctx);
  MappingState mapping(ds.registry.get(), ds.phi);
  CandidateOptions options;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.Generate(*ds.provenance, mapping, options));
  }
}
BENCHMARK(BM_CandidateGeneration)->Arg(20)->Arg(40);

void BM_DdpEvaluate(benchmark::State& state) {
  DdpConfig config;
  config.num_executions = static_cast<int>(state.range(0));
  Dataset ds = DdpGenerator::Generate(config);
  MaterializedValuation v(ds.registry->size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(ds.provenance->Evaluate(v));
  }
}
BENCHMARK(BM_DdpEvaluate)->Arg(8)->Arg(32);

void BM_PolynomialMultiply(benchmark::State& state) {
  Polynomial a, b;
  for (int i = 0; i < state.range(0); ++i) {
    a += Polynomial::FromVar(static_cast<Polynomial::Var>(i));
    b += Polynomial::FromVar(static_cast<Polynomial::Var>(i + 100));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(a * b);
  }
}
BENCHMARK(BM_PolynomialMultiply)->Arg(4)->Arg(16);

}  // namespace

BENCHMARK_MAIN();
