#include "harness/experiments.h"

#include <cstdio>

namespace prox {
namespace bench {

namespace {

struct Averaged {
  double pa_dist = 0, pa_size = 0;
  double cl_dist = 0, cl_size = 0;
  double rd_dist = 0, rd_size = 0;
  bool has_clustering = false;
};

}  // namespace

void RunWdistExperiment(DatasetKind kind, const std::string& dataset_name,
                        const std::string& figure_label, int max_steps,
                        int num_seeds) {
  std::printf("wDist experiment (%s) — %s\n", dataset_name.c_str(),
              figure_label.c_str());
  std::printf("TARGET-DIST = 1, TARGET-SIZE = 1, max %d steps, %d seeds, "
              "scale %.2f\n",
              max_steps, num_seeds, BenchScale());

  // Clustering / Random do not depend on wDist: run once per seed.
  Averaged constant;
  int clustering_runs = 0;
  double original_size = 0.0;
  for (int seed = 1; seed <= num_seeds; ++seed) {
    Dataset ds = MakeDataset(kind, seed);
    original_size += static_cast<double>(ds.provenance->Size()) / num_seeds;
    RunConfig config;
    config.max_steps = max_steps;
    config.random_seed = 1000 + seed;
    AlgoResult cl = RunClustering(&ds, config);
    if (cl.ok) {
      constant.cl_dist += cl.distance;
      constant.cl_size += cl.size;
      ++clustering_runs;
    }
    AlgoResult rd = RunRandom(&ds, config);
    constant.rd_dist += rd.distance / num_seeds;
    constant.rd_size += rd.size / num_seeds;
  }
  if (clustering_runs > 0) {
    constant.cl_dist /= clustering_runs;
    constant.cl_size /= clustering_runs;
    constant.has_clustering = true;
  }
  std::printf("average original provenance size: %.1f\n", original_size);

  std::vector<std::string> columns = {"wDist", "ProvApprox"};
  if (constant.has_clustering) columns.push_back("Clustering");
  columns.push_back("Random");

  TablePrinter dist_table(columns);
  TablePrinter size_table(columns);

  std::vector<std::vector<std::string>> dist_rows, size_rows;
  for (int i = 0; i <= 10; ++i) {
    const double w_dist = i / 10.0;
    double pa_dist = 0.0, pa_size = 0.0;
    for (int seed = 1; seed <= num_seeds; ++seed) {
      Dataset ds = MakeDataset(kind, seed);
      RunConfig config;
      config.w_dist = w_dist;
      config.max_steps = max_steps;
      AlgoResult pa = RunProvApprox(&ds, config);
      pa_dist += pa.distance / num_seeds;
      pa_size += pa.size / num_seeds;
    }
    std::vector<std::string> dist_row = {Cell(w_dist, 1), Cell(pa_dist)};
    std::vector<std::string> size_row = {Cell(w_dist, 1), Cell(pa_size, 1)};
    if (constant.has_clustering) {
      dist_row.push_back(Cell(constant.cl_dist));
      size_row.push_back(Cell(constant.cl_size, 1));
    }
    dist_row.push_back(Cell(constant.rd_dist));
    size_row.push_back(Cell(constant.rd_size, 1));
    dist_rows.push_back(std::move(dist_row));
    size_rows.push_back(std::move(size_row));
  }

  dist_table.PrintTitle("Average distance as a function of wDist");
  dist_table.PrintHeader();
  for (const auto& row : dist_rows) dist_table.PrintRow(row);

  size_table.PrintTitle("Average size as a function of wDist");
  size_table.PrintHeader();
  for (const auto& row : size_rows) size_table.PrintRow(row);
}

void RunTargetSizeExperiment(DatasetKind kind,
                             const std::string& dataset_name,
                             const std::string& figure_label,
                             int num_seeds) {
  std::printf("TARGET-SIZE experiment (%s) — %s\n", dataset_name.c_str(),
              figure_label.c_str());
  std::printf("wDist = 1, TARGET-DIST = 1, %d seeds, scale %.2f\n",
              num_seeds, BenchScale());

  // Calibrate the sweep between the size Prov-Approx can reach when
  // unconstrained (all candidates exhausted) and the input size, so the
  // bound always bites regardless of dataset scale.
  Dataset probe = MakeDataset(kind, 1);
  const int64_t base_size = probe.provenance->Size();
  int64_t min_size = base_size;
  {
    RunConfig calibrate;
    calibrate.w_dist = 1.0;
    calibrate.max_steps = 100000;
    AlgoResult r = RunProvApprox(&probe, calibrate);
    if (r.ok) min_size = static_cast<int64_t>(r.size);
  }
  std::printf("original size %lld; reachable minimum %lld\n",
              static_cast<long long>(base_size),
              static_cast<long long>(min_size));
  const double fractions[] = {0.0, 0.2, 0.4, 0.6, 0.8};

  bool has_clustering = !probe.features.empty();
  std::vector<std::string> columns = {"TARGET-SIZE", "ProvApprox"};
  if (has_clustering) columns.push_back("Clustering");
  columns.push_back("Random");
  TablePrinter table(columns);
  table.PrintTitle("Average distance as a function of TARGET-SIZE");
  table.PrintHeader();

  for (double fraction : fractions) {
    const int64_t target =
        min_size + static_cast<int64_t>((base_size - min_size) * fraction);
    double pa = 0.0, cl = 0.0, rd = 0.0;
    int cl_runs = 0;
    for (int seed = 1; seed <= num_seeds; ++seed) {
      Dataset ds = MakeDataset(kind, seed);
      RunConfig config;
      config.w_dist = 1.0;
      config.target_size = target;
      config.max_steps = 100000;
      config.random_seed = 2000 + seed;
      pa += RunProvApprox(&ds, config).distance / num_seeds;
      AlgoResult c = RunClustering(&ds, config);
      if (c.ok) {
        cl += c.distance;
        ++cl_runs;
      }
      rd += RunRandom(&ds, config).distance / num_seeds;
    }
    std::vector<std::string> row = {std::to_string(target), Cell(pa)};
    if (has_clustering) row.push_back(Cell(cl_runs ? cl / cl_runs : 0.0));
    row.push_back(Cell(rd));
    table.PrintRow(row);
  }
}

void RunTargetDistExperiment(DatasetKind kind,
                             const std::string& dataset_name,
                             const std::string& figure_label,
                             int num_seeds) {
  std::printf("TARGET-DIST experiment (%s) — %s\n", dataset_name.c_str(),
              figure_label.c_str());
  std::printf("wDist = 0, TARGET-SIZE = 1, %d seeds, scale %.2f\n",
              num_seeds, BenchScale());

  // Calibrate the sweep to the distance an unconstrained size-greedy run
  // accumulates, so the bound produces a visible size/distance tradeoff on
  // every dataset (the absolute scale of normalized distances depends on
  // the dataset's max-error constant).
  Dataset probe = MakeDataset(kind, 1);
  std::printf("average original provenance size: %lld\n",
              static_cast<long long>(probe.provenance->Size()));
  bool has_clustering = !probe.features.empty();
  double max_dist = 0.0;
  {
    RunConfig calibrate;
    calibrate.w_dist = 0.0;
    calibrate.max_steps = 100000;
    AlgoResult r = RunProvApprox(&probe, calibrate);
    if (r.ok) max_dist = r.distance;
  }
  if (max_dist <= 0.0) max_dist = 0.01;
  std::printf("unbounded-run distance (sweep calibration): %.5f\n",
              max_dist);

  std::vector<std::string> columns = {"TARGET-DIST", "ProvApprox"};
  if (has_clustering) columns.push_back("Clustering");
  columns.push_back("Random");
  TablePrinter table(columns);
  table.PrintTitle("Average size as a function of TARGET-DIST");
  table.PrintHeader();

  const double bound_fractions[] = {0.05, 0.15, 0.3, 0.5, 0.75, 1.0, 1.5};
  for (double fraction : bound_fractions) {
    const double bound = fraction * max_dist;
    double pa = 0.0, cl = 0.0, rd = 0.0;
    int cl_runs = 0;
    for (int seed = 1; seed <= num_seeds; ++seed) {
      Dataset ds = MakeDataset(kind, seed);
      RunConfig config;
      config.w_dist = 0.0;
      config.target_dist = bound;
      config.max_steps = 100000;
      config.random_seed = 3000 + seed;
      pa += RunProvApprox(&ds, config).size / num_seeds;
      AlgoResult c = RunClustering(&ds, config);
      if (c.ok) {
        cl += c.size;
        ++cl_runs;
      }
      rd += RunRandom(&ds, config).size / num_seeds;
    }
    std::vector<std::string> row = {Cell(bound, 5), Cell(pa, 1)};
    if (has_clustering) row.push_back(Cell(cl_runs ? cl / cl_runs : 0.0, 1));
    row.push_back(Cell(rd, 1));
    table.PrintRow(row);
  }
}

}  // namespace bench
}  // namespace prox
