#include "harness/bench_util.h"

#include <cstdio>
#include <cstdlib>

#include "common/timer.h"
#include "datasets/ddp.h"
#include "datasets/movielens.h"
#include "datasets/wikipedia.h"
#include "obs/metrics.h"
#include "summarize/distance.h"

namespace prox {
namespace bench {

double BenchScale() {
  const char* env = std::getenv("PROX_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  double scale = std::strtod(env, nullptr);
  return scale > 0.0 ? scale : 1.0;
}

int Scaled(int base, int minimum) {
  int scaled = static_cast<int>(base * BenchScale());
  return scaled < minimum ? minimum : scaled;
}

Dataset MakeDataset(DatasetKind kind, uint64_t seed) {
  switch (kind) {
    case DatasetKind::kMovieLens: {
      MovieLensConfig config;
      config.num_users = Scaled(28);
      config.num_movies = Scaled(8);
      config.ratings_per_user = 5;
      config.seed = seed;
      return MovieLensGenerator::Generate(config);
    }
    case DatasetKind::kWikipedia: {
      WikipediaConfig config;
      config.num_users = Scaled(20);
      config.num_pages = Scaled(12);
      config.edits_per_user = 4;
      config.seed = seed;
      return WikipediaGenerator::Generate(config);
    }
    case DatasetKind::kDdp: {
      DdpConfig config;
      config.num_executions = Scaled(8);
      config.num_db_vars = Scaled(10);
      config.num_cost_vars = Scaled(8);
      config.seed = seed;
      return DdpGenerator::Generate(config);
    }
  }
  return MovieLensGenerator::Generate(MovieLensConfig{});
}

namespace {

AlgoResult FromOutcome(const Result<SummaryOutcome>& outcome) {
  AlgoResult r;
  if (!outcome.ok()) {
    std::fprintf(stderr, "algorithm run failed: %s\n",
                 outcome.status().ToString().c_str());
    return r;
  }
  const SummaryOutcome& o = outcome.value();
  r.distance = o.final_distance;
  r.size = static_cast<double>(o.final_size);
  r.total_nanos = o.total_nanos;
  r.steps = static_cast<int>(o.steps.size());
  if (!o.steps.empty()) {
    double total = 0.0;
    for (const StepRecord& s : o.steps) total += s.candidate_eval_nanos;
    r.avg_candidate_nanos = total / o.steps.size();
  }
  r.ok = true;
  return r;
}

}  // namespace

AlgoResult RunProvApprox(Dataset* ds, const RunConfig& config) {
  int64_t harness_nanos = 0;
  AlgoResult r;
  {
    Timer::Scoped harness_timer(&harness_nanos);
    std::vector<Valuation> valuations =
        ds->valuation_class->Generate(*ds->provenance, ds->ctx);
    EnumeratedDistance oracle(ds->provenance.get(), ds->registry.get(),
                              ds->val_func.get(), valuations, config.threads);
    SummarizerOptions options;
    options.w_dist = config.w_dist;
    options.w_size = 1.0 - config.w_dist;
    options.target_dist = config.target_dist;
    options.target_size = config.target_size;
    options.max_steps = config.max_steps;
    options.candidates.arity = config.merge_arity;
    options.use_ordinal_ranks = config.use_ordinal_ranks;
    options.tie_break = config.tie_break;
    options.phi = ds->phi;
    options.threads = config.threads;
    Summarizer summarizer(ds->provenance.get(), ds->registry.get(), &ds->ctx,
                          &ds->constraints, &oracle, &valuations, options);

    // When prox::obs is live, attribute registry deltas to this run: the
    // same quantities FromOutcome derives per-run, plus oracle-call counts
    // the outcome does not carry. Falls back to outcome fields when
    // recording is disabled (PROX_OBS=0 or -DPROX_OBS_DISABLED=ON).
    if (!obs::Enabled()) {
      r = FromOutcome(summarizer.Run());
    } else {
      const obs::MetricsSnapshot before =
          obs::MetricsRegistry::Default().Snapshot();
      Result<SummaryOutcome> outcome = summarizer.Run();
      const obs::MetricsSnapshot after =
          obs::MetricsRegistry::Default().Snapshot();
      r = FromOutcome(outcome);
      if (r.ok) {
        const double scored =
            after.CounterValue("prox_summarize_candidates_scored_total") -
            before.CounterValue("prox_summarize_candidates_scored_total");
        const double eval_nanos =
            after.CounterValue("prox_summarize_candidate_eval_nanos_total") -
            before.CounterValue("prox_summarize_candidate_eval_nanos_total");
        if (scored > 0) r.avg_candidate_nanos = eval_nanos / scored;
        r.steps = static_cast<int>(
            after.CounterValue("prox_summarize_steps_total") -
            before.CounterValue("prox_summarize_steps_total"));
        r.total_nanos =
            after.HistogramSum("prox_summarize_run_duration_nanos") -
            before.HistogramSum("prox_summarize_run_duration_nanos");
        r.distance_calls = static_cast<int64_t>(
            after.CounterValue("prox_distance_enumerated_calls_total") -
            before.CounterValue("prox_distance_enumerated_calls_total"));
      }
    }
  }
  r.harness_nanos = harness_nanos;
  return r;
}

AlgoResult RunClustering(Dataset* ds, const RunConfig& config) {
  if (ds->features.empty()) return AlgoResult{};  // DDP: no feature vectors
  int64_t harness_nanos = 0;
  AlgoResult r;
  {
    Timer::Scoped harness_timer(&harness_nanos);
    std::vector<Valuation> valuations =
        ds->valuation_class->Generate(*ds->provenance, ds->ctx);
    EnumeratedDistance oracle(ds->provenance.get(), ds->registry.get(),
                              ds->val_func.get(), valuations, config.threads);
    ClusteringOptions options;
    options.linkage = Linkage::kSingle;  // the linkage §6.2 presents
    options.target_dist = config.target_dist;
    options.target_size = config.target_size;
    options.max_steps = config.max_steps;
    options.phi = ds->phi;
    options.threads = config.threads;
    ClusteringSummarizer cs(ds->provenance.get(), ds->registry.get(), &ds->ctx,
                            &ds->constraints, &oracle, options);
    for (const auto& [domain, features] : ds->features) {
      cs.SetFeatures(domain, features);
    }
    r = FromOutcome(cs.Run());
  }
  r.harness_nanos = harness_nanos;
  return r;
}

AlgoResult RunRandom(Dataset* ds, const RunConfig& config) {
  int64_t harness_nanos = 0;
  AlgoResult r;
  {
    Timer::Scoped harness_timer(&harness_nanos);
    std::vector<Valuation> valuations =
        ds->valuation_class->Generate(*ds->provenance, ds->ctx);
    EnumeratedDistance oracle(ds->provenance.get(), ds->registry.get(),
                              ds->val_func.get(), valuations, config.threads);
    RandomSummarizerOptions options;
    options.target_dist = config.target_dist;
    options.target_size = config.target_size;
    options.max_steps = config.max_steps;
    options.seed = config.random_seed;
    options.phi = ds->phi;
    RandomSummarizer rs(ds->provenance.get(), ds->registry.get(), &ds->ctx,
                        &ds->constraints, &oracle, options);
    r = FromOutcome(rs.Run());
  }
  r.harness_nanos = harness_nanos;
  return r;
}

TablePrinter::TablePrinter(std::vector<std::string> columns, int width)
    : columns_(std::move(columns)), width_(width) {}

void TablePrinter::PrintTitle(const std::string& title) const {
  std::printf("\n== %s ==\n", title.c_str());
}

void TablePrinter::PrintHeader() const {
  for (const auto& c : columns_) {
    std::printf("%-*s", width_, c.c_str());
  }
  std::printf("\n");
  for (size_t i = 0; i < columns_.size() * static_cast<size_t>(width_); ++i) {
    std::printf("-");
  }
  std::printf("\n");
}

void TablePrinter::PrintRow(const std::vector<std::string>& cells) const {
  for (const auto& c : cells) {
    std::printf("%-*s", width_, c.c_str());
  }
  std::printf("\n");
}

std::string Cell(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string AlgoResultJson(const std::string& experiment,
                           const std::string& dataset, const std::string& algo,
                           int threads, int64_t input_size,
                           const AlgoResult& r) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "{\"experiment\":\"%s\",\"dataset\":\"%s\",\"algo\":\"%s\","
      "\"threads\":%d,\"input_size\":%lld,\"steps\":%d,\"distance\":%.6f,"
      "\"size\":%.0f,\"total_ms\":%.3f,\"us_per_candidate\":%.3f,"
      "\"ok\":%s}",
      experiment.c_str(), dataset.c_str(), algo.c_str(), threads,
      static_cast<long long>(input_size), r.steps, r.distance, r.size,
      r.total_nanos / 1e6, r.avg_candidate_nanos / 1e3,
      r.ok ? "true" : "false");
  return buf;
}

}  // namespace bench
}  // namespace prox
