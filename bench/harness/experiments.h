#ifndef PROX_BENCH_HARNESS_EXPERIMENTS_H_
#define PROX_BENCH_HARNESS_EXPERIMENTS_H_

#include <string>

#include "harness/bench_util.h"

namespace prox {
namespace bench {

/// The wDist experiment (§6.4): sweeps wDist ∈ {0, 0.1, ..., 1} with
/// TARGET-DIST = 1 and TARGET-SIZE = 1 (bounds cancelled) and a step
/// budget, printing average distance and average size per algorithm —
/// the (a) panels of Figures 6.1/6.2 (MovieLens), 6.6/6.7 (Wikipedia)
/// and 6.8/6.9 (DDP). Clustering and Random ignore wDist, so their
/// columns are seed-averaged constants, as in the thesis.
void RunWdistExperiment(DatasetKind kind, const std::string& dataset_name,
                        const std::string& figure_label, int max_steps,
                        int num_seeds);

/// The TARGET-SIZE experiment (§6.5): wDist = 1, sweeps the size bound and
/// prints the average distance each algorithm reaches — the (b) panels of
/// Figures 6.1 / 6.6 / 6.8.
void RunTargetSizeExperiment(DatasetKind kind,
                             const std::string& dataset_name,
                             const std::string& figure_label, int num_seeds);

/// The TARGET-DIST experiment (§6.6): wDist = 0, sweeps the distance bound
/// and prints the average size each algorithm reaches — the (b) panels of
/// Figures 6.2 / 6.7 / 6.9.
void RunTargetDistExperiment(DatasetKind kind,
                             const std::string& dataset_name,
                             const std::string& figure_label, int num_seeds);

}  // namespace bench
}  // namespace prox

#endif  // PROX_BENCH_HARNESS_EXPERIMENTS_H_
