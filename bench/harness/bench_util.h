#ifndef PROX_BENCH_HARNESS_BENCH_UTIL_H_
#define PROX_BENCH_HARNESS_BENCH_UTIL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "baselines/clustering_summarizer.h"
#include "baselines/random_summarizer.h"
#include "datasets/dataset.h"
#include "summarize/summarizer.h"

namespace prox {
namespace bench {

/// Scale factor from the PROX_BENCH_SCALE env var (default 1.0). Workload
/// sizes multiply by it, so `PROX_BENCH_SCALE=3 bench_...` reproduces the
/// figures on larger inputs.
double BenchScale();

/// Rounds scale-adjusted sizes, keeping a sane minimum.
int Scaled(int base, int minimum = 2);

/// Which generator to use.
enum class DatasetKind { kMovieLens, kWikipedia, kDdp };

/// Builds a dataset of `kind` at the experiments' default sizes × scale.
Dataset MakeDataset(DatasetKind kind, uint64_t seed);

/// Common experiment knobs (subset of SummarizerOptions shared by all
/// three algorithms).
struct RunConfig {
  double w_dist = 0.5;
  double target_dist = 1.0;
  int64_t target_size = 1;
  int max_steps = 20;
  int merge_arity = 2;
  bool use_ordinal_ranks = false;
  TieBreak tie_break = TieBreak::kTaxonomyMax;
  uint64_t random_seed = 0xBADC0FFEE;
  /// exec worker threads (0 = process default, 1 = serial; results are
  /// identical at every setting — see docs/PARALLELISM.md).
  int threads = 1;
};

/// One algorithm run, reduced to the quantities the figures plot.
struct AlgoResult {
  double distance = 0.0;
  double size = 0.0;
  double total_nanos = 0.0;
  double avg_candidate_nanos = 0.0;
  int steps = 0;
  bool ok = false;
  /// Wall time of the whole harness call (dataset-side setup + run),
  /// measured with Timer::Scoped — an upper bound on total_nanos.
  int64_t harness_nanos = 0;
  /// Distance-oracle invocations attributed to this run (registry delta of
  /// `prox_distance_enumerated_calls_total`; 0 when prox::obs is disabled
  /// or for uninstrumented baselines).
  int64_t distance_calls = 0;
};

/// Runs Prov-Approx (Algorithm 1) on the dataset's full provenance with
/// its Table 5.1 defaults.
AlgoResult RunProvApprox(Dataset* ds, const RunConfig& config);

/// Runs the Clustering baseline (skips — ok=false — when the dataset has
/// no feature vectors, like DDP; §6.10).
AlgoResult RunClustering(Dataset* ds, const RunConfig& config);

/// Runs the Random baseline.
AlgoResult RunRandom(Dataset* ds, const RunConfig& config);

/// Pretty table printing: fixed-width columns, one header + rows.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> columns, int width = 14);
  void PrintTitle(const std::string& title) const;
  void PrintHeader() const;
  void PrintRow(const std::vector<std::string>& cells) const;

 private:
  std::vector<std::string> columns_;
  int width_;
};

/// Formats a double for a table cell.
std::string Cell(double value, int digits = 4);

/// Renders one run as a machine-readable JSON line, e.g. for
/// scripts/bench_smoke.sh or ad-hoc plotting:
///   {"experiment":"E6","dataset":"movielens","algo":"prov-approx",
///    "threads":4,"input_size":180,"steps":12,"distance":0.0312,
///    "size":24,"total_ms":12.5,"us_per_candidate":41.2,"ok":true}
std::string AlgoResultJson(const std::string& experiment,
                           const std::string& dataset, const std::string& algo,
                           int threads, int64_t input_size,
                           const AlgoResult& r);

}  // namespace bench
}  // namespace prox

#endif  // PROX_BENCH_HARNESS_BENCH_UTIL_H_
