/// \file Streaming ingest benchmarks (docs/INGEST.md): ApplyBatch and
/// digest microbenches, plus the `--json` self-checking baseline committed
/// as BENCH_ingest.json. The baseline measures, on all three dataset
/// families, the two ways a serving replica can answer a re-summarize
/// after a ~1% delta batch — warm-start the greedy continuation from the
/// previous mapping state (SummaryMaintainer) vs run Algorithm 1 from
/// scratch over the grown dataset — and enforces the docs/INGEST.md
/// contract: warm >= 3x faster than full on the largest config of every
/// family. Warm-start engagement is verified through the
/// `prox_warmstart_*` counters before anything is timed.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "datasets/ddp.h"
#include "datasets/movielens.h"
#include "datasets/wikipedia.h"
#include "ingest/delta.h"
#include "ingest/ingest_metrics.h"
#include "ingest/maintainer.h"
#include "ingest/synthetic.h"
#include "obs/metrics.h"
#include "service/session.h"

using namespace prox;

namespace {

MovieLensConfig MovieLens(int users) {
  MovieLensConfig config;
  config.num_users = users;
  config.num_movies = 12;
  config.seed = 3;
  return config;
}

WikipediaConfig Wikipedia(int users) {
  WikipediaConfig config;
  config.num_users = users;
  config.num_pages = 30;
  config.edits_per_user = 4;
  config.seed = 11;
  return config;
}

DdpConfig Ddp(int executions) {
  DdpConfig config;
  config.num_executions = executions;
  config.num_db_vars = 12;
  config.num_cost_vars = 10;
  return config;
}

SummarizationRequest Request() {
  SummarizationRequest request;
  request.w_dist = 0.5;
  request.w_size = 0.5;
  request.max_steps = 32;
  request.threads = 1;
  return request;
}

/// The warm-start counter families the baseline checks for engagement
/// (same name+help as the summarizer's registration, so the registry hands
/// back the same counters).
obs::Counter* WarmstartRuns() {
  return obs::MetricsRegistry::Default().GetCounter(
      "prox_warmstart_runs_total",
      "Summarization runs warm-started from a previous mapping state "
      "(docs/INGEST.md).");
}
obs::Counter* WarmstartReplayedMerges() {
  return obs::MetricsRegistry::Default().GetCounter(
      "prox_warmstart_replayed_merges_total",
      "Merges replayed from warm-start seeds instead of re-searched.");
}

void Check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "bench_ingest: %s\n", what);
    std::exit(1);
  }
}

// ---------------------------------------------------------------------------
// Interactive microbenches
// ---------------------------------------------------------------------------

void BM_ApplyBatch(benchmark::State& state) {
  const MovieLensConfig config = MovieLens(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    state.PauseTiming();
    Dataset dataset = MovieLensGenerator::Generate(config);
    Result<ingest::DeltaBatch> delta =
        ingest::SyntheticMovieLensDelta(dataset, 2, 3, 1);
    if (!delta.ok()) state.SkipWithError(delta.status().ToString().c_str());
    state.ResumeTiming();
    Result<ingest::ApplyReceipt> receipt =
        ingest::ApplyBatch(&dataset, delta.value(), 1);
    if (!receipt.ok()) {
      state.SkipWithError(receipt.status().ToString().c_str());
    }
    benchmark::DoNotOptimize(receipt);
  }
}
BENCHMARK(BM_ApplyBatch)->Arg(40)->Arg(160)->Arg(400);

void BM_BatchDigest(benchmark::State& state) {
  Dataset dataset =
      MovieLensGenerator::Generate(MovieLens(static_cast<int>(state.range(0))));
  Result<ingest::DeltaBatch> delta =
      ingest::SyntheticMovieLensDelta(dataset, 4, 3, 1);
  if (!delta.ok()) {
    state.SkipWithError(delta.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ingest::BatchDigest(delta.value()));
  }
}
BENCHMARK(BM_BatchDigest)->Arg(40)->Arg(400);

// ---------------------------------------------------------------------------
// --json baseline mode (BENCH_ingest.json). Intercepted before
// benchmark::Initialize, like bench_store.
// ---------------------------------------------------------------------------

/// One timed run of `op` (warm and full re-summarize are both one-shot:
/// they consume the session state they start from).
double OnceNs(const std::function<void()>& op) {
  using Clock = std::chrono::steady_clock;
  auto start = Clock::now();
  op();
  return std::chrono::duration<double, std::nano>(Clock::now() - start)
      .count();
}

double Median3(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[1];
}

/// One dataset size within a family: how to build it and how to grow it
/// by a ~1% delta.
struct ConfigSpec {
  std::string label;
  std::function<Dataset()> make;
  std::function<Result<ingest::DeltaBatch>(const Dataset&)> delta;
};

struct ConfigResult {
  std::string label;
  double delta_fraction = 0.0;
  int replayed_merges = 0;
  int continuation_steps = 0;
  double full_ns = 0.0;
  double warm_ns = 0.0;
  double speedup = 0.0;
};

/// Warm path, once: prime a summary, ingest the delta, re-summarize
/// through the maintainer. Returns the report and the wall time of the
/// re-summarize alone.
ingest::MaintainReport RunWarmOnce(const ConfigSpec& spec, double* ns) {
  ProxSession session(spec.make());
  session.SelectAll();
  Result<int64_t> primed = session.Summarize(Request());
  Check(primed.ok(), "priming summarize failed");
  ingest::SummaryMaintainer maintainer(&session);
  Result<ingest::DeltaBatch> delta = spec.delta(session.dataset());
  Check(delta.ok(), "delta construction failed");
  Check(maintainer.Ingest(delta.value()).ok(), "ingest failed");
  ingest::MaintainReport out;
  *ns = OnceNs([&] {
    Result<ingest::MaintainReport> report = maintainer.Resummarize(Request());
    Check(report.ok(), "warm re-summarize failed");
    out = report.value();
  });
  Check(out.warm, "maintainer did not take the warm path");
  return out;
}

/// Full re-run, once: grow the dataset by the same delta before the
/// session exists, then time Algorithm 1 from scratch.
double RunFullOnce(const ConfigSpec& spec) {
  Dataset dataset = spec.make();
  Result<ingest::DeltaBatch> delta = spec.delta(dataset);
  Check(delta.ok(), "delta construction failed");
  Check(ingest::ApplyBatch(&dataset, delta.value(), 1).ok(),
        "direct ApplyBatch failed");
  ProxSession session(std::move(dataset));
  session.SelectAll();
  double ns = OnceNs([&] {
    Check(session.Summarize(Request()).ok(), "full summarize failed");
  });
  return ns;
}

ConfigResult MeasureConfig(const ConfigSpec& spec) {
  // Engagement pre-flight: the warm path must actually warm-start (report
  // AND counters) before any timing is trusted.
  const uint64_t runs_before = WarmstartRuns()->value();
  const uint64_t merges_before = WarmstartReplayedMerges()->value();
  double preflight_ns = 0.0;
  ingest::MaintainReport preflight = RunWarmOnce(spec, &preflight_ns);
  Check(WarmstartRuns()->value() == runs_before + 1,
        "prox_warmstart_runs_total did not advance on the warm path");
  Check(WarmstartReplayedMerges()->value() >
            merges_before + static_cast<uint64_t>(0),
        "prox_warmstart_replayed_merges_total did not advance");
  Check(preflight.replayed_merges > 0, "warm run replayed no merges");

  ConfigResult result;
  result.label = spec.label;
  result.delta_fraction = preflight.delta_fraction;
  result.replayed_merges = preflight.replayed_merges;
  result.continuation_steps = preflight.continuation_steps;

  // The pre-flight run doubles as the first warm sample: each warm sample
  // pays an untimed priming full run, which dominates the baseline's wall
  // time on the larger configs.
  std::vector<double> warm_runs = {preflight_ns};
  std::vector<double> full_runs;
  for (int rep = 0; rep < 3; ++rep) {
    if (rep < 2) {
      double ns = 0.0;
      RunWarmOnce(spec, &ns);
      warm_runs.push_back(ns);
    }
    full_runs.push_back(RunFullOnce(spec));
  }
  result.warm_ns = Median3(warm_runs);
  result.full_ns = Median3(full_runs);
  result.speedup = result.full_ns / result.warm_ns;
  return result;
}

struct FamilyResult {
  std::string family;
  std::vector<ConfigResult> configs;
};

int RunJsonBaseline() {
  std::vector<FamilyResult> families;

  {
    FamilyResult family{"movielens", {}};
    for (int users : {30, 60, 100}) {
      const int delta_users = std::max(1, users / 100);
      family.configs.push_back(MeasureConfig(ConfigSpec{
          "users=" + std::to_string(users),
          [users] { return MovieLensGenerator::Generate(MovieLens(users)); },
          [delta_users](const Dataset& dataset) {
            return ingest::SyntheticMovieLensDelta(dataset, delta_users, 3,
                                                   1);
          }}));
    }
    families.push_back(std::move(family));
  }
  {
    FamilyResult family{"wikipedia", {}};
    for (int users : {40, 80}) {
      const int delta_users = std::max(1, users / 100);
      family.configs.push_back(MeasureConfig(ConfigSpec{
          "users=" + std::to_string(users),
          [users] { return WikipediaGenerator::Generate(Wikipedia(users)); },
          [delta_users](const Dataset& dataset) {
            return ingest::SyntheticWikipediaDelta(dataset, delta_users, 3,
                                                   1);
          }}));
    }
    families.push_back(std::move(family));
  }
  {
    FamilyResult family{"ddp", {}};
    for (int executions : {12, 32}) {
      family.configs.push_back(MeasureConfig(ConfigSpec{
          "executions=" + std::to_string(executions),
          [executions] { return DdpGenerator::Generate(Ddp(executions)); },
          [](const Dataset& dataset) {
            return ingest::SyntheticDdpDelta(dataset, 1, 1, 1);
          }}));
    }
    families.push_back(std::move(family));
  }

  std::printf("{\n  \"bench\": \"bench_ingest --json\",\n");
  std::printf("  \"workload\": \"~1%% synthetic delta per family, "
              "w_dist 0.5, max_steps 32, threads 1\",\n");
  std::printf("  \"contract\": \"warm re-summarize >= 3x full re-run on "
              "the largest config of every family\",\n");
  std::printf("  \"families\": [\n");
  bool gate_ok = true;
  std::string gate_detail;
  for (size_t f = 0; f < families.size(); ++f) {
    const FamilyResult& family = families[f];
    std::printf("    {\"family\": \"%s\", \"configs\": [\n",
                family.family.c_str());
    for (size_t i = 0; i < family.configs.size(); ++i) {
      const ConfigResult& r = family.configs[i];
      std::printf("      {\"label\": \"%s\", \"delta_fraction\": %.4f, "
                  "\"replayed_merges\": %d, \"continuation_steps\": %d, "
                  "\"full_ns\": %.0f, \"warm_ns\": %.0f, "
                  "\"speedup\": %.2f}%s\n",
                  r.label.c_str(), r.delta_fraction, r.replayed_merges,
                  r.continuation_steps, r.full_ns, r.warm_ns, r.speedup,
                  i + 1 < family.configs.size() ? "," : "");
    }
    const ConfigResult& largest = family.configs.back();
    if (largest.speedup < 3.0) {
      gate_ok = false;
      gate_detail += (gate_detail.empty() ? "" : ", ") + family.family +
                     " " + largest.label;
    }
    std::printf("    ]}%s\n", f + 1 < families.size() ? "," : "");
  }
  std::printf("  ]\n}\n");

  if (!gate_ok) {
    std::fprintf(stderr,
                 "bench_ingest --json: FAIL warm speedup < 3.0 on the "
                 "largest config (%s)\n",
                 gate_detail.c_str());
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--json") return RunJsonBaseline();
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
