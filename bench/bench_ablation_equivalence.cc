/// \file Experiment E16 — ablation of the GroupEquivalent first step
/// (Proposition 4.2.1): summarization with and without the distance-0
/// equivalence grouping, on a MovieLens variant with duplicated user
/// profiles so equivalence classes are non-trivial under
/// Cancel-Single-Attribute valuations.

#include <cstdio>

#include "datasets/movielens.h"
#include "harness/bench_util.h"
#include "summarize/distance.h"
#include "summarize/summarizer.h"

using namespace prox;
using namespace prox::bench;

namespace {

struct RunStats {
  double dist = 0.0;
  double size = 0.0;
  double steps = 0.0;
  double equivalence_merges = 0.0;
  double time_ms = 0.0;
};

RunStats Run(bool group_equivalent, int num_seeds) {
  RunStats stats;
  for (int seed = 1; seed <= num_seeds; ++seed) {
    // Few attribute combinations => many identical profiles.
    MovieLensConfig config;
    config.num_users = Scaled(30);
    config.num_movies = Scaled(8);
    config.ratings_per_user = 4;
    config.seed = seed;
    Dataset ds = MovieLensGenerator::Generate(config);
    std::vector<Valuation> valuations =
        ds.valuation_class->Generate(*ds.provenance, ds.ctx);
    EnumeratedDistance oracle(ds.provenance.get(), ds.registry.get(),
                              ds.val_func.get(), valuations);
    SummarizerOptions options;
    options.w_dist = 0.5;
    options.w_size = 0.5;
    options.max_steps = 15;
    options.group_equivalent_first = group_equivalent;
    options.phi = ds.phi;
    Summarizer s(ds.provenance.get(), ds.registry.get(), &ds.ctx,
                 &ds.constraints, &oracle, &valuations, options);
    auto outcome = s.Run();
    if (!outcome.ok()) continue;
    stats.dist += outcome.value().final_distance / num_seeds;
    stats.size += static_cast<double>(outcome.value().final_size) / num_seeds;
    stats.steps += static_cast<double>(outcome.value().steps.size()) /
                   num_seeds;
    stats.equivalence_merges +=
        static_cast<double>(outcome.value().equivalence_merges) / num_seeds;
    stats.time_ms += outcome.value().total_nanos / 1e6 / num_seeds;
  }
  return stats;
}

}  // namespace

int main() {
  const int num_seeds = 3;
  std::printf("GroupEquivalent ablation (MovieLens) — Proposition 4.2.1's "
              "free first step\n");
  std::printf("wDist = 0.5, max 15 greedy steps, %d seeds, scale %.2f\n",
              num_seeds, BenchScale());

  TablePrinter table({"equivalence", "eq-merges", "steps", "distance",
                      "size", "time-ms"});
  table.PrintTitle("With vs without the distance-0 grouping");
  table.PrintHeader();
  for (bool on : {true, false}) {
    RunStats stats = Run(on, num_seeds);
    table.PrintRow({on ? "on" : "off", Cell(stats.equivalence_merges, 1),
                    Cell(stats.steps, 1), Cell(stats.dist),
                    Cell(stats.size, 1), Cell(stats.time_ms, 2)});
  }
  std::printf("\nExpected: with the grouping on, part of the compression is "
              "obtained for free\n(distance 0) before any greedy step, "
              "yielding a smaller final size at equal\nstep budget and "
              "distance.\n");
  return 0;
}
