/// \file Experiment E4 — Figures 6.3a and 6.3b: average distance and size
/// as functions of wDist for varying step budgets (20 / 30 / 40) on the
/// MovieLens dataset. More steps ⇒ larger distance, smaller size; at 40
/// steps most runs exhaust their candidates early, flattening the curves.

#include <cstdio>

#include "harness/bench_util.h"

using namespace prox::bench;

int main() {
  const int step_budgets[] = {20, 30, 40};
  const int num_seeds = 3;

  std::printf("Varying-number-of-steps experiment (MovieLens) — "
              "Figures 6.3a / 6.3b\n");
  std::printf("TARGET-DIST = 1, TARGET-SIZE = 1, %d seeds, scale %.2f\n",
              num_seeds, BenchScale());

  TablePrinter dist_table({"wDist", "steps=20", "steps=30", "steps=40"});
  TablePrinter size_table({"wDist", "steps=20", "steps=30", "steps=40"});
  std::vector<std::vector<std::string>> dist_rows, size_rows;

  for (int i = 0; i <= 10; ++i) {
    const double w_dist = i / 10.0;
    std::vector<std::string> dist_row = {Cell(w_dist, 1)};
    std::vector<std::string> size_row = {Cell(w_dist, 1)};
    for (int steps : step_budgets) {
      double dist = 0.0, size = 0.0;
      for (int seed = 1; seed <= num_seeds; ++seed) {
        prox::Dataset ds = MakeDataset(DatasetKind::kMovieLens, seed);
        RunConfig config;
        config.w_dist = w_dist;
        config.max_steps = steps;
        AlgoResult r = RunProvApprox(&ds, config);
        dist += r.distance / num_seeds;
        size += r.size / num_seeds;
      }
      dist_row.push_back(Cell(dist));
      size_row.push_back(Cell(size, 1));
    }
    dist_rows.push_back(std::move(dist_row));
    size_rows.push_back(std::move(size_row));
  }

  dist_table.PrintTitle(
      "Average distance vs wDist for varying step budgets (Fig 6.3a)");
  dist_table.PrintHeader();
  for (const auto& row : dist_rows) dist_table.PrintRow(row);

  size_table.PrintTitle(
      "Average size vs wDist for varying step budgets (Fig 6.3b)");
  size_table.PrintHeader();
  for (const auto& row : size_rows) size_table.PrintRow(row);
  return 0;
}
