/// \file Experiment E5 — Figures 6.4a and 6.4b: usage-time ratio (average
/// time to evaluate 10 random valuations on the summary, divided by the
/// time on the original provenance) as a function of wDist, for 20 and 30
/// step budgets. Ratios below 1 mean the summary is faster to use;
/// Prov-Approx's ratio grows with wDist (larger summaries) and shrinks
/// with more steps, as in the thesis.

#include <cstdio>

#include "common/rng.h"
#include "common/timer.h"
#include "harness/bench_util.h"
#include "summarize/distance.h"
#include "summarize/summarizer.h"

using namespace prox;
using namespace prox::bench;

namespace {

constexpr int kNumValuations = 10;
constexpr int kTimingReps = 200;

/// Times evaluation of `expr` under each valuation (transformed through
/// `state` when given), repeated for a stable reading. Returns total ns.
double TimeEvaluations(const ProvenanceExpression& expr,
                       const MappingState* state,
                       const std::vector<Valuation>& valuations, size_t n) {
  int64_t total_nanos = 0;
  double sink = 0.0;
  {
    Timer::Scoped scope(&total_nanos);
    for (int rep = 0; rep < kTimingReps; ++rep) {
      for (const Valuation& v : valuations) {
        MaterializedValuation mat =
            state != nullptr ? state->Transform(v, n)
                             : MaterializedValuation(v, n);
        EvalResult r = expr.Evaluate(mat);
        sink += r.kind() == EvalResult::Kind::kVector
                    ? (r.coords().empty() ? 0.0 : r.coords()[0].value)
                    : r.scalar();
      }
    }
  }
  // Keep the optimizer honest.
  if (sink == -1.0) std::printf("impossible\n");
  return static_cast<double>(total_nanos);
}

struct RatioRow {
  double pa = 0.0;
  double clustering = 0.0;
  double random = 0.0;
};

/// Summarizes with each algorithm and returns usage-time ratios.
RatioRow UsageRatios(double w_dist, int max_steps, int num_seeds) {
  RatioRow out;
  int cl_runs = 0;
  for (int seed = 1; seed <= num_seeds; ++seed) {
    Dataset ds = MakeDataset(DatasetKind::kMovieLens, seed);
    std::vector<Valuation> all =
        ds.valuation_class->Generate(*ds.provenance, ds.ctx);
    // 10 random valuations from the class (§6.8).
    Rng rng(91 + seed);
    std::vector<Valuation> sample;
    for (int i = 0; i < kNumValuations; ++i) {
      sample.push_back(all[rng.PickIndex(all.size())]);
    }

    RunConfig config;
    config.w_dist = w_dist;
    config.max_steps = max_steps;
    config.random_seed = 500 + seed;

    // Summarize first (mutates the registry), then time both sides with
    // the final registry size.
    EnumeratedDistance oracle(ds.provenance.get(), ds.registry.get(),
                              ds.val_func.get(), all);
    SummarizerOptions options;
    options.w_dist = w_dist;
    options.w_size = 1.0 - w_dist;
    options.max_steps = max_steps;
    options.phi = ds.phi;
    Summarizer summarizer(ds.provenance.get(), ds.registry.get(), &ds.ctx,
                          &ds.constraints, &oracle, &all, options);
    auto pa = summarizer.Run();

    Result<SummaryOutcome> cl = Status::Unimplemented("skipped");
    {
      ClusteringOptions cl_options;
      cl_options.max_steps = max_steps;
      cl_options.phi = ds.phi;
      EnumeratedDistance cl_oracle(ds.provenance.get(), ds.registry.get(),
                                   ds.val_func.get(), all);
      ClusteringSummarizer cs(ds.provenance.get(), ds.registry.get(),
                              &ds.ctx, &ds.constraints, &cl_oracle,
                              cl_options);
      for (const auto& [domain, features] : ds.features) {
        cs.SetFeatures(domain, features);
      }
      cl = cs.Run();
    }

    EnumeratedDistance rd_oracle(ds.provenance.get(), ds.registry.get(),
                                 ds.val_func.get(), all);
    RandomSummarizerOptions rd_options;
    rd_options.max_steps = max_steps;
    rd_options.seed = config.random_seed;
    rd_options.phi = ds.phi;
    RandomSummarizer rs(ds.provenance.get(), ds.registry.get(), &ds.ctx,
                        &ds.constraints, &rd_oracle, rd_options);
    auto rd = rs.Run();

    const size_t n = ds.registry->size();
    double base = TimeEvaluations(*ds.provenance, nullptr, sample, n);
    if (pa.ok()) {
      out.pa += TimeEvaluations(*pa.value().summary, &pa.value().state,
                                sample, n) /
                base / num_seeds;
    }
    if (cl.ok()) {
      out.clustering += TimeEvaluations(*cl.value().summary,
                                        &cl.value().state, sample, n) /
                        base;
      ++cl_runs;
    }
    if (rd.ok()) {
      out.random += TimeEvaluations(*rd.value().summary, &rd.value().state,
                                    sample, n) /
                    base / num_seeds;
    }
  }
  if (cl_runs > 0) out.clustering /= cl_runs;
  return out;
}

}  // namespace

int main() {
  const int num_seeds = 2;
  std::printf("Usage-time experiment (MovieLens) — Figures 6.4a / 6.4b\n");
  std::printf("%d random valuations, %d timing reps, %d seeds, scale %.2f\n",
              kNumValuations, kTimingReps, num_seeds, BenchScale());

  for (int steps : {20, 30}) {
    TablePrinter table({"wDist", "ProvApprox", "Clustering", "Random"});
    table.PrintTitle("Usage-time ratio (summary/original), " +
                     std::to_string(steps) + " steps (Fig 6.4" +
                     (steps == 20 ? "a" : "b") + ")");
    table.PrintHeader();
    for (int i = 0; i <= 10; i += 2) {
      const double w_dist = i / 10.0;
      RatioRow row = UsageRatios(w_dist, steps, num_seeds);
      table.PrintRow({Cell(w_dist, 1), Cell(row.pa, 3),
                      Cell(row.clustering, 3), Cell(row.random, 3)});
    }
  }
  return 0;
}
