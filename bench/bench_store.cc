/// \file Snapshot store benchmarks (docs/STORE.md): save / validate / load
/// microbenches, plus the `--json` self-checking baseline committed as
/// BENCH_store.json. The baseline times the two boot paths a serving
/// replica has — regenerate the dataset from its generator vs load the
/// PROXSNAP snapshot — and the two first-request paths — cold Algorithm 1
/// vs a warm persisted cache — and enforces the docs/STORE.md contract:
/// snapshot load >= 3x faster than regeneration on the largest config,
/// and a warm first request >= 10x faster than a cold one.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "datasets/movielens.h"
#include "ir/adopt.h"
#include "ir/term_pool.h"
#include "engine/engine.h"
#include "serve/router.h"
#include "service/session.h"
#include "store/codec.h"
#include "store/snapshot.h"

using namespace prox;

namespace {

MovieLensConfig Config(int users) {
  MovieLensConfig config;
  config.num_users = users;
  config.num_movies = 12;
  config.seed = 3;
  return config;
}

std::string SnapPath(int users) {
  return "/tmp/bench_store_" + std::to_string(users) + ".snap";
}

/// Generates and saves once, returning the snapshot path.
std::string EnsureSnapshot(int users) {
  const std::string path = SnapPath(users);
  Dataset ds = MovieLensGenerator::Generate(Config(users));
  store::Status s = store::SaveDataset(ds, store::SaveOptions{}, path);
  if (!s.ok()) {
    std::fprintf(stderr, "bench_store: %s\n", s.ToString().c_str());
    std::exit(1);
  }
  return path;
}

/// The boot path a snapshot replaces: generate the dataset, then intern
/// the provenance into a TermPool the way Summarizer::Run does on its
/// first touch. A loaded snapshot hands back the interned form directly.
Dataset GenerateAndAdopt(const MovieLensConfig& config) {
  Dataset ds = MovieLensGenerator::Generate(config);
  auto pool = std::make_shared<ir::TermPool>();
  ds.provenance = ir::Adopt(*ds.provenance, pool);
  return ds;
}

void BM_GenerateAdopt(benchmark::State& state) {
  const MovieLensConfig config = Config(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(GenerateAndAdopt(config));
  }
}
BENCHMARK(BM_GenerateAdopt)->Arg(40)->Arg(160)->Arg(400);

void BM_SaveSnapshot(benchmark::State& state) {
  Dataset ds = MovieLensGenerator::Generate(
      Config(static_cast<int>(state.range(0))));
  const std::string path = SnapPath(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    store::Status s = store::SaveDataset(ds, store::SaveOptions{}, path);
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
  }
}
BENCHMARK(BM_SaveSnapshot)->Arg(40)->Arg(160)->Arg(400);

void BM_OpenValidate(benchmark::State& state) {
  const std::string path = EnsureSnapshot(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    std::shared_ptr<store::Snapshot> snapshot;
    store::Status s = store::Snapshot::Open(path, &snapshot);
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
    benchmark::DoNotOptimize(snapshot);
  }
}
BENCHMARK(BM_OpenValidate)->Arg(40)->Arg(160)->Arg(400);

void BM_LoadDataset(benchmark::State& state) {
  const std::string path = EnsureSnapshot(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    std::shared_ptr<store::Snapshot> snapshot;
    store::Status s = store::Snapshot::Open(path, &snapshot);
    Dataset loaded;
    if (s.ok()) s = store::LoadDataset(snapshot, store::LoadOptions{}, &loaded);
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
    benchmark::DoNotOptimize(loaded);
  }
}
BENCHMARK(BM_LoadDataset)->Arg(40)->Arg(160)->Arg(400);

// ---------------------------------------------------------------------------
// --json baseline mode (BENCH_store.json). Intercepted before
// benchmark::Initialize, like bench_core_micro.
// ---------------------------------------------------------------------------

double MinNsPerOp(const std::function<void()>& op) {
  op();  // warm up
  using Clock = std::chrono::steady_clock;
  auto time_iters = [&](long iters) {
    auto start = Clock::now();
    for (long i = 0; i < iters; ++i) op();
    return std::chrono::duration<double, std::nano>(Clock::now() - start)
        .count();
  };
  long iters = 1;
  while (time_iters(iters) < 2e6 && iters < (1L << 30)) iters *= 4;
  double best = time_iters(iters);
  for (int rep = 1; rep < 5; ++rep) best = std::min(best, time_iters(iters));
  return best / static_cast<double>(iters);
}

/// One timed run of `op` (for operations too slow / too stateful for the
/// min-of-reps loop: first requests, which are one-shot by definition).
double OnceNs(const std::function<void()>& op) {
  using Clock = std::chrono::steady_clock;
  auto start = Clock::now();
  op();
  return std::chrono::duration<double, std::nano>(Clock::now() - start)
      .count();
}

int RunJsonBaseline() {
  struct Row {
    int users;
    double generate_ns;
    double load_ns;
  };
  const std::vector<int> sizes = {40, 160, 400};
  std::vector<Row> rows;
  for (int users : sizes) {
    const std::string path = EnsureSnapshot(users);
    const MovieLensConfig config = Config(users);
    rows.push_back(
        {users,
         MinNsPerOp([&] {
           benchmark::DoNotOptimize(GenerateAndAdopt(config));
         }),
         MinNsPerOp([&] {
           std::shared_ptr<store::Snapshot> snapshot;
           store::Status s = store::Snapshot::Open(path, &snapshot);
           Dataset loaded;
           if (s.ok()) {
             s = store::LoadDataset(snapshot, store::LoadOptions{}, &loaded);
           }
           if (!s.ok()) std::exit(1);
           benchmark::DoNotOptimize(loaded);
         })});
  }

  // First-request latency: cold generator boot (Algorithm 1 runs) vs warm
  // snapshot boot (persisted cache answers). Both one-shot, median of 3.
  const std::string body = "{\"w_dist\": 0.5, \"max_steps\": 6}";
  auto post = [&] {
    serve::HttpRequest request;
    request.method = "POST";
    request.target = "/v1/summarize";
    request.version = "HTTP/1.1";
    request.body = body;
    return request;
  };
  const int warm_users = 40;
  const std::string warm_path = "/tmp/bench_store_warm.snap";
  {
    std::unique_ptr<engine::Engine> eng = engine::Engine::FromDataset(
        MovieLensGenerator::Generate(Config(warm_users)));
    serve::Router router(eng.get());
    if (router.Handle(post()).status != 200) std::exit(1);
    if (!eng->PersistSnapshot(warm_path).ok()) std::exit(1);
  }
  auto median3 = [](std::vector<double> v) {
    std::sort(v.begin(), v.end());
    return v[1];
  };
  std::vector<double> cold_runs;
  std::vector<double> warm_runs;
  for (int rep = 0; rep < 3; ++rep) {
    cold_runs.push_back(OnceNs([&] {
      std::unique_ptr<engine::Engine> eng = engine::Engine::FromDataset(
          MovieLensGenerator::Generate(Config(warm_users)));
      serve::Router router(eng.get());
      if (router.Handle(post()).status != 200) std::exit(1);
    }));
    warm_runs.push_back(OnceNs([&] {
      engine::Engine::Options options;
      options.dataset.snapshot_path = warm_path;
      Result<std::unique_ptr<engine::Engine>> booted =
          engine::Engine::Create(options);
      if (!booted.ok()) std::exit(1);
      serve::Router router(booted.value().get());
      if (router.Handle(post()).status != 200) std::exit(1);
    }));
  }
  const double cold_ns = median3(cold_runs);
  const double warm_ns = median3(warm_runs);

  double largest_speedup = 0.0;
  std::printf("{\n  \"bench\": \"bench_store --json\",\n");
  std::printf("  \"workload\": \"MovieLens 12 movies, seed 3\",\n");
  std::printf("  \"contract\": \"snapshot load >= 3x regenerate on the "
              "largest config; warm first request >= 10x cold\",\n");
  std::printf("  \"boot\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    const double speedup = r.generate_ns / r.load_ns;
    if (r.users == sizes.back()) largest_speedup = speedup;
    std::printf("    {\"users\": %d, \"generate_adopt_ns\": %.0f, "
                "\"load_ns\": %.0f, \"speedup\": %.2f}%s\n",
                r.users, r.generate_ns, r.load_ns, speedup,
                i + 1 < rows.size() ? "," : "");
  }
  const double first_request_speedup = cold_ns / warm_ns;
  std::printf("  ],\n");
  std::printf("  \"first_request\": {\"cold_ns\": %.0f, \"warm_ns\": %.0f, "
              "\"speedup\": %.2f},\n",
              cold_ns, warm_ns, first_request_speedup);
  std::printf("  \"largest_load_speedup\": %.2f\n}\n", largest_speedup);

  if (largest_speedup < 3.0) {
    std::fprintf(stderr,
                 "bench_store --json: FAIL load speedup %.2f < 3.0 on the "
                 "largest config\n",
                 largest_speedup);
    return 1;
  }
  if (first_request_speedup < 10.0) {
    std::fprintf(stderr,
                 "bench_store --json: FAIL warm first-request speedup %.2f "
                 "< 10.0\n",
                 first_request_speedup);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--json") return RunJsonBaseline();
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
