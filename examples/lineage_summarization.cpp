/// \file lineage_summarization.cpp
/// \brief From query lineage to summaries: run a positive relational
/// algebra query with semiring provenance tracking ([21] — the model
/// Chapter 2 builds on), take a result tuple's ℕ[Ann] lineage polynomial,
/// and summarize it with Algorithm 1 — the approximate-lineage use case
/// the related-work chapter contrasts with [26].

#include <cstdio>

#include "provenance/polynomial_expr.h"
#include "summarize/distance.h"
#include "summarize/summarizer.h"
#include "summarize/val_func.h"
#include "summarize/valuation_class.h"
#include "workflow/relalg.h"

using namespace prox;

int main() {
  AnnotationRegistry registry;
  DomainId claims_domain = registry.AddDomain("claim");
  DomainId sources_domain = registry.AddDomain("source");

  // Claims(topic, claim) — tuples annotated by which crowd member made
  // them; Sources(claim, source) — supporting sources. Crowd members carry
  // an expertise attribute the summarizer may group by.
  EntityTable members("Members");
  AttrId expertise = members.AddAttribute("Expertise");
  auto add_member_ann = [&](const char* name, const char* level) {
    uint32_t row = members.AddRow({level}).MoveValue();
    return registry.Add(claims_domain, name, row).MoveValue();
  };
  AnnotationId a1 = add_member_ann("alice", "expert");
  AnnotationId a2 = add_member_ann("bob", "expert");
  AnnotationId a3 = add_member_ann("carol", "novice");
  AnnotationId a4 = add_member_ann("dave", "novice");
  AnnotationId s1 = registry.Add(sources_domain, "paper1").MoveValue();
  AnnotationId s2 = registry.Add(sources_domain, "paper2").MoveValue();

  KRelation claims("Claims", {"topic", "claim"});
  claims.InsertBase({"health", "X"}, a1);
  claims.InsertBase({"health", "X"}, a2);
  claims.InsertBase({"health", "X"}, a3);
  claims.InsertBase({"health", "Y"}, a4);
  KRelation sources("Sources", {"claim", "source"});
  sources.InsertBase({"X", "strong"}, s1);
  sources.InsertBase({"Y", "strong"}, s2);

  // Query: which topics have a strongly-sourced claim?
  //   π_topic(σ_{source=strong}(Claims ⋈ Sources))
  auto joined = relalg::NaturalJoin(claims, sources).MoveValue();
  auto strong = relalg::SelectEq(joined, "source", "strong").MoveValue();
  auto result = relalg::Project(strong, {"topic"}).MoveValue();
  std::printf("query result with lineage:\n%s\n",
              result.ToString(registry).c_str());

  // Summarize the lineage of the "health" tuple.
  PolynomialExpression lineage(result.tuples()[0].provenance);
  std::printf("lineage of (health): %s  (size %lld)\n\n",
              lineage.ToString(registry).c_str(),
              static_cast<long long>(lineage.Size()));

  SemanticContext ctx;
  ctx.registry = &registry;
  ctx.tables.emplace(claims_domain, std::move(members));
  ConstraintSet constraints;
  constraints.SetRule(claims_domain, std::make_unique<SharedAttributeRule>(
                                         std::vector<AttrId>{expertise}));

  CancelSingleAnnotation cls(std::vector<DomainId>{claims_domain});
  std::vector<Valuation> valuations = cls.Generate(lineage, ctx);
  AbsoluteDifferenceValFunc vf;  // lineage evaluates to derivation counts
  EnumeratedDistance oracle(&lineage, &registry, &vf, valuations);
  SummarizerOptions options;
  options.w_dist = 0.7;
  options.w_size = 0.3;
  options.max_steps = 3;
  Summarizer summarizer(&lineage, &registry, &ctx, &constraints, &oracle,
                        &valuations, options);
  auto outcome = summarizer.Run();
  if (!outcome.ok()) {
    std::printf("summarization failed: %s\n",
                outcome.status().ToString().c_str());
    return 1;
  }
  std::printf("summarized lineage (size %lld, distance %.4f):\n  %s\n",
              static_cast<long long>(outcome.value().final_size),
              outcome.value().final_distance,
              outcome.value().summary->ToString(registry).c_str());
  for (const StepRecord& step : outcome.value().steps) {
    std::printf("  step %d -> %s\n", step.step, step.summary_name.c_str());
  }

  // Approximate influence check (the [26] question "which facts are most
  // influential"): cancel the expert group vs one novice.
  auto count_without = [&](std::vector<AnnotationId> dead,
                           const char* label) {
    Valuation v(std::move(dead), label);
    MaterializedValuation exact_view(v, registry.size());
    MaterializedValuation approx_view =
        outcome.value().state.Transform(v, registry.size());
    std::printf("  %-24s exact %.0f derivations, approx %.0f\n", label,
                lineage.Evaluate(exact_view).scalar(),
                outcome.value().summary->Evaluate(approx_view).scalar());
  };
  std::printf("\nderivation counts under hypothetical deletions:\n");
  count_without({}, "none deleted");
  count_without({a1, a2}, "experts deleted");
  count_without({a3}, "carol deleted");
  (void)s2;
  return 0;
}
