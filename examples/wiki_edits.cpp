/// \file wiki_edits.cpp
/// \brief The Wikipedia use case of Example 5.2.1: edit provenance
/// `(Username·PageTitle) ⊗ (EditType, 1) ⊕ …` is summarized under
/// taxonomy constraints, grouping pages below common WordNet concepts and
/// users by contribution level, to answer questions like "do top
/// contributors prefer guitarist pages over singer pages?".

#include <cstdio>

#include "datasets/wikipedia.h"
#include "summarize/distance.h"
#include "summarize/summarizer.h"

using namespace prox;

int main() {
  WikipediaConfig config;
  config.num_users = 18;
  config.num_pages = 10;
  config.seed = 5;
  Dataset ds = WikipediaGenerator::Generate(config);

  std::printf("Wikipedia edit provenance (size %lld):\n  %.220s…\n\n",
              static_cast<long long>(ds.provenance->Size()),
              ds.provenance->ToString(*ds.registry).c_str());

  // Summarize: taxonomy-consistent cancel-single-annotation valuations,
  // SUM aggregation, Euclidean VAL-FUNC (the Table 5.1 configuration).
  std::vector<Valuation> valuations =
      ds.valuation_class->Generate(*ds.provenance, ds.ctx);
  EnumeratedDistance oracle(ds.provenance.get(), ds.registry.get(),
                            ds.val_func.get(), valuations);
  SummarizerOptions options;
  options.w_dist = 0.6;
  options.w_size = 0.4;
  options.max_steps = 12;
  options.tie_break = TieBreak::kTaxonomyMax;  // prefer specific concepts
  options.phi = ds.phi;
  Summarizer summarizer(ds.provenance.get(), ds.registry.get(), &ds.ctx,
                        &ds.constraints, &oracle, &valuations, options);
  auto outcome = summarizer.Run();
  if (!outcome.ok()) {
    std::printf("summarization failed: %s\n",
                outcome.status().ToString().c_str());
    return 1;
  }

  std::printf("summary (size %lld, distance %.4f):\n  %s\n\n",
              static_cast<long long>(outcome.value().final_size),
              outcome.value().final_distance,
              outcome.value().summary->ToString(*ds.registry).c_str());

  std::printf("groups chosen by the algorithm:\n");
  for (const auto& [summary, members] : outcome.value().state.summaries()) {
    std::printf("  %s <- {", ds.registry->name(summary).c_str());
    for (size_t i = 0; i < members.size(); ++i) {
      std::printf("%s%s", i ? ", " : "",
                  ds.registry->name(members[i]).c_str());
    }
    std::printf("}\n");
  }

  // Insight query: total major edits per concept group, for top
  // contributors only — cancel everyone below TopContributor.
  const EntityTable* users = ds.ctx.TableFor(ds.domain("wiki_user"));
  AttrId level = users->FindAttribute("ContributionLevel").MoveValue();
  std::vector<AnnotationId> cancelled;
  for (AnnotationId u :
       ds.registry->AnnotationsInDomain(ds.domain("wiki_user"))) {
    if (ds.registry->is_summary(u)) continue;
    uint32_t row = ds.registry->entity_row(u);
    if (users->ValueNameOf(row, level) != "TopContributor") {
      cancelled.push_back(u);
    }
  }
  Valuation top_only(cancelled, "keep only top contributors");
  MaterializedValuation exact_view(top_only, ds.registry->size());
  MaterializedValuation approx_view =
      outcome.value().state.Transform(top_only, ds.registry->size());

  std::printf("\nmajor edits by top contributors (exact, per page):\n  %s\n",
              ds.provenance->Evaluate(exact_view)
                  .ToString(*ds.registry)
                  .c_str());
  std::printf("major edits by top contributors (summary, per group):\n  %s\n",
              outcome.value()
                  .summary->Evaluate(approx_view)
                  .ToString(*ds.registry)
                  .c_str());
  return 0;
}
