/// \file prox_cli.cpp
/// \brief A command-line stand-in for the PROX web UI (Chapter 7): drives
/// the three views — selection, summarization, summary/evaluation — over
/// the prox::engine::Engine facade (the same engine prox_server and the
/// C ABI expose).
///
/// Reads commands from stdin (scriptable); with no input it runs a demo
/// script. Commands:
///   titles                      list movie titles (selection view)
///   search <substr>             search titles
///   select <title>              select one movie's provenance
///   selectall                   select everything
///   summarize [wdist] [steps]   run Algorithm 1 (summarization view)
///   expr                        print the summary expression
///   groups                      print the summary groups
///   eval <name> [<name> ...]    evaluate an assignment cancelling names
///   evalattr <attr> <value>     cancel all carriers of attribute=value
///   save <file>                 serialize the summary expression
///   step <k>                    show the expression after k merges
///   help | quit
///
/// Flags:
///   --demo                run the built-in demo script and exit
///   --json                summarize prints the canonical JSON outcome
///                         serialization (engine/codec.h — the same bytes
///                         prox_server's POST /v1/summarize returns)
///   --dataset=FAMILY      generated dataset family: movielens (default),
///                         wikipedia, or ddp — the engine's reproducible
///                         demo shapes (engine/engine.h DatasetSpec)
///   --threads=N           worker threads for summarization (0 = auto via
///                         PROX_THREADS / hardware, 1 = serial; results
///                         are identical at every setting)
///   --metrics-out=<path>  on exit, write a Prometheus text snapshot of
///                         the prox::obs metrics registry to <path>
///   --trace-out=<path>    on exit, write the recorded trace spans
///                         (run/step/candidate-eval/oracle hierarchy) as
///                         JSON to <path>
///   --log-json            structured JSON-lines logging to stderr: one
///                         access-log line per command, same schema as
///                         prox_server --access-log
///                         (docs/OBSERVABILITY.md)
///   --validate-access-log read JSON lines from stdin and check each
///                         against the access-log schema; exit 0 iff all
///                         match (scripts/check_log_schema.sh)
///   --save-snapshot=<path>
///                         generate the dataset, write it as a PROXSNAP
///                         binary snapshot (docs/STORE.md) and exit
///   --load-snapshot=<path>
///                         boot the engine from a snapshot instead of
///                         generating the dataset
///   --append-deltas=<path>
///                         offline replay of a streaming ingest log: apply
///                         each JSON line as a delta batch (docs/INGEST.md)
///                         before entering the command loop; a line's
///                         "resummarize" directive re-summarizes through
///                         the warm-start maintainer, exactly as
///                         prox_server's POST /v1/ingest does
///   --help                print usage and exit

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/cpu_features.h"
#include "common/json.h"
#include "engine/codec.h"
#include "engine/engine.h"
#include "ingest/delta.h"
#include "obs/export.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/request_context.h"
#include "obs/trace.h"

using namespace prox;

namespace {

void PrintReport(const char* label, const EvaluationReport& report) {
  std::printf("%s (evaluated in %lld ns):\n", label,
              static_cast<long long>(report.eval_nanos));
  std::printf("  %-28s %s\n", "Movie", "Aggregated Rating");
  for (const auto& [title, value] : report.rows) {
    std::printf("  %-28s %.1f\n", title.c_str(), value);
  }
}

int RunCommand(engine::Engine& eng, const std::string& line, int threads,
               bool json) {
  std::istringstream in(line);
  std::string cmd;
  in >> cmd;
  if (cmd.empty()) return 0;

  if (cmd == "quit" || cmd == "exit") return 1;

  if (cmd == "help") {
    std::printf("commands: titles search select selectall summarize expr "
                "groups eval evalattr quit\n");
  } else if (cmd == "titles") {
    for (const auto& t : eng.ListTitles()) std::printf("  %s\n", t.c_str());
  } else if (cmd == "search") {
    std::string needle;
    std::getline(in, needle);
    for (const auto& t : eng.SearchTitles(
             std::string(needle.empty() ? "" : needle.substr(1)))) {
      std::printf("  %s\n", t.c_str());
    }
  } else if (cmd == "select") {
    std::string title;
    std::getline(in, title);
    if (!title.empty()) title = title.substr(1);
    SelectionCriteria criteria;
    criteria.titles = {title};
    auto size = eng.Select(criteria);
    if (size.ok()) {
      std::printf("selected provenance size: %lld\n",
                  static_cast<long long>(size.value()));
    } else {
      std::printf("error: %s\n", size.status().ToString().c_str());
    }
  } else if (cmd == "selectall") {
    std::printf("selected provenance size: %lld\n",
                static_cast<long long>(eng.SelectAll()));
  } else if (cmd == "summarize") {
    SummarizationRequest request;
    request.w_dist = 0.5;
    request.max_steps = 10;
    in >> request.w_dist >> request.max_steps;
    request.w_size = 1.0 - request.w_dist;
    request.threads = threads;
    auto outcome = eng.Summarize(request);
    if (outcome.ok()) {
      if (json) {
        // The canonical SummaryOutcome serialization (engine/codec.h):
        // byte-identical to the POST /v1/summarize response body of
        // prox_server (and the C ABI) over the same dataset and knobs.
        std::fputs(outcome.value().body.c_str(), stdout);
      } else {
        std::printf("summary size: %lld (distance %.4f)\n",
                    static_cast<long long>(outcome.value().final_size),
                    outcome.value().final_distance);
      }
    } else {
      std::printf("error: %s\n", outcome.status().ToString().c_str());
    }
  } else if (cmd == "expr") {
    auto expr = eng.SummaryExpression();
    if (expr.ok()) {
      std::printf("%s\n", expr.value().c_str());
    } else {
      std::printf("error: %s\n", expr.status().ToString().c_str());
    }
  } else if (cmd == "groups") {
    for (const auto& line_out : eng.DescribeGroups()) {
      std::printf("  %s\n", line_out.c_str());
    }
  } else if (cmd == "eval") {
    Assignment assignment;
    std::string name;
    while (in >> name) assignment.false_annotations.push_back(name);
    auto exact = eng.EvaluateOnSelection(assignment);
    auto approx = eng.EvaluateOnSummary(assignment);
    if (exact.ok()) PrintReport("exact (original provenance)", exact.value());
    if (approx.ok()) PrintReport("approx (summary)", approx.value());
    if (!exact.ok()) {
      std::printf("error: %s\n", exact.status().ToString().c_str());
    }
  } else if (cmd == "evalattr") {
    std::string attr, value;
    in >> attr >> value;
    Assignment assignment;
    assignment.false_attributes = {{attr, value}};
    auto exact = eng.EvaluateOnSelection(assignment);
    auto approx = eng.EvaluateOnSummary(assignment);
    if (exact.ok()) PrintReport("exact (original provenance)", exact.value());
    if (approx.ok()) PrintReport("approx (summary)", approx.value());
    if (!exact.ok()) {
      std::printf("error: %s\n", exact.status().ToString().c_str());
    }
  } else if (cmd == "step") {
    int k = 0;
    in >> k;
    auto at = eng.SummaryAtStep(k);
    if (at.ok()) {
      std::printf("after %d merge(s), size %lld:\n%s\n", k,
                  static_cast<long long>(at.value().size),
                  at.value().expression.c_str());
    } else {
      std::printf("error: %s\n", at.status().message().c_str());
    }
  } else if (cmd == "save") {
    std::string path;
    in >> path;
    auto text = eng.SerializedSummary();
    if (!text.ok()) {
      std::printf("error: %s\n", text.status().message().c_str());
    } else if (path.empty()) {
      std::printf("usage: save <file>\n");
    } else {
      std::ofstream out(path);
      out << text.value();
      std::printf("wrote %zu bytes to %s\n", text.value().size(),
                  path.c_str());
    }
  } else {
    std::printf("unknown command: %s (try 'help')\n", cmd.c_str());
  }
  return 0;
}

/// RunCommand wrapped in a request scope: the command becomes one traced,
/// access-logged "request" (method CLI, path = the command word), so the
/// CLI and the server produce schema-identical lines.
int RunLoggedCommand(engine::Engine& eng, const std::string& line,
                     int threads, bool json) {
  std::istringstream in(line);
  std::string cmd;
  in >> cmd;
  if (cmd.empty() || !obs::Enabled()) {
    return RunCommand(eng, line, threads, json);
  }
  obs::RequestContext context;
  int result;
  int64_t latency_nanos;
  {
    obs::RequestScope scope(&context);
    obs::TraceSpan span("cli.command");
    result = RunCommand(eng, line, threads, json);
    latency_nanos = span.Close();
  }
  obs::AccessLogRecord record;
  record.method = "CLI";
  record.path = cmd;
  record.status = 200;
  record.latency_us = latency_nanos / 1000;
  record.trace_id = context.trace_id().ToHex();
  obs::WriteAccessLog(record);
  return result;
}

/// --validate-access-log: every stdin line must be a JSON object whose
/// sorted key set equals the documented access-log schema.
int ValidateAccessLogStdin() {
  const std::vector<std::string>& schema = obs::AccessLogSchemaKeys();
  std::string line;
  int line_number = 0;
  int checked = 0;
  while (std::getline(std::cin, line)) {
    ++line_number;
    if (line.empty()) continue;
    Result<JsonValue> doc = ParseJson(line);
    if (!doc.ok()) {
      std::fprintf(stderr, "prox_cli: line %d: %s\n", line_number,
                   doc.status().ToString().c_str());
      return 1;
    }
    if (!doc.value().is_object()) {
      std::fprintf(stderr, "prox_cli: line %d: not a JSON object\n",
                   line_number);
      return 1;
    }
    std::vector<std::string> keys;
    for (const auto& [key, value] : doc.value().members()) keys.push_back(key);
    std::sort(keys.begin(), keys.end());
    // "suppressed" may ride along on rate-limited lines; it is not part
    // of the fixed schema, so drop it before comparing.
    keys.erase(std::remove(keys.begin(), keys.end(), "suppressed"),
               keys.end());
    if (keys != schema) {
      std::string got;
      for (const std::string& key : keys) {
        if (!got.empty()) got += ",";
        got += key;
      }
      std::fprintf(stderr,
                   "prox_cli: line %d: key set [%s] does not match the "
                   "access-log schema\n",
                   line_number, got.c_str());
      return 1;
    }
    ++checked;
  }
  if (checked == 0) {
    std::fprintf(stderr, "prox_cli: no access-log lines on stdin\n");
    return 1;
  }
  std::printf("prox_cli: %d access-log line(s) match the schema\n", checked);
  return 0;
}

void PrintUsage() {
  std::printf(
      "usage: prox_cli [--demo] [--json] [--dataset=FAMILY] [--threads=N]\n"
      "                [--metrics-out=<path>] [--trace-out=<path>]\n"
      "                [--log-json]\n"
      "\n"
      "  --demo                run the built-in demo script and exit\n"
      "  --json                summarize prints the canonical JSON\n"
      "                        serialization of the outcome (the same\n"
      "                        bytes prox_server's POST /v1/summarize\n"
      "                        returns; see docs/SERVING.md)\n"
      "  --dataset=FAMILY      generated dataset family: movielens\n"
      "                        (default), wikipedia, or ddp — the engine's\n"
      "                        reproducible demo shapes\n"
      "  --threads=N           worker threads for summarization (0 = auto\n"
      "                        via PROX_THREADS / hardware, 1 = serial)\n"
      "  --simd=TIER           cap the batch-kernel SIMD tier: off|scalar,\n"
      "                        sse4.2, or auto|avx2 (default). Results are\n"
      "                        bit-identical at every tier; the PROX_SIMD\n"
      "                        env var is the equivalent kill switch\n"
      "                        (docs/KERNELS.md)\n"
      "  --metrics-out=<path>  on exit, write a Prometheus text snapshot of\n"
      "                        the prox::obs metrics registry to <path>\n"
      "  --trace-out=<path>    on exit, write the recorded trace spans as\n"
      "                        JSON to <path>\n"
      "  --log-json            JSON-lines logging to stderr: one access-log\n"
      "                        line per command, the prox_server\n"
      "                        --access-log schema (docs/OBSERVABILITY.md)\n"
      "  --validate-access-log validate stdin against the access-log\n"
      "                        schema and exit\n"
      "  --save-snapshot=<path>  write the dataset as a PROXSNAP snapshot\n"
      "                        (docs/STORE.md) and exit\n"
      "  --load-snapshot=<path>  boot from a snapshot instead of generating\n"
      "  --append-deltas=<path>  replay a JSON-lines delta stream through\n"
      "                        the warm-start maintainer before the command\n"
      "                        loop (docs/INGEST.md)\n"
      "  --help                print this message and exit\n"
      "\n"
      "With no --demo, commands are read from stdin (type 'help').\n"
      "Metric names are catalogued in docs/OBSERVABILITY.md; set PROX_OBS=0\n"
      "to disable recording.\n");
}

/// Writes `text` to `path`, reporting failures on stderr.
void WriteFileOrWarn(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "prox_cli: cannot open %s for writing\n",
                 path.c_str());
    return;
  }
  out << text;
  std::fprintf(stderr, "prox_cli: wrote %zu bytes to %s\n", text.size(),
               path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool demo = false;
  bool json = false;
  bool log_json = false;
  bool validate_access_log = false;
  int threads = 1;
  std::string dataset_family;
  std::string metrics_out;
  std::string trace_out;
  std::string save_snapshot;
  std::string load_snapshot;
  std::string append_deltas;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--demo") {
      demo = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--log-json") {
      log_json = true;
    } else if (arg == "--validate-access-log") {
      validate_access_log = true;
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return 0;
    } else if (arg.rfind("--dataset=", 0) == 0) {
      dataset_family = arg.substr(std::string("--dataset=").size());
      if (dataset_family != "movielens" && dataset_family != "wikipedia" &&
          dataset_family != "ddp") {
        std::fprintf(stderr, "prox_cli: bad --dataset value in %s\n",
                     arg.c_str());
        return 2;
      }
    } else if (arg.rfind("--threads=", 0) == 0) {
      try {
        threads = std::stoi(arg.substr(std::string("--threads=").size()));
      } catch (const std::exception&) {
        threads = -1;
      }
      if (threads < 0) {
        std::fprintf(stderr, "prox_cli: bad --threads value in %s\n",
                     arg.c_str());
        return 2;
      }
    } else if (arg.rfind("--simd=", 0) == 0) {
      const std::string value = arg.substr(std::string("--simd=").size());
      if (value == "off" || value == "scalar" || value == "0") {
        prox::common::SetSimdTierCap(prox::common::SimdTier::kScalar);
      } else if (value == "sse4.2" || value == "sse42" || value == "1") {
        prox::common::SetSimdTierCap(prox::common::SimdTier::kSse42);
      } else if (value == "auto" || value == "avx2" || value == "2") {
        prox::common::SetSimdTierCap(prox::common::SimdTier::kAvx2);
      } else {
        std::fprintf(stderr, "prox_cli: bad --simd value in %s\n",
                     arg.c_str());
        return 2;
      }
    } else if (arg.rfind("--metrics-out=", 0) == 0) {
      metrics_out = arg.substr(std::string("--metrics-out=").size());
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      trace_out = arg.substr(std::string("--trace-out=").size());
    } else if (arg.rfind("--save-snapshot=", 0) == 0) {
      save_snapshot = arg.substr(std::string("--save-snapshot=").size());
    } else if (arg.rfind("--load-snapshot=", 0) == 0) {
      load_snapshot = arg.substr(std::string("--load-snapshot=").size());
    } else if (arg.rfind("--append-deltas=", 0) == 0) {
      append_deltas = arg.substr(std::string("--append-deltas=").size());
    } else {
      std::fprintf(stderr, "prox_cli: unknown flag %s\n", arg.c_str());
      PrintUsage();
      return 2;
    }
  }

  if (validate_access_log) return ValidateAccessLogStdin();

  // The sinks are function-local statics so they outlive every logging
  // call site; installation is what turns them on.
  if (log_json) {
    static obs::FileLogSink stderr_sink(stderr);
    obs::Logger::Default().SetSink(&stderr_sink);
    obs::SetAccessLogSink(&stderr_sink);
  }

  engine::Engine::Options engine_options;
  if (!load_snapshot.empty()) {
    engine_options.dataset.snapshot_path = load_snapshot;
  } else if (dataset_family == "wikipedia") {
    engine_options.dataset.family = engine::DatasetSpec::Family::kWikipedia;
  } else if (dataset_family == "ddp") {
    engine_options.dataset.family = engine::DatasetSpec::Family::kDdp;
  }
  Result<std::unique_ptr<engine::Engine>> booted =
      engine::Engine::Create(engine_options);
  if (!booted.ok()) {
    std::fprintf(stderr, "prox_cli: %s\n",
                 booted.status().ToString().c_str());
    return 1;
  }
  engine::Engine& eng = *booted.value();

  if (!save_snapshot.empty()) {
    if (Status s = eng.PersistSnapshot(save_snapshot); !s.ok()) {
      std::fprintf(stderr, "prox_cli: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("prox_cli: snapshot written to %s\n", save_snapshot.c_str());
    return 0;
  }

  if (!append_deltas.empty()) {
    std::ifstream deltas_in(append_deltas);
    if (!deltas_in) {
      std::fprintf(stderr, "prox_cli: cannot open %s\n",
                   append_deltas.c_str());
      return 1;
    }
    // The replay mirrors prox_server's POST /v1/ingest: one engine ingest
    // per line (ingest resets narrower selections to select-all), with
    // the warm/cold decision made by the engine's maintainer, exactly as
    // the online path does.
    std::string delta_line;
    int line_number = 0;
    while (std::getline(deltas_in, delta_line)) {
      ++line_number;
      if (delta_line.empty()) continue;
      Result<JsonValue> doc = ParseJson(delta_line);
      if (!doc.ok()) {
        std::fprintf(stderr, "prox_cli: %s:%d: %s\n", append_deltas.c_str(),
                     line_number, doc.status().ToString().c_str());
        return 1;
      }
      Result<ingest::DeltaBatch> batch =
          ingest::DeltaBatchFromJson(doc.value());
      if (!batch.ok()) {
        std::fprintf(stderr, "prox_cli: %s:%d: %s\n", append_deltas.c_str(),
                     line_number, batch.status().ToString().c_str());
        return 1;
      }
      Result<ingest::ApplyReceipt> receipt = eng.IngestDelta(batch.value());
      if (!receipt.ok()) {
        std::fprintf(stderr, "prox_cli: %s:%d: %s\n", append_deltas.c_str(),
                     line_number, receipt.status().ToString().c_str());
        return 1;
      }
      std::printf("ingested batch %llu: +%lld annotations, +%lld terms, "
                  "size %lld, digest %s\n",
                  static_cast<unsigned long long>(receipt.value().sequence),
                  static_cast<long long>(receipt.value().annotations_added),
                  static_cast<long long>(receipt.value().terms_added),
                  static_cast<long long>(receipt.value().expression_size),
                  receipt.value().digest.c_str());

      const JsonValue* directive = doc.value().Find("resummarize");
      if (directive == nullptr ||
          (directive->is_bool() && !directive->bool_value())) {
        continue;
      }
      SummarizationRequest request;
      if (directive->is_object()) {
        Result<SummarizationRequest> parsed =
            engine::SummarizationRequestFromJson(*directive);
        if (!parsed.ok()) {
          std::fprintf(stderr, "prox_cli: %s:%d: %s\n",
                       append_deltas.c_str(), line_number,
                       parsed.status().ToString().c_str());
          return 1;
        }
        request = parsed.value();
      } else if (!directive->is_bool()) {
        std::fprintf(stderr,
                     "prox_cli: %s:%d: 'resummarize' must be a bool or an "
                     "object\n",
                     append_deltas.c_str(), line_number);
        return 1;
      }
      if (request.threads == 0) request.threads = threads;
      Result<ingest::MaintainReport> report = eng.Resummarize(request);
      if (!report.ok()) {
        std::fprintf(stderr, "prox_cli: %s:%d: %s\n", append_deltas.c_str(),
                     line_number, report.status().ToString().c_str());
        return 1;
      }
      std::printf("resummarized (%s, delta %.4f): size %lld, "
                  "distance %.4f, %d replayed merge(s), %d step(s)\n",
                  report.value().warm ? "warm" : "full",
                  report.value().delta_fraction,
                  static_cast<long long>(report.value().final_size),
                  report.value().final_distance,
                  report.value().replayed_merges,
                  report.value().continuation_steps);
    }
  }

  std::printf("PROX — approximated provenance summarization "
              "(type 'help')\n\n");

  if (demo) {
    const char* script[] = {"titles",
                            "selectall",
                            "summarize 0.7 8",
                            "groups",
                            "expr",
                            "evalattr Gender M"};
    for (const char* line : script) {
      std::printf("prox> %s\n", line);
      RunLoggedCommand(eng, line, threads, json);
      std::printf("\n");
    }
  } else {
    std::string line;
    std::printf("prox> ");
    while (std::getline(std::cin, line)) {
      if (RunLoggedCommand(eng, line, threads, json) != 0) break;
      std::printf("prox> ");
    }
  }

  if (!metrics_out.empty()) {
    obs::UpdateProcessMetrics();
    WriteFileOrWarn(metrics_out, obs::RenderPrometheus(
                                     obs::MetricsRegistry::Default().Snapshot()));
  }
  if (!trace_out.empty()) {
    WriteFileOrWarn(trace_out,
                    obs::RenderTraceJson(obs::TraceBuffer::Default().Snapshot()));
  }
  return 0;
}
