/// \file quickstart.cpp
/// \brief Five-minute tour of the PROX library: build a tiny movie-review
/// provenance expression by hand (the running example of Chapters 2-4),
/// summarize it with Algorithm 1, and provision against a hypothetical
/// scenario.

#include <cstdio>

#include "provenance/aggregate_expr.h"
#include "summarize/distance.h"
#include "summarize/summarizer.h"
#include "summarize/val_func.h"
#include "summarize/valuation_class.h"

using namespace prox;

int main() {
  // --- 1. Annotations: three users reviewing two movies. -----------------
  AnnotationRegistry registry;
  DomainId user_domain = registry.AddDomain("user");
  DomainId movie_domain = registry.AddDomain("movie");

  // Users carry gender / role attributes (the semantics that make
  // summaries meaningful).
  EntityTable users("Users");
  AttrId gender = users.AddAttribute("Gender");
  AttrId role = users.AddAttribute("Role");
  (void)gender;
  (void)role;
  AnnotationId u1 = registry.Add(user_domain, "U1",
                                 users.AddRow({"F", "Audience"}).MoveValue())
                        .MoveValue();
  AnnotationId u2 = registry.Add(user_domain, "U2",
                                 users.AddRow({"F", "Critic"}).MoveValue())
                        .MoveValue();
  AnnotationId u3 = registry.Add(user_domain, "U3",
                                 users.AddRow({"M", "Audience"}).MoveValue())
                        .MoveValue();

  AnnotationId match_point =
      registry.Add(movie_domain, "Match Point", kNoEntity).MoveValue();
  AnnotationId blue_jasmine =
      registry.Add(movie_domain, "Blue Jasmine", kNoEntity).MoveValue();

  // --- 2. Provenance: P0 from Example 4.2.3. -----------------------------
  //   U1⊗(3,1) ⊕ U2⊗(5,1) ⊕ U3⊗(3,1)  for "Match Point"
  //   U2⊗(4,1)                         for "Blue Jasmine"
  AggregateExpression p0(AggKind::kMax);
  auto rate = [&](AnnotationId user, AnnotationId movie, double score) {
    TensorTerm t;
    t.monomial = Monomial({user, movie});
    t.group = movie;
    t.value = AggValue{score, 1.0};
    p0.AddTerm(std::move(t));
  };
  rate(u1, match_point, 3);
  rate(u2, match_point, 5);
  rate(u3, match_point, 3);
  rate(u2, blue_jasmine, 4);
  p0.Simplify();
  std::printf("original provenance (size %lld):\n  %s\n\n",
              static_cast<long long>(p0.Size()),
              p0.ToString(registry).c_str());

  // --- 3. Semantics: users may be grouped when they share gender or role.
  SemanticContext ctx;
  ctx.registry = &registry;
  ctx.tables.emplace(user_domain, std::move(users));
  ConstraintSet constraints;
  constraints.SetRule(user_domain, std::make_unique<SharedAttributeRule>(
                                       std::vector<AttrId>{0, 1}));

  // --- 4. Distance: Euclidean VAL-FUNC over cancel-single-annotation
  // valuations (the Example 4.2.3 setting).
  CancelSingleAnnotation valuation_class;
  std::vector<Valuation> valuations = valuation_class.Generate(p0, ctx);
  EuclideanValFunc val_func;
  EnumeratedDistance oracle(&p0, &registry, &val_func, valuations);

  // --- 5. Summarize, favoring distance (wDist = 1). ----------------------
  SummarizerOptions options;
  options.w_dist = 1.0;
  options.w_size = 0.0;
  options.max_steps = 2;
  Summarizer summarizer(&p0, &registry, &ctx, &constraints, &oracle,
                        &valuations, options);
  auto outcome = summarizer.Run();
  if (!outcome.ok()) {
    std::printf("summarization failed: %s\n",
                outcome.status().ToString().c_str());
    return 1;
  }
  const SummaryOutcome& result = outcome.value();
  std::printf("summary (size %lld, distance %.4f):\n  %s\n\n",
              static_cast<long long>(result.final_size),
              result.final_distance,
              result.summary->ToString(registry).c_str());
  for (const StepRecord& step : result.steps) {
    std::printf("  step %d: merged %zu annotations into \"%s\" "
                "(dist %.4f, size %lld)\n",
                step.step, step.merged_roots.size(),
                step.summary_name.c_str(), step.distance,
                static_cast<long long>(step.size));
  }

  // --- 6. Provision: what if U2's review is spam? -------------------------
  Valuation cancel_u2({u2}, "cancel U2");
  MaterializedValuation original_view(cancel_u2, registry.size());
  EvalResult original = p0.Evaluate(original_view);
  MaterializedValuation summary_view =
      result.state.Transform(cancel_u2, registry.size());
  EvalResult approx = result.summary->Evaluate(summary_view);
  std::printf("\nprovisioning \"U2 is a spammer\":\n");
  std::printf("  exact (on original): %s\n",
              original.ToString(registry).c_str());
  std::printf("  approx (on summary): %s\n",
              approx.ToString(registry).c_str());
  return 0;
}
