/// \file prox_server.cpp
/// \brief The PROX service, served: an HTTP front end over the
/// prox::engine::Engine facade (dataset, session, sharded summary cache
/// and ingest maintainer all live behind it), turning the Chapter 7 web
/// UI's three views into network endpoints (docs/SERVING.md):
///
///   POST /v1/select            selection view
///   POST /v1/summarize         Algorithm 1 (cached by selection + knobs)
///   GET  /v1/summary/groups    summary view, groups subview
///   POST /v1/evaluate          approximate provisioning
///   GET  /healthz              liveness + dataset fingerprint
///   GET  /metrics              Prometheus text (prox::obs)
///
/// Flags:
///   --port=N          listen port (default 8080; 0 = ephemeral, printed)
///   --transport=T     blocking (default) or epoll. The epoll transport
///                     (docs/NET.md) parks keep-alive connections in
///                     event-loop shards instead of blocking a worker
///                     thread per connection — same routes, byte-identical
///                     responses, same drain contract.
///   --shards=N        epoll event-loop shards (epoll transport only;
///                     default: half the cores, clamped to [1, 8])
///   --keepalive-ms=N  idle keep-alive budget before a connection is
///                     reaped, both transports (default 15000; counted in
///                     prox_serve_idle_reaped_total)
///   --threads=N       request worker threads (blocking: connection
///                     workers; epoll: handler pool) (default 4)
///   --cache-mb=N      SummaryCache byte budget in MiB (default 64)
///   --max-inflight=N  admitted-connection bound; beyond it new
///                     connections are shed with 503 (default 64)
///   --users=N --movies=N --seed=N
///                     MovieLens-style dataset shape (defaults 25/8/99,
///                     the prox_cli dataset)
///   --snapshot=<path> boot from a PROXSNAP snapshot (docs/STORE.md)
///                     instead of generating the dataset; persisted cache
///                     entries (if any) are restored warm. A snapshot
///                     that fails validation exits 1.
///   --cache-persist=<path>
///                     on shutdown, write the dataset plus the live
///                     summary cache as a snapshot to <path>, so the next
///                     --snapshot boot serves its first request warm
///   --access-log[=<path>]
///                     write one JSON access-log line per request
///                     (docs/OBSERVABILITY.md schema) to <path>, or to
///                     stderr when no path is given
///   --debug-endpoints enable GET /v1/debug/requests (the flight
///                     recorder: slowest + errored requests with spans)
///   --simd=TIER       cap the batch-kernel SIMD tier (docs/KERNELS.md):
///                     off|scalar|0, sse4.2|sse42|1, auto|avx2|2. Results
///                     are bit-identical at every tier; PROX_SIMD is the
///                     environment equivalent.
///
/// SIGINT / SIGTERM drain in-flight requests and exit 0.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>

#include "common/cpu_features.h"
#include "engine/engine.h"
#include "net/epoll_server.h"
#include "obs/log.h"
#include "serve/router.h"
#include "serve/server.h"

using namespace prox;

namespace {

void PrintUsage() {
  std::printf(
      "usage: prox_server [--port=N] [--transport=blocking|epoll]\n"
      "                   [--shards=N] [--keepalive-ms=N] [--threads=N]\n"
      "                   [--cache-mb=N] [--max-inflight=N] [--users=N]\n"
      "                   [--movies=N] [--seed=N] [--snapshot=<path>]\n"
      "                   [--cache-persist=<path>] [--simd=TIER]\n"
      "                   [--access-log[=<path>]] [--debug-endpoints]\n"
      "\n"
      "--transport=epoll serves the same routes over event-loop shards\n"
      "(docs/NET.md): responses are byte-identical to the blocking\n"
      "transport, but idle keep-alive connections cost an fd instead of\n"
      "a thread. --shards sizes the loops, --keepalive-ms bounds idle\n"
      "connections on either transport.\n"
      "--simd caps the batch-kernel SIMD tier (off|scalar, sse4.2,\n"
      "auto|avx2; results are bit-identical at every tier — see\n"
      "docs/KERNELS.md). PROX_SIMD=0 is the env equivalent.\n"
      "Serves the PROX session workflow over HTTP/1.1 (docs/SERVING.md).\n"
      "--snapshot boots from a PROXSNAP file and restores any persisted\n"
      "summary cache warm; --cache-persist writes one on shutdown\n"
      "(docs/STORE.md). --access-log emits one JSON line per request;\n"
      "--debug-endpoints exposes the flight recorder at\n"
      "GET /v1/debug/requests (docs/OBSERVABILITY.md). SIGINT drains\n"
      "in-flight requests and exits 0.\n");
}

/// `--flag=value` integer parse; exits with usage on garbage.
bool ParseIntFlag(const std::string& arg, const char* flag, long* out) {
  std::string prefix = std::string(flag) + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  char* end = nullptr;
  const std::string value = arg.substr(prefix.size());
  *out = std::strtol(value.c_str(), &end, 10);
  if (value.empty() || end != value.c_str() + value.size() || *out < 0) {
    std::fprintf(stderr, "prox_server: bad value in %s\n", arg.c_str());
    std::exit(2);
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  long port = 8080;
  std::string transport = "blocking";
  long shards = 0;
  long keepalive_ms = 15000;
  long threads = 4;
  long cache_mb = 64;
  long max_inflight = 64;
  long users = 25;
  long movies = 8;
  long seed = 99;
  std::string snapshot_path;
  std::string cache_persist;
  bool access_log = false;
  std::string access_log_path;
  bool debug_endpoints = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return 0;
    }
    if (arg.rfind("--transport=", 0) == 0) {
      transport = arg.substr(std::string("--transport=").size());
      if (transport != "blocking" && transport != "epoll") {
        std::fprintf(stderr, "prox_server: bad --transport value in %s\n",
                     arg.c_str());
        return 2;
      }
      continue;
    }
    if (ParseIntFlag(arg, "--port", &port) ||
        ParseIntFlag(arg, "--shards", &shards) ||
        ParseIntFlag(arg, "--keepalive-ms", &keepalive_ms) ||
        ParseIntFlag(arg, "--threads", &threads) ||
        ParseIntFlag(arg, "--cache-mb", &cache_mb) ||
        ParseIntFlag(arg, "--max-inflight", &max_inflight) ||
        ParseIntFlag(arg, "--users", &users) ||
        ParseIntFlag(arg, "--movies", &movies) ||
        ParseIntFlag(arg, "--seed", &seed)) {
      continue;
    }
    if (arg.rfind("--simd=", 0) == 0) {
      const std::string value = arg.substr(std::string("--simd=").size());
      if (value == "off" || value == "scalar" || value == "0") {
        common::SetSimdTierCap(common::SimdTier::kScalar);
      } else if (value == "sse4.2" || value == "sse42" || value == "1") {
        common::SetSimdTierCap(common::SimdTier::kSse42);
      } else if (value == "auto" || value == "avx2" || value == "2") {
        common::SetSimdTierCap(common::SimdTier::kAvx2);
      } else {
        std::fprintf(stderr, "prox_server: bad --simd value in %s\n",
                     arg.c_str());
        return 2;
      }
      continue;
    }
    if (arg.rfind("--snapshot=", 0) == 0) {
      snapshot_path = arg.substr(std::string("--snapshot=").size());
      continue;
    }
    if (arg.rfind("--cache-persist=", 0) == 0) {
      cache_persist = arg.substr(std::string("--cache-persist=").size());
      continue;
    }
    if (arg == "--access-log") {
      access_log = true;
      continue;
    }
    if (arg.rfind("--access-log=", 0) == 0) {
      access_log = true;
      access_log_path = arg.substr(std::string("--access-log=").size());
      continue;
    }
    if (arg == "--debug-endpoints") {
      debug_endpoints = true;
      continue;
    }
    std::fprintf(stderr, "prox_server: unknown flag %s\n", arg.c_str());
    PrintUsage();
    return 2;
  }

  // Block the shutdown signals before any thread spawns so every thread
  // inherits the mask and only the sigwait below sees them.
  sigset_t shutdown_signals;
  sigemptyset(&shutdown_signals);
  sigaddset(&shutdown_signals, SIGINT);
  sigaddset(&shutdown_signals, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &shutdown_signals, nullptr);

  // Boot the engine: generate the demo shape, or fail closed on any
  // snapshot validation error — a server must never come up serving a
  // corrupt dataset. Persisted cache entries restore warm.
  engine::Engine::Options engine_options;
  if (snapshot_path.empty()) {
    engine_options.dataset.num_users = static_cast<int>(users);
    engine_options.dataset.num_groups = static_cast<int>(movies);
    engine_options.dataset.seed = static_cast<uint64_t>(seed);
    engine_options.dataset.seed_set = true;
  } else {
    engine_options.dataset.snapshot_path = snapshot_path;
  }
  engine_options.cache.max_bytes = static_cast<size_t>(cache_mb) * 1024 * 1024;
  Result<std::unique_ptr<engine::Engine>> booted =
      engine::Engine::Create(engine_options);
  if (!booted.ok()) {
    std::fprintf(stderr, "prox_server: %s\n",
                 booted.status().message().c_str());
    return 1;
  }
  engine::Engine& engine = *booted.value();

  // The sink (and its FILE*) must outlive the server; both are released
  // only after Stop() below has drained every worker.
  std::FILE* access_log_file = nullptr;
  std::unique_ptr<obs::FileLogSink> access_log_sink;
  if (access_log) {
    if (!access_log_path.empty()) {
      access_log_file = std::fopen(access_log_path.c_str(), "a");
      if (access_log_file == nullptr) {
        std::fprintf(stderr, "prox_server: cannot open access log %s\n",
                     access_log_path.c_str());
        return 1;
      }
    }
    access_log_sink = std::make_unique<obs::FileLogSink>(
        access_log_file != nullptr ? access_log_file : stderr);
    obs::SetAccessLogSink(access_log_sink.get());
  }

  serve::Router::Options router_options;
  router_options.debug_endpoints = debug_endpoints;
  serve::Router router(&engine, router_options);

  auto handler = [&router](const serve::HttpRequest& req) {
    return router.Handle(req);
  };
  // Both transports share the Handler contract and the drain behavior;
  // only the concurrency model under the socket differs.
  std::unique_ptr<serve::HttpServer> blocking_server;
  std::unique_ptr<net::EpollServer> epoll_server;
  int bound_port = 0;
  if (transport == "epoll") {
    net::EpollServer::Options options;
    options.port = static_cast<int>(port);
    options.shards = static_cast<int>(shards);
    options.handler_threads = static_cast<int>(threads);
    options.max_inflight = static_cast<int>(max_inflight);
    options.idle_timeout_ms = static_cast<int>(keepalive_ms);
    epoll_server = std::make_unique<net::EpollServer>(options, handler);
    if (Status status = epoll_server->Start(); !status.ok()) {
      std::fprintf(stderr, "prox_server: %s\n", status.ToString().c_str());
      return 1;
    }
    bound_port = epoll_server->port();
  } else {
    serve::HttpServer::Options options;
    options.port = static_cast<int>(port);
    options.threads = static_cast<int>(threads);
    options.max_inflight = static_cast<int>(max_inflight);
    options.idle_timeout_ms = static_cast<int>(keepalive_ms);
    blocking_server = std::make_unique<serve::HttpServer>(options, handler);
    if (Status status = blocking_server->Start(); !status.ok()) {
      std::fprintf(stderr, "prox_server: %s\n", status.ToString().c_str());
      return 1;
    }
    bound_port = blocking_server->port();
  }
  std::printf("prox_server: listening on 127.0.0.1:%d (%s transport, "
              "%ld workers, cache %ld MiB, max-inflight %ld, dataset %s)\n",
              bound_port, transport.c_str(), threads, cache_mb, max_inflight,
              router.dataset_fingerprint().c_str());
  std::fflush(stdout);

  int signal_number = 0;
  sigwait(&shutdown_signals, &signal_number);
  std::printf("prox_server: signal %d, draining\n", signal_number);
  std::fflush(stdout);
  if (epoll_server != nullptr) epoll_server->Stop();
  if (blocking_server != nullptr) blocking_server->Stop();
  if (access_log_sink != nullptr) {
    obs::SetAccessLogSink(nullptr);
    if (access_log_file != nullptr) std::fclose(access_log_file);
  }

  if (!cache_persist.empty()) {
    // The engine persists under its current fingerprint: summarize runs
    // registered summary annotations since boot, and cache keys must
    // match what the next --snapshot boot computes.
    if (Status s = engine.PersistSnapshot(cache_persist); !s.ok()) {
      std::fprintf(stderr, "prox_server: cache-persist failed: %s\n",
                   s.message().c_str());
      return 1;
    }
    std::printf("prox_server: snapshot persisted to %s\n",
                cache_persist.c_str());
  }
  std::printf("prox_server: drained, bye\n");
  return 0;
}
