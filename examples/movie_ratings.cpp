/// \file movie_ratings.cpp
/// \brief End-to-end scenario from the thesis's introduction: a
/// crowd-sourced movie-rating application (the Figure 2.1 workflow) runs
/// and produces guarded semiring provenance; the provenance is then
/// summarized with Algorithm 1 under the users' attribute semantics, and
/// used for provisioning hypothetical scenarios ("what if U2's reviews
/// are spam?") both exactly and approximately.

#include <cstdio>

#include "summarize/distance.h"
#include "summarize/summarizer.h"
#include "summarize/val_func.h"
#include "summarize/valuation_class.h"
#include "workflow/movie_review_workflow.h"

using namespace prox;

int main() {
  AnnotationRegistry registry;

  // --- 1. The application: users, platforms, raw reviews. -----------------
  MovieReviewWorkflowBuilder builder(&registry);
  struct UserSpec {
    const char* uid;
    const char* gender;
    const char* role;
  };
  const UserSpec user_specs[] = {
      {"1", "F", "audience"}, {"2", "F", "audience"}, {"3", "M", "audience"},
      {"4", "M", "audience"}, {"5", "F", "critic"},   {"6", "M", "critic"}};
  for (const auto& u : user_specs) builder.AddUser(u.uid, u.gender, u.role);

  builder.AddPlatform(
      "imdb", "audience",
      {{"1", "Match Point", 3}, {"1", "Scoop", 4},        {"1", "Zelig", 4},
       {"2", "Match Point", 5}, {"2", "Blue Jasmine", 4}, {"2", "Scoop", 3},
       {"3", "Match Point", 3}, {"3", "Zelig", 2},        {"3", "Scoop", 5},
       {"4", "Blue Jasmine", 2}, {"4", "Zelig", 3},       {"4", "Scoop", 2}});
  builder.AddPlatform("times", "critic",
                      {{"5", "Match Point", 4},
                       {"5", "Blue Jasmine", 5},
                       {"5", "Zelig", 3},
                       {"6", "Match Point", 2},
                       {"6", "Scoop", 3},
                       {"6", "Zelig", 4}});

  auto run = builder.Run(AggKind::kMax);
  if (!run.ok()) {
    std::printf("workflow failed: %s\n", run.status().ToString().c_str());
    return 1;
  }
  const AggregateExpression& p0 = *run.value().provenance;
  std::printf("workflow produced provenance of size %lld over %zu "
              "annotations, e.g.:\n  %.200s…\n\n",
              static_cast<long long>(p0.Size()), registry.size(),
              p0.ToString(registry).c_str());

  // --- 2. Semantics: user attributes constrain the summarization. ---------
  DomainId user_domain = registry.FindDomain("user").MoveValue();
  SemanticContext ctx;
  ctx.registry = &registry;
  AttrId gender = run.value().user_attributes.FindAttribute("Gender")
                      .MoveValue();
  AttrId role = run.value().user_attributes.FindAttribute("Role")
                    .MoveValue();
  ctx.tables.emplace(user_domain, std::move(run.value().user_attributes));
  ConstraintSet constraints;
  constraints.SetRule(user_domain, std::make_unique<SharedAttributeRule>(
                                       std::vector<AttrId>{role, gender}));

  // --- 3. Summarize with Algorithm 1 (distance-first). --------------------
  CancelSingleAnnotation valuation_class(std::vector<DomainId>{user_domain});
  std::vector<Valuation> valuations = valuation_class.Generate(p0, ctx);
  EuclideanValFunc val_func;
  EnumeratedDistance oracle(&p0, &registry, &val_func, valuations);

  SummarizerOptions options;
  options.w_dist = 0.8;
  options.w_size = 0.2;
  options.max_steps = 4;
  Summarizer summarizer(&p0, &registry, &ctx, &constraints, &oracle,
                        &valuations, options);
  auto outcome = summarizer.Run();
  if (!outcome.ok()) {
    std::printf("summarization failed: %s\n",
                outcome.status().ToString().c_str());
    return 1;
  }
  std::printf("summary: size %lld (from %lld), normalized distance %.4f\n",
              static_cast<long long>(outcome.value().final_size),
              static_cast<long long>(p0.Size()),
              outcome.value().final_distance);
  for (const StepRecord& step : outcome.value().steps) {
    std::printf("  step %d merged %zu annotations -> \"%s\" "
                "(dist %.4f, size %lld)\n",
                step.step, step.merged_roots.size(),
                step.summary_name.c_str(), step.distance,
                static_cast<long long>(step.size));
  }
  std::printf("\nsummary expression:\n  %s\n",
              outcome.value().summary->ToString(registry).c_str());

  // --- 4. Provision: discard suspected spam. ------------------------------
  AnnotationId u2 = registry.Find("U_2").MoveValue();
  Valuation spam({u2}, "U_2 is a spammer");
  MaterializedValuation exact_view(spam, registry.size());
  MaterializedValuation approx_view =
      outcome.value().state.Transform(spam, registry.size());
  std::printf("\nprovisioning \"%s\":\n", spam.label().c_str());
  std::printf("  exact : %s\n",
              p0.Evaluate(exact_view).ToString(registry).c_str());
  std::printf("  approx: %s\n",
              outcome.value()
                  .summary->Evaluate(approx_view)
                  .ToString(registry)
                  .c_str());
  return 0;
}
