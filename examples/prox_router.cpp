/// \file prox_router.cpp
/// \brief Consistent-hash front end over `prox_server` replicas booted
/// from one shared PROXSNAP snapshot (docs/NET.md). The router owns no
/// dataset: it hashes each request (dataset fingerprint + target + body)
/// onto a virtual-node ring over the replicas, so every replica's
/// SummaryCache serves a stable slice of the workload, and replays
/// idempotent GETs once on the next ring successor when a replica dies.
///
///   GET  /healthz   router health + per-replica health states
///   GET  /metrics   the router's own series (prox_net_balancer_*)
///   anything else   forwarded; the answering replica is named in the
///                   X-Prox-Replica response header
///
/// Flags:
///   --port=N              listen port (default 8090; 0 = ephemeral)
///   --replica=host:port   a replica endpoint; repeat once per replica
///   --vnodes=N            virtual nodes per replica (default 64)
///   --health-interval-ms=N
///                         active /healthz probe period; 0 = passive
///                         detection only (default 1000)
///   --shards=N            epoll event-loop shards (default: half the
///                         cores, clamped to [1, 8])
///   --threads=N           forwarding worker threads (default 4)
///
/// SIGINT / SIGTERM drain in-flight requests and exit 0.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "net/balancer.h"
#include "net/epoll_server.h"

using namespace prox;

namespace {

void PrintUsage() {
  std::printf(
      "usage: prox_router --replica=host:port [--replica=host:port ...]\n"
      "                   [--port=N] [--vnodes=N] [--health-interval-ms=N]\n"
      "                   [--shards=N] [--threads=N]\n"
      "\n"
      "Consistent-hash balancer over prox_server replicas (docs/NET.md):\n"
      "requests map to replicas by dataset fingerprint + target + body,\n"
      "idempotent GETs retry once on the next ring replica on failure,\n"
      "/healthz reports per-replica health. SIGINT drains and exits 0.\n");
}

bool ParseIntFlag(const std::string& arg, const char* flag, long* out) {
  std::string prefix = std::string(flag) + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  char* end = nullptr;
  const std::string value = arg.substr(prefix.size());
  *out = std::strtol(value.c_str(), &end, 10);
  if (value.empty() || end != value.c_str() + value.size() || *out < 0) {
    std::fprintf(stderr, "prox_router: bad value in %s\n", arg.c_str());
    std::exit(2);
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  long port = 8090;
  long vnodes = 64;
  long health_interval_ms = 1000;
  long shards = 0;
  long threads = 4;
  std::vector<std::string> replicas;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return 0;
    }
    if (arg.rfind("--replica=", 0) == 0) {
      replicas.push_back(arg.substr(std::string("--replica=").size()));
      continue;
    }
    if (ParseIntFlag(arg, "--port", &port) ||
        ParseIntFlag(arg, "--vnodes", &vnodes) ||
        ParseIntFlag(arg, "--health-interval-ms", &health_interval_ms) ||
        ParseIntFlag(arg, "--shards", &shards) ||
        ParseIntFlag(arg, "--threads", &threads)) {
      continue;
    }
    std::fprintf(stderr, "prox_router: unknown flag %s\n", arg.c_str());
    PrintUsage();
    return 2;
  }
  if (replicas.empty()) {
    std::fprintf(stderr, "prox_router: at least one --replica is required\n");
    PrintUsage();
    return 2;
  }

  sigset_t shutdown_signals;
  sigemptyset(&shutdown_signals);
  sigaddset(&shutdown_signals, SIGINT);
  sigaddset(&shutdown_signals, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &shutdown_signals, nullptr);

  net::Balancer::Options balancer_options;
  balancer_options.replicas = replicas;
  balancer_options.vnodes = static_cast<int>(vnodes);
  balancer_options.health_interval_ms = static_cast<int>(health_interval_ms);
  net::Balancer balancer(balancer_options);
  if (Status status = balancer.Start(); !status.ok()) {
    std::fprintf(stderr, "prox_router: %s\n", status.ToString().c_str());
    return 1;
  }

  net::EpollServer::Options server_options;
  server_options.port = static_cast<int>(port);
  server_options.shards = static_cast<int>(shards);
  server_options.handler_threads = static_cast<int>(threads);
  net::EpollServer server(server_options,
                          [&balancer](const serve::HttpRequest& request) {
                            return balancer.Handle(request);
                          });
  if (Status status = server.Start(); !status.ok()) {
    std::fprintf(stderr, "prox_router: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("prox_router: listening on 127.0.0.1:%d (%zu replicas, "
              "%ld vnodes, health interval %ld ms)\n",
              server.port(), replicas.size(), vnodes, health_interval_ms);
  std::fflush(stdout);

  int signal_number = 0;
  sigwait(&shutdown_signals, &signal_number);
  std::printf("prox_router: signal %d, draining\n", signal_number);
  std::fflush(stdout);
  server.Stop();
  balancer.Stop();
  std::printf("prox_router: drained, bye\n");
  return 0;
}
