/// \file ddp_analysis.cpp
/// \brief The data-dependent-process use case of Example 5.2.2: DDP
/// provenance (sums of execution products over tropical × boolean
/// semirings) is summarized by grouping cost variables of similar cost and
/// database variables, and then used to explore hypothetical modifications
/// ("what is the cheapest execution if these tuples are absent?").

#include <cstdio>

#include "datasets/ddp.h"
#include "provenance/ddp_expr.h"
#include "summarize/distance.h"
#include "summarize/summarizer.h"

using namespace prox;

int main() {
  // Generate the provenance from an actual DDP state machine (the [17]
  // substrate): executions are the machine's accepting paths.
  DdpConfig config;
  config.num_executions = 10;
  config.from_machine = true;
  config.seed = 21;
  Dataset ds = DdpGenerator::Generate(config);

  // Read structure through the DdpFacade: the summarizer returns a flat
  // prox::ir expression, so a dynamic_cast to DdpExpression would fail.
  const DdpFacade* ddp = ds.provenance->AsDdp();
  std::printf("DDP provenance: %zu executions, size %lld:\n  %s\n\n",
              ddp->ddp_num_executions(),
              static_cast<long long>(ds.provenance->Size()),
              ds.provenance->ToString(*ds.registry).c_str());

  // Summarize (Cancel-Single-Attribute valuations; the bounded cost
  // difference VAL-FUNC of Example 5.2.2).
  std::vector<Valuation> valuations =
      ds.valuation_class->Generate(*ds.provenance, ds.ctx);
  EnumeratedDistance oracle(ds.provenance.get(), ds.registry.get(),
                            ds.val_func.get(), valuations);
  SummarizerOptions options;
  options.w_dist = 0.5;
  options.w_size = 0.5;
  options.max_steps = 8;
  options.phi = ds.phi;
  Summarizer summarizer(ds.provenance.get(), ds.registry.get(), &ds.ctx,
                        &ds.constraints, &oracle, &valuations, options);
  auto outcome = summarizer.Run();
  if (!outcome.ok()) {
    std::printf("summarization failed: %s\n",
                outcome.status().ToString().c_str());
    return 1;
  }
  const DdpFacade* summary_ddp = outcome.value().summary->AsDdp();
  std::printf("summary: %zu executions, size %lld, distance %.4f:\n  %s\n\n",
              summary_ddp->ddp_num_executions(),
              static_cast<long long>(outcome.value().final_size),
              outcome.value().final_distance,
              outcome.value().summary->ToString(*ds.registry).c_str());

  // Provision: cheapest feasible execution under hypothetical scenarios.
  auto report = [&](const Valuation& v) {
    MaterializedValuation exact_view(v, ds.registry->size());
    MaterializedValuation approx_view =
        outcome.value().state.Transform(v, ds.registry->size());
    EvalResult exact = ds.provenance->Evaluate(exact_view);
    EvalResult approx = outcome.value().summary->Evaluate(approx_view);
    std::printf("  %-28s exact %s   approx %s\n", v.label().c_str(),
                exact.ToString(*ds.registry).c_str(),
                approx.ToString(*ds.registry).c_str());
  };

  std::printf("provisioning ⟨min cost, feasible⟩ under scenarios:\n");
  report(Valuation({}, "baseline (all present)"));

  auto db_vars = ds.registry->AnnotationsInDomain(ds.domain("db_var"));
  report(Valuation({db_vars[0], db_vars[1]},
                   "drop tuples d1, d2"));
  auto cost_vars = ds.registry->AnnotationsInDomain(ds.domain("cost_var"));
  report(Valuation({cost_vars[0]}, "waive user effort c1"));
  std::vector<AnnotationId> all_db(db_vars.begin(), db_vars.end());
  report(Valuation(all_db, "empty database"));
  return 0;
}
