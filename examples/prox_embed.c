/* prox_embed.c — embedding PROX from plain C11 through the stable C ABI
 * (include/prox_c.h, docs/EMBEDDING.md).
 *
 * The whole engine — dataset boot, selection, Algorithm 1, the summary
 * cache, evaluation — sits behind one opaque handle; this program is the
 * entire client: open, select, summarize, inspect groups, evaluate,
 * close. No C++ anywhere (the target builds with -std=c11, proving the
 * header is C-clean).
 *
 * Flags:
 *   --family=F        generated dataset family: movielens (default),
 *                     wikipedia, or ddp
 *   --snapshot=PATH   boot from a PROXSNAP snapshot instead (load
 *                     snapshot -> select -> summarize -> evaluate)
 *   --wdist=D         summarize distance weight (default 0.5); the size
 *                     weight is 1 - wdist, as in prox_cli
 *   --steps=N         summarize max merge steps (default 10)
 *   --json            print ONLY the raw summarize response body —
 *                     byte-identical to `prox_cli --json` over the same
 *                     dataset and knobs (scripts/capi_cli_identity.sh
 *                     asserts exactly that)
 *
 * Exit: 0 on success, 1 with the engine's error document on stderr
 * otherwise.
 */

#include <stdint.h>
#include <stdio.h>
#include <stdlib.h>
#include <string.h>

#include "prox_c.h"

static void usage(void) {
  fprintf(stderr,
          "usage: prox_embed [--family=movielens|wikipedia|ddp]\n"
          "                  [--snapshot=PATH] [--wdist=D] [--steps=N]\n"
          "                  [--json]\n");
}

/* Prints a failure (and the engine's error document, when present) and
 * releases the body. */
static int fail(const char* op, prox_status_t status, char* body) {
  fprintf(stderr, "prox_embed: %s failed: %s\n", op,
          prox_status_name(status));
  if (body != NULL) {
    fputs(body, stderr);
    prox_string_free(body);
  }
  return 1;
}

int main(int argc, char** argv) {
  const char* family = "movielens";
  const char* snapshot = NULL;
  double w_dist = 0.5;
  long steps = 10;
  int json_only = 0;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (strncmp(arg, "--family=", 9) == 0) {
      family = arg + 9;
      if (strcmp(family, "movielens") != 0 &&
          strcmp(family, "wikipedia") != 0 && strcmp(family, "ddp") != 0) {
        usage();
        return 2;
      }
    } else if (strncmp(arg, "--snapshot=", 11) == 0) {
      snapshot = arg + 11;
    } else if (strncmp(arg, "--wdist=", 8) == 0) {
      char* end = NULL;
      w_dist = strtod(arg + 8, &end);
      if (end == arg + 8 || *end != '\0') {
        usage();
        return 2;
      }
    } else if (strncmp(arg, "--steps=", 8) == 0) {
      char* end = NULL;
      steps = strtol(arg + 8, &end, 10);
      if (end == arg + 8 || *end != '\0' || steps < 0) {
        usage();
        return 2;
      }
    } else if (strcmp(arg, "--json") == 0) {
      json_only = 1;
    } else if (strcmp(arg, "--help") == 0 || strcmp(arg, "-h") == 0) {
      usage();
      return 0;
    } else {
      fprintf(stderr, "prox_embed: unknown flag %s\n", arg);
      usage();
      return 2;
    }
  }

  if (prox_c_api_version() != PROX_C_API_VERSION) {
    fprintf(stderr,
            "prox_embed: built against C API v%d but library is v%d\n",
            PROX_C_API_VERSION, (int)prox_c_api_version());
    return 1;
  }

  /* --- open ------------------------------------------------------------ */
  char config[512];
  if (snapshot != NULL) {
    snprintf(config, sizeof(config), "{\"dataset\":{\"snapshot\":\"%s\"}}",
             snapshot);
  } else {
    snprintf(config, sizeof(config), "{\"dataset\":{\"family\":\"%s\"}}",
             family);
  }

  prox_engine_t* engine = NULL;
  char* body = NULL;
  prox_status_t status = prox_engine_open(config, &engine, &body);
  if (status != PROX_STATUS_OK) return fail("open", status, body);

  /* --- select everything ---------------------------------------------- */
  status = prox_engine_select(engine, "{\"all\":true}", &body);
  if (status != PROX_STATUS_OK) return fail("select", status, body);
  if (!json_only) {
    printf("select: %s", body);
  }
  prox_string_free(body);
  body = NULL;

  /* --- summarize ------------------------------------------------------- */
  /* w_size is computed here, in C, as 1 - w_dist — the same arithmetic
   * prox_cli does — and shipped with enough digits (%.17g) that the JSON
   * decoder reconstructs the identical double. That is what makes the
   * response bytes comparable across the two clients. */
  char request[256];
  snprintf(request, sizeof(request),
           "{\"w_dist\":%.17g,\"w_size\":%.17g,\"max_steps\":%ld,"
           "\"threads\":1}",
           w_dist, 1.0 - w_dist, steps);
  int32_t cache_hit = -1;
  status = prox_engine_summarize(engine, request, &body, &cache_hit);
  if (status != PROX_STATUS_OK) return fail("summarize", status, body);
  if (json_only) {
    /* The raw response body, nothing else: newline-terminated JSON. */
    fputs(body, stdout);
    prox_string_free(body);
    prox_engine_close(engine);
    return 0;
  }
  printf("summarize (cache %s): %s",
         cache_hit == 1 ? "hit" : cache_hit == 0 ? "miss" : "n/a", body);
  prox_string_free(body);
  body = NULL;

  /* --- fingerprint + groups ------------------------------------------- */
  char* fingerprint = NULL;
  status = prox_engine_fingerprint(engine, &fingerprint);
  if (status != PROX_STATUS_OK) return fail("fingerprint", status, NULL);
  printf("dataset fingerprint: %s\n", fingerprint);
  prox_string_free(fingerprint);

  status = prox_engine_summary_groups(engine, &body);
  if (status != PROX_STATUS_OK) return fail("groups", status, body);
  printf("groups: %s", body);
  prox_string_free(body);
  body = NULL;

  /* --- evaluate the empty assignment on the summary -------------------- */
  status = prox_engine_evaluate(
      engine, "{\"on\":\"summary\",\"assignment\":{}}", &body);
  if (status != PROX_STATUS_OK) return fail("evaluate", status, body);
  printf("evaluate: %s", body);
  prox_string_free(body);
  body = NULL;

  status = prox_engine_close(engine);
  if (status != PROX_STATUS_OK) return fail("close", status, NULL);
  return 0;
}
