#ifndef PROX_OBS_REQUEST_CONTEXT_H_
#define PROX_OBS_REQUEST_CONTEXT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace.h"

namespace prox {
namespace obs {

/// \brief Request-scoped tracing: a 128-bit trace id plus a sampling
/// decision, created once per inbound request and installed for the
/// handling thread so every `TraceSpan` the request opens — router,
/// services, summarizer — is stamped with the request's trace id and
/// collected into a per-request span tree (docs/OBSERVABILITY.md,
/// "Request tracing").
///
/// Interop follows the W3C Trace Context recommendation: an incoming
/// `traceparent` header (`00-<32 hex trace-id>-<16 hex parent-id>-<2 hex
/// flags>`) is honored when well-formed, otherwise a fresh id is minted.
/// The id travels back to the client as `X-Prox-Trace-Id`, appears in the
/// access log line, and keys the flight-recorder entries — one id
/// correlates all three.

/// A 128-bit trace id. Zero is invalid (the W3C spec reserves it).
struct TraceId {
  uint64_t hi = 0;
  uint64_t lo = 0;

  bool IsZero() const { return hi == 0 && lo == 0; }
  /// 32 lower-case hex characters, zero-padded (the traceparent field).
  std::string ToHex() const;

  bool operator==(const TraceId& other) const {
    return hi == other.hi && lo == other.lo;
  }
  bool operator!=(const TraceId& other) const { return !(*this == other); }
};

/// Parses a W3C `traceparent` header value. Returns true and fills the
/// outputs only for a well-formed header: four `-`-separated fields of
/// exactly 2/32/16/2 lower-case hex characters, a version that is not the
/// reserved "ff", and non-zero trace and parent ids. Future versions
/// (anything other than "00") are accepted as long as the 00-format
/// prefix parses — the spec's forward-compatibility rule. `*sampled` is
/// bit 0 of the flags field.
bool ParseTraceparent(std::string_view header, TraceId* trace_id,
                      uint64_t* parent_span_id, bool* sampled);

/// Renders a version-00 traceparent for propagating `trace_id` downstream
/// with `span_id` as the parent.
std::string FormatTraceparent(const TraceId& trace_id, uint64_t span_id,
                              bool sampled);

/// Mints a fresh non-zero trace id: a per-process random base mixed with
/// an atomic counter, so ids are unique within and across processes.
TraceId MintTraceId();

/// \brief Everything the serving layer tracks about one request: identity
/// (trace id, sampling), provenance of the id (propagated vs minted), and
/// the bounded span tree collected while the request's `RequestScope` was
/// installed.
///
/// Not thread-safe: one context belongs to the one thread handling its
/// request (parallel summarizer workers do not record spans — see
/// docs/PARALLELISM.md — so the collection stays single-threaded).
class RequestContext {
 public:
  /// Spans retained per request; beyond this the recorder keeps the
  /// earliest spans and counts the overflow in spans_dropped().
  static constexpr size_t kMaxSpans = 512;

  /// Builds a context from an inbound `traceparent` value. Empty or
  /// malformed headers mint a fresh sampled id; well-formed ones are
  /// honored (id, parent, sampling bit).
  static RequestContext FromTraceparent(std::string_view header);

  /// A fresh, sampled context with a minted id.
  RequestContext() : trace_id_(MintTraceId()) {}

  const TraceId& trace_id() const { return trace_id_; }
  bool sampled() const { return sampled_; }
  /// True when the id came from an inbound traceparent header.
  bool propagated() const { return propagated_; }
  /// The caller's span id (0 unless propagated).
  uint64_t parent_span_id() const { return parent_span_id_; }

  /// Appends one completed span (called from TraceSpan::Close via the
  /// installed scope). Unsampled contexts collect nothing.
  void CollectSpan(const SpanRecord& span);

  const std::vector<SpanRecord>& spans() const { return spans_; }
  uint64_t spans_dropped() const { return spans_dropped_; }

  /// Releases the collected spans (the flight recorder takes them).
  std::vector<SpanRecord> TakeSpans() { return std::move(spans_); }

 private:
  TraceId trace_id_;
  uint64_t parent_span_id_ = 0;
  bool sampled_ = true;
  bool propagated_ = false;
  std::vector<SpanRecord> spans_;
  uint64_t spans_dropped_ = 0;
};

/// \brief RAII installer: makes `context` the current thread's request
/// context for its lifetime (nesting restores the previous one). While
/// installed, every TraceSpan closed on this thread is stamped with the
/// context's trace id and collected into it.
class RequestScope {
 public:
  explicit RequestScope(RequestContext* context);
  ~RequestScope();

  RequestScope(const RequestScope&) = delete;
  RequestScope& operator=(const RequestScope&) = delete;

 private:
  RequestContext* previous_;
};

/// The installed context of the current thread, or nullptr outside any
/// RequestScope.
RequestContext* CurrentRequestContext();

}  // namespace obs
}  // namespace prox

#endif  // PROX_OBS_REQUEST_CONTEXT_H_
