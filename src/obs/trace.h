#ifndef PROX_OBS_TRACE_H_
#define PROX_OBS_TRACE_H_

#include <cstdint>
#include <mutex>
#include <vector>

namespace prox {
namespace obs {

/// \brief Hierarchical trace spans for the summarization hot path
/// (run → step → candidate-eval → oracle-distance; the full hierarchy is
/// diagrammed in docs/OBSERVABILITY.md).
///
/// A TraceSpan is an RAII scope: it reads the monotonic clock on entry and
/// records a SpanRecord into a sink on Close()/destruction. Parent/child
/// links come from a thread-local span stack, so nesting needs no manual
/// plumbing. Spans always *measure* time — callers may use Close() as
/// their timer — but only *record* when obs::Enabled() (the same kill
/// switches as the metrics registry).

/// One completed span. `name` must be a string literal (records keep the
/// pointer, not a copy).
struct SpanRecord {
  uint64_t id = 0;
  uint64_t parent_id = 0;  ///< 0 = root span
  int depth = 0;
  const char* name = "";
  int64_t start_nanos = 0;  ///< since the process trace epoch (monotonic)
  int64_t duration_nanos = 0;
  /// The 128-bit trace id of the request this span belongs to (both zero
  /// for spans closed outside any obs::RequestScope). Stamped by
  /// TraceSpan::Close from the installed request context
  /// (obs/request_context.h), making the process-global span stream
  /// attributable per request.
  uint64_t trace_hi = 0;
  uint64_t trace_lo = 0;
};

/// Destination for completed spans.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void OnSpanEnd(const SpanRecord& span) = 0;
};

/// \brief Bounded ring buffer of the most recent spans — the default sink.
class TraceBuffer : public TraceSink {
 public:
  static constexpr size_t kDefaultCapacity = 1 << 16;

  explicit TraceBuffer(size_t capacity = kDefaultCapacity);

  /// The process-wide buffer spans record into unless a sink is installed.
  static TraceBuffer& Default();

  void OnSpanEnd(const SpanRecord& span) override;

  /// Buffered spans, oldest first (completion order).
  std::vector<SpanRecord> Snapshot() const;

  void Clear();
  size_t size() const;
  uint64_t total_recorded() const;
  /// Spans evicted by the ring bound since construction / Clear(). The
  /// default buffer's evictions are also counted process-wide in
  /// `prox_trace_ring_dropped_total` — eviction under pressure is
  /// observable, never silent.
  uint64_t dropped() const;

 private:
  mutable std::mutex mu_;
  std::vector<SpanRecord> ring_;
  size_t capacity_;
  size_t next_ = 0;         // ring write position
  uint64_t total_ = 0;      // spans ever recorded
};

/// The sink new spans record into when none is passed explicitly.
TraceSink* DefaultTraceSink();
/// Replaces the default sink (nullptr restores TraceBuffer::Default()).
void SetDefaultTraceSink(TraceSink* sink);

/// Nanoseconds since the process trace epoch (monotonic clock; the epoch
/// is captured on first use).
int64_t TraceNowNanos();

/// \brief RAII span scope. Open at construction, closed by Close() or the
/// destructor, whichever comes first.
class TraceSpan {
 public:
  /// \param name static string literal identifying the span kind
  /// \param sink destination override; default = DefaultTraceSink()
  explicit TraceSpan(const char* name, TraceSink* sink = nullptr);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Ends the span, records it, and returns its duration in nanoseconds.
  /// Idempotent: later calls return the same duration. Callers use this
  /// value as their own timing — span data and reported timings are one
  /// measurement, not parallel bookkeeping.
  int64_t Close();

  /// Ends the span WITHOUT recording it (for scopes that turn out to be
  /// no-ops, e.g. a greedy step that finds no candidates). The span stack
  /// is still unwound. A no-op after Close().
  void Cancel();

  /// Nanoseconds since the span opened (its duration once closed).
  int64_t ElapsedNanos() const;

 private:
  const char* name_;
  TraceSink* sink_;
  int64_t start_nanos_;
  int64_t duration_nanos_ = 0;
  uint64_t id_ = 0;
  uint64_t parent_id_ = 0;
  int depth_ = 0;
  bool recording_ = false;
  bool closed_ = false;
};

}  // namespace obs
}  // namespace prox

#endif  // PROX_OBS_TRACE_H_
