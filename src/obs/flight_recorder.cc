#include "obs/flight_recorder.h"

#include <algorithm>

namespace prox {
namespace obs {

FlightRecorder::FlightRecorder(Options options) : options_(options) {
  if (options_.slowest_capacity == 0) options_.slowest_capacity = 1;
  slowest_.reserve(options_.slowest_capacity);
}

void FlightRecorder::Record(RequestRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  ++recorded_total_;

  if (options_.error_capacity > 0 && record.status >= options_.error_status) {
    errors_.push_back(record);
    if (errors_.size() > options_.error_capacity) errors_.pop_front();
  }

  const bool full = slowest_.size() >= options_.slowest_capacity;
  if (full && record.latency_nanos <= slowest_.back().latency_nanos) {
    return;  // not among the N slowest
  }
  if (full) slowest_.pop_back();  // evict the fastest retained request
  auto insert_at = std::upper_bound(
      slowest_.begin(), slowest_.end(), record,
      [](const RequestRecord& a, const RequestRecord& b) {
        return a.latency_nanos > b.latency_nanos;
      });
  slowest_.insert(insert_at, std::move(record));
}

std::vector<RequestRecord> FlightRecorder::SlowestSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slowest_;
}

std::vector<RequestRecord> FlightRecorder::ErrorsSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<RequestRecord>(errors_.begin(), errors_.end());
}

uint64_t FlightRecorder::recorded_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_total_;
}

void FlightRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  slowest_.clear();
  errors_.clear();
  recorded_total_ = 0;
}

}  // namespace obs
}  // namespace prox
