#include "obs/metrics.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdlib>

#include "common/str_util.h"

namespace prox {
namespace obs {

namespace internal {

namespace {

bool EnabledFromEnv() {
  const char* env = std::getenv("PROX_OBS");
  if (env == nullptr) return true;
  std::string value = ToLowerAscii(env);
  return !(value == "0" || value == "off" || value == "false");
}

}  // namespace

std::atomic<bool>& EnabledFlag() {
  static std::atomic<bool> flag(EnabledFromEnv());
  return flag;
}

}  // namespace internal

void SetEnabled(bool enabled) {
  internal::EnabledFlag().store(enabled, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  bucket_counts_ = std::vector<std::atomic<uint64_t>>(bounds_.size() + 1);
  exemplars_.resize(bounds_.size() + 1);
}

void Histogram::ObserveWithExemplar(double value,
                                    std::string_view trace_id_hex) {
  if (!Enabled()) return;
  // First bound >= value; past-the-end = the +Inf bucket.
  size_t bucket =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin();
  bucket_counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  internal::AtomicAddDouble(&sum_, value);
  if (trace_id_hex.empty()) return;
  const size_t n = trace_id_hex.size() < 32 ? trace_id_hex.size() : 32;
  std::lock_guard<std::mutex> lock(exemplar_mu_);
  Exemplar& exemplar = exemplars_[bucket];
  exemplar.value = value;
  std::copy_n(trace_id_hex.data(), n, exemplar.trace_id);
  exemplar.trace_id[n] = '\0';
}

void Histogram::Reset() {
  for (auto& c : bucket_counts_) c.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(exemplar_mu_);
  std::fill(exemplars_.begin(), exemplars_.end(), Exemplar{});
}

std::vector<double> LatencyBucketsNanos() {
  return {1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10};
}

std::vector<double> RequestLatencyBucketsNanos() {
  std::vector<double> bounds;
  for (double decade = 1e3; decade < 1e10; decade *= 10) {
    bounds.push_back(decade);
    bounds.push_back(2 * decade);
    bounds.push_back(5 * decade);
  }
  bounds.push_back(1e10);
  return bounds;
}

std::vector<double> CountBuckets() {
  return {1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 5000};
}

#ifndef PROX_VERSION_STRING
#define PROX_VERSION_STRING "unknown"
#endif

void UpdateProcessMetrics() {
  static Gauge* build_info = MetricsRegistry::Default().GetGauge(
      "prox_build_info",
      "Constant 1; the version label identifies the build.",
      "version=\"" PROX_VERSION_STRING "\"");
  static Gauge* uptime = MetricsRegistry::Default().GetGauge(
      "prox_uptime_seconds",
      "Seconds since prox::obs was first touched in this process.");
  static const std::chrono::steady_clock::time_point start =
      std::chrono::steady_clock::now();
  build_info->Set(1.0);
  uptime->Set(std::chrono::duration_cast<std::chrono::duration<double>>(
                  std::chrono::steady_clock::now() - start)
                  .count());
}

// ---------------------------------------------------------------------------
// Snapshot lookups
// ---------------------------------------------------------------------------

namespace {

template <typename Sample>
const Sample* FindSample(const std::vector<Sample>& samples,
                         std::string_view name, std::string_view labels) {
  for (const Sample& s : samples) {
    if (s.name == name && s.labels == labels) return &s;
  }
  return nullptr;
}

}  // namespace

const CounterSample* MetricsSnapshot::FindCounter(
    std::string_view name, std::string_view labels) const {
  return FindSample(counters, name, labels);
}

const GaugeSample* MetricsSnapshot::FindGauge(std::string_view name,
                                              std::string_view labels) const {
  return FindSample(gauges, name, labels);
}

const HistogramSample* MetricsSnapshot::FindHistogram(
    std::string_view name, std::string_view labels) const {
  return FindSample(histograms, name, labels);
}

double MetricsSnapshot::CounterValue(std::string_view name,
                                     std::string_view labels) const {
  const CounterSample* s = FindCounter(name, labels);
  return s == nullptr ? 0.0 : static_cast<double>(s->value);
}

double MetricsSnapshot::HistogramSum(std::string_view name) const {
  const HistogramSample* s = FindHistogram(name);
  return s == nullptr ? 0.0 : s->sum;
}

uint64_t MetricsSnapshot::HistogramCount(std::string_view name) const {
  const HistogramSample* s = FindHistogram(name);
  return s == nullptr ? 0 : s->count;
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::Entry* MetricsRegistry::FindEntry(const std::string& name,
                                                   const std::string& labels) {
  for (const auto& e : entries_) {
    if (e->name == name && e->labels == labels) return e.get();
  }
  return nullptr;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help,
                                     const std::string& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Entry* existing = FindEntry(name, labels)) {
    if (existing->kind == Kind::kCounter) return existing->counter.get();
    assert(false && "metric re-registered with a different type");
    static Counter* fallback = new Counter();  // detached, never exported
    return fallback;
  }
  auto entry = std::make_unique<Entry>();
  entry->kind = Kind::kCounter;
  entry->name = name;
  entry->labels = labels;
  entry->help = help;
  entry->counter = std::unique_ptr<Counter>(new Counter());
  Counter* out = entry->counter.get();
  entries_.push_back(std::move(entry));
  return out;
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help,
                                 const std::string& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Entry* existing = FindEntry(name, labels)) {
    if (existing->kind == Kind::kGauge) return existing->gauge.get();
    assert(false && "metric re-registered with a different type");
    static Gauge* fallback = new Gauge();
    return fallback;
  }
  auto entry = std::make_unique<Entry>();
  entry->kind = Kind::kGauge;
  entry->name = name;
  entry->labels = labels;
  entry->help = help;
  entry->gauge = std::unique_ptr<Gauge>(new Gauge());
  Gauge* out = entry->gauge.get();
  entries_.push_back(std::move(entry));
  return out;
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& help,
                                         std::vector<double> bounds,
                                         const std::string& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Entry* existing = FindEntry(name, labels)) {
    if (existing->kind == Kind::kHistogram) return existing->histogram.get();
    assert(false && "metric re-registered with a different type");
    static Histogram* fallback = new Histogram({1.0});
    return fallback;
  }
  auto entry = std::make_unique<Entry>();
  entry->kind = Kind::kHistogram;
  entry->name = name;
  entry->labels = labels;
  entry->help = help;
  entry->histogram =
      std::unique_ptr<Histogram>(new Histogram(std::move(bounds)));
  Histogram* out = entry->histogram.get();
  entries_.push_back(std::move(entry));
  return out;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snapshot;
  for (const auto& e : entries_) {
    switch (e->kind) {
      case Kind::kCounter:
        snapshot.counters.push_back(
            {e->name, e->labels, e->help, e->counter->value()});
        break;
      case Kind::kGauge:
        snapshot.gauges.push_back(
            {e->name, e->labels, e->help, e->gauge->value()});
        break;
      case Kind::kHistogram: {
        HistogramSample s;
        s.name = e->name;
        s.labels = e->labels;
        s.help = e->help;
        s.bounds = e->histogram->bounds();
        s.bucket_counts.reserve(e->histogram->bucket_counts_.size());
        for (const auto& c : e->histogram->bucket_counts_) {
          s.bucket_counts.push_back(c.load(std::memory_order_relaxed));
        }
        s.count = e->histogram->count();
        s.sum = e->histogram->sum();
        {
          std::lock_guard<std::mutex> exemplar_lock(
              e->histogram->exemplar_mu_);
          const auto& exemplars = e->histogram->exemplars_;
          bool any = false;
          for (const auto& x : exemplars) {
            if (x.trace_id[0] != '\0') { any = true; break; }
          }
          // Vectors stay empty for exemplar-free histograms so existing
          // consumers (and the Prometheus golden output) are unaffected.
          if (any) {
            s.exemplar_trace_ids.reserve(exemplars.size());
            s.exemplar_values.reserve(exemplars.size());
            for (const auto& x : exemplars) {
              s.exemplar_trace_ids.emplace_back(x.trace_id);
              s.exemplar_values.push_back(x.value);
            }
          }
        }
        snapshot.histograms.push_back(std::move(s));
        break;
      }
    }
  }
  return snapshot;
}

void MetricsRegistry::ResetValues() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& e : entries_) {
    switch (e->kind) {
      case Kind::kCounter:
        e->counter->Reset();
        break;
      case Kind::kGauge:
        e->gauge->Reset();
        break;
      case Kind::kHistogram:
        e->histogram->Reset();
        break;
    }
  }
}

}  // namespace obs
}  // namespace prox
