#ifndef PROX_OBS_EXPORT_H_
#define PROX_OBS_EXPORT_H_

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace prox {
namespace obs {

/// \brief Renderers for metric snapshots and trace buffers.
///
/// Like provenance/io.h these emit stable ASCII formats meant for
/// machines: the Prometheus text exposition format (scrapeable as-is) and
/// a line-oriented JSON document (diffable between two runs with any JSON
/// tool). Output order is registration/completion order, so two renders of
/// the same state are byte-identical.

/// Prometheus text format: `# HELP` / `# TYPE` per metric family, then one
/// sample line per (labels) variant; histograms expand into cumulative
/// `_bucket{le=...}` series plus `_sum` and `_count`.
std::string RenderPrometheus(const MetricsSnapshot& snapshot);

/// The same snapshot as a JSON object with "counters", "gauges" and
/// "histograms" arrays.
std::string RenderMetricsJson(const MetricsSnapshot& snapshot);

/// A trace as a JSON object: {"clock": "...", "spans": [...]}, spans in
/// completion order with id/parent/depth/name/start/duration fields.
std::string RenderTraceJson(const std::vector<SpanRecord>& spans);

}  // namespace obs
}  // namespace prox

#endif  // PROX_OBS_EXPORT_H_
