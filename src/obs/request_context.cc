#include "obs/request_context.h"

#include <atomic>
#include <chrono>
#include <random>

namespace prox {
namespace obs {

namespace {

thread_local RequestContext* tls_request_context = nullptr;

const char kHexDigits[] = "0123456789abcdef";

void AppendHex64(uint64_t value, std::string* out) {
  for (int shift = 60; shift >= 0; shift -= 4) {
    out->push_back(kHexDigits[(value >> shift) & 0xF]);
  }
}

/// -1 on a non-hex character. Upper-case hex is rejected: the W3C spec
/// mandates lower-case in traceparent.
int HexNibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  return -1;
}

/// Parses exactly `text.size()` lower-case hex chars; false on any other
/// byte.
bool ParseHex64(std::string_view text, uint64_t* out) {
  uint64_t value = 0;
  for (char c : text) {
    int nibble = HexNibble(c);
    if (nibble < 0) return false;
    value = (value << 4) | static_cast<uint64_t>(nibble);
  }
  *out = value;
  return true;
}

/// splitmix64 finalizer: decorrelates the sequential counter bits.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::string TraceId::ToHex() const {
  std::string out;
  out.reserve(32);
  AppendHex64(hi, &out);
  AppendHex64(lo, &out);
  return out;
}

bool ParseTraceparent(std::string_view header, TraceId* trace_id,
                      uint64_t* parent_span_id, bool* sampled) {
  // version(2) '-' trace-id(32) '-' parent-id(16) '-' flags(2); future
  // versions may append fields after the flags, separated by another '-'.
  if (header.size() < 55) return false;
  if (header[2] != '-' || header[35] != '-' || header[52] != '-') {
    return false;
  }
  uint64_t version = 0;
  if (!ParseHex64(header.substr(0, 2), &version)) return false;
  if (version == 0xFF) return false;  // reserved
  if (version == 0 && header.size() != 55) return false;
  if (version != 0 && header.size() > 55 && header[55] != '-') return false;

  TraceId id;
  uint64_t parent = 0;
  uint64_t flags = 0;
  if (!ParseHex64(header.substr(3, 16), &id.hi)) return false;
  if (!ParseHex64(header.substr(19, 16), &id.lo)) return false;
  if (!ParseHex64(header.substr(36, 16), &parent)) return false;
  if (!ParseHex64(header.substr(53, 2), &flags)) return false;
  if (id.IsZero() || parent == 0) return false;

  *trace_id = id;
  *parent_span_id = parent;
  *sampled = (flags & 0x1) != 0;
  return true;
}

std::string FormatTraceparent(const TraceId& trace_id, uint64_t span_id,
                              bool sampled) {
  std::string out;
  out.reserve(55);
  out += "00-";
  AppendHex64(trace_id.hi, &out);
  AppendHex64(trace_id.lo, &out);
  out.push_back('-');
  AppendHex64(span_id, &out);
  out += sampled ? "-01" : "-00";
  return out;
}

TraceId MintTraceId() {
  static const uint64_t base_hi = [] {
    std::random_device rd;
    return (static_cast<uint64_t>(rd()) << 32) ^ rd() ^
           static_cast<uint64_t>(std::chrono::steady_clock::now()
                                     .time_since_epoch()
                                     .count());
  }();
  static std::atomic<uint64_t> next{1};
  const uint64_t n = next.fetch_add(1, std::memory_order_relaxed);
  TraceId id;
  id.hi = Mix64(base_hi ^ n);
  id.lo = Mix64(base_hi + n * 0x9e3779b97f4a7c15ULL + 0x517cc1b727220a95ULL);
  if (id.IsZero()) id.lo = 1;  // the spec forbids all-zero ids
  return id;
}

RequestContext RequestContext::FromTraceparent(std::string_view header) {
  RequestContext context;
  if (header.empty()) return context;
  TraceId id;
  uint64_t parent = 0;
  bool sampled = true;
  if (ParseTraceparent(header, &id, &parent, &sampled)) {
    context.trace_id_ = id;
    context.parent_span_id_ = parent;
    context.sampled_ = sampled;
    context.propagated_ = true;
  }
  return context;
}

void RequestContext::CollectSpan(const SpanRecord& span) {
  if (!sampled_) return;
  if (spans_.size() >= kMaxSpans) {
    ++spans_dropped_;
    return;
  }
  spans_.push_back(span);
}

RequestScope::RequestScope(RequestContext* context)
    : previous_(tls_request_context) {
  tls_request_context = context;
}

RequestScope::~RequestScope() { tls_request_context = previous_; }

RequestContext* CurrentRequestContext() { return tls_request_context; }

}  // namespace obs
}  // namespace prox
