#ifndef PROX_OBS_METRICS_H_
#define PROX_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace prox {
namespace obs {

/// \brief Process-wide metrics: named counters, gauges and fixed-bucket
/// histograms (docs/OBSERVABILITY.md lists every metric the library
/// records).
///
/// Hot-path writes are single relaxed atomic operations; readers take a
/// consistent-enough snapshot without stopping writers (counters may be
/// mid-increment across metrics, each individual value is atomic). Metric
/// objects live for the process lifetime, so instrumentation sites can
/// cache the pointer in a function-local static.
///
/// Two kill switches:
///  * runtime — SetEnabled(false), or the PROX_OBS env var ("0" / "off" /
///    "false" disables recording at startup);
///  * compile time — building with -DPROX_OBS_DISABLED turns every record
///    operation into a no-op the optimizer can delete.

namespace internal {

std::atomic<bool>& EnabledFlag();

/// fetch_add for atomic<double> without relying on C++20 library support
/// for floating-point fetch_add.
inline void AtomicAddDouble(std::atomic<double>* target, double delta) {
  double current = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(current, current + delta,
                                        std::memory_order_relaxed)) {
  }
}

}  // namespace internal

/// True when metric/trace recording is on (the default).
#ifdef PROX_OBS_DISABLED
inline bool Enabled() { return false; }
#else
inline bool Enabled() {
  return internal::EnabledFlag().load(std::memory_order_relaxed);
}
#endif

/// Runtime kill switch. A no-op in PROX_OBS_DISABLED builds.
void SetEnabled(bool enabled);

/// A monotonically increasing event count.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    if (!Enabled()) return;
    value_.fetch_add(delta, std::memory_order_relaxed);
  }

  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  void Reset() { value_.store(0, std::memory_order_relaxed); }

  std::atomic<uint64_t> value_{0};
};

/// A value that can go up and down (e.g. current expression size).
class Gauge {
 public:
  void Set(double value) {
    if (!Enabled()) return;
    value_.store(value, std::memory_order_relaxed);
  }

  void Add(double delta) {
    if (!Enabled()) return;
    internal::AtomicAddDouble(&value_, delta);
  }

  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

  std::atomic<double> value_{0.0};
};

/// A fixed-bucket histogram with Prometheus `le` (inclusive upper bound)
/// semantics: observation v lands in the first bucket whose bound >= v;
/// values above every bound land in the implicit +Inf bucket.
///
/// Each bucket can carry one *exemplar* — the most recent (value,
/// trace id) pair observed into it via ObserveWithExemplar — which the
/// Prometheus exporter renders OpenMetrics-style after the bucket line.
/// An exemplar links a latency bucket back to a concrete request's trace
/// id, so "what is slow" (the histogram) answers "show me one" (the
/// flight recorder) directly.
class Histogram {
 public:
  /// One bucket's exemplar. `trace_id[0] == 0` means unset.
  struct Exemplar {
    double value = 0.0;
    char trace_id[33] = {0};  ///< 32-hex trace id, NUL-terminated
  };

  void Observe(double value) { ObserveWithExemplar(value, {}); }

  /// Observe() plus an exemplar for the landing bucket. `trace_id_hex`
  /// longer than 32 chars is truncated; empty records no exemplar.
  void ObserveWithExemplar(double value, std::string_view trace_id_hex);

  /// Sorted inclusive upper bounds (the +Inf bucket is implicit).
  const std::vector<double>& bounds() const { return bounds_; }
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  explicit Histogram(std::vector<double> bounds);
  void Reset();

  std::vector<double> bounds_;
  std::vector<std::atomic<uint64_t>> bucket_counts_;  // bounds + 1 (+Inf)
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  /// Guards exemplars_ only; taken when an exemplar is written/read, never
  /// on the plain Observe path.
  std::mutex exemplar_mu_;
  std::vector<Exemplar> exemplars_;  // bounds + 1 (+Inf)
};

/// Latency buckets for nanosecond durations: decades from 1 µs to 10 s.
std::vector<double> LatencyBucketsNanos();

/// Finer 1-2-5 nanosecond buckets (1 µs … 10 s) for the per-endpoint
/// request histograms, where decade resolution is too coarse to gate an
/// SLO on.
std::vector<double> RequestLatencyBucketsNanos();

/// Buckets for small cardinalities (candidates per step and the like).
std::vector<double> CountBuckets();

/// Refreshes the process-level gauges: `prox_build_info` (constant 1,
/// version label) and `prox_uptime_seconds` (seconds since obs was first
/// touched in this process). Call before exporting — the /metrics route
/// and the CLI's --metrics-out both do.
void UpdateProcessMetrics();

// ---------------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------------

struct CounterSample {
  std::string name;
  std::string labels;  ///< rendered label list, e.g. `code="NotFound"`
  std::string help;
  uint64_t value = 0;
};

struct GaugeSample {
  std::string name;
  std::string labels;
  std::string help;
  double value = 0.0;
};

struct HistogramSample {
  std::string name;
  std::string labels;
  std::string help;
  std::vector<double> bounds;
  std::vector<uint64_t> bucket_counts;  ///< per bucket, NOT cumulative
  /// Per-bucket exemplar trace ids ("" = none) and values, parallel to
  /// bucket_counts. Empty vectors when the histogram carries no exemplars
  /// at all (the common case for non-request histograms).
  std::vector<std::string> exemplar_trace_ids;
  std::vector<double> exemplar_values;
  uint64_t count = 0;
  double sum = 0.0;
};

/// A point-in-time copy of every registered metric, in registration order.
struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  const CounterSample* FindCounter(std::string_view name,
                                   std::string_view labels = "") const;
  const GaugeSample* FindGauge(std::string_view name,
                               std::string_view labels = "") const;
  const HistogramSample* FindHistogram(std::string_view name,
                                       std::string_view labels = "") const;

  /// Convenience lookups returning 0 when the metric is absent.
  double CounterValue(std::string_view name,
                      std::string_view labels = "") const;
  double HistogramSum(std::string_view name) const;
  uint64_t HistogramCount(std::string_view name) const;
};

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// \brief Owner of all metrics. Registration takes a mutex (call sites
/// cache the returned pointer); recording never does.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry every instrumentation site uses.
  static MetricsRegistry& Default();

  /// Returns the metric registered under (name, labels), creating it on
  /// first use. Re-registering an existing name with a different metric
  /// type is a programming error; the call then returns a detached
  /// fallback metric (never nullptr) that is not exported.
  Counter* GetCounter(const std::string& name, const std::string& help,
                      const std::string& labels = "");
  Gauge* GetGauge(const std::string& name, const std::string& help,
                  const std::string& labels = "");
  Histogram* GetHistogram(const std::string& name, const std::string& help,
                          std::vector<double> bounds,
                          const std::string& labels = "");

  MetricsSnapshot Snapshot() const;

  /// Zeroes every value. Metric pointers stay valid (benchmarks and tests
  /// isolate runs without re-registering).
  void ResetValues();

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Entry {
    Kind kind;
    std::string name;
    std::string labels;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* FindEntry(const std::string& name, const std::string& labels);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Entry>> entries_;  // registration order
};

}  // namespace obs
}  // namespace prox

#endif  // PROX_OBS_METRICS_H_
