#ifndef PROX_OBS_LOG_H_
#define PROX_OBS_LOG_H_

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.h"

namespace prox {
namespace obs {

/// \brief Structured JSON-lines logging (docs/OBSERVABILITY.md,
/// "Structured logging"): a leveled process logger with per-event rate
/// limiting on warn/error, plus the per-request access log the serving
/// layer writes behind `prox_server --access-log` / `prox_cli --log-json`.
///
/// Every line is one RFC 8259 JSON object built with `common/json`, so
/// the writer and `scripts/check_log_schema.sh`'s validator agree on the
/// encoding byte for byte. Logging honors the same kill switches as the
/// metrics registry: with `PROX_OBS=0` nothing is emitted.

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// "debug" / "info" / "warn" / "error".
const char* LogLevelName(LogLevel level);

/// Destination for rendered lines (each `line` is one JSON object, no
/// trailing newline — the sink appends it).
class LogSink {
 public:
  virtual ~LogSink() = default;
  virtual void Write(std::string_view line) = 0;
};

/// Writes lines to a stdio stream (not owned). Thread-safe: one line per
/// Write under flockfile, so concurrent workers never interleave bytes.
class FileLogSink : public LogSink {
 public:
  explicit FileLogSink(std::FILE* stream) : stream_(stream) {}
  void Write(std::string_view line) override;

 private:
  std::FILE* stream_;
};

/// Collects lines in memory (tests and the schema checker).
class VectorLogSink : public LogSink {
 public:
  void Write(std::string_view line) override;
  std::vector<std::string> lines() const;
  void Clear();

 private:
  mutable std::mutex mu_;
  std::vector<std::string> lines_;
};

/// \brief The process logger. `Log()` renders `{"ts_unix_ms":...,
/// "level":"...", "event":"...", ...fields}` and hands it to the sink.
/// Warn/error events are rate-limited per event name (a token bucket:
/// `kRateLimitBurst` lines, refilling `kRateLimitPerSec`/s); suppressed
/// lines are counted in `prox_log_suppressed_total` and the next emitted
/// line of that event carries a `"suppressed": N` field.
class Logger {
 public:
  static constexpr int kRateLimitBurst = 10;
  static constexpr int kRateLimitPerSec = 5;

  static Logger& Default();

  /// Below `level`, Log() is a no-op. Default: kInfo.
  void SetMinLevel(LogLevel level);
  LogLevel min_level() const;

  /// Replaces the sink (nullptr restores the default stderr sink). The
  /// sink must outlive its installation.
  void SetSink(LogSink* sink);

  /// Emits one line. `fields` must be a JSON object; its members are
  /// appended after the standard ts/level/event prefix.
  void Log(LogLevel level, std::string_view event,
           const JsonValue& fields = JsonValue::Object());

  bool ShouldLog(LogLevel level) const;

 private:
  Logger();

  struct Bucket {
    double tokens = kRateLimitBurst;
    int64_t last_nanos = 0;
    uint64_t suppressed = 0;
  };

  /// False when the event is over its rate; updates the bucket either way
  /// and reports previously suppressed lines through *suppressed.
  bool Admit(const std::string& event, uint64_t* suppressed);

  mutable std::mutex mu_;
  LogSink* sink_;
  LogLevel min_level_ = LogLevel::kInfo;
  std::vector<std::pair<std::string, Bucket>> buckets_;
};

/// Convenience wrappers over Logger::Default().
void LogInfo(std::string_view event,
             const JsonValue& fields = JsonValue::Object());
void LogWarn(std::string_view event,
             const JsonValue& fields = JsonValue::Object());
void LogError(std::string_view event,
              const JsonValue& fields = JsonValue::Object());

// ---------------------------------------------------------------------------
// Access log
// ---------------------------------------------------------------------------

/// One served request (or shed connection), the fields of the documented
/// access-log schema. `latency_us` is wall time from parsed request to
/// rendered response; `bytes` is the response body size; `cache` is the
/// `X-Prox-Cache` outcome ("hit" / "miss" / "" for routes without a
/// cache); `shed` marks connections answered with the canned overload 503
/// before reaching the router (method/path are empty then).
struct AccessLogRecord {
  std::string method;
  std::string path;
  int status = 0;
  uint64_t bytes = 0;
  int64_t latency_us = 0;
  std::string trace_id;
  std::string cache;
  bool shed = false;
};

/// The exact key set of an access-log line, sorted — the contract
/// `scripts/check_log_schema.sh` and the docs table enforce.
const std::vector<std::string>& AccessLogSchemaKeys();

/// Renders the line (one JSON object, keys in schema order, no newline).
/// `ts_unix_ms` is wall-clock milliseconds; pass a fixed value in tests
/// for byte-stable output, or use the WriteAccessLog overload that stamps
/// the current time.
std::string RenderAccessLogLine(const AccessLogRecord& record,
                                int64_t ts_unix_ms);

/// Installs the access-log destination; nullptr disables (the default —
/// access logging is opt-in via `--access-log` / `--log-json`).
void SetAccessLogSink(LogSink* sink);
bool AccessLogEnabled();

/// Stamps the current wall clock and writes the line to the installed
/// sink; a no-op when disabled or when obs recording is off.
void WriteAccessLog(const AccessLogRecord& record);

}  // namespace obs
}  // namespace prox

#endif  // PROX_OBS_LOG_H_
