#include "obs/log.h"

#include <atomic>
#include <chrono>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace prox {
namespace obs {

namespace {

int64_t UnixMillisNow() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

Counter* LogLines(LogLevel level) {
  return MetricsRegistry::Default().GetCounter(
      "prox_log_lines_total", "Structured log lines emitted, by level.",
      std::string("level=\"") + LogLevelName(level) + "\"");
}

Counter* LogSuppressed() {
  return MetricsRegistry::Default().GetCounter(
      "prox_log_suppressed_total",
      "Warn/error log lines dropped by the per-event rate limiter.");
}

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
  }
  return "info";
}

void FileLogSink::Write(std::string_view line) {
  if (stream_ == nullptr) return;
  ::flockfile(stream_);
  std::fwrite(line.data(), 1, line.size(), stream_);
  std::fputc('\n', stream_);
  // Per-line flush: file streams are fully buffered by default, and log
  // lines must be visible to tail-ing readers (and survive a crash) the
  // moment they are written.
  std::fflush(stream_);
  ::funlockfile(stream_);
}

void VectorLogSink::Write(std::string_view line) {
  std::lock_guard<std::mutex> lock(mu_);
  lines_.emplace_back(line);
}

std::vector<std::string> VectorLogSink::lines() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lines_;
}

void VectorLogSink::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lines_.clear();
}

// ---------------------------------------------------------------------------
// Logger
// ---------------------------------------------------------------------------

namespace {

LogSink* StderrSink() {
  static FileLogSink* sink = new FileLogSink(stderr);
  return sink;
}

}  // namespace

Logger::Logger() : sink_(StderrSink()) {}

Logger& Logger::Default() {
  static Logger* logger = new Logger();
  return *logger;
}

void Logger::SetMinLevel(LogLevel level) {
  std::lock_guard<std::mutex> lock(mu_);
  min_level_ = level;
}

LogLevel Logger::min_level() const {
  std::lock_guard<std::mutex> lock(mu_);
  return min_level_;
}

void Logger::SetSink(LogSink* sink) {
  std::lock_guard<std::mutex> lock(mu_);
  sink_ = sink != nullptr ? sink : StderrSink();
}

bool Logger::ShouldLog(LogLevel level) const {
  if (!Enabled()) return false;
  std::lock_guard<std::mutex> lock(mu_);
  return level >= min_level_;
}

bool Logger::Admit(const std::string& event, uint64_t* suppressed) {
  const int64_t now = TraceNowNanos();
  std::lock_guard<std::mutex> lock(mu_);
  Bucket* bucket = nullptr;
  for (auto& [name, b] : buckets_) {
    if (name == event) {
      bucket = &b;
      break;
    }
  }
  if (bucket == nullptr) {
    buckets_.emplace_back(event, Bucket{});
    bucket = &buckets_.back().second;
    bucket->last_nanos = now;
  }
  const double elapsed_s =
      static_cast<double>(now - bucket->last_nanos) / 1e9;
  bucket->last_nanos = now;
  bucket->tokens += elapsed_s * kRateLimitPerSec;
  if (bucket->tokens > kRateLimitBurst) bucket->tokens = kRateLimitBurst;
  if (bucket->tokens < 1.0) {
    ++bucket->suppressed;
    return false;
  }
  bucket->tokens -= 1.0;
  *suppressed = bucket->suppressed;
  bucket->suppressed = 0;
  return true;
}

void Logger::Log(LogLevel level, std::string_view event,
                 const JsonValue& fields) {
  if (!ShouldLog(level)) return;
  uint64_t suppressed = 0;
  if (level >= LogLevel::kWarn) {
    if (!Admit(std::string(event), &suppressed)) {
      LogSuppressed()->Increment();
      return;
    }
  }

  JsonValue doc = JsonValue::Object();
  doc.Set("ts_unix_ms", JsonValue::Int(UnixMillisNow()));
  doc.Set("level", JsonValue::Str(LogLevelName(level)));
  doc.Set("event", JsonValue::Str(std::string(event)));
  if (fields.is_object()) {
    for (const auto& [key, value] : fields.members()) {
      doc.Set(key, value);
    }
  }
  if (suppressed > 0) {
    doc.Set("suppressed", JsonValue::Int(static_cast<int64_t>(suppressed)));
  }
  LogLines(level)->Increment();

  LogSink* sink;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sink = sink_;
  }
  sink->Write(WriteJson(doc));
}

void LogInfo(std::string_view event, const JsonValue& fields) {
  Logger::Default().Log(LogLevel::kInfo, event, fields);
}

void LogWarn(std::string_view event, const JsonValue& fields) {
  Logger::Default().Log(LogLevel::kWarn, event, fields);
}

void LogError(std::string_view event, const JsonValue& fields) {
  Logger::Default().Log(LogLevel::kError, event, fields);
}

// ---------------------------------------------------------------------------
// Access log
// ---------------------------------------------------------------------------

namespace {

std::atomic<LogSink*> g_access_sink{nullptr};

Counter* AccessLines() {
  return MetricsRegistry::Default().GetCounter(
      "prox_log_access_lines_total", "Access-log lines written.");
}

}  // namespace

const std::vector<std::string>& AccessLogSchemaKeys() {
  static const std::vector<std::string>* keys = new std::vector<std::string>{
      "bytes",  "cache",  "event",    "latency_us", "level", "method",
      "path",   "shed",   "status",   "trace_id",   "ts_unix_ms"};
  return *keys;
}

std::string RenderAccessLogLine(const AccessLogRecord& record,
                                int64_t ts_unix_ms) {
  JsonValue doc = JsonValue::Object();
  doc.Set("ts_unix_ms", JsonValue::Int(ts_unix_ms));
  doc.Set("level", JsonValue::Str("info"));
  doc.Set("event", JsonValue::Str("access"));
  doc.Set("method", JsonValue::Str(record.method));
  doc.Set("path", JsonValue::Str(record.path));
  doc.Set("status", JsonValue::Int(record.status));
  doc.Set("bytes", JsonValue::Int(static_cast<int64_t>(record.bytes)));
  doc.Set("latency_us", JsonValue::Int(record.latency_us));
  doc.Set("trace_id", JsonValue::Str(record.trace_id));
  doc.Set("cache", JsonValue::Str(record.cache));
  doc.Set("shed", JsonValue::Bool(record.shed));
  return WriteJson(doc);
}

void SetAccessLogSink(LogSink* sink) {
  g_access_sink.store(sink, std::memory_order_release);
}

bool AccessLogEnabled() {
  return Enabled() &&
         g_access_sink.load(std::memory_order_acquire) != nullptr;
}

void WriteAccessLog(const AccessLogRecord& record) {
  if (!Enabled()) return;
  LogSink* sink = g_access_sink.load(std::memory_order_acquire);
  if (sink == nullptr) return;
  AccessLines()->Increment();
  sink->Write(RenderAccessLogLine(record, UnixMillisNow()));
}

}  // namespace obs
}  // namespace prox
