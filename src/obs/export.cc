#include "obs/export.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <set>

namespace prox {
namespace obs {

namespace {

/// Numbers render as integers when they are integral (bucket bounds,
/// nanosecond sums) and as shortest-roundtrip decimals otherwise, so
/// golden files stay readable and byte-stable.
std::string FormatNumber(double value) {
  char buf[64];
  if (std::isfinite(value) && value == std::floor(value) &&
      std::fabs(value) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", value);
  } else {
    std::snprintf(buf, sizeof(buf), "%.9g", value);
  }
  return buf;
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string SampleName(const std::string& name, const std::string& labels) {
  if (labels.empty()) return name;
  return name + "{" + labels + "}";
}

/// `le` label value: bucket bound, or "+Inf" for the overflow bucket.
std::string LeLabel(const std::string& labels, const std::string& le) {
  std::string all = "le=\"" + le + "\"";
  if (!labels.empty()) all = labels + "," + all;
  return all;
}

void AppendHelpType(std::string* out, std::set<std::string>* seen,
                    const std::string& name, const std::string& help,
                    const char* type) {
  if (!seen->insert(name).second) return;  // one family header per name
  *out += "# HELP " + name + " " + help + "\n";
  *out += "# TYPE " + name + " " + std::string(type) + "\n";
}

}  // namespace

std::string RenderPrometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  std::set<std::string> seen;
  for (const CounterSample& c : snapshot.counters) {
    AppendHelpType(&out, &seen, c.name, c.help, "counter");
    out += SampleName(c.name, c.labels) + " " +
           std::to_string(c.value) + "\n";
  }
  for (const GaugeSample& g : snapshot.gauges) {
    AppendHelpType(&out, &seen, g.name, g.help, "gauge");
    out += SampleName(g.name, g.labels) + " " + FormatNumber(g.value) + "\n";
  }
  for (const HistogramSample& h : snapshot.histograms) {
    AppendHelpType(&out, &seen, h.name, h.help, "histogram");
    // OpenMetrics-style exemplar suffix for a bucket line; empty for
    // buckets (and histograms) without one, leaving classic output
    // byte-identical.
    auto exemplar_suffix = [&h](size_t bucket) -> std::string {
      if (bucket >= h.exemplar_trace_ids.size()) return "";
      if (h.exemplar_trace_ids[bucket].empty()) return "";
      return " # {trace_id=\"" + h.exemplar_trace_ids[bucket] + "\"} " +
             FormatNumber(h.exemplar_values[bucket]);
    };
    uint64_t cumulative = 0;
    for (size_t i = 0; i < h.bounds.size(); ++i) {
      cumulative += h.bucket_counts[i];
      out += h.name + "_bucket{" +
             LeLabel(h.labels, FormatNumber(h.bounds[i])) + "} " +
             std::to_string(cumulative) + exemplar_suffix(i) + "\n";
    }
    out += h.name + "_bucket{" + LeLabel(h.labels, "+Inf") + "} " +
           std::to_string(h.count) + exemplar_suffix(h.bounds.size()) + "\n";
    out += SampleName(h.name + "_sum", h.labels) + " " +
           FormatNumber(h.sum) + "\n";
    out += SampleName(h.name + "_count", h.labels) + " " +
           std::to_string(h.count) + "\n";
  }
  return out;
}

std::string RenderMetricsJson(const MetricsSnapshot& snapshot) {
  std::string out = "{\n  \"counters\": [";
  for (size_t i = 0; i < snapshot.counters.size(); ++i) {
    const CounterSample& c = snapshot.counters[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": \"" + JsonEscape(c.name) + "\", \"labels\": \"" +
           JsonEscape(c.labels) + "\", \"value\": " +
           std::to_string(c.value) + "}";
  }
  out += snapshot.counters.empty() ? "],\n" : "\n  ],\n";
  out += "  \"gauges\": [";
  for (size_t i = 0; i < snapshot.gauges.size(); ++i) {
    const GaugeSample& g = snapshot.gauges[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": \"" + JsonEscape(g.name) + "\", \"labels\": \"" +
           JsonEscape(g.labels) + "\", \"value\": " + FormatNumber(g.value) +
           "}";
  }
  out += snapshot.gauges.empty() ? "],\n" : "\n  ],\n";
  out += "  \"histograms\": [";
  for (size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const HistogramSample& h = snapshot.histograms[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": \"" + JsonEscape(h.name) + "\", \"labels\": \"" +
           JsonEscape(h.labels) + "\", \"buckets\": [";
    for (size_t b = 0; b < h.bounds.size(); ++b) {
      if (b > 0) out += ", ";
      out += "{\"le\": " + FormatNumber(h.bounds[b]) + ", \"count\": " +
             std::to_string(h.bucket_counts[b]) + "}";
    }
    if (!h.bounds.empty()) out += ", ";
    out += "{\"le\": \"+Inf\", \"count\": " +
           std::to_string(h.bucket_counts.back()) + "}";
    out += "], \"count\": " + std::to_string(h.count) + ", \"sum\": " +
           FormatNumber(h.sum) + "}";
  }
  out += snapshot.histograms.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

std::string RenderTraceJson(const std::vector<SpanRecord>& spans) {
  std::string out = "{\n  \"clock\": \"steady_nanos_since_trace_epoch\",\n";
  out += "  \"spans\": [";
  for (size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& s = spans[i];
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "    {\"id\": %" PRIu64 ", \"parent\": %" PRIu64
                  ", \"depth\": %d, \"name\": \"%s\", \"start_nanos\": "
                  "%" PRId64 ", \"duration_nanos\": %" PRId64 "}",
                  s.id, s.parent_id, s.depth, s.name, s.start_nanos,
                  s.duration_nanos);
    out += i == 0 ? "\n" : ",\n";
    out += buf;
  }
  out += spans.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

}  // namespace obs
}  // namespace prox
