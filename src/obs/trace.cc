#include "obs/trace.h"

#include <atomic>
#include <chrono>

#include "obs/metrics.h"
#include "obs/request_context.h"

namespace prox {
namespace obs {

namespace {

std::atomic<TraceSink*> g_default_sink{nullptr};
std::atomic<uint64_t> g_next_span_id{1};

// The open-span stack of the current thread, for parent/depth assignment.
thread_local uint64_t tls_current_span = 0;
thread_local int tls_depth = 0;

}  // namespace

int64_t TraceNowNanos() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              epoch)
      .count();
}

// ---------------------------------------------------------------------------
// TraceBuffer
// ---------------------------------------------------------------------------

TraceBuffer::TraceBuffer(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(capacity_ < 1024 ? capacity_ : 1024);
}

TraceBuffer& TraceBuffer::Default() {
  static TraceBuffer* buffer = new TraceBuffer();
  return *buffer;
}

void TraceBuffer::OnSpanEnd(const SpanRecord& span) {
  // Looked up outside the buffer lock; registration is idempotent.
  static Counter* ring_dropped = MetricsRegistry::Default().GetCounter(
      "prox_trace_ring_dropped_total",
      "Spans evicted from a trace ring buffer to admit newer ones.");
  bool evicted = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (ring_.size() < capacity_) {
      ring_.push_back(span);
    } else {
      ring_[next_] = span;
      next_ = (next_ + 1) % capacity_;
      evicted = true;
    }
    ++total_;
  }
  if (evicted) ring_dropped->Increment();
}

std::vector<SpanRecord> TraceBuffer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SpanRecord> out;
  out.reserve(ring_.size());
  // `next_` is the oldest entry once the ring has wrapped.
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

void TraceBuffer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  next_ = 0;
  total_ = 0;
}

size_t TraceBuffer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

uint64_t TraceBuffer::total_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

uint64_t TraceBuffer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_ - ring_.size();
}

// ---------------------------------------------------------------------------
// Default sink
// ---------------------------------------------------------------------------

TraceSink* DefaultTraceSink() {
  TraceSink* sink = g_default_sink.load(std::memory_order_acquire);
  return sink != nullptr ? sink : &TraceBuffer::Default();
}

void SetDefaultTraceSink(TraceSink* sink) {
  g_default_sink.store(sink, std::memory_order_release);
}

// ---------------------------------------------------------------------------
// TraceSpan
// ---------------------------------------------------------------------------

TraceSpan::TraceSpan(const char* name, TraceSink* sink)
    : name_(name), sink_(sink != nullptr ? sink : DefaultTraceSink()) {
  start_nanos_ = TraceNowNanos();
  recording_ = Enabled();
  if (recording_) {
    id_ = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
    parent_id_ = tls_current_span;
    depth_ = tls_depth;
    tls_current_span = id_;
    ++tls_depth;
  }
}

TraceSpan::~TraceSpan() { Close(); }

int64_t TraceSpan::Close() {
  if (closed_) return duration_nanos_;
  closed_ = true;
  duration_nanos_ = TraceNowNanos() - start_nanos_;
  if (recording_) {
    tls_current_span = parent_id_;
    tls_depth = depth_;
    SpanRecord record;
    record.id = id_;
    record.parent_id = parent_id_;
    record.depth = depth_;
    record.name = name_;
    record.start_nanos = start_nanos_;
    record.duration_nanos = duration_nanos_;
    // Stamp the request's trace id and collect the span into its context,
    // so the global stream stays per-request attributable and the flight
    // recorder gets the full tree (obs/request_context.h).
    if (RequestContext* context = CurrentRequestContext()) {
      record.trace_hi = context->trace_id().hi;
      record.trace_lo = context->trace_id().lo;
      context->CollectSpan(record);
    }
    sink_->OnSpanEnd(record);
  }
  return duration_nanos_;
}

void TraceSpan::Cancel() {
  if (closed_) return;
  closed_ = true;
  duration_nanos_ = TraceNowNanos() - start_nanos_;
  if (recording_) {
    tls_current_span = parent_id_;
    tls_depth = depth_;
  }
}

int64_t TraceSpan::ElapsedNanos() const {
  return closed_ ? duration_nanos_ : TraceNowNanos() - start_nanos_;
}

}  // namespace obs
}  // namespace prox
