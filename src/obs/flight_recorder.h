#ifndef PROX_OBS_FLIGHT_RECORDER_H_
#define PROX_OBS_FLIGHT_RECORDER_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace prox {
namespace obs {

/// \brief A bounded in-memory flight recorder: keeps the full span tree
/// plus request metadata for the N *slowest* requests seen so far and,
/// separately, the most recent M *errored* requests. `prox_server
/// --debug-endpoints` exposes it at `GET /v1/debug/requests`
/// (docs/OBSERVABILITY.md, "Flight recorder") so a slow `/v1/summarize`
/// can be attributed to its selection, cache outcome, and per-step
/// summarizer timings after the fact — without a debugger attached.
///
/// Eviction contract (tests/obs/flight_recorder_test.cc):
///  * slowest set — when full, a new request only enters by beating the
///    fastest retained one, which is evicted (keep-the-slowest order);
///  * error ring — FIFO: the oldest error leaves when capacity is hit.
/// Memory is bounded by `slowest_capacity + error_capacity` records of at
/// most RequestContext::kMaxSpans spans each.

/// Everything retained about one request.
struct RequestRecord {
  std::string trace_id;  ///< 32-hex trace id
  std::string method;
  std::string path;
  int status = 0;
  uint64_t bytes = 0;           ///< response body size
  int64_t latency_nanos = 0;    ///< parsed request → rendered response
  int64_t start_unix_ms = 0;    ///< wall clock at completion time
  std::string cache;            ///< "hit" / "miss" / ""
  std::vector<SpanRecord> spans;  ///< the request's span tree
  uint64_t spans_dropped = 0;   ///< spans over RequestContext::kMaxSpans
};

class FlightRecorder {
 public:
  struct Options {
    size_t slowest_capacity = 16;
    size_t error_capacity = 16;
    /// Responses with status >= this are retained in the error ring.
    int error_status = 400;
  };

  FlightRecorder() : FlightRecorder(Options{}) {}
  explicit FlightRecorder(Options options);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Considers one finished request for both retention sets. Thread-safe.
  void Record(RequestRecord record);

  /// The retained slowest requests, slowest first.
  std::vector<RequestRecord> SlowestSnapshot() const;

  /// The retained errored requests, oldest first.
  std::vector<RequestRecord> ErrorsSnapshot() const;

  /// Requests offered to Record() since construction.
  uint64_t recorded_total() const;

  void Clear();

 private:
  Options options_;
  mutable std::mutex mu_;
  /// Sorted by latency descending; back() is the eviction candidate.
  std::vector<RequestRecord> slowest_;
  std::deque<RequestRecord> errors_;
  uint64_t recorded_total_ = 0;
};

}  // namespace obs
}  // namespace prox

#endif  // PROX_OBS_FLIGHT_RECORDER_H_
