#ifndef PROX_EXEC_THREAD_POOL_H_
#define PROX_EXEC_THREAD_POOL_H_

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace prox {
namespace exec {

/// \brief `prox::exec` — a small work-stealing thread pool for the
/// embarrassingly parallel loops of the summarization hot path (candidate
/// scoring, distance-oracle reductions, the HAC distance-matrix fill).
///
/// Design constraints, in priority order (docs/PARALLELISM.md):
///  1. *Determinism*: every parallel construct here produces bit-identical
///     results at any thread count, including the serial inline path.
///     `ParallelFor` gives each index to exactly one task and callers write
///     to index-addressed slots; `DeterministicSum` reduces fixed-size
///     chunk partials in ascending chunk order, so the floating-point
///     summation tree depends only on (count, grain) — never on scheduling.
///  2. *Exact serial behaviour at 1 thread*: a null pool (or a nested call
///     from inside a worker) runs the plain `for` loop inline on the
///     calling thread — no tasks, no allocation, no synchronization.
///  3. *No deadlocks from nesting*: a `ParallelFor` issued from a pool
///     worker (e.g. a distance oracle called from a candidate-scoring
///     task) degrades to the inline loop instead of submitting to the pool
///     it is running on.
///
/// Thread count resolution (shared by `SummarizerOptions::threads`,
/// `ClusteringOptions::threads`, oracle options and `prox_cli --threads`):
/// `0` = automatic — the `PROX_THREADS` environment variable when set, the
/// hardware concurrency otherwise; `1` = serial; `N > 1` = exactly N
/// workers.
///
/// Metrics (docs/OBSERVABILITY.md): `prox_exec_pool_size`,
/// `prox_exec_tasks_total`, `prox_exec_steal_total`.

/// Hardware concurrency, at least 1.
int HardwareThreads();

/// The process-default thread count: `PROX_THREADS` when set and positive,
/// hardware concurrency when unset or `0`. Always >= 1.
int DefaultThreads();

/// Resolves a `threads` option value: `0` -> DefaultThreads(), otherwise
/// the value clamped to [1, 256].
int ResolveThreads(int threads);

/// True on a pool worker thread (used to run nested parallel constructs
/// inline and to suppress per-candidate trace spans on the parallel path).
bool InParallelWorker();

namespace internal {
void SetInParallelWorker(bool value);
void CountTasks(uint64_t n);
void CountSteal();
}  // namespace internal

/// \brief Fixed-size work-stealing pool. Each worker owns a deque; tasks
/// are pushed round-robin, popped LIFO by their owner and stolen FIFO by
/// idle siblings. Destruction drains queued tasks, then joins.
class ThreadPool {
 public:
  /// Spawns `num_workers` workers (clamped to [1, 256]).
  explicit ThreadPool(int num_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// The process-wide pool, sized DefaultThreads(). Created on first use;
  /// its size is exported as the `prox_exec_pool_size` gauge.
  static ThreadPool& Default();

  int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a fire-and-forget task. Tasks must not throw; escaping
  /// exceptions are caught and reported to stderr (use ParallelFor for
  /// propagating work).
  void Submit(std::function<void()> task);

  /// Splits [begin, end) into ceil(range/grain) contiguous chunks, runs
  /// `chunk_fn(lo, hi)` once per chunk across the workers, and blocks
  /// until every chunk finished. The first exception thrown by a chunk is
  /// rethrown here (chunks not yet started are skipped). Callers on a
  /// worker thread must use the free exec::ParallelFor, which runs inline
  /// in that case.
  void RunChunks(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& chunk_fn);

 private:
  struct Worker {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  void WorkerLoop(int self);
  bool PopOwn(int self, std::function<void()>* task);
  bool StealOther(int self, std::function<void()>* task);
  void Enqueue(std::function<void()> task);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  std::atomic<int64_t> pending_{0};
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> next_worker_{0};
};

/// \brief Resolves a `threads` option into the pool to run on. `pool()` is
/// nullptr when the resolved count is 1 (serial), the process-default pool
/// when the count matches DefaultThreads(), and an owned transient pool
/// otherwise (so `threads = N` means exactly N workers, independent of the
/// process default).
class PoolRef {
 public:
  explicit PoolRef(int threads);

  /// The pool to pass to ParallelFor / DeterministicSum; nullptr = serial.
  ThreadPool* pool() const { return pool_; }
  /// The resolved thread count (>= 1).
  int threads() const { return resolved_; }

 private:
  int resolved_;
  ThreadPool* pool_ = nullptr;
  std::unique_ptr<ThreadPool> owned_;
};

/// Runs `fn(i)` for every i in [begin, end), partitioned into chunks of
/// `grain` indices. Inline (plain loop, ascending i) when `pool` is null,
/// the range fits one chunk, the pool has a single worker, or the caller
/// is itself a pool worker; otherwise fanned out via ThreadPool::RunChunks.
/// Every index runs exactly once; callers make results deterministic by
/// writing to index-addressed slots.
template <typename Fn>
void ParallelFor(ThreadPool* pool, int64_t begin, int64_t end, int64_t grain,
                 Fn&& fn) {
  if (end <= begin) return;
  if (grain <= 0) grain = 1;
  if (pool == nullptr || pool->size() <= 1 || end - begin <= grain ||
      InParallelWorker()) {
    for (int64_t i = begin; i < end; ++i) fn(i);
    return;
  }
  std::function<void(int64_t, int64_t)> chunk_fn = [&fn](int64_t lo,
                                                         int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) fn(i);
  };
  pool->RunChunks(begin, end, grain, chunk_fn);
}

/// Deterministic parallel reduction: partials[c] accumulates
/// term(c*grain) ... term(min(count, (c+1)*grain) - 1) in ascending index
/// order, and the partials fold in ascending chunk order. The summation
/// tree depends only on (count, grain), so the result is bit-identical at
/// every thread count — including the serial path, which runs the same
/// chunked arithmetic inline.
template <typename TermFn>
double DeterministicSum(ThreadPool* pool, int64_t count, int64_t grain,
                        TermFn&& term) {
  if (count <= 0) return 0.0;
  if (grain <= 0) grain = 1;
  const int64_t num_chunks = (count + grain - 1) / grain;
  std::vector<double> partials(static_cast<size_t>(num_chunks), 0.0);
  ParallelFor(pool, 0, num_chunks, 1, [&](int64_t c) {
    const int64_t lo = c * grain;
    const int64_t hi = std::min(count, lo + grain);
    double partial = 0.0;
    for (int64_t i = lo; i < hi; ++i) partial += term(i);
    partials[static_cast<size_t>(c)] = partial;
  });
  double total = 0.0;
  for (double partial : partials) total += partial;
  return total;
}

/// Chunk-granular variant of DeterministicSum for the batch kernels:
/// `chunk(lo, hi)` returns the partial for indexes [lo, hi). Provided the
/// chunk accumulates its per-index terms in ascending index order with
/// plain `+`, the result is bit-identical to DeterministicSum over the
/// equivalent per-index term function, at every thread count — the chunk
/// boundaries and the ascending partial fold are the same.
template <typename ChunkFn>
double DeterministicChunkSum(ThreadPool* pool, int64_t count, int64_t grain,
                             ChunkFn&& chunk) {
  if (count <= 0) return 0.0;
  if (grain <= 0) grain = 1;
  const int64_t num_chunks = (count + grain - 1) / grain;
  std::vector<double> partials(static_cast<size_t>(num_chunks), 0.0);
  ParallelFor(pool, 0, num_chunks, 1, [&](int64_t c) {
    const int64_t lo = c * grain;
    const int64_t hi = std::min(count, lo + grain);
    partials[static_cast<size_t>(c)] = chunk(lo, hi);
  });
  double total = 0.0;
  for (double partial : partials) total += partial;
  return total;
}

}  // namespace exec
}  // namespace prox

#endif  // PROX_EXEC_THREAD_POOL_H_
