#include "exec/thread_pool.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <utility>

#include "obs/metrics.h"

namespace prox {
namespace exec {

namespace {

constexpr int kMaxThreads = 256;

thread_local bool t_in_parallel_worker = false;

struct ExecMetrics {
  obs::Counter* tasks_total;
  obs::Counter* steal_total;
  obs::Gauge* pool_size;

  static ExecMetrics& Get() {
    static ExecMetrics m = [] {
      auto& reg = obs::MetricsRegistry::Default();
      ExecMetrics metrics;
      metrics.tasks_total = reg.GetCounter(
          "prox_exec_tasks_total",
          "Tasks executed by prox::exec pools (chunk and submitted tasks)");
      metrics.steal_total = reg.GetCounter(
          "prox_exec_steal_total",
          "Tasks stolen from a sibling worker's deque");
      metrics.pool_size = reg.GetGauge(
          "prox_exec_pool_size",
          "Worker count of the process-default execution pool");
      return metrics;
    }();
    return m;
  }
};

int ClampThreads(int threads) {
  if (threads < 1) return 1;
  if (threads > kMaxThreads) return kMaxThreads;
  return threads;
}

}  // namespace

namespace internal {

void SetInParallelWorker(bool value) { t_in_parallel_worker = value; }

void CountTasks(uint64_t n) { ExecMetrics::Get().tasks_total->Increment(n); }

void CountSteal() { ExecMetrics::Get().steal_total->Increment(); }

}  // namespace internal

int HardwareThreads() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

int DefaultThreads() {
  static const int threads = [] {
    const char* env = std::getenv("PROX_THREADS");
    if (env != nullptr && env[0] != '\0') {
      char* end = nullptr;
      long parsed = std::strtol(env, &end, 10);
      if (end != env && *end == '\0' && parsed > 0) {
        return ClampThreads(static_cast<int>(parsed));
      }
    }
    return HardwareThreads();
  }();
  return threads;
}

int ResolveThreads(int threads) {
  if (threads == 0) return DefaultThreads();
  return ClampThreads(threads);
}

bool InParallelWorker() { return t_in_parallel_worker; }

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

ThreadPool::ThreadPool(int num_workers) {
  const int n = ClampThreads(num_workers);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  stop_.store(true, std::memory_order_release);
  wake_cv_.notify_all();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

ThreadPool& ThreadPool::Default() {
  static ThreadPool pool(DefaultThreads());
  static const bool gauge_set = [] {
    ExecMetrics::Get().pool_size->Set(static_cast<double>(pool.size()));
    return true;
  }();
  (void)gauge_set;
  return pool;
}

void ThreadPool::Enqueue(std::function<void()> task) {
  const size_t n = workers_.size();
  const size_t target =
      static_cast<size_t>(next_worker_.fetch_add(1, std::memory_order_relaxed)) %
      n;
  {
    std::lock_guard<std::mutex> lock(workers_[target]->mu);
    workers_[target]->tasks.push_back(std::move(task));
  }
  pending_.fetch_add(1, std::memory_order_release);
  wake_cv_.notify_one();
}

void ThreadPool::Submit(std::function<void()> task) {
  internal::CountTasks(1);
  Enqueue([fn = std::move(task)] {
    try {
      fn();
    } catch (const std::exception& e) {
      std::fprintf(stderr, "prox::exec: submitted task threw: %s\n", e.what());
    } catch (...) {
      std::fprintf(stderr, "prox::exec: submitted task threw\n");
    }
  });
}

bool ThreadPool::PopOwn(int self, std::function<void()>* task) {
  Worker& w = *workers_[static_cast<size_t>(self)];
  std::lock_guard<std::mutex> lock(w.mu);
  if (w.tasks.empty()) return false;
  *task = std::move(w.tasks.back());
  w.tasks.pop_back();
  return true;
}

bool ThreadPool::StealOther(int self, std::function<void()>* task) {
  const int n = size();
  for (int offset = 1; offset < n; ++offset) {
    Worker& w = *workers_[static_cast<size_t>((self + offset) % n)];
    std::lock_guard<std::mutex> lock(w.mu);
    if (w.tasks.empty()) continue;
    *task = std::move(w.tasks.front());
    w.tasks.pop_front();
    internal::CountSteal();
    return true;
  }
  return false;
}

void ThreadPool::WorkerLoop(int self) {
  internal::SetInParallelWorker(true);
  std::function<void()> task;
  for (;;) {
    if (PopOwn(self, &task) || StealOther(self, &task)) {
      pending_.fetch_sub(1, std::memory_order_acq_rel);
      task();
      task = nullptr;
      continue;
    }
    // Drain-then-exit: only stop once every queued task has been dequeued.
    if (stop_.load(std::memory_order_acquire) &&
        pending_.load(std::memory_order_acquire) == 0) {
      break;
    }
    std::unique_lock<std::mutex> lock(wake_mu_);
    // The timeout re-scan covers the enqueue/sleep race without requiring
    // producers to hold wake_mu_ while pushing.
    wake_cv_.wait_for(lock, std::chrono::milliseconds(2), [this] {
      return stop_.load(std::memory_order_acquire) ||
             pending_.load(std::memory_order_acquire) > 0;
    });
  }
  internal::SetInParallelWorker(false);
}

namespace {

/// Shared state of one RunChunks call. Lives on the caller's stack; the
/// caller blocks until `remaining` hits zero, so chunk tasks never outlive
/// it.
struct ChunkJob {
  const std::function<void(int64_t, int64_t)>* body;
  std::atomic<int64_t> remaining;
  std::atomic<bool> cancelled{false};
  std::mutex mu;
  std::condition_variable done_cv;
  std::exception_ptr error;

  void RunOne(int64_t lo, int64_t hi) {
    if (!cancelled.load(std::memory_order_acquire)) {
      try {
        (*body)(lo, hi);
      } catch (...) {
        bool expected = false;
        if (cancelled.compare_exchange_strong(expected, true,
                                              std::memory_order_acq_rel)) {
          std::lock_guard<std::mutex> lock(mu);
          error = std::current_exception();
        }
      }
    }
    if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(mu);
      done_cv.notify_all();
    }
  }
};

}  // namespace

void ThreadPool::RunChunks(int64_t begin, int64_t end, int64_t grain,
                           const std::function<void(int64_t, int64_t)>& chunk_fn) {
  if (end <= begin) return;
  if (grain <= 0) grain = 1;
  const int64_t num_chunks = (end - begin + grain - 1) / grain;

  ChunkJob job;
  job.body = &chunk_fn;
  job.remaining.store(num_chunks, std::memory_order_relaxed);
  internal::CountTasks(static_cast<uint64_t>(num_chunks));

  for (int64_t c = 0; c < num_chunks; ++c) {
    const int64_t lo = begin + c * grain;
    const int64_t hi = std::min(end, lo + grain);
    Enqueue([&job, lo, hi] { job.RunOne(lo, hi); });
  }

  std::unique_lock<std::mutex> lock(job.mu);
  job.done_cv.wait(lock, [&job] {
    return job.remaining.load(std::memory_order_acquire) == 0;
  });
  if (job.error) std::rethrow_exception(job.error);
}

// ---------------------------------------------------------------------------
// PoolRef
// ---------------------------------------------------------------------------

PoolRef::PoolRef(int threads) : resolved_(ResolveThreads(threads)) {
  if (resolved_ <= 1) return;
  if (resolved_ == DefaultThreads()) {
    pool_ = &ThreadPool::Default();
    return;
  }
  owned_ = std::make_unique<ThreadPool>(resolved_);
  pool_ = owned_.get();
}

}  // namespace exec
}  // namespace prox
