#ifndef PROX_PROVENANCE_MONOMIAL_H_
#define PROX_PROVENANCE_MONOMIAL_H_

#include <compare>
#include <functional>
#include <initializer_list>
#include <string>
#include <vector>

#include "provenance/annotation.h"

namespace prox {

class AnnotationRegistry;

/// \brief A product of annotations — one monomial of the provenance
/// semiring, e.g. `UserID₁ · MovieTitle₁ · MovieYear₁` in Table 5.1.
///
/// Factors are kept sorted (with repetitions, so `U·U` has size 2) to give
/// a canonical form under the commutativity axiom.
class Monomial {
 public:
  Monomial() = default;
  Monomial(std::initializer_list<AnnotationId> factors);
  explicit Monomial(std::vector<AnnotationId> factors);

  /// The empty product — the multiplicative identity 1.
  bool IsOne() const { return factors_.empty(); }

  /// Number of annotation occurrences (with repetitions).
  int64_t Size() const { return static_cast<int64_t>(factors_.size()); }

  const std::vector<AnnotationId>& factors() const { return factors_; }

  /// Multiplies by a single annotation.
  void MultiplyBy(AnnotationId a);

  /// Multiplies by another monomial.
  Monomial operator*(const Monomial& other) const;

  bool Contains(AnnotationId a) const;

  /// True when all factors are assigned true by `truth`.
  bool EvaluateBool(const std::function<bool(AnnotationId)>& truth) const;

  /// Applies an annotation renaming, re-sorting the result.
  Monomial Map(const std::function<AnnotationId(AnnotationId)>& h) const;

  /// Renders "U1·M5·Y1995" using the registry's names; "1" when empty.
  std::string ToString(const AnnotationRegistry& registry) const;

  auto operator<=>(const Monomial& other) const = default;

 private:
  std::vector<AnnotationId> factors_;  // sorted
};

}  // namespace prox

#endif  // PROX_PROVENANCE_MONOMIAL_H_
