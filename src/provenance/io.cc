#include "provenance/io.h"

#include <cctype>
#include <cstdlib>
#include <vector>

#include "common/str_util.h"
#include "provenance/aggregate_expr.h"
#include "provenance/ddp_expr.h"

namespace prox {

namespace {

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

/// Writes `domain/name`, quoting when the name contains spaces or parens.
std::string WriteAnnotation(const AnnotationRegistry& registry,
                            AnnotationId a) {
  const std::string& domain = registry.domain_name(registry.domain(a));
  const std::string& name = registry.name(a);
  bool needs_quotes = false;
  for (char c : name) {
    if (std::isspace(static_cast<unsigned char>(c)) || c == '(' ||
        c == ')' || c == '"') {
      needs_quotes = true;
      break;
    }
  }
  std::string out = domain + "/";
  if (!needs_quotes) return out + name;
  out += '"';
  for (char c : name) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

std::string WriteMonomial(const AnnotationRegistry& registry,
                          const AnnotationId* factors, size_t len) {
  std::string out = "(mono";
  for (size_t i = 0; i < len; ++i) {
    out += " ";
    out += WriteAnnotation(registry, factors[i]);
  }
  out += ")";
  return out;
}

std::string WriteAggregate(const AggregateFacade& expr,
                           const AnnotationRegistry& registry) {
  std::string out = "(aggregate ";
  out += AggKindToString(expr.agg_kind());
  const size_t num_terms = expr.agg_num_terms();
  for (size_t i = 0; i < num_terms; ++i) {
    const AggTermView t = expr.agg_term(i);
    out += "\n  (term ";
    out += WriteMonomial(registry, t.mono, t.mono_len);
    if (t.group != kNoAnnotation) {
      out += " (group " + WriteAnnotation(registry, t.group) + ")";
    }
    out += " (value " + FormatDouble(t.value.value, 6) + " " +
           FormatDouble(t.value.count, 6) + ")";
    if (t.has_guard) {
      out += " (guard " + WriteMonomial(registry, t.guard_mono, t.guard_len) +
             " " + FormatDouble(t.guard_scalar, 6) + " " +
             CompareOpToString(t.guard_op) + " " +
             FormatDouble(t.guard_threshold, 6) + ")";
    }
    out += ")";
  }
  out += ")\n";
  return out;
}

std::string WriteDdp(const DdpFacade& expr,
                     const AnnotationRegistry& registry) {
  std::string out = "(ddp";
  for (const auto& [var, cost] : expr.ddp_costs()) {
    out += "\n  (cost " + WriteAnnotation(registry, var) + " " +
           FormatDouble(cost, 6) + ")";
  }
  const size_t num_execs = expr.ddp_num_executions();
  for (size_t e = 0; e < num_execs; ++e) {
    out += "\n  (exec";
    const size_t num_transitions = expr.ddp_num_transitions(e);
    for (size_t i = 0; i < num_transitions; ++i) {
      const DdpTransitionView t = expr.ddp_transition(e, i);
      if (t.user) {
        out += " (user " + WriteAnnotation(registry, t.cost_var) + ")";
      } else {
        out += std::string(" (db ") + (t.nonzero ? "!=" : "==");
        for (size_t k = 0; k < t.db_len; ++k) {
          out += " " + WriteAnnotation(registry, t.db[k]);
        }
        out += ")";
      }
    }
    out += ")";
  }
  out += ")\n";
  return out;
}

// ---------------------------------------------------------------------------
// Parsing: tokenizer + recursive descent over s-expressions.
// ---------------------------------------------------------------------------

struct Token {
  enum class Kind { kLParen, kRParen, kAtom, kEnd };
  Kind kind = Kind::kEnd;
  std::string text;
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  Result<Token> Next() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ >= text_.size()) return Token{Token::Kind::kEnd, ""};
    char c = text_[pos_];
    if (c == '(') {
      ++pos_;
      return Token{Token::Kind::kLParen, "("};
    }
    if (c == ')') {
      ++pos_;
      return Token{Token::Kind::kRParen, ")"};
    }
    std::string atom;
    if (ReadQuotedOrBare(&atom)) return Token{Token::Kind::kAtom, atom};
    return Status::InvalidArgument("unterminated quoted string");
  }

 private:
  /// Reads a bare atom, handling an embedded quoted segment after the
  /// domain separator (`movie/"Match Point"`).
  bool ReadQuotedOrBare(std::string* out) {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        while (pos_ < text_.size() && text_[pos_] != '"') {
          if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) ++pos_;
          out->push_back(text_[pos_]);
          ++pos_;
        }
        if (pos_ >= text_.size()) return false;  // no closing quote
        ++pos_;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c)) || c == '(' ||
          c == ')') {
        break;
      }
      out->push_back(c);
      ++pos_;
    }
    return true;
  }

  const std::string* text_ptr() const { return &text_; }

  const std::string& text_;
  size_t pos_ = 0;

 public:
  size_t pos() const { return pos_; }
  void set_pos(size_t pos) { pos_ = pos; }
};

/// A parsed s-expression node: an atom or a list.
struct Node {
  bool is_atom = false;
  std::string atom;
  std::vector<Node> children;
};

Result<Node> ParseNode(Lexer* lexer) {
  Token token;
  PROX_ASSIGN_OR_RETURN(token, lexer->Next());
  if (token.kind == Token::Kind::kAtom) {
    Node node;
    node.is_atom = true;
    node.atom = std::move(token.text);
    return node;
  }
  if (token.kind != Token::Kind::kLParen) {
    return Status::InvalidArgument("expected '(' or atom");
  }
  Node node;
  for (;;) {
    // One-token lookahead: remember the position, peek, and rewind when
    // the next token starts a child expression.
    const size_t mark = lexer->pos();
    Token peeked;
    PROX_ASSIGN_OR_RETURN(peeked, lexer->Next());
    if (peeked.kind == Token::Kind::kRParen) return node;
    if (peeked.kind == Token::Kind::kEnd) {
      return Status::InvalidArgument("unterminated list");
    }
    lexer->set_pos(mark);
    Node child;
    PROX_ASSIGN_OR_RETURN(child, ParseNode(lexer));
    node.children.push_back(std::move(child));
  }
}

Result<AnnotationId> InternAnnotation(const std::string& atom,
                                      AnnotationRegistry* registry) {
  size_t slash = atom.find('/');
  if (slash == std::string::npos || slash == 0 ||
      slash == atom.size() - 1) {
    return Status::InvalidArgument("expected domain/name, got: " + atom);
  }
  std::string domain_name = atom.substr(0, slash);
  std::string name = atom.substr(slash + 1);
  DomainId domain = registry->AddDomain(domain_name);
  auto found = registry->Find(name);
  if (found.ok()) {
    if (registry->domain(found.value()) != domain) {
      return Status::InvalidArgument("annotation " + name +
                                     " already registered under domain " +
                                     registry->domain_name(
                                         registry->domain(found.value())));
    }
    return found.value();
  }
  return registry->Add(domain, name);
}

bool IsList(const Node& n, const std::string& head) {
  return !n.is_atom && !n.children.empty() && n.children[0].is_atom &&
         n.children[0].atom == head;
}

Result<Monomial> ParseMonomial(const Node& node,
                               AnnotationRegistry* registry) {
  if (!IsList(node, "mono")) {
    return Status::InvalidArgument("expected (mono ...)");
  }
  std::vector<AnnotationId> factors;
  for (size_t i = 1; i < node.children.size(); ++i) {
    if (!node.children[i].is_atom) {
      return Status::InvalidArgument("monomial factors must be atoms");
    }
    AnnotationId a;
    PROX_ASSIGN_OR_RETURN(a,
                          InternAnnotation(node.children[i].atom, registry));
    factors.push_back(a);
  }
  return Monomial(std::move(factors));
}

Result<double> ParseNumber(const Node& node) {
  if (!node.is_atom) return Status::InvalidArgument("expected a number");
  char* end = nullptr;
  double value = std::strtod(node.atom.c_str(), &end);
  if (end == node.atom.c_str() || *end != '\0') {
    return Status::InvalidArgument("not a number: " + node.atom);
  }
  return value;
}

Result<CompareOp> ParseCompareOp(const std::string& text) {
  if (text == ">") return CompareOp::kGt;
  if (text == ">=") return CompareOp::kGe;
  if (text == "<") return CompareOp::kLt;
  if (text == "<=") return CompareOp::kLe;
  if (text == "=" || text == "==") return CompareOp::kEq;
  if (text == "!=") return CompareOp::kNe;
  return Status::InvalidArgument("unknown comparison operator: " + text);
}

Result<AggKind> ParseAggKind(const std::string& text) {
  if (text == "MAX") return AggKind::kMax;
  if (text == "MIN") return AggKind::kMin;
  if (text == "SUM") return AggKind::kSum;
  if (text == "COUNT") return AggKind::kCount;
  if (text == "AVG") return AggKind::kAvg;
  return Status::InvalidArgument("unknown aggregation: " + text);
}

Result<std::unique_ptr<ProvenanceExpression>> ParseAggregate(
    const Node& root, AnnotationRegistry* registry) {
  if (root.children.size() < 2 || !root.children[1].is_atom) {
    return Status::InvalidArgument("(aggregate <AGG> ...) expected");
  }
  AggKind agg;
  PROX_ASSIGN_OR_RETURN(agg, ParseAggKind(root.children[1].atom));
  auto expr = std::make_unique<AggregateExpression>(agg);
  for (size_t i = 2; i < root.children.size(); ++i) {
    const Node& term_node = root.children[i];
    if (!IsList(term_node, "term")) {
      return Status::InvalidArgument("expected (term ...)");
    }
    TensorTerm term;
    bool have_mono = false, have_value = false;
    for (size_t j = 1; j < term_node.children.size(); ++j) {
      const Node& part = term_node.children[j];
      if (IsList(part, "mono")) {
        PROX_ASSIGN_OR_RETURN(term.monomial, ParseMonomial(part, registry));
        have_mono = true;
      } else if (IsList(part, "group")) {
        if (part.children.size() != 2 || !part.children[1].is_atom) {
          return Status::InvalidArgument("(group domain/name) expected");
        }
        PROX_ASSIGN_OR_RETURN(
            term.group, InternAnnotation(part.children[1].atom, registry));
      } else if (IsList(part, "value")) {
        if (part.children.size() != 3) {
          return Status::InvalidArgument("(value v count) expected");
        }
        PROX_ASSIGN_OR_RETURN(term.value.value,
                              ParseNumber(part.children[1]));
        PROX_ASSIGN_OR_RETURN(term.value.count,
                              ParseNumber(part.children[2]));
        have_value = true;
      } else if (IsList(part, "guard")) {
        if (part.children.size() != 5 || !part.children[3].is_atom) {
          return Status::InvalidArgument(
              "(guard (mono ...) scalar op threshold) expected");
        }
        Monomial body;
        PROX_ASSIGN_OR_RETURN(body,
                              ParseMonomial(part.children[1], registry));
        double scalar, threshold;
        PROX_ASSIGN_OR_RETURN(scalar, ParseNumber(part.children[2]));
        CompareOp op;
        PROX_ASSIGN_OR_RETURN(op, ParseCompareOp(part.children[3].atom));
        PROX_ASSIGN_OR_RETURN(threshold, ParseNumber(part.children[4]));
        term.guard = Guard(std::move(body), scalar, op, threshold);
      } else {
        return Status::InvalidArgument("unknown term part");
      }
    }
    if (!have_mono || !have_value) {
      return Status::InvalidArgument("term requires (mono ...) and (value)");
    }
    expr->AddTerm(std::move(term));
  }
  expr->Simplify();
  return std::unique_ptr<ProvenanceExpression>(std::move(expr));
}

Result<std::unique_ptr<ProvenanceExpression>> ParseDdp(
    const Node& root, AnnotationRegistry* registry) {
  auto expr = std::make_unique<DdpExpression>();
  for (size_t i = 1; i < root.children.size(); ++i) {
    const Node& part = root.children[i];
    if (IsList(part, "cost")) {
      if (part.children.size() != 3 || !part.children[1].is_atom) {
        return Status::InvalidArgument("(cost domain/name value) expected");
      }
      AnnotationId var;
      PROX_ASSIGN_OR_RETURN(var,
                            InternAnnotation(part.children[1].atom, registry));
      double cost;
      PROX_ASSIGN_OR_RETURN(cost, ParseNumber(part.children[2]));
      expr->SetCost(var, cost);
    } else if (IsList(part, "exec")) {
      DdpExecution exec;
      for (size_t j = 1; j < part.children.size(); ++j) {
        const Node& t = part.children[j];
        if (IsList(t, "user")) {
          if (t.children.size() != 2 || !t.children[1].is_atom) {
            return Status::InvalidArgument("(user domain/name) expected");
          }
          AnnotationId var;
          PROX_ASSIGN_OR_RETURN(
              var, InternAnnotation(t.children[1].atom, registry));
          exec.transitions.push_back(DdpTransition::User(var));
        } else if (IsList(t, "db")) {
          if (t.children.size() < 3 || !t.children[1].is_atom) {
            return Status::InvalidArgument("(db !=|== vars...) expected");
          }
          bool nonzero;
          if (t.children[1].atom == "!=") {
            nonzero = true;
          } else if (t.children[1].atom == "==") {
            nonzero = false;
          } else {
            return Status::InvalidArgument("db guard must be != or ==");
          }
          std::vector<AnnotationId> factors;
          for (size_t k = 2; k < t.children.size(); ++k) {
            if (!t.children[k].is_atom) {
              return Status::InvalidArgument("db factors must be atoms");
            }
            AnnotationId a;
            PROX_ASSIGN_OR_RETURN(
                a, InternAnnotation(t.children[k].atom, registry));
            factors.push_back(a);
          }
          exec.transitions.push_back(
              DdpTransition::Db(Monomial(std::move(factors)), nonzero));
        } else {
          return Status::InvalidArgument("unknown transition kind");
        }
      }
      expr->AddExecution(std::move(exec));
    } else {
      return Status::InvalidArgument("unknown ddp part");
    }
  }
  expr->Simplify();
  return std::unique_ptr<ProvenanceExpression>(std::move(expr));
}

}  // namespace

std::string SerializeExpression(const ProvenanceExpression& expr,
                                const AnnotationRegistry& registry) {
  if (const AggregateFacade* agg = expr.AsAggregate()) {
    return WriteAggregate(*agg, registry);
  }
  if (const DdpFacade* ddp = expr.AsDdp()) {
    return WriteDdp(*ddp, registry);
  }
  return "(unknown)\n";
}

Result<std::unique_ptr<ProvenanceExpression>> ParseExpression(
    const std::string& text, AnnotationRegistry* registry) {
  Lexer lexer(text);
  Node root;
  PROX_ASSIGN_OR_RETURN(root, ParseNode(&lexer));
  if (IsList(root, "aggregate")) return ParseAggregate(root, registry);
  if (IsList(root, "ddp")) return ParseDdp(root, registry);
  return Status::InvalidArgument(
      "expected an (aggregate ...) or (ddp ...) expression");
}

}  // namespace prox
