#include "provenance/expression.h"

#include "obs/metrics.h"

namespace prox {

void CountSizeCacheHit() {
  static obs::Counter* hits = obs::MetricsRegistry::Default().GetCounter(
      "prox_ir_size_cache_hits_total",
      "Size() calls served from a cached size (IR header field or legacy "
      "memo) instead of a full term traversal.");
  hits->Increment();
}

}  // namespace prox
