#include "provenance/agg_value.h"

#include <algorithm>

namespace prox {

const char* AggKindToString(AggKind kind) {
  switch (kind) {
    case AggKind::kMax:
      return "MAX";
    case AggKind::kMin:
      return "MIN";
    case AggKind::kSum:
      return "SUM";
    case AggKind::kCount:
      return "COUNT";
    case AggKind::kAvg:
      return "AVG";
  }
  return "?";
}

AggValue MergeAggValues(AggKind kind, const AggValue& a, const AggValue& b) {
  AggValue out;
  out.count = a.count + b.count;
  switch (kind) {
    case AggKind::kMax:
      out.value = std::max(a.value, b.value);
      break;
    case AggKind::kMin:
      out.value = std::min(a.value, b.value);
      break;
    case AggKind::kSum:
    case AggKind::kCount:
    case AggKind::kAvg:  // (sum, count) pairs add component-wise
      out.value = a.value + b.value;
      break;
  }
  return out;
}

double FoldAggregate(AggKind kind, double acc, const AggValue& v, bool first) {
  const double contribution = (kind == AggKind::kCount) ? v.count : v.value;
  if (first) return contribution;
  switch (kind) {
    case AggKind::kMax:
      return std::max(acc, contribution);
    case AggKind::kMin:
      return std::min(acc, contribution);
    case AggKind::kSum:
    case AggKind::kCount:
    case AggKind::kAvg:  // callers divide by the folded counts afterwards
      return acc + contribution;
  }
  return acc;
}

}  // namespace prox
