#include "provenance/eval_result.h"

#include <algorithm>

#include "common/str_util.h"
#include "provenance/annotation.h"

namespace prox {

EvalResult EvalResult::Scalar(double value) {
  EvalResult r;
  r.kind_ = Kind::kScalar;
  r.scalar_ = value;
  return r;
}

EvalResult EvalResult::Vector(std::vector<Coord> coords) {
  EvalResult r;
  r.kind_ = Kind::kVector;
  std::sort(coords.begin(), coords.end(),
            [](const Coord& a, const Coord& b) { return a.group < b.group; });
  r.coords_ = std::move(coords);
  return r;
}

EvalResult EvalResult::CostBool(double cost, bool feasible) {
  EvalResult r;
  r.kind_ = Kind::kCostBool;
  r.scalar_ = cost;
  r.feasible_ = feasible;
  return r;
}

double EvalResult::CoordValue(AnnotationId group) const {
  auto it = std::lower_bound(
      coords_.begin(), coords_.end(), group,
      [](const Coord& c, AnnotationId g) { return c.group < g; });
  if (it == coords_.end() || it->group != group) return 0.0;
  return it->value;
}

std::string EvalResult::ToString(const AnnotationRegistry& registry) const {
  switch (kind_) {
    case Kind::kScalar:
      return FormatDouble(scalar_, 2);
    case Kind::kCostBool: {
      std::string out = "<";
      out += FormatDouble(scalar_, 2);
      out += ", ";
      out += feasible_ ? "true" : "false";
      out += ">";
      return out;
    }
    case Kind::kVector: {
      std::string out = "(";
      for (size_t i = 0; i < coords_.size(); ++i) {
        if (i > 0) out += ", ";
        out += coords_[i].group == kNoAnnotation
                   ? "*"
                   : registry.name(coords_[i].group);
        out += ": ";
        out += FormatDouble(coords_[i].value, 2);
      }
      out += ")";
      return out;
    }
  }
  return "?";
}

bool EvalResult::operator==(const EvalResult& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case Kind::kScalar:
      return scalar_ == other.scalar_;
    case Kind::kCostBool:
      return scalar_ == other.scalar_ && feasible_ == other.feasible_;
    case Kind::kVector:
      return coords_ == other.coords_;
  }
  return false;
}

}  // namespace prox
