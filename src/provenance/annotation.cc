#include "provenance/annotation.h"

namespace prox {

DomainId AnnotationRegistry::AddDomain(const std::string& name) {
  auto it = domain_by_name_.find(name);
  if (it != domain_by_name_.end()) return it->second;
  DomainId id = static_cast<DomainId>(domain_names_.size());
  domain_names_.push_back(name);
  domain_by_name_.emplace(name, id);
  return id;
}

Result<DomainId> AnnotationRegistry::FindDomain(const std::string& name) const {
  auto it = domain_by_name_.find(name);
  if (it == domain_by_name_.end()) {
    return Status::NotFound("unknown domain: " + name);
  }
  return it->second;
}

Result<AnnotationId> AnnotationRegistry::Add(DomainId domain,
                                             const std::string& name,
                                             uint32_t entity_row) {
  if (domain >= domain_names_.size()) {
    return Status::InvalidArgument("domain id out of range");
  }
  if (by_name_.count(name) > 0) {
    return Status::AlreadyExists("annotation already registered: " + name);
  }
  AnnotationId id = static_cast<AnnotationId>(entries_.size());
  entries_.push_back(Entry{name, domain, entity_row, /*is_summary=*/false});
  by_name_.emplace(name, id);
  return id;
}

AnnotationId AnnotationRegistry::AddSummary(DomainId domain,
                                            const std::string& name) {
  std::string unique = name;
  int suffix = 2;
  while (by_name_.count(unique) > 0) {
    unique = name + "#" + std::to_string(suffix++);
  }
  AnnotationId id = static_cast<AnnotationId>(entries_.size());
  entries_.push_back(Entry{unique, domain, kNoEntity, /*is_summary=*/true});
  by_name_.emplace(unique, id);
  return id;
}

Result<AnnotationId> AnnotationRegistry::Find(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound("unknown annotation: " + name);
  }
  return it->second;
}

std::vector<AnnotationId> AnnotationRegistry::AnnotationsInDomain(
    DomainId domain) const {
  std::vector<AnnotationId> out;
  for (AnnotationId a = 0; a < entries_.size(); ++a) {
    if (entries_[a].domain == domain) out.push_back(a);
  }
  return out;
}

}  // namespace prox
