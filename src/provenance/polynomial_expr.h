#ifndef PROX_PROVENANCE_POLYNOMIAL_EXPR_H_
#define PROX_PROVENANCE_POLYNOMIAL_EXPR_H_

#include <memory>
#include <string>

#include "provenance/expression.h"
#include "semiring/polynomial.h"

namespace prox {

/// \brief Plain ℕ[Ann] provenance as a summarizable expression — the base
/// semiring model of [21] for positive relational queries, without
/// aggregates or tensors.
///
/// Evaluation under a truth valuation yields the natural number the
/// polynomial takes when each annotation maps to 0/1 (its derivation
/// count; truth is `value > 0`). This is the carrier of the #P-hardness
/// reduction of Proposition 4.1.1, and lets the summarizer run on
/// Boolean/UCQ lineage the way [26]'s approximate-lineage setting does.
class PolynomialExpression : public ProvenanceExpression {
 public:
  explicit PolynomialExpression(Polynomial poly) : poly_(std::move(poly)) {}

  const Polynomial& polynomial() const { return poly_; }

  // ProvenanceExpression interface -----------------------------------------
  int64_t Size() const override { return poly_.Size(); }
  void CollectAnnotations(std::vector<AnnotationId>* out) const override;
  std::unique_ptr<ProvenanceExpression> Apply(
      const Homomorphism& h) const override;
  EvalResult Evaluate(const MaterializedValuation& v) const override;
  EvalResult ProjectEvalResult(const EvalResult& base,
                               const Homomorphism& h) const override {
    (void)h;
    return base;
  }
  std::unique_ptr<ProvenanceExpression> Clone() const override {
    return std::make_unique<PolynomialExpression>(poly_);
  }
  std::string ToString(const AnnotationRegistry& registry) const override;

 private:
  Polynomial poly_;
};

}  // namespace prox

#endif  // PROX_PROVENANCE_POLYNOMIAL_EXPR_H_
