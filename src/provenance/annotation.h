#ifndef PROX_PROVENANCE_ANNOTATION_H_
#define PROX_PROVENANCE_ANNOTATION_H_

#include <cstdint>
#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace prox {

/// Interned identifier of a provenance annotation (an element of Ann, or of
/// a summary domain Ann').
using AnnotationId = uint32_t;

/// Interned identifier of an annotation domain ("user", "movie_title", ...).
using DomainId = uint16_t;

/// Sentinel: "no annotation" (used e.g. for group-less tensor terms).
inline constexpr AnnotationId kNoAnnotation =
    std::numeric_limits<AnnotationId>::max();

/// Sentinel: annotation carries no entity-table row.
inline constexpr uint32_t kNoEntity = std::numeric_limits<uint32_t>::max();

/// \brief Interning table for provenance annotations.
///
/// Every basic unit of data manipulated by an application — a user, a movie
/// title, a DB tuple variable, a transition cost variable — is registered
/// once and referred to by a dense AnnotationId thereafter, so expressions
/// store integers, valuations materialize into flat bitmaps, and
/// homomorphisms are plain id arrays.
///
/// Annotations belong to *domains* (the "input tables" of Section 3.2's
/// semantic constraints — only same-domain annotations may be grouped).
/// Summary annotations created by the summarizer live in the same id space,
/// flagged via is_summary(), so a summarized expression can be evaluated and
/// re-summarized uniformly.
///
/// **Thread-safety contract.** The registry is *not* internally
/// synchronized. Registration (AddDomain / Add / AddSummary) must happen on
/// a single thread with no concurrent readers; every const accessor (name,
/// domain, size, Find, AnnotationsInDomain, ...) is safe to call from any
/// number of threads as long as no registration is in flight. The parallel
/// candidate-scoring path in Summarizer::Run relies on this: it
/// pre-registers one scratch summary annotation per domain *before* fanning
/// pricing out over the exec pool, so workers only ever read.
class AnnotationRegistry {
 public:
  AnnotationRegistry() = default;

  /// Pre-sizes the id vectors and name indexes for a known registration
  /// count (snapshot load registers everything up front), avoiding
  /// incremental rehashing.
  void Reserve(size_t num_domains, size_t num_annotations) {
    domain_names_.reserve(num_domains);
    domain_by_name_.reserve(num_domains);
    entries_.reserve(num_annotations);
    by_name_.reserve(num_annotations);
  }

  /// Registers a domain; returns the existing id if the name is known.
  DomainId AddDomain(const std::string& name);

  /// Looks up a domain by name.
  Result<DomainId> FindDomain(const std::string& name) const;

  const std::string& domain_name(DomainId d) const {
    return domain_names_[d];
  }
  size_t num_domains() const { return domain_names_.size(); }

  /// Registers an original annotation. Names must be unique registry-wide.
  /// \param entity_row optional row index in the domain's entity table,
  ///   used by the semantics layer to look up attributes.
  Result<AnnotationId> Add(DomainId domain, const std::string& name,
                           uint32_t entity_row = kNoEntity);

  /// Registers a summary annotation (an element of Ann'). Summary names may
  /// collide with nothing; if the requested name is taken a "#k" suffix is
  /// appended to keep names unique for display.
  AnnotationId AddSummary(DomainId domain, const std::string& name);

  /// Looks an annotation up by its unique name.
  Result<AnnotationId> Find(const std::string& name) const;

  const std::string& name(AnnotationId a) const { return entries_[a].name; }
  DomainId domain(AnnotationId a) const { return entries_[a].domain; }
  uint32_t entity_row(AnnotationId a) const { return entries_[a].entity_row; }
  bool is_summary(AnnotationId a) const { return entries_[a].is_summary; }

  /// Total number of registered annotations (originals + summaries).
  size_t size() const { return entries_.size(); }

  /// All annotation ids belonging to `domain`, in registration order.
  std::vector<AnnotationId> AnnotationsInDomain(DomainId domain) const;

 private:
  struct Entry {
    std::string name;
    DomainId domain;
    uint32_t entity_row;
    bool is_summary;
  };

  std::vector<Entry> entries_;
  std::vector<std::string> domain_names_;
  std::unordered_map<std::string, AnnotationId> by_name_;
  std::unordered_map<std::string, DomainId> domain_by_name_;
};

}  // namespace prox

#endif  // PROX_PROVENANCE_ANNOTATION_H_
