#ifndef PROX_PROVENANCE_HOMOMORPHISM_H_
#define PROX_PROVENANCE_HOMOMORPHISM_H_

#include <vector>

#include "provenance/annotation.h"

namespace prox {

/// \brief A mapping h : Ann → Ann' of annotations to annotation summaries
/// (Section 3.1), extended homomorphically to whole provenance expressions
/// by the expression classes' Apply methods.
///
/// Stored as a dense id→id array defaulting to identity, so cumulative
/// summarization homomorphisms compose cheaply and apply in O(1) per factor.
class Homomorphism {
 public:
  Homomorphism() = default;

  /// Identity on the whole annotation space (lazily extended).
  static Homomorphism Identity() { return Homomorphism(); }

  /// Maps `from` to `to`. Overwrites any previous image of `from`.
  void Set(AnnotationId from, AnnotationId to);

  /// Image of `a`; identity for annotations never Set.
  AnnotationId Map(AnnotationId a) const {
    if (a == kNoAnnotation || a >= map_.size()) return a;
    return map_[a];
  }

  AnnotationId operator()(AnnotationId a) const { return Map(a); }

  /// Returns `after ∘ this` (apply this first, then `after`), the
  /// composition used to accumulate per-step mappings into the overall
  /// summarization homomorphism.
  Homomorphism ComposeAfter(const Homomorphism& after) const;

  /// True when no annotation is remapped.
  bool IsIdentity() const;

 private:
  std::vector<AnnotationId> map_;
};

}  // namespace prox

#endif  // PROX_PROVENANCE_HOMOMORPHISM_H_
