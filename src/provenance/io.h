#ifndef PROX_PROVENANCE_IO_H_
#define PROX_PROVENANCE_IO_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "provenance/expression.h"

namespace prox {

/// \brief Text serialization of provenance expressions.
///
/// A stable, ASCII, s-expression format for persisting and exchanging
/// provenance (the pretty `ToString` forms use mathematical glyphs and are
/// not meant to be parsed). Annotations are written as `domain/name`
/// pairs; parsing interns unknown domains and annotations into the target
/// registry, so expressions can be loaded into a fresh process.
///
/// Aggregate form:
///   (aggregate MAX
///     (term (mono user/U1 movie/MP) (group movie/MP) (value 3 1)
///           (guard (mono stats/S1 user/U1) 5 > 2)))
///
/// DDP form:
///   (ddp
///     (cost cost/c1 4)
///     (exec (user cost/c1) (db != db/d1 db/d2)))
std::string SerializeExpression(const ProvenanceExpression& expr,
                                const AnnotationRegistry& registry);

/// Parses a serialized expression, interning annotations into `registry`.
/// Existing annotations are reused by name; a name registered under a
/// different domain is an error.
Result<std::unique_ptr<ProvenanceExpression>> ParseExpression(
    const std::string& text, AnnotationRegistry* registry);

}  // namespace prox

#endif  // PROX_PROVENANCE_IO_H_
