#include "provenance/ddp_expr.h"

#include <algorithm>
#include <tuple>

#include "common/str_util.h"

namespace prox {

bool DdpTransition::operator==(const DdpTransition& other) const {
  return kind == other.kind && cost_var == other.cost_var &&
         db_factors == other.db_factors && nonzero == other.nonzero;
}

bool DdpTransition::operator<(const DdpTransition& other) const {
  return std::tie(kind, cost_var, db_factors, nonzero) <
         std::tie(other.kind, other.cost_var, other.db_factors, other.nonzero);
}

void DdpExpression::AddExecution(DdpExecution exec) {
  size_cache_.Invalidate();
  executions_.push_back(std::move(exec));
}

void DdpExpression::SetCost(AnnotationId cost_var, double cost) {
  costs_[cost_var] = cost;
}

double DdpExpression::CostOf(AnnotationId cost_var) const {
  auto it = costs_.find(cost_var);
  return it == costs_.end() ? 0.0 : it->second;
}

void DdpExpression::Simplify() {
  size_cache_.Invalidate();
  for (auto& exec : executions_) {
    std::sort(exec.transitions.begin(), exec.transitions.end());
  }
  std::sort(executions_.begin(), executions_.end());
  executions_.erase(std::unique(executions_.begin(), executions_.end()),
                    executions_.end());
}

int64_t DdpExpression::Size() const {
  int64_t cached = size_cache_.Lookup();
  if (cached >= 0) return cached;
  int64_t total = 0;
  for (const auto& exec : executions_) {
    for (const auto& t : exec.transitions) {
      total += (t.kind == DdpTransition::Kind::kUser) ? 1 : t.db_factors.Size();
    }
  }
  size_cache_.Store(total);
  return total;
}

void DdpExpression::CollectAnnotations(std::vector<AnnotationId>* out) const {
  for (const auto& exec : executions_) {
    for (const auto& t : exec.transitions) {
      if (t.kind == DdpTransition::Kind::kUser) {
        out->push_back(t.cost_var);
      } else {
        for (AnnotationId a : t.db_factors.factors()) out->push_back(a);
      }
    }
  }
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
}

std::unique_ptr<ProvenanceExpression> DdpExpression::Apply(
    const Homomorphism& h) const {
  auto mapped = std::make_unique<DdpExpression>();
  auto map_fn = [&h](AnnotationId a) { return h.Map(a); };
  for (const auto& exec : executions_) {
    DdpExecution ne;
    ne.transitions.reserve(exec.transitions.size());
    for (const auto& t : exec.transitions) {
      if (t.kind == DdpTransition::Kind::kUser) {
        ne.transitions.push_back(DdpTransition::User(h.Map(t.cost_var)));
      } else {
        ne.transitions.push_back(
            DdpTransition::Db(t.db_factors.Map(map_fn), t.nonzero));
      }
    }
    mapped->executions_.push_back(std::move(ne));
  }
  // Merged cost variables take the max member cost (MAX φ combiner).
  for (const auto& [var, cost] : costs_) {
    AnnotationId image = h.Map(var);
    auto it = mapped->costs_.find(image);
    if (it == mapped->costs_.end()) {
      mapped->costs_.emplace(image, cost);
    } else {
      it->second = std::max(it->second, cost);
    }
  }
  mapped->Simplify();
  return mapped;
}

EvalResult DdpExpression::Evaluate(const MaterializedValuation& v) const {
  bool any_feasible = false;
  double best_cost = 0.0;
  for (const auto& exec : executions_) {
    bool feasible = true;
    double cost = 0.0;
    for (const auto& t : exec.transitions) {
      if (t.kind == DdpTransition::Kind::kUser) {
        // A cancelled cost variable contributes 0 effort (Example 5.2.2).
        if (v.truth(t.cost_var)) cost += CostOf(t.cost_var);
      } else {
        const bool product_nonzero = t.db_factors.EvaluateBool(
            [&v](AnnotationId a) { return v.truth(a); });
        if (product_nonzero != t.nonzero) {
          feasible = false;
          break;
        }
      }
    }
    if (!feasible) continue;
    if (!any_feasible || cost < best_cost) best_cost = cost;
    any_feasible = true;
  }
  return EvalResult::CostBool(any_feasible ? best_cost : 0.0, any_feasible);
}

EvalResult DdpExpression::ProjectEvalResult(const EvalResult& base,
                                            const Homomorphism& h) const {
  (void)h;
  return base;
}

std::unique_ptr<ProvenanceExpression> DdpExpression::Clone() const {
  return std::make_unique<DdpExpression>(*this);
}

DdpTransitionView DdpExpression::ddp_transition(size_t exec, size_t t) const {
  const DdpTransition& tr = executions_[exec].transitions[t];
  DdpTransitionView view;
  view.user = tr.kind == DdpTransition::Kind::kUser;
  view.cost_var = tr.cost_var;
  view.db = tr.db_factors.factors().data();
  view.db_len = tr.db_factors.factors().size();
  view.nonzero = tr.nonzero;
  return view;
}

std::vector<std::pair<AnnotationId, double>> DdpExpression::ddp_costs() const {
  return {costs_.begin(), costs_.end()};
}

std::string DdpExpression::ToString(const AnnotationRegistry& registry) const {
  if (executions_.empty()) return "0";
  std::string out;
  for (size_t i = 0; i < executions_.size(); ++i) {
    if (i > 0) out += " + ";
    const auto& exec = executions_[i];
    for (size_t j = 0; j < exec.transitions.size(); ++j) {
      if (j > 0) out += "·";
      const auto& t = exec.transitions[j];
      if (t.kind == DdpTransition::Kind::kUser) {
        out += "⟨";
        out += registry.name(t.cost_var);
        out += ",1⟩";
      } else {
        out += "⟨0,[";
        out += t.db_factors.ToString(registry);
        out += "]";
        out += t.nonzero ? "≠0" : "=0";
        out += "⟩";
      }
    }
  }
  return out;
}

}  // namespace prox
