#include "provenance/guard.h"

#include "common/str_util.h"

namespace prox {

const char* CompareOpToString(CompareOp op) {
  switch (op) {
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
  }
  return "?";
}

bool Guard::Evaluate(const MaterializedValuation& v) const {
  const bool body_true =
      factors_.EvaluateBool([&v](AnnotationId a) { return v.truth(a); });
  const double value = body_true ? scalar_ : 0.0;
  switch (op_) {
    case CompareOp::kGt:
      return value > threshold_;
    case CompareOp::kGe:
      return value >= threshold_;
    case CompareOp::kLt:
      return value < threshold_;
    case CompareOp::kLe:
      return value <= threshold_;
    case CompareOp::kEq:
      return value == threshold_;
    case CompareOp::kNe:
      return value != threshold_;
  }
  return false;
}

std::string Guard::ToString(const AnnotationRegistry& registry) const {
  std::string out = "[";
  out += factors_.ToString(registry);
  out += "⊗";
  out += FormatDouble(scalar_, 1);
  out += " ";
  out += CompareOpToString(op_);
  out += " ";
  out += FormatDouble(threshold_, 1);
  out += "]";
  return out;
}

}  // namespace prox
