#include "provenance/homomorphism.h"

namespace prox {

void Homomorphism::Set(AnnotationId from, AnnotationId to) {
  if (from >= map_.size()) {
    size_t old = map_.size();
    map_.resize(from + 1);
    for (size_t i = old; i < map_.size(); ++i) {
      map_[i] = static_cast<AnnotationId>(i);
    }
  }
  map_[from] = to;
}

Homomorphism Homomorphism::ComposeAfter(const Homomorphism& after) const {
  Homomorphism out;
  size_t n = std::max(map_.size(), after.map_.size());
  out.map_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    out.map_[i] = after.Map(Map(static_cast<AnnotationId>(i)));
  }
  return out;
}

bool Homomorphism::IsIdentity() const {
  for (size_t i = 0; i < map_.size(); ++i) {
    if (map_[i] != static_cast<AnnotationId>(i)) return false;
  }
  return true;
}

}  // namespace prox
