#include "provenance/monomial.h"

#include <algorithm>

#include "provenance/annotation.h"

namespace prox {

Monomial::Monomial(std::initializer_list<AnnotationId> factors)
    : factors_(factors) {
  std::sort(factors_.begin(), factors_.end());
}

Monomial::Monomial(std::vector<AnnotationId> factors)
    : factors_(std::move(factors)) {
  std::sort(factors_.begin(), factors_.end());
}

void Monomial::MultiplyBy(AnnotationId a) {
  factors_.insert(std::upper_bound(factors_.begin(), factors_.end(), a), a);
}

Monomial Monomial::operator*(const Monomial& other) const {
  std::vector<AnnotationId> merged;
  merged.reserve(factors_.size() + other.factors_.size());
  std::merge(factors_.begin(), factors_.end(), other.factors_.begin(),
             other.factors_.end(), std::back_inserter(merged));
  Monomial out;
  out.factors_ = std::move(merged);
  return out;
}

bool Monomial::Contains(AnnotationId a) const {
  return std::binary_search(factors_.begin(), factors_.end(), a);
}

bool Monomial::EvaluateBool(
    const std::function<bool(AnnotationId)>& truth) const {
  for (AnnotationId a : factors_) {
    if (!truth(a)) return false;
  }
  return true;
}

Monomial Monomial::Map(
    const std::function<AnnotationId(AnnotationId)>& h) const {
  std::vector<AnnotationId> mapped;
  mapped.reserve(factors_.size());
  for (AnnotationId a : factors_) mapped.push_back(h(a));
  std::sort(mapped.begin(), mapped.end());
  Monomial out;
  out.factors_ = std::move(mapped);
  return out;
}

std::string Monomial::ToString(const AnnotationRegistry& registry) const {
  if (factors_.empty()) return "1";
  std::string out;
  for (size_t i = 0; i < factors_.size(); ++i) {
    if (i > 0) out += "·";
    out += registry.name(factors_[i]);
  }
  return out;
}

}  // namespace prox
