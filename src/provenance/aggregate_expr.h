#ifndef PROX_PROVENANCE_AGGREGATE_EXPR_H_
#define PROX_PROVENANCE_AGGREGATE_EXPR_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "provenance/agg_value.h"
#include "provenance/expression.h"
#include "provenance/facade.h"
#include "provenance/guard.h"
#include "provenance/monomial.h"

namespace prox {

/// \brief One guarded tensor of an aggregate provenance expression:
/// `monomial · [guard] ⊗ (value, count)` contributing to coordinate `group`.
///
/// For the Table 5.1 movie structure a term is
/// `(UserID·MovieTitle·MovieYear) ⊗ (Rating, 1)` with `group` = the
/// MovieTitle annotation (the coordinate of the aggregation vector the
/// expression evaluates to).
struct TensorTerm {
  Monomial monomial;
  std::optional<Guard> guard;
  AnnotationId group = kNoAnnotation;
  AggValue value;
};

/// Projects an evaluation result of the original expression into the
/// summarized coordinate space through the cumulative homomorphism `h`
/// (Example 5.2.1: merged group keys merge coordinates under `agg`).
/// Shared by the legacy and IR aggregate representations so both project
/// bit-identically.
EvalResult ProjectAggregateEvalResult(AggKind agg, const EvalResult& base,
                                      const Homomorphism& h);

/// \brief The ⊕-sum of guarded tensors over a values monoid — the
/// aggregate provenance structure of Section 2.2 ([7, 6]) shared by the
/// MovieLens and Wikipedia datasets.
///
/// The expression is kept in canonical simplified form: terms sorted by
/// (group, monomial, guard) with equal-keyed tensors merged under the
/// congruence `k⊗v₁ ⊕ k⊗v₂ ≡ k⊗(v₁ agg v₂)` (Example 3.1.1's step from
/// `U₁⊗(3,1) ⊕ U₂⊗(5,1)` to `Female⊗(5,2)`).
class AggregateExpression : public ProvenanceExpression,
                            public AggregateFacade {
 public:
  explicit AggregateExpression(AggKind agg) : agg_(agg) {}

  AggKind agg() const { return agg_; }
  const std::vector<TensorTerm>& terms() const { return terms_; }
  size_t num_terms() const { return terms_.size(); }

  /// Appends a term; call Simplify() after the last AddTerm (builders may
  /// batch additions).
  void AddTerm(TensorTerm term);

  /// Pre-reserves capacity for `extra` upcoming AddTerm calls (batched
  /// ingest appends grow once instead of reallocating per term).
  void ReserveAdditionalTerms(size_t extra) {
    terms_.reserve(terms_.size() + extra);
  }

  /// Re-canonicalizes: sorts terms and merges equal-keyed tensors.
  void Simplify();

  /// Distinct group keys, sorted (the coordinates of evaluation vectors).
  std::vector<AnnotationId> Groups() const;

  // ProvenanceExpression interface -----------------------------------------
  int64_t Size() const override;
  void CollectAnnotations(std::vector<AnnotationId>* out) const override;
  std::unique_ptr<ProvenanceExpression> Apply(
      const Homomorphism& h) const override;
  EvalResult Evaluate(const MaterializedValuation& v) const override;
  EvalResult ProjectEvalResult(const EvalResult& base,
                               const Homomorphism& h) const override;
  std::unique_ptr<ProvenanceExpression> Clone() const override;
  std::string ToString(const AnnotationRegistry& registry) const override;
  const AggregateFacade* AsAggregate() const override { return this; }

  // AggregateFacade interface ----------------------------------------------
  AggKind agg_kind() const override { return agg_; }
  size_t agg_num_terms() const override { return terms_.size(); }
  AggTermView agg_term(size_t i) const override;

 private:
  AggKind agg_;
  std::vector<TensorTerm> terms_;
  SizeCache size_cache_;
};

}  // namespace prox

#endif  // PROX_PROVENANCE_AGGREGATE_EXPR_H_
