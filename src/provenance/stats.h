#ifndef PROX_PROVENANCE_STATS_H_
#define PROX_PROVENANCE_STATS_H_

#include <map>
#include <string>

#include "provenance/expression.h"

namespace prox {

/// \brief Size and composition statistics of a provenance expression —
/// what the PROX UI surfaces as "Provenance Size: 126" plus a per-domain
/// breakdown (how many users / movies / pages the expression mentions).
struct ExpressionStats {
  int64_t size = 0;                 ///< annotation occurrences
  size_t distinct_annotations = 0;  ///< distinct annotations
  size_t summary_annotations = 0;   ///< of which are summaries
  /// Distinct annotations per domain name.
  std::map<std::string, size_t> per_domain;

  std::string ToString() const;
};

/// Computes statistics for `expr` against `registry`.
ExpressionStats ComputeStats(const ProvenanceExpression& expr,
                             const AnnotationRegistry& registry);

}  // namespace prox

#endif  // PROX_PROVENANCE_STATS_H_
