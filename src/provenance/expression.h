#ifndef PROX_PROVENANCE_EXPRESSION_H_
#define PROX_PROVENANCE_EXPRESSION_H_

#include <memory>
#include <string>
#include <vector>

#include "provenance/annotation.h"
#include "provenance/eval_result.h"
#include "provenance/homomorphism.h"
#include "provenance/valuation.h"

namespace prox {

/// \brief Abstract provenance expression — the object summarization acts on.
///
/// The summarizer (Algorithm 1), the baselines and the PROX services are
/// written against this interface so the aggregate (movie / Wikipedia)
/// structure and the DDP structure plug in interchangeably. Implementations
/// must keep themselves *simplified* (canonical under the semiring axioms
/// and tensor congruences) after Apply, since Size() feeds the candidate
/// score directly.
class ProvenanceExpression {
 public:
  virtual ~ProvenanceExpression() = default;

  /// Number of annotation occurrences, with repetitions (Section 3.2's
  /// provenance-size measure).
  virtual int64_t Size() const = 0;

  /// Appends every distinct annotation appearing in the expression
  /// (including inside guards and group keys) to `out`, sorted and unique.
  virtual void CollectAnnotations(std::vector<AnnotationId>* out) const = 0;

  /// Applies a homomorphism and simplifies. The receiver is unchanged.
  virtual std::unique_ptr<ProvenanceExpression> Apply(
      const Homomorphism& h) const = 0;

  /// Evaluates under a (materialized) truth valuation.
  virtual EvalResult Evaluate(const MaterializedValuation& v) const = 0;

  /// Projects an evaluation result of the *original* expression into this
  /// expression's coordinate space through the cumulative homomorphism `h`
  /// (Example 5.2.1: merged group keys merge coordinates under the
  /// aggregation function). Identity for non-vector results.
  virtual EvalResult ProjectEvalResult(const EvalResult& base,
                                       const Homomorphism& h) const = 0;

  virtual std::unique_ptr<ProvenanceExpression> Clone() const = 0;

  /// Human-readable polynomial form as printed by the PROX expression view.
  virtual std::string ToString(const AnnotationRegistry& registry) const = 0;
};

}  // namespace prox

#endif  // PROX_PROVENANCE_EXPRESSION_H_
