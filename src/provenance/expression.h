#ifndef PROX_PROVENANCE_EXPRESSION_H_
#define PROX_PROVENANCE_EXPRESSION_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "provenance/annotation.h"
#include "provenance/eval_result.h"
#include "provenance/homomorphism.h"
#include "provenance/valuation.h"

namespace prox {

class AggregateFacade;
class DdpFacade;

namespace kernels {
class BatchEvalFacade;
}

/// Bumps the prox_ir_size_cache_hits_total counter: a Size() call served
/// from a cached value (the IR header field, or the legacy memo) instead of
/// a full traversal. Implemented in expression.cc so the metric literal has
/// one home; both the legacy classes and prox::ir call it.
void CountSizeCacheHit();

/// \brief A copyable, thread-safe memo for ProvenanceExpression::Size().
///
/// Size() is const and is called concurrently on the shared `current`
/// expression while candidate scoring fans out over the exec pool, so the
/// memo must be an atomic; -1 means "not computed". Copying an expression
/// copies the cached value (sizes are content-derived, so a copy's size is
/// the original's).
class SizeCache {
 public:
  SizeCache() = default;
  SizeCache(const SizeCache& other)
      : value_(other.value_.load(std::memory_order_relaxed)) {}
  SizeCache& operator=(const SizeCache& other) {
    value_.store(other.value_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
    return *this;
  }

  /// Cached value, or -1. Counts a cache hit when present.
  int64_t Lookup() const {
    int64_t v = value_.load(std::memory_order_relaxed);
    if (v >= 0) CountSizeCacheHit();
    return v;
  }
  void Store(int64_t v) const {
    value_.store(v, std::memory_order_relaxed);
  }
  void Invalidate() { value_.store(-1, std::memory_order_relaxed); }

 private:
  mutable std::atomic<int64_t> value_{-1};
};

/// \brief Abstract provenance expression — the object summarization acts on.
///
/// The summarizer (Algorithm 1), the baselines and the PROX services are
/// written against this interface so the aggregate (movie / Wikipedia)
/// structure and the DDP structure plug in interchangeably. Implementations
/// must keep themselves *simplified* (canonical under the semiring axioms
/// and tensor congruences) after Apply, since Size() feeds the candidate
/// score directly.
class ProvenanceExpression {
 public:
  virtual ~ProvenanceExpression() = default;

  /// Number of annotation occurrences, with repetitions (Section 3.2's
  /// provenance-size measure).
  virtual int64_t Size() const = 0;

  /// Appends every distinct annotation appearing in the expression
  /// (including inside guards and group keys) to `out`, sorted and unique.
  virtual void CollectAnnotations(std::vector<AnnotationId>* out) const = 0;

  /// Applies a homomorphism and simplifies. The receiver is unchanged.
  virtual std::unique_ptr<ProvenanceExpression> Apply(
      const Homomorphism& h) const = 0;

  /// Evaluates under a (materialized) truth valuation.
  virtual EvalResult Evaluate(const MaterializedValuation& v) const = 0;

  /// Projects an evaluation result of the *original* expression into this
  /// expression's coordinate space through the cumulative homomorphism `h`
  /// (Example 5.2.1: merged group keys merge coordinates under the
  /// aggregation function). Identity for non-vector results.
  virtual EvalResult ProjectEvalResult(const EvalResult& base,
                                       const Homomorphism& h) const = 0;

  virtual std::unique_ptr<ProvenanceExpression> Clone() const = 0;

  /// Human-readable polynomial form as printed by the PROX expression view.
  virtual std::string ToString(const AnnotationRegistry& registry) const = 0;

  /// Structural facades (provenance/facade.h): non-null when the expression
  /// is an aggregate / DDP structure, regardless of representation (legacy
  /// tree or prox::ir). Replaces dynamic_cast to concrete classes in
  /// consumers, which would miss the IR representations.
  virtual const AggregateFacade* AsAggregate() const { return nullptr; }
  virtual const DdpFacade* AsDdp() const { return nullptr; }

  /// Batch-evaluation capability (kernels/batch_eval.h): non-null when the
  /// expression can lower itself into a flat BatchProgram for the SIMD
  /// batch kernels. The prox::ir classes implement it; the oracles gate
  /// their batched paths on it and fall back to per-valuation Evaluate().
  virtual const kernels::BatchEvalFacade* AsBatchEval() const {
    return nullptr;
  }
};

}  // namespace prox

#endif  // PROX_PROVENANCE_EXPRESSION_H_
