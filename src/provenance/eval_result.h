#ifndef PROX_PROVENANCE_EVAL_RESULT_H_
#define PROX_PROVENANCE_EVAL_RESULT_H_

#include <string>
#include <utility>
#include <vector>

#include "provenance/annotation.h"

namespace prox {

class AnnotationRegistry;

/// \brief The value of a provenance expression under a truth valuation.
///
/// Three shapes occur in the thesis:
///  * a single aggregated value (Example 2.3.1),
///  * an aggregation *vector* keyed by group annotation — one coordinate per
///    movie / Wikipedia page (Examples 4.2.3 and 5.2.1),
///  * a DDP pair ⟨cost, feasible⟩ (Example 5.2.2).
class EvalResult {
 public:
  enum class Kind { kScalar, kVector, kCostBool };

  /// One coordinate of an aggregation vector. `count` carries the number
  /// of contributors behind the value (populated for AVG aggregation,
  /// where projections must re-weight); it is auxiliary and excluded from
  /// equality.
  struct Coord {
    AnnotationId group;
    double value;
    double count = 0.0;
    bool operator==(const Coord& other) const {
      return group == other.group && value == other.value;
    }
  };

  static EvalResult Scalar(double value);
  /// Coordinates are sorted by group key internally.
  static EvalResult Vector(std::vector<Coord> coords);
  static EvalResult CostBool(double cost, bool feasible);

  Kind kind() const { return kind_; }

  double scalar() const { return scalar_; }
  const std::vector<Coord>& coords() const { return coords_; }
  double cost() const { return scalar_; }
  bool feasible() const { return feasible_; }

  /// Value of coordinate `group`, or 0 when absent (absent coordinates mean
  /// no tensor contributed — the thesis treats them as 0, cf. Example 5.2.1).
  double CoordValue(AnnotationId group) const;

  /// Renders e.g. "(Adele: 0, CelineDion: 1)" / "3.0" / "<0, true>".
  std::string ToString(const AnnotationRegistry& registry) const;

  bool operator==(const EvalResult& other) const;

 private:
  Kind kind_ = Kind::kScalar;
  double scalar_ = 0.0;                // scalar value, or DDP cost
  bool feasible_ = false;              // DDP feasibility bit
  std::vector<Coord> coords_;          // sorted by group
};

}  // namespace prox

#endif  // PROX_PROVENANCE_EVAL_RESULT_H_
