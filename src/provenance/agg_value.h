#ifndef PROX_PROVENANCE_AGG_VALUE_H_
#define PROX_PROVENANCE_AGG_VALUE_H_

#include <string>

namespace prox {

/// Aggregation function applied over tensor values (the monoid M of
/// Section 2.2). The thesis evaluates MAX and SUM ("alternatively, we
/// could use sum or any other aggregation function"); MIN, COUNT and AVG
/// complete the natural family. For kAvg the tensor `value` field carries
/// the *sum* of the contributions and `count` the contributor count — the
/// (sum, count) pair monoid — and evaluation divides.
enum class AggKind { kMax, kMin, kSum, kCount, kAvg };

const char* AggKindToString(AggKind kind);

/// \brief The monoid value carried by a tensor: an aggregated value plus a
/// contributor count, e.g. `(5, 2)` = "MAX rating 5 collected from 2 users"
/// (Example 3.1.1).
struct AggValue {
  double value = 0.0;
  double count = 0.0;

  bool operator==(const AggValue& other) const {
    return value == other.value && count == other.count;
  }
};

/// Combines two tensor values under the congruence
/// `k ⊗ v₁ ⊕ k ⊗ v₂ ≡ k ⊗ (v₁ agg v₂)` used when a homomorphism makes two
/// tensors share a monomial. Counts always add.
AggValue MergeAggValues(AggKind kind, const AggValue& a, const AggValue& b);

/// Folds a raw contribution `v` into a running aggregate `acc` during
/// evaluation. `first` distinguishes the empty accumulator (important for
/// MIN, which has no finite identity over arbitrary reals).
double FoldAggregate(AggKind kind, double acc, const AggValue& v, bool first);

}  // namespace prox

#endif  // PROX_PROVENANCE_AGG_VALUE_H_
