#ifndef PROX_PROVENANCE_FACADE_H_
#define PROX_PROVENANCE_FACADE_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "provenance/agg_value.h"
#include "provenance/annotation.h"
#include "provenance/guard.h"

namespace prox {

/// \brief Structural read access to aggregate / DDP expressions without
/// committing to a storage layout.
///
/// Two representations implement these facades: the legacy pointer-tree
/// classes (AggregateExpression, DdpExpression) and the flat arena-backed
/// prox::ir classes (docs/IR.md). Consumers that used to dynamic_cast to a
/// concrete class — the incremental scorer, the group reporter, the
/// selection service, the io writer — go through `AsAggregate()` /
/// `AsDdp()` instead, so they work identically on both representations.
///
/// Views are *non-owning and transient*: the spans point into the
/// expression's storage (a term's factor vector, or the IR factor arena)
/// and are invalidated by any mutation of the expression or, for IR
/// expressions, by interning new monomials into the shared TermPool.
/// Consume a view before the next mutation; do not store it.

/// One aggregate tensor term `monomial · [guard] ⊗ (value, count)`.
struct AggTermView {
  const AnnotationId* mono = nullptr;
  size_t mono_len = 0;
  AnnotationId group = kNoAnnotation;
  AggValue value;
  bool has_guard = false;
  const AnnotationId* guard_mono = nullptr;
  size_t guard_len = 0;
  double guard_scalar = 0.0;
  CompareOp guard_op = CompareOp::kGt;
  double guard_threshold = 0.0;
};

class AggregateFacade {
 public:
  virtual ~AggregateFacade() = default;

  virtual AggKind agg_kind() const = 0;
  virtual size_t agg_num_terms() const = 0;
  /// Term `i` in canonical (group, monomial, guard) order.
  virtual AggTermView agg_term(size_t i) const = 0;
};

/// One DDP transition: a user effort ⟨c,1⟩ or a DB guard ⟨0,[m]≠0⟩/⟨0,[m]=0⟩.
struct DdpTransitionView {
  bool user = true;
  AnnotationId cost_var = kNoAnnotation;  // user transitions
  const AnnotationId* db = nullptr;       // db transitions
  size_t db_len = 0;
  bool nonzero = true;
};

class DdpFacade {
 public:
  virtual ~DdpFacade() = default;

  virtual size_t ddp_num_executions() const = 0;
  virtual size_t ddp_num_transitions(size_t exec) const = 0;
  virtual DdpTransitionView ddp_transition(size_t exec, size_t t) const = 0;
  /// The cost table, sorted by cost variable.
  virtual std::vector<std::pair<AnnotationId, double>> ddp_costs() const = 0;
};

/// Rebuilds an owning Monomial from a view span (the span is already in the
/// canonical sorted order, so this is a plain copy).
inline Monomial MonomialFromSpan(const AnnotationId* data, size_t len) {
  return Monomial(std::vector<AnnotationId>(data, data + len));
}

inline Guard GuardFromView(const AggTermView& t) {
  return Guard(MonomialFromSpan(t.guard_mono, t.guard_len), t.guard_scalar,
               t.guard_op, t.guard_threshold);
}

}  // namespace prox

#endif  // PROX_PROVENANCE_FACADE_H_
