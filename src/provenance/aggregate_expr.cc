#include "provenance/aggregate_expr.h"

#include <algorithm>
#include <map>

#include "common/str_util.h"

namespace prox {

namespace {

/// Canonical ordering key: group, then monomial, then guard.
bool TermLess(const TensorTerm& a, const TensorTerm& b) {
  if (a.group != b.group) return a.group < b.group;
  if (a.monomial != b.monomial) return a.monomial < b.monomial;
  const bool ag = a.guard.has_value();
  const bool bg = b.guard.has_value();
  if (ag != bg) return bg;  // guard-less terms first
  if (!ag) return false;
  return *a.guard < *b.guard;
}

bool TermKeyEqual(const TensorTerm& a, const TensorTerm& b) {
  return a.group == b.group && a.monomial == b.monomial && a.guard == b.guard;
}

}  // namespace

void AggregateExpression::AddTerm(TensorTerm term) {
  size_cache_.Invalidate();
  terms_.push_back(std::move(term));
}

void AggregateExpression::Simplify() {
  size_cache_.Invalidate();
  std::sort(terms_.begin(), terms_.end(), TermLess);
  std::vector<TensorTerm> merged;
  merged.reserve(terms_.size());
  for (auto& term : terms_) {
    if (!merged.empty() && TermKeyEqual(merged.back(), term)) {
      merged.back().value = MergeAggValues(agg_, merged.back().value,
                                           term.value);
    } else {
      merged.push_back(std::move(term));
    }
  }
  terms_ = std::move(merged);
}

std::vector<AnnotationId> AggregateExpression::Groups() const {
  std::vector<AnnotationId> groups;
  for (const auto& t : terms_) groups.push_back(t.group);
  std::sort(groups.begin(), groups.end());
  groups.erase(std::unique(groups.begin(), groups.end()), groups.end());
  return groups;
}

int64_t AggregateExpression::Size() const {
  int64_t cached = size_cache_.Lookup();
  if (cached >= 0) return cached;
  int64_t total = 0;
  for (const auto& t : terms_) {
    total += t.monomial.Size();
    if (t.guard) total += t.guard->Size();
  }
  size_cache_.Store(total);
  return total;
}

void AggregateExpression::CollectAnnotations(
    std::vector<AnnotationId>* out) const {
  for (const auto& t : terms_) {
    for (AnnotationId a : t.monomial.factors()) out->push_back(a);
    if (t.guard) {
      for (AnnotationId a : t.guard->factors().factors()) out->push_back(a);
    }
    if (t.group != kNoAnnotation) out->push_back(t.group);
  }
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
}

std::unique_ptr<ProvenanceExpression> AggregateExpression::Apply(
    const Homomorphism& h) const {
  auto mapped = std::make_unique<AggregateExpression>(agg_);
  auto map_fn = [&h](AnnotationId a) { return h.Map(a); };
  mapped->terms_.reserve(terms_.size());
  for (const auto& t : terms_) {
    TensorTerm nt;
    nt.monomial = t.monomial.Map(map_fn);
    if (t.guard) nt.guard = t.guard->Map(map_fn);
    nt.group = h.Map(t.group);
    nt.value = t.value;
    mapped->terms_.push_back(std::move(nt));
  }
  mapped->Simplify();
  return mapped;
}

EvalResult AggregateExpression::Evaluate(
    const MaterializedValuation& v) const {
  // Accumulate per group; groups with no surviving tensor evaluate to 0
  // (cf. the zeroed coordinates in Example 5.2.1).
  struct Slot {
    double value = 0.0;
    double count = 0.0;
    bool seen = false;
  };
  std::map<AnnotationId, Slot> acc;
  for (const auto& t : terms_) acc.emplace(t.group, Slot{});
  for (const auto& t : terms_) {
    const bool alive =
        t.monomial.EvaluateBool([&v](AnnotationId a) { return v.truth(a); }) &&
        (!t.guard || t.guard->Evaluate(v));
    if (!alive) continue;
    auto& slot = acc[t.group];
    slot.value = FoldAggregate(agg_, slot.value, t.value, !slot.seen);
    slot.count += t.value.count;
    slot.seen = true;
  }
  // AVG: the folded value is the contribution sum; divide by the counts.
  auto finalize = [this](const Slot& slot) {
    if (agg_ != AggKind::kAvg) return slot.value;
    return slot.count > 0 ? slot.value / slot.count : 0.0;
  };
  if (acc.size() == 1 && acc.begin()->first == kNoAnnotation) {
    return EvalResult::Scalar(finalize(acc.begin()->second));
  }
  std::vector<EvalResult::Coord> coords;
  coords.reserve(acc.size());
  for (const auto& [group, slot] : acc) {
    coords.push_back(
        EvalResult::Coord{group, finalize(slot), slot.count});
  }
  return EvalResult::Vector(std::move(coords));
}

EvalResult ProjectAggregateEvalResult(AggKind agg, const EvalResult& base,
                                      const Homomorphism& h) {
  if (base.kind() != EvalResult::Kind::kVector) return base;
  struct Slot {
    double value = 0.0;
    double count = 0.0;
    bool seen = false;
  };
  std::map<AnnotationId, Slot> acc;
  for (const auto& c : base.coords()) {
    AnnotationId key = h.Map(c.group);
    auto& slot = acc[key];
    if (agg == AggKind::kAvg) {
      // Coordinates carry averages; merge as count-weighted sums.
      slot.value += c.value * c.count;
      slot.count += c.count;
    } else {
      AggValue v{c.value, 0.0};
      if (agg == AggKind::kCount) v.count = c.value;
      slot.value = FoldAggregate(agg, slot.value, v, !slot.seen);
    }
    slot.seen = true;
  }
  std::vector<EvalResult::Coord> coords;
  coords.reserve(acc.size());
  for (const auto& [group, slot] : acc) {
    double value = slot.value;
    if (agg == AggKind::kAvg) {
      value = slot.count > 0 ? slot.value / slot.count : 0.0;
    }
    coords.push_back(EvalResult::Coord{group, value, slot.count});
  }
  if (coords.size() == 1 && coords[0].group == kNoAnnotation) {
    return EvalResult::Scalar(coords[0].value);
  }
  return EvalResult::Vector(std::move(coords));
}

EvalResult AggregateExpression::ProjectEvalResult(
    const EvalResult& base, const Homomorphism& h) const {
  return ProjectAggregateEvalResult(agg_, base, h);
}

AggTermView AggregateExpression::agg_term(size_t i) const {
  const TensorTerm& t = terms_[i];
  AggTermView view;
  view.mono = t.monomial.factors().data();
  view.mono_len = t.monomial.factors().size();
  view.group = t.group;
  view.value = t.value;
  if (t.guard) {
    view.has_guard = true;
    view.guard_mono = t.guard->factors().factors().data();
    view.guard_len = t.guard->factors().factors().size();
    view.guard_scalar = t.guard->scalar();
    view.guard_op = t.guard->op();
    view.guard_threshold = t.guard->threshold();
  }
  return view;
}

std::unique_ptr<ProvenanceExpression> AggregateExpression::Clone() const {
  return std::make_unique<AggregateExpression>(*this);
}

std::string AggregateExpression::ToString(
    const AnnotationRegistry& registry) const {
  if (terms_.empty()) return "0";
  std::string out;
  for (size_t i = 0; i < terms_.size(); ++i) {
    if (i > 0) out += " ⊕ ";
    const auto& t = terms_[i];
    out += t.monomial.ToString(registry);
    if (t.guard) {
      out += "·";
      out += t.guard->ToString(registry);
    }
    out += " ⊗ (";
    out += FormatDouble(t.value.value, 1);
    out += ", ";
    out += FormatDouble(t.value.count, 0);
    out += ")";
  }
  return out;
}

}  // namespace prox
