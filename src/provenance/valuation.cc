#include "provenance/valuation.h"

#include <algorithm>

namespace prox {

Valuation::Valuation(std::vector<AnnotationId> false_annotations,
                     std::string label, double weight)
    : false_set_(std::move(false_annotations)),
      label_(std::move(label)),
      weight_(weight) {
  std::sort(false_set_.begin(), false_set_.end());
  false_set_.erase(std::unique(false_set_.begin(), false_set_.end()),
                   false_set_.end());
}

}  // namespace prox
