#ifndef PROX_PROVENANCE_GUARD_H_
#define PROX_PROVENANCE_GUARD_H_

#include <compare>
#include <string>

#include "provenance/monomial.h"
#include "provenance/valuation.h"

namespace prox {

/// Comparison operator of a guard token.
enum class CompareOp { kGt, kGe, kLt, kLe, kEq, kNe };

const char* CompareOpToString(CompareOp op);

/// \brief A comparison guard `[m ⊗ s OP t]` — the (in)equality tokens that
/// [7, 17] add to the semiring to capture nested aggregates and negation
/// (Section 2.2, Example 2.2.1).
///
/// Under a truth valuation the tensor body `m ⊗ s` evaluates to `s` when
/// every factor of the monomial `m` is true and to 0 otherwise; the guard
/// then contributes 1 (comparison satisfied) or 0 to the enclosing product.
class Guard {
 public:
  Guard() = default;
  Guard(Monomial factors, double scalar, CompareOp op, double threshold)
      : factors_(std::move(factors)),
        scalar_(scalar),
        op_(op),
        threshold_(threshold) {}

  const Monomial& factors() const { return factors_; }
  double scalar() const { return scalar_; }
  CompareOp op() const { return op_; }
  double threshold() const { return threshold_; }

  /// Number of annotation occurrences inside the guard.
  int64_t Size() const { return factors_.Size(); }

  /// Truth of the guard under a materialized valuation.
  bool Evaluate(const MaterializedValuation& v) const;

  /// Applies an annotation renaming to the guard body.
  Guard Map(const std::function<AnnotationId(AnnotationId)>& h) const {
    return Guard(factors_.Map(h), scalar_, op_, threshold_);
  }

  /// Renders e.g. "[S1·U1⊗5 > 2]".
  std::string ToString(const AnnotationRegistry& registry) const;

  auto operator<=>(const Guard& other) const = default;

 private:
  Monomial factors_;
  double scalar_ = 0.0;
  CompareOp op_ = CompareOp::kGt;
  double threshold_ = 0.0;
};

}  // namespace prox

#endif  // PROX_PROVENANCE_GUARD_H_
