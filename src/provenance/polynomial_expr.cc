#include "provenance/polynomial_expr.h"

namespace prox {

void PolynomialExpression::CollectAnnotations(
    std::vector<AnnotationId>* out) const {
  for (Polynomial::Var v : poly_.Variables()) out->push_back(v);
}

std::unique_ptr<ProvenanceExpression> PolynomialExpression::Apply(
    const Homomorphism& h) const {
  return std::make_unique<PolynomialExpression>(
      poly_.MapVars([&h](Polynomial::Var v) { return h.Map(v); }));
}

EvalResult PolynomialExpression::Evaluate(
    const MaterializedValuation& v) const {
  return EvalResult::Scalar(static_cast<double>(
      poly_.EvaluateBool([&v](Polynomial::Var a) { return v.truth(a); })));
}

std::string PolynomialExpression::ToString(
    const AnnotationRegistry& registry) const {
  return poly_.ToString(
      [&registry](Polynomial::Var v) { return registry.name(v); });
}

}  // namespace prox
