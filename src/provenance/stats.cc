#include "provenance/stats.h"

namespace prox {

ExpressionStats ComputeStats(const ProvenanceExpression& expr,
                             const AnnotationRegistry& registry) {
  ExpressionStats stats;
  stats.size = expr.Size();
  std::vector<AnnotationId> anns;
  expr.CollectAnnotations(&anns);
  stats.distinct_annotations = anns.size();
  for (AnnotationId a : anns) {
    if (registry.is_summary(a)) ++stats.summary_annotations;
    ++stats.per_domain[registry.domain_name(registry.domain(a))];
  }
  return stats;
}

std::string ExpressionStats::ToString() const {
  std::string out = "size " + std::to_string(size) + ", " +
                    std::to_string(distinct_annotations) + " annotations (" +
                    std::to_string(summary_annotations) + " summaries);";
  for (const auto& [domain, count] : per_domain) {
    out += " " + domain + ":" + std::to_string(count);
  }
  return out;
}

}  // namespace prox
