#ifndef PROX_PROVENANCE_DDP_EXPR_H_
#define PROX_PROVENANCE_DDP_EXPR_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "provenance/expression.h"
#include "provenance/facade.h"
#include "provenance/monomial.h"

namespace prox {

/// \brief One transition of a data-dependent process execution
/// (Example 5.2.2, after [17]).
///
/// Either a user-dependent transition `⟨c_k, 1⟩` carrying the cost variable
/// `c_k` (the user's effort), or a database-dependent transition
/// `⟨0, [d_i·d_j] ≠ 0⟩` / `⟨0, [d_i·d_j] = 0⟩` guarded by a product of DB
/// tuple variables.
struct DdpTransition {
  enum class Kind { kUser, kDb };

  Kind kind = Kind::kUser;
  AnnotationId cost_var = kNoAnnotation;  // kUser only
  Monomial db_factors;                    // kDb only
  bool nonzero = true;                    // kDb: true = "≠ 0", false = "= 0"

  static DdpTransition User(AnnotationId cost_var) {
    DdpTransition t;
    t.kind = Kind::kUser;
    t.cost_var = cost_var;
    return t;
  }
  static DdpTransition Db(Monomial factors, bool nonzero) {
    DdpTransition t;
    t.kind = Kind::kDb;
    t.db_factors = std::move(factors);
    t.nonzero = nonzero;
    return t;
  }

  bool operator==(const DdpTransition& other) const;
  bool operator<(const DdpTransition& other) const;
};

/// An execution: a ·-product of transitions.
struct DdpExecution {
  std::vector<DdpTransition> transitions;

  bool operator==(const DdpExecution& other) const {
    return transitions == other.transitions;
  }
  bool operator<(const DdpExecution& other) const {
    return transitions < other.transitions;
  }
};

/// \brief DDP provenance: a +-sum of executions over the tropical × boolean
/// semiring pair of [17].
///
/// Evaluation under a valuation (which assigns booleans to DB variables and
/// keep/cancel bits to cost variables) yields `⟨C, true⟩` where C is the
/// minimum total user effort over executions whose DB guards hold, or
/// `⟨0, false⟩` when no execution is feasible.
///
/// Simplification dedupes executions that become identical after a
/// homomorphism (Example 5.2.2's collapse to a single execution) — sound
/// because the tropical/existential interpretation is additively idempotent.
class DdpExpression : public ProvenanceExpression, public DdpFacade {
 public:
  DdpExpression() = default;

  void AddExecution(DdpExecution exec);

  /// Associates a cost with a cost variable. When a homomorphism merges
  /// cost variables, the summary variable's cost is the max of its members'
  /// costs (consistent with the MAX φ combiner of Table 5.1).
  void SetCost(AnnotationId cost_var, double cost);
  double CostOf(AnnotationId cost_var) const;

  const std::vector<DdpExecution>& executions() const { return executions_; }
  const std::map<AnnotationId, double>& costs() const { return costs_; }

  /// Sorts transitions within executions, sorts and dedupes executions.
  void Simplify();

  // ProvenanceExpression interface -----------------------------------------
  int64_t Size() const override;
  void CollectAnnotations(std::vector<AnnotationId>* out) const override;
  std::unique_ptr<ProvenanceExpression> Apply(
      const Homomorphism& h) const override;
  EvalResult Evaluate(const MaterializedValuation& v) const override;
  EvalResult ProjectEvalResult(const EvalResult& base,
                               const Homomorphism& h) const override;
  std::unique_ptr<ProvenanceExpression> Clone() const override;
  std::string ToString(const AnnotationRegistry& registry) const override;
  const DdpFacade* AsDdp() const override { return this; }

  // DdpFacade interface ----------------------------------------------------
  size_t ddp_num_executions() const override { return executions_.size(); }
  size_t ddp_num_transitions(size_t exec) const override {
    return executions_[exec].transitions.size();
  }
  DdpTransitionView ddp_transition(size_t exec, size_t t) const override;
  std::vector<std::pair<AnnotationId, double>> ddp_costs() const override;

 private:
  std::vector<DdpExecution> executions_;
  std::map<AnnotationId, double> costs_;
  SizeCache size_cache_;
};

}  // namespace prox

#endif  // PROX_PROVENANCE_DDP_EXPR_H_
