#ifndef PROX_PROVENANCE_VALUATION_H_
#define PROX_PROVENANCE_VALUATION_H_

#include <algorithm>
#include <string>
#include <vector>

#include "provenance/annotation.h"

namespace prox {

/// \brief A truth valuation V : Ann → {true, false} (Section 2.3).
///
/// Stored sparsely as the sorted set of annotations assigned *false*; all
/// other annotations default to true. This matches the valuation classes of
/// the evaluation ("Cancel Single Annotation", "Cancel Single Attribute")
/// which cancel a small set and keep the rest.
class Valuation {
 public:
  Valuation() = default;

  /// \param false_annotations annotations assigned false (deduplicated and
  ///   sorted internally)
  /// \param label human-readable description, e.g. "cancel UID12" — surfaced
  ///   by the PROX evaluator service
  /// \param weight the w(v) weighting of Section 3.2 (default uniform)
  explicit Valuation(std::vector<AnnotationId> false_annotations,
                     std::string label = "", double weight = 1.0);

  /// The all-true valuation.
  static Valuation AllTrue(std::string label = "all-true") {
    return Valuation({}, std::move(label));
  }

  bool IsFalse(AnnotationId a) const {
    return std::binary_search(false_set_.begin(), false_set_.end(), a);
  }
  bool IsTrue(AnnotationId a) const { return !IsFalse(a); }

  const std::vector<AnnotationId>& false_set() const { return false_set_; }
  const std::string& label() const { return label_; }
  double weight() const { return weight_; }

  bool operator==(const Valuation& other) const {
    return false_set_ == other.false_set_;
  }

 private:
  std::vector<AnnotationId> false_set_;  // sorted, unique
  std::string label_;
  double weight_ = 1.0;
};

/// \brief A valuation materialized into a flat truth bitmap over the whole
/// annotation id space, for O(1) lookup during expression evaluation.
///
/// Handles both base valuations over Ann and the transformed valuations
/// v^{h,φ} over Ann' (the summarizer writes combined truth values for
/// summary annotations directly into the bitmap).
class MaterializedValuation {
 public:
  /// All annotations in [0, num_annotations) start true.
  explicit MaterializedValuation(size_t num_annotations)
      : truth_(num_annotations, 1) {}

  /// Materializes a sparse valuation.
  MaterializedValuation(const Valuation& v, size_t num_annotations)
      : truth_(num_annotations, 1) {
    for (AnnotationId a : v.false_set()) {
      if (a < truth_.size()) truth_[a] = 0;
    }
  }

  /// Copies `base` and extends the bitmap to `num_annotations`, with the
  /// new ids (annotations registered after `base` was materialized) true.
  /// Equivalent to re-materializing base's sparse valuation at the larger
  /// size, without re-scanning its false set.
  MaterializedValuation(const MaterializedValuation& base,
                        size_t num_annotations)
      : truth_(base.truth_) {
    if (truth_.size() < num_annotations) truth_.resize(num_annotations, 1);
  }

  void Set(AnnotationId a, bool value) { truth_[a] = value ? 1 : 0; }

  bool truth(AnnotationId a) const {
    // Ids beyond the bitmap (annotations registered after materialization)
    // default to true, mirroring Valuation's default.
    return a >= truth_.size() || truth_[a] != 0;
  }

  size_t size() const { return truth_.size(); }

 private:
  std::vector<uint8_t> truth_;
};

}  // namespace prox

#endif  // PROX_PROVENANCE_VALUATION_H_
