#include "ddp/machine.h"

#include <functional>
#include <string>

namespace prox {

Result<std::unique_ptr<DdpExpression>> DdpMachine::CompileProvenance(
    int max_transitions, size_t max_executions) const {
  auto expr = std::make_unique<DdpExpression>();
  for (const auto& [var, cost] : costs_) expr->SetCost(var, cost);

  // Adjacency index.
  std::vector<std::vector<const Edge*>> out_edges(num_states_);
  for (const Edge& e : edges_) {
    if (e.from < 0 || e.from >= num_states_ || e.to < 0 ||
        e.to >= num_states_) {
      return Status::InvalidArgument("edge endpoint out of range");
    }
    out_edges[e.from].push_back(&e);
  }

  // DFS over bounded-length paths from the start state. Cycles are
  // allowed; the transition bound keeps the enumeration finite.
  size_t emitted = 0;
  bool overflow = false;
  std::vector<const Edge*> path;
  std::function<void(int)> visit = [&](int state) {
    if (overflow) return;
    if (IsAccepting(state) && !path.empty()) {
      if (++emitted > max_executions) {
        overflow = true;
        return;
      }
      DdpExecution exec;
      for (const Edge* e : path) exec.transitions.push_back(e->transition);
      expr->AddExecution(std::move(exec));
    }
    if (static_cast<int>(path.size()) >= max_transitions) return;
    for (const Edge* e : out_edges[state]) {
      path.push_back(e);
      visit(e->to);
      path.pop_back();
    }
  };
  visit(0);
  if (overflow) {
    return Status::OutOfRange(
        "machine admits more than " + std::to_string(max_executions) +
        " executions of length <= " + std::to_string(max_transitions));
  }
  expr->Simplify();
  return expr;
}

RandomDdpMachine::Output RandomDdpMachine::Generate(
    const RandomMachineConfig& config, AnnotationRegistry* registry,
    EntityTable* costs, EntityTable* db_table, Rng* rng) {
  DomainId cost_domain = registry->AddDomain("cost_var");
  DomainId db_domain = registry->AddDomain("db_var");

  Output out{DdpMachine(config.num_states), {}, {}};

  auto next_name = [&registry](const std::string& prefix, int i) {
    std::string name = prefix + std::to_string(i + 1);
    while (registry->Find(name).ok()) name += "'";
    return name;
  };

  for (int c = 0; c < config.num_cost_vars; ++c) {
    int cost = 1 + static_cast<int>(rng->PickIndex(config.max_cost));
    uint32_t row = costs->AddRow({std::to_string(cost)}).MoveValue();
    AnnotationId ann =
        registry->Add(cost_domain, next_name("c", c), row).MoveValue();
    out.cost_vars.push_back(ann);
    out.machine.SetCost(ann, cost);
  }
  for (int d = 0; d < config.num_db_vars; ++d) {
    uint32_t row =
        db_table->AddRow({"T" + std::to_string(d % 3)}).MoveValue();
    out.db_vars.push_back(
        registry->Add(db_domain, next_name("d", d), row).MoveValue());
  }

  auto random_transition = [&]() -> DdpTransition {
    if (rng->Bernoulli(0.5)) {
      return DdpTransition::User(
          out.cost_vars[rng->PickIndex(out.cost_vars.size())]);
    }
    int arity = rng->Bernoulli(0.6) ? 2 : 1;
    std::vector<AnnotationId> factors;
    for (int f = 0; f < arity; ++f) {
      factors.push_back(out.db_vars[rng->PickIndex(out.db_vars.size())]);
    }
    return DdpTransition::Db(Monomial(std::move(factors)),
                             rng->Bernoulli(0.7));
  };

  /// Perturbs one variable of a transition (the parallel-variant recipe).
  auto perturb = [&](DdpTransition t) {
    if (t.kind == DdpTransition::Kind::kUser) {
      t.cost_var = out.cost_vars[rng->PickIndex(out.cost_vars.size())];
    } else {
      std::vector<AnnotationId> factors = t.db_factors.factors();
      factors[rng->PickIndex(factors.size())] =
          out.db_vars[rng->PickIndex(out.db_vars.size())];
      t.db_factors = Monomial(std::move(factors));
    }
    return t;
  };

  auto add_edge = [&](int from, int to, const DdpTransition& t) {
    if (t.kind == DdpTransition::Kind::kUser) {
      out.machine.AddUserEdge(from, to, t.cost_var);
    } else {
      out.machine.AddDbEdge(from, to, t.db_factors, t.nonzero);
    }
  };

  // Spanning chain start -> ... -> last state (the accepting state), so
  // every machine admits at least one execution.
  for (int s = 0; s + 1 < config.num_states; ++s) {
    DdpTransition t = random_transition();
    add_edge(s, s + 1, t);
    if (rng->Bernoulli(config.parallel_edge_prob)) {
      add_edge(s, s + 1, perturb(t));
    }
  }
  out.machine.SetAccepting(config.num_states - 1);

  // Extra forward edges (keeping the graph acyclic keeps path counts
  // manageable while still yielding many executions).
  for (int e = 0; e < config.extra_edges; ++e) {
    int from = static_cast<int>(rng->PickIndex(config.num_states - 1));
    int to =
        from + 1 +
        static_cast<int>(rng->PickIndex(config.num_states - 1 - from));
    DdpTransition t = random_transition();
    add_edge(from, to, t);
    if (rng->Bernoulli(config.parallel_edge_prob)) {
      add_edge(from, to, perturb(t));
    }
  }
  return out;
}

}  // namespace prox
