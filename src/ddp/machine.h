#ifndef PROX_DDP_MACHINE_H_
#define PROX_DDP_MACHINE_H_

#include <cstdint>
#include <memory>
#include <set>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "provenance/ddp_expr.h"
#include "semantics/entity_table.h"

namespace prox {

/// \brief A data-dependent process (Deutch-Milo [17], as used by the
/// thesis's DDP dataset, Example 5.2.2): an application "whose control
/// flow is guided by a finite state machine, as well as by the state of an
/// underlying database".
///
/// States are integers; each edge is either a *user-dependent* transition
/// (the user chooses it, at effort `cost_var`) or a *database-dependent*
/// transition guarded by a query over DB tuple variables
/// (`[d_i·d_j] ≠ 0` — the tuples exist — or `= 0`).
///
/// The provenance of the process is the sum over accepting executions of
/// the product of their transition tokens — exactly the DdpExpression the
/// summarizer consumes; CompileProvenance materializes it.
class DdpMachine {
 public:
  struct Edge {
    int from = 0;
    int to = 0;
    DdpTransition transition;
  };

  /// \param num_states states are 0 .. num_states-1; 0 is the start state
  explicit DdpMachine(int num_states) : num_states_(num_states) {}

  int num_states() const { return num_states_; }

  void AddUserEdge(int from, int to, AnnotationId cost_var) {
    edges_.push_back(Edge{from, to, DdpTransition::User(cost_var)});
  }
  void AddDbEdge(int from, int to, Monomial factors, bool nonzero) {
    edges_.push_back(
        Edge{from, to, DdpTransition::Db(std::move(factors), nonzero)});
  }

  void SetAccepting(int state) { accepting_.insert(state); }
  bool IsAccepting(int state) const { return accepting_.count(state) > 0; }

  const std::vector<Edge>& edges() const { return edges_; }

  /// Associates a cost with a user transition's cost variable.
  void SetCost(AnnotationId cost_var, double cost) {
    costs_.emplace_back(cost_var, cost);
  }

  /// Enumerates every execution (path from state 0 to an accepting state)
  /// of at most `max_transitions` transitions and compiles the DDP
  /// provenance expression: Σ over executions of Π of transition tokens,
  /// with the tropical/boolean evaluation semantics of Example 5.2.2.
  ///
  /// Fails when the enumeration would exceed `max_executions` paths (the
  /// summarization input must stay finite and reviewable).
  Result<std::unique_ptr<DdpExpression>> CompileProvenance(
      int max_transitions, size_t max_executions = 4096) const;

 private:
  int num_states_;
  std::vector<Edge> edges_;
  std::set<int> accepting_;
  std::vector<std::pair<AnnotationId, double>> costs_;
};

/// Configuration for random machine generation (the experiments' DDP
/// workloads, generated instead of the unavailable traces of [17]).
struct RandomMachineConfig {
  int num_states = 5;
  int num_cost_vars = 8;
  int num_db_vars = 10;
  int max_cost = 10;
  /// Edges beyond a spanning chain, each user- or db-dependent.
  int extra_edges = 6;
  /// Probability that an edge gets a parallel variant differing in one
  /// variable — the source of near-duplicate executions that make
  /// summarization collapse opportunities (Example 5.2.2's d1/d3 pair).
  double parallel_edge_prob = 0.5;
};

/// \brief Builds a random DDP machine over freshly registered cost/DB
/// variables (domains "cost_var" / "db_var", with Cost and Table entity
/// attributes matching the DDP dataset's constraints).
class RandomDdpMachine {
 public:
  struct Output {
    DdpMachine machine;
    std::vector<AnnotationId> cost_vars;
    std::vector<AnnotationId> db_vars;
  };

  static Output Generate(const RandomMachineConfig& config,
                         AnnotationRegistry* registry, EntityTable* costs,
                         EntityTable* db_vars, Rng* rng);
};

}  // namespace prox

#endif  // PROX_DDP_MACHINE_H_
