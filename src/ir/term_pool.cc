#include "ir/term_pool.h"

#include <cstring>

#include "ir/metrics.h"

namespace prox {
namespace ir {

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

inline uint64_t FnvMix(uint64_t h, uint64_t v) {
  h ^= v;
  h *= kFnvPrime;
  return h;
}

inline uint64_t DoubleBits(double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

}  // namespace

uint64_t TermPool::HashSpan(const AnnotationId* data, size_t len) const {
  uint64_t h = kFnvOffset;
  h = FnvMix(h, static_cast<uint64_t>(len));
  for (size_t i = 0; i < len; ++i) h = FnvMix(h, data[i]);
  return h;
}

uint64_t TermPool::HashGuard(MonomialId mono, double scalar, CompareOp op,
                             double threshold) const {
  uint64_t h = kFnvOffset;
  h = FnvMix(h, mono);
  h = FnvMix(h, DoubleBits(scalar));
  h = FnvMix(h, static_cast<uint64_t>(op));
  h = FnvMix(h, DoubleBits(threshold));
  return h;
}

void TermPool::EnsureMonoIndexed() {
  const uint32_t total = static_cast<uint32_t>(num_monomials());
  for (MonomialId id = mono_indexed_; id < total; ++id) {
    mono_index_[HashSpan(mono_data(id), mono_len(id))].push_back(id);
  }
  mono_indexed_ = total;
}

void TermPool::EnsureGuardIndexed() {
  const uint32_t total = static_cast<uint32_t>(guards_.size());
  for (GuardId id = guard_indexed_; id < total; ++id) {
    const GuardRow& g = guards_[id];
    guard_index_[HashGuard(g.mono, g.scalar, g.op, g.threshold)].push_back(id);
  }
  guard_indexed_ = total;
}

MonomialId TermPool::InternMonomial(const AnnotationId* data, size_t len) {
  EnsureMonoIndexed();
  const uint64_t h = HashSpan(data, len);
  auto& bucket = mono_index_[h];
  for (MonomialId id : bucket) {
    if (mono_len(id) == len &&
        (len == 0 || std::memcmp(mono_data(id), data,
                                 len * sizeof(AnnotationId)) == 0)) {
      return id;
    }
  }
  const MonomialId id = AppendMonomial(data, len);
  bucket.push_back(id);
  mono_indexed_ = static_cast<uint32_t>(num_monomials());
  CountMonomialInterned();
  return id;
}

GuardId TermPool::InternGuard(MonomialId mono, double scalar, CompareOp op,
                              double threshold) {
  EnsureGuardIndexed();
  const uint64_t h = HashGuard(mono, scalar, op, threshold);
  auto& bucket = guard_index_[h];
  for (GuardId id : bucket) {
    const GuardRow& g = guards_[id];
    if (g.mono == mono && g.scalar == scalar && g.op == op &&
        g.threshold == threshold) {
      return id;
    }
  }
  const GuardId id = AppendGuard(mono, scalar, op, threshold);
  bucket.push_back(id);
  guard_indexed_ = static_cast<uint32_t>(guards_.size());
  return id;
}

MonomialId TermPool::AppendMonomial(const AnnotationId* data, size_t len) {
  MonomialRef ref;
  ref.off = base_arena_len_ + static_cast<uint32_t>(arena_.size());
  ref.len = static_cast<uint32_t>(len);
  arena_.insert(arena_.end(), data, data + len);
  refs_.push_back(ref);
  return static_cast<MonomialId>(num_monomials() - 1);
}

GuardId TermPool::AppendGuard(MonomialId mono, double scalar, CompareOp op,
                              double threshold) {
  GuardRow g;
  g.mono = mono;
  g.scalar = scalar;
  g.op = op;
  g.threshold = threshold;
  guards_.push_back(g);
  return static_cast<GuardId>(guards_.size() - 1);
}

void TermPool::BorrowBase(const AnnotationId* arena, size_t arena_len,
                          const MonomialRef* refs, size_t refs_len,
                          std::shared_ptr<const void> owner) {
  base_arena_ = arena;
  base_arena_len_ = static_cast<uint32_t>(arena_len);
  base_refs_ = refs;
  base_refs_len_ = static_cast<uint32_t>(refs_len);
  base_owner_ = std::move(owner);
}

void TermPool::LoadBase(const AnnotationId* arena, size_t arena_len,
                        const MonomialRef* refs, size_t refs_len) {
  arena_.assign(arena, arena + arena_len);
  refs_.assign(refs, refs + refs_len);
}

void TermPool::LoadGuards(const GuardRow* guards, size_t len) {
  guards_.assign(guards, guards + len);
}

int PoolView::CompareMonomials(MonomialId a, MonomialId b) const {
  if (a == b) return 0;  // same pool slot => same content
  const AnnotationId* da = mono_data(a);
  const AnnotationId* db = mono_data(b);
  const uint32_t la = mono_len(a);
  const uint32_t lb = mono_len(b);
  const uint32_t n = la < lb ? la : lb;
  for (uint32_t i = 0; i < n; ++i) {
    if (da[i] != db[i]) return da[i] < db[i] ? -1 : 1;
  }
  if (la != lb) return la < lb ? -1 : 1;
  return 0;
}

bool PoolView::MonomialsEqual(MonomialId a, MonomialId b) const {
  if (a == b) return true;
  const uint32_t la = mono_len(a);
  if (la != mono_len(b)) return false;
  return la == 0 || std::memcmp(mono_data(a), mono_data(b),
                                la * sizeof(AnnotationId)) == 0;
}

int PoolView::CompareGuards(GuardId a, GuardId b) const {
  if (a == b) return 0;
  const GuardRow& ga = guard(a);
  const GuardRow& gb = guard(b);
  const int mono_cmp = CompareMonomials(ga.mono, gb.mono);
  if (mono_cmp != 0) return mono_cmp;
  if (ga.scalar != gb.scalar) return ga.scalar < gb.scalar ? -1 : 1;
  if (ga.op != gb.op) return ga.op < gb.op ? -1 : 1;
  if (ga.threshold != gb.threshold) return ga.threshold < gb.threshold ? -1 : 1;
  return 0;
}

bool PoolView::GuardsEqual(GuardId a, GuardId b) const {
  if (a == b) return true;
  const GuardRow& ga = guard(a);
  const GuardRow& gb = guard(b);
  return MonomialsEqual(ga.mono, gb.mono) && ga.scalar == gb.scalar &&
         ga.op == gb.op && ga.threshold == gb.threshold;
}

}  // namespace ir
}  // namespace prox
