#ifndef PROX_IR_POLY_EXPR_H_
#define PROX_IR_POLY_EXPR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ir/term_pool.h"
#include "kernels/batch_eval.h"
#include "provenance/expression.h"

namespace prox {
namespace ir {

/// \brief Flat ℕ[Ann] provenance — prox::ir counterpart of
/// PolynomialExpression.
///
/// Rows are (monomial id, coefficient) pairs kept in the legacy
/// canonical order: monomial content ascending (the std::map<Mono,...>
/// iteration order of the tree Polynomial), with content-equal rows
/// merged by summing coefficients.
class IrPolynomialExpression : public ProvenanceExpression,
                               public kernels::BatchEvalFacade {
 public:
  explicit IrPolynomialExpression(std::shared_ptr<TermPool> pool)
      : pool_(std::move(pool)) {}

  size_t num_terms() const { return mono_.size(); }
  const std::shared_ptr<TermPool>& pool() const { return pool_; }

  /// Builder (main thread): `mono` must be interned in the shared pool.
  void AddTermIds(MonomialId mono, uint64_t coeff);

  /// Sorts rows by monomial content and merges equal rows (coefficient
  /// sum); recomputes the cached size.
  void Canonicalize();

  // ProvenanceExpression interface -----------------------------------------
  int64_t Size() const override;
  void CollectAnnotations(std::vector<AnnotationId>* out) const override;
  std::unique_ptr<ProvenanceExpression> Apply(
      const Homomorphism& h) const override;
  EvalResult Evaluate(const MaterializedValuation& v) const override;
  EvalResult ProjectEvalResult(const EvalResult& base,
                               const Homomorphism& h) const override {
    (void)h;
    return base;
  }
  std::unique_ptr<ProvenanceExpression> Clone() const override;
  std::string ToString(const AnnotationRegistry& registry) const override;
  const kernels::BatchEvalFacade* AsBatchEval() const override { return this; }

  // BatchEvalFacade interface ----------------------------------------------
  kernels::BatchProgram LowerBatch() const override;

 private:
  PoolView view() const { return PoolView(pool_.get(), overlay_.get()); }

  std::shared_ptr<TermPool> pool_;
  std::shared_ptr<const TermPool> overlay_;

  std::vector<MonomialId> mono_;
  std::vector<uint64_t> coeff_;
  int64_t size_ = 0;
};

}  // namespace ir
}  // namespace prox

#endif  // PROX_IR_POLY_EXPR_H_
