#ifndef PROX_IR_METRICS_H_
#define PROX_IR_METRICS_H_

#include <cstdint>

namespace prox {
namespace ir {

/// Counter bumpers for the IR hot path (docs/OBSERVABILITY.md catalogues
/// the names). Each caches its obs::Counter pointer in a function-local
/// static, so the hot-path cost is one relaxed atomic add.

/// A monomial was newly interned into a shared TermPool (overlay appends
/// are not counted — they are per-Apply scratch, not pool growth).
void CountMonomialInterned();

/// Apply() kept a term's interned monomial untouched (the homomorphism
/// fixed every factor), so the term was shared structurally instead of
/// being re-emitted.
void CountApplyTermShared(uint64_t n = 1);

/// Apply() rewrote a term's monomial (at least one factor changed, or the
/// source lived in an overlay that the result does not carry).
void CountApplyTermRewritten(uint64_t n = 1);

}  // namespace ir
}  // namespace prox

#endif  // PROX_IR_METRICS_H_
