#ifndef PROX_IR_AGG_EXPR_H_
#define PROX_IR_AGG_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "ir/term_pool.h"
#include "kernels/batch_eval.h"
#include "provenance/agg_value.h"
#include "provenance/expression.h"
#include "provenance/facade.h"

namespace prox {
namespace ir {

/// \brief Flat structure-of-arrays aggregate expression — the prox::ir
/// replacement for the pointer-tree AggregateExpression on the
/// summarization hot path (docs/IR.md).
///
/// One term is a row across four parallel columns (monomial id, guard id,
/// group key, aggregate value); factor spans live in the shared TermPool
/// arena. Canonical form is the exact term order legacy Simplify()
/// produces — (group, monomial, guard) with equal-keyed rows merged — so
/// ToString(), Evaluate() and the facade view are byte-identical to the
/// legacy representation.
///
/// Apply() is copy-on-write: rows whose factors the homomorphism fixes
/// keep their interned monomial id (no allocation, no hashing); only
/// touched rows are re-emitted. On the main thread re-emitted monomials
/// are interned into the shared pool; on an exec worker they go to a
/// fresh expression-local overlay pool (ids tagged kOverlayBit), so
/// workers never mutate shared state.
class IrAggregateExpression : public ProvenanceExpression,
                              public AggregateFacade,
                              public kernels::BatchEvalFacade {
 public:
  IrAggregateExpression(AggKind agg, std::shared_ptr<TermPool> pool)
      : agg_(agg), pool_(std::move(pool)) {}

  AggKind agg() const { return agg_; }
  size_t num_terms() const { return mono_.size(); }
  const std::shared_ptr<TermPool>& pool() const { return pool_; }
  bool has_overlay() const { return overlay_ != nullptr; }

  /// Distinct group keys, sorted (the coordinates of evaluation vectors).
  const std::vector<AnnotationId>& Groups() const { return groups_; }

  /// Builder (main thread): append a row, then Canonicalize() once.
  /// `mono` / `guard` must be ids in the shared pool (untagged).
  void AddTermIds(MonomialId mono, GuardId guard, AnnotationId group,
                  AggValue value);

  /// Pre-reserves the four term columns for `extra` upcoming AddTermIds
  /// calls (batched ingest appends grow once instead of per row).
  void ReserveAdditionalTerms(size_t extra) {
    mono_.reserve(mono_.size() + extra);
    guard_.reserve(guard_.size() + extra);
    group_.reserve(group_.size() + extra);
    value_.reserve(value_.size() + extra);
  }

  /// Sorts rows into the legacy canonical order, merges equal-keyed rows
  /// under the aggregation monoid, and rebuilds the group index and the
  /// cached size.
  void Canonicalize();

  /// Fast path for rows appended in a known-canonical order (snapshot
  /// load: rows were saved out of a canonical expression). Verifies the
  /// order with one linear adjacent-pair scan — strictly ascending keys
  /// mean nothing to sort and nothing to merge — and only rebuilds the
  /// derived indexes; any violation falls back to the full Canonicalize().
  void CanonicalizeSorted();

  // ProvenanceExpression interface -----------------------------------------
  int64_t Size() const override;
  void CollectAnnotations(std::vector<AnnotationId>* out) const override;
  std::unique_ptr<ProvenanceExpression> Apply(
      const Homomorphism& h) const override;
  EvalResult Evaluate(const MaterializedValuation& v) const override;
  EvalResult ProjectEvalResult(const EvalResult& base,
                               const Homomorphism& h) const override;
  std::unique_ptr<ProvenanceExpression> Clone() const override;
  std::string ToString(const AnnotationRegistry& registry) const override;
  const AggregateFacade* AsAggregate() const override { return this; }
  const kernels::BatchEvalFacade* AsBatchEval() const override { return this; }

  // AggregateFacade interface ----------------------------------------------
  AggKind agg_kind() const override { return agg_; }
  size_t agg_num_terms() const override { return mono_.size(); }
  AggTermView agg_term(size_t i) const override;

  // BatchEvalFacade interface ----------------------------------------------
  kernels::BatchProgram LowerBatch() const override;

 private:
  PoolView view() const { return PoolView(pool_.get(), overlay_.get()); }

  /// Rebuilds groups_ / group_dense_ / size_ from canonical-order rows.
  void RebuildDerived();

  AggKind agg_;
  std::shared_ptr<TermPool> pool_;
  // Per-expression append-only overlay created by a worker-thread Apply;
  // immutable once the Apply that built it returns, so Clone() shares it.
  std::shared_ptr<const TermPool> overlay_;

  // Parallel term columns, in canonical order after Canonicalize().
  std::vector<MonomialId> mono_;
  std::vector<GuardId> guard_;  // kNoGuard when absent
  std::vector<AnnotationId> group_;
  std::vector<AggValue> value_;

  // Derived by Canonicalize(): sorted distinct groups, per-row dense group
  // index (rows are group-sorted, so these are run ids), cached Size().
  std::vector<AnnotationId> groups_;
  std::vector<uint32_t> group_dense_;
  int64_t size_ = 0;
};

}  // namespace ir
}  // namespace prox

#endif  // PROX_IR_AGG_EXPR_H_
