#ifndef PROX_IR_ADOPT_H_
#define PROX_IR_ADOPT_H_

#include <memory>

#include "ir/term_pool.h"
#include "provenance/expression.h"

namespace prox {
namespace ir {

/// True when the expression already is one of the prox::ir flat classes.
bool IsIr(const ProvenanceExpression& e);

/// \brief Converts any provenance expression into its flat prox::ir
/// representation, interning monomials and guards into `pool`.
///
/// Aggregate and DDP structures are read through their facades, plain
/// polynomials through PolynomialExpression; an expression that is
/// already IR — or has no IR counterpart — is cloned unchanged. The
/// result is canonical and evaluates/prints byte-identically to the
/// source. Main-thread only (interning mutates the pool).
std::unique_ptr<ProvenanceExpression> Adopt(
    const ProvenanceExpression& e, const std::shared_ptr<TermPool>& pool);

}  // namespace ir
}  // namespace prox

#endif  // PROX_IR_ADOPT_H_
