#include "ir/poly_expr.h"

#include <algorithm>
#include <numeric>

#include "exec/thread_pool.h"
#include "ir/metrics.h"
#include "provenance/annotation.h"

namespace prox {
namespace ir {

void IrPolynomialExpression::AddTermIds(MonomialId mono, uint64_t coeff) {
  if (coeff == 0) return;  // AddTerm drops zero coefficients
  mono_.push_back(mono);
  coeff_.push_back(coeff);
}

void IrPolynomialExpression::Canonicalize() {
  const PoolView pv = view();
  const size_t n = mono_.size();
  std::vector<uint32_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0u);
  std::sort(idx.begin(), idx.end(), [&](uint32_t a, uint32_t b) {
    return pv.CompareMonomials(mono_[a], mono_[b]) < 0;
  });
  std::vector<MonomialId> nm;
  std::vector<uint64_t> nc;
  nm.reserve(n);
  nc.reserve(n);
  for (uint32_t i : idx) {
    if (!nm.empty() && pv.MonomialsEqual(nm.back(), mono_[i])) {
      nc.back() += coeff_[i];
    } else {
      nm.push_back(mono_[i]);
      nc.push_back(coeff_[i]);
    }
  }
  mono_ = std::move(nm);
  coeff_ = std::move(nc);
  size_ = 0;
  for (MonomialId m : mono_) size_ += pv.mono_len(m);
}

int64_t IrPolynomialExpression::Size() const {
  CountSizeCacheHit();
  return size_;
}

void IrPolynomialExpression::CollectAnnotations(
    std::vector<AnnotationId>* out) const {
  const PoolView pv = view();
  // The legacy class appends its sorted distinct variable list to `out`
  // without re-sorting the destination; replicate that contract.
  std::vector<AnnotationId> vars;
  for (MonomialId m : mono_) {
    const AnnotationId* f = pv.mono_data(m);
    vars.insert(vars.end(), f, f + pv.mono_len(m));
  }
  std::sort(vars.begin(), vars.end());
  vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
  out->insert(out->end(), vars.begin(), vars.end());
}

std::unique_ptr<ProvenanceExpression> IrPolynomialExpression::Apply(
    const Homomorphism& h) const {
  const bool worker = exec::InParallelWorker();
  auto out = std::make_unique<IrPolynomialExpression>(pool_);
  std::shared_ptr<TermPool> fresh;
  TermPool* target = pool_.get();
  if (worker) {
    fresh = std::make_shared<TermPool>();
    target = fresh.get();
  }
  const PoolView pv = view();

  std::vector<MonomialId> mono_memo(pool_->num_monomials(), kInvalidMonomial);
  std::vector<MonomialId> mono_memo_ov(
      overlay_ ? overlay_->num_monomials() : 0, kInvalidMonomial);
  std::vector<AnnotationId> scratch;
  uint64_t shared_terms = 0;
  uint64_t rewritten_terms = 0;

  out->mono_.reserve(mono_.size());
  out->coeff_.reserve(mono_.size());
  for (size_t i = 0; i < mono_.size(); ++i) {
    const MonomialId src = mono_[i];
    MonomialId& slot = (src & kOverlayBit)
                           ? mono_memo_ov[src & ~kOverlayBit]
                           : mono_memo[src];
    if (slot == kInvalidMonomial) {
      const AnnotationId* data = pv.mono_data(src);
      const uint32_t len = pv.mono_len(src);
      scratch.assign(data, data + len);
      bool changed = false;
      for (uint32_t k = 0; k < len; ++k) {
        const AnnotationId m = h.Map(scratch[k]);
        if (m != scratch[k]) {
          scratch[k] = m;
          changed = true;
        }
      }
      if (!changed && !(src & kOverlayBit)) {
        slot = src;
      } else {
        if (changed) std::sort(scratch.begin(), scratch.end());
        slot = worker
                   ? (target->AppendMonomial(scratch.data(), scratch.size()) |
                      kOverlayBit)
                   : target->InternMonomial(scratch.data(), scratch.size());
      }
    }
    if (slot == src) {
      ++shared_terms;
    } else {
      ++rewritten_terms;
    }
    out->mono_.push_back(slot);
    out->coeff_.push_back(coeff_[i]);
  }
  if (fresh && fresh->num_monomials() > 0) out->overlay_ = std::move(fresh);
  CountApplyTermShared(shared_terms);
  CountApplyTermRewritten(rewritten_terms);
  out->Canonicalize();
  return out;
}

EvalResult IrPolynomialExpression::Evaluate(
    const MaterializedValuation& v) const {
  const PoolView pv = view();
  // Polynomial::EvaluateNat with a 0/1 valuation: the sum of coefficients
  // of monomials whose factors are all true.
  uint64_t sum = 0;
  for (size_t i = 0; i < mono_.size(); ++i) {
    uint64_t prod = coeff_[i];
    const AnnotationId* f = pv.mono_data(mono_[i]);
    const uint32_t len = pv.mono_len(mono_[i]);
    for (uint32_t k = 0; k < len; ++k) {
      if (prod == 0) break;
      prod *= v.truth(f[k]) ? 1 : 0;
    }
    sum += prod;
  }
  return EvalResult::Scalar(static_cast<double>(sum));
}

std::unique_ptr<ProvenanceExpression> IrPolynomialExpression::Clone() const {
  return std::make_unique<IrPolynomialExpression>(*this);
}

kernels::BatchProgram IrPolynomialExpression::LowerBatch() const {
  const PoolView pv = view();
  kernels::BatchProgram p;
  p.shape = kernels::BatchProgram::Shape::kPolynomial;
  p.kind = EvalResult::Kind::kScalar;
  p.poly_rows.reserve(mono_.size());
  for (size_t i = 0; i < mono_.size(); ++i) {
    p.poly_rows.push_back(kernels::PolyBatchRow{
        kernels::MonoSpan{pv.mono_data(mono_[i]), pv.mono_len(mono_[i])},
        coeff_[i]});
  }
  return p;
}

std::string IrPolynomialExpression::ToString(
    const AnnotationRegistry& registry) const {
  if (mono_.empty()) return "0";
  const PoolView pv = view();
  std::string out;
  for (size_t i = 0; i < mono_.size(); ++i) {
    if (i > 0) out += " + ";
    const AnnotationId* f = pv.mono_data(mono_[i]);
    const uint32_t len = pv.mono_len(mono_[i]);
    bool printed = false;
    if (coeff_[i] != 1 || len == 0) {
      out += std::to_string(coeff_[i]);
      printed = true;
    }
    uint32_t k = 0;
    while (k < len) {
      uint32_t j = k;
      while (j < len && f[j] == f[k]) ++j;
      if (printed) out += "·";
      out += registry.name(f[k]);
      if (j - k > 1) out += "^" + std::to_string(j - k);
      printed = true;
      k = j;
    }
  }
  return out;
}

}  // namespace ir
}  // namespace prox
