#include "ir/metrics.h"

#include "obs/metrics.h"

namespace prox {
namespace ir {

void CountMonomialInterned() {
  static obs::Counter* c = obs::MetricsRegistry::Default().GetCounter(
      "prox_ir_monomials_interned_total",
      "Distinct monomials hash-consed into a shared ir::TermPool.");
  c->Increment();
}

void CountApplyTermShared(uint64_t n) {
  static obs::Counter* c = obs::MetricsRegistry::Default().GetCounter(
      "prox_ir_apply_terms_shared_total",
      "Terms whose interned monomial survived Apply() untouched "
      "(copy-on-write structural sharing).");
  c->Increment(n);
}

void CountApplyTermRewritten(uint64_t n) {
  static obs::Counter* c = obs::MetricsRegistry::Default().GetCounter(
      "prox_ir_apply_terms_rewritten_total",
      "Terms whose monomial Apply() had to re-emit (a factor changed under "
      "the homomorphism, or the source span lived in a dropped overlay).");
  c->Increment(n);
}

}  // namespace ir
}  // namespace prox
