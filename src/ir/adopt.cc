#include "ir/adopt.h"

#include "ir/agg_expr.h"
#include "ir/ddp_expr.h"
#include "ir/poly_expr.h"
#include "provenance/facade.h"
#include "provenance/polynomial_expr.h"

namespace prox {
namespace ir {

bool IsIr(const ProvenanceExpression& e) {
  return dynamic_cast<const IrAggregateExpression*>(&e) != nullptr ||
         dynamic_cast<const IrDdpExpression*>(&e) != nullptr ||
         dynamic_cast<const IrPolynomialExpression*>(&e) != nullptr;
}

std::unique_ptr<ProvenanceExpression> Adopt(
    const ProvenanceExpression& e, const std::shared_ptr<TermPool>& pool) {
  if (IsIr(e)) return e.Clone();

  if (const AggregateFacade* agg = e.AsAggregate()) {
    auto out = std::make_unique<IrAggregateExpression>(agg->agg_kind(), pool);
    const size_t n = agg->agg_num_terms();
    for (size_t i = 0; i < n; ++i) {
      const AggTermView t = agg->agg_term(i);
      const MonomialId mono = pool->InternMonomial(t.mono, t.mono_len);
      GuardId guard = kNoGuard;
      if (t.has_guard) {
        const MonomialId gm = pool->InternMonomial(t.guard_mono, t.guard_len);
        guard = pool->InternGuard(gm, t.guard_scalar, t.guard_op,
                                  t.guard_threshold);
      }
      out->AddTermIds(mono, guard, t.group, t.value);
    }
    out->Canonicalize();
    return out;
  }

  if (const DdpFacade* ddp = e.AsDdp()) {
    auto out = std::make_unique<IrDdpExpression>(pool);
    const size_t num_exec = ddp->ddp_num_executions();
    for (size_t ex = 0; ex < num_exec; ++ex) {
      out->BeginExecution();
      const size_t num_tr = ddp->ddp_num_transitions(ex);
      for (size_t t = 0; t < num_tr; ++t) {
        const DdpTransitionView tr = ddp->ddp_transition(ex, t);
        if (tr.user) {
          out->AddUserTransition(tr.cost_var);
        } else {
          out->AddDbTransition(pool->InternMonomial(tr.db, tr.db_len),
                               tr.nonzero);
        }
      }
    }
    for (const auto& [var, cost] : ddp->ddp_costs()) out->SetCost(var, cost);
    out->Canonicalize();
    return out;
  }

  if (const auto* poly = dynamic_cast<const PolynomialExpression*>(&e)) {
    auto out = std::make_unique<IrPolynomialExpression>(pool);
    for (const auto& [mono, coeff] : poly->polynomial().terms()) {
      out->AddTermIds(pool->InternMonomial(mono.data(), mono.size()), coeff);
    }
    out->Canonicalize();
    return out;
  }

  return e.Clone();
}

}  // namespace ir
}  // namespace prox
