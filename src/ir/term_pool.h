#ifndef PROX_IR_TERM_POOL_H_
#define PROX_IR_TERM_POOL_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "provenance/annotation.h"
#include "provenance/guard.h"

namespace prox {
namespace ir {

/// Dense handle to an interned monomial (factor span) in a TermPool.
using MonomialId = uint32_t;
/// Dense handle to an interned guard row in a TermPool.
using GuardId = uint32_t;

inline constexpr MonomialId kInvalidMonomial = 0xFFFFFFFFu;
/// Column value for "this term has no guard".
inline constexpr GuardId kNoGuard = 0xFFFFFFFFu;
/// High bit tagging ids that resolve against an expression-local overlay
/// pool instead of the shared pool (see the thread contract below).
inline constexpr uint32_t kOverlayBit = 0x80000000u;

/// One interned comparison guard `[m ⊗ s OP t]`. `mono` is a full
/// (possibly overlay-tagged) monomial id, resolvable through a PoolView.
struct GuardRow {
  MonomialId mono = kInvalidMonomial;
  double scalar = 0.0;
  CompareOp op = CompareOp::kGt;
  double threshold = 0.0;
};

/// An (offset, length) span into a TermPool's factor arena — one interned
/// monomial. Public and trivially copyable so prox::store can persist the
/// ref table as raw bytes and a loaded pool can *borrow* it straight out
/// of an mmap'd snapshot section (docs/STORE.md).
struct MonomialRef {
  uint32_t off = 0;
  uint32_t len = 0;
};
static_assert(sizeof(MonomialRef) == 8 && alignof(MonomialRef) == 4,
              "MonomialRef is persisted raw by prox::store");

/// \brief Arena-backed store of hash-consed monomials and guards — the
/// flat core the prox::ir expressions index into (docs/IR.md).
///
/// All factor spans live back-to-back in one arena; a monomial is an
/// (offset, length) pair, so monomial equality inside one pool is a
/// 32-bit id compare and evaluation walks a contiguous span.
///
/// Storage is two-tier. The *base* tier is immutable and may be borrowed
/// — raw pointers into an mmap'd snapshot (BorrowBase) whose lifetime the
/// pool pins via a shared owner handle — or loaded by copy (LoadBase).
/// The *owned* tier is the growth region every Intern*/Append* call
/// writes to. Logical offsets and ids run contiguously across both tiers,
/// so ids minted before and after a snapshot load are indistinguishable
/// to readers. The hash-cons index over base entries is built lazily on
/// the first Intern* call: a pool that is only ever read (a warm serving
/// process answering cached summaries) never pays for it.
///
/// Thread contract (mirrors AnnotationRegistry): interning mutates the
/// pool and must stay single-threaded — in the summarizer that is the
/// main thread, between parallel sections. Worker threads never intern;
/// an Apply() on a worker appends into a fresh expression-local overlay
/// pool via the Append* methods (no hash index maintenance) and tags the
/// resulting ids with kOverlayBit. Concurrent *reads* of a pool that is
/// not being mutated are safe; base-tier reads stay valid across owned
/// growth (mmap pages never move).
class TermPool {
 public:
  /// Hash-conses a factor span (must already be sorted — the canonical
  /// monomial form). Returns the existing id when the content was seen
  /// before, so id equality == content equality within this pool.
  MonomialId InternMonomial(const AnnotationId* data, size_t len);

  /// Hash-conses a guard row. `mono` must be an id interned in this pool
  /// (id equality is what makes guard hashing sound).
  GuardId InternGuard(MonomialId mono, double scalar, CompareOp op,
                      double threshold);

  /// Appends a span without hash-consing (overlay pools on workers).
  /// Returned ids are *untagged*; the owning expression adds kOverlayBit.
  MonomialId AppendMonomial(const AnnotationId* data, size_t len);
  GuardId AppendGuard(MonomialId mono, double scalar, CompareOp op,
                      double threshold);

  /// Seeds an empty pool with a read-only base tier *without copying*:
  /// the pool reads factors and refs directly from `arena`/`refs` (e.g.
  /// spans of an mmap'd snapshot) and retains `owner` to pin their
  /// lifetime. Spans must satisfy `off + len <= arena_len` for every ref
  /// (prox::store validates before calling). Must be called on an empty
  /// pool, at most once.
  void BorrowBase(const AnnotationId* arena, size_t arena_len,
                  const MonomialRef* refs, size_t refs_len,
                  std::shared_ptr<const void> owner);

  /// Copying fallback for BorrowBase (unaligned or non-mmap sources):
  /// bulk-appends the same data into the owned tier. Empty pool only.
  void LoadBase(const AnnotationId* arena, size_t arena_len,
                const MonomialRef* refs, size_t refs_len);

  /// Bulk-appends guard rows (always copied: GuardRow has padding, so raw
  /// guard bytes are re-encoded rather than persisted). Empty-guard pool
  /// only; `mono` fields must already be valid ids in this pool.
  void LoadGuards(const GuardRow* guards, size_t len);

  /// True when the base tier borrows external memory (zero-copy load).
  bool borrows_base() const { return base_owner_ != nullptr; }

  const AnnotationId* mono_data(MonomialId id) const {
    return ArenaAt(RefOf(id).off);
  }
  uint32_t mono_len(MonomialId id) const { return RefOf(id).len; }
  const GuardRow& guard(GuardId id) const { return guards_[id]; }

  /// The ref row of a monomial id (offset is a *logical* arena offset,
  /// contiguous across the base and owned tiers).
  const MonomialRef& RefOf(MonomialId id) const {
    return id < base_refs_len_ ? base_refs_[id] : refs_[id - base_refs_len_];
  }

  size_t num_monomials() const { return base_refs_len_ + refs_.size(); }
  size_t num_guards() const { return guards_.size(); }
  size_t arena_size() const { return base_arena_len_ + arena_.size(); }

  /// Raw owned-tier storage, for persistence (prox::store serializes a
  /// freshly interned pool, which has no base tier, as flat sections).
  const std::vector<AnnotationId>& owned_arena() const { return arena_; }
  const std::vector<MonomialRef>& owned_refs() const { return refs_; }
  const std::vector<GuardRow>& guard_rows() const { return guards_; }

 private:
  uint64_t HashSpan(const AnnotationId* data, size_t len) const;
  uint64_t HashGuard(MonomialId mono, double scalar, CompareOp op,
                     double threshold) const;

  /// Resolves a logical arena offset to its tier's storage.
  const AnnotationId* ArenaAt(uint32_t off) const {
    return off < base_arena_len_
               ? base_arena_ + off
               : arena_.data() + (off - base_arena_len_);
  }

  /// Hash-index entries [watermark, current) that were bulk-loaded or
  /// appended outside Intern* — the lazy bootstrap for snapshot-loaded
  /// base tiers.
  void EnsureMonoIndexed();
  void EnsureGuardIndexed();

  // Base tier: immutable, possibly borrowed (see BorrowBase).
  const AnnotationId* base_arena_ = nullptr;
  uint32_t base_arena_len_ = 0;
  const MonomialRef* base_refs_ = nullptr;
  uint32_t base_refs_len_ = 0;
  std::shared_ptr<const void> base_owner_;

  // Owned growth tier.
  std::vector<AnnotationId> arena_;
  std::vector<MonomialRef> refs_;
  std::vector<GuardRow> guards_;

  // hash -> candidate ids; content-checked on collision. Lazily covers
  // the base tier (see EnsureMonoIndexed / EnsureGuardIndexed).
  std::unordered_map<uint64_t, std::vector<MonomialId>> mono_index_;
  std::unordered_map<uint64_t, std::vector<GuardId>> guard_index_;
  uint32_t mono_indexed_ = 0;   // ids < this are in mono_index_
  uint32_t guard_indexed_ = 0;  // ids < this are in guard_index_
};

/// \brief Resolves possibly overlay-tagged ids against a (shared, overlay)
/// pool pair, and compares content the way the legacy tree classes do.
///
/// CompareMonomials replicates Monomial's defaulted `<=>` (lexicographic
/// factor order); CompareGuards replicates Guard's defaulted `<=>`
/// (factors, then scalar, then op, then threshold). The IR canonical sort
/// uses these so it produces the byte-identical term order the legacy
/// Simplify() produces.
class PoolView {
 public:
  PoolView(const TermPool* shared, const TermPool* overlay)
      : shared_(shared), overlay_(overlay) {}

  const AnnotationId* mono_data(MonomialId id) const {
    return Pool(id)->mono_data(id & ~kOverlayBit);
  }
  uint32_t mono_len(MonomialId id) const {
    return Pool(id)->mono_len(id & ~kOverlayBit);
  }
  const GuardRow& guard(GuardId id) const {
    return Pool(id)->guard(id & ~kOverlayBit);
  }

  /// <0, 0, >0 — lexicographic factor comparison (Monomial order).
  int CompareMonomials(MonomialId a, MonomialId b) const;
  bool MonomialsEqual(MonomialId a, MonomialId b) const;

  /// Guard order: factors, scalar, op, threshold (Guard's defaulted <=>).
  int CompareGuards(GuardId a, GuardId b) const;
  bool GuardsEqual(GuardId a, GuardId b) const;

 private:
  const TermPool* Pool(uint32_t id) const {
    return (id & kOverlayBit) ? overlay_ : shared_;
  }

  const TermPool* shared_;
  const TermPool* overlay_;  // may be null when the expression has none
};

}  // namespace ir
}  // namespace prox

#endif  // PROX_IR_TERM_POOL_H_
