#ifndef PROX_IR_TERM_POOL_H_
#define PROX_IR_TERM_POOL_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "provenance/annotation.h"
#include "provenance/guard.h"

namespace prox {
namespace ir {

/// Dense handle to an interned monomial (factor span) in a TermPool.
using MonomialId = uint32_t;
/// Dense handle to an interned guard row in a TermPool.
using GuardId = uint32_t;

inline constexpr MonomialId kInvalidMonomial = 0xFFFFFFFFu;
/// Column value for "this term has no guard".
inline constexpr GuardId kNoGuard = 0xFFFFFFFFu;
/// High bit tagging ids that resolve against an expression-local overlay
/// pool instead of the shared pool (see the thread contract below).
inline constexpr uint32_t kOverlayBit = 0x80000000u;

/// One interned comparison guard `[m ⊗ s OP t]`. `mono` is a full
/// (possibly overlay-tagged) monomial id, resolvable through a PoolView.
struct GuardRow {
  MonomialId mono = kInvalidMonomial;
  double scalar = 0.0;
  CompareOp op = CompareOp::kGt;
  double threshold = 0.0;
};

/// \brief Arena-backed store of hash-consed monomials and guards — the
/// flat core the prox::ir expressions index into (docs/IR.md).
///
/// All factor spans live back-to-back in one arena vector; a monomial is
/// an (offset, length) pair, so monomial equality inside one pool is a
/// 32-bit id compare and evaluation walks a contiguous span.
///
/// Thread contract (mirrors AnnotationRegistry): interning mutates the
/// pool and must stay single-threaded — in the summarizer that is the
/// main thread, between parallel sections. Worker threads never intern;
/// an Apply() on a worker appends into a fresh expression-local overlay
/// pool via the Append* methods (no hash index maintenance) and tags the
/// resulting ids with kOverlayBit. Concurrent *reads* of a pool that is
/// not being mutated are safe.
class TermPool {
 public:
  /// Hash-conses a factor span (must already be sorted — the canonical
  /// monomial form). Returns the existing id when the content was seen
  /// before, so id equality == content equality within this pool.
  MonomialId InternMonomial(const AnnotationId* data, size_t len);

  /// Hash-conses a guard row. `mono` must be an id interned in this pool
  /// (id equality is what makes guard hashing sound).
  GuardId InternGuard(MonomialId mono, double scalar, CompareOp op,
                      double threshold);

  /// Appends a span without hash-consing (overlay pools on workers).
  /// Returned ids are *untagged*; the owning expression adds kOverlayBit.
  MonomialId AppendMonomial(const AnnotationId* data, size_t len);
  GuardId AppendGuard(MonomialId mono, double scalar, CompareOp op,
                      double threshold);

  const AnnotationId* mono_data(MonomialId id) const {
    return arena_.data() + refs_[id].off;
  }
  uint32_t mono_len(MonomialId id) const { return refs_[id].len; }
  const GuardRow& guard(GuardId id) const { return guards_[id]; }

  size_t num_monomials() const { return refs_.size(); }
  size_t num_guards() const { return guards_.size(); }
  size_t arena_size() const { return arena_.size(); }

 private:
  struct Ref {
    uint32_t off = 0;
    uint32_t len = 0;
  };

  uint64_t HashSpan(const AnnotationId* data, size_t len) const;
  uint64_t HashGuard(MonomialId mono, double scalar, CompareOp op,
                     double threshold) const;

  std::vector<AnnotationId> arena_;
  std::vector<Ref> refs_;
  std::vector<GuardRow> guards_;
  // hash -> candidate ids; content-checked on collision.
  std::unordered_map<uint64_t, std::vector<MonomialId>> mono_index_;
  std::unordered_map<uint64_t, std::vector<GuardId>> guard_index_;
};

/// \brief Resolves possibly overlay-tagged ids against a (shared, overlay)
/// pool pair, and compares content the way the legacy tree classes do.
///
/// CompareMonomials replicates Monomial's defaulted `<=>` (lexicographic
/// factor order); CompareGuards replicates Guard's defaulted `<=>`
/// (factors, then scalar, then op, then threshold). The IR canonical sort
/// uses these so it produces the byte-identical term order the legacy
/// Simplify() produces.
class PoolView {
 public:
  PoolView(const TermPool* shared, const TermPool* overlay)
      : shared_(shared), overlay_(overlay) {}

  const AnnotationId* mono_data(MonomialId id) const {
    return Pool(id)->mono_data(id & ~kOverlayBit);
  }
  uint32_t mono_len(MonomialId id) const {
    return Pool(id)->mono_len(id & ~kOverlayBit);
  }
  const GuardRow& guard(GuardId id) const {
    return Pool(id)->guard(id & ~kOverlayBit);
  }

  /// <0, 0, >0 — lexicographic factor comparison (Monomial order).
  int CompareMonomials(MonomialId a, MonomialId b) const;
  bool MonomialsEqual(MonomialId a, MonomialId b) const;

  /// Guard order: factors, scalar, op, threshold (Guard's defaulted <=>).
  int CompareGuards(GuardId a, GuardId b) const;
  bool GuardsEqual(GuardId a, GuardId b) const;

 private:
  const TermPool* Pool(uint32_t id) const {
    return (id & kOverlayBit) ? overlay_ : shared_;
  }

  const TermPool* shared_;
  const TermPool* overlay_;  // may be null when the expression has none
};

}  // namespace ir
}  // namespace prox

#endif  // PROX_IR_TERM_POOL_H_
