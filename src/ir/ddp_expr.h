#ifndef PROX_IR_DDP_EXPR_H_
#define PROX_IR_DDP_EXPR_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "ir/term_pool.h"
#include "kernels/batch_eval.h"
#include "provenance/expression.h"
#include "provenance/facade.h"

namespace prox {
namespace ir {

/// \brief Flat DDP provenance — prox::ir counterpart of DdpExpression.
///
/// Executions are flattened into one transition-row vector addressed by
/// per-execution offsets; DB-guard monomials are spans in the shared
/// TermPool. Canonical form (transitions sorted within executions,
/// executions sorted and deduped) and evaluation order replicate the
/// legacy class decision for decision, so costs, ToString() and the
/// facade view are byte-identical.
class IrDdpExpression : public ProvenanceExpression,
                        public DdpFacade,
                        public kernels::BatchEvalFacade {
 public:
  explicit IrDdpExpression(std::shared_ptr<TermPool> pool)
      : pool_(std::move(pool)) {}

  size_t num_executions() const { return exec_off_.empty() ? 0 : exec_off_.size() - 1; }
  const std::shared_ptr<TermPool>& pool() const { return pool_; }

  /// Builder (main thread): start a new execution, then append its
  /// transitions; finish with Canonicalize(). `db` must be interned in
  /// the shared pool (untagged).
  void BeginExecution();
  void AddUserTransition(AnnotationId cost_var);
  void AddDbTransition(MonomialId db, bool nonzero);
  void SetCost(AnnotationId cost_var, double cost);

  /// Sorts transitions within executions, sorts/dedupes executions, and
  /// recomputes the cached size — the legacy Simplify(), flat.
  void Canonicalize();

  double CostOf(AnnotationId cost_var) const;

  // ProvenanceExpression interface -----------------------------------------
  int64_t Size() const override;
  void CollectAnnotations(std::vector<AnnotationId>* out) const override;
  std::unique_ptr<ProvenanceExpression> Apply(
      const Homomorphism& h) const override;
  EvalResult Evaluate(const MaterializedValuation& v) const override;
  EvalResult ProjectEvalResult(const EvalResult& base,
                               const Homomorphism& h) const override {
    (void)h;
    return base;
  }
  std::unique_ptr<ProvenanceExpression> Clone() const override;
  std::string ToString(const AnnotationRegistry& registry) const override;
  const DdpFacade* AsDdp() const override { return this; }
  const kernels::BatchEvalFacade* AsBatchEval() const override { return this; }

  // BatchEvalFacade interface ----------------------------------------------
  kernels::BatchProgram LowerBatch() const override;

  // DdpFacade interface ----------------------------------------------------
  size_t ddp_num_executions() const override { return num_executions(); }
  size_t ddp_num_transitions(size_t exec) const override {
    return exec_off_[exec + 1] - exec_off_[exec];
  }
  DdpTransitionView ddp_transition(size_t exec, size_t t) const override;
  std::vector<std::pair<AnnotationId, double>> ddp_costs() const override {
    return costs_;
  }

 private:
  /// One transition row. For user transitions `db` is the empty monomial
  /// and `nonzero` is true (the defaults of the legacy DdpTransition), so
  /// content comparison over (user, cost_var, db, nonzero) reproduces the
  /// legacy std::tie order exactly.
  struct TrRow {
    bool user = true;
    AnnotationId cost_var = kNoAnnotation;
    MonomialId db = kInvalidMonomial;
    bool nonzero = true;
  };

  PoolView view() const { return PoolView(pool_.get(), overlay_.get()); }
  int CompareRows(const PoolView& pv, const TrRow& a, const TrRow& b) const;

  std::shared_ptr<TermPool> pool_;
  std::shared_ptr<const TermPool> overlay_;

  std::vector<TrRow> rows_;
  std::vector<uint32_t> exec_off_;  // num_executions()+1 offsets into rows_
  std::vector<std::pair<AnnotationId, double>> costs_;  // sorted by var
  int64_t size_ = 0;
};

}  // namespace ir
}  // namespace prox

#endif  // PROX_IR_DDP_EXPR_H_
