#include "ir/ddp_expr.h"

#include <algorithm>
#include <map>

#include "exec/thread_pool.h"
#include "ir/metrics.h"
#include "provenance/monomial.h"

namespace prox {
namespace ir {

void IrDdpExpression::BeginExecution() {
  if (exec_off_.empty()) exec_off_.push_back(0);
  exec_off_.push_back(static_cast<uint32_t>(rows_.size()));
}

void IrDdpExpression::AddUserTransition(AnnotationId cost_var) {
  TrRow r;
  r.user = true;
  r.cost_var = cost_var;
  rows_.push_back(r);
  exec_off_.back() = static_cast<uint32_t>(rows_.size());
}

void IrDdpExpression::AddDbTransition(MonomialId db, bool nonzero) {
  TrRow r;
  r.user = false;
  r.db = db;
  r.nonzero = nonzero;
  rows_.push_back(r);
  exec_off_.back() = static_cast<uint32_t>(rows_.size());
}

void IrDdpExpression::SetCost(AnnotationId cost_var, double cost) {
  auto it = std::lower_bound(
      costs_.begin(), costs_.end(), cost_var,
      [](const auto& p, AnnotationId v) { return p.first < v; });
  if (it != costs_.end() && it->first == cost_var) {
    it->second = cost;
  } else {
    costs_.insert(it, {cost_var, cost});
  }
}

double IrDdpExpression::CostOf(AnnotationId cost_var) const {
  auto it = std::lower_bound(
      costs_.begin(), costs_.end(), cost_var,
      [](const auto& p, AnnotationId v) { return p.first < v; });
  return (it != costs_.end() && it->first == cost_var) ? it->second : 0.0;
}

int IrDdpExpression::CompareRows(const PoolView& pv, const TrRow& a,
                                 const TrRow& b) const {
  // Legacy order: std::tie(kind, cost_var, db_factors, nonzero) with
  // kUser < kDb. A user row carries an empty db monomial and nonzero=true
  // in the legacy struct, so db/nonzero only discriminate between db rows.
  if (a.user != b.user) return a.user ? -1 : 1;
  if (a.cost_var != b.cost_var) return a.cost_var < b.cost_var ? -1 : 1;
  if (!a.user) {
    const int mc = pv.CompareMonomials(a.db, b.db);
    if (mc != 0) return mc;
    if (a.nonzero != b.nonzero) return a.nonzero ? 1 : -1;  // false < true
  }
  return 0;
}

void IrDdpExpression::Canonicalize() {
  const PoolView pv = view();
  const size_t num_exec = num_executions();

  // Materialize executions, sort transitions within each (legacy sorts
  // the transition vectors in place with DdpTransition::operator<).
  std::vector<std::vector<TrRow>> execs(num_exec);
  for (size_t e = 0; e < num_exec; ++e) {
    execs[e].assign(rows_.begin() + exec_off_[e],
                    rows_.begin() + exec_off_[e + 1]);
    std::sort(execs[e].begin(), execs[e].end(),
              [&](const TrRow& a, const TrRow& b) {
                return CompareRows(pv, a, b) < 0;
              });
  }
  // Sort executions lexicographically over their transitions, then dedupe
  // content-equal neighbours — the legacy sort + unique over executions.
  auto exec_cmp = [&](const std::vector<TrRow>& a,
                      const std::vector<TrRow>& b) {
    const size_t n = std::min(a.size(), b.size());
    for (size_t i = 0; i < n; ++i) {
      const int c = CompareRows(pv, a[i], b[i]);
      if (c != 0) return c;
    }
    if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
    return 0;
  };
  std::sort(execs.begin(), execs.end(),
            [&](const auto& a, const auto& b) { return exec_cmp(a, b) < 0; });
  execs.erase(std::unique(execs.begin(), execs.end(),
                          [&](const auto& a, const auto& b) {
                            return exec_cmp(a, b) == 0;
                          }),
              execs.end());

  rows_.clear();
  exec_off_.assign(1, 0);
  size_ = 0;
  for (auto& exec : execs) {
    for (const TrRow& r : exec) {
      rows_.push_back(r);
      size_ += r.user ? 1 : static_cast<int64_t>(pv.mono_len(r.db));
    }
    exec_off_.push_back(static_cast<uint32_t>(rows_.size()));
  }
}

int64_t IrDdpExpression::Size() const {
  CountSizeCacheHit();
  return size_;
}

void IrDdpExpression::CollectAnnotations(
    std::vector<AnnotationId>* out) const {
  const PoolView pv = view();
  for (const TrRow& r : rows_) {
    if (r.user) {
      out->push_back(r.cost_var);
    } else {
      const AnnotationId* f = pv.mono_data(r.db);
      out->insert(out->end(), f, f + pv.mono_len(r.db));
    }
  }
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
}

std::unique_ptr<ProvenanceExpression> IrDdpExpression::Apply(
    const Homomorphism& h) const {
  const bool worker = exec::InParallelWorker();
  auto out = std::make_unique<IrDdpExpression>(pool_);
  std::shared_ptr<TermPool> fresh;
  TermPool* target = pool_.get();
  if (worker) {
    fresh = std::make_shared<TermPool>();
    target = fresh.get();
  }
  const PoolView pv = view();

  std::vector<MonomialId> mono_memo(pool_->num_monomials(), kInvalidMonomial);
  std::vector<MonomialId> mono_memo_ov(
      overlay_ ? overlay_->num_monomials() : 0, kInvalidMonomial);
  std::vector<AnnotationId> scratch;
  uint64_t shared_terms = 0;
  uint64_t rewritten_terms = 0;

  auto map_mono = [&](MonomialId src) -> MonomialId {
    MonomialId& slot = (src & kOverlayBit)
                           ? mono_memo_ov[src & ~kOverlayBit]
                           : mono_memo[src];
    if (slot != kInvalidMonomial) return slot;
    const AnnotationId* data = pv.mono_data(src);
    const uint32_t len = pv.mono_len(src);
    scratch.assign(data, data + len);
    bool changed = false;
    for (uint32_t i = 0; i < len; ++i) {
      const AnnotationId m = h.Map(scratch[i]);
      if (m != scratch[i]) {
        scratch[i] = m;
        changed = true;
      }
    }
    MonomialId dst;
    if (!changed && !(src & kOverlayBit)) {
      dst = src;
    } else {
      if (changed) std::sort(scratch.begin(), scratch.end());
      dst = worker ? (target->AppendMonomial(scratch.data(), scratch.size()) |
                      kOverlayBit)
                   : target->InternMonomial(scratch.data(), scratch.size());
    }
    slot = dst;
    return dst;
  };

  const size_t num_exec = num_executions();
  out->rows_.reserve(rows_.size());
  out->exec_off_.reserve(exec_off_.size());
  for (size_t e = 0; e < num_exec; ++e) {
    out->BeginExecution();
    for (uint32_t i = exec_off_[e]; i < exec_off_[e + 1]; ++i) {
      const TrRow& r = rows_[i];
      if (r.user) {
        out->AddUserTransition(h.Map(r.cost_var));
        ++shared_terms;
      } else {
        const MonomialId m = map_mono(r.db);
        if (m == r.db) {
          ++shared_terms;
        } else {
          ++rewritten_terms;
        }
        out->AddDbTransition(m, r.nonzero);
      }
    }
  }
  // Merged cost variables take the max member cost (MAX φ combiner) —
  // same insert-or-max walk, in the same sorted-by-source-var order, as
  // the legacy std::map merge.
  std::map<AnnotationId, double> merged;
  for (const auto& [var, cost] : costs_) {
    const AnnotationId image = h.Map(var);
    auto it = merged.find(image);
    if (it == merged.end()) {
      merged.emplace(image, cost);
    } else {
      it->second = std::max(it->second, cost);
    }
  }
  out->costs_.assign(merged.begin(), merged.end());

  if (fresh && fresh->num_monomials() > 0) out->overlay_ = std::move(fresh);
  CountApplyTermShared(shared_terms);
  CountApplyTermRewritten(rewritten_terms);
  out->Canonicalize();
  return out;
}

EvalResult IrDdpExpression::Evaluate(const MaterializedValuation& v) const {
  const PoolView pv = view();
  bool any_feasible = false;
  double best_cost = 0.0;
  const size_t num_exec = num_executions();
  for (size_t e = 0; e < num_exec; ++e) {
    bool feasible = true;
    double cost = 0.0;
    for (uint32_t i = exec_off_[e]; i < exec_off_[e + 1]; ++i) {
      const TrRow& r = rows_[i];
      if (r.user) {
        // A cancelled cost variable contributes 0 effort (Example 5.2.2).
        if (v.truth(r.cost_var)) cost += CostOf(r.cost_var);
      } else {
        const AnnotationId* f = pv.mono_data(r.db);
        const uint32_t len = pv.mono_len(r.db);
        bool product_nonzero = true;
        for (uint32_t k = 0; k < len; ++k) {
          if (!v.truth(f[k])) {
            product_nonzero = false;
            break;
          }
        }
        if (product_nonzero != r.nonzero) {
          feasible = false;
          break;
        }
      }
    }
    if (!feasible) continue;
    if (!any_feasible || cost < best_cost) best_cost = cost;
    any_feasible = true;
  }
  return EvalResult::CostBool(any_feasible ? best_cost : 0.0, any_feasible);
}

std::unique_ptr<ProvenanceExpression> IrDdpExpression::Clone() const {
  return std::make_unique<IrDdpExpression>(*this);
}

kernels::BatchProgram IrDdpExpression::LowerBatch() const {
  const PoolView pv = view();
  kernels::BatchProgram p;
  p.shape = kernels::BatchProgram::Shape::kDdp;
  p.kind = EvalResult::Kind::kCostBool;
  p.ddp_exec_off = exec_off_;
  p.ddp_rows.reserve(rows_.size());
  for (const TrRow& r : rows_) {
    kernels::DdpBatchRow out;
    out.user = r.user;
    out.nonzero = r.nonzero;
    if (r.user) {
      out.cost_var = r.cost_var;
      out.cost = CostOf(r.cost_var);  // resolved once instead of per lane
    } else {
      out.db = kernels::MonoSpan{pv.mono_data(r.db), pv.mono_len(r.db)};
    }
    p.ddp_rows.push_back(out);
  }
  return p;
}

std::string IrDdpExpression::ToString(const AnnotationRegistry& registry) const {
  const size_t num_exec = num_executions();
  if (num_exec == 0) return "0";
  const PoolView pv = view();
  std::string out;
  for (size_t e = 0; e < num_exec; ++e) {
    if (e > 0) out += " + ";
    for (uint32_t i = exec_off_[e]; i < exec_off_[e + 1]; ++i) {
      if (i > exec_off_[e]) out += "·";
      const TrRow& r = rows_[i];
      if (r.user) {
        out += "⟨";
        out += registry.name(r.cost_var);
        out += ",1⟩";
      } else {
        out += "⟨0,[";
        out += MonomialFromSpan(pv.mono_data(r.db), pv.mono_len(r.db))
                   .ToString(registry);
        out += "]";
        out += r.nonzero ? "≠0" : "=0";
        out += "⟩";
      }
    }
  }
  return out;
}

DdpTransitionView IrDdpExpression::ddp_transition(size_t exec,
                                                  size_t t) const {
  const TrRow& r = rows_[exec_off_[exec] + t];
  DdpTransitionView view;
  view.user = r.user;
  view.cost_var = r.cost_var;
  if (!r.user) {
    const PoolView pv = this->view();
    view.db = pv.mono_data(r.db);
    view.db_len = pv.mono_len(r.db);
  }
  view.nonzero = r.nonzero;
  return view;
}

}  // namespace ir
}  // namespace prox
