#include "ir/agg_expr.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "common/str_util.h"
#include "exec/thread_pool.h"
#include "ir/metrics.h"
#include "provenance/aggregate_expr.h"
#include "provenance/guard.h"
#include "provenance/monomial.h"

namespace prox {
namespace ir {

namespace {

/// Truth of a guard row under a materialized valuation — same decision
/// sequence as Guard::Evaluate (body product, then the comparison).
bool GuardTrue(const PoolView& pv, GuardId id, const MaterializedValuation& v) {
  const GuardRow& g = pv.guard(id);
  const AnnotationId* f = pv.mono_data(g.mono);
  const uint32_t len = pv.mono_len(g.mono);
  bool body_true = true;
  for (uint32_t k = 0; k < len; ++k) {
    if (!v.truth(f[k])) {
      body_true = false;
      break;
    }
  }
  const double value = body_true ? g.scalar : 0.0;
  switch (g.op) {
    case CompareOp::kGt:
      return value > g.threshold;
    case CompareOp::kGe:
      return value >= g.threshold;
    case CompareOp::kLt:
      return value < g.threshold;
    case CompareOp::kLe:
      return value <= g.threshold;
    case CompareOp::kEq:
      return value == g.threshold;
    case CompareOp::kNe:
      return value != g.threshold;
  }
  return false;
}

}  // namespace

void IrAggregateExpression::AddTermIds(MonomialId mono, GuardId guard,
                                       AnnotationId group, AggValue value) {
  mono_.push_back(mono);
  guard_.push_back(guard);
  group_.push_back(group);
  value_.push_back(value);
}

void IrAggregateExpression::Canonicalize() {
  const size_t n = mono_.size();
  const PoolView pv = view();

  // Index sort with the exact decision order of the legacy TermLess
  // comparator (group, monomial content, guard-less first, guard content):
  // same input order + equivalent comparator => the same introsort
  // permutation, so equal-keyed merges fold in the same float order.
  std::vector<uint32_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0u);
  std::sort(idx.begin(), idx.end(), [&](uint32_t a, uint32_t b) {
    if (group_[a] != group_[b]) return group_[a] < group_[b];
    const int mc = pv.CompareMonomials(mono_[a], mono_[b]);
    if (mc != 0) return mc < 0;
    const bool ag = guard_[a] != kNoGuard;
    const bool bg = guard_[b] != kNoGuard;
    if (ag != bg) return bg;  // guard-less terms first
    if (!ag) return false;
    return pv.CompareGuards(guard_[a], guard_[b]) < 0;
  });

  std::vector<MonomialId> nm;
  std::vector<GuardId> ng;
  std::vector<AnnotationId> ngroup;
  std::vector<AggValue> nv;
  nm.reserve(n);
  ng.reserve(n);
  ngroup.reserve(n);
  nv.reserve(n);
  for (uint32_t i : idx) {
    const bool guard_equal =
        !nm.empty() &&
        ((ng.back() == kNoGuard && guard_[i] == kNoGuard) ||
         (ng.back() != kNoGuard && guard_[i] != kNoGuard &&
          pv.GuardsEqual(ng.back(), guard_[i])));
    if (!nm.empty() && ngroup.back() == group_[i] &&
        pv.MonomialsEqual(nm.back(), mono_[i]) && guard_equal) {
      nv.back() = MergeAggValues(agg_, nv.back(), value_[i]);
    } else {
      nm.push_back(mono_[i]);
      ng.push_back(guard_[i]);
      ngroup.push_back(group_[i]);
      nv.push_back(value_[i]);
    }
  }
  mono_ = std::move(nm);
  guard_ = std::move(ng);
  group_ = std::move(ngroup);
  value_ = std::move(nv);

  RebuildDerived();
}

void IrAggregateExpression::CanonicalizeSorted() {
  const PoolView pv = view();
  // Strictly ascending under the canonical comparator: already sorted and
  // no equal-keyed pair to merge, so the sort+merge pass is a no-op.
  for (size_t i = 0; i + 1 < mono_.size(); ++i) {
    const size_t a = i;
    const size_t b = i + 1;
    bool strictly_less;
    if (group_[a] != group_[b]) {
      strictly_less = group_[a] < group_[b];
    } else {
      const int mc = pv.CompareMonomials(mono_[a], mono_[b]);
      if (mc != 0) {
        strictly_less = mc < 0;
      } else {
        const bool ag = guard_[a] != kNoGuard;
        const bool bg = guard_[b] != kNoGuard;
        if (ag != bg) {
          strictly_less = bg;  // guard-less terms first
        } else if (!ag) {
          strictly_less = false;  // equal keys => must merge
        } else {
          strictly_less = pv.CompareGuards(guard_[a], guard_[b]) < 0;
        }
      }
    }
    if (!strictly_less) {
      Canonicalize();
      return;
    }
  }
  RebuildDerived();
}

void IrAggregateExpression::RebuildDerived() {
  const PoolView pv = view();
  // Rows are group-sorted, so distinct groups are run starts.
  groups_.clear();
  group_dense_.clear();
  group_dense_.reserve(mono_.size());
  size_ = 0;
  for (size_t i = 0; i < mono_.size(); ++i) {
    if (groups_.empty() || groups_.back() != group_[i]) {
      groups_.push_back(group_[i]);
    }
    group_dense_.push_back(static_cast<uint32_t>(groups_.size() - 1));
    size_ += pv.mono_len(mono_[i]);
    if (guard_[i] != kNoGuard) size_ += pv.mono_len(pv.guard(guard_[i]).mono);
  }
}

int64_t IrAggregateExpression::Size() const {
  CountSizeCacheHit();
  return size_;
}

void IrAggregateExpression::CollectAnnotations(
    std::vector<AnnotationId>* out) const {
  const PoolView pv = view();
  for (size_t i = 0; i < mono_.size(); ++i) {
    const AnnotationId* f = pv.mono_data(mono_[i]);
    out->insert(out->end(), f, f + pv.mono_len(mono_[i]));
    if (guard_[i] != kNoGuard) {
      const GuardRow& g = pv.guard(guard_[i]);
      const AnnotationId* gf = pv.mono_data(g.mono);
      out->insert(out->end(), gf, gf + pv.mono_len(g.mono));
    }
    if (group_[i] != kNoAnnotation) out->push_back(group_[i]);
  }
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
}

std::unique_ptr<ProvenanceExpression> IrAggregateExpression::Apply(
    const Homomorphism& h) const {
  const bool worker = exec::InParallelWorker();
  auto out = std::make_unique<IrAggregateExpression>(agg_, pool_);
  std::shared_ptr<TermPool> fresh;
  TermPool* target = pool_.get();
  if (worker) {
    fresh = std::make_shared<TermPool>();
    target = fresh.get();
  }
  const PoolView pv = view();

  // Per-Apply memos so each distinct source monomial / guard maps once.
  std::vector<MonomialId> mono_memo(pool_->num_monomials(), kInvalidMonomial);
  std::vector<MonomialId> mono_memo_ov(
      overlay_ ? overlay_->num_monomials() : 0, kInvalidMonomial);
  std::vector<GuardId> guard_memo(pool_->num_guards(), kInvalidMonomial);
  std::vector<GuardId> guard_memo_ov(overlay_ ? overlay_->num_guards() : 0,
                                     kInvalidMonomial);
  std::vector<AnnotationId> scratch;
  uint64_t shared_terms = 0;
  uint64_t rewritten_terms = 0;

  auto map_mono = [&](MonomialId src) -> MonomialId {
    MonomialId& slot = (src & kOverlayBit)
                           ? mono_memo_ov[src & ~kOverlayBit]
                           : mono_memo[src];
    if (slot != kInvalidMonomial) return slot;
    const AnnotationId* data = pv.mono_data(src);
    const uint32_t len = pv.mono_len(src);
    scratch.assign(data, data + len);
    bool changed = false;
    for (uint32_t i = 0; i < len; ++i) {
      const AnnotationId m = h.Map(scratch[i]);
      if (m != scratch[i]) {
        scratch[i] = m;
        changed = true;
      }
    }
    MonomialId dst;
    if (!changed && !(src & kOverlayBit)) {
      dst = src;  // untouched interned span: share it
    } else {
      if (changed) std::sort(scratch.begin(), scratch.end());
      dst = worker ? (target->AppendMonomial(scratch.data(), scratch.size()) |
                      kOverlayBit)
                   : target->InternMonomial(scratch.data(), scratch.size());
    }
    slot = dst;
    return dst;
  };

  auto map_guard = [&](GuardId src) -> GuardId {
    GuardId& slot = (src & kOverlayBit) ? guard_memo_ov[src & ~kOverlayBit]
                                        : guard_memo[src];
    if (slot != kInvalidMonomial) return slot;
    const GuardRow& g = pv.guard(src);
    const MonomialId gm = map_mono(g.mono);
    GuardId dst;
    if (gm == g.mono && !(src & kOverlayBit)) {
      dst = src;  // guard body untouched: keep the interned row
    } else if (worker) {
      dst = target->AppendGuard(gm, g.scalar, g.op, g.threshold) | kOverlayBit;
    } else {
      dst = target->InternGuard(gm, g.scalar, g.op, g.threshold);
    }
    slot = dst;
    return dst;
  };

  const size_t n = mono_.size();
  out->mono_.reserve(n);
  out->guard_.reserve(n);
  out->group_.reserve(n);
  out->value_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const MonomialId m = map_mono(mono_[i]);
    if (m == mono_[i]) {
      ++shared_terms;
    } else {
      ++rewritten_terms;
    }
    out->mono_.push_back(m);
    out->guard_.push_back(guard_[i] == kNoGuard ? kNoGuard
                                                : map_guard(guard_[i]));
    out->group_.push_back(h.Map(group_[i]));
    out->value_.push_back(value_[i]);
  }
  if (fresh && (fresh->num_monomials() > 0 || fresh->num_guards() > 0)) {
    out->overlay_ = std::move(fresh);
  }
  CountApplyTermShared(shared_terms);
  CountApplyTermRewritten(rewritten_terms);
  out->Canonicalize();
  return out;
}

EvalResult IrAggregateExpression::Evaluate(
    const MaterializedValuation& v) const {
  const PoolView pv = view();
  // Same accumulation as the legacy tree: one slot per distinct group
  // (groups with no surviving tensor evaluate to 0), folded in row order —
  // rows are group-sorted exactly like the legacy term order, so the float
  // fold sequence per slot is identical.
  struct Slot {
    double value = 0.0;
    double count = 0.0;
    bool seen = false;
  };
  std::vector<Slot> slots(groups_.size());
  for (size_t i = 0; i < mono_.size(); ++i) {
    const AnnotationId* f = pv.mono_data(mono_[i]);
    const uint32_t len = pv.mono_len(mono_[i]);
    bool alive = true;
    for (uint32_t k = 0; k < len; ++k) {
      if (!v.truth(f[k])) {
        alive = false;
        break;
      }
    }
    if (alive && guard_[i] != kNoGuard) alive = GuardTrue(pv, guard_[i], v);
    if (!alive) continue;
    Slot& slot = slots[group_dense_[i]];
    slot.value = FoldAggregate(agg_, slot.value, value_[i], !slot.seen);
    slot.count += value_[i].count;
    slot.seen = true;
  }
  auto finalize = [this](const Slot& slot) {
    if (agg_ != AggKind::kAvg) return slot.value;
    return slot.count > 0 ? slot.value / slot.count : 0.0;
  };
  if (groups_.size() == 1 && groups_[0] == kNoAnnotation) {
    return EvalResult::Scalar(finalize(slots[0]));
  }
  std::vector<EvalResult::Coord> coords;
  coords.reserve(groups_.size());
  for (size_t g = 0; g < groups_.size(); ++g) {
    coords.push_back(
        EvalResult::Coord{groups_[g], finalize(slots[g]), slots[g].count});
  }
  return EvalResult::Vector(std::move(coords));
}

EvalResult IrAggregateExpression::ProjectEvalResult(
    const EvalResult& base, const Homomorphism& h) const {
  return ProjectAggregateEvalResult(agg_, base, h);
}

kernels::BatchProgram IrAggregateExpression::LowerBatch() const {
  const PoolView pv = view();
  kernels::BatchProgram p;
  p.shape = kernels::BatchProgram::Shape::kAggregate;
  p.agg = agg_;
  switch (agg_) {
    case AggKind::kMax:
      p.fold = kernels::AggFold::kMax;
      break;
    case AggKind::kMin:
      p.fold = kernels::AggFold::kMin;
      break;
    case AggKind::kSum:
    case AggKind::kCount:
    case AggKind::kAvg:
      p.fold = kernels::AggFold::kAdd;
      break;
  }
  p.kind = (groups_.size() == 1 && groups_[0] == kNoAnnotation)
               ? EvalResult::Kind::kScalar
               : EvalResult::Kind::kVector;
  p.groups = groups_.data();
  p.num_groups = groups_.size();
  p.agg_rows.reserve(mono_.size());
  for (size_t i = 0; i < mono_.size(); ++i) {
    kernels::AggBatchRow r;
    r.mono = kernels::MonoSpan{pv.mono_data(mono_[i]), pv.mono_len(mono_[i])};
    if (guard_[i] != kNoGuard) {
      const GuardRow& g = pv.guard(guard_[i]);
      r.guard_mono = kernels::MonoSpan{pv.mono_data(g.mono), pv.mono_len(g.mono)};
      r.has_guard = 1;
      // GuardTrue's value is `scalar` when the body monomial holds and 0.0
      // otherwise, so the comparison folds to these two booleans.
      r.guard_if_true = kernels::EvalCompare(g.scalar, g.op, g.threshold);
      r.guard_if_false = kernels::EvalCompare(0.0, g.op, g.threshold);
    }
    r.group = group_dense_[i];
    r.contribution =
        (agg_ == AggKind::kCount) ? value_[i].count : value_[i].value;
    r.count_add = value_[i].count;
    p.agg_rows.push_back(r);
  }
  return p;
}

std::unique_ptr<ProvenanceExpression> IrAggregateExpression::Clone() const {
  return std::make_unique<IrAggregateExpression>(*this);
}

std::string IrAggregateExpression::ToString(
    const AnnotationRegistry& registry) const {
  if (mono_.empty()) return "0";
  const PoolView pv = view();
  std::string out;
  for (size_t i = 0; i < mono_.size(); ++i) {
    if (i > 0) out += " ⊕ ";
    out += MonomialFromSpan(pv.mono_data(mono_[i]), pv.mono_len(mono_[i]))
               .ToString(registry);
    if (guard_[i] != kNoGuard) {
      const GuardRow& g = pv.guard(guard_[i]);
      const Guard gu(MonomialFromSpan(pv.mono_data(g.mono),
                                      pv.mono_len(g.mono)),
                     g.scalar, g.op, g.threshold);
      out += "·";
      out += gu.ToString(registry);
    }
    out += " ⊗ (";
    out += FormatDouble(value_[i].value, 1);
    out += ", ";
    out += FormatDouble(value_[i].count, 0);
    out += ")";
  }
  return out;
}

AggTermView IrAggregateExpression::agg_term(size_t i) const {
  const PoolView pv = view();
  AggTermView view;
  view.mono = pv.mono_data(mono_[i]);
  view.mono_len = pv.mono_len(mono_[i]);
  view.group = group_[i];
  view.value = value_[i];
  if (guard_[i] != kNoGuard) {
    const GuardRow& g = pv.guard(guard_[i]);
    view.has_guard = true;
    view.guard_mono = pv.mono_data(g.mono);
    view.guard_len = pv.mono_len(g.mono);
    view.guard_scalar = g.scalar;
    view.guard_op = g.op;
    view.guard_threshold = g.threshold;
  }
  return view;
}

}  // namespace ir
}  // namespace prox
