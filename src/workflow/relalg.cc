#include "workflow/relalg.h"

#include <algorithm>
#include <map>

namespace prox {

Result<size_t> KRelation::ColumnIndex(const std::string& column) const {
  auto it = std::find(columns_.begin(), columns_.end(), column);
  if (it == columns_.end()) {
    return Status::NotFound("no column " + column + " in relation " + name_);
  }
  return static_cast<size_t>(it - columns_.begin());
}

Status KRelation::InsertBase(std::vector<std::string> values,
                             AnnotationId annotation) {
  Polynomial provenance = annotation == kNoAnnotation
                              ? Polynomial::One()
                              : Polynomial::FromVar(annotation);
  return Insert(std::move(values), std::move(provenance));
}

Status KRelation::Insert(std::vector<std::string> values,
                         Polynomial provenance) {
  if (values.size() != columns_.size()) {
    return Status::InvalidArgument(
        "tuple arity mismatch in relation " + name_ + ": expected " +
        std::to_string(columns_.size()) + ", got " +
        std::to_string(values.size()));
  }
  tuples_.push_back(KTuple{std::move(values), std::move(provenance)});
  return Status::OK();
}

std::string KRelation::ToString(const AnnotationRegistry& registry) const {
  std::string out = name_ + "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i];
  }
  out += "):\n";
  auto name_fn = [&registry](Polynomial::Var v) { return registry.name(v); };
  for (const KTuple& t : tuples_) {
    out += "  (";
    for (size_t i = 0; i < t.values.size(); ++i) {
      if (i > 0) out += ", ";
      out += t.values[i];
    }
    out += ")  @ " + t.provenance.ToString(name_fn) + "\n";
  }
  return out;
}

namespace relalg {

KRelation Select(const KRelation& input,
                 const std::function<bool(const KTuple&)>& pred) {
  KRelation out("select(" + input.name() + ")", input.columns());
  for (const KTuple& t : input.tuples()) {
    if (pred(t)) out.Insert(t.values, t.provenance);
  }
  return out;
}

Result<KRelation> SelectEq(const KRelation& input, const std::string& column,
                           const std::string& value) {
  size_t idx;
  PROX_ASSIGN_OR_RETURN(idx, input.ColumnIndex(column));
  return Select(input, [idx, &value](const KTuple& t) {
    return t.values[idx] == value;
  });
}

Result<KRelation> Project(const KRelation& input,
                          const std::vector<std::string>& columns) {
  std::vector<size_t> indices;
  for (const std::string& c : columns) {
    size_t idx;
    PROX_ASSIGN_OR_RETURN(idx, input.ColumnIndex(c));
    indices.push_back(idx);
  }
  // Duplicate elimination sums provenance — the + of [21].
  std::map<std::vector<std::string>, Polynomial> merged;
  std::vector<std::vector<std::string>> order;  // first-seen order
  for (const KTuple& t : input.tuples()) {
    std::vector<std::string> projected;
    projected.reserve(indices.size());
    for (size_t idx : indices) projected.push_back(t.values[idx]);
    auto [it, inserted] = merged.emplace(projected, t.provenance);
    if (inserted) {
      order.push_back(std::move(projected));
    } else {
      it->second += t.provenance;
    }
  }
  KRelation out("project(" + input.name() + ")", columns);
  for (const auto& key : order) {
    out.Insert(key, merged.at(key));
  }
  return out;
}

Result<KRelation> NaturalJoin(const KRelation& left,
                              const KRelation& right) {
  // Shared columns join; the output schema is left ++ (right \ shared).
  std::vector<std::pair<size_t, size_t>> shared;  // (left idx, right idx)
  std::vector<size_t> right_extra;
  for (size_t r = 0; r < right.columns().size(); ++r) {
    auto l = left.ColumnIndex(right.columns()[r]);
    if (l.ok()) {
      shared.emplace_back(l.value(), r);
    } else {
      right_extra.push_back(r);
    }
  }
  if (shared.empty()) {
    return Status::InvalidArgument("natural join of " + left.name() +
                                   " and " + right.name() +
                                   " has no shared columns");
  }
  std::vector<std::string> columns = left.columns();
  for (size_t r : right_extra) columns.push_back(right.columns()[r]);
  KRelation out("join(" + left.name() + "," + right.name() + ")", columns);
  for (const KTuple& lt : left.tuples()) {
    for (const KTuple& rt : right.tuples()) {
      bool match = true;
      for (const auto& [li, ri] : shared) {
        if (lt.values[li] != rt.values[ri]) {
          match = false;
          break;
        }
      }
      if (!match) continue;
      std::vector<std::string> values = lt.values;
      for (size_t r : right_extra) values.push_back(rt.values[r]);
      // Joint use of data: provenance multiplies ([21]).
      out.Insert(std::move(values), lt.provenance * rt.provenance);
    }
  }
  return out;
}

Result<KRelation> Union(const KRelation& a, const KRelation& b) {
  if (a.columns() != b.columns()) {
    return Status::InvalidArgument("union of incompatible schemas");
  }
  std::map<std::vector<std::string>, Polynomial> merged;
  std::vector<std::vector<std::string>> order;
  auto add = [&](const KRelation& rel) {
    for (const KTuple& t : rel.tuples()) {
      auto [it, inserted] = merged.emplace(t.values, t.provenance);
      if (inserted) {
        order.push_back(t.values);
      } else {
        it->second += t.provenance;
      }
    }
  };
  add(a);
  add(b);
  KRelation out("union(" + a.name() + "," + b.name() + ")", a.columns());
  for (const auto& key : order) out.Insert(key, merged.at(key));
  return out;
}

}  // namespace relalg

}  // namespace prox
