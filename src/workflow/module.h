#ifndef PROX_WORKFLOW_MODULE_H_
#define PROX_WORKFLOW_MODULE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "provenance/aggregate_expr.h"
#include "workflow/database.h"

namespace prox {

/// \brief A provenance-carrying data item flowing between workflow modules
/// on a dataflow edge: the record payload plus the provenance pieces a
/// downstream aggregator combines into tensors (Example 2.2.1's
/// `U_i · [S_i·U_i ⊗ n > 2] ⊗ (score, 1)` shape).
struct FlowRecord {
  /// Record payload (e.g. UID, movie title, score) keyed positionally by
  /// the producing module's declared schema.
  std::vector<std::string> values;
  /// The ·-product of annotations behind this record.
  Monomial provenance;
  /// Optional comparison guard attached by sanitizing logic.
  std::optional<Guard> guard;
};

/// A batch of records on one dataflow edge.
struct FlowBundle {
  std::vector<std::string> schema;
  std::vector<FlowRecord> records;
};

/// \brief Shared execution state of one workflow run: the persistent
/// database plus the named dataflow edges produced so far.
struct WorkflowContext {
  WorkflowDatabase* db = nullptr;
  AnnotationRegistry* registry = nullptr;
  std::map<std::string, FlowBundle> edges;

  Result<const FlowBundle*> Edge(const std::string& name) const {
    auto it = edges.find(name);
    if (it == edges.end()) {
      return Status::NotFound("no dataflow edge " + name);
    }
    return const_cast<const FlowBundle*>(&it->second);
  }
};

/// \brief A workflow processing step (Section 2.1): an atomic module is a
/// query over its input edges and the underlying database; it may also
/// update the database. Modules run in specification order.
class Module {
 public:
  explicit Module(std::string name) : name_(std::move(name)) {}
  virtual ~Module() = default;

  const std::string& name() const { return name_; }

  /// Executes the module's logic against the shared context.
  virtual Status Run(WorkflowContext* ctx) = 0;

 private:
  std::string name_;
};

/// \brief A workflow specification: an ordered list of modules (the
/// repeated application of Section 2.1's FSM view). Running it produces
/// updated tables, dataflow edges, and — through aggregator modules — a
/// provenance-annotated result.
class Workflow {
 public:
  void AddModule(std::unique_ptr<Module> module) {
    modules_.push_back(std::move(module));
  }

  size_t num_modules() const { return modules_.size(); }
  const Module& module(size_t i) const { return *modules_[i]; }

  /// Runs all modules in order; stops at the first failure.
  Status Run(WorkflowContext* ctx) {
    for (auto& module : modules_) {
      PROX_RETURN_NOT_OK(module->Run(ctx));
    }
    return Status::OK();
  }

 private:
  std::vector<std::unique_ptr<Module>> modules_;
};

}  // namespace prox

#endif  // PROX_WORKFLOW_MODULE_H_
