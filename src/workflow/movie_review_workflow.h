#ifndef PROX_WORKFLOW_MOVIE_REVIEW_WORKFLOW_H_
#define PROX_WORKFLOW_MOVIE_REVIEW_WORKFLOW_H_

#include <memory>
#include <string>
#include <vector>

#include "semantics/entity_table.h"
#include "workflow/module.h"

namespace prox {

/// A raw review as crawled from a platform, before sanitization.
struct RawReview {
  std::string uid;
  std::string movie;
  double score = 0.0;
};

/// \brief Reviewing module, collection half (Figure 2.1): ingests the raw
/// reviews of one platform, updates the Stats table (NumRate count and
/// MaxRate per user — "each such module updates statistics in the Stats
/// table"), and emits the raw stream on edge `<platform>.raw`.
///
/// Stats tuples are annotated S_<uid> on first touch; the annotations feed
/// the sanitizer's guards.
class ReviewCollectorModule : public Module {
 public:
  ReviewCollectorModule(std::string platform, std::vector<RawReview> reviews)
      : Module("collect:" + platform),
        platform_(std::move(platform)),
        reviews_(std::move(reviews)) {}

  Status Run(WorkflowContext* ctx) override;

 private:
  std::string platform_;
  std::vector<RawReview> reviews_;
};

/// \brief Reviewing module, sanitizing half (Figure 2.1): joins the raw
/// stream with Users and Stats, keeps reviews of users listed under
/// `role` who are "active" (more than `min_reviews` reviews), and emits a
/// sanitized stream whose records carry provenance
///   U_uid  with guard  [S_uid · U_uid ⊗ NumRate > min_reviews]
/// — exactly the sub-expressions of Example 2.2.1.
class SanitizingModule : public Module {
 public:
  SanitizingModule(std::string platform, std::string role,
                   double min_reviews = 2.0)
      : Module("sanitize:" + platform),
        platform_(std::move(platform)),
        role_(std::move(role)),
        min_reviews_(min_reviews) {}

  Status Run(WorkflowContext* ctx) override;

 private:
  std::string platform_;
  std::string role_;
  double min_reviews_;
};

/// \brief Aggregator module (Figure 2.1): combines all sanitized streams
/// into per-movie aggregates, writing the Movies result table and keeping
/// the full provenance expression
///   ⊕_i  U_i · [S_i·U_i ⊗ n_i > 2] ⊗ (score_i, 1)
/// grouped per movie (Example 2.2.1's provenance-aware MaxRate value).
class AggregatorModule : public Module {
 public:
  AggregatorModule(std::vector<std::string> input_edges, AggKind agg)
      : Module("aggregate"),
        input_edges_(std::move(input_edges)),
        agg_(agg) {}

  Status Run(WorkflowContext* ctx) override;

  /// The provenance of the aggregated result (valid after Run).
  const AggregateExpression* provenance() const { return provenance_.get(); }
  std::unique_ptr<AggregateExpression> TakeProvenance() {
    return std::move(provenance_);
  }

 private:
  std::vector<std::string> input_edges_;
  AggKind agg_;
  std::unique_ptr<AggregateExpression> provenance_;
};

/// \brief Convenience assembly of the Figure 2.1 workflow: a Users table,
/// per-platform collector + sanitizer pairs, and a final aggregator.
///
/// Usage:
///   MovieReviewWorkflowBuilder builder(&registry);
///   builder.AddUser("u1", "F", "audience");
///   builder.AddPlatform("imdb", "audience", {{"u1", "Match Point", 3}});
///   auto run = builder.Run(AggKind::kMax);   // provenance + tables
struct MovieReviewRun {
  WorkflowDatabase db;
  std::unique_ptr<AggregateExpression> provenance;
  /// The users' attribute tuples for the semantics layer (Gender, Role),
  /// with user annotations registered against its rows — plug it into a
  /// SemanticContext to drive constraints and attribute valuations.
  EntityTable user_attributes;
};

class MovieReviewWorkflowBuilder {
 public:
  explicit MovieReviewWorkflowBuilder(AnnotationRegistry* registry);

  /// Registers a user with a U_<uid> annotation.
  Status AddUser(const std::string& uid, const std::string& gender,
                 const std::string& role);

  /// Adds a reviewing platform crawling `reviews`, sanitized for `role`.
  void AddPlatform(const std::string& platform, const std::string& role,
                   std::vector<RawReview> reviews, double min_reviews = 2.0);

  /// Builds the database, runs collectors, sanitizers and the aggregator.
  Result<MovieReviewRun> Run(AggKind agg);

 private:
  struct Platform {
    std::string name;
    std::string role;
    std::vector<RawReview> reviews;
    double min_reviews;
  };

  AnnotationRegistry* registry_;
  std::vector<std::vector<std::string>> users_;  // uid, gender, role
  std::vector<Platform> platforms_;
};

}  // namespace prox

#endif  // PROX_WORKFLOW_MOVIE_REVIEW_WORKFLOW_H_
