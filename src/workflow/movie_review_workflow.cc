#include "workflow/movie_review_workflow.h"

#include <cstdlib>

#include "common/str_util.h"

namespace prox {

namespace {

/// Interns `name` in `domain`, returning the existing annotation when the
/// name was registered before.
AnnotationId InternAnnotation(AnnotationRegistry* registry,
                              const std::string& domain_name,
                              const std::string& name) {
  auto found = registry->Find(name);
  if (found.ok()) return found.value();
  DomainId domain = registry->AddDomain(domain_name);
  return registry->Add(domain, name).MoveValue();
}

}  // namespace

Status ReviewCollectorModule::Run(WorkflowContext* ctx) {
  AnnotatedTable* stats;
  PROX_ASSIGN_OR_RETURN(stats, ctx->db->Table("Stats"));

  FlowBundle bundle;
  bundle.schema = {"UID", "Movie", "Score"};
  for (const RawReview& review : reviews_) {
    // Update per-user statistics, annotating the Stats tuple S_<uid> on
    // first touch.
    std::vector<size_t> hits = stats->Find("UID", review.uid);
    if (hits.empty()) {
      AnnotationId s_ann =
          InternAnnotation(ctx->registry, "stats", "S_" + review.uid);
      PROX_RETURN_NOT_OK(stats->Insert(
          {review.uid, "1", FormatDouble(review.score, 1)}, s_ann));
    } else {
      AnnotatedTuple* row = stats->mutable_row(hits[0]);
      size_t num_idx = stats->ColumnIndex("NumRate").value();
      size_t max_idx = stats->ColumnIndex("MaxRate").value();
      int num = std::atoi(row->values[num_idx].c_str()) + 1;
      double max_rate = std::strtod(row->values[max_idx].c_str(), nullptr);
      if (review.score > max_rate) max_rate = review.score;
      row->values[num_idx] = std::to_string(num);
      row->values[max_idx] = FormatDouble(max_rate, 1);
    }

    FlowRecord record;
    record.values = {review.uid, review.movie,
                     FormatDouble(review.score, 1)};
    bundle.records.push_back(std::move(record));
  }
  ctx->edges[platform_ + ".raw"] = std::move(bundle);
  return Status::OK();
}

Status SanitizingModule::Run(WorkflowContext* ctx) {
  const FlowBundle* raw;
  PROX_ASSIGN_OR_RETURN(raw, ctx->Edge(platform_ + ".raw"));
  const AnnotatedTable* users;
  PROX_ASSIGN_OR_RETURN(users, ctx->db->Table("Users"));
  const AnnotatedTable* stats;
  PROX_ASSIGN_OR_RETURN(stats, ctx->db->Table("Stats"));

  FlowBundle sanitized;
  sanitized.schema = {"UID", "Movie", "Score"};
  for (const FlowRecord& record : raw->records) {
    const std::string& uid = record.values[0];

    // Join with Users: keep only reviews of users listed under the
    // module's role.
    std::vector<size_t> user_rows = users->Find("UID", uid);
    if (user_rows.empty()) continue;
    if (users->Value(user_rows[0], "Role") != role_) continue;
    AnnotationId u_ann = users->row(user_rows[0]).annotation;

    // Join with Stats: attach the activity guard
    // [S·U ⊗ NumRate > min_reviews].
    std::vector<size_t> stat_rows = stats->Find("UID", uid);
    if (stat_rows.empty()) continue;
    AnnotationId s_ann = stats->row(stat_rows[0]).annotation;
    double num_rate =
        std::strtod(stats->Value(stat_rows[0], "NumRate").c_str(), nullptr);

    FlowRecord out;
    out.values = record.values;
    out.provenance = Monomial({u_ann});
    out.guard = Guard(Monomial({s_ann, u_ann}), num_rate, CompareOp::kGt,
                      min_reviews_);
    sanitized.records.push_back(std::move(out));
  }
  ctx->edges[platform_ + ".sanitized"] = std::move(sanitized);
  return Status::OK();
}

Status AggregatorModule::Run(WorkflowContext* ctx) {
  provenance_ = std::make_unique<AggregateExpression>(agg_);
  AnnotatedTable* movies;
  PROX_ASSIGN_OR_RETURN(movies, ctx->db->Table("Movies"));

  for (const std::string& edge : input_edges_) {
    const FlowBundle* bundle;
    PROX_ASSIGN_OR_RETURN(bundle, ctx->Edge(edge));
    for (const FlowRecord& record : bundle->records) {
      const std::string& movie = record.values[1];
      double score = std::strtod(record.values[2].c_str(), nullptr);
      AnnotationId movie_ann =
          InternAnnotation(ctx->registry, "movie", movie);

      TensorTerm term;
      term.monomial = record.provenance * Monomial({movie_ann});
      term.guard = record.guard;
      term.group = movie_ann;
      term.value = AggValue{score, 1.0};
      provenance_->AddTerm(std::move(term));
    }
  }
  provenance_->Simplify();

  // Materialize the aggregated Movies table (all-true semantics).
  MaterializedValuation all_true(ctx->registry->size());
  EvalResult result = provenance_->Evaluate(all_true);
  if (result.kind() == EvalResult::Kind::kVector) {
    for (const auto& coord : result.coords()) {
      PROX_RETURN_NOT_OK(movies->Insert(
          {ctx->registry->name(coord.group), FormatDouble(coord.value, 1)},
          coord.group));
    }
  }
  return Status::OK();
}

MovieReviewWorkflowBuilder::MovieReviewWorkflowBuilder(
    AnnotationRegistry* registry)
    : registry_(registry) {}

Status MovieReviewWorkflowBuilder::AddUser(const std::string& uid,
                                           const std::string& gender,
                                           const std::string& role) {
  users_.push_back({uid, gender, role});
  return Status::OK();
}

void MovieReviewWorkflowBuilder::AddPlatform(const std::string& platform,
                                             const std::string& role,
                                             std::vector<RawReview> reviews,
                                             double min_reviews) {
  platforms_.push_back(
      Platform{platform, role, std::move(reviews), min_reviews});
}

Result<MovieReviewRun> MovieReviewWorkflowBuilder::Run(AggKind agg) {
  MovieReviewRun run;
  PROX_RETURN_NOT_OK(
      run.db.CreateTable("Users", {"UID", "Gender", "Role"}));
  PROX_RETURN_NOT_OK(
      run.db.CreateTable("Stats", {"UID", "NumRate", "MaxRate"}));
  PROX_RETURN_NOT_OK(run.db.CreateTable("Movies", {"Movie", "Agg"}));

  // Register users in both stores: the workflow's Users table (queried by
  // sanitizers) and the semantics EntityTable (consulted by constraints
  // and attribute valuations), with the annotation linked to its row.
  run.user_attributes = EntityTable("Users");
  AttrId gender_attr = run.user_attributes.AddAttribute("Gender");
  AttrId role_attr = run.user_attributes.AddAttribute("Role");
  (void)gender_attr;
  (void)role_attr;
  AnnotatedTable* users;
  PROX_ASSIGN_OR_RETURN(users, run.db.Table("Users"));
  DomainId user_domain = registry_->AddDomain("user");
  for (const auto& u : users_) {
    uint32_t row;
    PROX_ASSIGN_OR_RETURN(row, run.user_attributes.AddRow({u[1], u[2]}));
    std::string name = "U_" + u[0];
    AnnotationId ann;
    auto found = registry_->Find(name);
    if (found.ok()) {
      ann = found.value();
    } else {
      PROX_ASSIGN_OR_RETURN(ann, registry_->Add(user_domain, name, row));
    }
    PROX_RETURN_NOT_OK(users->Insert({u[0], u[1], u[2]}, ann));
  }

  Workflow workflow;
  std::vector<std::string> sanitized_edges;
  for (Platform& p : platforms_) {
    workflow.AddModule(std::make_unique<ReviewCollectorModule>(
        p.name, std::move(p.reviews)));
    workflow.AddModule(
        std::make_unique<SanitizingModule>(p.name, p.role, p.min_reviews));
    sanitized_edges.push_back(p.name + ".sanitized");
  }
  auto aggregator =
      std::make_unique<AggregatorModule>(sanitized_edges, agg);
  AggregatorModule* aggregator_ptr = aggregator.get();
  workflow.AddModule(std::move(aggregator));

  WorkflowContext ctx;
  ctx.db = &run.db;
  ctx.registry = registry_;
  PROX_RETURN_NOT_OK(workflow.Run(&ctx));
  run.provenance = aggregator_ptr->TakeProvenance();
  return run;
}

}  // namespace prox
