#include "workflow/database.h"

#include <algorithm>

namespace prox {

Result<size_t> AnnotatedTable::ColumnIndex(const std::string& column) const {
  auto it = std::find(columns_.begin(), columns_.end(), column);
  if (it == columns_.end()) {
    return Status::NotFound("no column " + column + " in table " + name_);
  }
  return static_cast<size_t>(it - columns_.begin());
}

Status AnnotatedTable::Insert(std::vector<std::string> values,
                              AnnotationId annotation) {
  if (values.size() != columns_.size()) {
    return Status::InvalidArgument(
        "tuple arity mismatch in table " + name_ + ": expected " +
        std::to_string(columns_.size()) + ", got " +
        std::to_string(values.size()));
  }
  rows_.push_back(AnnotatedTuple{std::move(values), annotation});
  return Status::OK();
}

const std::string& AnnotatedTable::Value(size_t i,
                                         const std::string& column) const {
  return rows_[i].values[ColumnIndex(column).value()];
}

std::vector<size_t> AnnotatedTable::Find(const std::string& column,
                                         const std::string& value) const {
  std::vector<size_t> out;
  auto idx = ColumnIndex(column);
  if (!idx.ok()) return out;
  for (size_t i = 0; i < rows_.size(); ++i) {
    if (rows_[i].values[idx.value()] == value) out.push_back(i);
  }
  return out;
}

Status WorkflowDatabase::CreateTable(const std::string& name,
                                     std::vector<std::string> columns) {
  if (tables_.count(name) > 0) {
    return Status::AlreadyExists("table already exists: " + name);
  }
  tables_.emplace(name, AnnotatedTable(name, std::move(columns)));
  return Status::OK();
}

Result<AnnotatedTable*> WorkflowDatabase::Table(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no table " + name);
  return &it->second;
}

Result<const AnnotatedTable*> WorkflowDatabase::Table(
    const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no table " + name);
  return const_cast<const AnnotatedTable*>(&it->second);
}

}  // namespace prox
