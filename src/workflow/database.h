#ifndef PROX_WORKFLOW_DATABASE_H_
#define PROX_WORKFLOW_DATABASE_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "provenance/annotation.h"

namespace prox {

/// \brief A tuple of an annotated relation: string field values plus the
/// provenance annotation identifying the tuple (the K-relation view of
/// Section 2.2 — every base tuple carries an element of Ann).
struct AnnotatedTuple {
  std::vector<std::string> values;
  AnnotationId annotation = kNoAnnotation;
};

/// \brief An annotated relation with named columns.
///
/// This is the minimal relational substrate the workflow model of
/// Chapter 2 runs over: modules query and update these tables, and the
/// tuple annotations flow into the provenance the run produces.
class AnnotatedTable {
 public:
  AnnotatedTable() = default;
  AnnotatedTable(std::string name, std::vector<std::string> columns)
      : name_(std::move(name)), columns_(std::move(columns)) {}

  const std::string& name() const { return name_; }
  const std::vector<std::string>& columns() const { return columns_; }
  size_t num_rows() const { return rows_.size(); }

  Result<size_t> ColumnIndex(const std::string& column) const;

  /// Appends a tuple; `values` must match the column count.
  Status Insert(std::vector<std::string> values,
                AnnotationId annotation = kNoAnnotation);

  const AnnotatedTuple& row(size_t i) const { return rows_[i]; }
  AnnotatedTuple* mutable_row(size_t i) { return &rows_[i]; }
  const std::vector<AnnotatedTuple>& rows() const { return rows_; }

  /// Value of `column` in row `i` (column must exist).
  const std::string& Value(size_t i, const std::string& column) const;

  /// Rows whose `column` equals `value`.
  std::vector<size_t> Find(const std::string& column,
                           const std::string& value) const;

 private:
  std::string name_;
  std::vector<std::string> columns_;
  std::vector<AnnotatedTuple> rows_;
};

/// \brief The workflow's global persistent state (Section 2.1): a set of
/// named annotated tables modules read and update.
class WorkflowDatabase {
 public:
  /// Creates a table; fails if the name exists.
  Status CreateTable(const std::string& name,
                     std::vector<std::string> columns);

  Result<AnnotatedTable*> Table(const std::string& name);
  Result<const AnnotatedTable*> Table(const std::string& name) const;

  bool HasTable(const std::string& name) const {
    return tables_.count(name) > 0;
  }

 private:
  std::map<std::string, AnnotatedTable> tables_;
};

}  // namespace prox

#endif  // PROX_WORKFLOW_DATABASE_H_
