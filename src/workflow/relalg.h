#ifndef PROX_WORKFLOW_RELALG_H_
#define PROX_WORKFLOW_RELALG_H_

#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "provenance/annotation.h"
#include "semiring/polynomial.h"

namespace prox {

/// \brief A K-relation: tuples annotated with ℕ[Ann] provenance
/// polynomials — the semiring-provenance model of [21] that Chapter 2
/// builds on. Base tuples carry single annotations; query results carry
/// the polynomials the operators derive:
///   join   → · of the inputs' provenance,
///   union  → + of the inputs' provenance,
///   projection (with duplicate elimination) → + over the merged tuples.
struct KTuple {
  std::vector<std::string> values;
  Polynomial provenance;
};

class KRelation {
 public:
  KRelation() = default;
  KRelation(std::string name, std::vector<std::string> columns)
      : name_(std::move(name)), columns_(std::move(columns)) {}

  const std::string& name() const { return name_; }
  const std::vector<std::string>& columns() const { return columns_; }
  const std::vector<KTuple>& tuples() const { return tuples_; }
  size_t size() const { return tuples_.size(); }

  Result<size_t> ColumnIndex(const std::string& column) const;

  /// Adds a base tuple annotated with a single annotation (1 when
  /// kNoAnnotation, for unannotated/constant data).
  Status InsertBase(std::vector<std::string> values,
                    AnnotationId annotation);

  /// Adds a derived tuple with an explicit provenance polynomial.
  Status Insert(std::vector<std::string> values, Polynomial provenance);

  /// Renders the relation with provenance annotations, for debugging.
  std::string ToString(const AnnotationRegistry& registry) const;

 private:
  std::string name_;
  std::vector<std::string> columns_;
  std::vector<KTuple> tuples_;
};

/// Positive relational-algebra operators with provenance tracking ([21]).
/// All operators are pure: they return new relations.
namespace relalg {

/// σ_pred: keeps tuples satisfying `pred`; provenance unchanged.
KRelation Select(const KRelation& input,
                 const std::function<bool(const KTuple&)>& pred);

/// σ_{column = value} convenience form.
Result<KRelation> SelectEq(const KRelation& input, const std::string& column,
                           const std::string& value);

/// π_cols with duplicate elimination: provenance of equal projected tuples
/// is summed (the + of alternative derivations).
Result<KRelation> Project(const KRelation& input,
                          const std::vector<std::string>& columns);

/// Natural join on the shared column names: provenance of joined tuples is
/// the product of the inputs' provenance.
Result<KRelation> NaturalJoin(const KRelation& left, const KRelation& right);

/// Union (same schema required): equal tuples merge with summed
/// provenance.
Result<KRelation> Union(const KRelation& a, const KRelation& b);

}  // namespace relalg

}  // namespace prox

#endif  // PROX_WORKFLOW_RELALG_H_
