/// \file prox_c.cc
/// \brief Implements the stable C ABI (include/prox_c.h) over
/// prox::engine::Engine.
///
/// Design notes:
///  - Handles are tracked in a global live-handle registry, so calls on a
///    closed (or never-opened) handle return PROX_STATUS_INVALID_HANDLE
///    without dereferencing freed memory. The check is precise until the
///    allocator recycles the address for a later open — acceptable for a
///    misuse diagnostic, and it keeps the use-after-close tests (and
///    ASan) deterministic.
///  - Every out-string is a plain malloc copy released by
///    prox_string_free, so the host never frees across an allocator
///    boundary.
///  - C++ exceptions never cross the ABI: every entry point has a
///    catch-all that maps to PROX_STATUS_INTERNAL.

#include "prox_c.h"

#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_set>
#include <utility>

#include "common/json.h"
#include "engine/codec.h"
#include "engine/engine.h"

struct prox_engine {
  std::unique_ptr<prox::engine::Engine> impl;
};

namespace {

std::mutex& HandleMutex() {
  static std::mutex* mu = new std::mutex;
  return *mu;
}

std::unordered_set<prox_engine_t*>& LiveHandles() {
  static std::unordered_set<prox_engine_t*>* handles =
      new std::unordered_set<prox_engine_t*>;
  return *handles;
}

bool IsLive(prox_engine_t* engine) {
  std::lock_guard<std::mutex> lock(HandleMutex());
  return LiveHandles().count(engine) != 0;
}

/// malloc-copied C string (never nullptr; aborts only if malloc fails,
/// like every other allocation in the library).
char* CopyString(const std::string& text) {
  char* copy = static_cast<char*>(std::malloc(text.size() + 1));
  if (copy == nullptr) return nullptr;
  std::memcpy(copy, text.data(), text.size());
  copy[text.size()] = '\0';
  return copy;
}

prox_status_t MapCode(prox::StatusCode code) {
  switch (code) {
    case prox::StatusCode::kOk:
      return PROX_STATUS_OK;
    case prox::StatusCode::kInvalidArgument:
      return PROX_STATUS_INVALID_ARGUMENT;
    case prox::StatusCode::kNotFound:
      return PROX_STATUS_NOT_FOUND;
    case prox::StatusCode::kAlreadyExists:
      return PROX_STATUS_ALREADY_EXISTS;
    case prox::StatusCode::kOutOfRange:
      return PROX_STATUS_OUT_OF_RANGE;
    case prox::StatusCode::kFailedPrecondition:
      return PROX_STATUS_FAILED_PRECONDITION;
    case prox::StatusCode::kUnimplemented:
      return PROX_STATUS_UNIMPLEMENTED;
    case prox::StatusCode::kInternal:
      return PROX_STATUS_INTERNAL;
  }
  return PROX_STATUS_INTERNAL;
}

/// Ships an engine Response across the boundary: body to the caller,
/// status code as the return value.
prox_status_t ShipResponse(prox::engine::Engine::Response response,
                           char** out_response_json) {
  if (out_response_json != nullptr) {
    *out_response_json = CopyString(response.body);
    if (*out_response_json == nullptr) return PROX_STATUS_INTERNAL;
  }
  return MapCode(response.status.code());
}

/// The common prologue of every per-engine call.
prox_status_t CheckCall(prox_engine_t* engine, char** out_response_json) {
  if (out_response_json != nullptr) *out_response_json = nullptr;
  if (engine == nullptr || !IsLive(engine)) {
    return PROX_STATUS_INVALID_HANDLE;
  }
  return PROX_STATUS_OK;
}

}  // namespace

extern "C" {

int32_t prox_c_api_version(void) { return PROX_C_API_VERSION; }

const char* prox_status_name(prox_status_t status) {
  switch (status) {
    case PROX_STATUS_OK:
      return "OK";
    case PROX_STATUS_INVALID_ARGUMENT:
      return "InvalidArgument";
    case PROX_STATUS_NOT_FOUND:
      return "NotFound";
    case PROX_STATUS_ALREADY_EXISTS:
      return "AlreadyExists";
    case PROX_STATUS_OUT_OF_RANGE:
      return "OutOfRange";
    case PROX_STATUS_FAILED_PRECONDITION:
      return "FailedPrecondition";
    case PROX_STATUS_UNIMPLEMENTED:
      return "Unimplemented";
    case PROX_STATUS_INTERNAL:
      return "Internal";
    case PROX_STATUS_INVALID_HANDLE:
      return "InvalidHandle";
    case PROX_STATUS_NULL_ARGUMENT:
      return "NullArgument";
  }
  return "Unknown";
}

prox_status_t prox_engine_open(const char* config_json,
                               prox_engine_t** out_engine,
                               char** out_error_json) {
  if (out_error_json != nullptr) *out_error_json = nullptr;
  if (out_engine == nullptr) return PROX_STATUS_NULL_ARGUMENT;
  *out_engine = nullptr;
  try {
    const std::string config = config_json != nullptr ? config_json : "";
    prox::Status failure = prox::Status::OK();
    prox::Result<prox::engine::Engine::Options> options =
        prox::engine::Engine::OptionsFromJson(config);
    if (!options.ok()) {
      failure = options.status();
    } else {
      prox::Result<std::unique_ptr<prox::engine::Engine>> engine =
          prox::engine::Engine::Create(options.value());
      if (!engine.ok()) {
        failure = engine.status();
      } else {
        auto* handle = new prox_engine{std::move(engine).value()};
        {
          std::lock_guard<std::mutex> lock(HandleMutex());
          LiveHandles().insert(handle);
        }
        *out_engine = handle;
        return PROX_STATUS_OK;
      }
    }
    if (out_error_json != nullptr) {
      std::string body = prox::WriteJson(prox::engine::StatusToJson(failure));
      body.push_back('\n');
      *out_error_json = CopyString(body);
    }
    return MapCode(failure.code());
  } catch (...) {
    return PROX_STATUS_INTERNAL;
  }
}

prox_status_t prox_engine_close(prox_engine_t* engine) {
  if (engine == nullptr) return PROX_STATUS_OK;
  {
    std::lock_guard<std::mutex> lock(HandleMutex());
    if (LiveHandles().erase(engine) == 0) return PROX_STATUS_INVALID_HANDLE;
  }
  try {
    delete engine;
    return PROX_STATUS_OK;
  } catch (...) {
    return PROX_STATUS_INTERNAL;
  }
}

prox_status_t prox_engine_select(prox_engine_t* engine,
                                 const char* request_json,
                                 char** out_response_json) {
  if (prox_status_t early = CheckCall(engine, out_response_json);
      early != PROX_STATUS_OK) {
    return early;
  }
  if (request_json == nullptr) return PROX_STATUS_NULL_ARGUMENT;
  try {
    return ShipResponse(engine->impl->HandleSelect(request_json),
                        out_response_json);
  } catch (...) {
    return PROX_STATUS_INTERNAL;
  }
}

prox_status_t prox_engine_summarize(prox_engine_t* engine,
                                    const char* request_json,
                                    char** out_response_json,
                                    int32_t* out_cache_hit) {
  if (out_cache_hit != nullptr) *out_cache_hit = -1;
  if (prox_status_t early = CheckCall(engine, out_response_json);
      early != PROX_STATUS_OK) {
    return early;
  }
  if (request_json == nullptr) return PROX_STATUS_NULL_ARGUMENT;
  try {
    prox::engine::Engine::Response response =
        engine->impl->HandleSummarize(request_json);
    using CacheOutcome = prox::engine::Engine::Response::CacheOutcome;
    if (out_cache_hit != nullptr && response.cache != CacheOutcome::kNone) {
      *out_cache_hit = response.cache == CacheOutcome::kHit ? 1 : 0;
    }
    return ShipResponse(std::move(response), out_response_json);
  } catch (...) {
    return PROX_STATUS_INTERNAL;
  }
}

prox_status_t prox_engine_ingest(prox_engine_t* engine,
                                 const char* request_json,
                                 char** out_response_json) {
  if (prox_status_t early = CheckCall(engine, out_response_json);
      early != PROX_STATUS_OK) {
    return early;
  }
  if (request_json == nullptr) return PROX_STATUS_NULL_ARGUMENT;
  try {
    return ShipResponse(engine->impl->HandleIngest(request_json),
                        out_response_json);
  } catch (...) {
    return PROX_STATUS_INTERNAL;
  }
}

prox_status_t prox_engine_summary_groups(prox_engine_t* engine,
                                         char** out_response_json) {
  if (prox_status_t early = CheckCall(engine, out_response_json);
      early != PROX_STATUS_OK) {
    return early;
  }
  try {
    return ShipResponse(engine->impl->HandleGroups(), out_response_json);
  } catch (...) {
    return PROX_STATUS_INTERNAL;
  }
}

prox_status_t prox_engine_evaluate(prox_engine_t* engine,
                                   const char* request_json,
                                   char** out_response_json) {
  if (prox_status_t early = CheckCall(engine, out_response_json);
      early != PROX_STATUS_OK) {
    return early;
  }
  if (request_json == nullptr) return PROX_STATUS_NULL_ARGUMENT;
  try {
    return ShipResponse(engine->impl->HandleEvaluate(request_json),
                        out_response_json);
  } catch (...) {
    return PROX_STATUS_INTERNAL;
  }
}

prox_status_t prox_engine_fingerprint(prox_engine_t* engine,
                                      char** out_fingerprint) {
  if (prox_status_t early = CheckCall(engine, out_fingerprint);
      early != PROX_STATUS_OK) {
    return early;
  }
  if (out_fingerprint == nullptr) return PROX_STATUS_NULL_ARGUMENT;
  try {
    *out_fingerprint = CopyString(engine->impl->fingerprint());
    return *out_fingerprint != nullptr ? PROX_STATUS_OK
                                       : PROX_STATUS_INTERNAL;
  } catch (...) {
    return PROX_STATUS_INTERNAL;
  }
}

void prox_string_free(char* str) { std::free(str); }

}  // extern "C"
