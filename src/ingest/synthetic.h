#ifndef PROX_INGEST_SYNTHETIC_H_
#define PROX_INGEST_SYNTHETIC_H_

#include <cstdint>

#include "common/status.h"
#include "datasets/dataset.h"
#include "ingest/delta.h"

namespace prox {
namespace ingest {

/// \file
/// Deterministic synthetic delta batches over the three generated dataset
/// families (tests, bench_ingest, smoke tooling). Each builder reads only
/// the live registry/entity tables — never the generator's RNG state — so
/// the same dataset always yields the same batch, which is what the replay
/// determinism suite leans on. No randomness by design: factor choices are
/// simple arithmetic in the op index.

/// New users rating existing movies: `new_users` annotations in the "user"
/// domain, each with `ratings_per_user` add_term ops over existing
/// (movie, year) pairs resolved from the Movies entity table.
Result<DeltaBatch> SyntheticMovieLensDelta(const Dataset& dataset,
                                           int new_users,
                                           int ratings_per_user,
                                           uint64_t sequence);

/// New editors touching existing pages: `new_users` annotations in the
/// "wiki_user" domain, each with `edits_per_user` add_term ops grouped by
/// page.
Result<DeltaBatch> SyntheticWikipediaDelta(const Dataset& dataset,
                                           int new_users, int edits_per_user,
                                           uint64_t sequence);

/// New cost variables plus new executions over existing db variables:
/// `new_cost_vars` annotations in the "cost_var" domain (with costs) and
/// `new_executions` add_execution ops mixing new cost vars with existing
/// db monomials.
Result<DeltaBatch> SyntheticDdpDelta(const Dataset& dataset,
                                     int new_cost_vars, int new_executions,
                                     uint64_t sequence);

}  // namespace ingest
}  // namespace prox

#endif  // PROX_INGEST_SYNTHETIC_H_
