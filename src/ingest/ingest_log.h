#ifndef PROX_INGEST_INGEST_LOG_H_
#define PROX_INGEST_INGEST_LOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "datasets/dataset.h"
#include "ingest/delta.h"

namespace prox {
namespace ingest {

/// \brief The append path of the ingest subsystem: an ordered log of
/// applied delta batches over one live Dataset.
///
/// The log enforces the stream contract (docs/INGEST.md): batches carry
/// 1-based sequence numbers, gaps and replays are rejected with a typed
/// kSequence error, and each accepted batch is applied atomically via
/// ApplyBatch. The chained digest over accepted batches is the
/// delta-aware half of the serve-layer cache fingerprint.
///
/// Not internally synchronized — same contract as the Dataset it mutates
/// (ProxSession serializes access under its own mutex).
class IngestLog {
 public:
  explicit IngestLog(Dataset* dataset) : dataset_(dataset) {}

  IngestLog(const IngestLog&) = delete;
  IngestLog& operator=(const IngestLog&) = delete;

  /// Sequence number the next batch must carry (1 for a fresh log).
  uint64_t next_sequence() const { return next_sequence_; }

  /// Receipts of every accepted batch, in stream order.
  const std::vector<ApplyReceipt>& receipts() const { return receipts_; }

  /// Validates and applies one batch. On success the receipt is recorded
  /// and the expected sequence advances; on failure the dataset and the
  /// log are untouched.
  Result<ApplyReceipt> Append(const DeltaBatch& batch);

 private:
  Dataset* dataset_;
  uint64_t next_sequence_ = 1;
  std::vector<ApplyReceipt> receipts_;
};

}  // namespace ingest
}  // namespace prox

#endif  // PROX_INGEST_INGEST_LOG_H_
