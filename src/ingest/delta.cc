#include "ingest/delta.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <unordered_map>
#include <unordered_set>

#include "ingest/ingest_metrics.h"
#include "ir/agg_expr.h"
#include "ir/ddp_expr.h"
#include "ir/term_pool.h"
#include "obs/trace.h"
#include "provenance/aggregate_expr.h"
#include "provenance/ddp_expr.h"
#include "provenance/monomial.h"
#include "semantics/entity_table.h"

namespace prox {
namespace ingest {

namespace {

// FNV-1a, same constants as the serve-layer dataset fingerprint; the two
// layers must agree so chained fingerprints are reproducible across
// replicas (docs/INGEST.md).
constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t FnvBytes(uint64_t h, const std::string& bytes) {
  for (unsigned char c : bytes) {
    h ^= c;
    h *= kFnvPrime;
  }
  // Separator so concatenated fields cannot alias.
  h ^= 0xFFu;
  h *= kFnvPrime;
  return h;
}

std::string FnvHex(uint64_t h) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return std::string(buf);
}

const char* OpKindName(DeltaOpKind kind) {
  switch (kind) {
    case DeltaOpKind::kAddAnnotation:
      return "add_annotation";
    case DeltaOpKind::kAddTerm:
      return "add_term";
    case DeltaOpKind::kAddExecution:
      return "add_execution";
  }
  return "?";
}

Result<std::vector<std::string>> ParseStringArray(const JsonValue& value,
                                                  const char* what) {
  if (!value.is_array()) {
    return Status::InvalidArgument(std::string(what) + " must be an array");
  }
  std::vector<std::string> out;
  out.reserve(value.items().size());
  for (const JsonValue& item : value.items()) {
    if (!item.is_string()) {
      return Status::InvalidArgument(std::string(what) +
                                     " entries must be strings");
    }
    out.push_back(item.string_value());
  }
  return out;
}

Result<DeltaTransition> TransitionFromJson(const JsonValue& value) {
  if (!value.is_object()) {
    return Status::InvalidArgument("transition must be an object");
  }
  DeltaTransition t;
  const JsonValue* cost = value.Find("cost");
  const JsonValue* db = value.Find("db");
  if ((cost != nullptr) == (db != nullptr)) {
    return Status::InvalidArgument(
        "transition must have exactly one of \"cost\" (user step) or "
        "\"db\" (db step)");
  }
  if (cost != nullptr) {
    if (!cost->is_string()) {
      return Status::InvalidArgument("transition \"cost\" must be a string");
    }
    t.user = true;
    t.cost_var = cost->string_value();
  } else {
    PROX_ASSIGN_OR_RETURN(t.db_factors,
                          ParseStringArray(*db, "transition \"db\""));
    t.user = false;
    if (const JsonValue* nz = value.Find("nonzero"); nz != nullptr) {
      if (!nz->is_bool()) {
        return Status::InvalidArgument(
            "transition \"nonzero\" must be a bool");
      }
      t.nonzero = nz->bool_value();
    }
  }
  return t;
}

Result<DeltaOp> OpFromJson(const JsonValue& value) {
  if (!value.is_object()) {
    return Status::InvalidArgument("op must be an object");
  }
  const JsonValue* op_name = value.Find("op");
  if (op_name == nullptr || !op_name->is_string()) {
    return Status::InvalidArgument("op requires a string \"op\" kind");
  }
  DeltaOp op;
  const std::string& kind = op_name->string_value();
  if (kind == "add_annotation") {
    op.kind = DeltaOpKind::kAddAnnotation;
    const JsonValue* domain = value.Find("domain");
    const JsonValue* name = value.Find("name");
    if (domain == nullptr || !domain->is_string() || name == nullptr ||
        !name->is_string()) {
      return Status::InvalidArgument(
          "add_annotation requires string \"domain\" and \"name\"");
    }
    op.domain = domain->string_value();
    op.name = name->string_value();
    if (const JsonValue* attrs = value.Find("attrs"); attrs != nullptr) {
      PROX_ASSIGN_OR_RETURN(op.attrs, ParseStringArray(*attrs, "\"attrs\""));
    }
    if (const JsonValue* cost = value.Find("cost"); cost != nullptr) {
      if (!cost->is_number()) {
        return Status::InvalidArgument("\"cost\" must be a number");
      }
      op.cost = cost->double_value();
      op.has_cost = true;
    }
  } else if (kind == "add_term") {
    op.kind = DeltaOpKind::kAddTerm;
    const JsonValue* factors = value.Find("factors");
    if (factors == nullptr) {
      return Status::InvalidArgument("add_term requires \"factors\"");
    }
    PROX_ASSIGN_OR_RETURN(op.factors,
                          ParseStringArray(*factors, "\"factors\""));
    if (const JsonValue* group = value.Find("group"); group != nullptr) {
      if (!group->is_string()) {
        return Status::InvalidArgument("\"group\" must be a string");
      }
      op.group = group->string_value();
    }
    const JsonValue* term_value = value.Find("value");
    if (term_value == nullptr || !term_value->is_number()) {
      return Status::InvalidArgument("add_term requires a numeric \"value\"");
    }
    op.value = term_value->double_value();
    if (const JsonValue* count = value.Find("count"); count != nullptr) {
      if (!count->is_number()) {
        return Status::InvalidArgument("\"count\" must be a number");
      }
      op.count = count->double_value();
    }
  } else if (kind == "add_execution") {
    op.kind = DeltaOpKind::kAddExecution;
    const JsonValue* transitions = value.Find("transitions");
    if (transitions == nullptr || !transitions->is_array()) {
      return Status::InvalidArgument(
          "add_execution requires a \"transitions\" array");
    }
    op.transitions.reserve(transitions->items().size());
    for (const JsonValue& t : transitions->items()) {
      PROX_ASSIGN_OR_RETURN(DeltaTransition parsed, TransitionFromJson(t));
      op.transitions.push_back(std::move(parsed));
    }
  } else {
    return Status::InvalidArgument("unknown op kind \"" + kind + "\"");
  }
  return op;
}

JsonValue OpToJson(const DeltaOp& op) {
  JsonValue doc = JsonValue::Object();
  doc.Set("op", JsonValue::Str(OpKindName(op.kind)));
  switch (op.kind) {
    case DeltaOpKind::kAddAnnotation: {
      doc.Set("domain", JsonValue::Str(op.domain));
      doc.Set("name", JsonValue::Str(op.name));
      if (!op.attrs.empty()) {
        JsonValue attrs = JsonValue::Array();
        for (const std::string& a : op.attrs) attrs.Append(JsonValue::Str(a));
        doc.Set("attrs", std::move(attrs));
      }
      if (op.has_cost) doc.Set("cost", JsonValue::Double(op.cost));
      break;
    }
    case DeltaOpKind::kAddTerm: {
      JsonValue factors = JsonValue::Array();
      for (const std::string& f : op.factors) {
        factors.Append(JsonValue::Str(f));
      }
      doc.Set("factors", std::move(factors));
      if (!op.group.empty()) doc.Set("group", JsonValue::Str(op.group));
      doc.Set("value", JsonValue::Double(op.value));
      doc.Set("count", JsonValue::Double(op.count));
      break;
    }
    case DeltaOpKind::kAddExecution: {
      JsonValue transitions = JsonValue::Array();
      for (const DeltaTransition& t : op.transitions) {
        JsonValue tj = JsonValue::Object();
        if (t.user) {
          tj.Set("cost", JsonValue::Str(t.cost_var));
        } else {
          JsonValue db = JsonValue::Array();
          for (const std::string& f : t.db_factors) {
            db.Append(JsonValue::Str(f));
          }
          tj.Set("db", std::move(db));
          tj.Set("nonzero", JsonValue::Bool(t.nonzero));
        }
        transitions.Append(std::move(tj));
      }
      doc.Set("transitions", std::move(transitions));
      break;
    }
  }
  return doc;
}

/// Dry-run state while validating a batch: names the batch will register,
/// simulated before any mutation so application is all-or-nothing.
struct PendingNames {
  std::unordered_set<std::string> names;

  bool Contains(const std::string& name) const {
    return names.count(name) != 0;
  }
};

/// Resolves a factor/group/cost-var name against the registry plus the
/// batch's own pending additions.
Status CheckResolvable(const AnnotationRegistry& registry,
                       const PendingNames& pending, const std::string& name,
                       const char* what) {
  Result<AnnotationId> found = registry.Find(name);
  if (found.ok()) {
    if (registry.is_summary(found.value())) {
      return DeltaError(DeltaErrorKind::kSummaryAnnotation,
                        std::string(what) + " '" + name +
                            "' is a summary annotation; deltas may only "
                            "reference originals");
    }
    return Status::OK();
  }
  if (pending.Contains(name)) return Status::OK();
  return DeltaError(DeltaErrorKind::kUnknownAnnotation,
                    std::string(what) + " '" + name + "' is not registered");
}

Status ValidateBatch(const Dataset& dataset, const DeltaBatch& batch,
                     uint64_t expected_sequence) {
  if (batch.sequence != expected_sequence) {
    return DeltaError(DeltaErrorKind::kSequence,
                      "expected batch " + std::to_string(expected_sequence) +
                          ", got " + std::to_string(batch.sequence));
  }
  const AnnotationRegistry& registry = *dataset.registry;
  const ProvenanceExpression* provenance = dataset.provenance.get();
  const bool is_aggregate =
      provenance != nullptr && provenance->AsAggregate() != nullptr;
  const bool is_ddp = provenance != nullptr && provenance->AsDdp() != nullptr;

  PendingNames pending;
  for (size_t i = 0; i < batch.ops.size(); ++i) {
    const DeltaOp& op = batch.ops[i];
    const std::string at = "op " + std::to_string(i) + ": ";
    switch (op.kind) {
      case DeltaOpKind::kAddAnnotation: {
        if (op.name.empty()) {
          return DeltaError(DeltaErrorKind::kBadShape,
                            at + "annotation name must be non-empty");
        }
        Result<DomainId> domain = registry.FindDomain(op.domain);
        if (!domain.ok()) {
          return DeltaError(DeltaErrorKind::kUnknownDomain,
                            at + "no such domain '" + op.domain + "'");
        }
        if (registry.Find(op.name).ok() || pending.Contains(op.name)) {
          return DeltaError(DeltaErrorKind::kDuplicateAnnotation,
                            at + "annotation '" + op.name +
                                "' already registered");
        }
        auto table = dataset.ctx.tables.find(domain.value());
        const size_t want = table != dataset.ctx.tables.end()
                                ? table->second.num_attributes()
                                : 0;
        if (op.attrs.size() != want && !op.attrs.empty()) {
          return DeltaError(DeltaErrorKind::kBadShape,
                            at + "domain '" + op.domain + "' expects " +
                                std::to_string(want) + " attrs, got " +
                                std::to_string(op.attrs.size()));
        }
        if (op.has_cost && !is_ddp) {
          return DeltaError(DeltaErrorKind::kUnsupported,
                            at + "\"cost\" requires a DDP dataset");
        }
        if (!std::isfinite(op.cost)) {
          return DeltaError(DeltaErrorKind::kBadShape,
                            at + "cost must be finite");
        }
        pending.names.insert(op.name);
        break;
      }
      case DeltaOpKind::kAddTerm: {
        if (!is_aggregate) {
          return DeltaError(
              DeltaErrorKind::kUnsupported,
              at + "add_term requires an aggregate provenance expression");
        }
        if (op.factors.empty()) {
          return DeltaError(DeltaErrorKind::kBadShape,
                            at + "term factors must be non-empty");
        }
        for (const std::string& f : op.factors) {
          Status factor_ok = CheckResolvable(registry, pending, f,
                                             "term factor");
          if (!factor_ok.ok()) return factor_ok;
        }
        if (!op.group.empty()) {
          Status group_ok = CheckResolvable(registry, pending, op.group,
                                            "term group");
          if (!group_ok.ok()) return group_ok;
        }
        if (!std::isfinite(op.value)) {
          return DeltaError(DeltaErrorKind::kBadShape,
                            at + "term value must be finite");
        }
        if (!(op.count > 0.0) || !std::isfinite(op.count)) {
          return DeltaError(DeltaErrorKind::kNonMonotone,
                            at + "term count must be > 0; shrinking or "
                                 "cancelling existing provenance is not a "
                                 "delta");
        }
        break;
      }
      case DeltaOpKind::kAddExecution: {
        if (!is_ddp) {
          return DeltaError(
              DeltaErrorKind::kUnsupported,
              at + "add_execution requires a DDP provenance expression");
        }
        if (op.transitions.empty()) {
          return DeltaError(DeltaErrorKind::kBadShape,
                            at + "execution must have transitions");
        }
        for (const DeltaTransition& t : op.transitions) {
          if (t.user) {
            Status cost_ok = CheckResolvable(registry, pending, t.cost_var,
                                             "cost var");
            if (!cost_ok.ok()) return cost_ok;
          } else {
            if (t.db_factors.empty()) {
              return DeltaError(DeltaErrorKind::kBadShape,
                                at + "db transition needs factors");
            }
            for (const std::string& f : t.db_factors) {
              Status db_ok = CheckResolvable(registry, pending, f,
                                             "db factor");
              if (!db_ok.ok()) return db_ok;
            }
          }
        }
        break;
      }
    }
  }
  return Status::OK();
}

Result<AnnotationId> ResolveId(const AnnotationRegistry& registry,
                               const std::string& name) {
  PROX_ASSIGN_OR_RETURN(AnnotationId id, registry.Find(name));
  return id;
}

Result<std::vector<AnnotationId>> ResolveIds(
    const AnnotationRegistry& registry,
    const std::vector<std::string>& names) {
  std::vector<AnnotationId> ids;
  ids.reserve(names.size());
  for (const std::string& n : names) {
    PROX_ASSIGN_OR_RETURN(AnnotationId id, registry.Find(n));
    ids.push_back(id);
  }
  return ids;
}

}  // namespace

const char* DeltaErrorKindToString(DeltaErrorKind kind) {
  switch (kind) {
    case DeltaErrorKind::kSequence:
      return "kSequence";
    case DeltaErrorKind::kUnknownDomain:
      return "kUnknownDomain";
    case DeltaErrorKind::kDuplicateAnnotation:
      return "kDuplicateAnnotation";
    case DeltaErrorKind::kUnknownAnnotation:
      return "kUnknownAnnotation";
    case DeltaErrorKind::kSummaryAnnotation:
      return "kSummaryAnnotation";
    case DeltaErrorKind::kBadShape:
      return "kBadShape";
    case DeltaErrorKind::kNonMonotone:
      return "kNonMonotone";
    case DeltaErrorKind::kUnsupported:
      return "kUnsupported";
  }
  return "?";
}

Status DeltaError(DeltaErrorKind kind, const std::string& detail) {
  std::string message = std::string("ingest error ") +
                        DeltaErrorKindToString(kind) + ": " + detail;
  if (kind == DeltaErrorKind::kSequence) {
    return Status::FailedPrecondition(std::move(message));
  }
  return Status::InvalidArgument(std::move(message));
}

Result<DeltaBatch> DeltaBatchFromJson(const JsonValue& value) {
  if (!value.is_object()) {
    return Status::InvalidArgument("delta batch must be a JSON object");
  }
  DeltaBatch batch;
  bool saw_sequence = false;
  for (const auto& [key, member] : value.members()) {
    if (key == "sequence") {
      if (!member.is_int() || member.int_value() <= 0) {
        return Status::InvalidArgument(
            "\"sequence\" must be a positive integer");
      }
      batch.sequence = static_cast<uint64_t>(member.int_value());
      saw_sequence = true;
    } else if (key == "ops") {
      if (!member.is_array()) {
        return Status::InvalidArgument("\"ops\" must be an array");
      }
      batch.ops.reserve(member.items().size());
      for (const JsonValue& op : member.items()) {
        PROX_ASSIGN_OR_RETURN(DeltaOp parsed, OpFromJson(op));
        batch.ops.push_back(std::move(parsed));
      }
    } else if (key == "resummarize") {
      // A directive to the caller (router / CLI), not part of the batch.
    } else {
      return Status::InvalidArgument("unknown delta batch key \"" + key +
                                     "\"");
    }
  }
  if (!saw_sequence) {
    return Status::InvalidArgument("delta batch requires \"sequence\"");
  }
  if (batch.ops.empty()) {
    return Status::InvalidArgument("delta batch requires non-empty \"ops\"");
  }
  return batch;
}

JsonValue DeltaBatchToJson(const DeltaBatch& batch) {
  JsonValue doc = JsonValue::Object();
  doc.Set("sequence", JsonValue::Int(static_cast<int64_t>(batch.sequence)));
  JsonValue ops = JsonValue::Array();
  for (const DeltaOp& op : batch.ops) ops.Append(OpToJson(op));
  doc.Set("ops", std::move(ops));
  return doc;
}

JsonValue ApplyReceiptToJson(const ApplyReceipt& receipt) {
  JsonValue doc = JsonValue::Object();
  doc.Set("sequence", JsonValue::Int(static_cast<int64_t>(receipt.sequence)));
  doc.Set("annotations_added", JsonValue::Int(receipt.annotations_added));
  doc.Set("terms_added", JsonValue::Int(receipt.terms_added));
  doc.Set("expression_size", JsonValue::Int(receipt.expression_size));
  doc.Set("digest", JsonValue::Str(receipt.digest));
  return doc;
}

std::string BatchDigest(const DeltaBatch& batch) {
  uint64_t h = kFnvOffset;
  h = FnvBytes(h, "delta1");
  h = FnvBytes(h, WriteJson(DeltaBatchToJson(batch)));
  return FnvHex(h);
}

std::string ChainFingerprint(const std::string& fingerprint,
                             const std::string& digest) {
  uint64_t h = kFnvOffset;
  h = FnvBytes(h, fingerprint);
  h = FnvBytes(h, digest);
  return FnvHex(h);
}

Result<ApplyReceipt> ApplyBatch(Dataset* dataset, const DeltaBatch& batch,
                                uint64_t expected_sequence) {
  obs::TraceSpan span("ingest.apply");
  Status valid = ValidateBatch(*dataset, batch, expected_sequence);
  if (!valid.ok()) {
    IngestRejected()->Increment();
    return valid;
  }

  AnnotationRegistry* registry = dataset->registry.get();
  ProvenanceExpression* provenance = dataset->provenance.get();
  auto* legacy_agg = dynamic_cast<AggregateExpression*>(provenance);
  auto* ir_agg = dynamic_cast<ir::IrAggregateExpression*>(provenance);
  auto* legacy_ddp = dynamic_cast<DdpExpression*>(provenance);
  auto* ir_ddp = dynamic_cast<ir::IrDdpExpression*>(provenance);
  if (legacy_agg == nullptr && ir_agg == nullptr && legacy_ddp == nullptr &&
      ir_ddp == nullptr) {
    IngestRejected()->Increment();
    return DeltaError(DeltaErrorKind::kUnsupported,
                      "dataset has no appendable provenance expression");
  }

  // Capacity pre-reservation: one rehash/regrow up front instead of a
  // storm of incremental ones on a large batch.
  int64_t new_annotations = 0;
  int64_t new_terms = 0;
  for (const DeltaOp& op : batch.ops) {
    switch (op.kind) {
      case DeltaOpKind::kAddAnnotation:
        ++new_annotations;
        break;
      case DeltaOpKind::kAddTerm:
      case DeltaOpKind::kAddExecution:
        ++new_terms;
        break;
    }
  }
  registry->Reserve(registry->num_domains(),
                    registry->size() + static_cast<size_t>(new_annotations));
  if (legacy_agg != nullptr) {
    legacy_agg->ReserveAdditionalTerms(static_cast<size_t>(new_terms));
  }
  if (ir_agg != nullptr) {
    ir_agg->ReserveAdditionalTerms(static_cast<size_t>(new_terms));
  }

  // Validation passed: apply in op order. Growth only — existing registry
  // ids, entity rows and interned monomial ids are never reassigned.
  for (const DeltaOp& op : batch.ops) {
    switch (op.kind) {
      case DeltaOpKind::kAddAnnotation: {
        PROX_ASSIGN_OR_RETURN(DomainId domain,
                              registry->FindDomain(op.domain));
        uint32_t row = kNoEntity;
        if (!op.attrs.empty()) {
          auto table = dataset->ctx.tables.find(domain);
          if (table != dataset->ctx.tables.end()) {
            PROX_ASSIGN_OR_RETURN(row, table->second.AddRow(op.attrs));
          }
        }
        PROX_ASSIGN_OR_RETURN(AnnotationId id,
                              registry->Add(domain, op.name, row));
        if (op.has_cost) {
          if (legacy_ddp != nullptr) legacy_ddp->SetCost(id, op.cost);
          if (ir_ddp != nullptr) ir_ddp->SetCost(id, op.cost);
        }
        break;
      }
      case DeltaOpKind::kAddTerm: {
        PROX_ASSIGN_OR_RETURN(std::vector<AnnotationId> ids,
                              ResolveIds(*registry, op.factors));
        AnnotationId group = kNoAnnotation;
        if (!op.group.empty()) {
          PROX_ASSIGN_OR_RETURN(group, ResolveId(*registry, op.group));
        }
        AggValue agg_value{op.value, op.count};
        if (legacy_agg != nullptr) {
          TensorTerm term;
          term.monomial = Monomial(std::move(ids));
          term.group = group;
          term.value = agg_value;
          legacy_agg->AddTerm(std::move(term));
        } else {
          std::sort(ids.begin(), ids.end());
          ir::MonomialId mono =
              ir_agg->pool()->InternMonomial(ids.data(), ids.size());
          ir_agg->AddTermIds(mono, ir::kNoGuard, group, agg_value);
        }
        break;
      }
      case DeltaOpKind::kAddExecution: {
        if (legacy_ddp != nullptr) {
          DdpExecution exec;
          exec.transitions.reserve(op.transitions.size());
          for (const DeltaTransition& t : op.transitions) {
            if (t.user) {
              PROX_ASSIGN_OR_RETURN(AnnotationId cost_var,
                                    ResolveId(*registry, t.cost_var));
              exec.transitions.push_back(DdpTransition::User(cost_var));
            } else {
              PROX_ASSIGN_OR_RETURN(std::vector<AnnotationId> ids,
                                    ResolveIds(*registry, t.db_factors));
              exec.transitions.push_back(
                  DdpTransition::Db(Monomial(std::move(ids)), t.nonzero));
            }
          }
          legacy_ddp->AddExecution(std::move(exec));
        } else {
          ir_ddp->BeginExecution();
          for (const DeltaTransition& t : op.transitions) {
            if (t.user) {
              PROX_ASSIGN_OR_RETURN(AnnotationId cost_var,
                                    ResolveId(*registry, t.cost_var));
              ir_ddp->AddUserTransition(cost_var);
            } else {
              PROX_ASSIGN_OR_RETURN(std::vector<AnnotationId> ids,
                                    ResolveIds(*registry, t.db_factors));
              std::sort(ids.begin(), ids.end());
              ir::MonomialId mono =
                  ir_ddp->pool()->InternMonomial(ids.data(), ids.size());
              ir_ddp->AddDbTransition(mono, t.nonzero);
            }
          }
        }
        break;
      }
    }
  }

  // One canonicalization pass per batch, not per op.
  if (legacy_agg != nullptr) legacy_agg->Simplify();
  if (ir_agg != nullptr) ir_agg->Canonicalize();
  if (legacy_ddp != nullptr) legacy_ddp->Simplify();
  if (ir_ddp != nullptr) ir_ddp->Canonicalize();

  ApplyReceipt receipt;
  receipt.sequence = batch.sequence;
  receipt.annotations_added = new_annotations;
  receipt.terms_added = new_terms;
  receipt.expression_size = dataset->provenance->Size();
  receipt.digest = BatchDigest(batch);

  IngestBatches()->Increment();
  IngestOps()->Increment(static_cast<uint64_t>(batch.ops.size()));
  IngestAnnotationsAdded()->Increment(
      static_cast<uint64_t>(new_annotations));
  IngestTermsAdded()->Increment(static_cast<uint64_t>(new_terms));
  return receipt;
}

}  // namespace ingest
}  // namespace prox
