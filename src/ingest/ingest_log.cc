#include "ingest/ingest_log.h"

#include <chrono>

#include "ingest/ingest_metrics.h"

namespace prox {
namespace ingest {

Result<ApplyReceipt> IngestLog::Append(const DeltaBatch& batch) {
  const auto start = std::chrono::steady_clock::now();
  PROX_ASSIGN_OR_RETURN(ApplyReceipt receipt,
                        ApplyBatch(dataset_, batch, next_sequence_));
  next_sequence_ = receipt.sequence + 1;
  receipts_.push_back(receipt);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  IngestApplyDuration()->Observe(static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
          .count()));
  return receipt;
}

}  // namespace ingest
}  // namespace prox
