#include "ingest/synthetic.h"

#include <string>
#include <vector>

#include "provenance/annotation.h"
#include "semantics/entity_table.h"

namespace prox {
namespace ingest {

namespace {

// Attribute pools for synthetic users. Values deliberately repeat so the
// new annotations are mergeable with each other (and with any existing
// annotation sharing the value) under the shared-attribute constraints.
const char* const kGenders[] = {"F", "M"};
const char* const kAgeRanges[] = {"18-24", "25-34", "35-44"};
const char* const kOccupations[] = {"engineer", "artist", "student"};
const char* const kLevels[] = {"Low", "Medium", "High"};

std::string FreshName(const AnnotationRegistry& registry,
                      const std::string& base) {
  std::string name = base;
  while (registry.Find(name).ok()) name += "x";
  return name;
}

Result<std::vector<AnnotationId>> OriginalsInDomain(const Dataset& dataset,
                                                    const char* domain_name) {
  PROX_ASSIGN_OR_RETURN(DomainId domain,
                        dataset.registry->FindDomain(domain_name));
  std::vector<AnnotationId> out;
  for (AnnotationId a : dataset.registry->AnnotationsInDomain(domain)) {
    if (!dataset.registry->is_summary(a)) out.push_back(a);
  }
  if (out.empty()) {
    return Status::FailedPrecondition(std::string("domain '") + domain_name +
                                      "' has no original annotations");
  }
  return out;
}

}  // namespace

Result<DeltaBatch> SyntheticMovieLensDelta(const Dataset& dataset,
                                           int new_users,
                                           int ratings_per_user,
                                           uint64_t sequence) {
  const AnnotationRegistry& registry = *dataset.registry;
  PROX_ASSIGN_OR_RETURN(std::vector<AnnotationId> movies,
                        OriginalsInDomain(dataset, "movie"));
  PROX_ASSIGN_OR_RETURN(DomainId movie_domain,
                        registry.FindDomain("movie"));
  const EntityTable* movies_table = dataset.ctx.TableFor(movie_domain);
  if (movies_table == nullptr) {
    return Status::FailedPrecondition("movie domain has no entity table");
  }
  PROX_ASSIGN_OR_RETURN(AttrId year_attr,
                        movies_table->FindAttribute("Year"));

  DeltaBatch batch;
  batch.sequence = sequence;
  for (int u = 0; u < new_users; ++u) {
    DeltaOp add;
    add.kind = DeltaOpKind::kAddAnnotation;
    add.domain = "user";
    add.name = FreshName(registry, "UIN" + std::to_string(sequence) + "_" +
                                       std::to_string(u));
    add.attrs = {kGenders[u % 2], kAgeRanges[u % 3], kOccupations[u % 3],
                 "90000"};
    batch.ops.push_back(add);

    for (int r = 0; r < ratings_per_user; ++r) {
      const size_t m =
          (static_cast<size_t>(u) * 7 + static_cast<size_t>(r) * 3) %
          movies.size();
      const AnnotationId movie = movies[m];
      const std::string& year_value =
          movies_table->ValueNameOf(registry.entity_row(movie), year_attr);
      PROX_ASSIGN_OR_RETURN(AnnotationId year_ann,
                            registry.Find("Y" + year_value));
      DeltaOp term;
      term.kind = DeltaOpKind::kAddTerm;
      term.factors = {add.name, registry.name(movie),
                      registry.name(year_ann)};
      term.group = registry.name(movie);
      term.value = static_cast<double>((u + r) % 5 + 1);
      term.count = 1.0;
      batch.ops.push_back(std::move(term));
    }
  }
  return batch;
}

Result<DeltaBatch> SyntheticWikipediaDelta(const Dataset& dataset,
                                           int new_users, int edits_per_user,
                                           uint64_t sequence) {
  const AnnotationRegistry& registry = *dataset.registry;
  PROX_ASSIGN_OR_RETURN(std::vector<AnnotationId> pages,
                        OriginalsInDomain(dataset, "page"));

  DeltaBatch batch;
  batch.sequence = sequence;
  for (int u = 0; u < new_users; ++u) {
    DeltaOp add;
    add.kind = DeltaOpKind::kAddAnnotation;
    add.domain = "wiki_user";
    add.name = FreshName(registry, "WIN" + std::to_string(sequence) + "_" +
                                       std::to_string(u));
    add.attrs = {u % 2 == 0 ? "Registered" : "Anonymous", kGenders[u % 2],
                 kLevels[u % 3]};
    batch.ops.push_back(add);

    for (int e = 0; e < edits_per_user; ++e) {
      const size_t p =
          (static_cast<size_t>(u) * 5 + static_cast<size_t>(e) * 2) %
          pages.size();
      DeltaOp term;
      term.kind = DeltaOpKind::kAddTerm;
      term.factors = {add.name, registry.name(pages[p])};
      term.group = registry.name(pages[p]);
      term.value = static_cast<double>((u + e) % 3 + 1);
      term.count = 1.0;
      batch.ops.push_back(std::move(term));
    }
  }
  return batch;
}

Result<DeltaBatch> SyntheticDdpDelta(const Dataset& dataset,
                                     int new_cost_vars, int new_executions,
                                     uint64_t sequence) {
  const AnnotationRegistry& registry = *dataset.registry;
  PROX_ASSIGN_OR_RETURN(std::vector<AnnotationId> db_vars,
                        OriginalsInDomain(dataset, "db_var"));

  DeltaBatch batch;
  batch.sequence = sequence;
  std::vector<std::string> new_costs;
  for (int c = 0; c < new_cost_vars; ++c) {
    DeltaOp add;
    add.kind = DeltaOpKind::kAddAnnotation;
    add.domain = "cost_var";
    add.name = FreshName(registry, "cin" + std::to_string(sequence) + "_" +
                                       std::to_string(c));
    const double cost = static_cast<double>(c % 4 + 1);
    add.attrs = {std::to_string(cost)};
    add.cost = cost;
    add.has_cost = true;
    new_costs.push_back(add.name);
    batch.ops.push_back(std::move(add));
  }
  if (new_costs.empty()) {
    return Status::InvalidArgument(
        "SyntheticDdpDelta needs at least one new cost var");
  }

  for (int e = 0; e < new_executions; ++e) {
    DeltaOp exec;
    exec.kind = DeltaOpKind::kAddExecution;
    DeltaTransition user;
    user.user = true;
    user.cost_var = new_costs[static_cast<size_t>(e) % new_costs.size()];
    exec.transitions.push_back(std::move(user));

    DeltaTransition db;
    db.user = false;
    const size_t d1 = static_cast<size_t>(e) % db_vars.size();
    const size_t d2 = (static_cast<size_t>(e) * 3 + 1) % db_vars.size();
    db.db_factors.push_back(registry.name(db_vars[d1]));
    if (d2 != d1) db.db_factors.push_back(registry.name(db_vars[d2]));
    db.nonzero = e % 2 == 0;
    exec.transitions.push_back(std::move(db));
    batch.ops.push_back(std::move(exec));
  }
  return batch;
}

}  // namespace ingest
}  // namespace prox
