#ifndef PROX_INGEST_MAINTAINER_H_
#define PROX_INGEST_MAINTAINER_H_

#include <cstdint>

#include "common/status.h"
#include "ingest/delta.h"
#include "service/session.h"
#include "service/summarization_service.h"

namespace prox {
namespace ingest {

/// Warm-vs-cold policy of the maintainer (docs/INGEST.md).
struct MaintainOptions {
  /// Fall back to a full re-run when the expression grew by more than
  /// this fraction since the last summarize: past that point the previous
  /// mapping state explains too little of the data for a warm
  /// continuation to stay competitive, and a fresh greedy search is both
  /// cheaper to reason about and no slower.
  double max_delta_fraction = 0.25;
};

/// What one maintenance re-summarize did.
struct MaintainReport {
  bool warm = false;            ///< warm-started (vs full re-run)
  double delta_fraction = 0.0;  ///< growth fraction that drove the choice
  int replayed_merges = 0;      ///< merges replayed from the seed (warm)
  int continuation_steps = 0;   ///< greedy steps run after the replay
  int64_t final_size = 0;
  double final_distance = 0.0;
};

/// \brief Incremental summary maintenance over one ProxSession: forwards
/// delta batches into the session and decides, per re-summarize request,
/// between warm-starting from the previous outcome and falling back to a
/// full re-run once the accumulated delta fraction crosses the threshold.
///
/// Not internally synchronized: the maintainer's own bookkeeping
/// (delta-fraction counters) needs external serialization — the engine
/// facade serializes calls under its mutex; offline tools are
/// single-threaded. Session state itself is read through guard-scoped
/// ProxSession::LockedView, never raw pointers.
class SummaryMaintainer {
 public:
  explicit SummaryMaintainer(ProxSession* session,
                             MaintainOptions options = MaintainOptions());

  /// Applies one batch via ProxSession::Ingest and accrues its growth
  /// into the delta fraction.
  Result<ApplyReceipt> Ingest(const DeltaBatch& batch);

  /// Expression growth since the last successful re-summarize, as a
  /// fraction of the size the last summary was computed over (0.0 before
  /// any ingest).
  double delta_fraction() const;

  /// Re-summarizes the session's selection: warm when a previous outcome
  /// exists and delta_fraction() <= max_delta_fraction, cold otherwise
  /// (counted in `prox_warmstart_fallback_total`). Resets the delta
  /// accounting on success.
  Result<MaintainReport> Resummarize(const SummarizationRequest& request);

 private:
  ProxSession* session_;
  MaintainOptions options_;
  /// provenance Size() the last summary was computed over (0 = never).
  int64_t summarized_size_ = 0;
  /// provenance Size() after the most recent ingest (0 = none yet).
  int64_t current_size_ = 0;
};

}  // namespace ingest
}  // namespace prox

#endif  // PROX_INGEST_MAINTAINER_H_
