#ifndef PROX_INGEST_DELTA_H_
#define PROX_INGEST_DELTA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/status.h"
#include "datasets/dataset.h"

namespace prox {
namespace ingest {

/// \file
/// The DeltaBatch record format: the unit of streaming provenance ingest
/// (docs/INGEST.md). A batch is an ordered list of monotone-growth
/// operations — provenance only ever gains annotations, tensor terms and
/// executions; nothing is removed or rewritten. That invariant is what
/// makes warm-started re-summarization sound: every merge recorded by a
/// previous run still refers to live members after any number of batches.

/// Kinds of monotone growth a batch may apply.
enum class DeltaOpKind {
  /// Register a new original annotation (optionally with entity-table
  /// attributes, optionally with a DDP cost).
  kAddAnnotation,
  /// Append one tensor term `(f1·f2·...) ⊗ (value, count)` to an
  /// aggregate provenance expression.
  kAddTerm,
  /// Append one execution (a transition sequence) to a DDP provenance
  /// expression.
  kAddExecution,
};

/// Typed rejection reasons; rendered as `ingest error k<Name>: ...` in the
/// Status message so callers and tests can route on them.
enum class DeltaErrorKind {
  kSequence,             ///< batch sequence != the log's next sequence
  kUnknownDomain,        ///< add_annotation names a domain not in the registry
  kDuplicateAnnotation,  ///< annotation name already registered / repeated
  kUnknownAnnotation,    ///< term/execution factor never registered
  kSummaryAnnotation,    ///< op references a summary annotation
  kBadShape,             ///< malformed op (empty factors, wrong attr count...)
  kNonMonotone,          ///< op would shrink or rewrite existing provenance
  kUnsupported,          ///< op kind does not match the dataset's expression
};

const char* DeltaErrorKindToString(DeltaErrorKind kind);

/// Builds the canonical `ingest error k<Kind>: <detail>` status. kSequence
/// maps to FailedPrecondition (retryable after refresh), everything else
/// to InvalidArgument.
Status DeltaError(DeltaErrorKind kind, const std::string& detail);

/// One transition of a kAddExecution op.
struct DeltaTransition {
  bool user = true;                     ///< user step vs db step
  std::string cost_var;                 ///< kUser: cost-variable annotation
  std::vector<std::string> db_factors;  ///< kDb: monomial factor names
  bool nonzero = true;                  ///< kDb: "≠ 0" vs "= 0"
};

/// One monotone-growth operation. Fields are grouped by the op kind that
/// reads them; unrelated fields are ignored.
struct DeltaOp {
  DeltaOpKind kind = DeltaOpKind::kAddAnnotation;

  // kAddAnnotation
  std::string domain;              ///< domain name, must pre-exist
  std::string name;                ///< new unique annotation name
  std::vector<std::string> attrs;  ///< entity-table row (may be empty)
  double cost = 0.0;               ///< DDP cost (has_cost only)
  bool has_cost = false;

  // kAddTerm
  std::vector<std::string> factors;  ///< monomial factor names
  std::string group;                 ///< group annotation name ("" = none)
  double value = 0.0;
  double count = 1.0;

  // kAddExecution
  std::vector<DeltaTransition> transitions;
};

/// An ordered, atomically applied batch of growth ops. `sequence` is the
/// position in the ingest stream (1-based); the IngestLog rejects gaps and
/// replays so that a delta stream has exactly one canonical application.
struct DeltaBatch {
  uint64_t sequence = 0;
  std::vector<DeltaOp> ops;
};

/// What one applied batch did to the dataset.
struct ApplyReceipt {
  uint64_t sequence = 0;
  int64_t annotations_added = 0;
  int64_t terms_added = 0;       ///< tensor terms + executions appended
  int64_t expression_size = 0;   ///< provenance Size() after the batch
  std::string digest;            ///< BatchDigest of the applied batch
};

/// Parses a batch from its JSON wire form:
/// `{"sequence": N, "ops": [{"op": "add_annotation", ...}, ...]}`.
/// Unknown top-level keys other than "resummarize" (a router/CLI
/// directive, not part of the batch) are rejected.
Result<DeltaBatch> DeltaBatchFromJson(const JsonValue& value);

/// Canonical JSON form; `BatchDigest` hashes exactly this rendering.
JsonValue DeltaBatchToJson(const DeltaBatch& batch);

JsonValue ApplyReceiptToJson(const ApplyReceipt& receipt);

/// FNV-1a digest (16 hex chars) of the batch's canonical JSON rendering.
/// Replaying the same logical batch always yields the same digest.
std::string BatchDigest(const DeltaBatch& batch);

/// Chains a dataset fingerprint with a batch digest:
/// `chained = fnv(fingerprint || 0xFF || digest)`, 16 hex chars. Cache
/// invalidation after ingest is this chain, not a whole-dataset re-hash —
/// two replicas replaying the same delta stream from the same snapshot
/// agree on every intermediate fingerprint (docs/INGEST.md).
std::string ChainFingerprint(const std::string& fingerprint,
                             const std::string& digest);

/// Validates and applies `batch` to `dataset` atomically: the whole batch
/// is simulated first and the dataset is untouched unless every op passes.
/// Appends registry entries / entity rows / expression rows in op order,
/// pre-reserving capacity, then canonicalizes the expression once.
/// Interned ids of untouched terms and all existing registry ids are
/// stable across the call (monotone growth contract, docs/INGEST.md).
Result<ApplyReceipt> ApplyBatch(Dataset* dataset, const DeltaBatch& batch,
                                uint64_t expected_sequence);

}  // namespace ingest
}  // namespace prox

#endif  // PROX_INGEST_DELTA_H_
