#include "ingest/maintainer.h"

#include <chrono>

#include "ingest/ingest_metrics.h"
#include "obs/trace.h"

namespace prox {
namespace ingest {

SummaryMaintainer::SummaryMaintainer(ProxSession* session,
                                     MaintainOptions options)
    : session_(session), options_(options) {}

Result<ApplyReceipt> SummaryMaintainer::Ingest(const DeltaBatch& batch) {
  // Pin the size the current summary was computed over before the dataset
  // grows: a summary may have been produced directly through the session
  // (e.g. the serve summarize route) without this maintainer seeing it.
  if (summarized_size_ == 0 && session_->Lock().outcome() != nullptr) {
    summarized_size_ = session_->provenance_size();
  }
  PROX_ASSIGN_OR_RETURN(ApplyReceipt receipt, session_->Ingest(batch));
  current_size_ = receipt.expression_size;
  return receipt;
}

double SummaryMaintainer::delta_fraction() const {
  if (summarized_size_ <= 0 || current_size_ <= 0) return 0.0;
  const int64_t growth = current_size_ - summarized_size_;
  if (growth <= 0) return 0.0;
  return static_cast<double>(growth) / static_cast<double>(summarized_size_);
}

Result<MaintainReport> SummaryMaintainer::Resummarize(
    const SummarizationRequest& request) {
  obs::TraceSpan span("ingest.resummarize");
  const auto start = std::chrono::steady_clock::now();

  MaintainReport report;
  report.delta_fraction = delta_fraction();
  const bool have_prior = session_->Lock().outcome() != nullptr;
  report.warm =
      have_prior && report.delta_fraction <= options_.max_delta_fraction;

  Result<int64_t> run = report.warm ? session_->Resummarize(request)
                                    : session_->Summarize(request);
  if (!run.ok()) return run.status();
  if (!report.warm && have_prior) {
    // A prior summary existed but the delta outgrew the warm threshold:
    // that is the fall-back the metric tracks (a first-ever summarize is
    // not a fall-back).
    WarmstartFallbacks()->Increment();
  }

  {
    ProxSession::LockedView view = session_->Lock();
    const SummaryOutcome* outcome = view.outcome();
    report.replayed_merges = outcome->warm_replayed_merges;
    report.continuation_steps = static_cast<int>(outcome->steps.size());
    report.final_size = outcome->final_size;
    report.final_distance = outcome->final_distance;
  }

  summarized_size_ = session_->provenance_size();
  current_size_ = summarized_size_;

  const auto elapsed = std::chrono::steady_clock::now() - start;
  WarmstartResummarizeDuration()->Observe(static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
          .count()));
  return report;
}

}  // namespace ingest
}  // namespace prox
