#ifndef PROX_INGEST_INGEST_METRICS_H_
#define PROX_INGEST_INGEST_METRICS_H_

#include "obs/metrics.h"

namespace prox {
namespace ingest {

/// \file
/// The `prox_ingest_*` / `prox_warmstart_*` metric families
/// (docs/OBSERVABILITY.md). Same discipline as serve_metrics.h: hot call
/// sites cache the pointer in a function-local static.

/// `prox_ingest_batches_total` — delta batches applied.
inline obs::Counter* IngestBatches() {
  return obs::MetricsRegistry::Default().GetCounter(
      "prox_ingest_batches_total", "Delta batches validated and applied.");
}

/// `prox_ingest_ops_total` — individual growth ops applied.
inline obs::Counter* IngestOps() {
  return obs::MetricsRegistry::Default().GetCounter(
      "prox_ingest_ops_total", "Delta ops applied across all batches.");
}

/// `prox_ingest_annotations_added_total` — annotations registered by ingest.
inline obs::Counter* IngestAnnotationsAdded() {
  return obs::MetricsRegistry::Default().GetCounter(
      "prox_ingest_annotations_added_total",
      "Original annotations registered via delta batches.");
}

/// `prox_ingest_terms_added_total` — terms / executions appended by ingest.
inline obs::Counter* IngestTermsAdded() {
  return obs::MetricsRegistry::Default().GetCounter(
      "prox_ingest_terms_added_total",
      "Tensor terms and DDP executions appended via delta batches.");
}

/// `prox_ingest_rejected_total` — batches rejected by validation.
inline obs::Counter* IngestRejected() {
  return obs::MetricsRegistry::Default().GetCounter(
      "prox_ingest_rejected_total",
      "Delta batches rejected before any mutation (typed ingest errors).");
}

/// `prox_ingest_apply_duration_nanos` — ApplyBatch wall time.
inline obs::Histogram* IngestApplyDuration() {
  return obs::MetricsRegistry::Default().GetHistogram(
      "prox_ingest_apply_duration_nanos",
      "Delta batch validate+apply wall time, nanoseconds.",
      obs::LatencyBucketsNanos());
}

/// `prox_warmstart_fallback_total` — maintenance runs that fell back to a
/// full re-run (no prior summary, or delta fraction over threshold).
inline obs::Counter* WarmstartFallbacks() {
  return obs::MetricsRegistry::Default().GetCounter(
      "prox_warmstart_fallback_total",
      "Re-summarize requests that ran cold instead of warm-starting.");
}

/// `prox_warmstart_resummarize_duration_nanos` — maintainer re-summarize
/// wall time (warm and cold paths both record here).
inline obs::Histogram* WarmstartResummarizeDuration() {
  return obs::MetricsRegistry::Default().GetHistogram(
      "prox_warmstart_resummarize_duration_nanos",
      "SummaryMaintainer re-summarize wall time, nanoseconds.",
      obs::LatencyBucketsNanos());
}

}  // namespace ingest
}  // namespace prox

#endif  // PROX_INGEST_INGEST_METRICS_H_
