#ifndef PROX_SUMMARIZE_MAPPING_STATE_H_
#define PROX_SUMMARIZE_MAPPING_STATE_H_

#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "kernels/valuation_block.h"
#include "provenance/annotation.h"
#include "provenance/homomorphism.h"
#include "provenance/valuation.h"

namespace prox {

/// The φ combiner of Section 3.2: how truth values of grouped annotations
/// combine into the summary annotation's truth value. OR cancels a summary
/// only when *all* members are cancelled; AND when *any* member is. The
/// thesis's MAX combiner for DDP cost keep/cancel bits coincides with OR on
/// {0,1} assignments.
enum class PhiKind { kOr, kAnd };

/// Per-domain φ configuration; domains default to `fallback`.
struct PhiConfig {
  PhiKind fallback = PhiKind::kOr;
  std::map<DomainId, PhiKind> per_domain;

  PhiKind For(DomainId domain) const {
    auto it = per_domain.find(domain);
    return it == per_domain.end() ? fallback : it->second;
  }
};

/// \brief The cumulative state of a summarization run: the homomorphism
/// h : Ann → Ann' built so far, the member sets behind each summary
/// annotation, and the machinery to transform base valuations into v^{h,φ}
/// (Section 3.2).
///
/// Copyable by design — the summarizer clones the state to evaluate each
/// candidate merge of a step before committing the best one, and keeps the
/// previous step's state for the TARGET-DIST rollback (Algorithm 1 line 11).
class MappingState {
 public:
  MappingState(const AnnotationRegistry* registry, PhiConfig phi)
      : registry_(registry), phi_(std::move(phi)) {}

  /// Merges the current annotations `roots` (originals or earlier summary
  /// annotations) into `summary`, a freshly registered summary annotation.
  /// Updates the cumulative homomorphism for every original member.
  void Merge(const std::vector<AnnotationId>& roots, AnnotationId summary);

  /// Reconstructs a previous run's state from its `summaries()` entries
  /// (creation order, sorted original members) — the warm-start seed of
  /// the ingest subsystem (docs/INGEST.md). Each entry's member list is
  /// translated back into the merge roots that were live at its creation
  /// (members absorbed by an earlier entry map to that entry's summary),
  /// then replayed through Merge, so the rebuilt homomorphism, member
  /// sets and summary list are identical to the recorded run's.
  void Replay(
      const std::vector<std::pair<AnnotationId, std::vector<AnnotationId>>>&
          entries);

  /// The cumulative h.
  const Homomorphism& cumulative() const { return hom_; }

  /// Original annotations mapped to `root` (the root itself when unmapped).
  std::vector<AnnotationId> Members(AnnotationId root) const;

  /// Number of merges performed.
  int num_merges() const { return num_merges_; }

  /// Materializes the transformed valuation v^{h,φ}: original annotations
  /// keep their base truth; each summary annotation gets
  /// φ(truth of its members) (Section 3.2's v_{Ann'}(a') = v_{Ann}(φ(a'))).
  /// `num_annotations` is the current registry size.
  MaterializedValuation Transform(const Valuation& base,
                                  size_t num_annotations) const;

  /// Same result as `Transform(base, num_annotations)`, but starts from
  /// `base_mat` — a MaterializedValuation of `base` built earlier (possibly
  /// at a smaller registry size) — so only the φ overrides are recomputed,
  /// not the whole bitmap. Lets oracles pre-materialize their fixed
  /// valuation set once and pay per Distance call only for the summaries.
  MaterializedValuation TransformFrom(const Valuation& base,
                                      const MaterializedValuation& base_mat,
                                      size_t num_annotations) const;

  /// Batch counterpart of Transform/TransformFrom: writes v^{h,φ} for
  /// `base` into lane `lane` of `out` (which must be Reset() for the
  /// current registry size — lanes start all-true). Produces exactly the
  /// truth bits of `Transform(base, out->num_annotations())`, but the φ
  /// override pass runs per *chunk lane* instead of copy-extending a
  /// MaterializedValuation per valuation.
  void TransformLane(const Valuation& base, size_t lane,
                     kernels::ValuationBlock* out) const;

  PhiKind PhiFor(DomainId domain) const { return phi_.For(domain); }

  /// Summary annotations created so far, in creation order, with members.
  const std::vector<std::pair<AnnotationId, std::vector<AnnotationId>>>&
  summaries() const {
    return summaries_;
  }

 private:
  const AnnotationRegistry* registry_;
  PhiConfig phi_;
  Homomorphism hom_;
  /// summary annotation -> sorted original members
  std::unordered_map<AnnotationId, std::vector<AnnotationId>> members_;
  std::vector<std::pair<AnnotationId, std::vector<AnnotationId>>> summaries_;
  int num_merges_ = 0;
};

}  // namespace prox

#endif  // PROX_SUMMARIZE_MAPPING_STATE_H_
