#ifndef PROX_SUMMARIZE_VAL_FUNC_H_
#define PROX_SUMMARIZE_VAL_FUNC_H_

#include <string>

#include "kernels/batch_eval.h"
#include "provenance/eval_result.h"

namespace prox {

/// \brief VAL-FUNC: the per-valuation error between the original and
/// summary provenance (Definition 3.2.2). The distance is the (weighted)
/// average of this function over a valuation class.
///
/// `orig` is v(p₀) *projected into the summary's coordinate space* (the
/// vector transformation of Example 5.2.1) and `summ` is v^{h,φ}(p'), so
/// implementations compare like with like.
class ValFunc {
 public:
  virtual ~ValFunc() = default;

  virtual double Compute(const EvalResult& orig,
                         const EvalResult& summ) const = 0;

  /// Upper bound on Compute for any valuation, given the all-true
  /// evaluation of p₀ — distances are divided by this bound to normalize
  /// into [0,1] as in §6.3.
  virtual double MaxError(const EvalResult& all_true_orig) const = 0;

  virtual std::string name() const = 0;

  /// The batched counterpart of Compute (kernels/batch_eval.h), when one
  /// exists. kNone (the default) makes the distance oracles keep their
  /// per-valuation scalar path for this VAL-FUNC.
  virtual kernels::ValFuncBatchKind batch_kind() const {
    return kernels::ValFuncBatchKind::kNone;
  }

  /// For batch_kind() == kDdp: the feasibility-mismatch penalty the batch
  /// error kernel applies (DdpDifferenceValFunc's max_error()).
  virtual double batch_mismatch_penalty() const { return 0.0; }
};

/// Expected-error VAL-FUNC (Section 3.2, choice 1): |v(p) − v'(p')| on
/// scalars; the L1 distance on aggregation vectors.
class AbsoluteDifferenceValFunc : public ValFunc {
 public:
  double Compute(const EvalResult& orig, const EvalResult& summ) const override;
  double MaxError(const EvalResult& all_true_orig) const override;
  std::string name() const override { return "AbsoluteDifference"; }
  kernels::ValFuncBatchKind batch_kind() const override {
    return kernels::ValFuncBatchKind::kL1;
  }
};

/// Fraction-of-disagreeing-valuations VAL-FUNC (choice 2): 0 when the two
/// evaluations coincide, 1 otherwise (the per-valuation weight w(v) is
/// applied by the distance oracle).
class DisagreementValFunc : public ValFunc {
 public:
  double Compute(const EvalResult& orig, const EvalResult& summ) const override;
  double MaxError(const EvalResult& all_true_orig) const override;
  std::string name() const override { return "Disagreement"; }
  kernels::ValFuncBatchKind batch_kind() const override {
    return kernels::ValFuncBatchKind::kDisagreement;
  }
};

/// Euclidean VAL-FUNC (choice 3): L2 distance between aggregation vectors
/// — the function used for the MovieLens and Wikipedia experiments
/// (Table 5.1). Scalars degenerate to |a − b|.
class EuclideanValFunc : public ValFunc {
 public:
  double Compute(const EvalResult& orig, const EvalResult& summ) const override;
  double MaxError(const EvalResult& all_true_orig) const override;
  std::string name() const override { return "Euclidean"; }
  kernels::ValFuncBatchKind batch_kind() const override {
    return kernels::ValFuncBatchKind::kL2;
  }
};

/// The DDP difference function of Example 5.2.2 on ⟨cost, feasible⟩ pairs:
/// |C − C'| when both feasible, 0 when both infeasible, and the maximum
/// possible cost difference (max cost per transition × max transitions per
/// execution, 10 × 5 in the thesis) when the feasibility bits disagree.
class DdpDifferenceValFunc : public ValFunc {
 public:
  DdpDifferenceValFunc(double max_cost_per_transition = 10.0,
                       double max_transitions = 5.0)
      : max_error_(max_cost_per_transition * max_transitions) {}

  double Compute(const EvalResult& orig, const EvalResult& summ) const override;
  double MaxError(const EvalResult& all_true_orig) const override;
  std::string name() const override { return "DdpDifference"; }
  kernels::ValFuncBatchKind batch_kind() const override {
    return kernels::ValFuncBatchKind::kDdp;
  }
  double batch_mismatch_penalty() const override { return max_error_; }

  /// The precomputed feasibility-mismatch bound, for persistence
  /// (prox::store round-trips it through the constructor arguments).
  double max_error() const { return max_error_; }

 private:
  double max_error_;
};

}  // namespace prox

#endif  // PROX_SUMMARIZE_VAL_FUNC_H_
