#ifndef PROX_SUMMARIZE_VALUATION_CLASS_H_
#define PROX_SUMMARIZE_VALUATION_CLASS_H_

#include <memory>
#include <string>
#include <vector>

#include "provenance/expression.h"
#include "provenance/valuation.h"
#include "semantics/context.h"

namespace prox {

/// \brief A class of truth valuations V_Ann — the distance of a summary
/// from the original provenance is averaged over this set (Definition
/// 3.2.2). The classes below are the ones the evaluation uses (§6.3), plus
/// the exhaustive class for the all-valuations variant.
class ValuationClass {
 public:
  virtual ~ValuationClass() = default;

  /// Enumerates the class for the annotations appearing in `p0`.
  virtual std::vector<Valuation> Generate(const ProvenanceExpression& p0,
                                          const SemanticContext& ctx) const = 0;

  virtual std::string name() const = 0;
};

/// "Cancel Single Annotation": one valuation per annotation of `p0`,
/// assigning it false and everything else true (§6.3).
///
/// With `taxonomy_consistent` set, cancelling an annotation that denotes a
/// taxonomy concept also cancels every annotation denoting a descendant
/// concept — the unique consistent completion per Example 5.2.1's
/// consistency rule (false for A implies false for all children of A).
class CancelSingleAnnotation : public ValuationClass {
 public:
  /// \param domains restrict to these domains (empty = all domains)
  explicit CancelSingleAnnotation(std::vector<DomainId> domains = {},
                                  bool taxonomy_consistent = false)
      : domains_(std::move(domains)),
        taxonomy_consistent_(taxonomy_consistent) {}

  std::vector<Valuation> Generate(const ProvenanceExpression& p0,
                                  const SemanticContext& ctx) const override;
  std::string name() const override { return "CancelSingleAnnotation"; }

  /// Configuration, for persistence (prox::store).
  const std::vector<DomainId>& domains() const { return domains_; }
  bool taxonomy_consistent() const { return taxonomy_consistent_; }

 private:
  std::vector<DomainId> domains_;
  bool taxonomy_consistent_;
};

/// "Cancel Single Attribute": one valuation per (attribute, value) pair
/// occurring among `p0`'s annotations, cancelling every annotation whose
/// entity carries that value (e.g. the valuation that cancels all Male
/// users, §6.3).
class CancelSingleAttribute : public ValuationClass {
 public:
  /// The w(v) weighting of Section 3.2's VAL-FUNC examples: uniform (the
  /// default the experiments use), or proportional to the number of
  /// annotations the valuation cancels (a proxy for "the joint probability
  /// of the truth values it defines" — larger groups are likelier
  /// hypotheses in the cancel-a-population scenario).
  enum class Weighting { kUniform, kGroupSize };

  explicit CancelSingleAttribute(std::vector<DomainId> domains = {},
                                 Weighting weighting = Weighting::kUniform)
      : domains_(std::move(domains)), weighting_(weighting) {}

  std::vector<Valuation> Generate(const ProvenanceExpression& p0,
                                  const SemanticContext& ctx) const override;
  std::string name() const override { return "CancelSingleAttribute"; }

  /// Configuration, for persistence (prox::store).
  const std::vector<DomainId>& domains() const { return domains_; }
  Weighting weighting() const { return weighting_; }

 private:
  std::vector<DomainId> domains_;
  Weighting weighting_;
};

/// All 2^n valuations over `p0`'s annotations — the variant "where the
/// distance is computed with respect to all possible valuations"
/// (Section 3.2). Guarded to small n; pair with the sampling estimator
/// beyond that.
class ExhaustiveValuations : public ValuationClass {
 public:
  /// \param max_annotations refuse (return empty) beyond this many
  ///   annotations, to keep 2^n enumerable.
  explicit ExhaustiveValuations(size_t max_annotations = 20)
      : max_annotations_(max_annotations) {}

  std::vector<Valuation> Generate(const ProvenanceExpression& p0,
                                  const SemanticContext& ctx) const override;
  std::string name() const override { return "Exhaustive"; }

  /// Configuration, for persistence (prox::store).
  size_t max_annotations() const { return max_annotations_; }

 private:
  size_t max_annotations_;
};

/// Concatenation of several classes (e.g. cancel-single-annotation ∪
/// cancel-single-attribute).
class CompositeValuationClass : public ValuationClass {
 public:
  void Add(std::unique_ptr<ValuationClass> inner) {
    inner_.push_back(std::move(inner));
  }

  std::vector<Valuation> Generate(const ProvenanceExpression& p0,
                                  const SemanticContext& ctx) const override;
  std::string name() const override { return "Composite"; }

 private:
  std::vector<std::unique_ptr<ValuationClass>> inner_;
};

}  // namespace prox

#endif  // PROX_SUMMARIZE_VALUATION_CLASS_H_
