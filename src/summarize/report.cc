#include "summarize/report.h"

#include <algorithm>

#include "common/str_util.h"
#include "provenance/aggregate_expr.h"

namespace prox {

std::vector<GroupReport> SummaryReporter::Groups(
    const SummaryOutcome& outcome) const {
  const AnnotationRegistry& registry = *ctx_->registry;

  // Annotations actually present in the final expression.
  std::vector<AnnotationId> present;
  outcome.summary->CollectAnnotations(&present);

  // Group aggregates under the all-true valuation, when available. Read
  // through the facade so both the legacy tree and prox::ir work.
  std::map<AnnotationId, double> group_agg;
  if (const AggregateFacade* agg = outcome.summary->AsAggregate()) {
    const size_t num_terms = agg->agg_num_terms();
    for (size_t t = 0; t < num_terms; ++t) {
      const AggTermView term = agg->agg_term(t);
      for (size_t k = 0; k < term.mono_len; ++k) {
        const AnnotationId a = term.mono[k];
        if (registry.is_summary(a)) {
          // Contribution of tensors carrying this summary annotation.
          auto [it, inserted] = group_agg.emplace(a, term.value.value);
          if (!inserted) {
            it->second = FoldAggregate(agg->agg_kind(), it->second,
                                       term.value, /*first=*/false);
          }
        }
      }
    }
  }

  std::vector<GroupReport> out;
  for (const auto& [summary, members] : outcome.state.summaries()) {
    if (!std::binary_search(present.begin(), present.end(), summary)) {
      continue;  // absorbed into a later group, or scratch
    }
    GroupReport report;
    report.summary = summary;
    report.name = registry.name(summary);

    const EntityTable* table = ctx_->TableFor(registry.domain(summary));
    for (AnnotationId member : members) {
      report.member_names.push_back(registry.name(member));
      if (table != nullptr) {
        uint32_t row = registry.entity_row(member);
        if (row == kNoEntity) continue;
        for (AttrId attr = 0; attr < table->num_attributes(); ++attr) {
          report.attribute_histogram[table->attribute_name(attr)]
                                    [table->ValueNameOf(row, attr)]++;
        }
      }
    }
    auto agg_it = group_agg.find(summary);
    if (agg_it != group_agg.end()) {
      report.aggregate = agg_it->second;
      report.has_aggregate = true;
    }
    out.push_back(std::move(report));
  }
  return out;
}

Result<std::unique_ptr<ProvenanceExpression>> ExpressionAtStep(
    const ProvenanceExpression& p0, const SummaryOutcome& outcome,
    int step) {
  // A rolled-back run's state excludes the undone merge, so the navigable
  // range comes from the state, not the step records.
  const int num_steps =
      static_cast<int>(outcome.state.summaries().size()) -
      outcome.equivalence_merges;
  if (step < 0 || step > num_steps) {
    return Status::OutOfRange("step " + std::to_string(step) +
                              " outside [0, " + std::to_string(num_steps) +
                              "]");
  }
  // The state's summaries are recorded in merge order: first the
  // equivalence-grouping merges, then one per greedy step. Rebuilding the
  // prefix homomorphism original-by-original (later merges overwrite
  // earlier images, since members are stored flattened to originals)
  // reproduces the cumulative h after `step` steps.
  const size_t prefix =
      static_cast<size_t>(outcome.equivalence_merges + step);
  Homomorphism h;
  size_t applied = 0;
  for (const auto& [summary, members] : outcome.state.summaries()) {
    if (applied >= prefix) break;
    for (AnnotationId member : members) h.Set(member, summary);
    ++applied;
  }
  return p0.Apply(h);
}

std::vector<std::string> SummaryReporter::Trace(
    const SummaryOutcome& outcome) const {
  const AnnotationRegistry& registry = *ctx_->registry;
  std::vector<std::string> out;
  if (outcome.equivalence_merges > 0) {
    out.push_back("grouped " + std::to_string(outcome.equivalence_merges) +
                  " equivalence classes (distance 0)");
  }
  for (const StepRecord& step : outcome.steps) {
    std::string line = "step " + std::to_string(step.step) + ": {";
    for (size_t i = 0; i < step.merged_roots.size(); ++i) {
      if (i > 0) line += ", ";
      line += registry.name(step.merged_roots[i]);
    }
    line += "} -> " + step.summary_name + "  (dist " +
            FormatDouble(step.distance, 4) + ", size " +
            std::to_string(step.size) + ")";
    out.push_back(std::move(line));
  }
  if (outcome.rolled_back) {
    out.push_back("final step overshot TARGET-DIST; rolled back");
  }
  return out;
}

}  // namespace prox
