#include "summarize/incremental.h"

#include <algorithm>
#include <cmath>

#include "kernels/batch_eval.h"

namespace prox {

namespace {

/// Stand-in id for the not-yet-registered summary annotation inside mapped
/// monomials/guards. Annotation ids never reach this value in practice
/// (kNoAnnotation is the max; this is one below).
constexpr AnnotationId kPendingSummary = kNoAnnotation - 1;

/// Truth of a (possibly mapped) monomial: the pending-summary sentinel
/// resolves to `summary_truth`, everything else to the bitmap.
bool MonomialTruth(const Monomial& m, const MaterializedValuation& v,
                   bool summary_truth) {
  for (AnnotationId a : m.factors()) {
    const bool t = a == kPendingSummary ? summary_truth : v.truth(a);
    if (!t) return false;
  }
  return true;
}

bool GuardTruth(const Guard& g, const MaterializedValuation& v,
                bool summary_truth) {
  const bool body = MonomialTruth(g.factors(), v, summary_truth);
  const double value = body ? g.scalar() : 0.0;
  switch (g.op()) {
    case CompareOp::kGt:
      return value > g.threshold();
    case CompareOp::kGe:
      return value >= g.threshold();
    case CompareOp::kLt:
      return value < g.threshold();
    case CompareOp::kLe:
      return value <= g.threshold();
    case CompareOp::kEq:
      return value == g.threshold();
    case CompareOp::kNe:
      return value != g.threshold();
  }
  return false;
}

int64_t TermSize(const TensorTerm& t) {
  return t.monomial.Size() + (t.guard ? t.guard->Size() : 0);
}

}  // namespace

std::unique_ptr<IncrementalScorer> IncrementalScorer::Create(
    const ProvenanceExpression* current, const EnumeratedDistance* oracle,
    const MappingState* state, Metric metric) {
  std::unique_ptr<IncrementalScorer> scorer(
      new IncrementalScorer(current, oracle, state, metric));
  if (!scorer->Initialize()) return nullptr;
  return scorer;
}

IncrementalScorer::IncrementalScorer(const ProvenanceExpression* current,
                                     const EnumeratedDistance* oracle,
                                     const MappingState* state,
                                     Metric metric)
    : current_(current), oracle_(oracle), state_(state), metric_(metric) {}

bool IncrementalScorer::Initialize() {
  // Read the aggregate structure through the facade and snapshot it into
  // owning terms (facade views are transient), so both the legacy tree and
  // the prox::ir flat representation are scoreable.
  const AggregateFacade* facade = current_->AsAggregate();
  if (facade == nullptr) return false;
  agg_ = facade->agg_kind();
  const size_t num_terms = facade->agg_num_terms();
  terms_.clear();
  terms_.reserve(num_terms);
  for (size_t i = 0; i < num_terms; ++i) {
    const AggTermView view = facade->agg_term(i);
    TensorTerm term;
    term.monomial = MonomialFromSpan(view.mono, view.mono_len);
    if (view.has_guard) term.guard = GuardFromView(view);
    term.group = view.group;
    term.value = view.value;
    terms_.push_back(std::move(term));
  }

  groups_.clear();
  for (const TensorTerm& t : terms_) groups_.push_back(t.group);
  std::sort(groups_.begin(), groups_.end());
  groups_.erase(std::unique(groups_.begin(), groups_.end()), groups_.end());
  for (size_t i = 0; i < groups_.size(); ++i) group_index_[groups_[i]] = i;

  // Project the cached base evaluations into the current coordinate space
  // (identity when no group keys were merged in the history; the
  // aggregate-fold projection of Example 5.2.1 otherwise). Candidates
  // themselves never merge group keys (CanScore), so the candidate's
  // projection equals the current one.
  const auto& raw_base_evals = oracle_->base_evals();
  if (raw_base_evals.size() != oracle_->valuations().size()) return false;
  std::vector<EvalResult> base_evals;
  base_evals.reserve(raw_base_evals.size());
  for (const EvalResult& raw : raw_base_evals) {
    base_evals.push_back(
        current_->ProjectEvalResult(raw, state_->cumulative()));
  }
  base_values_.resize(base_evals.size());
  for (size_t i = 0; i < base_evals.size(); ++i) {
    auto& row = base_values_[i];
    row.assign(groups_.size(), 0.0);
    const EvalResult& base = base_evals[i];
    if (base.kind() == EvalResult::Kind::kScalar) {
      if (groups_.size() != 1 || groups_[0] != kNoAnnotation) return false;
      row[0] = base.scalar();
    } else if (base.kind() == EvalResult::Kind::kVector) {
      for (const auto& coord : base.coords()) {
        auto it = group_index_.find(coord.group);
        if (it == group_index_.end()) return false;  // projected space
        row[it->second] = coord.value;
      }
    } else {
      return false;  // DDP results are not coordinate-decomposable here
    }
  }

  // Structure indexes.
  terms_of_group_.assign(groups_.size(), {});
  const auto& terms = terms_;
  for (size_t t = 0; t < terms.size(); ++t) {
    terms_of_group_[group_index_.at(terms[t].group)].push_back(t);
    for (AnnotationId a : terms[t].monomial.factors()) {
      terms_of_ann_[a].push_back(t);
    }
    if (terms[t].guard) {
      for (AnnotationId a : terms[t].guard->factors().factors()) {
        terms_of_ann_[a].push_back(t);
      }
    }
  }
  for (auto& [ann, idxs] : terms_of_ann_) {
    std::sort(idxs.begin(), idxs.end());
    idxs.erase(std::unique(idxs.begin(), idxs.end()), idxs.end());
  }

  // Per-valuation caches: transformed bitmap, current coordinate values,
  // and the cached VAL-FUNC accumulator.
  const size_t n = oracle_->registry()->size();
  const auto& valuations = oracle_->valuations();
  transformed_.reserve(valuations.size());
  cur_values_.resize(valuations.size());
  cached_error_.resize(valuations.size());
  for (size_t i = 0; i < valuations.size(); ++i) {
    transformed_.push_back(state_->Transform(valuations[i], n));
  }

  // The cur_values_ build folds every term under every valuation — the
  // one dense pass of this scorer. When `current` can lower itself into a
  // BatchProgram with this scorer's exact coordinate layout, the batch
  // kernels fill 8 valuations per pass; the fold order per (valuation,
  // group) is the row order either way, so the cached values are
  // bit-identical to the scalar build below.
  bool batched = false;
  if (const kernels::BatchEvalFacade* bfacade = current_->AsBatchEval()) {
    const kernels::BatchProgram program = bfacade->LowerBatch();
    const bool scalar_layout =
        groups_.size() == 1 && groups_[0] == kNoAnnotation;
    const bool layout_ok =
        program.shape == kernels::BatchProgram::Shape::kAggregate &&
        (scalar_layout
             ? program.kind == EvalResult::Kind::kScalar
             : kernels::ProgramMatchesLayout(program, EvalResult::Kind::kVector,
                                             groups_.data(), groups_.size()));
    if (layout_ok) {
      batched = true;
      kernels::ValuationBlock block;
      kernels::BlockEval evals;
      constexpr size_t kGrain = 8;
      for (size_t lo = 0; lo < valuations.size(); lo += kGrain) {
        const size_t w = std::min(valuations.size() - lo, kGrain);
        block.Reset(n, w);
        for (size_t l = 0; l < w; ++l) block.FillLane(l, transformed_[lo + l]);
        kernels::EvaluateBlock(program, block, &evals);
        for (size_t l = 0; l < w; ++l) {
          auto& row = cur_values_[lo + l];
          row.resize(groups_.size());
          for (size_t g = 0; g < groups_.size(); ++g) {
            row[g] = evals.values[g * evals.stride + l];
          }
        }
      }
    }
  }

  for (size_t i = 0; i < valuations.size(); ++i) {
    const MaterializedValuation& v = transformed_[i];
    auto& row = cur_values_[i];
    if (!batched) {
      row.assign(groups_.size(), 0.0);
      std::vector<double> counts(groups_.size(), 0.0);
      std::vector<bool> seen(groups_.size(), false);
      for (size_t t = 0; t < terms.size(); ++t) {
        const TensorTerm& term = terms[t];
        const bool alive =
            MonomialTruth(term.monomial, v, false) &&
            (!term.guard || GuardTruth(*term.guard, v, false));
        if (!alive) continue;
        size_t g = group_index_.at(term.group);
        row[g] = FoldAggregate(agg_, row[g], term.value, !seen[g]);
        counts[g] += term.value.count;
        seen[g] = true;
      }
      if (agg_ == AggKind::kAvg) {
        for (size_t g = 0; g < groups_.size(); ++g) {
          row[g] = counts[g] > 0 ? row[g] / counts[g] : 0.0;
        }
      }
    }
    double acc = 0.0;
    for (size_t g = 0; g < groups_.size(); ++g) {
      const double d = base_values_[i][g] - row[g];
      acc += metric_ == Metric::kEuclidean ? d * d : std::abs(d);
    }
    cached_error_[i] = acc;
    total_weight_ += valuations[i].weight();
  }
  return total_weight_ > 0.0;
}

bool IncrementalScorer::CanScore(
    const std::vector<AnnotationId>& roots) const {
  for (AnnotationId root : roots) {
    if (group_index_.count(root) > 0) return false;  // group-key merge
  }
  return true;
}

IncrementalScorer::Score IncrementalScorer::ScoreMerge(
    const std::vector<AnnotationId>& roots) const {
  const auto& terms = terms_;

  // Affected terms and coordinates.
  std::vector<size_t> affected;
  for (AnnotationId root : roots) {
    auto it = terms_of_ann_.find(root);
    if (it == terms_of_ann_.end()) continue;
    affected.insert(affected.end(), it->second.begin(), it->second.end());
  }
  std::sort(affected.begin(), affected.end());
  affected.erase(std::unique(affected.begin(), affected.end()),
                 affected.end());

  auto is_root = [&roots](AnnotationId a) {
    return std::find(roots.begin(), roots.end(), a) != roots.end();
  };
  auto map_ann = [&is_root](AnnotationId a) {
    return is_root(a) ? kPendingSummary : a;
  };

  // Build the mapped affected terms, merging tensor collisions (the
  // Apply+Simplify congruence, applied locally).
  // A plain `Guard` + flag (instead of std::optional) keeps the key fully
  // initialized, which also sidesteps GCC's maybe-uninitialized noise on
  // optional payloads inside map nodes.
  struct MappedKey {
    AnnotationId group = kNoAnnotation;
    Monomial mono;
    bool has_guard = false;
    Guard guard;
    bool operator<(const MappedKey& o) const {
      if (group != o.group) return group < o.group;
      if (mono != o.mono) return mono < o.mono;
      if (has_guard != o.has_guard) return o.has_guard;
      if (!has_guard) return false;
      return guard < o.guard;
    }
  };
  std::map<MappedKey, AggValue> mapped;
  int64_t affected_size_before = 0;
  for (size_t t : affected) {
    const TensorTerm& term = terms[t];
    affected_size_before += TermSize(term);
    MappedKey key;
    key.group = term.group;  // roots are never group keys (CanScore)
    key.mono = term.monomial.Map(map_ann);
    if (term.guard) {
      key.has_guard = true;
      key.guard = term.guard->Map(map_ann);
    }
    auto [it, inserted] = mapped.emplace(std::move(key), term.value);
    if (!inserted) {
      it->second = MergeAggValues(agg_, it->second, term.value);
    }
  }
  int64_t mapped_size = 0;
  std::map<size_t, std::vector<const std::pair<const MappedKey, AggValue>*>>
      mapped_by_group;
  for (const auto& entry : mapped) {
    mapped_size += entry.first.mono.Size() +
                   (entry.first.has_guard ? entry.first.guard.Size() : 0);
    mapped_by_group[group_index_.at(entry.first.group)].push_back(&entry);
  }

  // Original member annotations behind the hypothetical summary, for φ.
  std::vector<AnnotationId> members;
  for (AnnotationId root : roots) {
    auto ms = state_->Members(root);
    members.insert(members.end(), ms.begin(), ms.end());
  }
  const PhiKind phi =
      state_->PhiFor(oracle_->registry()->domain(roots.front()));

  // Marker for term indices that are affected (skipped in recomputation —
  // their mapped versions contribute instead).
  std::vector<bool> is_affected(terms.size(), false);
  for (size_t t : affected) is_affected[t] = true;

  const auto& valuations = oracle_->valuations();
  double total = 0.0;
  for (size_t i = 0; i < valuations.size(); ++i) {
    const MaterializedValuation& v = transformed_[i];

    bool summary_truth;
    if (phi == PhiKind::kOr) {
      summary_truth = false;
      for (AnnotationId m : members) {
        if (valuations[i].IsTrue(m)) {
          summary_truth = true;
          break;
        }
      }
    } else {
      summary_truth = true;
      for (AnnotationId m : members) {
        if (valuations[i].IsFalse(m)) {
          summary_truth = false;
          break;
        }
      }
    }

    double err = cached_error_[i];
    for (const auto& [g, entries] : mapped_by_group) {
      // Recompute coordinate g: untouched terms + mapped affected terms.
      double value = 0.0;
      double count = 0.0;
      bool seen = false;
      for (size_t t : terms_of_group_[g]) {
        if (is_affected[t]) continue;
        const TensorTerm& term = terms[t];
        const bool alive =
            MonomialTruth(term.monomial, v, false) &&
            (!term.guard || GuardTruth(*term.guard, v, false));
        if (!alive) continue;
        value = FoldAggregate(agg_, value, term.value, !seen);
        count += term.value.count;
        seen = true;
      }
      for (const auto* entry : entries) {
        const bool alive =
            MonomialTruth(entry->first.mono, v, summary_truth) &&
            (!entry->first.has_guard ||
             GuardTruth(entry->first.guard, v, summary_truth));
        if (!alive) continue;
        value = FoldAggregate(agg_, value, entry->second, !seen);
        count += entry->second.count;
        seen = true;
      }
      if (agg_ == AggKind::kAvg) {
        value = count > 0 ? value / count : 0.0;
      }
      const double base = base_values_[i][g];
      const double old_value = cur_values_[i][g];
      if (metric_ == Metric::kEuclidean) {
        err += (base - value) * (base - value) -
               (base - old_value) * (base - old_value);
      } else {
        err += std::abs(base - value) - std::abs(base - old_value);
      }
    }
    const double val_func =
        metric_ == Metric::kEuclidean ? std::sqrt(std::max(err, 0.0)) : err;
    total += valuations[i].weight() * val_func;
  }

  Score score;
  score.distance = (total / total_weight_) / oracle_->max_error();
  score.size = current_->Size() - affected_size_before + mapped_size;
  return score;
}

}  // namespace prox
