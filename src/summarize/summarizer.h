#ifndef PROX_SUMMARIZE_SUMMARIZER_H_
#define PROX_SUMMARIZE_SUMMARIZER_H_

#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "provenance/expression.h"
#include "semantics/constraints.h"
#include "semantics/context.h"
#include "summarize/candidates.h"
#include "summarize/distance.h"
#include "summarize/mapping_state.h"

namespace prox {

/// How ties between minimal-score candidates are broken (Section 4.2: the
/// taxonomy distances of members from the summary annotation, by MAX or
/// SUM; kFirst picks the first minimal candidate in deterministic order,
/// the "arbitrary" choice when no taxonomy is given).
enum class TieBreak { kTaxonomyMax, kTaxonomySum, kFirst };

/// Configuration of Algorithm 1 (and of its k-way extension).
struct SummarizerOptions {
  /// wDist and wSize of Definition 3.2.4. Both must be non-negative with a
  /// positive sum; Run() rejects anything else with InvalidArgument, and
  /// normalizes a sum ≠ 1 back to a convex combination (which preserves
  /// the candidate ranking — both weights scale by the same factor — but
  /// keeps reported CandidateScores on the documented [0,1]-ish scale).
  double w_dist = 0.5;
  double w_size = 0.5;

  /// Stop bounds. target_dist = 1 (maximal normalized distance) and
  /// target_size = 1 (minimal size) cancel the respective condition, as
  /// described for the three problem flavors in Section 3.2.
  double target_dist = 1.0;
  int64_t target_size = 1;

  /// Bound on the number of algorithm steps (§6.7's "number of steps").
  int max_steps = std::numeric_limits<int>::max();

  /// Run GroupEquivalent (Proposition 4.2.1) before the greedy loop.
  bool group_equivalent_first = true;
  /// Only merge equivalence classes the mapping constraints allow. The
  /// merge stays distance-0 either way; this keeps summary names
  /// semantically meaningful.
  bool equivalence_respects_constraints = true;

  /// Candidate ranks in CandidateScore: false = normalized values
  /// (distance in [0,1], size / original size); true = ordinal ranks among
  /// the step's candidates, scaled to [0,1].
  bool use_ordinal_ranks = false;

  /// Weight of the taxonomy term in the candidate score (Section 3.2:
  /// "taxonomic information ... may be incorporated as part of the
  /// computation ... prefer mappings of annotations to a new annotation
  /// that is relatively close to them"). 0 (the default) restricts
  /// taxonomy influence to tie-breaking, as in Algorithm 1; > 0 adds
  /// w_taxonomy × (MAX Wu-Palmer distance of members from the summary
  /// concept) to every candidate's score.
  double w_taxonomy = 0.0;

  TieBreak tie_break = TieBreak::kTaxonomyMax;

  /// Incremental candidate scoring (summarize/incremental.h): recompute
  /// only the coordinates a merge touches instead of re-evaluating the
  /// whole candidate expression. Produces bit-identical scores; requires
  /// an aggregate expression, an EnumeratedDistance oracle, and a
  /// coordinate-decomposable VAL-FUNC — the value names which one the
  /// oracle uses. Candidates the scorer cannot handle (group-key merges)
  /// fall back to the general path; fallbacks are counted in
  /// SummaryOutcome::incremental_fallbacks and in the
  /// prox_summarize_incremental_fallbacks_total metric, and the first
  /// fallback of the process logs a one-line warning to stderr.
  enum class Incremental { kOff, kEuclidean, kL1 };
  Incremental incremental = Incremental::kOff;

  CandidateOptions candidates;

  /// Warm start (docs/INGEST.md): replay a previous run's
  /// MappingState::summaries() entries before the greedy loop instead of
  /// starting from the identity mapping. The seed's summary annotations
  /// must still be registered and its members must be live originals of
  /// `p0` — guaranteed under the ingest subsystem's monotone-growth
  /// contract. When set (non-null, non-empty), GroupEquivalent is skipped:
  /// the seed already contains any distance-0 merges its run performed,
  /// and the greedy loop continues from the replayed state under the same
  /// TARGET-DIST / TARGET-SIZE / max_steps bounds. The pointee must
  /// outlive Run().
  const std::vector<std::pair<AnnotationId, std::vector<AnnotationId>>>*
      warm_seed = nullptr;

  /// φ combiners per domain (Section 3.2).
  PhiConfig phi;

  /// Worker threads for candidate scoring (exec/thread_pool.h): `0` =
  /// process default (the PROX_THREADS env var, else hardware
  /// concurrency), `1` = the exact serial path, `N` = N workers. Results
  /// are bit-identical at every setting; see docs/PARALLELISM.md.
  int threads = 1;

  /// Run the greedy loop on the flat prox::ir representation (docs/IR.md):
  /// the input expression is adopted into an arena-backed interned form
  /// whose Apply is copy-on-write and whose Size is a cached header field.
  /// Summaries are byte-identical either way (group names, distances,
  /// ToString); `false` keeps the legacy pointer-tree hot path, retained
  /// for golden comparison and benchmarks.
  bool use_ir = true;
};

/// One committed iteration of the greedy loop.
struct StepRecord {
  int step = 0;
  std::vector<AnnotationId> merged_roots;
  AnnotationId summary = kNoAnnotation;
  std::string summary_name;
  double distance = 0.0;  ///< normalized distance after this step
  int64_t size = 0;       ///< expression size after this step
  double score = 0.0;     ///< winning CandidateScore
  int num_candidates = 0;
  /// Average wall time to evaluate one candidate (distance + size), ns —
  /// the quantity of Figure 6.5a. A view over the step's
  /// "summarize.candidate_eval" trace span (obs/trace.h), not a separate
  /// measurement.
  double candidate_eval_nanos = 0.0;
  /// Total wall time of the step, ns — the duration of the step's
  /// "summarize.step" trace span.
  double step_nanos = 0.0;
};

/// The outcome of a summarization run.
struct SummaryOutcome {
  std::unique_ptr<ProvenanceExpression> summary;
  MappingState state;
  std::vector<StepRecord> steps;
  double final_distance = 0.0;
  int64_t final_size = 0;
  /// True when the TARGET-DIST overshoot rollback of Algorithm 1 line 11
  /// fired and `summary` is the previous step's expression.
  bool rolled_back = false;
  int equivalence_merges = 0;
  /// Total wall time of the run, ns — the duration of the run's
  /// "summarize.run" trace span.
  double total_nanos = 0.0;
  /// Candidates priced by the incremental scorer vs. by the general
  /// oracle path while incremental scoring was requested (fallbacks were
  /// previously silent).
  int incremental_hits = 0;
  int incremental_fallbacks = 0;
  /// Merges replayed from SummarizerOptions::warm_seed before the greedy
  /// loop (0 on cold runs). Not part of the serialized summary JSON.
  int warm_replayed_merges = 0;
};

/// \brief Algorithm 1, "Provenance Summarization Algorithm": greedy search
/// over single-step mappings, scored by
///   CandidateScore = wDist · r_Dist + wSize · r_Size   (Definition 3.2.4),
/// with the distance-0 equivalence grouping of Proposition 4.2.1 as the
/// first step and taxonomy tie-breaking.
///
/// The loop continues while the expression is larger than TARGET-SIZE and
/// the distance is below TARGET-DIST (and steps/candidates remain); if the
/// final step overshoots TARGET-DIST the previous expression is returned.
class Summarizer {
 public:
  /// All pointers must outlive the Summarizer. `registry` is mutated: the
  /// run registers summary annotations (plus per-step scratch annotations
  /// used to score candidates).
  Summarizer(const ProvenanceExpression* p0, AnnotationRegistry* registry,
             const SemanticContext* ctx, const ConstraintSet* constraints,
             DistanceOracle* oracle, const std::vector<Valuation>* valuations,
             SummarizerOptions options);

  /// Runs the algorithm to completion.
  Result<SummaryOutcome> Run();

 private:
  struct ScoredCandidate {
    size_t index;    // into the step's candidate vector
    double distance;
    int64_t size;
    double score;
  };

  /// Applies GroupEquivalent; returns the number of classes merged.
  int GroupEquivalent(std::unique_ptr<ProvenanceExpression>* current,
                      MappingState* state);

  /// Picks the winning candidate of a step (normalized or ordinal scoring
  /// + tie-breaking). `scored` must be non-empty.
  size_t PickBest(const std::vector<Candidate>& candidates,
                  std::vector<ScoredCandidate>* scored) const;

  const ProvenanceExpression* p0_;
  AnnotationRegistry* registry_;
  const SemanticContext* ctx_;
  const ConstraintSet* constraints_;
  DistanceOracle* oracle_;
  const std::vector<Valuation>* valuations_;
  SummarizerOptions options_;
};

}  // namespace prox

#endif  // PROX_SUMMARIZE_SUMMARIZER_H_
