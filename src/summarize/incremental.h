#ifndef PROX_SUMMARIZE_INCREMENTAL_H_
#define PROX_SUMMARIZE_INCREMENTAL_H_

#include <map>
#include <memory>
#include <vector>

#include "provenance/aggregate_expr.h"
#include "provenance/expression.h"
#include "provenance/facade.h"
#include "summarize/distance.h"
#include "summarize/mapping_state.h"

namespace prox {

/// \brief Incremental candidate scoring for aggregate expressions.
///
/// Algorithm 1 evaluates every candidate against every valuation; the
/// naive cost per candidate is O(|V_Ann| · |p'|). A single-step merge of
/// annotations {a, b}, however, only changes the coordinates whose tensors
/// mention a or b — every other coordinate keeps its cached value, and the
/// Euclidean VAL-FUNC's sum of squares updates by the affected terms only:
///
///   Σ_c (base_c − cand_c)²
///     = Σ_c (base_c − cur_c)²  +  Σ_{c affected} [(base_c − cand_c)² −
///                                                 (base_c − cur_c)²]
///
/// The scorer caches per-valuation coordinate values of the *current*
/// expression at construction (one full evaluation) and then prices each
/// candidate at O(|V_Ann| · affected terms). It also returns the size
/// delta, replicating the tensor-congruence merging of Apply+Simplify
/// locally.
///
/// Restrictions (checked by CanScore / the factory): aggregate expressions
/// with the Euclidean or AbsoluteDifference VAL-FUNC, candidates that do
/// not merge group-key annotations, and a cumulative homomorphism that is
/// the identity on group keys (so the base projection is trivial). The
/// Summarizer falls back to the general oracle otherwise.
class IncrementalScorer {
 public:
  enum class Metric { kEuclidean, kL1 };

  /// Builds the cache. Returns nullptr when the configuration is not
  /// scoreable incrementally (see class comment) — in particular when
  /// `current` is not an aggregate structure (AsAggregate() == nullptr).
  ///
  /// \param current the current expression p' — either representation,
  ///   legacy tree or prox::ir flat (must outlive the scorer)
  /// \param oracle the exact oracle whose valuations/base evaluations and
  ///   normalization this scorer reproduces (must outlive the scorer)
  /// \param state the cumulative mapping state (must outlive the scorer)
  static std::unique_ptr<IncrementalScorer> Create(
      const ProvenanceExpression* current, const EnumeratedDistance* oracle,
      const MappingState* state, Metric metric);

  /// True when a merge of exactly these current annotations is scoreable
  /// (none of them is a group key of the expression).
  bool CanScore(const std::vector<AnnotationId>& roots) const;

  /// Result of pricing one candidate merge.
  struct Score {
    double distance = 0.0;  ///< normalized, identical to the oracle's
    int64_t size = 0;       ///< size of the merged expression
  };

  /// Prices the merge of `roots` into one fresh summary annotation,
  /// without materializing the merged expression. Requires
  /// CanScore(roots).
  Score ScoreMerge(const std::vector<AnnotationId>& roots) const;

 private:
  IncrementalScorer(const ProvenanceExpression* current,
                    const EnumeratedDistance* oracle,
                    const MappingState* state, Metric metric);

  bool Initialize();

  const ProvenanceExpression* current_;
  const EnumeratedDistance* oracle_;
  const MappingState* state_;
  Metric metric_;

  // Snapshot of the aggregate structure read through the facade at
  // construction (facade views are transient; owning copies keep the
  // per-candidate scoring loops independent of the representation).
  AggKind agg_ = AggKind::kSum;
  std::vector<TensorTerm> terms_;

  // Structure indexes over `current_`.
  std::vector<AnnotationId> groups_;                   // sorted coordinate keys
  std::map<AnnotationId, size_t> group_index_;
  std::vector<std::vector<size_t>> terms_of_group_;    // group -> term idxs
  std::map<AnnotationId, std::vector<size_t>> terms_of_ann_;

  // Per-valuation caches.
  std::vector<MaterializedValuation> transformed_;    // v^{h,φ} bitmaps
  std::vector<std::vector<double>> cur_values_;       // [valuation][group]
  std::vector<std::vector<double>> base_values_;      // [valuation][group]
  std::vector<double> cached_error_;  // Σ_c metric(base_c, cur_c) per val
  double total_weight_ = 0.0;
};

}  // namespace prox

#endif  // PROX_SUMMARIZE_INCREMENTAL_H_
