#ifndef PROX_SUMMARIZE_EQUIVALENCE_H_
#define PROX_SUMMARIZE_EQUIVALENCE_H_

#include <vector>

#include "provenance/annotation.h"
#include "provenance/valuation.h"

namespace prox {

/// \brief Partitions `annotations` into equivalence classes with respect to
/// `valuations` (Proposition 4.2.1): a and b are equivalent iff every
/// valuation of the class assigns them the same truth value.
///
/// The partition is additionally refined by annotation domain — only
/// same-input-table annotations may ever be mapped together (Section 3.2) —
/// so a user and a movie that happen to agree on every valuation are not
/// grouped. Implemented by the thesis's iterated refinement
/// (split each class by T_v / F_v per valuation), which is polynomial in
/// |Ann| · |V_Ann|; mapping each class to one annotation yields the minimal
/// distance-0 summary.
///
/// Classes are returned sorted by their smallest member; members sorted.
std::vector<std::vector<AnnotationId>> EquivalenceClasses(
    const std::vector<AnnotationId>& annotations,
    const std::vector<Valuation>& valuations,
    const AnnotationRegistry& registry);

}  // namespace prox

#endif  // PROX_SUMMARIZE_EQUIVALENCE_H_
