#include "summarize/mapping_state.h"

#include <algorithm>

namespace prox {

void MappingState::Merge(const std::vector<AnnotationId>& roots,
                         AnnotationId summary) {
  std::vector<AnnotationId> merged_members;
  for (AnnotationId root : roots) {
    auto it = members_.find(root);
    if (it != members_.end()) {
      merged_members.insert(merged_members.end(), it->second.begin(),
                            it->second.end());
      members_.erase(it);
    } else {
      merged_members.push_back(root);
    }
  }
  std::sort(merged_members.begin(), merged_members.end());
  for (AnnotationId original : merged_members) {
    hom_.Set(original, summary);
  }
  summaries_.emplace_back(summary, merged_members);
  members_.emplace(summary, std::move(merged_members));
  ++num_merges_;
}

void MappingState::Replay(
    const std::vector<std::pair<AnnotationId, std::vector<AnnotationId>>>&
        entries) {
  // Original annotation -> the summary currently absorbing it. A recorded
  // entry lists *original* members; the merge that created it was over the
  // roots live at that time, so members already absorbed by an earlier
  // entry must re-enter via their current root or Merge would leave stale
  // member sets behind.
  std::unordered_map<AnnotationId, AnnotationId> root_of;
  for (const auto& [summary, members] : entries) {
    std::vector<AnnotationId> roots;
    roots.reserve(members.size());
    for (AnnotationId member : members) {
      auto it = root_of.find(member);
      const AnnotationId root = it == root_of.end() ? member : it->second;
      if (std::find(roots.begin(), roots.end(), root) == roots.end()) {
        roots.push_back(root);
      }
    }
    Merge(roots, summary);
    for (AnnotationId member : members) root_of[member] = summary;
  }
}

std::vector<AnnotationId> MappingState::Members(AnnotationId root) const {
  auto it = members_.find(root);
  if (it != members_.end()) return it->second;
  return {root};
}

namespace {

/// Calls set(summary, φ(truth of members)) for each summary annotation —
/// the override pass shared by Transform, TransformFrom and TransformLane.
template <typename SetFn>
void ForEachPhiOverride(
    const std::unordered_map<AnnotationId, std::vector<AnnotationId>>&
        members_by_summary,
    const AnnotationRegistry& registry, const PhiConfig& phi_config,
    const Valuation& base, SetFn set) {
  for (const auto& [summary, members] : members_by_summary) {
    const PhiKind phi = phi_config.For(registry.domain(summary));
    bool value;
    if (phi == PhiKind::kOr) {
      value = false;
      for (AnnotationId m : members) {
        if (base.IsTrue(m)) {
          value = true;
          break;
        }
      }
    } else {  // kAnd
      value = true;
      for (AnnotationId m : members) {
        if (base.IsFalse(m)) {
          value = false;
          break;
        }
      }
    }
    set(summary, value);
  }
}

void ApplyPhiOverrides(
    const std::unordered_map<AnnotationId, std::vector<AnnotationId>>&
        members_by_summary,
    const AnnotationRegistry& registry, const PhiConfig& phi_config,
    const Valuation& base, size_t num_annotations,
    MaterializedValuation* out) {
  ForEachPhiOverride(members_by_summary, registry, phi_config, base,
                     [&](AnnotationId summary, bool value) {
                       if (summary < num_annotations) out->Set(summary, value);
                     });
}

}  // namespace

MaterializedValuation MappingState::Transform(const Valuation& base,
                                              size_t num_annotations) const {
  MaterializedValuation out(base, num_annotations);
  ApplyPhiOverrides(members_, *registry_, phi_, base, num_annotations, &out);
  return out;
}

MaterializedValuation MappingState::TransformFrom(
    const Valuation& base, const MaterializedValuation& base_mat,
    size_t num_annotations) const {
  MaterializedValuation out(base_mat, num_annotations);
  ApplyPhiOverrides(members_, *registry_, phi_, base, num_annotations, &out);
  return out;
}

void MappingState::TransformLane(const Valuation& base, size_t lane,
                                 kernels::ValuationBlock* out) const {
  out->FillLaneSparse(lane, base);
  ForEachPhiOverride(members_, *registry_, phi_, base,
                     [&](AnnotationId summary, bool value) {
                       if (summary < out->num_annotations()) {
                         out->Set(lane, summary, value);
                       }
                     });
}

}  // namespace prox
