#include "summarize/equivalence.h"

#include <algorithm>

namespace prox {

std::vector<std::vector<AnnotationId>> EquivalenceClasses(
    const std::vector<AnnotationId>& annotations,
    const std::vector<Valuation>& valuations,
    const AnnotationRegistry& registry) {
  // Initialize one class per domain, then refine by each valuation's
  // true/false split (the recursive construction in the proof of
  // Proposition 4.2.1).
  std::vector<std::vector<AnnotationId>> classes;
  {
    std::vector<AnnotationId> sorted = annotations;
    std::sort(sorted.begin(), sorted.end());
    sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
    std::vector<std::pair<DomainId, AnnotationId>> keyed;
    keyed.reserve(sorted.size());
    for (AnnotationId a : sorted) keyed.emplace_back(registry.domain(a), a);
    std::sort(keyed.begin(), keyed.end());
    for (size_t i = 0; i < keyed.size();) {
      size_t j = i;
      std::vector<AnnotationId> cls;
      while (j < keyed.size() && keyed[j].first == keyed[i].first) {
        cls.push_back(keyed[j].second);
        ++j;
      }
      classes.push_back(std::move(cls));
      i = j;
    }
  }

  for (const Valuation& v : valuations) {
    std::vector<std::vector<AnnotationId>> refined;
    refined.reserve(classes.size());
    for (auto& cls : classes) {
      std::vector<AnnotationId> in_true, in_false;
      for (AnnotationId a : cls) {
        (v.IsTrue(a) ? in_true : in_false).push_back(a);
      }
      if (!in_true.empty()) refined.push_back(std::move(in_true));
      if (!in_false.empty()) refined.push_back(std::move(in_false));
    }
    classes = std::move(refined);
  }

  for (auto& cls : classes) std::sort(cls.begin(), cls.end());
  std::sort(classes.begin(), classes.end(),
            [](const std::vector<AnnotationId>& a,
               const std::vector<AnnotationId>& b) {
              return a.front() < b.front();
            });
  return classes;
}

}  // namespace prox
