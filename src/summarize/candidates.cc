#include "summarize/candidates.h"

#include <algorithm>
#include <map>

#include "common/rng.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace prox {

namespace {

/// Metric handles for candidate generation (docs/OBSERVABILITY.md).
struct CandidateMetrics {
  obs::Counter* generated;
  obs::Counter* rejected;
  obs::Counter* subsampled;

  static const CandidateMetrics& Get() {
    static const CandidateMetrics m = [] {
      auto& r = obs::MetricsRegistry::Default();
      CandidateMetrics m;
      m.generated = r.GetCounter(
          "prox_candidates_generated_total",
          "Constraint-allowed candidate merges emitted by Generate().");
      m.rejected = r.GetCounter(
          "prox_candidates_rejected_total",
          "Candidate merges rejected by the mapping constraints.");
      m.subsampled = r.GetCounter(
          "prox_candidates_subsampled_total",
          "Candidates dropped by the max_candidates uniform subsample.");
      return m;
    }();
    return m;
  }
};

/// Calls `emit` for every size-k subset of `items` (in lexicographic index
/// order). Aborts enumeration early once `emit` returns false.
template <typename Emit>
void ForEachSubset(const std::vector<AnnotationId>& items, int k, Emit emit) {
  const int n = static_cast<int>(items.size());
  if (k > n || k <= 0) return;
  std::vector<int> idx(k);
  for (int i = 0; i < k; ++i) idx[i] = i;
  for (;;) {
    std::vector<AnnotationId> subset(k);
    for (int i = 0; i < k; ++i) subset[i] = items[idx[i]];
    if (!emit(std::move(subset))) return;
    int i = k - 1;
    while (i >= 0 && idx[i] == n - k + i) --i;
    if (i < 0) return;
    ++idx[i];
    for (int j = i + 1; j < k; ++j) idx[j] = idx[j - 1] + 1;
  }
}

}  // namespace

std::vector<Candidate> CandidateGenerator::Generate(
    const ProvenanceExpression& current, const MappingState& state,
    const CandidateOptions& options) const {
  const CandidateMetrics& metrics = CandidateMetrics::Get();
  obs::TraceSpan generate_span("summarize.candidate_gen");
  std::vector<AnnotationId> anns;
  current.CollectAnnotations(&anns);

  // Bucket current annotations by domain; only domains with a rule can
  // yield candidates.
  std::map<DomainId, std::vector<AnnotationId>> by_domain;
  for (AnnotationId a : anns) {
    DomainId d = ctx_->registry->domain(a);
    if (constraints_->HasRule(d)) by_domain[d].push_back(a);
  }

  std::vector<Candidate> out;
  for (const auto& [domain, roots] : by_domain) {
    ForEachSubset(roots, options.arity, [&](std::vector<AnnotationId> subset) {
      // Constraint check runs on the union of original members.
      std::vector<AnnotationId> members;
      for (AnnotationId root : subset) {
        auto ms = state.Members(root);
        members.insert(members.end(), ms.begin(), ms.end());
      }
      MergeDecision decision = constraints_->Evaluate(domain, members, *ctx_);
      if (decision.allowed) {
        Candidate c;
        c.roots = std::move(subset);
        c.domain = domain;
        c.decision = std::move(decision);
        out.push_back(std::move(c));
      } else {
        metrics.rejected->Increment();
      }
      return true;
    });
  }

  metrics.generated->Increment(out.size());
  if (options.max_candidates > 0 && out.size() > options.max_candidates) {
    metrics.subsampled->Increment(out.size() - options.max_candidates);
    // Deterministic uniform subsample (partial Fisher-Yates), preserving
    // the original order of the survivors for reproducibility.
    Rng rng(options.sample_seed);
    std::vector<size_t> indices(out.size());
    for (size_t i = 0; i < indices.size(); ++i) indices[i] = i;
    for (size_t i = 0; i < options.max_candidates; ++i) {
      size_t j = i + rng.PickIndex(indices.size() - i);
      std::swap(indices[i], indices[j]);
    }
    indices.resize(options.max_candidates);
    std::sort(indices.begin(), indices.end());
    std::vector<Candidate> sampled;
    sampled.reserve(indices.size());
    for (size_t i : indices) sampled.push_back(std::move(out[i]));
    out = std::move(sampled);
  }
  return out;
}

}  // namespace prox
