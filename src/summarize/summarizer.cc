#include "summarize/summarizer.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <map>
#include <mutex>

#include "common/timer.h"
#include "exec/thread_pool.h"
#include "ir/adopt.h"
#include "ir/term_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "summarize/equivalence.h"
#include "summarize/incremental.h"

namespace prox {

namespace {

/// Metric handles for the greedy loop, registered once per process (see
/// docs/OBSERVABILITY.md for the catalogue).
struct SummarizeMetrics {
  obs::Counter* runs;
  obs::Counter* steps;
  obs::Counter* rollbacks;
  obs::Counter* equivalence_merges;
  obs::Counter* candidates_scored;
  obs::Counter* candidate_eval_nanos_total;
  obs::Counter* incremental_hits;
  obs::Counter* incremental_fallbacks;
  obs::Counter* warmstart_runs;
  obs::Counter* warmstart_replayed_merges;
  obs::Histogram* step_nanos;
  obs::Histogram* run_nanos;
  obs::Histogram* candidates_per_step;
  obs::Gauge* expression_size;
  obs::Gauge* parallel_efficiency;

  static const SummarizeMetrics& Get() {
    static const SummarizeMetrics m = [] {
      auto& r = obs::MetricsRegistry::Default();
      SummarizeMetrics m;
      m.runs = r.GetCounter("prox_summarize_runs_total",
                            "Summarization runs started.");
      m.steps = r.GetCounter("prox_summarize_steps_total",
                             "Greedy steps committed across all runs.");
      m.rollbacks = r.GetCounter(
          "prox_summarize_rollbacks_total",
          "TARGET-DIST overshoot rollbacks (Algorithm 1 line 11).");
      m.equivalence_merges = r.GetCounter(
          "prox_summarize_equivalence_merges_total",
          "Distance-0 equivalence classes merged before the greedy loop.");
      m.candidates_scored =
          r.GetCounter("prox_summarize_candidates_scored_total",
                       "Candidate merges priced (distance + size).");
      m.candidate_eval_nanos_total = r.GetCounter(
          "prox_summarize_candidate_eval_nanos_total",
          "Total wall time spent pricing candidates, nanoseconds.");
      m.incremental_hits = r.GetCounter(
          "prox_summarize_incremental_hits_total",
          "Candidates priced by the incremental scorer fast path.");
      m.incremental_fallbacks = r.GetCounter(
          "prox_summarize_incremental_fallbacks_total",
          "Candidates that fell back to the general oracle path while "
          "incremental scoring was requested.");
      m.warmstart_runs = r.GetCounter(
          "prox_warmstart_runs_total",
          "Summarization runs warm-started from a previous mapping state "
          "(docs/INGEST.md).");
      m.warmstart_replayed_merges = r.GetCounter(
          "prox_warmstart_replayed_merges_total",
          "Merges replayed from warm-start seeds instead of re-searched.");
      m.step_nanos = r.GetHistogram("prox_summarize_step_duration_nanos",
                                    "Wall time per committed greedy step.",
                                    obs::LatencyBucketsNanos());
      m.run_nanos = r.GetHistogram("prox_summarize_run_duration_nanos",
                                   "Wall time per summarization run.",
                                   obs::LatencyBucketsNanos());
      m.candidates_per_step = r.GetHistogram(
          "prox_summarize_candidates_per_step",
          "Size of the candidate space at each greedy step.",
          obs::CountBuckets());
      m.expression_size =
          r.GetGauge("prox_summarize_expression_size",
                     "Expression size after the most recent step.");
      m.parallel_efficiency = r.GetGauge(
          "prox_summarize_parallel_efficiency",
          "Per-step candidate-scoring speedup estimate: sum of individual "
          "candidate pricing times divided by the phase's wall time "
          "(~1 serial, approaches the worker count under ideal scaling).");
      return m;
    }();
    return m;
  }
};

void WarnOnFirstIncrementalFallback() {
  static std::once_flag once;
  std::call_once(once, [] {
    std::fprintf(stderr,
                 "prox: incremental scorer fell back to the general path "
                 "(group-key merge or unsupported configuration); further "
                 "fallbacks are counted in "
                 "prox_summarize_incremental_fallbacks_total\n");
  });
}

}  // namespace

Summarizer::Summarizer(const ProvenanceExpression* p0,
                       AnnotationRegistry* registry,
                       const SemanticContext* ctx,
                       const ConstraintSet* constraints,
                       DistanceOracle* oracle,
                       const std::vector<Valuation>* valuations,
                       SummarizerOptions options)
    : p0_(p0),
      registry_(registry),
      ctx_(ctx),
      constraints_(constraints),
      oracle_(oracle),
      valuations_(valuations),
      options_(std::move(options)) {}

int Summarizer::GroupEquivalent(
    std::unique_ptr<ProvenanceExpression>* current, MappingState* state) {
  std::vector<AnnotationId> anns;
  p0_->CollectAnnotations(&anns);
  auto classes = EquivalenceClasses(anns, *valuations_, *registry_);
  int merges = 0;
  for (const auto& cls : classes) {
    if (cls.size() < 2) continue;
    DomainId domain = registry_->domain(cls.front());
    MergeDecision decision = constraints_->Evaluate(domain, cls, *ctx_);
    if (options_.equivalence_respects_constraints && !decision.allowed) {
      continue;
    }
    std::string name = decision.allowed
                           ? decision.name
                           : "eq:" + registry_->name(cls.front()) + "+" +
                                 std::to_string(cls.size() - 1);
    AnnotationId summary = registry_->AddSummary(domain, name);
    state->Merge(cls, summary);
    ++merges;
  }
  if (merges > 0) {
    // `*current` still equals p0 here (the loop has not started), so
    // applying on it instead of on p0_ keeps the result in the current
    // representation (IR when adopted) with identical content.
    *current = (*current)->Apply(state->cumulative());
  }
  return merges;
}

size_t Summarizer::PickBest(const std::vector<Candidate>& candidates,
                            std::vector<ScoredCandidate>* scored) const {
  if (options_.use_ordinal_ranks) {
    // Convert distance and size into ordinal ranks among the step's
    // candidates (ties share the lower rank), scaled to [0,1].
    const size_t k = scored->size();
    std::vector<size_t> by_dist(k), by_size(k);
    for (size_t i = 0; i < k; ++i) by_dist[i] = by_size[i] = i;
    std::sort(by_dist.begin(), by_dist.end(), [&](size_t a, size_t b) {
      return (*scored)[a].distance < (*scored)[b].distance;
    });
    std::sort(by_size.begin(), by_size.end(), [&](size_t a, size_t b) {
      return (*scored)[a].size < (*scored)[b].size;
    });
    std::vector<double> dist_rank(k), size_rank(k);
    for (size_t r = 0; r < k; ++r) {
      dist_rank[by_dist[r]] =
          (r > 0 && (*scored)[by_dist[r]].distance ==
                        (*scored)[by_dist[r - 1]].distance)
              ? dist_rank[by_dist[r - 1]]
              : static_cast<double>(r) / k;
      size_rank[by_size[r]] =
          (r > 0 &&
           (*scored)[by_size[r]].size == (*scored)[by_size[r - 1]].size)
              ? size_rank[by_size[r - 1]]
              : static_cast<double>(r) / k;
    }
    for (size_t i = 0; i < k; ++i) {
      (*scored)[i].score =
          options_.w_dist * dist_rank[i] + options_.w_size * size_rank[i] +
          options_.w_taxonomy *
              candidates[(*scored)[i].index].decision.taxonomy_distance_max;
    }
  }

  // Minimal score; break ties by the taxonomy distance criterion, then by
  // candidate order (deterministic).
  size_t best = 0;
  for (size_t i = 1; i < scored->size(); ++i) {
    const auto& a = (*scored)[i];
    const auto& b = (*scored)[best];
    if (a.score < b.score) {
      best = i;
    } else if (a.score == b.score && options_.tie_break != TieBreak::kFirst) {
      double ta, tb;
      if (options_.tie_break == TieBreak::kTaxonomyMax) {
        ta = candidates[a.index].decision.taxonomy_distance_max;
        tb = candidates[b.index].decision.taxonomy_distance_max;
      } else {
        ta = candidates[a.index].decision.taxonomy_distance_sum;
        tb = candidates[b.index].decision.taxonomy_distance_sum;
      }
      if (ta < tb) best = i;
    }
  }
  return best;
}

Result<SummaryOutcome> Summarizer::Run() {
  if (options_.w_dist < 0 || options_.w_size < 0) {
    return Status::InvalidArgument("weights must be non-negative");
  }
  const double weight_sum = options_.w_dist + options_.w_size;
  if (weight_sum <= 0.0) {
    return Status::InvalidArgument(
        "w_dist + w_size must be positive (both weights are zero)");
  }
  if (std::abs(weight_sum - 1.0) > 1e-9) {
    // Definition 3.2.4 wants a convex combination; normalizing preserves
    // the candidate ranking (common scale factor) while keeping reported
    // scores meaningful.
    options_.w_dist /= weight_sum;
    options_.w_size /= weight_sum;
  }
  if (options_.candidates.arity < 2) {
    return Status::InvalidArgument("merge arity must be at least 2");
  }

  const SummarizeMetrics& metrics = SummarizeMetrics::Get();
  metrics.runs->Increment();
  obs::TraceSpan run_span("summarize.run");
  SummaryOutcome outcome{nullptr, MappingState(registry_, options_.phi), {},
                         0.0, 0, false, 0, 0.0, 0, 0, 0};
  // Adopt the input into the flat interned representation for the hot
  // loop (docs/IR.md). The pool lives as long as the run's expressions via
  // the shared_ptr each IR expression holds.
  std::unique_ptr<ProvenanceExpression> current;
  if (options_.use_ir) {
    current = ir::Adopt(*p0_, std::make_shared<ir::TermPool>());
  } else {
    current = p0_->Clone();
  }
  MappingState& state = outcome.state;

  const bool warm =
      options_.warm_seed != nullptr && !options_.warm_seed->empty();
  if (warm) {
    // Warm start: rebuild the previous run's mapping state and jump the
    // expression to it, instead of re-searching merges the previous run
    // already paid for. The seed subsumes GroupEquivalent (its run
    // performed any distance-0 merges first), so that pass is skipped.
    obs::TraceSpan warm_span("summarize.warm_replay");
    state.Replay(*options_.warm_seed);
    current = current->Apply(state.cumulative());
    outcome.warm_replayed_merges = state.num_merges();
    metrics.warmstart_runs->Increment();
    metrics.warmstart_replayed_merges->Increment(
        static_cast<uint64_t>(outcome.warm_replayed_merges));
  } else if (options_.group_equivalent_first) {
    obs::TraceSpan equivalence_span("summarize.group_equivalent");
    outcome.equivalence_merges = GroupEquivalent(&current, &state);
    metrics.equivalence_merges->Increment(outcome.equivalence_merges);
  }

  const int64_t original_size = std::max<int64_t>(p0_->Size(), 1);
  double dist = oracle_->Distance(*current, state);

  CandidateGenerator generator(constraints_, ctx_);

  // Previous step's snapshot, for the TARGET-DIST rollback.
  std::unique_ptr<ProvenanceExpression> prev_expr;
  MappingState prev_state = state;
  double prev_dist = dist;

  const bool want_incremental =
      options_.incremental != SummarizerOptions::Incremental::kOff;

  // One pool resolution per run. threads = 1 keeps pool() null, which makes
  // every ParallelFor below the plain serial loop.
  exec::PoolRef pool(options_.threads);

  int step = 0;
  while (step < options_.max_steps && current->Size() > options_.target_size &&
         dist < options_.target_dist) {
    obs::TraceSpan step_span("summarize.step");
    std::vector<Candidate> candidates =
        generator.Generate(*current, state, options_.candidates);
    if (candidates.empty()) {
      // Not a step: nothing merged, so no span is recorded either.
      step_span.Cancel();
      break;
    }
    metrics.candidates_per_step->Observe(
        static_cast<double>(candidates.size()));

    // One scratch summary annotation per domain per step is enough: the
    // tentative states of different candidates never coexist, and no two
    // candidates of one domain are scored against each other's state.
    // Registering them all *before* scoring keeps the registry read-only
    // while workers price candidates (annotation.h documents that
    // contract); the map itself is only read (.at) from here on.
    std::map<DomainId, AnnotationId> scratch;
    for (const Candidate& c : candidates) {
      if (scratch.count(c.domain) == 0) {
        scratch[c.domain] = registry_->AddSummary(c.domain, "~scratch");
      }
    }

    // Optional incremental scorer for this step's expression. The facade
    // check covers both representations (legacy tree and prox::ir).
    std::unique_ptr<IncrementalScorer> incremental;
    if (want_incremental) {
      auto* enumerated = dynamic_cast<EnumeratedDistance*>(oracle_);
      if (current->AsAggregate() != nullptr && enumerated != nullptr) {
        incremental = IncrementalScorer::Create(
            current.get(), enumerated, &state,
            options_.incremental == SummarizerOptions::Incremental::kL1
                ? IncrementalScorer::Metric::kL1
                : IncrementalScorer::Metric::kEuclidean);
      }
    }

    // Candidate pricing fans out over the pool. Every worker shares only
    // read-only state (current expression, mapping state, registry,
    // scratch map, incremental scorer — all const from here); per-candidate
    // mutable state (tentative MappingState, step Homomorphism, the
    // candidate expression) is built inside the loop body, and results land
    // in the pre-sized `scored` vector by index, so PickBest sees exactly
    // the ordering and tie-breaks of the serial loop. On the parallel path
    // this aggregate span stands in for the suppressed per-candidate
    // distance.oracle spans (see distance.cc).
    obs::TraceSpan eval_span("summarize.candidate_eval");
    std::vector<ScoredCandidate> scored(candidates.size());
    std::atomic<int> step_incremental_hits{0};
    std::atomic<int> step_incremental_fallbacks{0};
    std::atomic<int64_t> serial_estimate_nanos{0};
    exec::ParallelFor(
        pool.pool(), 0, static_cast<int64_t>(candidates.size()), 1,
        [&](int64_t idx) {
          const size_t i = static_cast<size_t>(idx);
          const Candidate& c = candidates[i];
          Timer candidate_timer;
          ScoredCandidate sc;
          sc.index = i;
          if (incremental != nullptr && incremental->CanScore(c.roots)) {
            IncrementalScorer::Score fast = incremental->ScoreMerge(c.roots);
            sc.distance = fast.distance;
            sc.size = fast.size;
            step_incremental_hits.fetch_add(1, std::memory_order_relaxed);
            metrics.incremental_hits->Increment();
          } else {
            if (want_incremental) {
              step_incremental_fallbacks.fetch_add(1,
                                                   std::memory_order_relaxed);
              metrics.incremental_fallbacks->Increment();
              WarnOnFirstIncrementalFallback();
            }
            AnnotationId tmp = scratch.at(c.domain);
            MappingState tentative = state;
            tentative.Merge(c.roots, tmp);
            Homomorphism step_hom;
            for (AnnotationId root : c.roots) step_hom.Set(root, tmp);
            auto cand_expr = current->Apply(step_hom);
            sc.distance = oracle_->Distance(*cand_expr, tentative);
            sc.size = cand_expr->Size();
          }
          sc.score = options_.w_dist * sc.distance +
                     options_.w_size *
                         (static_cast<double>(sc.size) / original_size) +
                     options_.w_taxonomy * c.decision.taxonomy_distance_max;
          scored[i] = sc;
          serial_estimate_nanos.fetch_add(candidate_timer.ElapsedNanos(),
                                          std::memory_order_relaxed);
        });
    outcome.incremental_hits +=
        step_incremental_hits.load(std::memory_order_relaxed);
    outcome.incremental_fallbacks +=
        step_incremental_fallbacks.load(std::memory_order_relaxed);
    const int64_t eval_total_nanos = eval_span.Close();
    metrics.candidates_scored->Increment(candidates.size());
    metrics.candidate_eval_nanos_total->Increment(eval_total_nanos);
    if (eval_total_nanos > 0) {
      metrics.parallel_efficiency->Set(
          static_cast<double>(
              serial_estimate_nanos.load(std::memory_order_relaxed)) /
          static_cast<double>(eval_total_nanos));
    }
    const double eval_nanos =
        static_cast<double>(eval_total_nanos) / candidates.size();

    size_t best = PickBest(candidates, &scored);
    const Candidate& winner = candidates[scored[best].index];

    // Commit the winning merge under its real (semantically derived) name.
    AnnotationId summary =
        registry_->AddSummary(winner.domain, winner.decision.name);
    prev_expr = std::move(current);
    prev_state = state;
    prev_dist = dist;

    state.Merge(winner.roots, summary);
    Homomorphism commit_hom;
    for (AnnotationId root : winner.roots) commit_hom.Set(root, summary);
    current = prev_expr->Apply(commit_hom);
    dist = oracle_->Distance(*current, state);
    ++step;

    StepRecord record;
    record.step = step;
    record.merged_roots = winner.roots;
    record.summary = summary;
    record.summary_name = registry_->name(summary);
    record.distance = dist;
    record.size = current->Size();
    record.score = scored[best].score;
    record.num_candidates = static_cast<int>(candidates.size());
    record.candidate_eval_nanos = eval_nanos;
    // StepRecord timings are views over the trace spans: closing the span
    // here makes the trace JSON and the record the same measurement.
    const int64_t step_total_nanos = step_span.Close();
    record.step_nanos = static_cast<double>(step_total_nanos);
    metrics.steps->Increment();
    metrics.step_nanos->Observe(static_cast<double>(step_total_nanos));
    metrics.expression_size->Set(static_cast<double>(record.size));
    outcome.steps.push_back(std::move(record));
  }

  // Algorithm 1 line 11: the last merge overshot the distance budget.
  if (dist >= options_.target_dist && prev_expr != nullptr) {
    current = std::move(prev_expr);
    state = prev_state;
    dist = prev_dist;
    outcome.rolled_back = true;
    metrics.rollbacks->Increment();
  }

  outcome.summary = std::move(current);
  outcome.final_distance = dist;
  outcome.final_size = outcome.summary->Size();
  const int64_t run_total_nanos = run_span.Close();
  outcome.total_nanos = static_cast<double>(run_total_nanos);
  metrics.run_nanos->Observe(static_cast<double>(run_total_nanos));
  return outcome;
}

}  // namespace prox
