#ifndef PROX_SUMMARIZE_CANDIDATES_H_
#define PROX_SUMMARIZE_CANDIDATES_H_

#include <cstdint>
#include <vector>

#include "provenance/expression.h"
#include "semantics/constraints.h"
#include "semantics/context.h"
#include "summarize/mapping_state.h"

namespace prox {

/// \brief A single-step mapping candidate: `arity` current annotations of
/// one domain proposed for merging into a fresh summary annotation
/// (the CandidateHom set of Algorithm 1 line 3).
struct Candidate {
  std::vector<AnnotationId> roots;  ///< current annotations to merge, sorted
  DomainId domain;
  MergeDecision decision;  ///< constraint verdict: name + taxonomy metrics
};

struct CandidateOptions {
  /// How many annotations one step maps together. 2 reproduces the thesis;
  /// larger values implement its future-work k-way extension (§9).
  int arity = 2;
  /// Cap on candidates per step (0 = unlimited). Beyond the cap a
  /// deterministic uniform sample is drawn.
  size_t max_candidates = 0;
  uint64_t sample_seed = 0xCA1D1DA7E5;
};

/// \brief Enumerates the constraint-satisfying merge candidates over the
/// annotations of the current expression.
///
/// Constraints are evaluated on the union of *original* members of the
/// proposed groups, so e.g. a "shared attribute" rule keeps holding
/// transitively as groups grow.
class CandidateGenerator {
 public:
  CandidateGenerator(const ConstraintSet* constraints,
                     const SemanticContext* ctx)
      : constraints_(constraints), ctx_(ctx) {}

  /// All allowed candidates for the current expression/state, in
  /// deterministic (domain, roots) order.
  std::vector<Candidate> Generate(const ProvenanceExpression& current,
                                  const MappingState& state,
                                  const CandidateOptions& options) const;

 private:
  const ConstraintSet* constraints_;
  const SemanticContext* ctx_;
};

}  // namespace prox

#endif  // PROX_SUMMARIZE_CANDIDATES_H_
