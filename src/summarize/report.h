#ifndef PROX_SUMMARIZE_REPORT_H_
#define PROX_SUMMARIZE_REPORT_H_

#include <map>
#include <string>
#include <vector>

#include "semantics/context.h"
#include "summarize/summarizer.h"

namespace prox {

/// \brief Structured rendering of a summarization outcome — the data
/// behind the PROX summary view's groups subview (Figures 7.5-7.7): each
/// summary group with its members, the distribution of every attribute
/// among the members, and the group's aggregated contribution.
struct GroupReport {
  AnnotationId summary = kNoAnnotation;
  std::string name;
  std::vector<std::string> member_names;
  /// attribute name -> (value -> member count), e.g.
  /// "Gender" -> {"F": 12, "M": 4} (Figure 7.6's per-group breakdown).
  std::map<std::string, std::map<std::string, int>> attribute_histogram;
  /// Aggregated value contributed by the group's tensors under the
  /// all-true valuation ("AGG:5" in Figure 7.5), when the summary
  /// expression is an aggregate; 0 otherwise.
  double aggregate = 0.0;
  bool has_aggregate = false;
};

/// \brief Builds the groups view of a summary outcome.
class SummaryReporter {
 public:
  SummaryReporter(const SemanticContext* ctx) : ctx_(ctx) {}

  /// One report per summary annotation still present in the outcome's
  /// final expression (intermediate absorbed groups and scratch
  /// annotations are skipped), in creation order.
  std::vector<GroupReport> Groups(const SummaryOutcome& outcome) const;

  /// Step-by-step textual trace ("observe the algorithm in action", the
  /// arrows of Figure 7.5): one line per step with the merged names and
  /// resulting distance/size.
  std::vector<std::string> Trace(const SummaryOutcome& outcome) const;

 private:
  const SemanticContext* ctx_;
};

/// Reconstructs the intermediate expression after `step` greedy steps of a
/// finished run — the summary view's left/right-arrow navigation. Step 0
/// is the state after the equivalence grouping; `outcome.steps.size()` is
/// the final expression. Out-of-range steps are an error.
Result<std::unique_ptr<ProvenanceExpression>> ExpressionAtStep(
    const ProvenanceExpression& p0, const SummaryOutcome& outcome, int step);

}  // namespace prox

#endif  // PROX_SUMMARIZE_REPORT_H_
