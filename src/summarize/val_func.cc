#include "summarize/val_func.h"

#include <cmath>
#include <cstdlib>

namespace prox {

namespace {

/// Iterates the union of two sorted coordinate lists, calling
/// fn(orig_value, summ_value) for every group key present in either.
template <typename Fn>
void ForEachCoordPair(const EvalResult& orig, const EvalResult& summ, Fn fn) {
  const auto& a = orig.coords();
  const auto& b = summ.coords();
  size_t i = 0, j = 0;
  while (i < a.size() || j < b.size()) {
    if (j >= b.size() || (i < a.size() && a[i].group < b[j].group)) {
      fn(a[i].value, 0.0);
      ++i;
    } else if (i >= a.size() || b[j].group < a[i].group) {
      fn(0.0, b[j].value);
      ++j;
    } else {
      fn(a[i].value, b[j].value);
      ++i;
      ++j;
    }
  }
}

double SumOfCoords(const EvalResult& r) {
  if (r.kind() == EvalResult::Kind::kScalar) return std::abs(r.scalar());
  double total = 0.0;
  for (const auto& c : r.coords()) total += std::abs(c.value);
  return total;
}

}  // namespace

double AbsoluteDifferenceValFunc::Compute(const EvalResult& orig,
                                          const EvalResult& summ) const {
  if (orig.kind() == EvalResult::Kind::kScalar &&
      summ.kind() == EvalResult::Kind::kScalar) {
    return std::abs(orig.scalar() - summ.scalar());
  }
  double total = 0.0;
  ForEachCoordPair(orig, summ, [&total](double a, double b) {
    total += std::abs(a - b);
  });
  return total;
}

double AbsoluteDifferenceValFunc::MaxError(
    const EvalResult& all_true_orig) const {
  return SumOfCoords(all_true_orig);
}

double DisagreementValFunc::Compute(const EvalResult& orig,
                                    const EvalResult& summ) const {
  return orig == summ ? 0.0 : 1.0;
}

double DisagreementValFunc::MaxError(const EvalResult& all_true_orig) const {
  (void)all_true_orig;
  return 1.0;
}

double EuclideanValFunc::Compute(const EvalResult& orig,
                                 const EvalResult& summ) const {
  if (orig.kind() == EvalResult::Kind::kScalar &&
      summ.kind() == EvalResult::Kind::kScalar) {
    return std::abs(orig.scalar() - summ.scalar());
  }
  double total = 0.0;
  ForEachCoordPair(orig, summ, [&total](double a, double b) {
    total += (a - b) * (a - b);
  });
  return std::sqrt(total);
}

double EuclideanValFunc::MaxError(const EvalResult& all_true_orig) const {
  // Both vectors live in the box [0, m] coordinate-wise where m is the
  // all-true evaluation (truth-monotone aggregates over non-negative
  // values), and any projection of the box has L2 diameter at most the L1
  // norm of m, uniformly over candidate coordinate spaces.
  return SumOfCoords(all_true_orig);
}

double DdpDifferenceValFunc::Compute(const EvalResult& orig,
                                     const EvalResult& summ) const {
  const bool of = orig.feasible();
  const bool sf = summ.feasible();
  if (of && sf) return std::abs(orig.cost() - summ.cost());
  if (!of && !sf) return 0.0;
  return max_error_;
}

double DdpDifferenceValFunc::MaxError(const EvalResult& all_true_orig) const {
  (void)all_true_orig;
  return max_error_;
}

}  // namespace prox
