#ifndef PROX_SUMMARIZE_DISTANCE_H_
#define PROX_SUMMARIZE_DISTANCE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/rng.h"
#include "exec/thread_pool.h"
#include "ir/term_pool.h"
#include "kernels/batch_eval.h"
#include "provenance/expression.h"
#include "summarize/mapping_state.h"
#include "summarize/val_func.h"

namespace prox {

/// \brief Computes dist^{h,φ}(p₀, p') (Definition 3.2.2) for candidate
/// summaries against a fixed original expression and valuation set.
///
/// Oracles pre-evaluate p₀ under every base valuation once; each candidate
/// then costs |V| evaluations of the (smaller) candidate expression. The
/// returned distances are normalized into [0,1] by VAL-FUNC's MaxError
/// bound, matching the normalized distances reported in §6.3.
class DistanceOracle {
 public:
  virtual ~DistanceOracle() = default;

  /// Average normalized VAL-FUNC of `cand` (= h(p₀) for the cumulative h in
  /// `state`) against the original expression.
  virtual double Distance(const ProvenanceExpression& cand,
                          const MappingState& state) = 0;

  /// The normalization constant (maximum possible error).
  virtual double max_error() const = 0;
};

/// Exact distance over an explicitly enumerated valuation class — the
/// thesis's evaluation setting, where V_Ann ("Cancel Single Annotation",
/// "Cancel Single Attribute") is polynomial in the input.
class EnumeratedDistance : public DistanceOracle {
 public:
  /// Valuations per reduction chunk. Fixed (never derived from the thread
  /// count) so the floating-point summation tree — and therefore the
  /// reported distance — is bit-identical at any parallelism level.
  static constexpr int64_t kReductionGrain = 8;

  /// \param p0 the original expression (must outlive the oracle)
  /// \param registry annotation registry (may grow while the oracle lives)
  /// \param val_func VAL-FUNC (must outlive the oracle)
  /// \param valuations the enumerated class V_Ann
  /// \param threads exec thread count (0 = process default, 1 = serial)
  EnumeratedDistance(const ProvenanceExpression* p0,
                     const AnnotationRegistry* registry,
                     const ValFunc* val_func,
                     std::vector<Valuation> valuations, int threads = 1);

  double Distance(const ProvenanceExpression& cand,
                  const MappingState& state) override;
  double max_error() const override { return max_error_; }

  size_t num_valuations() const { return valuations_.size(); }
  const std::vector<Valuation>& valuations() const { return valuations_; }
  /// Cached v(p₀) per valuation (used by the incremental scorer).
  const std::vector<EvalResult>& base_evals() const { return base_evals_; }
  /// Pre-materialized base valuations, aligned with base_evals(). Distance
  /// extends a copy per call (MappingState::TransformFrom) instead of
  /// re-materializing each sparse valuation per call per step.
  const std::vector<MaterializedValuation>& base_mats() const {
    return base_mats_;
  }
  const AnnotationRegistry* registry() const { return registry_; }

 private:
  /// Packs base_evals_ into per-chunk BlockEvals for the batch kernels
  /// (kernels/batch_eval.h), lazily and once — Distance runs concurrently
  /// on exec workers during candidate scoring. Sets base_blocks_ok_.
  void EnsureBaseBlocks();

  const ProvenanceExpression* p0_;
  const AnnotationRegistry* registry_;
  const ValFunc* val_func_;
  std::vector<Valuation> valuations_;
  std::vector<EvalResult> base_evals_;  // v(p₀) per valuation, cached
  std::vector<MaterializedValuation> base_mats_;  // materialized once
  double total_weight_ = 0.0;
  double max_error_ = 1.0;
  exec::PoolRef pool_;

  // Batch-kernel state (makes the oracle non-copyable; it is always used
  // in place). base_groups_ is the shared coordinate layout of every
  // base evaluation — candidates on the identity-on-groups path must
  // produce exactly this layout, which ProgramMatchesLayout checks.
  std::once_flag base_blocks_once_;
  bool base_blocks_ok_ = false;
  EvalResult::Kind base_kind_ = EvalResult::Kind::kScalar;
  std::vector<AnnotationId> base_groups_;
  std::vector<kernels::BlockEval> base_blocks_;  // one per grain-8 chunk
};

/// Monte-Carlo distance over *all* 2^n valuations — the sampling
/// approximation of Proposition 4.1.2. Each sample draws a uniform truth
/// valuation over p₀'s annotations, evaluates both expressions and
/// averages VAL-FUNC; Hoeffding's inequality bounds the sample count
/// needed for an (ε, δ) absolute-error guarantee on the normalized
/// distance.
class SampledDistance : public DistanceOracle {
 public:
  struct Options {
    double epsilon = 0.05;  ///< absolute error bound on normalized distance
    double delta = 0.05;    ///< failure probability
    int num_samples = 0;    ///< overrides the (ε, δ)-derived count when > 0
    uint64_t seed = 0x5EEDBA5E;
    int threads = 1;  ///< exec thread count (0 = process default)
  };

  /// Samples per reduction chunk; fixed for the same bit-identical-at-any-
  /// thread-count reason as EnumeratedDistance::kReductionGrain.
  static constexpr int64_t kSampleGrain = 16;

  /// Samples needed so that P(|d' − dist| > ε) < δ for a [0,1]-bounded
  /// estimator: ⌈ln(2/δ) / (2ε²)⌉.
  static int RequiredSamples(double epsilon, double delta);

  SampledDistance(const ProvenanceExpression* p0,
                  const AnnotationRegistry* registry, const ValFunc* val_func,
                  Options options);

  double Distance(const ProvenanceExpression& cand,
                  const MappingState& state) override;
  double max_error() const override { return max_error_; }

  int num_samples() const { return num_samples_; }

 private:
  const ProvenanceExpression* p0_;
  const AnnotationRegistry* registry_;
  const ValFunc* val_func_;
  Options options_;
  int num_samples_;
  std::vector<AnnotationId> annotations_;  // of p0
  EvalResult all_true_eval_;  // group-key structure for the identity check
  double max_error_ = 1.0;
  exec::PoolRef pool_;

  // Batch-kernel state. The base side has no cached per-valuation
  // evaluations (samples are drawn fresh), so the constructor adopts p₀
  // into prox::ir once and lowers it into base_program_; each chunk then
  // batch-evaluates base and candidate over the same valuation block.
  std::shared_ptr<ir::TermPool> batch_pool_;
  std::unique_ptr<ProvenanceExpression> p0_ir_;
  kernels::BatchProgram base_program_;
  bool base_program_ok_ = false;
  EvalResult::Kind base_kind_ = EvalResult::Kind::kScalar;
  std::vector<AnnotationId> base_groups_;
};

}  // namespace prox

#endif  // PROX_SUMMARIZE_DISTANCE_H_
