#include "summarize/distance.h"

#include <cmath>
#include <optional>

#include "exec/thread_pool.h"
#include "ir/adopt.h"
#include "kernels/metrics.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace prox {

namespace {

/// Metric handles for the distance oracles (docs/OBSERVABILITY.md).
struct DistanceMetrics {
  obs::Counter* enumerated_calls;
  obs::Counter* enumerated_evals;
  obs::Counter* base_eval_reuse;
  obs::Counter* sampled_calls;
  obs::Counter* samples;

  static const DistanceMetrics& Get() {
    static const DistanceMetrics m = [] {
      auto& r = obs::MetricsRegistry::Default();
      DistanceMetrics m;
      m.enumerated_calls =
          r.GetCounter("prox_distance_enumerated_calls_total",
                       "EnumeratedDistance::Distance invocations.");
      m.enumerated_evals = r.GetCounter(
          "prox_distance_enumerated_evals_total",
          "Candidate-expression evaluations performed by the enumerated "
          "oracle (one per valuation per call).");
      m.base_eval_reuse = r.GetCounter(
          "prox_distance_base_eval_reuse_total",
          "Cached base evaluations fed to VAL-FUNC directly via the "
          "identity-on-groups fast path (no re-projection).");
      m.sampled_calls = r.GetCounter(
          "prox_distance_sampled_calls_total",
          "SampledDistance::Distance invocations.");
      m.samples = r.GetCounter(
          "prox_distance_samples_total",
          "Monte-Carlo valuations drawn by the sampled oracle.");
      return m;
    }();
    return m;
  }
};

/// True when the cumulative homomorphism fixes every group key of the
/// reference evaluation, making ProjectEvalResult the identity (scalar and
/// cost/bool results have no group keys, so they always qualify).
bool IdentityOnGroups(const EvalResult& reference, const MappingState& state) {
  if (reference.kind() != EvalResult::Kind::kVector) return true;
  for (const auto& coord : reference.coords()) {
    if (state.cumulative().Map(coord.group) != coord.group) return false;
  }
  return true;
}

}  // namespace

EnumeratedDistance::EnumeratedDistance(const ProvenanceExpression* p0,
                                       const AnnotationRegistry* registry,
                                       const ValFunc* val_func,
                                       std::vector<Valuation> valuations,
                                       int threads)
    : p0_(p0),
      registry_(registry),
      val_func_(val_func),
      valuations_(std::move(valuations)),
      pool_(threads) {
  const size_t n = registry_->size();
  base_evals_.reserve(valuations_.size());
  base_mats_.reserve(valuations_.size());
  for (const auto& v : valuations_) {
    base_mats_.emplace_back(v, n);
    base_evals_.push_back(p0_->Evaluate(base_mats_.back()));
    total_weight_ += v.weight();
  }
  EvalResult all_true = p0_->Evaluate(MaterializedValuation(n));
  max_error_ = val_func_->MaxError(all_true);
  if (max_error_ <= 0.0) max_error_ = 1.0;
}

void EnumeratedDistance::EnsureBaseBlocks() {
  std::call_once(base_blocks_once_, [&] {
    base_kind_ = base_evals_[0].kind();
    if (base_kind_ == EvalResult::Kind::kVector) {
      base_groups_.reserve(base_evals_[0].coords().size());
      for (const auto& c : base_evals_[0].coords()) {
        base_groups_.push_back(c.group);
      }
    }
    const size_t count = base_evals_.size();
    const size_t num_chunks =
        (count + kReductionGrain - 1) / kReductionGrain;
    base_blocks_.resize(num_chunks);
    base_blocks_ok_ = true;
    for (size_t c = 0; c < num_chunks; ++c) {
      const size_t lo = c * kReductionGrain;
      const size_t w = std::min(count - lo, size_t{kReductionGrain});
      // Every base eval must share the layout of the first one; a
      // structurally heterogeneous valuation class keeps the scalar path.
      if (!kernels::PackEvalBlock(&base_evals_[lo], w, base_kind_,
                                  base_groups_.data(), base_groups_.size(),
                                  &base_blocks_[c])) {
        base_blocks_ok_ = false;
        base_blocks_.clear();
        return;
      }
    }
  });
}

double EnumeratedDistance::Distance(const ProvenanceExpression& cand,
                                    const MappingState& state) {
  const DistanceMetrics& metrics = DistanceMetrics::Get();
  metrics.enumerated_calls->Increment();
  if (valuations_.empty()) return 0.0;
  // On the parallel candidate-scoring path this oracle runs on pool worker
  // threads; per-call spans would interleave in the ring sink with broken
  // parent links, so the per-step aggregate span in Summarizer::Run stands
  // in for them. The serial path records exactly the spans it always did.
  std::optional<obs::TraceSpan> oracle_span;
  if (!exec::InParallelWorker()) oracle_span.emplace("distance.oracle");
  const size_t n = registry_->size();
  // Fast path: when the cumulative homomorphism leaves every group key of
  // the cached base evaluations untouched (the common case — most merges
  // group non-key annotations like users), the projection is the identity
  // and the cached results can be fed to VAL-FUNC directly.
  const bool identity_on_groups =
      base_evals_.empty() || IdentityOnGroups(base_evals_[0], state);
  metrics.enumerated_evals->Increment(valuations_.size());
  if (identity_on_groups) {
    metrics.base_eval_reuse->Increment(valuations_.size());
  }
  // Batch path: the candidate lowers once into a flat program and each
  // grain-8 chunk is evaluated in one pass over the program rows by the
  // SIMD kernels. Chunk boundaries, per-lane arithmetic and the weighted
  // fold order all replicate the scalar path, so the distance is
  // bit-identical (docs/KERNELS.md); everything that does not fit —
  // projection path, exotic VAL-FUNC, layout mismatch — falls back.
  const kernels::ValFuncBatchKind vf_kind = val_func_->batch_kind();
  const kernels::BatchEvalFacade* facade = cand.AsBatchEval();
  if (identity_on_groups && facade != nullptr &&
      vf_kind != kernels::ValFuncBatchKind::kNone) {
    EnsureBaseBlocks();
    if (base_blocks_ok_) {
      const kernels::BatchProgram program = facade->LowerBatch();
      if (kernels::ProgramMatchesLayout(program, base_kind_,
                                        base_groups_.data(),
                                        base_groups_.size())) {
        const double penalty = val_func_->batch_mismatch_penalty();
        const double total = exec::DeterministicChunkSum(
            pool_.pool(), static_cast<int64_t>(valuations_.size()),
            kReductionGrain, [&](int64_t lo, int64_t hi) {
              thread_local kernels::ValuationBlock block;
              thread_local kernels::BlockEval cand_eval;
              const size_t w = static_cast<size_t>(hi - lo);
              block.Reset(n, w);
              for (size_t l = 0; l < w; ++l) {
                state.TransformLane(valuations_[static_cast<size_t>(lo) + l],
                                    l, &block);
              }
              kernels::EvaluateBlock(program, block, &cand_eval);
              double err[kernels::kMaxLanes];
              kernels::ValFuncBlockErrors(
                  vf_kind, penalty,
                  base_blocks_[static_cast<size_t>(lo / kReductionGrain)],
                  cand_eval, err);
              double partial = 0.0;
              for (size_t l = 0; l < w; ++l) {
                partial +=
                    valuations_[static_cast<size_t>(lo) + l].weight() * err[l];
              }
              return partial;
            });
        return (total / total_weight_) / max_error_;
      }
    }
  }
  kernels::CountScalarFallback();
  const double total = exec::DeterministicSum(
      pool_.pool(), static_cast<int64_t>(valuations_.size()), kReductionGrain,
      [&](int64_t i) {
        const Valuation& v = valuations_[static_cast<size_t>(i)];
        MaterializedValuation transformed =
            state.TransformFrom(v, base_mats_[static_cast<size_t>(i)], n);
        EvalResult summ = cand.Evaluate(transformed);
        if (identity_on_groups) {
          return v.weight() *
                 val_func_->Compute(base_evals_[static_cast<size_t>(i)], summ);
        }
        EvalResult orig = cand.ProjectEvalResult(
            base_evals_[static_cast<size_t>(i)], state.cumulative());
        return v.weight() * val_func_->Compute(orig, summ);
      });
  return (total / total_weight_) / max_error_;
}

int SampledDistance::RequiredSamples(double epsilon, double delta) {
  return static_cast<int>(
      std::ceil(std::log(2.0 / delta) / (2.0 * epsilon * epsilon)));
}

SampledDistance::SampledDistance(const ProvenanceExpression* p0,
                                 const AnnotationRegistry* registry,
                                 const ValFunc* val_func, Options options)
    : p0_(p0),
      registry_(registry),
      val_func_(val_func),
      options_(options),
      pool_(options.threads) {
  num_samples_ = options_.num_samples > 0
                     ? options_.num_samples
                     : RequiredSamples(options_.epsilon, options_.delta);
  p0_->CollectAnnotations(&annotations_);
  all_true_eval_ = p0_->Evaluate(MaterializedValuation(registry_->size()));
  max_error_ = val_func_->MaxError(all_true_eval_);
  if (max_error_ <= 0.0) max_error_ = 1.0;
  // Base-side batch program: adopt p₀ into prox::ir (evaluates
  // byte-identically to the source representation) and lower it once for
  // the oracle's lifetime. Constructor runs on the main thread, which is
  // what interning into the fresh pool requires.
  batch_pool_ = std::make_shared<ir::TermPool>();
  p0_ir_ = ir::Adopt(*p0_, batch_pool_);
  const kernels::BatchEvalFacade* base_facade =
      p0_ir_ == nullptr ? nullptr : p0_ir_->AsBatchEval();
  if (base_facade != nullptr) {
    base_kind_ = all_true_eval_.kind();
    if (base_kind_ == EvalResult::Kind::kVector) {
      base_groups_.reserve(all_true_eval_.coords().size());
      for (const auto& c : all_true_eval_.coords()) {
        base_groups_.push_back(c.group);
      }
    }
    base_program_ = base_facade->LowerBatch();
    base_program_ok_ = kernels::ProgramMatchesLayout(
        base_program_, base_kind_, base_groups_.data(), base_groups_.size());
  }
}

double SampledDistance::Distance(const ProvenanceExpression& cand,
                                 const MappingState& state) {
  const DistanceMetrics& metrics = DistanceMetrics::Get();
  metrics.sampled_calls->Increment();
  metrics.samples->Increment(num_samples_);
  std::optional<obs::TraceSpan> oracle_span;
  if (!exec::InParallelWorker()) oracle_span.emplace("distance.oracle");
  const size_t n = registry_->size();
  // Same identity-on-groups fast path as the enumerated oracle: the group
  // keys of an evaluation are structural (they do not depend on which
  // annotations a valuation cancels), so the all-true evaluation decides
  // for every sample whether ProjectEvalResult is the identity.
  const bool identity_on_groups = IdentityOnGroups(all_true_eval_, state);
  if (identity_on_groups) {
    metrics.base_eval_reuse->Increment(num_samples_);
  }
  // Batch path: both sides of each grain-16 sample chunk are evaluated by
  // the SIMD kernels — the base through the pre-lowered p₀ program, the
  // candidate through its own lowering. Sample s's Rng stream is
  // regenerated identically, so the drawn valuations — and the resulting
  // estimate — are bit-identical to the scalar path at any tier and any
  // thread count.
  const kernels::ValFuncBatchKind vf_kind = val_func_->batch_kind();
  const kernels::BatchEvalFacade* facade = cand.AsBatchEval();
  if (identity_on_groups && base_program_ok_ && facade != nullptr &&
      vf_kind != kernels::ValFuncBatchKind::kNone) {
    const kernels::BatchProgram program = facade->LowerBatch();
    if (kernels::ProgramMatchesLayout(program, base_kind_,
                                      base_groups_.data(),
                                      base_groups_.size())) {
      const double penalty = val_func_->batch_mismatch_penalty();
      const double total = exec::DeterministicChunkSum(
          pool_.pool(), num_samples_, kSampleGrain,
          [&](int64_t lo, int64_t hi) {
            thread_local kernels::ValuationBlock base_block;
            thread_local kernels::ValuationBlock trans_block;
            thread_local kernels::BlockEval base_eval;
            thread_local kernels::BlockEval cand_eval;
            const size_t w = static_cast<size_t>(hi - lo);
            base_block.Reset(n, w);
            trans_block.Reset(n, w);
            for (size_t l = 0; l < w; ++l) {
              Rng rng(options_.seed, static_cast<uint64_t>(lo) + l);
              std::vector<AnnotationId> cancelled;
              for (AnnotationId a : annotations_) {
                if (rng.Bernoulli(0.5)) cancelled.push_back(a);
              }
              Valuation v(std::move(cancelled));
              base_block.FillLaneSparse(l, v);
              state.TransformLane(v, l, &trans_block);
            }
            kernels::EvaluateBlock(base_program_, base_block, &base_eval);
            kernels::EvaluateBlock(program, trans_block, &cand_eval);
            double err[kernels::kMaxLanes];
            kernels::ValFuncBlockErrors(vf_kind, penalty, base_eval,
                                        cand_eval, err);
            double partial = 0.0;
            for (size_t l = 0; l < w; ++l) partial += err[l];
            return partial;
          });
      return (total / num_samples_) / max_error_;
    }
  }
  kernels::CountScalarFallback();
  // Stream s of the seed drives sample s alone, so the estimate depends
  // only on (seed, num_samples) — not on thread count or sample order.
  const double total = exec::DeterministicSum(
      pool_.pool(), num_samples_, kSampleGrain, [&](int64_t s) {
        Rng rng(options_.seed, static_cast<uint64_t>(s));
        std::vector<AnnotationId> cancelled;
        for (AnnotationId a : annotations_) {
          if (rng.Bernoulli(0.5)) cancelled.push_back(a);
        }
        Valuation v(std::move(cancelled));
        EvalResult base = p0_->Evaluate(MaterializedValuation(v, n));
        MaterializedValuation transformed = state.Transform(v, n);
        EvalResult summ = cand.Evaluate(transformed);
        if (identity_on_groups) {
          return val_func_->Compute(base, summ);
        }
        EvalResult orig = cand.ProjectEvalResult(base, state.cumulative());
        return val_func_->Compute(orig, summ);
      });
  return (total / num_samples_) / max_error_;
}

}  // namespace prox
