#include "summarize/distance.h"

#include <cmath>
#include <optional>

#include "exec/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace prox {

namespace {

/// Metric handles for the distance oracles (docs/OBSERVABILITY.md).
struct DistanceMetrics {
  obs::Counter* enumerated_calls;
  obs::Counter* enumerated_evals;
  obs::Counter* base_eval_reuse;
  obs::Counter* sampled_calls;
  obs::Counter* samples;

  static const DistanceMetrics& Get() {
    static const DistanceMetrics m = [] {
      auto& r = obs::MetricsRegistry::Default();
      DistanceMetrics m;
      m.enumerated_calls =
          r.GetCounter("prox_distance_enumerated_calls_total",
                       "EnumeratedDistance::Distance invocations.");
      m.enumerated_evals = r.GetCounter(
          "prox_distance_enumerated_evals_total",
          "Candidate-expression evaluations performed by the enumerated "
          "oracle (one per valuation per call).");
      m.base_eval_reuse = r.GetCounter(
          "prox_distance_base_eval_reuse_total",
          "Cached base evaluations fed to VAL-FUNC directly via the "
          "identity-on-groups fast path (no re-projection).");
      m.sampled_calls = r.GetCounter(
          "prox_distance_sampled_calls_total",
          "SampledDistance::Distance invocations.");
      m.samples = r.GetCounter(
          "prox_distance_samples_total",
          "Monte-Carlo valuations drawn by the sampled oracle.");
      return m;
    }();
    return m;
  }
};

/// True when the cumulative homomorphism fixes every group key of the
/// reference evaluation, making ProjectEvalResult the identity (scalar and
/// cost/bool results have no group keys, so they always qualify).
bool IdentityOnGroups(const EvalResult& reference, const MappingState& state) {
  if (reference.kind() != EvalResult::Kind::kVector) return true;
  for (const auto& coord : reference.coords()) {
    if (state.cumulative().Map(coord.group) != coord.group) return false;
  }
  return true;
}

}  // namespace

EnumeratedDistance::EnumeratedDistance(const ProvenanceExpression* p0,
                                       const AnnotationRegistry* registry,
                                       const ValFunc* val_func,
                                       std::vector<Valuation> valuations,
                                       int threads)
    : p0_(p0),
      registry_(registry),
      val_func_(val_func),
      valuations_(std::move(valuations)),
      pool_(threads) {
  const size_t n = registry_->size();
  base_evals_.reserve(valuations_.size());
  base_mats_.reserve(valuations_.size());
  for (const auto& v : valuations_) {
    base_mats_.emplace_back(v, n);
    base_evals_.push_back(p0_->Evaluate(base_mats_.back()));
    total_weight_ += v.weight();
  }
  EvalResult all_true = p0_->Evaluate(MaterializedValuation(n));
  max_error_ = val_func_->MaxError(all_true);
  if (max_error_ <= 0.0) max_error_ = 1.0;
}

double EnumeratedDistance::Distance(const ProvenanceExpression& cand,
                                    const MappingState& state) {
  const DistanceMetrics& metrics = DistanceMetrics::Get();
  metrics.enumerated_calls->Increment();
  if (valuations_.empty()) return 0.0;
  // On the parallel candidate-scoring path this oracle runs on pool worker
  // threads; per-call spans would interleave in the ring sink with broken
  // parent links, so the per-step aggregate span in Summarizer::Run stands
  // in for them. The serial path records exactly the spans it always did.
  std::optional<obs::TraceSpan> oracle_span;
  if (!exec::InParallelWorker()) oracle_span.emplace("distance.oracle");
  const size_t n = registry_->size();
  // Fast path: when the cumulative homomorphism leaves every group key of
  // the cached base evaluations untouched (the common case — most merges
  // group non-key annotations like users), the projection is the identity
  // and the cached results can be fed to VAL-FUNC directly.
  const bool identity_on_groups =
      base_evals_.empty() || IdentityOnGroups(base_evals_[0], state);
  metrics.enumerated_evals->Increment(valuations_.size());
  if (identity_on_groups) {
    metrics.base_eval_reuse->Increment(valuations_.size());
  }
  const double total = exec::DeterministicSum(
      pool_.pool(), static_cast<int64_t>(valuations_.size()), kReductionGrain,
      [&](int64_t i) {
        const Valuation& v = valuations_[static_cast<size_t>(i)];
        MaterializedValuation transformed =
            state.TransformFrom(v, base_mats_[static_cast<size_t>(i)], n);
        EvalResult summ = cand.Evaluate(transformed);
        if (identity_on_groups) {
          return v.weight() *
                 val_func_->Compute(base_evals_[static_cast<size_t>(i)], summ);
        }
        EvalResult orig = cand.ProjectEvalResult(
            base_evals_[static_cast<size_t>(i)], state.cumulative());
        return v.weight() * val_func_->Compute(orig, summ);
      });
  return (total / total_weight_) / max_error_;
}

int SampledDistance::RequiredSamples(double epsilon, double delta) {
  return static_cast<int>(
      std::ceil(std::log(2.0 / delta) / (2.0 * epsilon * epsilon)));
}

SampledDistance::SampledDistance(const ProvenanceExpression* p0,
                                 const AnnotationRegistry* registry,
                                 const ValFunc* val_func, Options options)
    : p0_(p0),
      registry_(registry),
      val_func_(val_func),
      options_(options),
      pool_(options.threads) {
  num_samples_ = options_.num_samples > 0
                     ? options_.num_samples
                     : RequiredSamples(options_.epsilon, options_.delta);
  p0_->CollectAnnotations(&annotations_);
  all_true_eval_ = p0_->Evaluate(MaterializedValuation(registry_->size()));
  max_error_ = val_func_->MaxError(all_true_eval_);
  if (max_error_ <= 0.0) max_error_ = 1.0;
}

double SampledDistance::Distance(const ProvenanceExpression& cand,
                                 const MappingState& state) {
  const DistanceMetrics& metrics = DistanceMetrics::Get();
  metrics.sampled_calls->Increment();
  metrics.samples->Increment(num_samples_);
  std::optional<obs::TraceSpan> oracle_span;
  if (!exec::InParallelWorker()) oracle_span.emplace("distance.oracle");
  const size_t n = registry_->size();
  // Same identity-on-groups fast path as the enumerated oracle: the group
  // keys of an evaluation are structural (they do not depend on which
  // annotations a valuation cancels), so the all-true evaluation decides
  // for every sample whether ProjectEvalResult is the identity.
  const bool identity_on_groups = IdentityOnGroups(all_true_eval_, state);
  if (identity_on_groups) {
    metrics.base_eval_reuse->Increment(num_samples_);
  }
  // Stream s of the seed drives sample s alone, so the estimate depends
  // only on (seed, num_samples) — not on thread count or sample order.
  const double total = exec::DeterministicSum(
      pool_.pool(), num_samples_, kSampleGrain, [&](int64_t s) {
        Rng rng(options_.seed, static_cast<uint64_t>(s));
        std::vector<AnnotationId> cancelled;
        for (AnnotationId a : annotations_) {
          if (rng.Bernoulli(0.5)) cancelled.push_back(a);
        }
        Valuation v(std::move(cancelled));
        EvalResult base = p0_->Evaluate(MaterializedValuation(v, n));
        MaterializedValuation transformed = state.Transform(v, n);
        EvalResult summ = cand.Evaluate(transformed);
        if (identity_on_groups) {
          return val_func_->Compute(base, summ);
        }
        EvalResult orig = cand.ProjectEvalResult(base, state.cumulative());
        return val_func_->Compute(orig, summ);
      });
  return (total / num_samples_) / max_error_;
}

}  // namespace prox
