#include "summarize/distance.h"

#include <cmath>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace prox {

namespace {

/// Metric handles for the distance oracles (docs/OBSERVABILITY.md).
struct DistanceMetrics {
  obs::Counter* enumerated_calls;
  obs::Counter* enumerated_evals;
  obs::Counter* base_eval_reuse;
  obs::Counter* sampled_calls;
  obs::Counter* samples;

  static const DistanceMetrics& Get() {
    static const DistanceMetrics m = [] {
      auto& r = obs::MetricsRegistry::Default();
      DistanceMetrics m;
      m.enumerated_calls =
          r.GetCounter("prox_distance_enumerated_calls_total",
                       "EnumeratedDistance::Distance invocations.");
      m.enumerated_evals = r.GetCounter(
          "prox_distance_enumerated_evals_total",
          "Candidate-expression evaluations performed by the enumerated "
          "oracle (one per valuation per call).");
      m.base_eval_reuse = r.GetCounter(
          "prox_distance_base_eval_reuse_total",
          "Cached base evaluations fed to VAL-FUNC directly via the "
          "identity-on-groups fast path (no re-projection).");
      m.sampled_calls = r.GetCounter(
          "prox_distance_sampled_calls_total",
          "SampledDistance::Distance invocations.");
      m.samples = r.GetCounter(
          "prox_distance_samples_total",
          "Monte-Carlo valuations drawn by the sampled oracle.");
      return m;
    }();
    return m;
  }
};

}  // namespace

EnumeratedDistance::EnumeratedDistance(const ProvenanceExpression* p0,
                                       const AnnotationRegistry* registry,
                                       const ValFunc* val_func,
                                       std::vector<Valuation> valuations)
    : p0_(p0),
      registry_(registry),
      val_func_(val_func),
      valuations_(std::move(valuations)) {
  const size_t n = registry_->size();
  base_evals_.reserve(valuations_.size());
  for (const auto& v : valuations_) {
    base_evals_.push_back(p0_->Evaluate(MaterializedValuation(v, n)));
    total_weight_ += v.weight();
  }
  EvalResult all_true = p0_->Evaluate(MaterializedValuation(n));
  max_error_ = val_func_->MaxError(all_true);
  if (max_error_ <= 0.0) max_error_ = 1.0;
}

double EnumeratedDistance::Distance(const ProvenanceExpression& cand,
                                    const MappingState& state) {
  const DistanceMetrics& metrics = DistanceMetrics::Get();
  metrics.enumerated_calls->Increment();
  if (valuations_.empty()) return 0.0;
  obs::TraceSpan oracle_span("distance.oracle");
  const size_t n = registry_->size();
  // Fast path: when the cumulative homomorphism leaves every group key of
  // the cached base evaluations untouched (the common case — most merges
  // group non-key annotations like users), the projection is the identity
  // and the cached results can be fed to VAL-FUNC directly.
  bool identity_on_groups = true;
  if (!base_evals_.empty() &&
      base_evals_[0].kind() == EvalResult::Kind::kVector) {
    for (const auto& coord : base_evals_[0].coords()) {
      if (state.cumulative().Map(coord.group) != coord.group) {
        identity_on_groups = false;
        break;
      }
    }
  }
  metrics.enumerated_evals->Increment(valuations_.size());
  if (identity_on_groups) {
    metrics.base_eval_reuse->Increment(valuations_.size());
  }
  double total = 0.0;
  for (size_t i = 0; i < valuations_.size(); ++i) {
    const Valuation& v = valuations_[i];
    MaterializedValuation transformed = state.Transform(v, n);
    EvalResult summ = cand.Evaluate(transformed);
    if (identity_on_groups) {
      total += v.weight() * val_func_->Compute(base_evals_[i], summ);
    } else {
      EvalResult orig =
          cand.ProjectEvalResult(base_evals_[i], state.cumulative());
      total += v.weight() * val_func_->Compute(orig, summ);
    }
  }
  return (total / total_weight_) / max_error_;
}

int SampledDistance::RequiredSamples(double epsilon, double delta) {
  return static_cast<int>(
      std::ceil(std::log(2.0 / delta) / (2.0 * epsilon * epsilon)));
}

SampledDistance::SampledDistance(const ProvenanceExpression* p0,
                                 const AnnotationRegistry* registry,
                                 const ValFunc* val_func, Options options)
    : p0_(p0), registry_(registry), val_func_(val_func), options_(options) {
  num_samples_ = options_.num_samples > 0
                     ? options_.num_samples
                     : RequiredSamples(options_.epsilon, options_.delta);
  p0_->CollectAnnotations(&annotations_);
  EvalResult all_true = p0_->Evaluate(MaterializedValuation(registry_->size()));
  max_error_ = val_func_->MaxError(all_true);
  if (max_error_ <= 0.0) max_error_ = 1.0;
}

double SampledDistance::Distance(const ProvenanceExpression& cand,
                                 const MappingState& state) {
  const DistanceMetrics& metrics = DistanceMetrics::Get();
  metrics.sampled_calls->Increment();
  metrics.samples->Increment(num_samples_);
  obs::TraceSpan oracle_span("distance.oracle");
  // Fresh generator per call: the estimate is deterministic for a fixed
  // seed and independent of evaluation order across candidates.
  Rng rng(options_.seed);
  const size_t n = registry_->size();
  double total = 0.0;
  for (int s = 0; s < num_samples_; ++s) {
    std::vector<AnnotationId> cancelled;
    for (AnnotationId a : annotations_) {
      if (rng.Bernoulli(0.5)) cancelled.push_back(a);
    }
    Valuation v(std::move(cancelled));
    EvalResult base = p0_->Evaluate(MaterializedValuation(v, n));
    MaterializedValuation transformed = state.Transform(v, n);
    EvalResult summ = cand.Evaluate(transformed);
    EvalResult orig = cand.ProjectEvalResult(base, state.cumulative());
    total += val_func_->Compute(orig, summ);
  }
  return (total / num_samples_) / max_error_;
}

}  // namespace prox
