#include "summarize/valuation_class.h"

#include <algorithm>
#include <map>

namespace prox {

namespace {

bool DomainSelected(const std::vector<DomainId>& domains, DomainId d) {
  return domains.empty() ||
         std::find(domains.begin(), domains.end(), d) != domains.end();
}

}  // namespace

std::vector<Valuation> CancelSingleAnnotation::Generate(
    const ProvenanceExpression& p0, const SemanticContext& ctx) const {
  std::vector<AnnotationId> anns;
  p0.CollectAnnotations(&anns);
  std::vector<Valuation> out;
  for (AnnotationId a : anns) {
    if (!DomainSelected(domains_, ctx.registry->domain(a))) continue;
    std::vector<AnnotationId> cancelled = {a};
    if (taxonomy_consistent_ && ctx.taxonomy.has_value()) {
      ConceptId c = ctx.ConceptOf(a);
      if (c != kNoConcept) {
        // Cancel every p0 annotation denoting a concept below c as well:
        // the unique taxonomy-consistent completion.
        for (AnnotationId other : anns) {
          ConceptId oc = ctx.ConceptOf(other);
          if (oc != kNoConcept && other != a &&
              ctx.taxonomy->IsAncestor(c, oc)) {
            cancelled.push_back(other);
          }
        }
      }
    }
    out.emplace_back(std::move(cancelled),
                     "cancel " + ctx.registry->name(a));
  }
  return out;
}

std::vector<Valuation> CancelSingleAttribute::Generate(
    const ProvenanceExpression& p0, const SemanticContext& ctx) const {
  std::vector<AnnotationId> anns;
  p0.CollectAnnotations(&anns);
  // (domain, attr, value) -> annotations carrying it.
  std::map<std::tuple<DomainId, AttrId, ValueId>, std::vector<AnnotationId>>
      groups;
  for (AnnotationId a : anns) {
    DomainId d = ctx.registry->domain(a);
    if (!DomainSelected(domains_, d)) continue;
    const EntityTable* table = ctx.TableFor(d);
    if (table == nullptr) continue;
    uint32_t row = ctx.registry->entity_row(a);
    if (row == kNoEntity) continue;
    for (AttrId attr = 0; attr < table->num_attributes(); ++attr) {
      groups[{d, attr, table->ValueOf(row, attr)}].push_back(a);
    }
  }
  std::vector<Valuation> out;
  out.reserve(groups.size());
  for (auto& [key, members] : groups) {
    const auto& [d, attr, value] = key;
    const EntityTable* table = ctx.TableFor(d);
    const double weight = weighting_ == Weighting::kGroupSize
                              ? static_cast<double>(members.size())
                              : 1.0;
    out.emplace_back(std::move(members),
                     "cancel " + table->attribute_name(attr) + ":" +
                         table->value_name(value),
                     weight);
  }
  return out;
}

std::vector<Valuation> ExhaustiveValuations::Generate(
    const ProvenanceExpression& p0, const SemanticContext& ctx) const {
  (void)ctx;
  std::vector<AnnotationId> anns;
  p0.CollectAnnotations(&anns);
  if (anns.size() > max_annotations_) return {};
  std::vector<Valuation> out;
  const size_t n = anns.size();
  out.reserve(size_t{1} << n);
  for (uint64_t mask = 0; mask < (uint64_t{1} << n); ++mask) {
    std::vector<AnnotationId> cancelled;
    for (size_t i = 0; i < n; ++i) {
      if (mask & (uint64_t{1} << i)) cancelled.push_back(anns[i]);
    }
    out.emplace_back(std::move(cancelled), "mask " + std::to_string(mask));
  }
  return out;
}

std::vector<Valuation> CompositeValuationClass::Generate(
    const ProvenanceExpression& p0, const SemanticContext& ctx) const {
  std::vector<Valuation> out;
  for (const auto& inner : inner_) {
    auto part = inner->Generate(p0, ctx);
    out.insert(out.end(), std::make_move_iterator(part.begin()),
               std::make_move_iterator(part.end()));
  }
  return out;
}

}  // namespace prox
