#ifndef PROX_COMMON_CPU_FEATURES_H_
#define PROX_COMMON_CPU_FEATURES_H_

namespace prox {
namespace common {

/// \brief The one runtime CPU-capability probe in the tree.
///
/// Both consumers of hardware-accelerated code paths — the CRC32C the
/// snapshot store seals sections with (src/store/crc32c.cc) and the batch
/// evaluation kernels on the distance hot path (src/kernels, see
/// docs/KERNELS.md) — resolve their implementation tier through this
/// header, so "what does this machine support" and "what did the operator
/// cap it to" have exactly one answer per process.
///
/// The *detected* tier is what cpuid reports. The *active* tier is the
/// detected tier clamped by the `PROX_SIMD` environment variable and/or a
/// programmatic override (`prox_cli --simd`, tests forcing tiers):
///
///   PROX_SIMD=0 | off | scalar   -> kScalar (portable C++ everywhere)
///   PROX_SIMD=1 | sse4.2 | sse42 -> at most kSse42
///   PROX_SIMD=2 | avx2           -> at most kAvx2
///   PROX_SIMD=auto | unset       -> the detected tier
///
/// A cap never *raises* the tier above what the hardware supports, so
/// every tier request is safe on every machine. All selections are
/// bit-identical by contract — the kill switch exists to prove that
/// (tests/kernels golden suite) and to sideline the vector units when
/// debugging, not to change results.
enum class SimdTier {
  kScalar = 0,
  kSse42 = 1,
  kAvx2 = 2,
};

/// cpuid-detected capabilities (memoized; first call probes).
bool CpuHasSse42();
bool CpuHasAvx2();

/// The best tier the hardware supports.
SimdTier DetectedSimdTier();

/// The tier dispatch should use: DetectedSimdTier() clamped by PROX_SIMD
/// (read once, at first call) and by SetSimdTierCap overrides (read every
/// call — an override invalidates nothing and takes effect immediately).
SimdTier ActiveSimdTier();

/// Programmatic cap (e.g. `--simd=off`): subsequent ActiveSimdTier()
/// calls return min(detected, env cap, `cap`). Pass kAvx2 to lift a
/// previous programmatic cap back to the env/hardware decision. Intended
/// for process setup and tests; takes effect for future kernel-dispatch
/// decisions, not for code already mid-loop.
void SetSimdTierCap(SimdTier cap);

/// "scalar" / "sse4.2" / "avx2" — the label the `prox_simd_tier` gauge
/// and `--simd` flag values use.
const char* SimdTierName(SimdTier tier);

}  // namespace common
}  // namespace prox

#endif  // PROX_COMMON_CPU_FEATURES_H_
