#include "common/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace prox {

void JsonValue::Set(std::string key, JsonValue value) {
  auto& members = std::get<ObjectStorage>(repr_);
  for (Member& member : members) {
    if (member.first == key) {
      member.second = std::move(value);
      return;
    }
  }
  members.emplace_back(std::move(key), std::move(value));
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const Member& member : std::get<ObjectStorage>(repr_)) {
    if (member.first == key) return &member.second;
  }
  return nullptr;
}

size_t JsonValue::size() const {
  if (is_array()) return std::get<ArrayStorage>(repr_).size();
  if (is_object()) return std::get<ObjectStorage>(repr_).size();
  return 0;
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

std::string ShortestDouble(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[40];
  // The shortest precision whose decimal rendering parses back to the
  // same bits; 17 significant digits always round-trip (IEEE 754 double).
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) break;
  }
  return buf;
}

void AppendJsonString(std::string_view text, std::string* out) {
  out->push_back('"');
  for (unsigned char c : text) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\b': *out += "\\b"; break;
      case '\f': *out += "\\f"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(static_cast<char>(c));
        }
    }
  }
  out->push_back('"');
}

void AppendJson(const JsonValue& value, std::string* out) {
  switch (value.kind()) {
    case JsonValue::Kind::kNull:
      *out += "null";
      break;
    case JsonValue::Kind::kBool:
      *out += value.bool_value() ? "true" : "false";
      break;
    case JsonValue::Kind::kInt:
      *out += std::to_string(value.int_value());
      break;
    case JsonValue::Kind::kDouble:
      *out += ShortestDouble(value.double_value());
      break;
    case JsonValue::Kind::kString:
      AppendJsonString(value.string_value(), out);
      break;
    case JsonValue::Kind::kArray: {
      out->push_back('[');
      bool first = true;
      for (const JsonValue& item : value.items()) {
        if (!first) out->push_back(',');
        first = false;
        AppendJson(item, out);
      }
      out->push_back(']');
      break;
    }
    case JsonValue::Kind::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [key, member] : value.members()) {
        if (!first) out->push_back(',');
        first = false;
        AppendJsonString(key, out);
        out->push_back(':');
        AppendJson(member, out);
      }
      out->push_back('}');
      break;
    }
  }
}

std::string WriteJson(const JsonValue& value) {
  std::string out;
  AppendJson(value, &out);
  return out;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

namespace {

/// Recursive-descent parser over a string_view. Positions in error
/// messages are byte offsets into the input.
class Parser {
 public:
  Parser(std::string_view text, int max_depth)
      : text_(text), max_depth_(max_depth) {}

  Result<JsonValue> Parse() {
    JsonValue value;
    PROX_RETURN_NOT_OK(ParseValue(&value, 0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::InvalidArgument("JSON parse error at byte " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char expected) {
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) {
      return Error("invalid literal");
    }
    pos_ += literal.size();
    return Status::OK();
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > max_depth_) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    switch (text_[pos_]) {
      case 'n':
        PROX_RETURN_NOT_OK(ConsumeLiteral("null"));
        *out = JsonValue::Null();
        return Status::OK();
      case 't':
        PROX_RETURN_NOT_OK(ConsumeLiteral("true"));
        *out = JsonValue::Bool(true);
        return Status::OK();
      case 'f':
        PROX_RETURN_NOT_OK(ConsumeLiteral("false"));
        *out = JsonValue::Bool(false);
        return Status::OK();
      case '"':
        return ParseString(out);
      case '[':
        return ParseArray(out, depth);
      case '{':
        return ParseObject(out, depth);
      default:
        return ParseNumber(out);
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    ++pos_;  // '['
    JsonValue array = JsonValue::Array();
    SkipWhitespace();
    if (Consume(']')) {
      *out = std::move(array);
      return Status::OK();
    }
    while (true) {
      JsonValue item;
      PROX_RETURN_NOT_OK(ParseValue(&item, depth + 1));
      array.Append(std::move(item));
      SkipWhitespace();
      if (Consume(']')) break;
      if (!Consume(',')) return Error("expected ',' or ']' in array");
    }
    *out = std::move(array);
    return Status::OK();
  }

  Status ParseObject(JsonValue* out, int depth) {
    ++pos_;  // '{'
    JsonValue object = JsonValue::Object();
    SkipWhitespace();
    if (Consume('}')) {
      *out = std::move(object);
      return Status::OK();
    }
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected string key in object");
      }
      JsonValue key;
      PROX_RETURN_NOT_OK(ParseString(&key));
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      JsonValue value;
      PROX_RETURN_NOT_OK(ParseValue(&value, depth + 1));
      object.Set(key.string_value(), std::move(value));
      SkipWhitespace();
      if (Consume('}')) break;
      if (!Consume(',')) return Error("expected ',' or '}' in object");
    }
    *out = std::move(object);
    return Status::OK();
  }

  Status ParseString(JsonValue* out) {
    ++pos_;  // '"'
    std::string value;
    while (true) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      unsigned char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        *out = JsonValue::Str(std::move(value));
        return Status::OK();
      }
      if (c < 0x20) return Error("unescaped control character in string");
      if (c != '\\') {
        value.push_back(static_cast<char>(c));
        ++pos_;
        continue;
      }
      ++pos_;  // '\'
      if (pos_ >= text_.size()) return Error("unterminated escape");
      char esc = text_[pos_++];
      switch (esc) {
        case '"': value.push_back('"'); break;
        case '\\': value.push_back('\\'); break;
        case '/': value.push_back('/'); break;
        case 'b': value.push_back('\b'); break;
        case 'f': value.push_back('\f'); break;
        case 'n': value.push_back('\n'); break;
        case 'r': value.push_back('\r'); break;
        case 't': value.push_back('\t'); break;
        case 'u': {
          uint32_t code = 0;
          PROX_RETURN_NOT_OK(ParseHex4(&code));
          if (code >= 0xD800 && code <= 0xDBFF) {
            // High surrogate: a low surrogate escape must follow.
            if (!(Consume('\\') && Consume('u'))) {
              return Error("unpaired high surrogate");
            }
            uint32_t low = 0;
            PROX_RETURN_NOT_OK(ParseHex4(&low));
            if (low < 0xDC00 || low > 0xDFFF) {
              return Error("invalid low surrogate");
            }
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            return Error("unpaired low surrogate");
          }
          AppendUtf8(code, &value);
          break;
        }
        default:
          return Error("invalid escape character");
      }
    }
  }

  Status ParseHex4(uint32_t* out) {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_ + i];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Error("invalid hex digit in \\u escape");
      }
    }
    pos_ += 4;
    *out = value;
    return Status::OK();
  }

  static void AppendUtf8(uint32_t code, std::string* out) {
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (code >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  Status ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (Consume('-')) {
      // fallthrough to digits
    }
    if (pos_ >= text_.size() || !IsDigit(text_[pos_])) {
      return Error("invalid number");
    }
    if (text_[pos_] == '0') {
      ++pos_;  // no leading zeros
    } else {
      while (pos_ < text_.size() && IsDigit(text_[pos_])) ++pos_;
    }
    bool integral = true;
    if (Consume('.')) {
      integral = false;
      if (pos_ >= text_.size() || !IsDigit(text_[pos_])) {
        return Error("digit required after decimal point");
      }
      while (pos_ < text_.size() && IsDigit(text_[pos_])) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() || !IsDigit(text_[pos_])) {
        return Error("digit required in exponent");
      }
      while (pos_ < text_.size() && IsDigit(text_[pos_])) ++pos_;
    }
    std::string token(text_.substr(start, pos_ - start));
    // "-0" must stay a double: as int it would write back as "0" and the
    // sign bit would not survive a round trip.
    if (token == "-0") integral = false;
    if (integral) {
      errno = 0;
      char* end = nullptr;
      long long parsed = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end == token.c_str() + token.size()) {
        *out = JsonValue::Int(static_cast<int64_t>(parsed));
        return Status::OK();
      }
      // Out of int64 range: fall through to double.
    }
    double parsed = std::strtod(token.c_str(), nullptr);
    if (!std::isfinite(parsed)) return Error("number out of range");
    *out = JsonValue::Double(parsed);
    return Status::OK();
  }

  static bool IsDigit(char c) { return c >= '0' && c <= '9'; }

  std::string_view text_;
  size_t pos_ = 0;
  int max_depth_;
};

}  // namespace

Result<JsonValue> ParseJson(std::string_view text, int max_depth) {
  return Parser(text, max_depth).Parse();
}

}  // namespace prox
