#ifndef PROX_COMMON_RNG_H_
#define PROX_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace prox {

/// \brief Deterministic pseudo-random number generator (xoshiro256**).
///
/// Every stochastic component of the library (dataset generators, the
/// sampling distance estimator, the Random baseline) draws from an Rng
/// seeded explicitly, so that experiments and tests are reproducible
/// bit-for-bit across runs and platforms. The generator is the public
/// domain xoshiro256** 1.0 of Blackman & Vigna.
class Rng {
 public:
  /// Seeds the generator via SplitMix64 expansion of `seed`.
  explicit Rng(uint64_t seed = 0xF00DCAFE12345678ULL);

  /// Counter-based stream constructor: `Rng(seed, k)` yields an
  /// independent generator for stream `k` of the logical sequence `seed`.
  /// Parallel consumers (e.g. SampledDistance giving each Monte-Carlo
  /// sample its own stream) get draws that depend only on (seed, stream),
  /// never on which thread runs them or in what order.
  Rng(uint64_t seed, uint64_t stream);

  /// Returns the next raw 64-bit output.
  uint64_t Next();

  /// Returns a uniform integer in [0, bound). `bound` must be positive.
  /// Uses rejection sampling to avoid modulo bias.
  uint64_t UniformInt(uint64_t bound);

  /// Returns a uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// Returns a uniform double in [0, 1).
  double UniformDouble();

  /// Returns true with probability `p` (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Returns a standard normal variate (Box-Muller, cached pair).
  double Normal();

  /// Fisher-Yates shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->empty()) return;
    for (size_t i = items->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformInt(i + 1));
      std::swap((*items)[i], (*items)[j]);
    }
  }

  /// Picks a uniform element index for a non-empty container size.
  size_t PickIndex(size_t size) { return static_cast<size_t>(UniformInt(size)); }

 private:
  uint64_t state_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

/// \brief Zipf(s) sampler over {0, 1, ..., n-1} by inverse-CDF table.
///
/// Rank 0 is the most popular item. Used by the dataset generators to give
/// movies / Wikipedia pages the skewed popularity real traces show.
class ZipfSampler {
 public:
  /// \param n number of items (> 0)
  /// \param s skew exponent (>= 0; 0 degenerates to uniform)
  ZipfSampler(size_t n, double s);

  /// Draws one item index using `rng`.
  size_t Sample(Rng* rng) const;

  size_t n() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace prox

#endif  // PROX_COMMON_RNG_H_
