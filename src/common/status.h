#ifndef PROX_COMMON_STATUS_H_
#define PROX_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace prox {

/// \brief Machine-readable category of a failure.
///
/// Modeled after the Status idiom used by Arrow and RocksDB: fallible
/// operations in the library return a Status (or Result<T>) instead of
/// throwing, so that callers in long-running services can route failures
/// without stack unwinding.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kUnimplemented = 6,
  kInternal = 7,
};

/// \brief Returns a stable human-readable name for a StatusCode.
const char* StatusCodeToString(StatusCode code);

/// \brief The outcome of a fallible operation: a code plus a message.
///
/// An OK status carries no allocation. Statuses are cheap to copy and
/// compare; the message is purely diagnostic and never parsed.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and diagnostic message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }
  bool operator!=(const Status& other) const { return !(*this == other); }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Propagates a non-OK status to the caller. Use in functions returning
/// Status (or Result<T>, which converts from Status).
#define PROX_RETURN_NOT_OK(expr)          \
  do {                                    \
    ::prox::Status _st = (expr);          \
    if (!_st.ok()) return _st;            \
  } while (0)

}  // namespace prox

#endif  // PROX_COMMON_STATUS_H_
