#ifndef PROX_COMMON_RESULT_H_
#define PROX_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace prox {

/// \brief Either a value of type T or a non-OK Status.
///
/// The Result idiom (Arrow's arrow::Result) lets fallible factories return
/// values without out-parameters. Accessing the value of an errored Result
/// is a programming error, guarded by assert in debug builds.
template <typename T>
class Result {
 public:
  /// Implicit from a value (success).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from a non-OK Status (failure). OK statuses are rejected.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(repr_).ok() &&
           "Result constructed from an OK Status");
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// Returns OK when a value is held, the error status otherwise.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  /// Moves the value out of the Result.
  T MoveValue() {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  const T& ValueOr(const T& fallback) const& {
    return ok() ? std::get<T>(repr_) : fallback;
  }

 private:
  std::variant<T, Status> repr_;
};

/// Assigns the value of a Result expression to `lhs`, or propagates its
/// error status to the caller.
#define PROX_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value();

#define PROX_ASSIGN_OR_RETURN(lhs, expr) \
  PROX_ASSIGN_OR_RETURN_IMPL(            \
      PROX_CONCAT_(prox_result_, __LINE__), lhs, expr)

#define PROX_CONCAT_INNER_(a, b) a##b
#define PROX_CONCAT_(a, b) PROX_CONCAT_INNER_(a, b)

}  // namespace prox

#endif  // PROX_COMMON_RESULT_H_
