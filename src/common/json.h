#ifndef PROX_COMMON_JSON_H_
#define PROX_COMMON_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "common/result.h"

namespace prox {

/// \brief A minimal JSON document model with a strict parser and a
/// deterministic writer — the wire format of `prox::serve` and of
/// `prox_cli --json`.
///
/// Like provenance/io.h, the writer emits a *stable* ASCII encoding: object
/// members keep insertion order, doubles render as the shortest string that
/// round-trips to the same bits, and there is no whitespace. Two writes of
/// equal documents are byte-identical, which is what lets the serve layer
/// cache serialized responses and hand out the same bytes forever.
///
/// The parser is strict RFC 8259: UTF-8 input, `\uXXXX` escapes (including
/// surrogate pairs), a configurable nesting depth limit, and no extensions
/// (no comments, no trailing commas, no NaN/Infinity literals). Malformed
/// input returns InvalidArgument — never a crash — so the server can feed
/// it untrusted request bodies.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  /// Object members in insertion order (duplicate keys: last Set wins).
  using Member = std::pair<std::string, JsonValue>;

  /// Default-constructs null (matches the JSON literal `null`).
  JsonValue() : repr_(nullptr) {}

  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool value) { return JsonValue(Repr(value)); }
  static JsonValue Int(int64_t value) { return JsonValue(Repr(value)); }
  static JsonValue Double(double value) { return JsonValue(Repr(value)); }
  static JsonValue Str(std::string value) {
    return JsonValue(Repr(std::move(value)));
  }
  static JsonValue Array() { return JsonValue(Repr(ArrayStorage())); }
  static JsonValue Object() { return JsonValue(Repr(ObjectStorage())); }

  Kind kind() const { return static_cast<Kind>(repr_.index()); }
  bool is_null() const { return kind() == Kind::kNull; }
  bool is_bool() const { return kind() == Kind::kBool; }
  bool is_number() const {
    return kind() == Kind::kInt || kind() == Kind::kDouble;
  }
  bool is_int() const { return kind() == Kind::kInt; }
  bool is_string() const { return kind() == Kind::kString; }
  bool is_array() const { return kind() == Kind::kArray; }
  bool is_object() const { return kind() == Kind::kObject; }

  /// Value accessors assert the matching kind (callers check first;
  /// number accessors accept both numeric kinds).
  bool bool_value() const { return std::get<bool>(repr_); }
  int64_t int_value() const {
    return is_int() ? std::get<int64_t>(repr_)
                    : static_cast<int64_t>(std::get<double>(repr_));
  }
  double double_value() const {
    return is_int() ? static_cast<double>(std::get<int64_t>(repr_))
                    : std::get<double>(repr_);
  }
  const std::string& string_value() const {
    return std::get<std::string>(repr_);
  }

  // --- arrays ---
  void Append(JsonValue value) {
    std::get<ArrayStorage>(repr_).push_back(std::move(value));
  }
  const std::vector<JsonValue>& items() const {
    return std::get<ArrayStorage>(repr_);
  }

  // --- objects ---
  /// Inserts or overwrites `key` (overwrite keeps the original position).
  void Set(std::string key, JsonValue value);
  /// The member value, or nullptr when absent (or not an object).
  const JsonValue* Find(std::string_view key) const;
  const std::vector<Member>& members() const {
    return std::get<ObjectStorage>(repr_);
  }

  /// Array / object element count, 0 for scalars.
  size_t size() const;

  bool operator==(const JsonValue& other) const { return repr_ == other.repr_; }
  bool operator!=(const JsonValue& other) const { return !(*this == other); }

 private:
  using ArrayStorage = std::vector<JsonValue>;
  using ObjectStorage = std::vector<Member>;
  using Repr = std::variant<std::nullptr_t, bool, int64_t, double, std::string,
                            ArrayStorage, ObjectStorage>;

  explicit JsonValue(Repr repr) : repr_(std::move(repr)) {}

  Repr repr_;
};

/// Parses one JSON document; trailing non-whitespace is an error.
/// `max_depth` bounds array/object nesting (InvalidArgument beyond it).
Result<JsonValue> ParseJson(std::string_view text, int max_depth = 96);

/// Compact deterministic encoding (see class comment). Non-finite doubles
/// have no JSON representation and render as `null`.
std::string WriteJson(const JsonValue& value);
void AppendJson(const JsonValue& value, std::string* out);

/// Appends `"..."` with all mandatory escapes (quote, backslash, control
/// characters as `\uXXXX` or the short forms `\n` `\t` `\r` `\b` `\f`).
void AppendJsonString(std::string_view text, std::string* out);

/// The shortest decimal string that strtod's back to exactly `value`
/// (used by the writer; exposed for canonical cache keys and tests).
std::string ShortestDouble(double value);

}  // namespace prox

#endif  // PROX_COMMON_JSON_H_
