#include "common/cpu_features.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace prox {
namespace common {

namespace {

#if defined(__x86_64__) || defined(_M_X64)
bool ProbeSse42() { return __builtin_cpu_supports("sse4.2"); }
bool ProbeAvx2() { return __builtin_cpu_supports("avx2"); }
#else
bool ProbeSse42() { return false; }
bool ProbeAvx2() { return false; }
#endif

/// Parses a PROX_SIMD value into a cap. Unrecognized values (and "auto")
/// leave the hardware decision untouched, mirroring how PROX_THREADS
/// treats garbage as unset.
SimdTier ParseEnvCap(const char* value) {
  if (value == nullptr) return SimdTier::kAvx2;
  if (std::strcmp(value, "0") == 0 || std::strcmp(value, "off") == 0 ||
      std::strcmp(value, "scalar") == 0) {
    return SimdTier::kScalar;
  }
  if (std::strcmp(value, "1") == 0 || std::strcmp(value, "sse4.2") == 0 ||
      std::strcmp(value, "sse42") == 0) {
    return SimdTier::kSse42;
  }
  return SimdTier::kAvx2;  // "2", "avx2", "auto", unset, garbage
}

SimdTier EnvCap() {
  static const SimdTier cap = ParseEnvCap(std::getenv("PROX_SIMD"));
  return cap;
}

std::atomic<int> g_override_cap{static_cast<int>(SimdTier::kAvx2)};

}  // namespace

bool CpuHasSse42() {
  static const bool have = ProbeSse42();
  return have;
}

bool CpuHasAvx2() {
  static const bool have = ProbeAvx2();
  return have;
}

SimdTier DetectedSimdTier() {
  if (CpuHasAvx2()) return SimdTier::kAvx2;
  if (CpuHasSse42()) return SimdTier::kSse42;
  return SimdTier::kScalar;
}

SimdTier ActiveSimdTier() {
  int tier = static_cast<int>(DetectedSimdTier());
  tier = std::min(tier, static_cast<int>(EnvCap()));
  tier = std::min(tier, g_override_cap.load(std::memory_order_relaxed));
  return static_cast<SimdTier>(tier);
}

void SetSimdTierCap(SimdTier cap) {
  g_override_cap.store(static_cast<int>(cap), std::memory_order_relaxed);
}

const char* SimdTierName(SimdTier tier) {
  switch (tier) {
    case SimdTier::kScalar:
      return "scalar";
    case SimdTier::kSse42:
      return "sse4.2";
    case SimdTier::kAvx2:
      return "avx2";
  }
  return "?";
}

}  // namespace common
}  // namespace prox
