#ifndef PROX_COMMON_TIMER_H_
#define PROX_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>
#include <limits>

namespace prox {

/// \brief Monotonic wall-clock stopwatch used by the benchmark harness and
/// the evaluator service (the thesis UI reports evaluation times in
/// nanoseconds; we do the same).
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Nanoseconds elapsed since construction / last Reset().
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

  /// Convenience conversions.
  double ElapsedMicros() const { return ElapsedNanos() / 1e3; }
  double ElapsedMillis() const { return ElapsedNanos() / 1e6; }
  double ElapsedSeconds() const { return ElapsedNanos() / 1e9; }

  class Scoped;

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// \brief RAII add-to-counter scope: accumulates the elapsed nanoseconds
/// of its lifetime into `*sink` on destruction. The add saturates at
/// INT64_MAX instead of wrapping, so long-lived accumulators stay
/// meaningful (an overflowed total pins to the maximum rather than going
/// negative).
class Timer::Scoped {
 public:
  explicit Scoped(int64_t* sink) : sink_(sink) {}
  ~Scoped() { *sink_ = SaturatingAdd(*sink_, timer_.ElapsedNanos()); }

  Scoped(const Scoped&) = delete;
  Scoped& operator=(const Scoped&) = delete;

  /// Nanoseconds elapsed so far in this scope.
  int64_t ElapsedNanos() const { return timer_.ElapsedNanos(); }

  static int64_t SaturatingAdd(int64_t total, int64_t delta) {
    if (delta < 0) delta = 0;  // clock anomalies never subtract
    const int64_t max = std::numeric_limits<int64_t>::max();
    return total > max - delta ? max : total + delta;
  }

 private:
  Timer timer_;
  int64_t* sink_;
};

}  // namespace prox

#endif  // PROX_COMMON_TIMER_H_
