#ifndef PROX_COMMON_TIMER_H_
#define PROX_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace prox {

/// \brief Monotonic wall-clock stopwatch used by the benchmark harness and
/// the evaluator service (the thesis UI reports evaluation times in
/// nanoseconds; we do the same).
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Nanoseconds elapsed since construction / last Reset().
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

  /// Convenience conversions.
  double ElapsedMicros() const { return ElapsedNanos() / 1e3; }
  double ElapsedMillis() const { return ElapsedNanos() / 1e6; }
  double ElapsedSeconds() const { return ElapsedNanos() / 1e9; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace prox

#endif  // PROX_COMMON_TIMER_H_
