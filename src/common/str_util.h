#ifndef PROX_COMMON_STR_UTIL_H_
#define PROX_COMMON_STR_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace prox {

/// Joins `parts` with `sep` ("a", "b" -> "a<sep>b").
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits `text` on every occurrence of `sep`; empty fields are kept.
std::vector<std::string> Split(std::string_view text, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

/// True when `text` starts with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// Formats a double with `digits` digits after the decimal point.
std::string FormatDouble(double value, int digits = 4);

/// Lower-cases ASCII letters.
std::string ToLowerAscii(std::string_view text);

}  // namespace prox

#endif  // PROX_COMMON_STR_UTIL_H_
