#include "common/rng.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace prox {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

Rng::Rng(uint64_t seed, uint64_t stream) {
  // Mix the stream id through SplitMix64 before folding it into the seed so
  // that adjacent stream ids land in unrelated regions of the seed space.
  uint64_t sm = stream;
  uint64_t mixed = SplitMix64(&sm);
  sm = seed ^ mixed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::UniformInt(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling: draw until the value falls in the largest multiple
  // of `bound` representable in 64 bits.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(UniformInt(span));
}

double Rng::UniformDouble() {
  // 53 high bits give a uniform double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

double Rng::Normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = UniformDouble();
  } while (u1 <= 1e-300);
  double u2 = UniformDouble();
  double radius = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(theta);
  have_cached_normal_ = true;
  return radius * std::cos(theta);
}

ZipfSampler::ZipfSampler(size_t n, double s) {
  assert(n > 0);
  cdf_.resize(n);
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = total;
  }
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against accumulated rounding
}

size_t ZipfSampler::Sample(Rng* rng) const {
  double u = rng->UniformDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

}  // namespace prox
