#ifndef PROX_KERNELS_VALUATION_BLOCK_H_
#define PROX_KERNELS_VALUATION_BLOCK_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "provenance/valuation.h"

namespace prox {
namespace kernels {

/// Widest batch the kernels process per pass: the sampled oracle's chunk
/// grain. The enumerated oracle's grain (8) uses the narrow stride.
inline constexpr size_t kMaxLanes = 16;

/// \brief A structure-of-arrays block of 8/16 materialized valuations —
/// the batch counterpart of MaterializedValuation (docs/KERNELS.md).
///
/// Truth values are interleaved lane-minor: `truth[a * stride + lane]` is
/// valuation `lane`'s truth of annotation `a`, stored as 0xFF (true) or
/// 0x00 (false) so a row doubles as a byte mask. One pass over an
/// expression's term rows then evaluates every lane at once: a monomial's
/// liveness across all lanes is the bitwise AND of its factors' rows —
/// one uint64 op per factor for 8 lanes instead of 8 pointer-chasing
/// walks.
///
/// The stride is 8 when at most 8 lanes are filled and 16 otherwise, so
/// the enumerated oracle's grain-8 chunks pay half the footprint of the
/// sampled oracle's grain-16 chunks. Lanes in [width, stride) are
/// initialized all-true and their results are garbage the caller must
/// ignore. Annotations at or beyond `num_annotations` follow
/// MaterializedValuation's default-true convention (kernels skip those
/// factors rather than reading out of bounds).
class ValuationBlock {
 public:
  /// Re-shapes the block for `width` lanes over `num_annotations`
  /// annotations and resets every truth byte to true. Capacity is kept
  /// across calls, so a thread-local block allocates once per thread.
  void Reset(size_t num_annotations, size_t width) {
    num_annotations_ = num_annotations;
    width_ = width;
    stride_ = width <= 8 ? 8 : 16;
    truth_.assign(num_annotations_ * stride_, 0xFF);
  }

  size_t num_annotations() const { return num_annotations_; }
  size_t width() const { return width_; }
  size_t stride() const { return stride_; }

  /// Copies a materialized valuation into `lane`. Annotations beyond
  /// `mat.size()` keep the default-true bytes Reset() wrote.
  void FillLane(size_t lane, const MaterializedValuation& mat) {
    const size_t limit =
        num_annotations_ < mat.size() ? num_annotations_ : mat.size();
    uint8_t* t = truth_.data() + lane;
    for (size_t a = 0; a < limit; ++a) {
      t[a * stride_] = mat.truth(a) ? 0xFF : 0x00;
    }
  }

  /// Materializes a sparse valuation into `lane` (the lane starts all-true
  /// after Reset(), so only the false set is written).
  void FillLaneSparse(size_t lane, const Valuation& v) {
    for (AnnotationId a : v.false_set()) {
      if (a < num_annotations_) truth_[a * stride_ + lane] = 0x00;
    }
  }

  void Set(size_t lane, AnnotationId a, bool value) {
    truth_[a * stride_ + lane] = value ? 0xFF : 0x00;
  }

  /// The `stride` truth bytes of annotation `a` (one per lane).
  const uint8_t* Row(AnnotationId a) const {
    return truth_.data() + static_cast<size_t>(a) * stride_;
  }

 private:
  std::vector<uint8_t> truth_;
  size_t num_annotations_ = 0;
  size_t width_ = 0;
  size_t stride_ = 8;
};

}  // namespace kernels
}  // namespace prox

#endif  // PROX_KERNELS_VALUATION_BLOCK_H_
