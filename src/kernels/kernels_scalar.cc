#include <cmath>

#include "kernels/kernels_impl.h"
#include "kernels/tier_entry.h"

namespace prox {
namespace kernels {
namespace internal {

namespace {

/// The portable tier: one valuation lane per "vector". This is the
/// reference the SIMD tiers must match bit for bit — it performs the
/// scalar evaluators' operations verbatim.
struct ScalarOps {
  static constexpr size_t kLanes = 1;
  using VecD = double;
  using MaskD = bool;

  static VecD Load(const double* p) { return *p; }
  static void Store(double* p, VecD v) { *p = v; }
  static VecD Broadcast(double v) { return v; }
  static VecD Add(VecD a, VecD b) { return a + b; }
  static VecD Sub(VecD a, VecD b) { return a - b; }
  static VecD Mul(VecD a, VecD b) { return a * b; }
  static VecD Div(VecD a, VecD b) { return a / b; }
  static VecD Sqrt(VecD a) { return std::sqrt(a); }
  static VecD Abs(VecD a) { return std::fabs(a); }
  static MaskD CmpLT(VecD a, VecD b) { return a < b; }
  static MaskD CmpEQ(VecD a, VecD b) { return a == b; }
  static MaskD MaskFromBytes(const uint8_t* p) { return *p != 0; }
  static MaskD MaskAnd(MaskD a, MaskD b) { return a && b; }
  static MaskD MaskOr(MaskD a, MaskD b) { return a || b; }
  static MaskD MaskNot(MaskD a) { return !a; }
  static MaskD MaskTrue() { return true; }
  static VecD Select(MaskD m, VecD a, VecD b) { return m ? a : b; }
};

}  // namespace

void EvalBatchScalar(const BatchProgram& p, const ValuationBlock& b,
                     BlockEval* out) {
  EvalBatchImpl<ScalarOps>(p, b, out);
}

void ValFuncErrorsScalar(ValFuncBatchKind kind, double ddp_max_error,
                         const BlockEval& base, const BlockEval& cand,
                         double* err) {
  ValFuncErrorsImpl<ScalarOps>(kind, ddp_max_error, base, cand, err);
}

}  // namespace internal
}  // namespace kernels
}  // namespace prox
