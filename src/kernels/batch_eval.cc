#include "kernels/batch_eval.h"

#include <utility>

#include "common/cpu_features.h"
#include "kernels/metrics.h"
#include "kernels/tier_entry.h"

namespace prox {
namespace kernels {

EvalResult BlockEval::Extract(size_t lane) const {
  switch (kind) {
    case EvalResult::Kind::kScalar:
      return EvalResult::Scalar(values[lane]);
    case EvalResult::Kind::kVector: {
      std::vector<EvalResult::Coord> coords;
      coords.reserve(num_groups);
      for (size_t g = 0; g < num_groups; ++g) {
        coords.push_back(EvalResult::Coord{groups[g], values[g * stride + lane],
                                           counts[g * stride + lane]});
      }
      return EvalResult::Vector(std::move(coords));
    }
    case EvalResult::Kind::kCostBool:
      return EvalResult::CostBool(costs[lane], feasible[lane] != 0);
  }
  return EvalResult::Scalar(0.0);
}

void EvaluateBlock(const BatchProgram& program, const ValuationBlock& block,
                   BlockEval* out) {
  const common::SimdTier tier = common::ActiveSimdTier();
  PublishSimdTier(static_cast<int>(tier));
  switch (tier) {
    case common::SimdTier::kAvx2:
      internal::EvalBatchAvx2(program, block, out);
      break;
    case common::SimdTier::kSse42:
      internal::EvalBatchSse42(program, block, out);
      break;
    case common::SimdTier::kScalar:
      internal::EvalBatchScalar(program, block, out);
      break;
  }
  CountBatchEvals(block.width());
}

void ValFuncBlockErrors(ValFuncBatchKind kind, double ddp_max_error,
                        const BlockEval& base, const BlockEval& cand,
                        double* err) {
  switch (common::ActiveSimdTier()) {
    case common::SimdTier::kAvx2:
      internal::ValFuncErrorsAvx2(kind, ddp_max_error, base, cand, err);
      break;
    case common::SimdTier::kSse42:
      internal::ValFuncErrorsSse42(kind, ddp_max_error, base, cand, err);
      break;
    case common::SimdTier::kScalar:
      internal::ValFuncErrorsScalar(kind, ddp_max_error, base, cand, err);
      break;
  }
}

bool EvalMatchesLayout(const EvalResult& e, EvalResult::Kind kind,
                       const AnnotationId* groups, size_t num_groups) {
  if (e.kind() != kind) return false;
  if (kind != EvalResult::Kind::kVector) return true;
  const std::vector<EvalResult::Coord>& coords = e.coords();
  if (coords.size() != num_groups) return false;
  for (size_t g = 0; g < num_groups; ++g) {
    if (coords[g].group != groups[g]) return false;
  }
  return true;
}

bool ProgramMatchesLayout(const BatchProgram& p, EvalResult::Kind kind,
                          const AnnotationId* groups, size_t num_groups) {
  if (p.kind != kind) return false;
  if (kind != EvalResult::Kind::kVector) return true;
  if (p.num_groups != num_groups) return false;
  for (size_t g = 0; g < num_groups; ++g) {
    if (p.groups[g] != groups[g]) return false;
  }
  return true;
}

bool PackEvalBlock(const EvalResult* evals, size_t count,
                   EvalResult::Kind kind, const AnnotationId* groups,
                   size_t num_groups, BlockEval* out) {
  if (count > kMaxLanes) return false;
  const size_t stride = count <= 8 ? 8 : 16;
  out->kind = kind;
  out->width = count;
  out->stride = stride;
  out->feasible.fill(0);
  if (kind == EvalResult::Kind::kVector) {
    out->groups = groups;
    out->num_groups = num_groups;
    out->values.assign(num_groups * stride, 0.0);
    out->counts.assign(num_groups * stride, 0.0);
    out->costs.clear();
  } else {
    out->groups = nullptr;
    out->num_groups = 0;
    out->values.assign(kind == EvalResult::Kind::kScalar ? stride : 0, 0.0);
    out->counts.clear();
    out->costs.assign(kind == EvalResult::Kind::kCostBool ? stride : 0, 0.0);
  }
  for (size_t i = 0; i < count; ++i) {
    const EvalResult& e = evals[i];
    if (!EvalMatchesLayout(e, kind, groups, num_groups)) return false;
    switch (kind) {
      case EvalResult::Kind::kScalar:
        out->values[i] = e.scalar();
        break;
      case EvalResult::Kind::kVector: {
        const std::vector<EvalResult::Coord>& coords = e.coords();
        for (size_t g = 0; g < num_groups; ++g) {
          out->values[g * stride + i] = coords[g].value;
          out->counts[g * stride + i] = coords[g].count;
        }
        break;
      }
      case EvalResult::Kind::kCostBool:
        out->costs[i] = e.cost();
        out->feasible[i] = e.feasible() ? 0xFF : 0x00;
        break;
    }
  }
  return true;
}

}  // namespace kernels
}  // namespace prox
