// AVX2 tier. This translation unit is compiled with -mavx2 -mno-fma
// (see CMakeLists.txt); nothing here may be called unless the shared
// detector reports SimdTier::kAvx2. On non-x86 targets it forwards to
// the scalar tier.

#include "kernels/kernels_impl.h"
#include "kernels/tier_entry.h"

#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

#include <cstring>

namespace prox {
namespace kernels {
namespace internal {

namespace {

/// Four valuation lanes per __m256d. -mno-fma keeps mul+add sequences
/// uncontracted, so every lane's arithmetic is the scalar sequence.
struct AvxOps {
  static constexpr size_t kLanes = 4;
  using VecD = __m256d;
  using MaskD = __m256d;

  static VecD Load(const double* p) { return _mm256_loadu_pd(p); }
  static void Store(double* p, VecD v) { _mm256_storeu_pd(p, v); }
  static VecD Broadcast(double v) { return _mm256_set1_pd(v); }
  static VecD Add(VecD a, VecD b) { return _mm256_add_pd(a, b); }
  static VecD Sub(VecD a, VecD b) { return _mm256_sub_pd(a, b); }
  static VecD Mul(VecD a, VecD b) { return _mm256_mul_pd(a, b); }
  static VecD Div(VecD a, VecD b) { return _mm256_div_pd(a, b); }
  static VecD Sqrt(VecD a) { return _mm256_sqrt_pd(a); }
  static VecD Abs(VecD a) {
    return _mm256_andnot_pd(_mm256_set1_pd(-0.0), a);  // == fabs
  }
  static MaskD CmpLT(VecD a, VecD b) {
    return _mm256_cmp_pd(a, b, _CMP_LT_OQ);  // NaN -> false, like scalar <
  }
  static MaskD CmpEQ(VecD a, VecD b) {
    return _mm256_cmp_pd(a, b, _CMP_EQ_OQ);
  }
  static MaskD MaskFromBytes(const uint8_t* p) {
    // Sign-extend four 0xFF/0x00 bytes to four all-ones/all-zeros qwords.
    uint32_t four;
    std::memcpy(&four, p, 4);
    return _mm256_castsi256_pd(
        _mm256_cvtepi8_epi64(_mm_cvtsi32_si128(static_cast<int>(four))));
  }
  static MaskD MaskAnd(MaskD a, MaskD b) { return _mm256_and_pd(a, b); }
  static MaskD MaskOr(MaskD a, MaskD b) { return _mm256_or_pd(a, b); }
  static MaskD MaskNot(MaskD a) {
    return _mm256_xor_pd(a, _mm256_castsi256_pd(_mm256_set1_epi32(-1)));
  }
  static MaskD MaskTrue() {
    return _mm256_castsi256_pd(_mm256_set1_epi32(-1));
  }
  static VecD Select(MaskD m, VecD a, VecD b) {
    return _mm256_blendv_pd(b, a, m);  // per lane: m ? a : b
  }
};

}  // namespace

void EvalBatchAvx2(const BatchProgram& p, const ValuationBlock& b,
                   BlockEval* out) {
  EvalBatchImpl<AvxOps>(p, b, out);
}

void ValFuncErrorsAvx2(ValFuncBatchKind kind, double ddp_max_error,
                       const BlockEval& base, const BlockEval& cand,
                       double* err) {
  ValFuncErrorsImpl<AvxOps>(kind, ddp_max_error, base, cand, err);
}

}  // namespace internal
}  // namespace kernels
}  // namespace prox

#else  // !x86-64

namespace prox {
namespace kernels {
namespace internal {

void EvalBatchAvx2(const BatchProgram& p, const ValuationBlock& b,
                   BlockEval* out) {
  EvalBatchScalar(p, b, out);
}

void ValFuncErrorsAvx2(ValFuncBatchKind kind, double ddp_max_error,
                       const BlockEval& base, const BlockEval& cand,
                       double* err) {
  ValFuncErrorsScalar(kind, ddp_max_error, base, cand, err);
}

}  // namespace internal
}  // namespace kernels
}  // namespace prox

#endif
