#ifndef PROX_KERNELS_TIER_ENTRY_H_
#define PROX_KERNELS_TIER_ENTRY_H_

#include "kernels/batch_eval.h"

namespace prox {
namespace kernels {
namespace internal {

/// Per-tier entry points behind EvaluateBlock / ValFuncBlockErrors'
/// runtime dispatch. One translation unit per tier instantiates the
/// shared templates of kernels_impl.h against its vector-ops policy
/// (scalar doubles, __m128d, __m256d); the SSE4.2/AVX2 TUs compile with
/// per-file -msse4.2 / -mavx2 (and explicit -mno-fma: the rest of the
/// tree builds without -march flags, so scalar code never contracts
/// mul+add — the vector tiers must not either). On non-x86 targets the
/// SIMD TUs forward to the scalar entry points.

void EvalBatchScalar(const BatchProgram& p, const ValuationBlock& b,
                     BlockEval* out);
void EvalBatchSse42(const BatchProgram& p, const ValuationBlock& b,
                    BlockEval* out);
void EvalBatchAvx2(const BatchProgram& p, const ValuationBlock& b,
                   BlockEval* out);

void ValFuncErrorsScalar(ValFuncBatchKind kind, double ddp_max_error,
                         const BlockEval& base, const BlockEval& cand,
                         double* err);
void ValFuncErrorsSse42(ValFuncBatchKind kind, double ddp_max_error,
                        const BlockEval& base, const BlockEval& cand,
                        double* err);
void ValFuncErrorsAvx2(ValFuncBatchKind kind, double ddp_max_error,
                       const BlockEval& base, const BlockEval& cand,
                       double* err);

}  // namespace internal
}  // namespace kernels
}  // namespace prox

#endif  // PROX_KERNELS_TIER_ENTRY_H_
