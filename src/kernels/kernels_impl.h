#ifndef PROX_KERNELS_KERNELS_IMPL_H_
#define PROX_KERNELS_KERNELS_IMPL_H_

#include <cstring>
#include <vector>

#include "kernels/batch_eval.h"

/// \file
/// Shared batch-kernel templates, instantiated once per SIMD tier by the
/// kernels_{scalar,sse42,avx2}.cc translation units against their Ops
/// policy. An Ops policy provides:
///
///   kLanes               — doubles per vector (1 / 2 / 4)
///   VecD / MaskD         — vector / comparison-mask types
///   Load, Store, Broadcast
///   Add, Sub, Mul, Div, Sqrt, Abs
///   CmpLT, CmpEQ         — ordered, quiet (NaN compares false, like the
///                          scalar <, == they replace)
///   MaskFromBytes        — widen 0xFF/0x00 lane bytes to a lane mask
///   MaskAnd, MaskOr, MaskNot, MaskTrue
///   Select(m, a, b)      — per lane: m ? a : b (bitwise blend; all masks
///                          here are all-ones/all-zeros, never partial)
///
/// Bit-identity contract: every lane's arithmetic below is the exact
/// operation sequence of the scalar evaluators (FoldAggregate,
/// IrDdpExpression::Evaluate, the VAL-FUNC Compute methods) — Select
/// keeps the *old* accumulator bits on dead lanes (a masked add would
/// flip -0.0 to +0.0), max/min are expressed as the same compare+select
/// std::max/std::min lower to, and divisions/sqrt are the IEEE
/// correctly-rounded instructions. No FMA: these TUs pass -mno-fma so
/// mul+add never contracts.

namespace prox {
namespace kernels {
namespace internal {

inline uint64_t LoadU64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

inline void StoreU64(uint8_t* p, uint64_t v) { std::memcpy(p, &v, 8); }

/// alive[0, stride) = AND over the monomial's factor rows (0xFF/0x00
/// bytes). Factors at or beyond the block's annotation count are
/// default-true and skipped. Early-outs once every lane is dead — the
/// batch analogue of the scalar evaluators' `break` on a false factor.
inline void MonoAliveBytes(const ValuationBlock& block, const MonoSpan& mono,
                           uint8_t* alive) {
  const size_t n = block.num_annotations();
  const bool wide = block.stride() == 16;
  uint64_t lo = ~0ull;
  uint64_t hi = ~0ull;
  for (uint32_t k = 0; k < mono.len; ++k) {
    const AnnotationId f = mono.data[k];
    if (f >= n) continue;
    const uint8_t* row = block.Row(f);
    lo &= LoadU64(row);
    if (wide) hi &= LoadU64(row + 8);
    if (lo == 0 && (!wide || hi == 0)) break;
  }
  StoreU64(alive, lo);
  if (wide) StoreU64(alive + 8, hi);
}

/// Applies an AggBatchRow's guard to its liveness bytes. The guard value
/// is `scalar` when the guard monomial holds and 0.0 otherwise, so the
/// comparison collapses to two precomputed booleans and the mask update
/// is pure byte arithmetic.
inline void ApplyGuardBytes(const ValuationBlock& block, const AggBatchRow& r,
                            uint8_t* alive) {
  alignas(16) uint8_t body[kMaxLanes];
  MonoAliveBytes(block, r.guard_mono, body);
  const uint64_t t = r.guard_if_true ? ~0ull : 0ull;
  const uint64_t f = r.guard_if_false ? ~0ull : 0ull;
  const uint64_t b0 = LoadU64(body);
  StoreU64(alive, LoadU64(alive) & ((b0 & t) | (~b0 & f)));
  if (block.stride() == 16) {
    const uint64_t b1 = LoadU64(body + 8);
    StoreU64(alive + 8, LoadU64(alive + 8) & ((b1 & t) | (~b1 & f)));
  }
}

inline bool AnyAlive(const uint8_t* alive, size_t stride) {
  if (LoadU64(alive) != 0) return true;
  return stride == 16 && LoadU64(alive + 8) != 0;
}

template <typename Ops>
void EvalAggImpl(const BatchProgram& p, const ValuationBlock& block,
                 BlockEval* out) {
  const size_t stride = block.stride();
  out->kind = p.kind;
  out->width = block.width();
  out->stride = stride;
  out->groups = p.groups;
  out->num_groups = p.num_groups;
  out->values.assign(p.num_groups * stride, 0.0);
  out->counts.assign(p.num_groups * stride, 0.0);
  out->costs.clear();

  // seen[g * stride + lane]: group g has folded a contribution on lane
  // yet. FoldAggregate's `first` flag, as a byte mask.
  static thread_local std::vector<uint8_t> seen;
  seen.assign(p.num_groups * stride, 0);

  alignas(16) uint8_t alive[kMaxLanes];
  for (const AggBatchRow& r : p.agg_rows) {
    MonoAliveBytes(block, r.mono, alive);
    if (r.has_guard) ApplyGuardBytes(block, r, alive);
    if (!AnyAlive(alive, stride)) continue;

    double* val = out->values.data() + static_cast<size_t>(r.group) * stride;
    double* cnt = out->counts.data() + static_cast<size_t>(r.group) * stride;
    uint8_t* sn = seen.data() + static_cast<size_t>(r.group) * stride;
    const typename Ops::VecD contrib = Ops::Broadcast(r.contribution);
    const typename Ops::VecD count_add = Ops::Broadcast(r.count_add);
    for (size_t l = 0; l < stride; l += Ops::kLanes) {
      const typename Ops::MaskD m = Ops::MaskFromBytes(alive + l);
      const typename Ops::MaskD s = Ops::MaskFromBytes(sn + l);
      const typename Ops::VecD acc = Ops::Load(val + l);
      typename Ops::VecD folded = contrib;
      switch (p.fold) {
        case AggFold::kAdd:
          folded = Ops::Add(acc, contrib);
          break;
        case AggFold::kMax:
          // std::max(acc, c) == (acc < c) ? c : acc, bit for bit.
          folded = Ops::Select(Ops::CmpLT(acc, contrib), contrib, acc);
          break;
        case AggFold::kMin:
          folded = Ops::Select(Ops::CmpLT(contrib, acc), contrib, acc);
          break;
      }
      // First live contribution replaces the accumulator; later ones fold.
      const typename Ops::VecD next = Ops::Select(s, folded, contrib);
      Ops::Store(val + l, Ops::Select(m, next, acc));
      const typename Ops::VecD cv = Ops::Load(cnt + l);
      Ops::Store(cnt + l, Ops::Select(m, Ops::Add(cv, count_add), cv));
    }
    StoreU64(sn, LoadU64(sn) | LoadU64(alive));
    if (stride == 16) StoreU64(sn + 8, LoadU64(sn + 8) | LoadU64(alive + 8));
  }

  if (p.agg == AggKind::kAvg) {
    // MergeAggValues' finalize: count > 0 ? value / count : 0.0.
    const typename Ops::VecD zero = Ops::Broadcast(0.0);
    const size_t total = p.num_groups * stride;
    for (size_t i = 0; i < total; i += Ops::kLanes) {
      const typename Ops::VecD v = Ops::Load(out->values.data() + i);
      const typename Ops::VecD c = Ops::Load(out->counts.data() + i);
      const typename Ops::MaskD pos = Ops::CmpLT(zero, c);
      Ops::Store(out->values.data() + i,
                 Ops::Select(pos, Ops::Div(v, c), zero));
    }
  }
}

template <typename Ops>
void EvalDdpImpl(const BatchProgram& p, const ValuationBlock& block,
                 BlockEval* out) {
  static constexpr uint8_t kAllTrue[kMaxLanes] = {
      0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF,
      0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF};
  const size_t stride = block.stride();
  const size_t n = block.num_annotations();
  out->kind = EvalResult::Kind::kCostBool;
  out->width = block.width();
  out->stride = stride;
  out->groups = nullptr;
  out->num_groups = 0;
  out->values.clear();
  out->counts.clear();
  out->costs.assign(stride, 0.0);
  out->feasible.fill(0);

  alignas(16) uint8_t any[kMaxLanes] = {0};
  alignas(32) double best[kMaxLanes] = {0};
  alignas(32) double cost[kMaxLanes];
  alignas(16) uint8_t feas[kMaxLanes];
  alignas(16) uint8_t prod[kMaxLanes];

  const size_t num_exec = p.ddp_exec_off.empty() ? 0 : p.ddp_exec_off.size() - 1;
  for (size_t e = 0; e < num_exec; ++e) {
    for (size_t l = 0; l < stride; ++l) cost[l] = 0.0;
    StoreU64(feas, ~0ull);
    if (stride == 16) StoreU64(feas + 8, ~0ull);

    for (uint32_t i = p.ddp_exec_off[e]; i < p.ddp_exec_off[e + 1]; ++i) {
      const DdpBatchRow& r = p.ddp_rows[i];
      if (r.user) {
        // cost += lane's cost-variable truth ? cost : 0 — same add the
        // scalar walk performs, skipped (old bits kept) on false lanes.
        const uint8_t* row = r.cost_var < n ? block.Row(r.cost_var) : kAllTrue;
        const typename Ops::VecD c = Ops::Broadcast(r.cost);
        for (size_t l = 0; l < stride; l += Ops::kLanes) {
          const typename Ops::MaskD m = Ops::MaskFromBytes(row + l);
          const typename Ops::VecD cv = Ops::Load(cost + l);
          Ops::Store(cost + l, Ops::Select(m, Ops::Add(cv, c), cv));
        }
      } else {
        MonoAliveBytes(block, r.db, prod);
        // Feasible iff the db monomial matches its required sign. The
        // scalar walk breaks on the first mismatch; the lanes that
        // mismatch keep accumulating cost here, but their cost is never
        // selected, so results agree bit for bit.
        const uint64_t p0 = LoadU64(prod);
        const uint64_t want = r.nonzero ? p0 : ~p0;
        StoreU64(feas, LoadU64(feas) & want);
        if (stride == 16) {
          const uint64_t p1 = LoadU64(prod + 8);
          StoreU64(feas + 8, LoadU64(feas + 8) & (r.nonzero ? p1 : ~p1));
        }
      }
    }

    // best = first feasible execution's cost, then min-by-< in execution
    // order — exactly the scalar `!any || cost < best` update.
    for (size_t l = 0; l < stride; l += Ops::kLanes) {
      const typename Ops::MaskD fm = Ops::MaskFromBytes(feas + l);
      const typename Ops::MaskD am = Ops::MaskFromBytes(any + l);
      const typename Ops::VecD cv = Ops::Load(cost + l);
      const typename Ops::VecD bv = Ops::Load(best + l);
      const typename Ops::MaskD take = Ops::MaskAnd(
          fm, Ops::MaskOr(Ops::MaskNot(am), Ops::CmpLT(cv, bv)));
      Ops::Store(best + l, Ops::Select(take, cv, bv));
    }
    StoreU64(any, LoadU64(any) | LoadU64(feas));
    if (stride == 16) StoreU64(any + 8, LoadU64(any + 8) | LoadU64(feas + 8));
  }

  for (size_t l = 0; l < stride; ++l) {
    out->costs[l] = any[l] ? best[l] : 0.0;
    out->feasible[l] = any[l];
  }
}

/// Polynomial counting is pure integer arithmetic — identical on every
/// tier, so a single portable body serves all three entry points.
inline void EvalPolyPortable(const BatchProgram& p, const ValuationBlock& block,
                             BlockEval* out) {
  const size_t stride = block.stride();
  out->kind = EvalResult::Kind::kScalar;
  out->width = block.width();
  out->stride = stride;
  out->groups = nullptr;
  out->num_groups = 0;
  out->counts.clear();
  out->costs.clear();

  uint64_t sums[kMaxLanes] = {0};
  alignas(16) uint8_t alive[kMaxLanes];
  for (const PolyBatchRow& r : p.poly_rows) {
    MonoAliveBytes(block, r.mono, alive);
    for (size_t l = 0; l < stride; ++l) {
      if (alive[l]) sums[l] += r.coeff;
    }
  }
  out->values.assign(stride, 0.0);
  for (size_t l = 0; l < stride; ++l) {
    out->values[l] = static_cast<double>(sums[l]);
  }
}

template <typename Ops>
void EvalBatchImpl(const BatchProgram& p, const ValuationBlock& block,
                   BlockEval* out) {
  switch (p.shape) {
    case BatchProgram::Shape::kAggregate:
      EvalAggImpl<Ops>(p, block, out);
      break;
    case BatchProgram::Shape::kDdp:
      EvalDdpImpl<Ops>(p, block, out);
      break;
    case BatchProgram::Shape::kPolynomial:
      EvalPolyPortable(p, block, out);
      break;
  }
}

template <typename Ops>
void ValFuncErrorsImpl(ValFuncBatchKind kind, double ddp_max_error,
                       const BlockEval& base, const BlockEval& cand,
                       double* err) {
  const size_t stride = cand.stride;
  const typename Ops::VecD zero = Ops::Broadcast(0.0);
  const typename Ops::VecD one = Ops::Broadcast(1.0);

  switch (kind) {
    case ValFuncBatchKind::kNone:
      break;
    case ValFuncBatchKind::kL1:
    case ValFuncBatchKind::kL2: {
      if (cand.kind == EvalResult::Kind::kScalar) {
        // Both VAL-FUNCs degenerate to |a - b| on scalars (Euclidean's
        // scalar branch is the plain absolute difference, not sqrt(d²)).
        for (size_t l = 0; l < stride; l += Ops::kLanes) {
          const typename Ops::VecD d = Ops::Sub(Ops::Load(base.values.data() + l),
                                                Ops::Load(cand.values.data() + l));
          Ops::Store(err + l, Ops::Abs(d));
        }
        break;
      }
      // Vector: fold groups in ascending order, per lane — the exact
      // ForEachCoordPair order (both sides share the sorted group array).
      for (size_t l = 0; l < stride; l += Ops::kLanes) {
        Ops::Store(err + l, zero);
      }
      for (size_t g = 0; g < cand.num_groups; ++g) {
        const double* b = base.values.data() + g * stride;
        const double* c = cand.values.data() + g * stride;
        for (size_t l = 0; l < stride; l += Ops::kLanes) {
          const typename Ops::VecD d = Ops::Sub(Ops::Load(b + l), Ops::Load(c + l));
          const typename Ops::VecD e = Ops::Load(err + l);
          Ops::Store(err + l,
                     kind == ValFuncBatchKind::kL1
                         ? Ops::Add(e, Ops::Abs(d))
                         : Ops::Add(e, Ops::Mul(d, d)));
        }
      }
      if (kind == ValFuncBatchKind::kL2) {
        for (size_t l = 0; l < stride; l += Ops::kLanes) {
          Ops::Store(err + l, Ops::Sqrt(Ops::Load(err + l)));
        }
      }
      break;
    }
    case ValFuncBatchKind::kDisagreement: {
      if (cand.kind == EvalResult::Kind::kScalar) {
        for (size_t l = 0; l < stride; l += Ops::kLanes) {
          const typename Ops::MaskD eq = Ops::CmpEQ(
              Ops::Load(base.values.data() + l), Ops::Load(cand.values.data() + l));
          Ops::Store(err + l, Ops::Select(eq, zero, one));
        }
      } else if (cand.kind == EvalResult::Kind::kVector) {
        for (size_t l = 0; l < stride; l += Ops::kLanes) {
          typename Ops::MaskD eq = Ops::MaskTrue();
          for (size_t g = 0; g < cand.num_groups; ++g) {
            eq = Ops::MaskAnd(
                eq, Ops::CmpEQ(Ops::Load(base.values.data() + g * stride + l),
                               Ops::Load(cand.values.data() + g * stride + l)));
          }
          Ops::Store(err + l, Ops::Select(eq, zero, one));
        }
      } else {  // kCostBool: equal iff same scalar cost and same feasibility.
        alignas(16) uint8_t feq[kMaxLanes];
        const uint64_t x0 = LoadU64(base.feasible.data()) ^ LoadU64(cand.feasible.data());
        StoreU64(feq, ~x0);
        if (stride == 16) {
          const uint64_t x1 =
              LoadU64(base.feasible.data() + 8) ^ LoadU64(cand.feasible.data() + 8);
          StoreU64(feq + 8, ~x1);
        }
        for (size_t l = 0; l < stride; l += Ops::kLanes) {
          const typename Ops::MaskD eq = Ops::MaskAnd(
              Ops::CmpEQ(Ops::Load(base.costs.data() + l),
                         Ops::Load(cand.costs.data() + l)),
              Ops::MaskFromBytes(feq + l));
          Ops::Store(err + l, Ops::Select(eq, zero, one));
        }
      }
      break;
    }
    case ValFuncBatchKind::kDdp: {
      const typename Ops::VecD maxe = Ops::Broadcast(ddp_max_error);
      for (size_t l = 0; l < stride; l += Ops::kLanes) {
        const typename Ops::MaskD bf = Ops::MaskFromBytes(base.feasible.data() + l);
        const typename Ops::MaskD cf = Ops::MaskFromBytes(cand.feasible.data() + l);
        const typename Ops::VecD diff =
            Ops::Abs(Ops::Sub(Ops::Load(base.costs.data() + l),
                              Ops::Load(cand.costs.data() + l)));
        const typename Ops::MaskD both = Ops::MaskAnd(bf, cf);
        const typename Ops::MaskD neither =
            Ops::MaskAnd(Ops::MaskNot(bf), Ops::MaskNot(cf));
        Ops::Store(err + l,
                   Ops::Select(both, diff, Ops::Select(neither, zero, maxe)));
      }
      break;
    }
  }
}

}  // namespace internal
}  // namespace kernels
}  // namespace prox

#endif  // PROX_KERNELS_KERNELS_IMPL_H_
