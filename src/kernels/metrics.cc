#include "kernels/metrics.h"

#include "obs/metrics.h"

namespace prox {
namespace kernels {

void PublishSimdTier(int tier) {
  static obs::Gauge* g = obs::MetricsRegistry::Default().GetGauge(
      "prox_simd_tier",
      "SIMD tier the batch kernels dispatch to: 0 scalar, 1 sse4.2, 2 avx2 "
      "(min of CPU support, PROX_SIMD and the --simd cap).");
  g->Set(static_cast<double>(tier));
}

void CountBatchEvals(uint64_t n) {
  static obs::Counter* c = obs::MetricsRegistry::Default().GetCounter(
      "prox_kernel_batch_evals_total",
      "Valuations evaluated through the batched VAL-FUNC kernels.");
  c->Increment(n);
}

void CountScalarFallback(uint64_t n) {
  static obs::Counter* c = obs::MetricsRegistry::Default().GetCounter(
      "prox_kernel_scalar_fallback_total",
      "Distance calls that fell back to the per-valuation scalar path "
      "(non-batchable expression, VAL-FUNC or layout mismatch).");
  c->Increment(n);
}

uint64_t BatchEvalsForTesting() {
  CountBatchEvals(0);  // ensure the counter exists
  return obs::MetricsRegistry::Default()
      .GetCounter("prox_kernel_batch_evals_total", "")
      ->value();
}

uint64_t ScalarFallbacksForTesting() {
  CountScalarFallback(0);
  return obs::MetricsRegistry::Default()
      .GetCounter("prox_kernel_scalar_fallback_total", "")
      ->value();
}

}  // namespace kernels
}  // namespace prox
