#ifndef PROX_KERNELS_BATCH_EVAL_H_
#define PROX_KERNELS_BATCH_EVAL_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "kernels/valuation_block.h"
#include "provenance/agg_value.h"
#include "provenance/annotation.h"
#include "provenance/eval_result.h"
#include "provenance/guard.h"

namespace prox {
namespace kernels {

/// \brief prox::kernels — batched VAL-FUNC evaluation for the distance
/// hot path (docs/KERNELS.md).
///
/// The oracles spend their time evaluating one candidate expression under
/// many valuations. Instead of walking the expression once per valuation,
/// a candidate is *lowered* once per Distance call into a flat
/// BatchProgram (plain arrays of factor spans and per-row constants), and
/// each reduction chunk of 8/16 valuations is then evaluated in one pass
/// over the program rows — the term walk hoisted to the outer loop, the
/// per-valuation work vectorized across lanes.
///
/// Every kernel is bit-identical to the scalar per-valuation path by
/// construction: vectorization is across *lanes* (valuations), never
/// across a lane's own fold order, so each lane performs exactly the
/// floating-point operation sequence the scalar evaluator performs.
/// SSE4.2/AVX2 selection (common/cpu_features.h) therefore changes speed
/// only, never results; `PROX_SIMD=0` proves it.

/// One monomial as a borrowed factor span. Points into the expression's
/// TermPool arena; valid while the expression lives unmutated.
struct MonoSpan {
  const AnnotationId* data = nullptr;
  uint32_t len = 0;
};

/// Aggregate fold flavor, hoisted out of the per-row FoldAggregate switch
/// (kSum/kCount/kAvg all add; the contribution is pre-resolved per row).
enum class AggFold : uint8_t { kAdd, kMax, kMin };

/// One lowered aggregate term row. The guard comparison collapses to two
/// precomputed booleans: the guard value is `scalar` when the body
/// monomial is true and 0.0 otherwise, so the comparison outcome only
/// depends on the body bit.
struct AggBatchRow {
  MonoSpan mono;
  MonoSpan guard_mono;
  uint8_t has_guard = 0;
  uint8_t guard_if_true = 0;   ///< compare(scalar, op, threshold)
  uint8_t guard_if_false = 0;  ///< compare(0.0, op, threshold)
  uint32_t group = 0;          ///< dense group slot index
  double contribution = 0.0;   ///< kCount ? value.count : value.value
  double count_add = 0.0;      ///< value.count
};

/// One lowered DDP transition row; user rows carry their resolved cost.
struct DdpBatchRow {
  uint8_t user = 1;
  uint8_t nonzero = 1;
  AnnotationId cost_var = kNoAnnotation;
  double cost = 0.0;
  MonoSpan db;
};

struct PolyBatchRow {
  MonoSpan mono;
  uint64_t coeff = 0;
};

/// \brief A candidate expression lowered to flat arrays — everything the
/// batch kernels need, with virtual dispatch, id resolution and guard
/// comparisons paid once per Distance call instead of once per valuation.
///
/// Borrowed pointers (factor spans, the group array) reference the source
/// expression; the program must not outlive it.
struct BatchProgram {
  enum class Shape : uint8_t { kAggregate, kDdp, kPolynomial };

  Shape shape = Shape::kAggregate;
  /// Result kind: kScalar for polynomials and group-less aggregates,
  /// kVector for grouped aggregates, kCostBool for DDP.
  EvalResult::Kind kind = EvalResult::Kind::kScalar;

  // Aggregate rows (canonical row order — the scalar fold order).
  AggKind agg = AggKind::kSum;
  AggFold fold = AggFold::kAdd;
  std::vector<AggBatchRow> agg_rows;
  const AnnotationId* groups = nullptr;  ///< sorted; borrowed
  size_t num_groups = 0;

  // DDP rows, flattened with per-execution offsets (canonical order).
  std::vector<DdpBatchRow> ddp_rows;
  std::vector<uint32_t> ddp_exec_off;  ///< num_executions + 1 offsets

  // Polynomial rows (canonical order).
  std::vector<PolyBatchRow> poly_rows;
};

/// \brief The SoA result of evaluating a BatchProgram over a
/// ValuationBlock: lane `l`'s EvalResult, in columns.
///
/// Vector results store `values[g * stride + lane]` over the program's
/// group array; scalar results use `values[lane]`; cost/bool results use
/// `costs[lane]` and the `feasible` byte mask. Counts mirror EvalResult's
/// auxiliary coordinate counts (populated for vector results).
struct BlockEval {
  EvalResult::Kind kind = EvalResult::Kind::kScalar;
  size_t width = 0;
  size_t stride = 8;
  const AnnotationId* groups = nullptr;  ///< borrowed from the program
  size_t num_groups = 0;
  std::vector<double> values;
  std::vector<double> counts;
  std::vector<double> costs;
  std::array<uint8_t, kMaxLanes> feasible{};

  /// Reassembles lane `lane` as a plain EvalResult (tests, fallbacks).
  EvalResult Extract(size_t lane) const;
};

/// The batched VAL-FUNC reductions; kNone marks a ValFunc with no
/// bit-identical batch counterpart (oracles then keep the scalar path).
enum class ValFuncBatchKind : uint8_t {
  kNone,
  kL1,            ///< AbsoluteDifference
  kL2,            ///< Euclidean
  kDisagreement,  ///< Disagreement
  kDdp,           ///< DdpDifference
};

/// Replicates Guard::Evaluate's comparison step (`value OP threshold`) —
/// used by program lowering to fold a guard into two booleans.
inline bool EvalCompare(double value, CompareOp op, double threshold) {
  switch (op) {
    case CompareOp::kGt:
      return value > threshold;
    case CompareOp::kGe:
      return value >= threshold;
    case CompareOp::kLt:
      return value < threshold;
    case CompareOp::kLe:
      return value <= threshold;
    case CompareOp::kEq:
      return value == threshold;
    case CompareOp::kNe:
      return value != threshold;
  }
  return false;
}

/// \brief Implemented by expressions that can lower themselves into a
/// BatchProgram — the prox::ir flat classes. Exposed through
/// ProvenanceExpression::AsBatchEval() so the oracles gate on capability,
/// not on concrete types.
class BatchEvalFacade {
 public:
  virtual ~BatchEvalFacade() = default;

  /// Lowers the expression. O(terms); call once per Distance call and
  /// amortize over the valuation set.
  virtual BatchProgram LowerBatch() const = 0;
};

/// Evaluates `program` under every lane of `block`, dispatching to the
/// active SIMD tier (common/cpu_features.h). Bit-identical across tiers.
void EvaluateBlock(const BatchProgram& program, const ValuationBlock& block,
                   BlockEval* out);

/// Computes the per-lane VAL-FUNC error `err[l] = valfunc(base lane l,
/// cand lane l)` for lanes [0, cand.width). `base` and `cand` must have
/// the same kind, stride and (for vector results) group layout — the
/// oracles validate this once per call via MatchesLayout. `ddp_max_error`
/// is DdpDifferenceValFunc's feasibility-mismatch penalty (ignored for
/// other kinds).
void ValFuncBlockErrors(ValFuncBatchKind kind, double ddp_max_error,
                        const BlockEval& base, const BlockEval& cand,
                        double* err);

/// True when `e`'s shape equals the layout (kind, and for vectors the
/// exact sorted group-key array) — the precondition for feeding packed
/// base results and a candidate's BlockEval to ValFuncBlockErrors.
bool EvalMatchesLayout(const EvalResult& e, EvalResult::Kind kind,
                       const AnnotationId* groups, size_t num_groups);

/// Same check against a lowered program's output layout.
bool ProgramMatchesLayout(const BatchProgram& p, EvalResult::Kind kind,
                          const AnnotationId* groups, size_t num_groups);

/// Packs `count` (<= kMaxLanes) EvalResults into a BlockEval with the
/// given layout, validating each against it. Returns false (out
/// unspecified) on any mismatch. `groups` is borrowed by the result.
bool PackEvalBlock(const EvalResult* evals, size_t count,
                   EvalResult::Kind kind, const AnnotationId* groups,
                   size_t num_groups, BlockEval* out);

}  // namespace kernels
}  // namespace prox

#endif  // PROX_KERNELS_BATCH_EVAL_H_
