// SSE4.2 tier. This translation unit is compiled with -msse4.2 -mno-fma
// (see CMakeLists.txt); nothing here may be called unless the shared
// detector reports at least SimdTier::kSse42. On non-x86 targets it
// forwards to the scalar tier.

#include "kernels/kernels_impl.h"
#include "kernels/tier_entry.h"

#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

#include <cstring>

namespace prox {
namespace kernels {
namespace internal {

namespace {

/// Two valuation lanes per __m128d. Comparison masks are full __m128d
/// bit masks (all-ones / all-zeros), so blendv's sign-bit semantics are
/// exact. The legacy (non-VEX) cmplt/cmpeq forms signal on NaN where
/// AVX's _CMP_LT_OQ is quiet, but both return false — results match the
/// scalar `<` / `==` bit for bit, and FP exception flags are unused.
struct SseOps {
  static constexpr size_t kLanes = 2;
  using VecD = __m128d;
  using MaskD = __m128d;

  static VecD Load(const double* p) { return _mm_loadu_pd(p); }
  static void Store(double* p, VecD v) { _mm_storeu_pd(p, v); }
  static VecD Broadcast(double v) { return _mm_set1_pd(v); }
  static VecD Add(VecD a, VecD b) { return _mm_add_pd(a, b); }
  static VecD Sub(VecD a, VecD b) { return _mm_sub_pd(a, b); }
  static VecD Mul(VecD a, VecD b) { return _mm_mul_pd(a, b); }
  static VecD Div(VecD a, VecD b) { return _mm_div_pd(a, b); }
  static VecD Sqrt(VecD a) { return _mm_sqrt_pd(a); }
  static VecD Abs(VecD a) {
    return _mm_andnot_pd(_mm_set1_pd(-0.0), a);  // clear sign bit == fabs
  }
  static MaskD CmpLT(VecD a, VecD b) { return _mm_cmplt_pd(a, b); }
  static MaskD CmpEQ(VecD a, VecD b) { return _mm_cmpeq_pd(a, b); }
  static MaskD MaskFromBytes(const uint8_t* p) {
    // Sign-extend two 0xFF/0x00 bytes to two all-ones/all-zeros qwords.
    uint16_t two;
    std::memcpy(&two, p, 2);
    return _mm_castsi128_pd(_mm_cvtepi8_epi64(_mm_cvtsi32_si128(two)));
  }
  static MaskD MaskAnd(MaskD a, MaskD b) { return _mm_and_pd(a, b); }
  static MaskD MaskOr(MaskD a, MaskD b) { return _mm_or_pd(a, b); }
  static MaskD MaskNot(MaskD a) {
    return _mm_xor_pd(a, _mm_castsi128_pd(_mm_set1_epi32(-1)));
  }
  static MaskD MaskTrue() { return _mm_castsi128_pd(_mm_set1_epi32(-1)); }
  static VecD Select(MaskD m, VecD a, VecD b) {
    return _mm_blendv_pd(b, a, m);  // per lane: m ? a : b
  }
};

}  // namespace

void EvalBatchSse42(const BatchProgram& p, const ValuationBlock& b,
                    BlockEval* out) {
  EvalBatchImpl<SseOps>(p, b, out);
}

void ValFuncErrorsSse42(ValFuncBatchKind kind, double ddp_max_error,
                        const BlockEval& base, const BlockEval& cand,
                        double* err) {
  ValFuncErrorsImpl<SseOps>(kind, ddp_max_error, base, cand, err);
}

}  // namespace internal
}  // namespace kernels
}  // namespace prox

#else  // !x86-64

namespace prox {
namespace kernels {
namespace internal {

void EvalBatchSse42(const BatchProgram& p, const ValuationBlock& b,
                    BlockEval* out) {
  EvalBatchScalar(p, b, out);
}

void ValFuncErrorsSse42(ValFuncBatchKind kind, double ddp_max_error,
                        const BlockEval& base, const BlockEval& cand,
                        double* err) {
  ValFuncErrorsScalar(kind, ddp_max_error, base, cand, err);
}

}  // namespace internal
}  // namespace kernels
}  // namespace prox

#endif
