#ifndef PROX_KERNELS_METRICS_H_
#define PROX_KERNELS_METRICS_H_

#include <cstdint>

namespace prox {
namespace kernels {

/// Counter/gauge bumpers for the batch kernels (docs/OBSERVABILITY.md
/// catalogues the names). Each caches its obs pointer in a function-local
/// static, so the hot-path cost is one relaxed atomic op.

/// Publishes `prox_simd_tier` — the numeric tier the dispatcher resolved
/// (0 scalar, 1 sse4.2, 2 avx2). Re-published on every batch so runtime
/// cap changes (PROX_SIMD, --simd) show up.
void PublishSimdTier(int tier);

/// `n` valuations were evaluated through the batch kernels.
void CountBatchEvals(uint64_t n);

/// An oracle fell back to the per-valuation scalar path for one Distance
/// call (layout mismatch, non-batchable expression or VAL-FUNC).
void CountScalarFallback(uint64_t n = 1);

/// Current counter values, for tests asserting that the batch path (or
/// the fallback) actually engaged — identity checks are vacuous if the
/// code under test silently took the other path.
uint64_t BatchEvalsForTesting();
uint64_t ScalarFallbacksForTesting();

}  // namespace kernels
}  // namespace prox

#endif  // PROX_KERNELS_METRICS_H_
