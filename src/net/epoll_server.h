#ifndef PROX_NET_EPOLL_SERVER_H_
#define PROX_NET_EPOLL_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "serve/http.h"

namespace prox {
namespace exec {
class ThreadPool;
}  // namespace exec

namespace net {

class Shard;

/// \brief The epoll transport: one blocking acceptor, N event-loop shards
/// (level-triggered epoll over non-blocking sockets), and a small handler
/// worker pool so the loops never block on the engine.
///
/// The contract is the blocking serve::HttpServer's, byte for byte: the
/// same Handler type, the same split-read-safe HttpParser, responses
/// rendered by the same serve::RenderResponse, the same canned error
/// documents, the same bounded-admission 503 shedding, the same idle /
/// mid-request timeout budgets, and the same graceful drain (Stop closes
/// the listener, in-flight requests finish with `Connection: close`,
/// then the loops exit). What changes is the cost model: a parked
/// keep-alive connection is one fd and a small state machine instead of a
/// blocked thread, so tens of thousands of idle connections fit in a few
/// threads.
///
/// Threading: each connection lives on exactly one shard; all of its
/// state-machine transitions run on that shard's loop thread. Handlers
/// run on the worker pool and post their response back to the owning
/// loop (fd + generation id, so a response for an already-closed
/// connection is dropped, never delivered to a reused fd).
class EpollServer {
 public:
  using Handler = std::function<serve::HttpResponse(const serve::HttpRequest&)>;

  struct Options {
    std::string host = "127.0.0.1";
    int port = 0;  ///< 0 = ephemeral; see port() after Start()
    /// Event-loop shards. 0 = hardware_concurrency()/2, clamped to [1, 8].
    int shards = 0;
    /// Worker threads running the request handler (engine calls).
    int handler_threads = 4;
    /// Connections admitted at once; the acceptor sheds the rest with a
    /// canned 503 (`prox_serve_overload_total`), same as the blocking
    /// server. Raise well past the expected keep-alive population — for
    /// the epoll transport parked connections are cheap.
    int max_inflight = 4096;
    int backlog = 1024;
    /// Mid-request budget (partial request, no byte for this long → 408).
    int read_timeout_ms = 5000;
    /// Keep-alive budget (idle past this → reaped silently, counted in
    /// `prox_serve_idle_reaped_total`).
    int idle_timeout_ms = 15000;
    serve::HttpParser::Limits limits;
  };

  EpollServer(Options options, Handler handler);
  ~EpollServer();  ///< calls Stop()

  EpollServer(const EpollServer&) = delete;
  EpollServer& operator=(const EpollServer&) = delete;

  /// Binds, listens, spawns the shards, the handler pool and the
  /// acceptor. Fails with Internal when the socket can't be bound.
  Status Start();

  /// Graceful drain (see class comment). Idempotent; safe to call from a
  /// signal-watcher thread.
  void Stop();

  /// The bound port (resolves port 0 requests). Valid after Start().
  int port() const { return port_; }

  bool running() const { return running_.load(std::memory_order_acquire); }

  bool stopping() const { return stopping_.load(std::memory_order_acquire); }

 private:
  friend class Shard;

  void AcceptLoop();
  /// Called by a shard when it closes a connection — releases the
  /// admission slot taken in AcceptLoop.
  void ReleaseConnection();

  Options options_;
  Handler handler_;

  std::atomic<int> listen_fd_{-1};
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  std::atomic<int> inflight_{0};
  std::atomic<uint64_t> next_conn_id_{1};

  std::unique_ptr<exec::ThreadPool> handler_pool_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::thread acceptor_;
};

}  // namespace net
}  // namespace prox

#endif  // PROX_NET_EPOLL_SERVER_H_
