#ifndef PROX_NET_BALANCER_H_
#define PROX_NET_BALANCER_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "net/ring.h"
#include "serve/http.h"

namespace prox {
namespace net {

/// \brief A consistent-hash HTTP balancer over `prox_server` replicas
/// booted from one shared PROXSNAP snapshot. Plugs into either transport
/// as its Handler (examples/prox_router.cpp puts it behind an
/// EpollServer).
///
/// Routing: the key is the replicas' dataset fingerprint (fetched once
/// from a replica's /healthz) plus the request target and body, so the
/// same summarize request always lands on the same replica and its
/// SummaryCache stays hot — fanning N replicas multiplies cache capacity
/// instead of splitting the hit rate. HashRing's minimal-remapping
/// property keeps ~(R-1)/R of that affinity through a replica failure.
///
/// Failure handling is layered:
///  - passive: a transport-level forward failure (connect/send/read)
///    marks the replica unhealthy immediately;
///  - active: an optional probe thread GETs /healthz every
///    `health_interval_ms` and flips replicas back when they recover;
///  - retry: idempotent GETs are replayed once on the key's next ring
///    successor (`prox_net_balancer_retry_total`); non-idempotent
///    methods get a 502 instead of a blind replay;
///  - all replicas down → canned 503
///    (`prox_net_balancer_no_backend_total`).
///
/// An HTTP 5xx from a replica is an answer, not a transport failure: it
/// is passed through untouched.
///
/// /healthz and /metrics are answered locally (router health + the
/// router's own `prox_net_balancer_*` series); everything else is
/// forwarded with an added `X-Prox-Replica: host:port` response header
/// naming the replica that answered.
class Balancer {
 public:
  struct Options {
    /// Replica endpoints as "host:port".
    std::vector<std::string> replicas;
    int vnodes = 64;
    /// Active /healthz probe period; 0 disables the probe thread
    /// (passive detection still applies, but a replica marked down can
    /// only recover via a probe, so 0 is for tests and fail-stop fleets).
    int health_interval_ms = 1000;
    int connect_timeout_ms = 2000;
    /// Per-forward budget: connect + send + read of the replica response.
    int request_timeout_ms = 10000;
    bool retry_idempotent = true;
  };

  explicit Balancer(Options options);
  ~Balancer();  ///< calls Stop()

  Balancer(const Balancer&) = delete;
  Balancer& operator=(const Balancer&) = delete;

  /// Validates the replica list and starts the probe thread (when
  /// enabled). InvalidArgument on an empty or malformed replica list.
  Status Start();

  /// Stops the probe thread. Idempotent.
  void Stop();

  /// The transport Handler: route locally or forward (class comment).
  serve::HttpResponse Handle(const serve::HttpRequest& request);

  /// Endpoints currently believed healthy (tests, /healthz).
  int healthy_count() const;

 private:
  struct Replica {
    std::string endpoint;  ///< "host:port"
    std::string host;
    int port = 0;
    std::atomic<bool> healthy{true};
  };

  serve::HttpResponse HandleHealthz();
  serve::HttpResponse HandleMetrics();
  /// One forward attempt. Returns false on transport failure (replica is
  /// marked unhealthy); a replica HTTP response of any status is success.
  bool ForwardTo(Replica* replica, const serve::HttpRequest& request,
                 serve::HttpResponse* out);
  void MarkUnhealthy(Replica* replica);
  /// The shared dataset fingerprint, fetched lazily from a healthy
  /// replica's /healthz ("" until one answers).
  std::string DatasetFingerprint();
  void ProbeLoop();

  Options options_;
  std::vector<std::unique_ptr<Replica>> replicas_;
  std::unique_ptr<HashRing> ring_;

  std::mutex fingerprint_mu_;
  std::string fingerprint_;

  std::atomic<bool> probing_{false};
  std::mutex probe_mu_;
  std::condition_variable probe_cv_;
  std::thread probe_thread_;
};

}  // namespace net
}  // namespace prox

#endif  // PROX_NET_BALANCER_H_
