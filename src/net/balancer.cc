#include "net/balancer.h"

#include <algorithm>
#include <chrono>
#include <string_view>
#include <utility>

#include "common/json.h"
#include "net/net_metrics.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "serve/client.h"

namespace prox {
namespace net {

namespace {

/// The request as forwarded: the replica sees the original method,
/// target, body and trace context (`traceparent`), plus a Host naming it.
/// Hop-by-hop headers are not forwarded; the balancer holds its own
/// keep-alive policy toward the replica (one exchange per forward).
std::string RenderForwardRequest(const serve::HttpRequest& request,
                                 const std::string& endpoint) {
  std::string out = request.method + " " + request.target + " HTTP/1.1\r\n";
  out += "Host: " + endpoint + "\r\n";
  std::string_view content_type = request.Header("content-type");
  if (!content_type.empty()) {
    out += "Content-Type: " + std::string(content_type) + "\r\n";
  }
  std::string_view traceparent = request.Header("traceparent");
  if (!traceparent.empty()) {
    out += "traceparent: " + std::string(traceparent) + "\r\n";
  }
  out += "Content-Length: " + std::to_string(request.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += request.body;
  return out;
}

bool ParseEndpoint(const std::string& endpoint, std::string* host,
                   int* port) {
  size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == endpoint.size()) {
    return false;
  }
  *host = endpoint.substr(0, colon);
  int value = 0;
  for (size_t i = colon + 1; i < endpoint.size(); ++i) {
    char c = endpoint[i];
    if (c < '0' || c > '9') return false;
    value = value * 10 + (c - '0');
    if (value > 65535) return false;
  }
  if (value <= 0) return false;
  *port = value;
  return true;
}

}  // namespace

Balancer::Balancer(Options options) : options_(std::move(options)) {}

Balancer::~Balancer() { Stop(); }

Status Balancer::Start() {
  if (options_.replicas.empty()) {
    return Status::InvalidArgument("balancer needs at least one replica");
  }
  replicas_.clear();
  for (const std::string& endpoint : options_.replicas) {
    auto replica = std::make_unique<Replica>();
    replica->endpoint = endpoint;
    if (!ParseEndpoint(endpoint, &replica->host, &replica->port)) {
      replicas_.clear();
      return Status::InvalidArgument("bad replica endpoint (want host:port): " +
                                     endpoint);
    }
    replicas_.push_back(std::move(replica));
  }
  ring_ = std::make_unique<HashRing>(options_.replicas, options_.vnodes);
  if (options_.health_interval_ms > 0 &&
      !probing_.exchange(true, std::memory_order_acq_rel)) {
    probe_thread_ = std::thread([this] { ProbeLoop(); });
  }
  return Status::OK();
}

void Balancer::Stop() {
  if (probing_.exchange(false, std::memory_order_acq_rel)) {
    probe_cv_.notify_all();
    if (probe_thread_.joinable()) probe_thread_.join();
  }
}

int Balancer::healthy_count() const {
  int count = 0;
  for (const auto& replica : replicas_) {
    if (replica->healthy.load(std::memory_order_acquire)) ++count;
  }
  return count;
}

serve::HttpResponse Balancer::Handle(const serve::HttpRequest& request) {
  if (request.target == "/healthz") return HandleHealthz();
  if (request.target == "/metrics") return HandleMetrics();

  // Fingerprint + target + body: replica affinity per request shape, so
  // each replica's SummaryCache serves a disjoint slice of the workload.
  const std::string key =
      DatasetFingerprint() + "\n" + request.target + "\n" + request.body;
  std::vector<std::string> candidates =
      ring_->PickN(key, static_cast<int>(replicas_.size()));
  std::vector<Replica*> healthy;
  for (const std::string& endpoint : candidates) {
    for (const auto& replica : replicas_) {
      if (replica->endpoint == endpoint &&
          replica->healthy.load(std::memory_order_acquire)) {
        healthy.push_back(replica.get());
      }
    }
  }
  if (healthy.empty()) {
    static obs::Counter* no_backend_metric = BalancerNoBackend();
    no_backend_metric->Increment();
    return serve::CannedErrorResponse(503);
  }

  const bool may_retry = options_.retry_idempotent && request.method == "GET";
  const size_t attempts = may_retry ? std::min<size_t>(2, healthy.size()) : 1;
  for (size_t attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      static obs::Counter* retry_metric = BalancerRetry();
      retry_metric->Increment();
    }
    serve::HttpResponse response;
    if (ForwardTo(healthy[attempt], request, &response)) return response;
  }
  return serve::CannedErrorResponse(502);
}

bool Balancer::ForwardTo(Replica* replica, const serve::HttpRequest& request,
                         serve::HttpResponse* out) {
  auto connection = serve::ClientConnection::Connect(
      replica->host, replica->port, options_.request_timeout_ms);
  if (!connection.ok()) {
    MarkUnhealthy(replica);
    return false;
  }
  Status sent =
      connection.value().SendRaw(RenderForwardRequest(request,
                                                      replica->endpoint));
  if (!sent.ok()) {
    MarkUnhealthy(replica);
    return false;
  }
  auto response = connection.value().ReadResponse();
  if (!response.ok()) {
    MarkUnhealthy(replica);
    return false;
  }

  BalancerForward(replica->endpoint)->Increment();
  out->status = response.value().status;
  out->body = std::move(response.value().body);
  std::string_view content_type = response.value().Header("content-type");
  if (!content_type.empty()) out->content_type = std::string(content_type);
  // Application headers survive the hop (trace id, cache outcome, ...);
  // framing ones don't — the front transport re-frames the response.
  for (const auto& [name, value] : response.value().headers) {
    if (name.rfind("x-prox-", 0) == 0) out->headers.emplace_back(name, value);
  }
  out->headers.emplace_back("X-Prox-Replica", replica->endpoint);
  return true;
}

void Balancer::MarkUnhealthy(Replica* replica) {
  if (replica->healthy.exchange(false, std::memory_order_acq_rel)) {
    static obs::Counter* unhealthy_metric = BalancerUnhealthy();
    unhealthy_metric->Increment();
  }
}

std::string Balancer::DatasetFingerprint() {
  {
    std::lock_guard<std::mutex> lock(fingerprint_mu_);
    if (!fingerprint_.empty()) return fingerprint_;
  }
  for (const auto& replica : replicas_) {
    if (!replica->healthy.load(std::memory_order_acquire)) continue;
    auto response =
        serve::Fetch(replica->host, replica->port, "GET", "/healthz", "",
                     options_.connect_timeout_ms);
    if (!response.ok() || response.value().status != 200) continue;
    auto doc = ParseJson(response.value().body);
    if (!doc.ok()) continue;
    const JsonValue* fingerprint = doc.value().Find("dataset_fingerprint");
    if (fingerprint == nullptr || !fingerprint->is_string()) continue;
    std::lock_guard<std::mutex> lock(fingerprint_mu_);
    fingerprint_ = fingerprint->string_value();
    return fingerprint_;
  }
  return "";  // no replica answered yet; routing still works, unprefixed
}

serve::HttpResponse Balancer::HandleHealthz() {
  JsonValue doc = JsonValue::Object();
  doc.Set("status", JsonValue::Str("ok"));
  doc.Set("role", JsonValue::Str("router"));
  doc.Set("healthy_replicas", JsonValue::Int(healthy_count()));
  JsonValue replicas = JsonValue::Array();
  for (const auto& replica : replicas_) {
    JsonValue entry = JsonValue::Object();
    entry.Set("endpoint", JsonValue::Str(replica->endpoint));
    entry.Set("healthy", JsonValue::Bool(
                             replica->healthy.load(std::memory_order_acquire)));
    replicas.Append(std::move(entry));
  }
  doc.Set("replicas", std::move(replicas));
  serve::HttpResponse response;
  response.body.reserve(256);
  AppendJson(doc, &response.body);
  response.body += "\n";
  return response;
}

serve::HttpResponse Balancer::HandleMetrics() {
  serve::HttpResponse response;
  response.content_type = "text/plain; version=0.0.4; charset=utf-8";
  response.body =
      obs::RenderPrometheus(obs::MetricsRegistry::Default().Snapshot());
  return response;
}

void Balancer::ProbeLoop() {
  while (probing_.load(std::memory_order_acquire)) {
    for (const auto& replica : replicas_) {
      if (!probing_.load(std::memory_order_acquire)) return;
      auto response =
          serve::Fetch(replica->host, replica->port, "GET", "/healthz", "",
                       options_.connect_timeout_ms);
      if (response.ok() && response.value().status == 200) {
        // Probe-driven recovery: the only path back to healthy.
        replica->healthy.store(true, std::memory_order_release);
      } else {
        MarkUnhealthy(replica.get());
      }
    }
    std::unique_lock<std::mutex> lock(probe_mu_);
    probe_cv_.wait_for(lock,
                       std::chrono::milliseconds(options_.health_interval_ms),
                       [this] {
                         return !probing_.load(std::memory_order_acquire);
                       });
  }
}

}  // namespace net
}  // namespace prox
