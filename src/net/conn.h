#ifndef PROX_NET_CONN_H_
#define PROX_NET_CONN_H_

#include <cstdint>
#include <string>

#include "serve/http.h"

namespace prox {
namespace net {

class Connection;

/// \brief What a Connection needs from its owning event-loop shard. All
/// calls happen on the shard's loop thread; the shard implements them with
/// epoll_ctl, the handler-pool dispatch, and its connection table.
class ConnectionHost {
 public:
  virtual ~ConnectionHost() = default;

  /// Re-arms the epoll interest set for the connection's fd.
  virtual void UpdateInterest(Connection* conn, bool want_read,
                              bool want_write) = 0;

  /// Runs the request handler off-loop (handler worker pool) and posts
  /// the response back to the loop as conn->OnHandlerDone(). Exactly one
  /// dispatch may be in flight per connection.
  virtual void Dispatch(Connection* conn, serve::HttpRequest request) = 0;

  /// Removes the connection from epoll and the table and closes the fd.
  /// The Connection is destroyed before this returns — no member access
  /// afterwards.
  virtual void CloseConnection(Connection* conn) = 0;

  /// True once the server began its graceful drain.
  virtual bool stopping() const = 0;
};

/// \brief One keep-alive HTTP/1.1 connection on an epoll shard, as a
/// state machine over the split-read-safe serve::HttpParser:
///
///   reading --(complete request)--> handling --(response)--> writing
///      ^                                                        |
///      +----------------(flush done, keep-alive)----------------+
///
/// Reads are paused (EPOLLIN dropped) while a handler is in flight or a
/// response is still flushing — per-connection backpressure by
/// construction: at most one request is being handled and at most one
/// response plus a canned error is ever buffered, no matter how many
/// requests the peer pipelines into its socket. Pipelined requests are
/// answered strictly in order, matching the blocking transport.
///
/// All methods run on the loop thread. The shard routes epoll events and
/// posted handler completions here; timeouts are driven by the shard's
/// periodic reap scan via idle_ns().
class Connection {
 public:
  Connection(int fd, uint64_t id, serve::HttpParser::Limits limits,
             ConnectionHost* host);
  ~Connection();

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  int fd() const { return fd_; }
  /// Monotonic per-server id; handler completions carry (fd, id) so a
  /// response for a dead connection (fd since reused) is dropped instead
  /// of delivered to the wrong peer.
  uint64_t id() const { return id_; }

  /// EPOLLIN (or EPOLLRDHUP): read until EAGAIN, feed the parser, pump.
  void OnReadable();
  /// EPOLLOUT: continue flushing the buffered response.
  void OnWritable();
  /// EPOLLERR / EPOLLHUP: the peer is gone.
  void OnPeerError();
  /// Handler completion, posted back from the worker pool. Decides the
  /// close bit (client asked, handler asked, or server draining), renders
  /// the response and starts the flush — rendering on the loop thread
  /// keeps the close decision and the rendered Connection header in sync
  /// with the drain state, exactly like the blocking worker loop.
  void OnHandlerDone(serve::HttpResponse response);

  /// Drain entry: idle connections close now; in-flight ones finish their
  /// current request (the response carries `Connection: close`).
  void BeginDrain();

  bool handler_inflight() const { return handler_inflight_; }
  /// True when between requests: nothing in flight, nothing buffered.
  bool idle() const {
    return !handler_inflight_ && out_.empty() && parser_.buffered_bytes() == 0;
  }
  /// True when a request started arriving but is not complete yet.
  bool mid_request() const {
    return !handler_inflight_ && out_.empty() && parser_.buffered_bytes() > 0;
  }
  /// Nanoseconds since the last byte of progress (read or write).
  int64_t idle_nanos(int64_t now_nanos) const {
    return now_nanos - last_activity_nanos_;
  }

  /// Reap actions (shard scan): close with a canned 408 (mid-request
  /// stall) or silently (idle past the keep-alive budget / stuck write).
  void AbortWithStatus(int status);

 private:
  /// Advances the state machine: parse the next pipelined request when
  /// nothing is in flight, dispatch it, or re-arm EPOLLIN. May destroy
  /// the connection (all paths return immediately after CloseConnection).
  void Pump();
  /// Sends as much of out_ as the socket accepts; parks on EPOLLOUT at
  /// EAGAIN. May destroy the connection (send error, close-after-flush),
  /// so callers return immediately after.
  void Flush();
  void QueueCanned(int status);
  /// epoll_ctl round-trips only when the interest set actually changes.
  void UpdateInterestIfChanged(bool want_read, bool want_write);

  int fd_;
  uint64_t id_;
  ConnectionHost* host_;
  serve::HttpParser parser_;
  std::string out_;      ///< rendered bytes not yet accepted by the socket
  size_t out_offset_ = 0;
  bool handler_inflight_ = false;
  bool request_wants_close_ = false;  ///< the in-flight request said close
  bool close_after_flush_ = false;
  bool peer_half_closed_ = false;  ///< recv returned 0
  bool draining_ = false;
  bool want_read_ = true;  ///< current epoll interest, to skip no-op ctls
  bool want_write_ = false;
  int64_t last_activity_nanos_;
};

}  // namespace net
}  // namespace prox

#endif  // PROX_NET_CONN_H_
