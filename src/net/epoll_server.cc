#include "net/epoll_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "exec/thread_pool.h"
#include "net/conn.h"
#include "net/net_metrics.h"
#include "obs/log.h"
#include "serve/serve_metrics.h"

namespace prox {
namespace net {

namespace {

int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// epoll_wait tick; drives the reap scan and the drain-completion check,
/// so it bounds timeout precision, not throughput (I/O events wake the
/// loop immediately via the eventfd / socket readiness).
constexpr int kLoopTickMs = 50;

}  // namespace

/// \brief One event loop: an epoll fd, an eventfd for cross-thread wakeup,
/// and the connections assigned to it. Implements ConnectionHost; every
/// Connection method runs on this shard's thread. Other threads talk to
/// the shard only through Post().
class Shard : public ConnectionHost {
 public:
  Shard(EpollServer* server, int index) : server_(server), index_(index) {}

  ~Shard() override {
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    if (wake_fd_ >= 0) ::close(wake_fd_);
  }

  Status Init() {
    epoll_fd_ = ::epoll_create1(0);
    if (epoll_fd_ < 0) {
      return Status::Internal("epoll_create1(): " +
                              std::string(std::strerror(errno)));
    }
    wake_fd_ = ::eventfd(0, EFD_NONBLOCK);
    if (wake_fd_ < 0) {
      return Status::Internal("eventfd(): " +
                              std::string(std::strerror(errno)));
    }
    epoll_event event{};
    event.events = EPOLLIN;
    event.data.fd = wake_fd_;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &event);
    return Status::OK();
  }

  void Run() { thread_ = std::thread([this] { Loop(); }); }

  void Join() {
    if (thread_.joinable()) thread_.join();
  }

  /// Enqueues a closure for the loop thread and wakes it. Safe from any
  /// thread; used by the acceptor (new connections), the handler pool
  /// (completions) and Stop() (drain).
  void Post(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lock(tasks_mu_);
      tasks_.push_back(std::move(task));
    }
    uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  }

  /// Takes ownership of an accepted non-blocking fd (loop thread only;
  /// the acceptor posts it here).
  void AddConnection(int fd, uint64_t id) {
    auto conn = std::make_unique<Connection>(fd, id, server_->options_.limits,
                                             this);
    epoll_event event{};
    event.events = EPOLLIN | EPOLLRDHUP;
    event.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &event) < 0) {
      ::close(fd);
      server_->ReleaseConnection();
      return;
    }
    if (draining_) {
      // Raced with Stop(): the listener closed but this fd was already
      // accepted. Serve nothing; just release it.
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
      ::close(fd);
      server_->ReleaseConnection();
      return;
    }
    conns_.emplace(fd, std::move(conn));
  }

  void BeginDrain() {
    draining_ = true;
    // BeginDrain may close (and erase) the connection, so walk a
    // snapshot of pointers, re-checking liveness through the map.
    std::vector<int> fds;
    fds.reserve(conns_.size());
    for (const auto& [fd, conn] : conns_) fds.push_back(fd);
    for (int fd : fds) {
      auto it = conns_.find(fd);
      if (it != conns_.end()) it->second->BeginDrain();
    }
  }

  // ---- ConnectionHost ----------------------------------------------------

  void UpdateInterest(Connection* conn, bool want_read,
                      bool want_write) override {
    epoll_event event{};
    event.events = (want_read ? (EPOLLIN | EPOLLRDHUP) : 0u) |
                   (want_write ? EPOLLOUT : 0u);
    event.data.fd = conn->fd();
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd(), &event);
  }

  void Dispatch(Connection* conn, serve::HttpRequest request) override {
    const int fd = conn->fd();
    const uint64_t id = conn->id();
    server_->handler_pool_->Submit(
        [this, fd, id, request = std::move(request)]() mutable {
          // Handler-pool workers carry the exec in-parallel-worker flag,
          // which would force the engine's nested ParallelFor inline.
          // This pool is not the exec default pool, so clearing the flag
          // for the handler's duration is deadlock-free and restores the
          // engine's full fan-out.
          bool was_worker = exec::InParallelWorker();
          exec::internal::SetInParallelWorker(false);
          serve::HttpResponse response = server_->handler_(request);
          exec::internal::SetInParallelWorker(was_worker);
          Post([this, fd, id, response = std::move(response)]() mutable {
            CompleteHandler(fd, id, std::move(response));
          });
        });
  }

  void CloseConnection(Connection* conn) override {
    const int fd = conn->fd();
    // A peer abort can close the connection while its handler is still
    // running in the pool. The admission slot stays held until that
    // orphaned completion arrives (CompleteHandler), so the number of
    // concurrently running handlers never exceeds max_inflight.
    const bool release_now = !conn->handler_inflight();
    if (!release_now) orphaned_dispatches_.insert(conn->id());
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
    conns_.erase(fd);  // destroys the Connection
    ::close(fd);
    if (release_now) server_->ReleaseConnection();
  }

  bool stopping() const override { return server_->stopping(); }

 private:
  void Loop() {
    epoll_event events[64];
    int64_t next_reap_nanos = NowNanos() + ReapIntervalNanos();
    while (true) {
      int n = ::epoll_wait(epoll_fd_, events, 64, kLoopTickMs);
      if (n < 0 && errno != EINTR) break;
      // Socket events first, posted tasks second: a task can add a fresh
      // connection whose fd number a just-closed connection used; its
      // events cannot be in the batch we are still processing.
      for (int i = 0; i < n; ++i) {
        const int fd = events[i].data.fd;
        const uint32_t bits = events[i].events;
        if (fd == wake_fd_) {
          uint64_t drained;
          while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
          }
          continue;
        }
        auto it = conns_.find(fd);
        if (it == conns_.end()) continue;  // closed earlier in this batch
        Connection* conn = it->second.get();
        if (bits & (EPOLLERR | EPOLLHUP)) {
          conn->OnPeerError();
          continue;
        }
        if (bits & (EPOLLIN | EPOLLRDHUP)) {
          conn->OnReadable();
          // OnReadable may have closed the connection; re-check before
          // delivering a coalesced EPOLLOUT.
          it = conns_.find(fd);
          if (it == conns_.end()) continue;
          conn = it->second.get();
        }
        if (bits & EPOLLOUT) conn->OnWritable();
      }
      RunPostedTasks();
      const int64_t now = NowNanos();
      if (now >= next_reap_nanos) {
        ReapStale(now);
        next_reap_nanos = now + ReapIntervalNanos();
      }
      // Orphaned dispatches keep the loop alive too: their completions
      // release admission slots, and the handler pool outlives the shard
      // threads (Stop), so they always arrive.
      if (draining_ && conns_.empty() && orphaned_dispatches_.empty()) break;
    }
  }

  void RunPostedTasks() {
    std::vector<std::function<void()>> tasks;
    {
      std::lock_guard<std::mutex> lock(tasks_mu_);
      tasks.swap(tasks_);
    }
    for (auto& task : tasks) task();
  }

  void CompleteHandler(int fd, uint64_t id, serve::HttpResponse response) {
    auto it = conns_.find(fd);
    // The id check keeps a late response for a dead connection from being
    // written to a new connection that reused its fd number.
    if (it == conns_.end() || it->second->id() != id) {
      // The connection closed mid-dispatch; its admission slot was kept
      // for the running handler (CloseConnection). Release it now.
      if (orphaned_dispatches_.erase(id) > 0) server_->ReleaseConnection();
      return;
    }
    it->second->OnHandlerDone(std::move(response));
  }

  /// Scan period: a fraction of the smallest budget, floored at the loop
  /// tick — timeouts fire within ~25% over their nominal value.
  int64_t ReapIntervalNanos() const {
    int64_t min_ms = std::min(server_->options_.read_timeout_ms,
                              server_->options_.idle_timeout_ms);
    int64_t interval_ms = std::max<int64_t>(kLoopTickMs, min_ms / 4);
    return interval_ms * 1'000'000;
  }

  void ReapStale(int64_t now) {
    static obs::Counter* idle_reaped_metric = serve::ServeIdleReaped();
    static obs::Counter* timeout_metric = NetRequestTimeouts();
    const int64_t read_budget =
        int64_t{server_->options_.read_timeout_ms} * 1'000'000;
    const int64_t idle_budget =
        int64_t{server_->options_.idle_timeout_ms} * 1'000'000;
    std::vector<int> timed_out_mid_request;
    std::vector<int> reap_silent;
    for (const auto& [fd, conn] : conns_) {
      if (conn->handler_inflight()) continue;  // engine time is not stall
      const int64_t idle_for = conn->idle_nanos(now);
      if (conn->mid_request() && idle_for > read_budget) {
        timed_out_mid_request.push_back(fd);
      } else if (conn->idle() && idle_for > idle_budget) {
        reap_silent.push_back(fd);
      } else if (idle_for > read_budget && !conn->idle() &&
                 !conn->mid_request()) {
        // Stuck flush: the peer stopped reading its response.
        reap_silent.push_back(fd);
      }
    }
    for (int fd : timed_out_mid_request) {
      auto it = conns_.find(fd);
      if (it == conns_.end()) continue;
      timeout_metric->Increment();
      it->second->AbortWithStatus(408);
    }
    for (int fd : reap_silent) {
      auto it = conns_.find(fd);
      if (it == conns_.end()) continue;
      idle_reaped_metric->Increment();
      CloseConnection(it->second.get());
    }
  }

  EpollServer* server_;
  [[maybe_unused]] int index_;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::thread thread_;
  /// Loop-thread state: fd → connection. Lookup by fd on every event, so
  /// stale events for closed fds fall through harmlessly.
  std::unordered_map<int, std::unique_ptr<Connection>> conns_;
  /// Ids of connections closed while their handler dispatch was still
  /// running; each still holds its admission slot, released when the
  /// orphaned completion is delivered. Loop-thread state.
  std::unordered_set<uint64_t> orphaned_dispatches_;
  bool draining_ = false;  // loop-thread flag, set via posted BeginDrain

  std::mutex tasks_mu_;
  std::vector<std::function<void()>> tasks_;
};

EpollServer::EpollServer(Options options, Handler handler)
    : options_(std::move(options)), handler_(std::move(handler)) {}

EpollServer::~EpollServer() { Stop(); }

Status EpollServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("server already started");
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal("socket(): " + std::string(std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad listen address: " + options_.host);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status status = Status::Internal("bind(" + options_.host + ":" +
                                     std::to_string(options_.port) +
                                     "): " + std::strerror(errno));
    ::close(fd);
    return status;
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  port_ = ntohs(addr.sin_port);
  if (::listen(fd, options_.backlog) < 0) {
    Status status =
        Status::Internal("listen(): " + std::string(std::strerror(errno)));
    ::close(fd);
    return status;
  }

  int shard_count = options_.shards;
  if (shard_count <= 0) {
    int hw = static_cast<int>(std::thread::hardware_concurrency());
    shard_count = std::clamp(hw / 2, 1, 8);
  }
  shards_.clear();
  shards_.reserve(shard_count);
  for (int i = 0; i < shard_count; ++i) {
    auto shard = std::make_unique<Shard>(this, i);
    Status status = shard->Init();
    if (!status.ok()) {
      shards_.clear();
      ::close(fd);
      return status;
    }
    shards_.push_back(std::move(shard));
  }
  handler_pool_ = std::make_unique<exec::ThreadPool>(
      options_.handler_threads < 1 ? 1 : options_.handler_threads);

  listen_fd_.store(fd, std::memory_order_release);
  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  for (auto& shard : shards_) shard->Run();
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void EpollServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);
  int fd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
  if (acceptor_.joinable()) acceptor_.join();
  // Drain: idle connections close now; connections with a request in
  // flight finish it (the response carries `Connection: close`). Each
  // shard's loop exits once its table is empty.
  for (auto& shard : shards_) {
    Shard* s = shard.get();
    s->Post([s] { s->BeginDrain(); });
  }
  for (auto& shard : shards_) shard->Join();
  // The handler pool dies before the shards: a peer abort (EPOLLERR)
  // can empty a shard's table — letting its loop exit — while a handler
  // task still holds the Shard pointer, so the table being empty does
  // NOT mean no completion is pending. The pool destructor drains and
  // joins those tasks; their Post() onto a joined-but-alive shard just
  // enqueues a task that never runs. Only then is it safe to destroy
  // the shards (mutex, wake fd).
  handler_pool_.reset();
  shards_.clear();
}

void EpollServer::AcceptLoop() {
  static obs::Counter* connections_metric = serve::ServeConnections();
  static obs::Counter* overload_metric = serve::ServeOverload();
  static obs::Gauge* inflight_metric = serve::ServeInflight();
  size_t next_shard = 0;
  while (!stopping_.load(std::memory_order_acquire)) {
    int listen_fd = listen_fd_.load(std::memory_order_acquire);
    if (listen_fd < 0) break;
    int fd = ::accept4(listen_fd, nullptr, nullptr, SOCK_NONBLOCK);
    if (fd < 0) {
      const int err = errno;
      // Per-connection failures: the aborted/broken connection is gone,
      // the listener is fine.
      if (err == EINTR || err == ECONNABORTED || err == EPROTO) continue;
      if (stopping_.load(std::memory_order_acquire) || err == EBADF ||
          err == EINVAL) {
        break;  // listener closed by Stop()
      }
      // Everything else — fd exhaustion (EMFILE/ENFILE) under a
      // connection wave, ENOBUFS/ENOMEM — is transient: back off briefly
      // and keep accepting instead of silently retiring the acceptor
      // while the server otherwise looks healthy. (The warn log is
      // rate-limited per event by the logger.)
      JsonValue fields = JsonValue::Object();
      fields.Set("errno", JsonValue::Int(err));
      fields.Set("error", JsonValue::Str(std::strerror(err)));
      obs::LogWarn("serve.accept_retry", fields);
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    connections_metric->Increment();
    int admitted = inflight_.fetch_add(1, std::memory_order_acq_rel);
    if (admitted >= options_.max_inflight) {
      inflight_.fetch_sub(1, std::memory_order_acq_rel);
      overload_metric->Increment();
      if (obs::AccessLogEnabled()) {
        obs::AccessLogRecord line;
        line.status = 503;
        line.shed = true;
        obs::WriteAccessLog(line);
      }
      // Best-effort single send: the fd is non-blocking and the canned
      // document is far below a fresh socket buffer, so this either
      // lands whole or the peer is already gone.
      std::string canned =
          serve::RenderResponse(serve::CannedErrorResponse(503));
      [[maybe_unused]] ssize_t n =
          ::send(fd, canned.data(), canned.size(), MSG_NOSIGNAL);
      ::close(fd);
      continue;
    }
    inflight_metric->Add(1.0);
    uint64_t id = next_conn_id_.fetch_add(1, std::memory_order_relaxed);
    Shard* shard = shards_[next_shard % shards_.size()].get();
    ++next_shard;
    shard->Post([shard, fd, id] { shard->AddConnection(fd, id); });
  }
}

void EpollServer::ReleaseConnection() {
  static obs::Gauge* inflight_metric = serve::ServeInflight();
  inflight_.fetch_sub(1, std::memory_order_acq_rel);
  inflight_metric->Add(-1.0);
}

}  // namespace net
}  // namespace prox
