#include "net/conn.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <utility>

#include "net/net_metrics.h"

namespace prox {
namespace net {

namespace {

int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Connection::Connection(int fd, uint64_t id, serve::HttpParser::Limits limits,
                       ConnectionHost* host)
    : fd_(fd), id_(id), host_(host), parser_(limits) {
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  last_activity_nanos_ = NowNanos();
}

Connection::~Connection() = default;

void Connection::OnReadable() {
  char buffer[16 * 1024];
  bool fed = false;
  while (true) {
    ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
    if (n > 0) {
      parser_.Feed(std::string_view(buffer, static_cast<size_t>(n)));
      fed = true;
      continue;
    }
    if (n == 0) {
      peer_half_closed_ = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    host_->CloseConnection(this);
    return;
  }
  if (fed) last_activity_nanos_ = NowNanos();
  if (peer_half_closed_ && !fed && idle()) {
    // Clean keep-alive close by the client between requests.
    host_->CloseConnection(this);
    return;
  }
  Pump();
}

void Connection::Pump() {
  // One request handled / one response buffered at a time — further
  // pipelined requests stay parked in the parser until the flush ends.
  if (handler_inflight_ || !out_.empty()) return;

  serve::HttpRequest request;
  serve::ParseResult result = parser_.Next(&request);
  if (result == serve::ParseResult::kRequest) {
    static obs::Counter* dispatch_metric = NetDispatch();
    dispatch_metric->Increment();
    request_wants_close_ = request.WantsClose();
    handler_inflight_ = true;
    // Pause reads while the handler runs: the socket buffer is the
    // backpressure on pipelining clients.
    UpdateInterestIfChanged(false, false);
    host_->Dispatch(this, std::move(request));
    return;
  }
  if (result == serve::ParseResult::kError) {
    QueueCanned(parser_.error_status());
    close_after_flush_ = true;
    Flush();
    return;
  }
  // kNeedMore: nothing complete buffered. A half-closed peer can never
  // finish the request; a draining server stops waiting for new ones.
  if (peer_half_closed_ || draining_ || host_->stopping()) {
    host_->CloseConnection(this);
    return;
  }
  UpdateInterestIfChanged(true, false);
}

void Connection::OnWritable() { Flush(); }

void Connection::OnPeerError() { host_->CloseConnection(this); }

void Connection::OnHandlerDone(serve::HttpResponse response) {
  handler_inflight_ = false;
  // Same close decision as the blocking worker loop — deciding it here on
  // the loop thread keeps the rendered Connection header consistent with
  // the drain state at write time.
  bool close = request_wants_close_ || response.close_connection ||
               draining_ || host_->stopping();
  response.close_connection = close;
  close_after_flush_ = close;
  out_ = serve::RenderResponse(response);
  out_offset_ = 0;
  Flush();
}

void Connection::BeginDrain() {
  draining_ = true;
  if (handler_inflight_ || !out_.empty()) return;  // closes after the flush
  if (parser_.buffered_bytes() > 0) {
    // A fully received pipelined request still completes (its response
    // will carry `Connection: close`); a partial one closes in Pump.
    Pump();
    return;
  }
  host_->CloseConnection(this);
}

void Connection::AbortWithStatus(int status) {
  QueueCanned(status);
  close_after_flush_ = true;
  Flush();
}

void Connection::Flush() {
  while (out_offset_ < out_.size()) {
    ssize_t n = ::send(fd_, out_.data() + out_offset_,
                       out_.size() - out_offset_, MSG_NOSIGNAL);
    if (n >= 0) {
      out_offset_ += static_cast<size_t>(n);
      last_activity_nanos_ = NowNanos();
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      static obs::Counter* stall_metric = NetWriteStalls();
      stall_metric->Increment();
      UpdateInterestIfChanged(false, true);
      return;
    }
    host_->CloseConnection(this);
    return;
  }
  out_.clear();
  out_offset_ = 0;
  if (close_after_flush_) {
    host_->CloseConnection(this);
    return;
  }
  Pump();  // next pipelined request, or re-arm EPOLLIN
}

void Connection::QueueCanned(int status) {
  out_ = serve::RenderResponse(serve::CannedErrorResponse(status));
  out_offset_ = 0;
}

void Connection::UpdateInterestIfChanged(bool want_read, bool want_write) {
  if (want_read == want_read_ && want_write == want_write_) return;
  want_read_ = want_read;
  want_write_ = want_write;
  host_->UpdateInterest(this, want_read, want_write);
}

}  // namespace net
}  // namespace prox
