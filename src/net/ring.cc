#include "net/ring.h"

#include <algorithm>

namespace prox {
namespace net {

uint64_t Fnv1a64(std::string_view data) {
  uint64_t hash = 14695981039346656037ull;
  for (unsigned char byte : data) {
    hash ^= byte;
    hash *= 1099511628211ull;
  }
  return hash;
}

namespace {

/// splitmix64 finalizer. FNV-1a mixes trailing-byte differences weakly
/// into the high bits, and ring placement orders by the full 64-bit
/// value — without this, "endpoint#0..63" vnode points cluster and the
/// spread collapses. The finalizer keeps determinism (pure function of
/// the FNV hash) while giving every bit full avalanche.
uint64_t Mix64(uint64_t h) {
  h += 0x9e3779b97f4a7c15ull;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
  return h ^ (h >> 31);
}

uint64_t RingHash(std::string_view data) { return Mix64(Fnv1a64(data)); }

}  // namespace

HashRing::HashRing(std::vector<std::string> endpoints, int vnodes)
    : endpoints_(std::move(endpoints)) {
  if (vnodes < 1) vnodes = 1;
  points_.reserve(endpoints_.size() * static_cast<size_t>(vnodes));
  for (uint32_t i = 0; i < endpoints_.size(); ++i) {
    for (int v = 0; v < vnodes; ++v) {
      points_.push_back(
          {RingHash(endpoints_[i] + "#" + std::to_string(v)), i});
    }
  }
  std::sort(points_.begin(), points_.end());
}

std::string HashRing::Pick(std::string_view key) const {
  std::vector<std::string> picked = PickN(key, 1);
  return picked.empty() ? std::string() : std::move(picked.front());
}

std::vector<std::string> HashRing::PickN(std::string_view key, int n) const {
  std::vector<std::string> picked;
  if (points_.empty() || n < 1) return picked;
  const uint64_t hash = RingHash(key);
  auto it = std::lower_bound(
      points_.begin(), points_.end(), hash,
      [](const Point& point, uint64_t value) { return point.hash < value; });
  const size_t start = it == points_.end()
                           ? 0
                           : static_cast<size_t>(it - points_.begin());
  const size_t want = std::min<size_t>(static_cast<size_t>(n),
                                       endpoints_.size());
  std::vector<bool> seen(endpoints_.size(), false);
  for (size_t step = 0; step < points_.size() && picked.size() < want;
       ++step) {
    const Point& point = points_[(start + step) % points_.size()];
    if (seen[point.endpoint_index]) continue;
    seen[point.endpoint_index] = true;
    picked.push_back(endpoints_[point.endpoint_index]);
  }
  return picked;
}

}  // namespace net
}  // namespace prox
