#ifndef PROX_NET_RING_H_
#define PROX_NET_RING_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace prox {
namespace net {

/// FNV-1a 64-bit — deterministic across processes and platforms, so every
/// router instance maps the same key to the same replica.
uint64_t Fnv1a64(std::string_view data);

/// \brief A consistent-hash ring over replica endpoints with virtual
/// nodes. Each endpoint is hashed `vnodes` times ("endpoint#i") onto a
/// 64-bit circle; a key maps to the first point clockwise from its hash.
///
/// Properties the balancer relies on:
///  - determinism: same endpoints + vnodes → same mapping, in every
///    router process (Fnv1a64, sorted points, index tie-break);
///  - minimal remapping: removing one of R endpoints moves only ~1/R of
///    the keyspace, so replica-local summary caches stay warm through
///    membership churn;
///  - spread: vnodes (default 64) keep the per-endpoint share within a
///    few percent of uniform.
///
/// Immutable after construction; the balancer rebuilds nothing on
/// failure — it walks PickN's successor list instead, which is exactly
/// the ring-without-the-dead-node mapping for the keys the dead node
/// owned.
class HashRing {
 public:
  explicit HashRing(std::vector<std::string> endpoints, int vnodes = 64);

  const std::vector<std::string>& endpoints() const { return endpoints_; }

  /// The endpoint owning `key` ("" when the ring is empty).
  std::string Pick(std::string_view key) const;

  /// Up to `n` distinct endpoints clockwise from the key's point — the
  /// owner first, then the successors a failure would promote, in order.
  std::vector<std::string> PickN(std::string_view key, int n) const;

 private:
  struct Point {
    uint64_t hash;
    uint32_t endpoint_index;
    bool operator<(const Point& other) const {
      // Index tie-break makes equal-hash collisions deterministic too.
      return hash != other.hash ? hash < other.hash
                                : endpoint_index < other.endpoint_index;
    }
  };

  std::vector<std::string> endpoints_;
  std::vector<Point> points_;  ///< sorted
};

}  // namespace net
}  // namespace prox

#endif  // PROX_NET_RING_H_
