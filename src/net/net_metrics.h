#ifndef PROX_NET_NET_METRICS_H_
#define PROX_NET_NET_METRICS_H_

#include <string>

#include "obs/metrics.h"

namespace prox {
namespace net {

/// \file
/// The `prox_net_*` metric families (docs/OBSERVABILITY.md). The epoll
/// transport shares the connection-level `prox_serve_*` families
/// (connections/overload/inflight/idle-reaped) with the blocking server —
/// same names, so scrape configs survive a `--transport` switch — and
/// adds the event-loop- and balancer-specific series here.

/// `prox_net_dispatch_total` — requests handed from an event-loop shard
/// to the handler worker pool.
inline obs::Counter* NetDispatch() {
  return obs::MetricsRegistry::Default().GetCounter(
      "prox_net_dispatch_total",
      "Requests dispatched from an event-loop shard to the handler pool.");
}

/// `prox_net_write_stalls_total` — sends that hit EAGAIN and parked the
/// connection on EPOLLOUT (write backpressure engaged).
inline obs::Counter* NetWriteStalls() {
  return obs::MetricsRegistry::Default().GetCounter(
      "prox_net_write_stalls_total",
      "Response writes that filled the socket buffer and waited on "
      "EPOLLOUT.");
}

/// `prox_net_request_timeouts_total` — connections closed with a canned
/// 408 because a partially received request stalled past the read budget.
inline obs::Counter* NetRequestTimeouts() {
  return obs::MetricsRegistry::Default().GetCounter(
      "prox_net_request_timeouts_total",
      "Connections 408-closed: a partial request stalled past the read "
      "timeout.");
}

/// `prox_net_balancer_forward_total{replica="host:port"}`.
inline obs::Counter* BalancerForward(const std::string& replica) {
  return obs::MetricsRegistry::Default().GetCounter(
      "prox_net_balancer_forward_total",
      "Requests forwarded to a replica, by replica endpoint.",
      "replica=\"" + replica + "\"");
}

/// `prox_net_balancer_retry_total` — idempotent GETs replayed on the next
/// ring replica after a transport failure.
inline obs::Counter* BalancerRetry() {
  return obs::MetricsRegistry::Default().GetCounter(
      "prox_net_balancer_retry_total",
      "GETs retried on the next consistent-hash replica after a forward "
      "failure.");
}

/// `prox_net_balancer_unhealthy_total` — healthy→unhealthy transitions
/// (active health probe or passive forward failure).
inline obs::Counter* BalancerUnhealthy() {
  return obs::MetricsRegistry::Default().GetCounter(
      "prox_net_balancer_unhealthy_total",
      "Replica transitions to unhealthy (probe failure or passive "
      "detection).");
}

/// `prox_net_balancer_no_backend_total` — requests answered 503 because
/// no healthy replica remained.
inline obs::Counter* BalancerNoBackend() {
  return obs::MetricsRegistry::Default().GetCounter(
      "prox_net_balancer_no_backend_total",
      "Requests shed with 503 because every replica was unhealthy.");
}

}  // namespace net
}  // namespace prox

#endif  // PROX_NET_NET_METRICS_H_
