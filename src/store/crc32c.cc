#include "store/crc32c.h"

#include "common/cpu_features.h"

#if defined(__x86_64__) || defined(_M_X64)
#include <nmmintrin.h>
#define PROX_CRC32C_X86 1
#endif

namespace prox {
namespace store {

namespace {

/// Reflected CRC-32C lookup tables (slice-by-8), built once on first use.
/// Table 0 is the classic byte-at-a-time table; tables 1..7 fold eight
/// input bytes per step so the portable path keeps up with mmap reads.
struct Crc32cTable {
  uint32_t entries[8][256];
  Crc32cTable() {
    constexpr uint32_t kPoly = 0x82F63B78u;  // 0x1EDC6F41 reflected
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      entries[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = entries[0][i];
      for (int slice = 1; slice < 8; ++slice) {
        crc = (crc >> 8) ^ entries[0][crc & 0xFF];
        entries[slice][i] = crc;
      }
    }
  }
};

uint32_t UpdateSliced(uint32_t crc, const uint8_t* bytes, size_t len) {
  static const Crc32cTable table;
  while (len >= 8) {
    const uint32_t low = crc ^ (static_cast<uint32_t>(bytes[0]) |
                                static_cast<uint32_t>(bytes[1]) << 8 |
                                static_cast<uint32_t>(bytes[2]) << 16 |
                                static_cast<uint32_t>(bytes[3]) << 24);
    crc = table.entries[7][low & 0xFF] ^ table.entries[6][(low >> 8) & 0xFF] ^
          table.entries[5][(low >> 16) & 0xFF] ^
          table.entries[4][(low >> 24) & 0xFF] ^ table.entries[3][bytes[4]] ^
          table.entries[2][bytes[5]] ^ table.entries[1][bytes[6]] ^
          table.entries[0][bytes[7]];
    bytes += 8;
    len -= 8;
  }
  for (size_t i = 0; i < len; ++i) {
    crc = (crc >> 8) ^ table.entries[0][(crc ^ bytes[i]) & 0xFF];
  }
  return crc;
}

#if PROX_CRC32C_X86
__attribute__((target("sse4.2"))) uint32_t UpdateHardware(uint32_t crc,
                                                          const uint8_t* bytes,
                                                          size_t len) {
  uint64_t crc64 = crc;
  while (len >= 8) {
    uint64_t chunk;
    __builtin_memcpy(&chunk, bytes, 8);
    crc64 = _mm_crc32_u64(crc64, chunk);
    bytes += 8;
    len -= 8;
  }
  crc = static_cast<uint32_t>(crc64);
  for (size_t i = 0; i < len; ++i) {
    crc = _mm_crc32_u8(crc, bytes[i]);
  }
  return crc;
}
#endif

}  // namespace

uint32_t Crc32c(const void* data, size_t len, uint32_t seed) {
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  uint32_t crc = ~seed;
#if PROX_CRC32C_X86
  // Routed through the shared detector so PROX_SIMD=0 exercises the sliced
  // path too; both paths produce the same checksum, this only picks speed.
  if (common::ActiveSimdTier() >= common::SimdTier::kSse42) {
    return ~UpdateHardware(crc, bytes, len);
  }
#endif
  return ~UpdateSliced(crc, bytes, len);
}

}  // namespace store
}  // namespace prox
