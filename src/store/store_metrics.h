#ifndef PROX_STORE_STORE_METRICS_H_
#define PROX_STORE_STORE_METRICS_H_

#include "obs/metrics.h"

namespace prox {
namespace store {

/// \file
/// The `prox_store_*` metric families (docs/OBSERVABILITY.md). Same shape
/// as serve_metrics.h: call sites cache the pointer in a local static.
/// `prox_store_cache_warm_hit_total` is registered in summary_cache.cc
/// (the hit is observed inside serve's SummaryCache).

/// `prox_store_bytes_written_total` — snapshot bytes written to disk.
inline obs::Counter* BytesWritten() {
  return obs::MetricsRegistry::Default().GetCounter(
      "prox_store_bytes_written_total",
      "Snapshot bytes written, headers and padding included.");
}

/// `prox_store_bytes_read_total` — snapshot bytes read/validated on load.
inline obs::Counter* BytesRead() {
  return obs::MetricsRegistry::Default().GetCounter(
      "prox_store_bytes_read_total",
      "Snapshot bytes read and CRC-validated on open.");
}

/// `prox_store_sections_validated_total` — sections that passed
/// bounds + alignment + CRC validation.
inline obs::Counter* SectionsValidated() {
  return obs::MetricsRegistry::Default().GetCounter(
      "prox_store_sections_validated_total",
      "Snapshot sections that passed bounds, alignment and CRC checks.");
}

/// `prox_store_load_mmap_total` — pool loads served zero-copy from mmap.
inline obs::Counter* LoadMmap() {
  return obs::MetricsRegistry::Default().GetCounter(
      "prox_store_load_mmap_total",
      "TermPool base tiers borrowed zero-copy from an mmap'd snapshot.");
}

/// `prox_store_load_copy_total` — pool loads that fell back to a copy.
inline obs::Counter* LoadCopy() {
  return obs::MetricsRegistry::Default().GetCounter(
      "prox_store_load_copy_total",
      "TermPool base tiers loaded by validated copy (no mmap or "
      "misaligned source).");
}

/// `prox_store_cache_warm_entries_total` — cache entries restored from a
/// snapshot into the serve SummaryCache.
inline obs::Counter* CacheWarmEntries() {
  return obs::MetricsRegistry::Default().GetCounter(
      "prox_store_cache_warm_entries_total",
      "SummaryCache entries restored from a snapshot at boot.");
}

}  // namespace store
}  // namespace prox

#endif  // PROX_STORE_STORE_METRICS_H_
