#include "store/status.h"

#include <cctype>
#include <cstdio>

namespace prox {
namespace store {

const char* ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "kOk";
    case ErrorCode::kIo: return "kIo";
    case ErrorCode::kBadMagic: return "kBadMagic";
    case ErrorCode::kBadVersion: return "kBadVersion";
    case ErrorCode::kTruncated: return "kTruncated";
    case ErrorCode::kBadDirectory: return "kBadDirectory";
    case ErrorCode::kSectionBounds: return "kSectionBounds";
    case ErrorCode::kMisaligned: return "kMisaligned";
    case ErrorCode::kChecksum: return "kChecksum";
    case ErrorCode::kMissingSection: return "kMissingSection";
    case ErrorCode::kMalformed: return "kMalformed";
    case ErrorCode::kUnsupported: return "kUnsupported";
  }
  return "kUnknown";
}

std::string SectionTagName(SectionTag tag) {
  if (tag == SectionTag::kNone) return "none";
  const uint32_t raw = static_cast<uint32_t>(tag);
  char chars[4] = {static_cast<char>(raw & 0xFF),
                   static_cast<char>((raw >> 8) & 0xFF),
                   static_cast<char>((raw >> 16) & 0xFF),
                   static_cast<char>((raw >> 24) & 0xFF)};
  bool printable = true;
  for (char c : chars) {
    if (!std::isprint(static_cast<unsigned char>(c))) printable = false;
  }
  if (printable) return std::string(chars, 4);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "0x%08X", raw);
  return buf;
}

std::string Status::ToString() const {
  if (ok()) return "store ok";
  std::string out = "store error ";
  out += ErrorCodeName(code_);
  out += " [" + SectionTagName(section_) + "]";
  if (!message_.empty()) out += ": " + message_;
  return out;
}

}  // namespace store
}  // namespace prox
