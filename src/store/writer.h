#ifndef PROX_STORE_WRITER_H_
#define PROX_STORE_WRITER_H_

#include <string>
#include <vector>

#include "store/format.h"
#include "store/status.h"

namespace prox {
namespace store {

/// \brief Assembles a PROXSNAP container: buffer section payloads, then
/// WriteFile lays them out 64-byte aligned with the CRC'd directory and
/// header (format.h). Single-use; the codec drives it (SaveDataset).
class SnapshotWriter {
 public:
  /// Queues one section. Tags must be unique per file; payloads may be
  /// empty (the section still appears in the directory).
  void AddSection(SectionTag tag, std::string payload);

  /// Writes the container to `path` atomically enough for our purposes:
  /// a temp file in the same directory, fsync'd, then rename(2) — a
  /// crashed save never leaves a half-written snapshot at `path`.
  Status WriteFile(const std::string& path) const;

  size_t num_sections() const { return sections_.size(); }

 private:
  struct PendingSection {
    SectionTag tag;
    std::string payload;
  };
  std::vector<PendingSection> sections_;
};

}  // namespace store
}  // namespace prox

#endif  // PROX_STORE_WRITER_H_
