#include "store/snapshot.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "store/crc32c.h"
#include "store/store_metrics.h"

namespace prox {
namespace store {

Status Snapshot::Open(const std::string& path,
                      std::shared_ptr<Snapshot>* out) {
  out->reset();
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::Error(ErrorCode::kIo, SectionTag::kNone,
                         "cannot open " + path + ": " + std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::Error(ErrorCode::kIo, SectionTag::kNone,
                         "cannot stat " + path + ": " + std::strerror(errno));
  }
  const uint64_t size = static_cast<uint64_t>(st.st_size);

  std::shared_ptr<Snapshot> snapshot(new Snapshot());
  snapshot->size_ = size;
  if (size > 0) {
    void* mapping = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (mapping != MAP_FAILED) {
      snapshot->base_ = static_cast<const uint8_t*>(mapping);
      snapshot->mmapped_ = true;
    } else {
      // Copy fallback: read the whole file into a heap buffer. Loads from
      // this snapshot count as copy loads (prox_store_load_copy_total).
      snapshot->owned_.resize(size);
      uint64_t off = 0;
      while (off < size) {
        const ssize_t n =
            ::pread(fd, snapshot->owned_.data() + off, size - off, off);
        if (n <= 0) {
          ::close(fd);
          return Status::Error(ErrorCode::kIo, SectionTag::kNone,
                               "cannot read " + path);
        }
        off += static_cast<uint64_t>(n);
      }
      snapshot->base_ = snapshot->owned_.data();
    }
  }
  ::close(fd);

  if (Status status = snapshot->Validate(); !status.ok()) return status;

  static obs::Counter* bytes_metric = BytesRead();
  bytes_metric->Increment(size);
  *out = std::move(snapshot);
  return Status::Ok();
}

Status Snapshot::Validate() {
  if (size_ < sizeof(FileHeader)) {
    return Status::Error(ErrorCode::kTruncated, SectionTag::kNone,
                         "file shorter than the 64-byte header (" +
                             std::to_string(size_) + " bytes)");
  }
  FileHeader header;
  std::memcpy(&header, base_, sizeof(header));
  if (std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::Error(ErrorCode::kBadMagic, SectionTag::kNone,
                         "not a PROXSNAP file");
  }
  if (Crc32c(base_, kHeaderCrcBytes) != header.header_crc32c) {
    return Status::Error(ErrorCode::kChecksum, SectionTag::kNone,
                         "header CRC mismatch");
  }
  if (header.version != kFormatVersion) {
    return Status::Error(ErrorCode::kBadVersion, SectionTag::kNone,
                         "format version " + std::to_string(header.version) +
                             ", reader supports " +
                             std::to_string(kFormatVersion));
  }
  if (header.file_size != size_) {
    return Status::Error(ErrorCode::kTruncated, SectionTag::kNone,
                         "header records " + std::to_string(header.file_size) +
                             " bytes, file has " + std::to_string(size_));
  }
  const uint64_t directory_bytes =
      static_cast<uint64_t>(header.section_count) * sizeof(SectionEntry);
  if (header.directory_offset > size_ ||
      directory_bytes > size_ - header.directory_offset) {
    return Status::Error(ErrorCode::kBadDirectory, SectionTag::kNone,
                         "directory escapes the file");
  }
  if (header.directory_offset % kSectionAlignment != 0) {
    return Status::Error(ErrorCode::kBadDirectory, SectionTag::kNone,
                         "directory offset not 64-byte aligned");
  }
  const uint8_t* directory = base_ + header.directory_offset;
  if (Crc32c(directory, directory_bytes) != header.directory_crc32c) {
    return Status::Error(ErrorCode::kBadDirectory, SectionTag::kNone,
                         "directory CRC mismatch");
  }

  static obs::Counter* validated_metric = SectionsValidated();
  sections_.reserve(header.section_count);
  for (uint32_t i = 0; i < header.section_count; ++i) {
    SectionEntry entry;
    std::memcpy(&entry, directory + i * sizeof(SectionEntry), sizeof(entry));
    const SectionTag tag = static_cast<SectionTag>(entry.tag);
    if (entry.offset % kSectionAlignment != 0) {
      return Status::Error(ErrorCode::kMisaligned, tag,
                           "section offset " + std::to_string(entry.offset) +
                               " not 64-byte aligned");
    }
    if (entry.offset > size_ || entry.length > size_ - entry.offset) {
      return Status::Error(
          ErrorCode::kSectionBounds, tag,
          "section [" + std::to_string(entry.offset) + ", +" +
              std::to_string(entry.length) + ") escapes the file");
    }
    if (Find(tag) != nullptr) {
      return Status::Error(ErrorCode::kBadDirectory, tag,
                           "duplicate section tag");
    }
    const uint8_t* data = base_ + entry.offset;
    if (Crc32c(data, entry.length) != entry.crc32c) {
      return Status::Error(ErrorCode::kChecksum, tag,
                           "payload CRC mismatch over " +
                               std::to_string(entry.length) + " bytes");
    }
    sections_.push_back(Section{tag, data, entry.length});
    validated_metric->Increment();
  }
  return Status::Ok();
}

const Snapshot::Section* Snapshot::Find(SectionTag tag) const {
  for (const Section& section : sections_) {
    if (section.tag == tag) return &section;
  }
  return nullptr;
}

Snapshot::~Snapshot() {
  if (mmapped_ && base_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(base_), size_);
  }
}

}  // namespace store
}  // namespace prox
