#include "store/writer.h"

#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "store/crc32c.h"
#include "store/store_metrics.h"

namespace prox {
namespace store {

namespace {

uint64_t AlignUp(uint64_t n) {
  return (n + kSectionAlignment - 1) & ~(kSectionAlignment - 1);
}

}  // namespace

void SnapshotWriter::AddSection(SectionTag tag, std::string payload) {
  sections_.push_back(PendingSection{tag, std::move(payload)});
}

Status SnapshotWriter::WriteFile(const std::string& path) const {
  // Lay the file out in memory first: snapshots are bounded by dataset
  // size, and one contiguous write keeps the error handling trivial.
  std::string file;
  file.resize(sizeof(FileHeader), '\0');

  std::vector<SectionEntry> directory;
  directory.reserve(sections_.size());
  for (const PendingSection& section : sections_) {
    const uint64_t offset = AlignUp(file.size());
    file.resize(offset, '\0');  // zero padding up to the aligned start
    file.append(section.payload);

    SectionEntry entry;
    entry.tag = static_cast<uint32_t>(section.tag);
    entry.offset = offset;
    entry.length = section.payload.size();
    entry.crc32c = Crc32c(section.payload.data(), section.payload.size());
    directory.push_back(entry);
  }

  const uint64_t directory_offset = AlignUp(file.size());
  file.resize(directory_offset, '\0');
  file.append(reinterpret_cast<const char*>(directory.data()),
              directory.size() * sizeof(SectionEntry));

  FileHeader header;
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.version = kFormatVersion;
  header.section_count = static_cast<uint32_t>(directory.size());
  header.directory_offset = directory_offset;
  header.file_size = file.size();
  header.directory_crc32c =
      Crc32c(file.data() + directory_offset, file.size() - directory_offset);
  header.header_crc32c = Crc32c(&header, kHeaderCrcBytes);
  std::memcpy(file.data(), &header, sizeof(header));

  // Temp-and-rename so `path` is never a torn file.
  const std::string tmp = path + ".tmp";
  std::FILE* out = std::fopen(tmp.c_str(), "wb");
  if (out == nullptr) {
    return Status::Error(ErrorCode::kIo, SectionTag::kNone,
                         "cannot open " + tmp + ": " + std::strerror(errno));
  }
  const size_t written = std::fwrite(file.data(), 1, file.size(), out);
  const int fd = fileno(out);
  const bool flushed = std::fflush(out) == 0 && fsync(fd) == 0;
  if (std::fclose(out) != 0 || written != file.size() || !flushed) {
    std::remove(tmp.c_str());
    return Status::Error(ErrorCode::kIo, SectionTag::kNone,
                         "short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Error(ErrorCode::kIo, SectionTag::kNone,
                         "cannot rename " + tmp + " to " + path + ": " +
                             std::strerror(errno));
  }

  static obs::Counter* bytes_metric = BytesWritten();
  bytes_metric->Increment(file.size());
  return Status::Ok();
}

}  // namespace store
}  // namespace prox
