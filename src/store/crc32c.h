#ifndef PROX_STORE_CRC32C_H_
#define PROX_STORE_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace prox {
namespace store {

/// CRC-32C (Castagnoli, polynomial 0x1EDC6F41 reflected) over `len` bytes,
/// software table implementation — the checksum every PROXSNAP section and
/// the header/directory carry (docs/STORE.md). `seed` chains incremental
/// computations: `Crc32c(b, n2, Crc32c(a, n1))` == CRC of a‖b.
uint32_t Crc32c(const void* data, size_t len, uint32_t seed = 0);

}  // namespace store
}  // namespace prox

#endif  // PROX_STORE_CRC32C_H_
