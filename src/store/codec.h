#ifndef PROX_STORE_CODEC_H_
#define PROX_STORE_CODEC_H_

#include <memory>
#include <string>

#include "datasets/dataset.h"
#include "engine/summary_cache.h"
#include "store/snapshot.h"
#include "store/status.h"

namespace prox {
namespace store {

struct SaveOptions {
  /// The dataset fingerprint to persist as the snapshot identity (META
  /// section). Servers pass the fingerprint their Router computed at boot
  /// — a registry dirtied by later summary annotations must not change
  /// the persisted cache keys. Empty = compute the
  /// dataset fingerprint here (the CLI save path, where the registry is clean).
  std::string fingerprint;

  /// When set, the cache's live entries are persisted as a kCache section
  /// for warm restarts (--cache-persist).
  const engine::SummaryCache* cache = nullptr;
};

/// Serializes `dataset` into a PROXSNAP file at `path`: registry, entity
/// tables, taxonomy, constraints (via RuleSpec), agg/φ/valuation config,
/// features, and the provenance expression re-interned into a fresh
/// ir::TermPool whose flat arenas become near-memcpy sections. Summary
/// annotations minted by past summarize runs are excluded — a loaded
/// snapshot boots with the same clean registry a generator produces, so
/// summary naming (and therefore response bytes) match a fresh process.
Status SaveDataset(const Dataset& dataset, const SaveOptions& options,
                   const std::string& path);

struct LoadOptions {
  /// Allow zero-copy borrowing of pool sections straight out of the mmap.
  /// Off = always copy (tests use this to exercise the fallback path).
  bool allow_mmap_borrow = true;
};

/// Reconstructs a serving-ready Dataset from a validated snapshot. The
/// provenance comes back as a prox::ir expression over a TermPool whose
/// base tier borrows the snapshot's arena/ref sections zero-copy when the
/// mapping allows (the snapshot handle is pinned by the pool), falling
/// back to a validated copy otherwise. `out->fingerprint_hint` is set
/// from the META section, so the dataset fingerprint short-circuits.
Status LoadDataset(const std::shared_ptr<Snapshot>& snapshot,
                   const LoadOptions& options, Dataset* out);

/// True when the snapshot carries persisted SummaryCache entries.
bool HasCacheSection(const Snapshot& snapshot);

/// Restores persisted cache entries into `cache` (warm-flagged, counted
/// in prox_store_cache_warm_entries_total). No-op without a kCache
/// section.
Status RestoreCache(const Snapshot& snapshot, engine::SummaryCache* cache);

}  // namespace store
}  // namespace prox

#endif  // PROX_STORE_CODEC_H_
