#include "store/codec.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <vector>

#include "ir/agg_expr.h"
#include "ir/ddp_expr.h"
#include "ir/term_pool.h"
#include "provenance/facade.h"
#include "service/fingerprint.h"
#include "store/store_metrics.h"
#include "store/writer.h"

namespace prox {
namespace store {

namespace {

// ---------------------------------------------------------------------------
// Little-endian payload encoding. Sections are opaque byte strings with
// their own CRC; these helpers keep the per-section encodings compact and
// the decoding side bounds-checked (a lying length can never read past
// the validated section span).
// ---------------------------------------------------------------------------

class ByteWriter {
 public:
  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v) { PutRaw(&v, sizeof(v)); }
  void PutU64(uint64_t v) { PutRaw(&v, sizeof(v)); }
  void PutF64(double v) { PutRaw(&v, sizeof(v)); }
  void PutString(const std::string& s) {
    PutU32(static_cast<uint32_t>(s.size()));
    buf_.append(s);
  }
  void PutRaw(const void* data, size_t len) {
    buf_.append(static_cast<const char*>(data), len);
  }

  std::string Take() { return std::move(buf_); }

 private:
  std::string buf_;
};

class ByteReader {
 public:
  ByteReader(const uint8_t* data, uint64_t size, SectionTag tag)
      : p_(data), end_(data + size), tag_(tag) {}

  bool GetU8(uint8_t* v) { return GetRaw(v, sizeof(*v)); }
  bool GetU32(uint32_t* v) { return GetRaw(v, sizeof(*v)); }
  bool GetU64(uint64_t* v) { return GetRaw(v, sizeof(*v)); }
  bool GetF64(double* v) { return GetRaw(v, sizeof(*v)); }
  bool GetString(std::string* s) {
    uint32_t len = 0;
    if (!GetU32(&len) || len > Remaining()) return Fail();
    s->assign(reinterpret_cast<const char*>(p_), len);
    p_ += len;
    return true;
  }
  bool GetRaw(void* out, size_t len) {
    if (len > Remaining()) return Fail();
    std::memcpy(out, p_, len);
    p_ += len;
    return true;
  }
  /// A raw array view inside the section (no copy); fails on overflow.
  bool GetSpan(const uint8_t** out, uint64_t elem_size, uint64_t count) {
    if (elem_size != 0 && count > Remaining() / elem_size) return Fail();
    *out = p_;
    p_ += elem_size * count;
    return true;
  }

  uint64_t Remaining() const { return static_cast<uint64_t>(end_ - p_); }
  bool failed() const { return failed_; }
  bool AtEnd() const { return p_ == end_ && !failed_; }

  Status MalformedStatus(const std::string& what) const {
    return Status::Error(ErrorCode::kMalformed, tag_, what);
  }

 private:
  bool Fail() {
    failed_ = true;
    return false;
  }

  const uint8_t* p_;
  const uint8_t* end_;
  SectionTag tag_;
  bool failed_ = false;
};

Status Missing(SectionTag tag) {
  return Status::Error(ErrorCode::kMissingSection, tag,
                       "required section absent");
}

// ---------------------------------------------------------------------------
// Save-side encoders, one per section.
// ---------------------------------------------------------------------------

Status EncodeRegistry(const AnnotationRegistry& registry, std::string* out) {
  ByteWriter w;
  w.PutU32(static_cast<uint32_t>(registry.num_domains()));
  for (size_t d = 0; d < registry.num_domains(); ++d) {
    w.PutString(registry.domain_name(static_cast<DomainId>(d)));
  }
  // Summary annotations (minted by past summarize runs on this process)
  // are not part of the dataset: a snapshot boots clean, like a
  // generator, so summary names never collide into "#k" suffixes.
  uint64_t originals = 0;
  for (size_t a = 0; a < registry.size(); ++a) {
    if (!registry.is_summary(static_cast<AnnotationId>(a))) ++originals;
  }
  // Originals must form the id prefix — loaded ids must equal saved ids
  // because every persisted structure references them.
  for (size_t a = 0; a < originals; ++a) {
    if (registry.is_summary(static_cast<AnnotationId>(a))) {
      return Status::Error(
          ErrorCode::kUnsupported, SectionTag::kRegistry,
          "summary annotations interleave the original id range");
    }
  }
  w.PutU64(originals);
  for (size_t a = 0; a < originals; ++a) {
    const AnnotationId ann = static_cast<AnnotationId>(a);
    w.PutString(registry.name(ann));
    w.PutU32(registry.domain(ann));
    w.PutU32(registry.entity_row(ann));
  }
  *out = w.Take();
  return Status::Ok();
}

void EncodeTables(const SemanticContext& ctx, std::string* out) {
  ByteWriter w;
  w.PutU32(static_cast<uint32_t>(ctx.tables.size()));
  for (const auto& [domain, table] : ctx.tables) {
    w.PutU32(domain);
    w.PutString(table.name());
    w.PutU32(static_cast<uint32_t>(table.num_attributes()));
    for (size_t a = 0; a < table.num_attributes(); ++a) {
      w.PutString(table.attribute_name(static_cast<AttrId>(a)));
    }
    // Dictionary encoding: the interned value strings once, then rows as
    // plain u32 ids — decode re-interns the (small) dictionary and copies
    // the cells without touching a hash map.
    w.PutU32(static_cast<uint32_t>(table.num_values()));
    for (size_t v = 0; v < table.num_values(); ++v) {
      w.PutString(table.value_name(static_cast<ValueId>(v)));
    }
    w.PutU64(table.num_rows());
    for (size_t r = 0; r < table.num_rows(); ++r) {
      for (size_t a = 0; a < table.num_attributes(); ++a) {
        w.PutU32(table.ValueOf(static_cast<uint32_t>(r),
                               static_cast<AttrId>(a)));
      }
    }
  }
  *out = w.Take();
}

Status EncodeTaxonomy(const SemanticContext& ctx, std::string* out) {
  ByteWriter w;
  w.PutU8(ctx.taxonomy.has_value() ? 1 : 0);
  if (ctx.taxonomy.has_value()) {
    const Taxonomy& tax = *ctx.taxonomy;
    w.PutU32(static_cast<uint32_t>(tax.size()));
    for (size_t c = 0; c < tax.size(); ++c) {
      const ConceptId id = static_cast<ConceptId>(c);
      const ConceptId parent = tax.parent(id);
      if (parent != kNoConcept && parent >= id) {
        return Status::Error(ErrorCode::kUnsupported, SectionTag::kTaxonomy,
                             "taxonomy parents are not topologically ordered");
      }
      w.PutString(tax.name(id));
      w.PutU32(parent);
    }
  }
  // concept_of in sorted order so identical datasets produce identical
  // snapshot bytes.
  std::vector<std::pair<AnnotationId, ConceptId>> concept_of(
      ctx.concept_of.begin(), ctx.concept_of.end());
  std::sort(concept_of.begin(), concept_of.end());
  w.PutU64(concept_of.size());
  for (const auto& [ann, concept_id] : concept_of) {
    w.PutU32(ann);
    w.PutU32(concept_id);
  }
  *out = w.Take();
  return Status::Ok();
}

void EncodeConstraints(const ConstraintSet& constraints, std::string* out) {
  ByteWriter w;
  w.PutU32(static_cast<uint32_t>(constraints.rules().size()));
  for (const auto& [domain, rule] : constraints.rules()) {
    const RuleSpec spec = rule->Spec();
    w.PutU32(domain);
    w.PutU32(static_cast<uint32_t>(spec.kind));
    w.PutU32(static_cast<uint32_t>(spec.attrs.size()));
    for (AttrId attr : spec.attrs) w.PutU32(attr);
    w.PutU32(spec.attr);
    w.PutF64(spec.tolerance);
    w.PutU8(spec.allow_root ? 1 : 0);
    w.PutString(spec.name_prefix);
  }
  *out = w.Take();
}

// Valuation-class / VAL-FUNC type tags persisted in the kConfig section.
enum : uint32_t {
  kVcNone = 0,
  kVcCancelSingleAnnotation = 1,
  kVcCancelSingleAttribute = 2,
  kVcExhaustive = 3,
};
enum : uint32_t {
  kVfNone = 0,
  kVfEuclidean = 1,
  kVfAbsoluteDifference = 2,
  kVfDisagreement = 3,
  kVfDdpDifference = 4,
};

Status EncodeConfig(const Dataset& dataset, std::string* out) {
  ByteWriter w;
  w.PutU32(static_cast<uint32_t>(dataset.agg));
  w.PutU32(static_cast<uint32_t>(dataset.phi.fallback));
  w.PutU32(static_cast<uint32_t>(dataset.phi.per_domain.size()));
  for (const auto& [domain, kind] : dataset.phi.per_domain) {
    w.PutU32(domain);
    w.PutU32(static_cast<uint32_t>(kind));
  }
  w.PutU32(static_cast<uint32_t>(dataset.domains.size()));
  for (const auto& [name, domain] : dataset.domains) {
    w.PutString(name);
    w.PutU32(domain);
  }

  const ValuationClass* vc = dataset.valuation_class.get();
  if (vc == nullptr) {
    w.PutU32(kVcNone);
  } else if (const auto* csann =
                 dynamic_cast<const CancelSingleAnnotation*>(vc)) {
    w.PutU32(kVcCancelSingleAnnotation);
    w.PutU32(static_cast<uint32_t>(csann->domains().size()));
    for (DomainId d : csann->domains()) w.PutU32(d);
    w.PutU8(csann->taxonomy_consistent() ? 1 : 0);
  } else if (const auto* csattr =
                 dynamic_cast<const CancelSingleAttribute*>(vc)) {
    w.PutU32(kVcCancelSingleAttribute);
    w.PutU32(static_cast<uint32_t>(csattr->domains().size()));
    for (DomainId d : csattr->domains()) w.PutU32(d);
    w.PutU32(static_cast<uint32_t>(csattr->weighting()));
  } else if (const auto* exhaustive =
                 dynamic_cast<const ExhaustiveValuations*>(vc)) {
    w.PutU32(kVcExhaustive);
    w.PutU64(exhaustive->max_annotations());
  } else {
    return Status::Error(ErrorCode::kUnsupported, SectionTag::kConfig,
                         "valuation class '" + vc->name() +
                             "' has no snapshot encoding");
  }

  const ValFunc* vf = dataset.val_func.get();
  if (vf == nullptr) {
    w.PutU32(kVfNone);
  } else if (dynamic_cast<const EuclideanValFunc*>(vf) != nullptr) {
    w.PutU32(kVfEuclidean);
  } else if (dynamic_cast<const AbsoluteDifferenceValFunc*>(vf) != nullptr) {
    w.PutU32(kVfAbsoluteDifference);
  } else if (dynamic_cast<const DisagreementValFunc*>(vf) != nullptr) {
    w.PutU32(kVfDisagreement);
  } else if (const auto* ddp = dynamic_cast<const DdpDifferenceValFunc*>(vf)) {
    w.PutU32(kVfDdpDifference);
    w.PutF64(ddp->max_error());
  } else {
    return Status::Error(ErrorCode::kUnsupported, SectionTag::kConfig,
                         "VAL-FUNC '" + vf->name() +
                             "' has no snapshot encoding");
  }
  *out = w.Take();
  return Status::Ok();
}

void EncodeFeatures(const Dataset& dataset, std::string* out) {
  ByteWriter w;
  w.PutU32(static_cast<uint32_t>(dataset.features.size()));
  for (const auto& [domain, by_ann] : dataset.features) {
    w.PutU32(domain);
    w.PutU64(by_ann.size());
    for (const auto& [ann, ratings] : by_ann) {
      w.PutU32(ann);
      w.PutU32(static_cast<uint32_t>(ratings.size()));
      for (const auto& [target, value] : ratings) {
        w.PutU32(target);
        w.PutF64(value);
      }
    }
  }
  *out = w.Take();
}

// Expression kinds persisted in the kExpression section.
enum : uint32_t { kExprNone = 0, kExprAggregate = 1, kExprDdp = 2 };

/// Re-interns the provenance into `pool` (fresh, so its owned tier is the
/// whole content) and encodes the SoA columns. Mirrors ir::Adopt — the
/// loaded expression is exactly what Adopt would have produced.
Status EncodeExpression(const Dataset& dataset, ir::TermPool* pool,
                        std::string* guards_out, std::string* expr_out) {
  ByteWriter expr;
  if (dataset.provenance == nullptr) {
    expr.PutU32(kExprNone);
  } else if (const AggregateFacade* agg = dataset.provenance->AsAggregate()) {
    expr.PutU32(kExprAggregate);
    expr.PutU32(static_cast<uint32_t>(agg->agg_kind()));
    const uint64_t n = agg->agg_num_terms();
    expr.PutU64(n);
    std::vector<ir::MonomialId> mono(n);
    std::vector<ir::GuardId> guard(n);
    std::vector<AnnotationId> group(n);
    std::vector<AggValue> value(n);
    for (uint64_t i = 0; i < n; ++i) {
      const AggTermView t = agg->agg_term(i);
      mono[i] = pool->InternMonomial(t.mono, t.mono_len);
      guard[i] = ir::kNoGuard;
      if (t.has_guard) {
        const ir::MonomialId gm =
            pool->InternMonomial(t.guard_mono, t.guard_len);
        guard[i] = pool->InternGuard(gm, t.guard_scalar, t.guard_op,
                                     t.guard_threshold);
      }
      group[i] = t.group;
      value[i] = t.value;
    }
    expr.PutRaw(mono.data(), n * sizeof(ir::MonomialId));
    expr.PutRaw(guard.data(), n * sizeof(ir::GuardId));
    expr.PutRaw(group.data(), n * sizeof(AnnotationId));
    for (uint64_t i = 0; i < n; ++i) {
      expr.PutF64(value[i].value);
      expr.PutF64(value[i].count);
    }
  } else if (const DdpFacade* ddp = dataset.provenance->AsDdp()) {
    expr.PutU32(kExprDdp);
    const uint64_t num_exec = ddp->ddp_num_executions();
    expr.PutU64(num_exec);
    for (uint64_t ex = 0; ex < num_exec; ++ex) {
      expr.PutU32(static_cast<uint32_t>(ddp->ddp_num_transitions(ex)));
    }
    for (uint64_t ex = 0; ex < num_exec; ++ex) {
      const size_t num_tr = ddp->ddp_num_transitions(ex);
      for (size_t t = 0; t < num_tr; ++t) {
        const DdpTransitionView tr = ddp->ddp_transition(ex, t);
        expr.PutU8(tr.user ? 1 : 0);
        if (tr.user) {
          expr.PutU32(tr.cost_var);
        } else {
          expr.PutU32(pool->InternMonomial(tr.db, tr.db_len));
          expr.PutU8(tr.nonzero ? 1 : 0);
        }
      }
    }
    const auto costs = ddp->ddp_costs();
    expr.PutU64(costs.size());
    for (const auto& [var, cost] : costs) {
      expr.PutU32(var);
      expr.PutF64(cost);
    }
  } else {
    return Status::Error(ErrorCode::kUnsupported, SectionTag::kExpression,
                         "provenance exposes neither aggregate nor DDP "
                         "structure");
  }
  *expr_out = expr.Take();

  // Guards are re-encoded portably (GuardRow has padding bytes, which
  // must never leak into — or be trusted from — a file).
  ByteWriter guards;
  guards.PutU32(static_cast<uint32_t>(pool->num_guards()));
  for (const ir::GuardRow& g : pool->guard_rows()) {
    guards.PutU32(g.mono);
    guards.PutF64(g.scalar);
    guards.PutU32(static_cast<uint32_t>(g.op));
    guards.PutF64(g.threshold);
  }
  *guards_out = guards.Take();
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Load-side decoders.
// ---------------------------------------------------------------------------

Status DecodeRegistry(const Snapshot::Section& section, Dataset* out) {
  ByteReader r(section.data, section.size, SectionTag::kRegistry);
  uint32_t num_domains = 0;
  if (!r.GetU32(&num_domains)) return r.MalformedStatus("domain count");
  out->registry = std::make_unique<AnnotationRegistry>();
  for (uint32_t d = 0; d < num_domains; ++d) {
    std::string name;
    if (!r.GetString(&name)) return r.MalformedStatus("domain name");
    if (out->registry->AddDomain(name) != static_cast<DomainId>(d)) {
      return r.MalformedStatus("duplicate domain name '" + name + "'");
    }
  }
  uint64_t num_entries = 0;
  if (!r.GetU64(&num_entries)) return r.MalformedStatus("entry count");
  // Cap the reservation by what the payload could possibly hold so a
  // malformed count cannot force a huge allocation before the per-entry
  // reads fail.
  out->registry->Reserve(num_domains,
                         std::min<uint64_t>(num_entries, section.size / 9));
  for (uint64_t a = 0; a < num_entries; ++a) {
    std::string name;
    uint32_t domain = 0;
    uint32_t entity_row = 0;
    if (!r.GetString(&name) || !r.GetU32(&domain) || !r.GetU32(&entity_row)) {
      return r.MalformedStatus("annotation entry " + std::to_string(a));
    }
    if (domain >= num_domains) {
      return r.MalformedStatus("annotation '" + name +
                               "' references unknown domain");
    }
    auto id = out->registry->Add(static_cast<DomainId>(domain), name,
                                 entity_row);
    if (!id.ok() || id.value() != static_cast<AnnotationId>(a)) {
      return r.MalformedStatus("annotation '" + name +
                               "' does not round-trip to a dense id");
    }
  }
  out->ctx.registry = out->registry.get();
  return Status::Ok();
}

Status DecodeTables(const Snapshot::Section& section, Dataset* out) {
  ByteReader r(section.data, section.size, SectionTag::kTables);
  uint32_t num_tables = 0;
  if (!r.GetU32(&num_tables)) return r.MalformedStatus("table count");
  for (uint32_t i = 0; i < num_tables; ++i) {
    uint32_t domain = 0;
    std::string name;
    uint32_t num_attrs = 0;
    if (!r.GetU32(&domain) || !r.GetString(&name) || !r.GetU32(&num_attrs)) {
      return r.MalformedStatus("table header");
    }
    EntityTable table(name);
    for (uint32_t a = 0; a < num_attrs; ++a) {
      std::string attr;
      if (!r.GetString(&attr)) return r.MalformedStatus("attribute name");
      table.AddAttribute(attr);
    }
    uint32_t num_values = 0;
    if (!r.GetU32(&num_values)) return r.MalformedStatus("value count");
    for (uint32_t v = 0; v < num_values; ++v) {
      std::string value;
      if (!r.GetString(&value)) return r.MalformedStatus("value name");
      if (table.InternValue(value) != static_cast<ValueId>(v)) {
        return r.MalformedStatus("duplicate value '" + value +
                                 "' in dictionary");
      }
    }
    uint64_t num_rows = 0;
    if (!r.GetU64(&num_rows)) return r.MalformedStatus("row count");
    std::vector<ValueId> row(num_attrs);
    for (uint64_t row_idx = 0; row_idx < num_rows; ++row_idx) {
      for (uint32_t a = 0; a < num_attrs; ++a) {
        if (!r.GetU32(&row[a])) return r.MalformedStatus("row value");
      }
      if (!table.AddRowIds(row).ok()) return r.MalformedStatus("row rejected");
    }
    out->ctx.tables.emplace(static_cast<DomainId>(domain), std::move(table));
  }
  return Status::Ok();
}

Status DecodeTaxonomy(const Snapshot::Section& section, Dataset* out) {
  ByteReader r(section.data, section.size, SectionTag::kTaxonomy);
  uint8_t has_taxonomy = 0;
  if (!r.GetU8(&has_taxonomy)) return r.MalformedStatus("presence flag");
  if (has_taxonomy != 0) {
    uint32_t size = 0;
    if (!r.GetU32(&size)) return r.MalformedStatus("concept count");
    Taxonomy tax;
    for (uint32_t c = 0; c < size; ++c) {
      std::string name;
      uint32_t parent = 0;
      if (!r.GetString(&name) || !r.GetU32(&parent)) {
        return r.MalformedStatus("concept " + std::to_string(c));
      }
      if (c == 0) {
        if (parent != kNoConcept) return r.MalformedStatus("root has parent");
        if (tax.AddRoot(name) != 0) return r.MalformedStatus("root id");
      } else {
        if (parent >= c) return r.MalformedStatus("forward parent reference");
        auto id = tax.AddConcept(name, static_cast<ConceptId>(parent));
        if (!id.ok() || id.value() != static_cast<ConceptId>(c)) {
          return r.MalformedStatus("concept '" + name +
                                   "' does not round-trip to a dense id");
        }
      }
    }
    out->ctx.taxonomy = std::move(tax);
  }
  uint64_t num_concept_of = 0;
  if (!r.GetU64(&num_concept_of)) return r.MalformedStatus("concept_of count");
  for (uint64_t i = 0; i < num_concept_of; ++i) {
    uint32_t ann = 0;
    uint32_t concept_id = 0;
    if (!r.GetU32(&ann) || !r.GetU32(&concept_id)) {
      return r.MalformedStatus("concept_of entry");
    }
    if (ann >= out->registry->size() ||
        (out->ctx.taxonomy.has_value() &&
         concept_id >= out->ctx.taxonomy->size())) {
      return r.MalformedStatus("concept_of references out-of-range id");
    }
    out->ctx.concept_of.emplace(static_cast<AnnotationId>(ann),
                                static_cast<ConceptId>(concept_id));
  }
  return Status::Ok();
}

Status DecodeConstraints(const Snapshot::Section& section, Dataset* out) {
  ByteReader r(section.data, section.size, SectionTag::kConstraints);
  uint32_t num_rules = 0;
  if (!r.GetU32(&num_rules)) return r.MalformedStatus("rule count");
  for (uint32_t i = 0; i < num_rules; ++i) {
    uint32_t domain = 0;
    uint32_t kind = 0;
    uint32_t num_attrs = 0;
    if (!r.GetU32(&domain) || !r.GetU32(&kind) || !r.GetU32(&num_attrs)) {
      return r.MalformedStatus("rule header");
    }
    RuleSpec spec;
    spec.kind = static_cast<RuleSpec::Kind>(kind);
    if (kind < 1 || kind > 5) {
      return r.MalformedStatus("unknown rule kind " + std::to_string(kind));
    }
    spec.attrs.resize(num_attrs);
    for (uint32_t a = 0; a < num_attrs; ++a) {
      uint32_t attr = 0;
      if (!r.GetU32(&attr)) return r.MalformedStatus("rule attr");
      spec.attrs[a] = static_cast<AttrId>(attr);
    }
    uint32_t single_attr = 0;
    uint8_t allow_root = 0;
    if (!r.GetU32(&single_attr) || !r.GetF64(&spec.tolerance) ||
        !r.GetU8(&allow_root) || !r.GetString(&spec.name_prefix)) {
      return r.MalformedStatus("rule body");
    }
    spec.attr = static_cast<AttrId>(single_attr);
    spec.allow_root = allow_root != 0;
    out->constraints.SetRule(static_cast<DomainId>(domain),
                             RuleFromSpec(spec));
  }
  return Status::Ok();
}

Status DecodeConfig(const Snapshot::Section& section, Dataset* out) {
  ByteReader r(section.data, section.size, SectionTag::kConfig);
  uint32_t agg = 0;
  uint32_t phi_fallback = 0;
  uint32_t num_phi = 0;
  if (!r.GetU32(&agg) || !r.GetU32(&phi_fallback) || !r.GetU32(&num_phi)) {
    return r.MalformedStatus("agg/phi header");
  }
  out->agg = static_cast<AggKind>(agg);
  out->phi.fallback = static_cast<PhiKind>(phi_fallback);
  for (uint32_t i = 0; i < num_phi; ++i) {
    uint32_t domain = 0;
    uint32_t kind = 0;
    if (!r.GetU32(&domain) || !r.GetU32(&kind)) {
      return r.MalformedStatus("phi entry");
    }
    out->phi.per_domain[static_cast<DomainId>(domain)] =
        static_cast<PhiKind>(kind);
  }
  uint32_t num_domains = 0;
  if (!r.GetU32(&num_domains)) return r.MalformedStatus("domain-map count");
  for (uint32_t i = 0; i < num_domains; ++i) {
    std::string name;
    uint32_t domain = 0;
    if (!r.GetString(&name) || !r.GetU32(&domain)) {
      return r.MalformedStatus("domain-map entry");
    }
    out->domains[name] = static_cast<DomainId>(domain);
  }

  uint32_t vc_kind = 0;
  if (!r.GetU32(&vc_kind)) return r.MalformedStatus("valuation-class tag");
  switch (vc_kind) {
    case kVcNone:
      break;
    case kVcCancelSingleAnnotation: {
      uint32_t n = 0;
      if (!r.GetU32(&n)) return r.MalformedStatus("valuation-class domains");
      std::vector<DomainId> domains(n);
      for (uint32_t i = 0; i < n; ++i) {
        uint32_t d = 0;
        if (!r.GetU32(&d)) return r.MalformedStatus("valuation-class domain");
        domains[i] = static_cast<DomainId>(d);
      }
      uint8_t taxonomy_consistent = 0;
      if (!r.GetU8(&taxonomy_consistent)) {
        return r.MalformedStatus("taxonomy_consistent flag");
      }
      out->valuation_class = std::make_unique<CancelSingleAnnotation>(
          std::move(domains), taxonomy_consistent != 0);
      break;
    }
    case kVcCancelSingleAttribute: {
      uint32_t n = 0;
      if (!r.GetU32(&n)) return r.MalformedStatus("valuation-class domains");
      std::vector<DomainId> domains(n);
      for (uint32_t i = 0; i < n; ++i) {
        uint32_t d = 0;
        if (!r.GetU32(&d)) return r.MalformedStatus("valuation-class domain");
        domains[i] = static_cast<DomainId>(d);
      }
      uint32_t weighting = 0;
      if (!r.GetU32(&weighting)) return r.MalformedStatus("weighting");
      out->valuation_class = std::make_unique<CancelSingleAttribute>(
          std::move(domains),
          static_cast<CancelSingleAttribute::Weighting>(weighting));
      break;
    }
    case kVcExhaustive: {
      uint64_t max_annotations = 0;
      if (!r.GetU64(&max_annotations)) {
        return r.MalformedStatus("max_annotations");
      }
      out->valuation_class =
          std::make_unique<ExhaustiveValuations>(max_annotations);
      break;
    }
    default:
      return r.MalformedStatus("unknown valuation-class tag " +
                               std::to_string(vc_kind));
  }

  uint32_t vf_kind = 0;
  if (!r.GetU32(&vf_kind)) return r.MalformedStatus("VAL-FUNC tag");
  switch (vf_kind) {
    case kVfNone:
      break;
    case kVfEuclidean:
      out->val_func = std::make_unique<EuclideanValFunc>();
      break;
    case kVfAbsoluteDifference:
      out->val_func = std::make_unique<AbsoluteDifferenceValFunc>();
      break;
    case kVfDisagreement:
      out->val_func = std::make_unique<DisagreementValFunc>();
      break;
    case kVfDdpDifference: {
      double max_error = 0.0;
      if (!r.GetF64(&max_error)) return r.MalformedStatus("max_error");
      out->val_func =
          std::make_unique<DdpDifferenceValFunc>(max_error, 1.0);
      break;
    }
    default:
      return r.MalformedStatus("unknown VAL-FUNC tag " +
                               std::to_string(vf_kind));
  }
  return Status::Ok();
}

Status DecodeFeatures(const Snapshot::Section& section, Dataset* out) {
  ByteReader r(section.data, section.size, SectionTag::kFeatures);
  uint32_t num_domains = 0;
  if (!r.GetU32(&num_domains)) return r.MalformedStatus("domain count");
  for (uint32_t d = 0; d < num_domains; ++d) {
    uint32_t domain = 0;
    uint64_t num_anns = 0;
    if (!r.GetU32(&domain) || !r.GetU64(&num_anns)) {
      return r.MalformedStatus("feature domain header");
    }
    auto& by_ann = out->features[static_cast<DomainId>(domain)];
    for (uint64_t a = 0; a < num_anns; ++a) {
      uint32_t ann = 0;
      uint32_t num_ratings = 0;
      if (!r.GetU32(&ann) || !r.GetU32(&num_ratings)) {
        return r.MalformedStatus("feature vector header");
      }
      // Encoded in map order, so end-hinted inserts are O(1) amortized
      // (and still correct if a tampered payload is unsorted).
      auto& ratings =
          by_ann
              .emplace_hint(by_ann.end(), static_cast<AnnotationId>(ann),
                            RatingVector())
              ->second;
      for (uint32_t i = 0; i < num_ratings; ++i) {
        uint32_t target = 0;
        double value = 0.0;
        if (!r.GetU32(&target) || !r.GetF64(&value)) {
          return r.MalformedStatus("feature rating");
        }
        ratings.emplace_hint(ratings.end(), static_cast<AnnotationId>(target),
                             value);
      }
    }
  }
  return Status::Ok();
}

/// Builds the TermPool from the ARNA/REFS/GRDS sections: zero-copy borrow
/// of arena + refs when the snapshot is mmapped and the spans are aligned
/// (64-byte sections make this the common case), validated copy
/// otherwise. Guard rows are always re-encoded.
Status DecodePool(const Snapshot& snapshot, const LoadOptions& options,
                  const std::shared_ptr<Snapshot>& owner,
                  std::shared_ptr<ir::TermPool>* out) {
  const Snapshot::Section* arena = snapshot.Find(SectionTag::kPoolArena);
  const Snapshot::Section* refs = snapshot.Find(SectionTag::kPoolRefs);
  const Snapshot::Section* guards = snapshot.Find(SectionTag::kPoolGuards);
  if (arena == nullptr) return Missing(SectionTag::kPoolArena);
  if (refs == nullptr) return Missing(SectionTag::kPoolRefs);
  if (guards == nullptr) return Missing(SectionTag::kPoolGuards);

  if (arena->size % sizeof(AnnotationId) != 0) {
    return Status::Error(ErrorCode::kMalformed, SectionTag::kPoolArena,
                         "arena length not a multiple of 4");
  }
  if (refs->size % sizeof(ir::MonomialRef) != 0) {
    return Status::Error(ErrorCode::kMalformed, SectionTag::kPoolRefs,
                         "ref table length not a multiple of 8");
  }
  const uint64_t arena_len = arena->size / sizeof(AnnotationId);
  const uint64_t refs_len = refs->size / sizeof(ir::MonomialRef);
  const auto* arena_data =
      reinterpret_cast<const AnnotationId*>(arena->data);
  const auto* refs_data =
      reinterpret_cast<const ir::MonomialRef*>(refs->data);
  for (uint64_t i = 0; i < refs_len; ++i) {
    const uint64_t off = refs_data[i].off;
    const uint64_t len = refs_data[i].len;
    if (off > arena_len || len > arena_len - off) {
      return Status::Error(ErrorCode::kMalformed, SectionTag::kPoolRefs,
                           "monomial ref " + std::to_string(i) +
                               " escapes the arena");
    }
  }

  auto pool = std::make_shared<ir::TermPool>();
  const bool aligned =
      reinterpret_cast<uintptr_t>(arena_data) % alignof(AnnotationId) == 0 &&
      reinterpret_cast<uintptr_t>(refs_data) % alignof(ir::MonomialRef) == 0;
  if (options.allow_mmap_borrow && snapshot.mmapped() && aligned) {
    // The pool pins the whole Snapshot; mmap pages never move, so spans
    // stay valid while the owned tier grows (term_pool.h).
    pool->BorrowBase(arena_data, arena_len, refs_data, refs_len, owner);
    static obs::Counter* mmap_metric = LoadMmap();
    mmap_metric->Increment();
  } else {
    pool->LoadBase(arena_data, arena_len, refs_data, refs_len);
    static obs::Counter* copy_metric = LoadCopy();
    copy_metric->Increment();
  }

  ByteReader r(guards->data, guards->size, SectionTag::kPoolGuards);
  uint32_t num_guards = 0;
  if (!r.GetU32(&num_guards)) return r.MalformedStatus("guard count");
  std::vector<ir::GuardRow> rows(num_guards);
  for (uint32_t i = 0; i < num_guards; ++i) {
    uint32_t op = 0;
    if (!r.GetU32(&rows[i].mono) || !r.GetF64(&rows[i].scalar) ||
        !r.GetU32(&op) || !r.GetF64(&rows[i].threshold)) {
      return r.MalformedStatus("guard row " + std::to_string(i));
    }
    rows[i].op = static_cast<CompareOp>(op);
    if (rows[i].mono >= pool->num_monomials()) {
      return r.MalformedStatus("guard row " + std::to_string(i) +
                               " references unknown monomial");
    }
  }
  pool->LoadGuards(rows.data(), rows.size());
  *out = std::move(pool);
  return Status::Ok();
}

Status DecodeExpression(const Snapshot& snapshot,
                        const std::shared_ptr<ir::TermPool>& pool,
                        Dataset* out) {
  const Snapshot::Section* section = snapshot.Find(SectionTag::kExpression);
  if (section == nullptr) return Missing(SectionTag::kExpression);
  ByteReader r(section->data, section->size, SectionTag::kExpression);
  uint32_t kind = 0;
  if (!r.GetU32(&kind)) return r.MalformedStatus("expression kind");
  const uint64_t num_monomials = pool->num_monomials();
  const uint64_t num_guards = pool->num_guards();
  if (kind == kExprNone) {
    out->provenance = nullptr;
    return Status::Ok();
  }
  if (kind == kExprAggregate) {
    uint32_t agg_kind = 0;
    uint64_t n = 0;
    if (!r.GetU32(&agg_kind) || !r.GetU64(&n)) {
      return r.MalformedStatus("aggregate header");
    }
    const uint8_t* mono_bytes = nullptr;
    const uint8_t* guard_bytes = nullptr;
    const uint8_t* group_bytes = nullptr;
    if (!r.GetSpan(&mono_bytes, sizeof(ir::MonomialId), n) ||
        !r.GetSpan(&guard_bytes, sizeof(ir::GuardId), n) ||
        !r.GetSpan(&group_bytes, sizeof(AnnotationId), n)) {
      return r.MalformedStatus("aggregate columns truncated");
    }
    auto expr = std::make_unique<ir::IrAggregateExpression>(
        static_cast<AggKind>(agg_kind), pool);
    for (uint64_t i = 0; i < n; ++i) {
      ir::MonomialId mono;
      ir::GuardId guard;
      AnnotationId group;
      std::memcpy(&mono, mono_bytes + i * sizeof(mono), sizeof(mono));
      std::memcpy(&guard, guard_bytes + i * sizeof(guard), sizeof(guard));
      std::memcpy(&group, group_bytes + i * sizeof(group), sizeof(group));
      AggValue value;
      if (!r.GetF64(&value.value) || !r.GetF64(&value.count)) {
        return r.MalformedStatus("aggregate value column truncated");
      }
      if (mono >= num_monomials ||
          (guard != ir::kNoGuard && guard >= num_guards) ||
          group >= out->registry->size()) {
        return r.MalformedStatus("aggregate term " + std::to_string(i) +
                                 " references out-of-range ids");
      }
      expr->AddTermIds(mono, guard, group, value);
    }
    // Rows were saved out of a canonical expression, so the verify-only
    // fast path applies; a shuffled payload falls back to the full sort.
    expr->CanonicalizeSorted();
    out->provenance = std::move(expr);
    return Status::Ok();
  }
  if (kind == kExprDdp) {
    uint64_t num_exec = 0;
    if (!r.GetU64(&num_exec)) return r.MalformedStatus("ddp header");
    std::vector<uint32_t> counts(num_exec);
    for (uint64_t ex = 0; ex < num_exec; ++ex) {
      if (!r.GetU32(&counts[ex])) return r.MalformedStatus("transition count");
    }
    auto expr = std::make_unique<ir::IrDdpExpression>(pool);
    for (uint64_t ex = 0; ex < num_exec; ++ex) {
      expr->BeginExecution();
      for (uint32_t t = 0; t < counts[ex]; ++t) {
        uint8_t user = 0;
        if (!r.GetU8(&user)) return r.MalformedStatus("transition flag");
        if (user != 0) {
          uint32_t cost_var = 0;
          if (!r.GetU32(&cost_var)) return r.MalformedStatus("cost var");
          if (cost_var >= out->registry->size()) {
            return r.MalformedStatus("user transition references unknown "
                                     "annotation");
          }
          expr->AddUserTransition(static_cast<AnnotationId>(cost_var));
        } else {
          uint32_t db = 0;
          uint8_t nonzero = 0;
          if (!r.GetU32(&db) || !r.GetU8(&nonzero)) {
            return r.MalformedStatus("db transition");
          }
          if (db >= num_monomials) {
            return r.MalformedStatus("db transition references unknown "
                                     "monomial");
          }
          expr->AddDbTransition(static_cast<ir::MonomialId>(db), nonzero != 0);
        }
      }
    }
    uint64_t num_costs = 0;
    if (!r.GetU64(&num_costs)) return r.MalformedStatus("cost count");
    for (uint64_t i = 0; i < num_costs; ++i) {
      uint32_t var = 0;
      double cost = 0.0;
      if (!r.GetU32(&var) || !r.GetF64(&cost)) {
        return r.MalformedStatus("cost entry");
      }
      expr->SetCost(static_cast<AnnotationId>(var), cost);
    }
    expr->Canonicalize();
    out->provenance = std::move(expr);
    return Status::Ok();
  }
  return r.MalformedStatus("unknown expression kind " + std::to_string(kind));
}

}  // namespace

Status SaveDataset(const Dataset& dataset, const SaveOptions& options,
                   const std::string& path) {
  if (dataset.registry == nullptr) {
    return Status::Error(ErrorCode::kUnsupported, SectionTag::kRegistry,
                         "dataset has no registry");
  }
  SnapshotWriter writer;

  // META: the snapshot's identity — the fingerprint the serving layer
  // keys caches on. Explicit from the caller (router boot fingerprint) or
  // recomputed here on a clean registry; both agree for clean datasets.
  {
    ByteWriter w;
    w.PutString(options.fingerprint.empty()
                    ? ComputeDatasetFingerprint(dataset)
                    : options.fingerprint);
    writer.AddSection(SectionTag::kMeta, w.Take());
  }

  std::string registry_payload;
  if (Status s = EncodeRegistry(*dataset.registry, &registry_payload);
      !s.ok()) {
    return s;
  }
  writer.AddSection(SectionTag::kRegistry, std::move(registry_payload));

  std::string tables_payload;
  EncodeTables(dataset.ctx, &tables_payload);
  writer.AddSection(SectionTag::kTables, std::move(tables_payload));

  std::string taxonomy_payload;
  if (Status s = EncodeTaxonomy(dataset.ctx, &taxonomy_payload); !s.ok()) {
    return s;
  }
  writer.AddSection(SectionTag::kTaxonomy, std::move(taxonomy_payload));

  std::string constraints_payload;
  EncodeConstraints(dataset.constraints, &constraints_payload);
  writer.AddSection(SectionTag::kConstraints, std::move(constraints_payload));

  std::string config_payload;
  if (Status s = EncodeConfig(dataset, &config_payload); !s.ok()) return s;
  writer.AddSection(SectionTag::kConfig, std::move(config_payload));

  std::string features_payload;
  EncodeFeatures(dataset, &features_payload);
  writer.AddSection(SectionTag::kFeatures, std::move(features_payload));

  ir::TermPool pool;
  std::string guards_payload;
  std::string expr_payload;
  if (Status s =
          EncodeExpression(dataset, &pool, &guards_payload, &expr_payload);
      !s.ok()) {
    return s;
  }
  // The fresh pool has no base tier, so the owned vectors are the whole
  // content — written raw, loaded back as the base tier (near-memcpy).
  writer.AddSection(
      SectionTag::kPoolArena,
      std::string(reinterpret_cast<const char*>(pool.owned_arena().data()),
                  pool.owned_arena().size() * sizeof(AnnotationId)));
  writer.AddSection(
      SectionTag::kPoolRefs,
      std::string(reinterpret_cast<const char*>(pool.owned_refs().data()),
                  pool.owned_refs().size() * sizeof(ir::MonomialRef)));
  writer.AddSection(SectionTag::kPoolGuards, std::move(guards_payload));
  writer.AddSection(SectionTag::kExpression, std::move(expr_payload));

  if (options.cache != nullptr) {
    ByteWriter w;
    const auto entries = options.cache->Dump();
    w.PutU32(static_cast<uint32_t>(entries.size()));
    for (const auto& entry : entries) {
      w.PutString(entry.key);
      w.PutString(*entry.value);
    }
    writer.AddSection(SectionTag::kCache, w.Take());
  }

  return writer.WriteFile(path);
}

Status LoadDataset(const std::shared_ptr<Snapshot>& snapshot,
                   const LoadOptions& options, Dataset* out) {
  *out = Dataset();

  const Snapshot::Section* meta = snapshot->Find(SectionTag::kMeta);
  if (meta == nullptr) return Missing(SectionTag::kMeta);
  {
    ByteReader r(meta->data, meta->size, SectionTag::kMeta);
    if (!r.GetString(&out->fingerprint_hint)) {
      return r.MalformedStatus("fingerprint");
    }
  }

  const Snapshot::Section* registry = snapshot->Find(SectionTag::kRegistry);
  if (registry == nullptr) return Missing(SectionTag::kRegistry);
  if (Status s = DecodeRegistry(*registry, out); !s.ok()) return s;

  if (const auto* tables = snapshot->Find(SectionTag::kTables)) {
    if (Status s = DecodeTables(*tables, out); !s.ok()) return s;
  }
  if (const auto* taxonomy = snapshot->Find(SectionTag::kTaxonomy)) {
    if (Status s = DecodeTaxonomy(*taxonomy, out); !s.ok()) return s;
  }
  if (const auto* constraints = snapshot->Find(SectionTag::kConstraints)) {
    if (Status s = DecodeConstraints(*constraints, out); !s.ok()) return s;
  }
  const Snapshot::Section* config = snapshot->Find(SectionTag::kConfig);
  if (config == nullptr) return Missing(SectionTag::kConfig);
  if (Status s = DecodeConfig(*config, out); !s.ok()) return s;
  if (const auto* features = snapshot->Find(SectionTag::kFeatures)) {
    if (Status s = DecodeFeatures(*features, out); !s.ok()) return s;
  }

  std::shared_ptr<ir::TermPool> pool;
  if (Status s = DecodePool(*snapshot, options, snapshot, &pool); !s.ok()) {
    return s;
  }
 
  if (Status s = DecodeExpression(*snapshot, pool, out); !s.ok()) return s;
 
  return Status::Ok();
}

bool HasCacheSection(const Snapshot& snapshot) {
  return snapshot.Find(SectionTag::kCache) != nullptr;
}

Status RestoreCache(const Snapshot& snapshot, engine::SummaryCache* cache) {
  const Snapshot::Section* section = snapshot.Find(SectionTag::kCache);
  if (section == nullptr) return Status::Ok();
  ByteReader r(section->data, section->size, SectionTag::kCache);
  uint32_t count = 0;
  if (!r.GetU32(&count)) return r.MalformedStatus("entry count");
  static obs::Counter* warm_metric = CacheWarmEntries();
  for (uint32_t i = 0; i < count; ++i) {
    std::string key;
    auto body = std::make_shared<std::string>();
    if (!r.GetString(&key) || !r.GetString(body.get())) {
      return r.MalformedStatus("cache entry " + std::to_string(i));
    }
    cache->Put(key, std::shared_ptr<const std::string>(std::move(body)),
               /*warm=*/true);
    warm_metric->Increment();
  }
  return Status::Ok();
}

}  // namespace store
}  // namespace prox
