#ifndef PROX_STORE_SNAPSHOT_H_
#define PROX_STORE_SNAPSHOT_H_

#include <memory>
#include <string>
#include <vector>

#include "store/format.h"
#include "store/status.h"

namespace prox {
namespace store {

/// \brief A validated, read-only view of one PROXSNAP file.
///
/// Open() maps the file read-only (falling back to a plain read into a
/// heap buffer when mmap is unavailable) and validates header, directory
/// and every section's bounds, alignment and CRC32C *before* returning —
/// a Snapshot you hold is fully checked, so section spans can be consumed
/// without further defensive copies. A failure at any stage returns a
/// typed Status naming the offending section and yields no Snapshot.
///
/// The handle is shared: TermPool base tiers borrowed zero-copy out of
/// the mapping pin the Snapshot via shared_ptr (term_pool.h BorrowBase),
/// keeping the pages alive for as long as any loaded dataset reads them.
class Snapshot {
 public:
  struct Section {
    SectionTag tag = SectionTag::kNone;
    const uint8_t* data = nullptr;
    uint64_t size = 0;
  };

  /// Opens and fully validates `path`. On success `*out` owns the mapping.
  static Status Open(const std::string& path, std::shared_ptr<Snapshot>* out);

  ~Snapshot();

  Snapshot(const Snapshot&) = delete;
  Snapshot& operator=(const Snapshot&) = delete;

  /// The section with `tag`, or nullptr when the snapshot has none.
  const Section* Find(SectionTag tag) const;

  /// True when the file is memory-mapped (spans alias the page cache);
  /// false when it was read into a heap buffer.
  bool mmapped() const { return mmapped_; }

  uint64_t file_size() const { return size_; }
  size_t num_sections() const { return sections_.size(); }
  const std::vector<Section>& sections() const { return sections_; }

 private:
  Snapshot() = default;

  Status Validate();

  const uint8_t* base_ = nullptr;
  uint64_t size_ = 0;
  bool mmapped_ = false;
  std::vector<uint8_t> owned_;  // copy-mode backing store
  std::vector<Section> sections_;
};

}  // namespace store
}  // namespace prox

#endif  // PROX_STORE_SNAPSHOT_H_
