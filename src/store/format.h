#ifndef PROX_STORE_FORMAT_H_
#define PROX_STORE_FORMAT_H_

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>

namespace prox {
namespace store {

/// \file
/// The PROXSNAP container format (docs/STORE.md gives the full layout):
///
///   [FileHeader 64B][section 0 …pad][section 1 …pad]…[directory]
///
/// All integers are little-endian; every section starts on a 64-byte
/// boundary (zero-padded), so an mmap of the file hands out pointers whose
/// alignment any flat payload (u32 annotation arenas, (u32,u32) monomial
/// refs) can be read through directly. The directory — one SectionEntry
/// per section — sits at `directory_offset` and is covered by its own
/// CRC32C in the header; each section carries a CRC32C of its payload
/// bytes (padding excluded). Readers validate header → directory → every
/// section before handing out any span, so a truncated or bit-flipped
/// file fails closed with a typed store::Status naming the section.

// PROXSNAP is little-endian on disk and in these memory-mapped structs.
static_assert(std::endian::native == std::endian::little,
              "prox::store assumes a little-endian host");

inline constexpr char kMagic[8] = {'P', 'R', 'O', 'X', 'S', 'N', 'A', 'P'};

/// Bump on any incompatible layout or section-encoding change; readers
/// reject other versions (kBadVersion) rather than guessing.
inline constexpr uint32_t kFormatVersion = 1;

/// Sections start on this boundary, zero-padded. 64 covers every payload
/// alignment we borrow in place and matches a cache line.
inline constexpr uint64_t kSectionAlignment = 64;

constexpr uint32_t FourCc(char a, char b, char c, char d) {
  return static_cast<uint32_t>(static_cast<unsigned char>(a)) |
         static_cast<uint32_t>(static_cast<unsigned char>(b)) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(c)) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(d)) << 24;
}

/// Section identities. Values are four-character codes so a hex dump of a
/// snapshot's directory is self-describing.
enum class SectionTag : uint32_t {
  kNone = 0,                              ///< "no section" (header errors)
  kMeta = FourCc('M', 'E', 'T', 'A'),         ///< fingerprint + counts
  kRegistry = FourCc('R', 'E', 'G', 'Y'),     ///< AnnotationRegistry
  kTables = FourCc('T', 'A', 'B', 'L'),       ///< entity tables
  kTaxonomy = FourCc('T', 'A', 'X', 'O'),     ///< taxonomy + concept_of
  kConstraints = FourCc('R', 'U', 'L', 'E'),  ///< per-domain RuleSpecs
  kConfig = FourCc('C', 'O', 'N', 'F'),       ///< agg/phi/valuations/domains
  kFeatures = FourCc('F', 'E', 'A', 'T'),     ///< clustering features
  kPoolArena = FourCc('A', 'R', 'N', 'A'),    ///< raw AnnotationId arena
  kPoolRefs = FourCc('R', 'E', 'F', 'S'),     ///< raw MonomialRef table
  kPoolGuards = FourCc('G', 'R', 'D', 'S'),   ///< guard rows (re-encoded)
  kExpression = FourCc('E', 'X', 'P', 'R'),   ///< SoA expression columns
  kCache = FourCc('C', 'A', 'C', 'H'),        ///< SummaryCache entries
};

/// The four tag characters ("META"), or a hex rendering for unknown tags.
std::string SectionTagName(SectionTag tag);

/// First 64 bytes of every snapshot. `header_crc32c` covers the fields
/// before it (offset 0..36); `directory_crc32c` covers the directory
/// bytes at `directory_offset`.
struct FileHeader {
  char magic[8];                 // kMagic
  uint32_t version = 0;          // kFormatVersion
  uint32_t section_count = 0;
  uint64_t directory_offset = 0;
  uint64_t file_size = 0;        // total bytes, rejects silent truncation
  uint32_t directory_crc32c = 0;
  uint32_t header_crc32c = 0;
  uint8_t reserved[24] = {};
};
static_assert(sizeof(FileHeader) == 64, "PROXSNAP header is 64 bytes");
/// Bytes of FileHeader covered by header_crc32c (everything before it).
inline constexpr size_t kHeaderCrcBytes = 36;

/// One directory row. `offset` is from file start, 64-byte aligned;
/// `length` is the payload length (padding excluded); `crc32c` covers
/// exactly those payload bytes.
struct SectionEntry {
  uint32_t tag = 0;
  uint32_t crc32c = 0;
  uint64_t offset = 0;
  uint64_t length = 0;
  uint8_t reserved[8] = {};
};
static_assert(sizeof(SectionEntry) == 32, "PROXSNAP directory row is 32 bytes");

}  // namespace store
}  // namespace prox

#endif  // PROX_STORE_FORMAT_H_
