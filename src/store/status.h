#ifndef PROX_STORE_STATUS_H_
#define PROX_STORE_STATUS_H_

#include <string>

#include "store/format.h"

namespace prox {
namespace store {

/// What went wrong with a snapshot operation. Every failure mode a
/// corrupt, truncated or hostile file can trigger has its own code, so
/// tests (and operators) can tell a flipped bit (kChecksum) from a short
/// write (kTruncated) from a directory that lies (kSectionBounds).
enum class ErrorCode {
  kOk = 0,
  kIo,              ///< open/read/write/mmap syscall failure
  kBadMagic,        ///< not a PROXSNAP file
  kBadVersion,      ///< produced by an incompatible format version
  kTruncated,       ///< file shorter than its own accounting
  kBadDirectory,    ///< directory out of bounds / bad CRC / duplicate tags
  kSectionBounds,   ///< section range escapes the file
  kMisaligned,      ///< section offset breaks the 64-byte alignment rule
  kChecksum,        ///< section payload CRC32C mismatch
  kMissingSection,  ///< a required section is absent
  kMalformed,       ///< section payload fails structural validation
  kUnsupported,     ///< content the codec cannot (de)serialize
};

const char* ErrorCodeName(ErrorCode code);

/// \brief Typed result of prox::store operations: an ErrorCode plus the
/// section the failure was detected in (kNone for file-level failures)
/// and a human-readable message. Never throws, never aborts — a corrupt
/// snapshot must fail closed with a diagnostic, not UB (docs/STORE.md).
class [[nodiscard]] Status {
 public:
  Status() = default;  // ok

  static Status Ok() { return Status(); }
  static Status Error(ErrorCode code, SectionTag section,
                      std::string message) {
    Status s;
    s.code_ = code;
    s.section_ = section;
    s.message_ = std::move(message);
    return s;
  }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  SectionTag section() const { return section_; }
  const std::string& message() const { return message_; }

  /// "store error kChecksum [REGY]: payload CRC mismatch ...".
  std::string ToString() const;

 private:
  ErrorCode code_ = ErrorCode::kOk;
  SectionTag section_ = SectionTag::kNone;
  std::string message_;
};

}  // namespace store
}  // namespace prox

#endif  // PROX_STORE_STATUS_H_
