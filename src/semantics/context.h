#ifndef PROX_SEMANTICS_CONTEXT_H_
#define PROX_SEMANTICS_CONTEXT_H_

#include <map>
#include <optional>
#include <unordered_map>

#include "provenance/annotation.h"
#include "semantics/entity_table.h"
#include "semantics/taxonomy.h"

namespace prox {

/// \brief The semantics of the underlying data: for each annotation domain
/// the entity table holding its attribute tuples, plus (for Wikipedia-style
/// data) the concept taxonomy and the concept each annotation denotes.
///
/// Constraints, valuation classes, candidate generation and summary naming
/// all consult this context; the provenance expressions themselves stay
/// purely syntactic.
struct SemanticContext {
  const AnnotationRegistry* registry = nullptr;

  /// Attribute tables, keyed by annotation domain.
  std::map<DomainId, EntityTable> tables;

  /// Concept taxonomy (empty for MovieLens / DDP).
  std::optional<Taxonomy> taxonomy;

  /// Concept denoted by a (leaf) annotation, where applicable
  /// (Wikipedia pages map to their most specific WordNet concept).
  std::unordered_map<AnnotationId, ConceptId> concept_of;

  /// Table for `domain`, or nullptr when the domain carries no attributes.
  const EntityTable* TableFor(DomainId domain) const {
    auto it = tables.find(domain);
    return it == tables.end() ? nullptr : &it->second;
  }

  /// Value of attribute `attr` for annotation `a`, or kNoValue when the
  /// annotation has no entity row / table.
  ValueId AttrValueOf(AnnotationId a, AttrId attr) const {
    const EntityTable* table = TableFor(registry->domain(a));
    if (table == nullptr) return kNoValue;
    uint32_t row = registry->entity_row(a);
    if (row == kNoEntity) return kNoValue;
    return table->ValueOf(row, attr);
  }

  /// Concept of annotation `a`, or kNoConcept.
  ConceptId ConceptOf(AnnotationId a) const {
    auto it = concept_of.find(a);
    return it == concept_of.end() ? kNoConcept : it->second;
  }
};

}  // namespace prox

#endif  // PROX_SEMANTICS_CONTEXT_H_
