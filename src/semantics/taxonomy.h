#ifndef PROX_SEMANTICS_TAXONOMY_H_
#define PROX_SEMANTICS_TAXONOMY_H_

#include <cstdint>
#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"

namespace prox {

/// Identifier of a taxonomy concept.
using ConceptId = uint32_t;

inline constexpr ConceptId kNoConcept = std::numeric_limits<ConceptId>::max();

/// \brief A concept hierarchy in the style of the YAGO `rdfs:subClassOf`
/// taxonomy used for the Wikipedia dataset (Section 5.1).
///
/// Concepts form a rooted tree (YAGO's class backbone); depths are counted
/// with the root at depth 1, matching the convention of Wu & Palmer [29].
/// The taxonomy constrains mappings (grouped annotations must share an
/// ancestor), names summary annotations (the LCA), and breaks score ties
/// (smaller Wu-Palmer distance preferred).
class Taxonomy {
 public:
  Taxonomy() = default;

  /// Adds the root concept. Must be the first concept added.
  ConceptId AddRoot(const std::string& name);

  /// Adds a concept under `parent`.
  Result<ConceptId> AddConcept(const std::string& name, ConceptId parent);

  Result<ConceptId> Find(const std::string& name) const;

  const std::string& name(ConceptId c) const { return names_[c]; }
  ConceptId parent(ConceptId c) const { return parents_[c]; }
  /// Depth with root = 1.
  int depth(ConceptId c) const { return depths_[c]; }
  size_t size() const { return names_.size(); }

  /// Lowest common ancestor (always defined in a rooted tree).
  ConceptId Lca(ConceptId a, ConceptId b) const;

  /// True when `ancestor` lies on the root path of `descendant`
  /// (a concept is its own ancestor).
  bool IsAncestor(ConceptId ancestor, ConceptId descendant) const;

  /// All concepts in the subtree rooted at `c`, including `c`.
  std::vector<ConceptId> Subtree(ConceptId c) const;

  /// Direct children of `c`.
  const std::vector<ConceptId>& children(ConceptId c) const {
    return children_[c];
  }

  /// Wu-Palmer semantic relatedness [29]:
  ///   sim(a, b) = 2·depth(lca) / (depth(a) + depth(b)) ∈ (0, 1].
  double WuPalmerSimilarity(ConceptId a, ConceptId b) const;

  /// 1 − similarity, the taxonomy distance used for tie-breaking.
  double WuPalmerDistance(ConceptId a, ConceptId b) const {
    return 1.0 - WuPalmerSimilarity(a, b);
  }

 private:
  std::vector<std::string> names_;
  std::vector<ConceptId> parents_;
  std::vector<int> depths_;
  std::vector<std::vector<ConceptId>> children_;
  std::unordered_map<std::string, ConceptId> by_name_;
};

}  // namespace prox

#endif  // PROX_SEMANTICS_TAXONOMY_H_
