#ifndef PROX_SEMANTICS_ENTITY_TABLE_H_
#define PROX_SEMANTICS_ENTITY_TABLE_H_

#include <cstdint>
#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "provenance/annotation.h"

namespace prox {

/// Index of an attribute column within an EntityTable.
using AttrId = uint16_t;

/// Interned attribute value.
using ValueId = uint32_t;

inline constexpr ValueId kNoValue = std::numeric_limits<ValueId>::max();

/// \brief The attribute tuples behind one annotation domain — the "input
/// table" of Section 3.2's semantic constraints (the Users table with
/// gender / age range / occupation / zip code, the Movies table with genre
/// and year, ...).
///
/// Values are interned strings so constraint checks compare integers.
/// Annotations link to rows via AnnotationRegistry::entity_row.
class EntityTable {
 public:
  EntityTable() = default;
  explicit EntityTable(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Declares an attribute column. Must be called before AddRow.
  AttrId AddAttribute(const std::string& attr_name);

  Result<AttrId> FindAttribute(const std::string& attr_name) const;
  const std::string& attribute_name(AttrId a) const { return attr_names_[a]; }
  size_t num_attributes() const { return attr_names_.size(); }

  /// Interns `value` (idempotent).
  ValueId InternValue(const std::string& value);
  const std::string& value_name(ValueId v) const { return value_names_[v]; }
  size_t num_values() const { return value_names_.size(); }

  /// Appends a row given one value string per declared attribute.
  Result<uint32_t> AddRow(const std::vector<std::string>& values);

  /// Appends a row of already-interned value ids (snapshot load: the value
  /// dictionary is restored once, then rows are plain integers). Every id
  /// must come from InternValue on this table.
  Result<uint32_t> AddRowIds(const std::vector<ValueId>& values);

  size_t num_rows() const { return rows_.size(); }

  /// Value of `attr` in `row`.
  ValueId ValueOf(uint32_t row, AttrId attr) const {
    return rows_[row][attr];
  }

  /// Human-readable value of `attr` in `row`.
  const std::string& ValueNameOf(uint32_t row, AttrId attr) const {
    return value_names_[rows_[row][attr]];
  }

 private:
  std::string name_;
  std::vector<std::string> attr_names_;
  std::unordered_map<std::string, AttrId> attr_by_name_;
  std::vector<std::string> value_names_;
  std::unordered_map<std::string, ValueId> value_by_name_;
  std::vector<std::vector<ValueId>> rows_;
};

}  // namespace prox

#endif  // PROX_SEMANTICS_ENTITY_TABLE_H_
