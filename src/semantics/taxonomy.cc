#include "semantics/taxonomy.h"

namespace prox {

ConceptId Taxonomy::AddRoot(const std::string& name) {
  names_.push_back(name);
  parents_.push_back(kNoConcept);
  depths_.push_back(1);
  children_.emplace_back();
  by_name_.emplace(name, 0);
  return 0;
}

Result<ConceptId> Taxonomy::AddConcept(const std::string& name,
                                       ConceptId parent) {
  if (parent >= names_.size()) {
    return Status::InvalidArgument("parent concept out of range");
  }
  if (by_name_.count(name) > 0) {
    return Status::AlreadyExists("concept already exists: " + name);
  }
  ConceptId id = static_cast<ConceptId>(names_.size());
  names_.push_back(name);
  parents_.push_back(parent);
  depths_.push_back(depths_[parent] + 1);
  children_.emplace_back();
  children_[parent].push_back(id);
  by_name_.emplace(name, id);
  return id;
}

Result<ConceptId> Taxonomy::Find(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound("unknown concept: " + name);
  }
  return it->second;
}

ConceptId Taxonomy::Lca(ConceptId a, ConceptId b) const {
  while (a != b) {
    if (depths_[a] > depths_[b]) {
      a = parents_[a];
    } else if (depths_[b] > depths_[a]) {
      b = parents_[b];
    } else {
      a = parents_[a];
      b = parents_[b];
    }
  }
  return a;
}

bool Taxonomy::IsAncestor(ConceptId ancestor, ConceptId descendant) const {
  ConceptId c = descendant;
  while (c != kNoConcept) {
    if (c == ancestor) return true;
    c = parents_[c];
  }
  return false;
}

std::vector<ConceptId> Taxonomy::Subtree(ConceptId c) const {
  std::vector<ConceptId> out;
  std::vector<ConceptId> stack = {c};
  while (!stack.empty()) {
    ConceptId cur = stack.back();
    stack.pop_back();
    out.push_back(cur);
    for (ConceptId child : children_[cur]) stack.push_back(child);
  }
  return out;
}

double Taxonomy::WuPalmerSimilarity(ConceptId a, ConceptId b) const {
  ConceptId lca = Lca(a, b);
  return 2.0 * depths_[lca] /
         static_cast<double>(depths_[a] + depths_[b]);
}

}  // namespace prox
