#ifndef PROX_SEMANTICS_CONSTRAINTS_H_
#define PROX_SEMANTICS_CONSTRAINTS_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "provenance/annotation.h"
#include "semantics/context.h"

namespace prox {

/// \brief Verdict of a mapping constraint on a proposed grouping: whether
/// the (original) annotations may map to the same summary annotation, the
/// meaningful display name derived from their joint semantics
/// (Section 3.2), and the taxonomy distances used for tie-breaking.
struct MergeDecision {
  bool allowed = false;
  std::string name;
  /// MAX / SUM of Wu-Palmer distances from members to the summary concept;
  /// 0 when no taxonomy applies (Section 4.2's tie-breaking).
  double taxonomy_distance_max = 0.0;
  double taxonomy_distance_sum = 0.0;
  /// Concept the summary annotation denotes (kNoConcept when none).
  ConceptId concept_id = kNoConcept;
};

/// \brief Declarative description of a DomainRule — the introspection
/// surface prox::store persists and rebuilds rules through (docs/STORE.md).
/// Each rule kind reads only its own fields; the rest stay defaulted.
struct RuleSpec {
  enum class Kind : uint32_t {
    kSharedAttribute = 1,
    kAllAttributes = 2,
    kTaxonomyAncestor = 3,
    kNumericTolerance = 4,
    kAnyMerge = 5,
  };
  Kind kind = Kind::kAnyMerge;
  std::vector<AttrId> attrs;   // shared/all-attributes rules
  AttrId attr = 0;             // numeric tolerance
  double tolerance = 0.0;      // numeric tolerance
  bool allow_root = false;     // taxonomy ancestor
  std::string name_prefix;     // any-merge
};

/// \brief A per-domain rule restricting which annotations may be grouped.
///
/// `members` is the full set of *original* annotations the summary would
/// cover (the union of both groups being merged), so constraints hold
/// transitively across summarization steps.
class DomainRule {
 public:
  virtual ~DomainRule() = default;
  virtual MergeDecision Evaluate(const std::vector<AnnotationId>& members,
                                 const SemanticContext& ctx) const = 0;
  /// The rule's persistable description (inverse of RuleFromSpec).
  virtual RuleSpec Spec() const = 0;
};

/// Rebuilds a rule from its persisted description.
std::unique_ptr<DomainRule> RuleFromSpec(const RuleSpec& spec);

/// Members must share a value in at least one of `attrs` ("users grouped
/// together must share a common attribute out of gender, age group, etc.").
/// The summary name is "<Attr>:<Value>" for the first shared attribute in
/// declaration order (the priority order).
class SharedAttributeRule : public DomainRule {
 public:
  explicit SharedAttributeRule(std::vector<AttrId> attrs)
      : attrs_(std::move(attrs)) {}
  MergeDecision Evaluate(const std::vector<AnnotationId>& members,
                         const SemanticContext& ctx) const override;
  RuleSpec Spec() const override;

 private:
  std::vector<AttrId> attrs_;
};

/// Members must share a value in *every* one of `attrs` — the conjunctive
/// reading of Section 3.2's "reference tuples that share values in some
/// (or one of some) specified attributes". The summary name concatenates
/// the shared values ("Gender:F+Role:Audience").
class AllAttributesRule : public DomainRule {
 public:
  explicit AllAttributesRule(std::vector<AttrId> attrs)
      : attrs_(std::move(attrs)) {}
  MergeDecision Evaluate(const std::vector<AnnotationId>& members,
                         const SemanticContext& ctx) const override;
  RuleSpec Spec() const override;

 private:
  std::vector<AttrId> attrs_;
};

/// Members must share a common taxonomy ancestor strictly below the root
/// unless `allow_root` is set; the summary is named after (and denotes) the
/// LCA concept, with Wu-Palmer distances recorded for tie-breaking.
class TaxonomyAncestorRule : public DomainRule {
 public:
  explicit TaxonomyAncestorRule(bool allow_root = false)
      : allow_root_(allow_root) {}
  MergeDecision Evaluate(const std::vector<AnnotationId>& members,
                         const SemanticContext& ctx) const override;
  RuleSpec Spec() const override;

 private:
  bool allow_root_;
};

/// Members' numeric attribute `attr` values must all lie within `tolerance`
/// of each other — the DDP rule that cost variables "have more or less the
/// same cost" (Example 5.2.2).
class NumericToleranceRule : public DomainRule {
 public:
  NumericToleranceRule(AttrId attr, double tolerance)
      : attr_(attr), tolerance_(tolerance) {}
  MergeDecision Evaluate(const std::vector<AnnotationId>& members,
                         const SemanticContext& ctx) const override;
  RuleSpec Spec() const override;

 private:
  AttrId attr_;
  double tolerance_;
};

/// Any same-domain grouping is allowed (DDP database variables). The
/// summary name concatenates a domain prefix with a running id.
class AnyMergeRule : public DomainRule {
 public:
  explicit AnyMergeRule(std::string name_prefix)
      : name_prefix_(std::move(name_prefix)) {}
  MergeDecision Evaluate(const std::vector<AnnotationId>& members,
                         const SemanticContext& ctx) const override;
  RuleSpec Spec() const override;

 private:
  std::string name_prefix_;
};

/// \brief The constraint configuration of a dataset: one rule per domain.
/// Domains without a rule reject all merges (annotations there — e.g.
/// guard-internal variables — are never grouped).
class ConstraintSet {
 public:
  void SetRule(DomainId domain, std::unique_ptr<DomainRule> rule) {
    rules_[domain] = std::move(rule);
  }

  bool HasRule(DomainId domain) const { return rules_.count(domain) > 0; }

  /// Evaluates the domain's rule on a proposed member set. All members must
  /// belong to `domain` (the same-input-table baseline constraint).
  MergeDecision Evaluate(DomainId domain,
                         const std::vector<AnnotationId>& members,
                         const SemanticContext& ctx) const;

  /// All configured rules, for persistence (prox::store).
  const std::map<DomainId, std::unique_ptr<DomainRule>>& rules() const {
    return rules_;
  }

 private:
  std::map<DomainId, std::unique_ptr<DomainRule>> rules_;
};

}  // namespace prox

#endif  // PROX_SEMANTICS_CONSTRAINTS_H_
