#include "semantics/constraints.h"

#include <algorithm>
#include <cstdlib>

#include "common/str_util.h"

namespace prox {

MergeDecision SharedAttributeRule::Evaluate(
    const std::vector<AnnotationId>& members,
    const SemanticContext& ctx) const {
  MergeDecision decision;
  if (members.empty()) return decision;
  const EntityTable* table = ctx.TableFor(ctx.registry->domain(members[0]));
  if (table == nullptr) return decision;
  for (AttrId attr : attrs_) {
    ValueId shared = ctx.AttrValueOf(members[0], attr);
    if (shared == kNoValue) continue;
    bool all_match = true;
    for (size_t i = 1; i < members.size(); ++i) {
      if (ctx.AttrValueOf(members[i], attr) != shared) {
        all_match = false;
        break;
      }
    }
    if (all_match) {
      decision.allowed = true;
      decision.name =
          table->attribute_name(attr) + ":" + table->value_name(shared);
      return decision;
    }
  }
  return decision;
}

MergeDecision AllAttributesRule::Evaluate(
    const std::vector<AnnotationId>& members,
    const SemanticContext& ctx) const {
  MergeDecision decision;
  if (members.empty()) return decision;
  const EntityTable* table = ctx.TableFor(ctx.registry->domain(members[0]));
  if (table == nullptr) return decision;
  std::string name;
  for (AttrId attr : attrs_) {
    ValueId shared = ctx.AttrValueOf(members[0], attr);
    if (shared == kNoValue) return decision;
    for (size_t i = 1; i < members.size(); ++i) {
      if (ctx.AttrValueOf(members[i], attr) != shared) return decision;
    }
    if (!name.empty()) name += "+";
    name += table->attribute_name(attr) + ":" + table->value_name(shared);
  }
  decision.allowed = true;
  decision.name = std::move(name);
  return decision;
}

MergeDecision TaxonomyAncestorRule::Evaluate(
    const std::vector<AnnotationId>& members,
    const SemanticContext& ctx) const {
  MergeDecision decision;
  if (members.empty() || !ctx.taxonomy.has_value()) return decision;
  const Taxonomy& tax = *ctx.taxonomy;
  ConceptId lca = ctx.ConceptOf(members[0]);
  if (lca == kNoConcept) return decision;
  for (size_t i = 1; i < members.size(); ++i) {
    ConceptId c = ctx.ConceptOf(members[i]);
    if (c == kNoConcept) return decision;
    lca = tax.Lca(lca, c);
  }
  // The LCA of leaf concepts is a common ancestor; grouping under the root
  // means the members have nothing semantically in common.
  if (!allow_root_ && tax.parent(lca) == kNoConcept && members.size() > 1) {
    // Allow the root only if all members *are* the root concept.
    bool all_root = true;
    for (AnnotationId m : members) {
      if (ctx.ConceptOf(m) != lca) {
        all_root = false;
        break;
      }
    }
    if (!all_root) return decision;
  }
  decision.allowed = true;
  decision.name = tax.name(lca);
  decision.concept_id = lca;
  for (AnnotationId m : members) {
    double d = tax.WuPalmerDistance(ctx.ConceptOf(m), lca);
    decision.taxonomy_distance_max = std::max(decision.taxonomy_distance_max, d);
    decision.taxonomy_distance_sum += d;
  }
  return decision;
}

MergeDecision NumericToleranceRule::Evaluate(
    const std::vector<AnnotationId>& members,
    const SemanticContext& ctx) const {
  MergeDecision decision;
  if (members.empty()) return decision;
  const EntityTable* table = ctx.TableFor(ctx.registry->domain(members[0]));
  if (table == nullptr) return decision;
  double lo = 0.0, hi = 0.0;
  bool first = true;
  for (AnnotationId m : members) {
    ValueId v = ctx.AttrValueOf(m, attr_);
    if (v == kNoValue) return decision;
    double value = std::strtod(table->value_name(v).c_str(), nullptr);
    if (first) {
      lo = hi = value;
      first = false;
    } else {
      lo = std::min(lo, value);
      hi = std::max(hi, value);
    }
  }
  if (hi - lo > tolerance_) return decision;
  decision.allowed = true;
  decision.name = table->attribute_name(attr_) + "≈" +
                  FormatDouble((lo + hi) / 2.0, 1);
  return decision;
}

MergeDecision AnyMergeRule::Evaluate(const std::vector<AnnotationId>& members,
                                     const SemanticContext& ctx) const {
  (void)ctx;
  MergeDecision decision;
  if (members.empty()) return decision;
  decision.allowed = true;
  decision.name = name_prefix_ + std::to_string(members[0]);
  return decision;
}

RuleSpec SharedAttributeRule::Spec() const {
  RuleSpec spec;
  spec.kind = RuleSpec::Kind::kSharedAttribute;
  spec.attrs = attrs_;
  return spec;
}

RuleSpec AllAttributesRule::Spec() const {
  RuleSpec spec;
  spec.kind = RuleSpec::Kind::kAllAttributes;
  spec.attrs = attrs_;
  return spec;
}

RuleSpec TaxonomyAncestorRule::Spec() const {
  RuleSpec spec;
  spec.kind = RuleSpec::Kind::kTaxonomyAncestor;
  spec.allow_root = allow_root_;
  return spec;
}

RuleSpec NumericToleranceRule::Spec() const {
  RuleSpec spec;
  spec.kind = RuleSpec::Kind::kNumericTolerance;
  spec.attr = attr_;
  spec.tolerance = tolerance_;
  return spec;
}

RuleSpec AnyMergeRule::Spec() const {
  RuleSpec spec;
  spec.kind = RuleSpec::Kind::kAnyMerge;
  spec.name_prefix = name_prefix_;
  return spec;
}

std::unique_ptr<DomainRule> RuleFromSpec(const RuleSpec& spec) {
  switch (spec.kind) {
    case RuleSpec::Kind::kSharedAttribute:
      return std::make_unique<SharedAttributeRule>(spec.attrs);
    case RuleSpec::Kind::kAllAttributes:
      return std::make_unique<AllAttributesRule>(spec.attrs);
    case RuleSpec::Kind::kTaxonomyAncestor:
      return std::make_unique<TaxonomyAncestorRule>(spec.allow_root);
    case RuleSpec::Kind::kNumericTolerance:
      return std::make_unique<NumericToleranceRule>(spec.attr, spec.tolerance);
    case RuleSpec::Kind::kAnyMerge:
      return std::make_unique<AnyMergeRule>(spec.name_prefix);
  }
  return nullptr;
}

MergeDecision ConstraintSet::Evaluate(DomainId domain,
                                      const std::vector<AnnotationId>& members,
                                      const SemanticContext& ctx) const {
  MergeDecision decision;
  // Same-domain is the baseline constraint of Section 3.2.
  for (AnnotationId m : members) {
    if (ctx.registry->domain(m) != domain) return decision;
  }
  auto it = rules_.find(domain);
  if (it == rules_.end()) return decision;
  return it->second->Evaluate(members, ctx);
}

}  // namespace prox
