#include "semantics/entity_table.h"

namespace prox {

AttrId EntityTable::AddAttribute(const std::string& attr_name) {
  auto it = attr_by_name_.find(attr_name);
  if (it != attr_by_name_.end()) return it->second;
  AttrId id = static_cast<AttrId>(attr_names_.size());
  attr_names_.push_back(attr_name);
  attr_by_name_.emplace(attr_name, id);
  return id;
}

Result<AttrId> EntityTable::FindAttribute(const std::string& attr_name) const {
  auto it = attr_by_name_.find(attr_name);
  if (it == attr_by_name_.end()) {
    return Status::NotFound("unknown attribute: " + attr_name + " in table " +
                            name_);
  }
  return it->second;
}

ValueId EntityTable::InternValue(const std::string& value) {
  auto it = value_by_name_.find(value);
  if (it != value_by_name_.end()) return it->second;
  ValueId id = static_cast<ValueId>(value_names_.size());
  value_names_.push_back(value);
  value_by_name_.emplace(value, id);
  return id;
}

Result<uint32_t> EntityTable::AddRow(const std::vector<std::string>& values) {
  if (values.size() != attr_names_.size()) {
    return Status::InvalidArgument(
        "row arity mismatch in table " + name_ + ": expected " +
        std::to_string(attr_names_.size()) + " values, got " +
        std::to_string(values.size()));
  }
  std::vector<ValueId> row;
  row.reserve(values.size());
  for (const auto& v : values) row.push_back(InternValue(v));
  rows_.push_back(std::move(row));
  return static_cast<uint32_t>(rows_.size() - 1);
}

Result<uint32_t> EntityTable::AddRowIds(const std::vector<ValueId>& values) {
  if (values.size() != attr_names_.size()) {
    return Status::InvalidArgument(
        "row arity mismatch in table " + name_ + ": expected " +
        std::to_string(attr_names_.size()) + " values, got " +
        std::to_string(values.size()));
  }
  for (ValueId v : values) {
    if (v >= value_names_.size()) {
      return Status::InvalidArgument("unknown value id " + std::to_string(v) +
                                     " in table " + name_);
    }
  }
  rows_.push_back(values);
  return static_cast<uint32_t>(rows_.size() - 1);
}

}  // namespace prox
