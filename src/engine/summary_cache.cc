#include "engine/summary_cache.h"

#include <functional>

#include "engine/engine_metrics.h"

namespace prox {
namespace engine {

SummaryCache::SummaryCache(Options options) {
  size_t shard_count = options.shards == 0 ? 1 : options.shards;
  shards_.reserve(shard_count);
  for (size_t i = 0; i < shard_count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  per_shard_budget_ = options.max_bytes / shard_count;
}

SummaryCache::Shard& SummaryCache::ShardFor(const std::string& key) {
  return *shards_[std::hash<std::string>{}(key) % shards_.size()];
}

std::shared_ptr<const std::string> SummaryCache::Get(const std::string& key) {
  static obs::Counter* hit_metric = CacheHits();
  static obs::Counter* miss_metric = CacheMisses();
  static obs::Counter* warm_hit_metric =
      obs::MetricsRegistry::Default().GetCounter(
          "prox_store_cache_warm_hit_total",
          "Cache hits on entries restored from a snapshot (warm restarts).");
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.misses;
    miss_metric->Increment();
    return nullptr;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  ++shard.hits;
  hit_metric->Increment();
  if (it->second->warm) warm_hit_metric->Increment();
  return it->second->value;
}

void SummaryCache::Put(const std::string& key,
                       std::shared_ptr<const std::string> value, bool warm) {
  static obs::Counter* evict_metric = CacheEvictions();
  static obs::Gauge* bytes_metric = CacheBytes();
  if (value == nullptr) return;
  size_t entry_bytes = key.size() + value->size();
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    size_t old_bytes = it->second->key.size() + it->second->value->size();
    shard.bytes -= old_bytes;
    bytes_metric->Add(-static_cast<double>(old_bytes));
    it->second->value = std::move(value);
    it->second->warm = warm;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    shard.bytes += entry_bytes;
    bytes_metric->Add(static_cast<double>(entry_bytes));
  } else {
    if (entry_bytes > per_shard_budget_) return;  // would never fit
    shard.lru.push_front(Entry{key, std::move(value), warm});
    shard.index.emplace(key, shard.lru.begin());
    shard.bytes += entry_bytes;
    bytes_metric->Add(static_cast<double>(entry_bytes));
  }
  while (shard.bytes > per_shard_budget_ && shard.lru.size() > 1) {
    const Entry& victim = shard.lru.back();
    size_t victim_bytes = victim.key.size() + victim.value->size();
    shard.bytes -= victim_bytes;
    bytes_metric->Add(-static_cast<double>(victim_bytes));
    shard.index.erase(victim.key);
    shard.lru.pop_back();
    ++shard.evictions;
    evict_metric->Increment();
  }
}

std::vector<SummaryCache::DumpEntry> SummaryCache::Dump() const {
  std::vector<DumpEntry> out;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const Entry& entry : shard->lru) {
      out.push_back(DumpEntry{entry.key, entry.value});
    }
  }
  return out;
}

SummaryCache::Stats SummaryCache::stats() const {
  Stats stats;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    stats.hits += shard->hits;
    stats.misses += shard->misses;
    stats.evictions += shard->evictions;
    stats.entries += shard->lru.size();
    stats.bytes += shard->bytes;
  }
  return stats;
}

}  // namespace engine
}  // namespace prox
