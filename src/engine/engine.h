#ifndef PROX_ENGINE_ENGINE_H_
#define PROX_ENGINE_ENGINE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "engine/summary_cache.h"
#include "ingest/delta.h"
#include "ingest/maintainer.h"
#include "service/evaluator_service.h"
#include "service/selection_service.h"
#include "service/session.h"
#include "service/summarization_service.h"

namespace prox {
namespace engine {

/// Where an Engine's dataset comes from: one of the three generated
/// families (the Table 5.1 workloads), or a PROXSNAP snapshot file
/// (docs/STORE.md). The generator shapes default to the small demo
/// configurations `prox_cli` and `prox_server` have always used, so two
/// processes booting the same spec — a C++ CLI and a C embedder, say —
/// build byte-identical datasets.
struct DatasetSpec {
  enum class Family { kMovieLens, kWikipedia, kDdp };
  Family family = Family::kMovieLens;

  /// Generator shape. `num_users`/`num_groups` map onto users/movies
  /// (MovieLens), users/pages (Wikipedia) and executions/- (DDP); 0 keeps
  /// the family default (MovieLens 25/8 seed 99, Wikipedia 10/8 seed 11,
  /// DDP 8 executions seed 13).
  int num_users = 0;
  int num_groups = 0;
  uint64_t seed = 0;
  bool seed_set = false;  ///< distinguishes "seed 0" from "default seed"

  /// Non-empty: boot from this snapshot instead of generating; the family
  /// and shape fields are ignored. Fail-closed — a snapshot that does not
  /// validate never becomes a serving dataset.
  std::string snapshot_path;
};

/// \brief The transport-agnostic PROX engine: everything below the wire.
///
/// Owns the dataset (generated or snapshot-loaded), the ProxSession
/// workflow, the SummaryCache, the dataset-fingerprint chain and the
/// streaming-ingest maintainer, and exposes the five PROX operations as a
/// JSON request/response API plus a typed facade for embedders. The HTTP
/// layer (prox::serve), `prox_cli` and the C ABI (include/prox_c.h) are
/// all thin shells over this class; none of them reach the session, the
/// cache or the summarizer directly (docs/EMBEDDING.md).
///
/// The JSON endpoints return the exact bytes prox_server has always put
/// on the wire: success bodies and `{"error": ...}` documents are rendered
/// here (newline-terminated), `Response::http_status` carries the 1:1
/// HTTP mapping of the typed Status, and `Response::cache` reports the
/// SummaryCache outcome the transport surfaces as `X-Prox-Cache`.
///
/// Thread-safety: every member function serializes behind the engine
/// mutex, which also keeps the cache key consistent with the selection
/// (and dataset contents) a computation actually ran on — the single-
/// flight discipline the serve router used to implement. Accessors return
/// snapshot values, never pointers into guarded state.
class Engine {
 public:
  struct Options {
    DatasetSpec dataset;
    SummaryCache::Options cache;
    /// Restore a snapshot's persisted cache section (if any) warm.
    bool restore_cache = true;
  };

  /// One JSON request/response exchange. `body` is always a complete
  /// rendered document ('\n'-terminated): the success payload when
  /// `status.ok()`, the canonical `{"error":{"code","message"}}` document
  /// otherwise. `http_status` is the 1:1 HTTP mapping of `status`
  /// (codec.h HttpStatusForCode).
  struct Response {
    Status status;
    int http_status = 200;
    std::string body;
    enum class CacheOutcome { kNone, kHit, kMiss };
    CacheOutcome cache = CacheOutcome::kNone;

    bool ok() const { return status.ok(); }
  };

  /// Boots per the spec: generates the named family or opens the
  /// snapshot (restoring persisted cache entries warm unless told not
  /// to). The session starts with the whole provenance selected, so a
  /// summarize with no prior select is well-defined (and cacheable under
  /// "all").
  static Result<std::unique_ptr<Engine>> Create(const Options& options);

  /// Wraps an already-built dataset (tests, custom generators). Takes
  /// ownership.
  static std::unique_ptr<Engine> FromDataset(Dataset dataset);
  static std::unique_ptr<Engine> FromDataset(Dataset dataset,
                                             const Options& options);

  /// Parses the JSON spec the C ABI's `prox_engine_open` takes:
  /// `{"dataset": {"family": "movielens", "users": N, "groups": N,
  /// "seed": N} | {"snapshot": "path"}, "cache_mb": N}` — all fields
  /// optional, unknown fields InvalidArgument.
  static Result<Options> OptionsFromJson(const std::string& config_json);

  // --- JSON request/response API (what the wire speaks) -------------------

  /// POST /v1/select: criteria or `{"all": true}`.
  Response HandleSelect(const std::string& body);
  /// POST /v1/summarize: Algorithm 1 with the request's knobs, served
  /// from the SummaryCache when the `(fingerprint, selection, knobs)` key
  /// is present; cached and cold bodies are byte-identical.
  Response HandleSummarize(const std::string& body);
  /// POST /v1/ingest: one delta batch, with the optional "resummarize"
  /// directive (docs/INGEST.md).
  Response HandleIngest(const std::string& body);
  /// GET /v1/summary/groups.
  Response HandleGroups();
  /// POST /v1/evaluate: approximate provisioning on summary or selection.
  Response HandleEvaluate(const std::string& body);

  // --- typed facade (CLI / in-process embedders) --------------------------
  // Every accessor returns a snapshot value computed under the engine
  // mutex; nothing hands out pointers into session state.

  /// All group titles, sorted (selection view).
  std::vector<std::string> ListTitles() const;
  /// Titles containing `substring`, case-insensitive, sorted.
  std::vector<std::string> SearchTitles(const std::string& substring) const;

  /// Selection view: returns the selected expression's size.
  Result<int64_t> Select(const SelectionCriteria& criteria);
  int64_t SelectAll();

  struct SummarizeOutcome {
    int64_t final_size = 0;
    double final_distance = 0.0;
    /// The canonical JSON body ('\n'-terminated) — the same bytes
    /// HandleSummarize and POST /v1/summarize return.
    std::string body;
  };
  /// Runs Algorithm 1 on the current selection. Always computes (the
  /// cached path is HandleSummarize's), so the session outcome the other
  /// views read is never stale.
  Result<SummarizeOutcome> Summarize(const SummarizationRequest& request);

  /// Streaming ingest through the warm-start maintainer; advances the
  /// fingerprint chain and resets the selection key to "all", retiring
  /// every cache entry keyed under the old dataset version.
  Result<ingest::ApplyReceipt> IngestDelta(const ingest::DeltaBatch& batch);
  /// Warm/cold re-summarize of the current selection (docs/INGEST.md).
  Result<ingest::MaintainReport> Resummarize(
      const SummarizationRequest& request);

  /// Summary view, groups subview: one line per summary annotation.
  std::vector<std::string> DescribeGroups() const;
  /// Summary view, expression subview.
  Result<std::string> SummaryExpression() const;

  struct StepSnapshot {
    int64_t size = 0;
    std::string expression;
  };
  /// The selection's expression after `step` merges of the last summary
  /// (summarize/report.h) — by value, unlike the raw session pointers.
  Result<StepSnapshot> SummaryAtStep(int step) const;

  /// The last summary serialized in the provenance/io.h text format.
  Result<std::string> SerializedSummary() const;

  Result<EvaluationReport> EvaluateOnSummary(const Assignment& assignment);
  Result<EvaluationReport> EvaluateOnSelection(const Assignment& assignment);

  // --- identity / persistence ---------------------------------------------

  /// The current dataset fingerprint. By value: ingest advances it by
  /// digest chaining, so the string the caller saw may be replaced while
  /// they hold it.
  std::string fingerprint() const;
  int64_t provenance_size() const;
  uint64_t next_ingest_sequence() const;

  /// Writes the dataset (keyed under the current fingerprint) plus the
  /// live summary cache as a PROXSNAP snapshot, so the next snapshot boot
  /// serves its first request warm (--cache-persist).
  Status PersistSnapshot(const std::string& path) const;

  SummaryCache& cache() { return cache_; }
  const SummaryCache& cache() const { return cache_; }

 private:
  Engine(Dataset dataset, const Options& options);

  /// Renders the session's current outcome under the session lock
  /// (requires outcome != nullptr; callers hold mu_).
  std::string RenderOutcomeBody() const;

  ProxSession session_;
  SummaryCache cache_;

  /// Guards fingerprint_, selection_key_, maintainer_, and all session_
  /// calls, keeping the cache key consistent with the selection (and the
  /// dataset contents) a computation actually ran on.
  mutable std::mutex mu_;
  std::string fingerprint_;
  std::string selection_key_;
  ingest::SummaryMaintainer maintainer_;
};

}  // namespace engine
}  // namespace prox

#endif  // PROX_ENGINE_ENGINE_H_
