#include "engine/codec.h"

#include <algorithm>
#include <cstdio>
#include <set>

#include "common/str_util.h"

#include "service/fingerprint.h"

namespace prox {
namespace engine {

namespace {

std::string HexDouble(double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%a", value);
  return buf;
}

/// Sorted, de-duplicated copy for order-insensitive canonical keys.
JsonValue SortedUniqueArray(std::vector<std::string> values) {
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  JsonValue array = JsonValue::Array();
  for (std::string& value : values) array.Append(JsonValue::Str(std::move(value)));
  return array;
}

Result<std::vector<std::string>> StringList(const JsonValue& value,
                                            const std::string& field) {
  if (!value.is_array()) {
    return Status::InvalidArgument("field '" + field +
                                   "' must be an array of strings");
  }
  std::vector<std::string> out;
  for (const JsonValue& item : value.items()) {
    if (!item.is_string()) {
      return Status::InvalidArgument("field '" + field +
                                     "' must be an array of strings");
    }
    out.push_back(item.string_value());
  }
  return out;
}

Result<double> NumberField(const JsonValue& value, const std::string& field) {
  if (!value.is_number()) {
    return Status::InvalidArgument("field '" + field + "' must be a number");
  }
  return value.double_value();
}

Result<int64_t> IntField(const JsonValue& value, const std::string& field) {
  if (!value.is_int()) {
    return Status::InvalidArgument("field '" + field +
                                   "' must be an integer");
  }
  return value.int_value();
}

}  // namespace

// ---------------------------------------------------------------------------
// Canonical cache-key fragments
// ---------------------------------------------------------------------------

std::string DatasetFingerprint(const Dataset& dataset) {
  // The hashing itself lives in the service layer (service/fingerprint.h)
  // so ProxSession can memoize it and the ingest subsystem can chain it
  // with per-batch delta digests; this wrapper keeps the serve-layer call
  // sites and tests stable.
  return ComputeDatasetFingerprint(dataset);
}

std::string CanonicalSelectionKey(const SelectionCriteria& criteria) {
  JsonValue doc = JsonValue::Object();
  doc.Set("titles", SortedUniqueArray(criteria.titles));
  doc.Set("substr", JsonValue::Str(ToLowerAscii(criteria.title_substring)));
  doc.Set("genres", SortedUniqueArray(criteria.genres));
  doc.Set("year", criteria.year.has_value() ? JsonValue::Int(*criteria.year)
                                            : JsonValue::Null());
  return WriteJson(doc);
}

std::string SelectAllKey() { return "all"; }

std::string CanonicalRequestKey(const SummarizationRequest& request) {
  std::string key = "wd=" + HexDouble(request.w_dist);
  key += ";ws=" + HexDouble(request.w_size);
  key += ";td=" + HexDouble(request.target_dist);
  key += ";ts=" + std::to_string(request.target_size);
  key += ";ms=" + std::to_string(request.max_steps);
  key += ";vc=" + std::to_string(static_cast<int>(request.valuation_class));
  key += ";vf=" + std::to_string(static_cast<int>(request.val_func));
  return key;
}

std::string SummaryCacheKey(const std::string& dataset_fingerprint,
                            const std::string& selection_key,
                            const SummarizationRequest& request) {
  return dataset_fingerprint + "|" + selection_key + "|" +
         CanonicalRequestKey(request);
}

// ---------------------------------------------------------------------------
// Request decoding
// ---------------------------------------------------------------------------

Result<SelectionCriteria> SelectionCriteriaFromJson(const JsonValue& value,
                                                    bool* select_all) {
  *select_all = false;
  if (!value.is_object()) {
    return Status::InvalidArgument("selection body must be a JSON object");
  }
  SelectionCriteria criteria;
  for (const auto& [key, member] : value.members()) {
    if (key == "all") {
      if (!member.is_bool()) {
        return Status::InvalidArgument("field 'all' must be a boolean");
      }
      *select_all = member.bool_value();
    } else if (key == "titles") {
      PROX_ASSIGN_OR_RETURN(criteria.titles, StringList(member, key));
    } else if (key == "title_substring") {
      if (!member.is_string()) {
        return Status::InvalidArgument(
            "field 'title_substring' must be a string");
      }
      criteria.title_substring = member.string_value();
    } else if (key == "genres") {
      PROX_ASSIGN_OR_RETURN(criteria.genres, StringList(member, key));
    } else if (key == "year") {
      PROX_ASSIGN_OR_RETURN(int64_t year, IntField(member, key));
      criteria.year = static_cast<int>(year);
    } else {
      return Status::InvalidArgument("unknown selection field '" + key + "'");
    }
  }
  return criteria;
}

Result<SummarizationRequest> SummarizationRequestFromJson(
    const JsonValue& value) {
  using VC = SummarizationRequest::ValuationClassKind;
  using VF = SummarizationRequest::ValFuncKind;
  if (!value.is_object()) {
    return Status::InvalidArgument("summarize body must be a JSON object");
  }
  SummarizationRequest request;
  for (const auto& [key, member] : value.members()) {
    if (key == "w_dist") {
      PROX_ASSIGN_OR_RETURN(request.w_dist, NumberField(member, key));
    } else if (key == "w_size") {
      PROX_ASSIGN_OR_RETURN(request.w_size, NumberField(member, key));
    } else if (key == "target_dist") {
      PROX_ASSIGN_OR_RETURN(request.target_dist, NumberField(member, key));
    } else if (key == "target_size") {
      PROX_ASSIGN_OR_RETURN(request.target_size, IntField(member, key));
    } else if (key == "max_steps") {
      PROX_ASSIGN_OR_RETURN(int64_t steps, IntField(member, key));
      request.max_steps = static_cast<int>(steps);
    } else if (key == "threads") {
      PROX_ASSIGN_OR_RETURN(int64_t threads, IntField(member, key));
      request.threads = static_cast<int>(threads);
    } else if (key == "valuation_class") {
      if (!member.is_string()) {
        return Status::InvalidArgument(
            "field 'valuation_class' must be a string");
      }
      const std::string& name = member.string_value();
      if (name == "dataset_default") {
        request.valuation_class = VC::kDatasetDefault;
      } else if (name == "cancel_single_annotation") {
        request.valuation_class = VC::kCancelSingleAnnotation;
      } else if (name == "cancel_single_attribute") {
        request.valuation_class = VC::kCancelSingleAttribute;
      } else {
        return Status::InvalidArgument("unknown valuation_class '" + name +
                                       "'");
      }
    } else if (key == "val_func") {
      if (!member.is_string()) {
        return Status::InvalidArgument("field 'val_func' must be a string");
      }
      const std::string& name = member.string_value();
      if (name == "dataset_default") {
        request.val_func = VF::kDatasetDefault;
      } else if (name == "euclidean") {
        request.val_func = VF::kEuclidean;
      } else if (name == "absolute_difference") {
        request.val_func = VF::kAbsoluteDifference;
      } else if (name == "disagreement") {
        request.val_func = VF::kDisagreement;
      } else {
        return Status::InvalidArgument("unknown val_func '" + name + "'");
      }
    } else {
      return Status::InvalidArgument("unknown summarize field '" + key + "'");
    }
  }
  return request;
}

Result<Assignment> AssignmentFromJson(const JsonValue& value) {
  if (!value.is_object()) {
    return Status::InvalidArgument("evaluate body must be a JSON object");
  }
  Assignment assignment;
  for (const auto& [key, member] : value.members()) {
    if (key == "false_annotations") {
      PROX_ASSIGN_OR_RETURN(assignment.false_annotations,
                            StringList(member, key));
    } else if (key == "false_attributes") {
      if (!member.is_array()) {
        return Status::InvalidArgument(
            "field 'false_attributes' must be an array");
      }
      for (const JsonValue& pair : member.items()) {
        const JsonValue* attribute =
            pair.is_object() ? pair.Find("attribute") : nullptr;
        const JsonValue* attr_value =
            pair.is_object() ? pair.Find("value") : nullptr;
        if (attribute == nullptr || !attribute->is_string() ||
            attr_value == nullptr || !attr_value->is_string()) {
          return Status::InvalidArgument(
              "false_attributes entries must be "
              "{\"attribute\": ..., \"value\": ...} string pairs");
        }
        assignment.false_attributes.emplace_back(attribute->string_value(),
                                                 attr_value->string_value());
      }
    } else {
      return Status::InvalidArgument("unknown evaluate field '" + key + "'");
    }
  }
  return assignment;
}

// ---------------------------------------------------------------------------
// Response encoding
// ---------------------------------------------------------------------------

JsonValue SummaryOutcomeToJson(const SummaryOutcome& outcome,
                               const AnnotationRegistry& registry) {
  JsonValue doc = JsonValue::Object();
  doc.Set("final_size", JsonValue::Int(outcome.final_size));
  doc.Set("final_distance", JsonValue::Double(outcome.final_distance));
  doc.Set("rolled_back", JsonValue::Bool(outcome.rolled_back));
  doc.Set("equivalence_merges", JsonValue::Int(outcome.equivalence_merges));
  doc.Set("incremental_hits", JsonValue::Int(outcome.incremental_hits));
  doc.Set("incremental_fallbacks",
          JsonValue::Int(outcome.incremental_fallbacks));

  JsonValue steps = JsonValue::Array();
  for (const StepRecord& step : outcome.steps) {
    JsonValue entry = JsonValue::Object();
    entry.Set("step", JsonValue::Int(step.step));
    entry.Set("summary", JsonValue::Str(step.summary_name));
    JsonValue merged = JsonValue::Array();
    for (AnnotationId root : step.merged_roots) {
      merged.Append(JsonValue::Str(registry.name(root)));
    }
    entry.Set("merged", std::move(merged));
    entry.Set("distance", JsonValue::Double(step.distance));
    entry.Set("size", JsonValue::Int(step.size));
    entry.Set("score", JsonValue::Double(step.score));
    entry.Set("num_candidates", JsonValue::Int(step.num_candidates));
    steps.Append(std::move(entry));
  }
  doc.Set("steps", std::move(steps));

  JsonValue groups = JsonValue::Array();
  for (const auto& [summary, members] : outcome.state.summaries()) {
    const std::string& name = registry.name(summary);
    if (StartsWith(name, "~scratch")) continue;
    JsonValue group = JsonValue::Object();
    group.Set("name", JsonValue::Str(name));
    JsonValue member_names = JsonValue::Array();
    for (AnnotationId member : members) {
      member_names.Append(JsonValue::Str(registry.name(member)));
    }
    group.Set("members", std::move(member_names));
    groups.Append(std::move(group));
  }
  doc.Set("groups", std::move(groups));

  doc.Set("expression",
          outcome.summary != nullptr
              ? JsonValue::Str(outcome.summary->ToString(registry))
              : JsonValue::Null());
  return doc;
}

JsonValue EvaluationReportToJson(const EvaluationReport& report) {
  JsonValue doc = JsonValue::Object();
  JsonValue rows = JsonValue::Array();
  for (const auto& [group, value] : report.rows) {
    JsonValue row = JsonValue::Object();
    row.Set("group", JsonValue::Str(group));
    row.Set("value", JsonValue::Double(value));
    rows.Append(std::move(row));
  }
  doc.Set("rows", std::move(rows));
  doc.Set("eval_nanos", JsonValue::Int(report.eval_nanos));
  return doc;
}

JsonValue StatusToJson(const Status& status) {
  JsonValue error = JsonValue::Object();
  error.Set("code", JsonValue::Str(StatusCodeToString(status.code())));
  error.Set("message", JsonValue::Str(status.message()));
  JsonValue doc = JsonValue::Object();
  doc.Set("error", std::move(error));
  return doc;
}

int HttpStatusForCode(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return 200;
    case StatusCode::kInvalidArgument: return 400;
    case StatusCode::kNotFound: return 404;
    case StatusCode::kFailedPrecondition: return 409;
    case StatusCode::kAlreadyExists: return 409;
    case StatusCode::kOutOfRange: return 400;
    case StatusCode::kUnimplemented: return 501;
    case StatusCode::kInternal: return 500;
  }
  return 500;
}

}  // namespace engine
}  // namespace prox
