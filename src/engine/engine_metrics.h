#ifndef PROX_ENGINE_ENGINE_METRICS_H_
#define PROX_ENGINE_ENGINE_METRICS_H_

#include "obs/metrics.h"

namespace prox {
namespace engine {

/// \file
/// Metric families owned by the engine layer (docs/OBSERVABILITY.md).
/// The names keep their historical `prox_serve_` prefix: dashboards and
/// the persisted-snapshot warm-hit accounting predate the engine/transport
/// split, and renaming a metric is a breaking change for every scrape
/// config. Same discipline as serve_metrics.h: labels are pre-rendered
/// strings, hot call sites cache the pointer in a function-local static.

/// `prox_serve_fingerprint_fallback_total` — DatasetFingerprint calls that
/// had no snapshot checksum hint and re-hashed the full provenance text.
inline obs::Counter* FingerprintFallbacks() {
  return obs::MetricsRegistry::Default().GetCounter(
      "prox_serve_fingerprint_fallback_total",
      "Dataset fingerprints computed by re-serializing the provenance "
      "because no snapshot checksum was available.");
}

/// `prox_serve_cache_hit_total`.
inline obs::Counter* CacheHits() {
  return obs::MetricsRegistry::Default().GetCounter(
      "prox_serve_cache_hit_total", "SummaryCache lookups served from cache.");
}

/// `prox_serve_cache_miss_total`.
inline obs::Counter* CacheMisses() {
  return obs::MetricsRegistry::Default().GetCounter(
      "prox_serve_cache_miss_total", "SummaryCache lookups that missed.");
}

/// `prox_serve_cache_evict_total`.
inline obs::Counter* CacheEvictions() {
  return obs::MetricsRegistry::Default().GetCounter(
      "prox_serve_cache_evict_total",
      "SummaryCache entries evicted to stay under the byte budget.");
}

/// `prox_serve_cache_bytes` — bytes currently cached across all shards.
inline obs::Gauge* CacheBytes() {
  return obs::MetricsRegistry::Default().GetGauge(
      "prox_serve_cache_bytes", "Bytes held by the SummaryCache.");
}

}  // namespace engine
}  // namespace prox

#endif  // PROX_ENGINE_ENGINE_METRICS_H_
