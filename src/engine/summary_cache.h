#ifndef PROX_ENGINE_SUMMARY_CACHE_H_
#define PROX_ENGINE_SUMMARY_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace prox {
namespace engine {

/// \brief A sharded LRU cache of serialized summarize responses.
///
/// Keys are the canonical `(dataset fingerprint, selection, request knobs)`
/// strings the engine facade builds (codec.h); values are the exact response bodies,
/// shared immutably so a hit hands out the same bytes the cold request
/// produced — byte-identical responses are the cache's contract, enabled by
/// the determinism guarantees of the parallel engine (docs/PARALLELISM.md).
///
/// Concurrency: the key hash picks a shard; each shard has its own mutex
/// and LRU list, so lookups on different shards never contend. The byte
/// budget is split evenly across shards; inserting over budget evicts that
/// shard's least-recently-used entries (an entry larger than a whole
/// shard's budget is simply not cached).
///
/// Metrics: `prox_serve_cache_hit_total`, `prox_serve_cache_miss_total`,
/// `prox_serve_cache_evict_total` counters and the `prox_serve_cache_bytes`
/// gauge (docs/OBSERVABILITY.md).
class SummaryCache {
 public:
  struct Options {
    size_t shards = 8;                      ///< clamped to >= 1
    size_t max_bytes = 64 * 1024 * 1024;    ///< total across shards
  };

  explicit SummaryCache(Options options);

  SummaryCache(const SummaryCache&) = delete;
  SummaryCache& operator=(const SummaryCache&) = delete;

  /// The cached body for `key`, or nullptr on a miss. A hit refreshes the
  /// entry's LRU position.
  std::shared_ptr<const std::string> Get(const std::string& key);

  /// Inserts (or replaces) `key`. Evicts LRU entries of the same shard
  /// until the shard is back under its budget. `warm` marks entries
  /// restored from a snapshot (prox::store); hits on them count into
  /// `prox_store_cache_warm_hit_total`.
  void Put(const std::string& key, std::shared_ptr<const std::string> value,
           bool warm = false);

  /// One cache entry as persisted by prox::store snapshots.
  struct DumpEntry {
    std::string key;
    std::shared_ptr<const std::string> value;
  };

  /// Every live entry, most-recently-used first within each shard — the
  /// save-side half of warm restarts (docs/STORE.md).
  std::vector<DumpEntry> Dump() const;

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    size_t entries = 0;
    size_t bytes = 0;
  };
  Stats stats() const;

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const std::string> value;
    bool warm = false;  // restored from a snapshot, not computed here
  };

  struct Shard {
    std::mutex mu;
    std::list<Entry> lru;  // front = most recent
    std::unordered_map<std::string, std::list<Entry>::iterator> index;
    size_t bytes = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
  };

  Shard& ShardFor(const std::string& key);
  void RecordBytesLocked();

  std::vector<std::unique_ptr<Shard>> shards_;
  size_t per_shard_budget_;
};

}  // namespace engine
}  // namespace prox

#endif  // PROX_ENGINE_SUMMARY_CACHE_H_
