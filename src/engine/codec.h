#ifndef PROX_ENGINE_CODEC_H_
#define PROX_ENGINE_CODEC_H_

#include <string>

#include "common/json.h"
#include "common/result.h"
#include "datasets/dataset.h"
#include "service/evaluator_service.h"
#include "service/selection_service.h"
#include "service/summarization_service.h"
#include "summarize/summarizer.h"

namespace prox {
namespace engine {

/// \file
/// The engine's canonical JSON codec: decoding of request bodies, encoding
/// of results, and the canonical strings the SummaryCache keys on. Every
/// transport — the HTTP router in prox::serve, `prox_cli --json`, and the
/// C ABI in prox_c.h — goes through these encoders, so they all emit the
/// same serialization of a SummaryOutcome (docs/SERVING.md gives the
/// schemas, docs/EMBEDDING.md the embedding contract).
///
/// Encodings are deterministic: field order is fixed, doubles render via
/// ShortestDouble, and nondeterministic fields (wall times, raw
/// AnnotationIds — both vary between reruns on the same registry) are
/// excluded from SummaryOutcomeToJson so that two runs of the same
/// request serialize to the same bytes.

// --- canonical cache-key fragments ---------------------------------------

/// A 64-bit FNV-1a fingerprint (hex) of the dataset identity: every
/// registered annotation/domain name plus the provenance expression text.
/// Computed once at server start; two servers over the same generated
/// dataset agree, any content difference disagrees.
std::string DatasetFingerprint(const Dataset& dataset);

/// The canonicalized selection: sorted de-duplicated titles/genres,
/// lower-cased substring. Criteria that differ only in list order or
/// substring case produce the same key. `SelectAll` is the literal "all".
std::string CanonicalSelectionKey(const SelectionCriteria& criteria);
std::string SelectAllKey();

/// Every knob of the request except `threads` (thread count does not
/// change results — the PR 2 determinism contract — so all thread
/// settings share cache entries), doubles in bit-exact hex.
std::string CanonicalRequestKey(const SummarizationRequest& request);

/// `fingerprint + "|" + selection_key + "|" + request_key`.
std::string SummaryCacheKey(const std::string& dataset_fingerprint,
                            const std::string& selection_key,
                            const SummarizationRequest& request);

// --- request decoding ------------------------------------------------------

/// `{"all": true}` or any of {"titles": [...], "title_substring": "...",
/// "genres": [...], "year": 1999}. Unknown fields are InvalidArgument.
/// `*select_all` is set when the body asked for the whole provenance.
Result<SelectionCriteria> SelectionCriteriaFromJson(const JsonValue& value,
                                                    bool* select_all);

/// All fields optional with SummarizationRequest's defaults: w_dist,
/// w_size, target_dist, target_size, max_steps, threads, valuation_class
/// ("dataset_default" | "cancel_single_annotation" |
/// "cancel_single_attribute"), val_func ("dataset_default" | "euclidean" |
/// "absolute_difference" | "disagreement"). Unknown fields or wrong types
/// are InvalidArgument (range checks live in
/// SummarizationRequest::Validate, not here).
Result<SummarizationRequest> SummarizationRequestFromJson(
    const JsonValue& value);

/// {"false_annotations": [...], "false_attributes": [{"attribute": "...",
/// "value": "..."}]} — both optional.
Result<Assignment> AssignmentFromJson(const JsonValue& value);

// --- response encoding -----------------------------------------------------

/// The canonical SummaryOutcome document (also `prox_cli --json`):
/// final_size, final_distance, rolled_back, equivalence_merges,
/// incremental_hits, incremental_fallbacks, steps[] (step, summary,
/// merged[], distance, size, score, num_candidates), groups[] (name,
/// members[]), expression. No timings, no ids (see file comment).
JsonValue SummaryOutcomeToJson(const SummaryOutcome& outcome,
                               const AnnotationRegistry& registry);

/// {"rows": [{"group": "...", "value": ...}], "eval_nanos": ...}.
JsonValue EvaluationReportToJson(const EvaluationReport& report);

/// {"error": {"code": "...", "message": "..."}} plus the HTTP status the
/// Status maps to (InvalidArgument → 400, NotFound → 404,
/// FailedPrecondition → 409, anything else → 500).
JsonValue StatusToJson(const Status& status);
int HttpStatusForCode(StatusCode code);

}  // namespace engine
}  // namespace prox

#endif  // PROX_ENGINE_CODEC_H_
