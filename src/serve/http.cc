#include "serve/http.h"

#include <cstdlib>

#include "common/str_util.h"

namespace prox {
namespace serve {

namespace {

/// Case-insensitive ASCII compare against an already-lower-case needle.
bool EqualsLower(std::string_view text, std::string_view lower_needle) {
  if (text.size() != lower_needle.size()) return false;
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
    if (c != lower_needle[i]) return false;
  }
  return true;
}

}  // namespace

std::string_view HttpRequest::Header(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (key == name) return value;
  }
  return {};
}

bool HttpRequest::WantsClose() const {
  if (EqualsLower(Header("connection"), "close")) return true;
  // HTTP/1.0 defaults to close unless keep-alive was asked for.
  return version == "HTTP/1.0" &&
         !EqualsLower(Header("connection"), "keep-alive");
}

const char* StatusReason(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 409: return "Conflict";
    case 413: return "Content Too Large";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 502: return "Bad Gateway";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default: return "Unknown";
  }
}

HttpResponse CannedErrorResponse(int status) {
  HttpResponse response;
  response.status = status;
  response.content_type = "application/json";
  response.body = "{\"error\":{\"code\":\"" + std::string(StatusReason(status)) +
                  "\"}}\n";
  response.close_connection = true;
  return response;
}

std::string RenderResponse(const HttpResponse& response) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    StatusReason(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  if (response.close_connection) out += "Connection: close\r\n";
  for (const auto& [key, value] : response.headers) {
    out += key + ": " + value + "\r\n";
  }
  out += "\r\n";
  out += response.body;
  return out;
}

ParseResult HttpParser::Next(HttpRequest* out) {
  if (error_status_ != 0) return ParseResult::kError;

  // Locate the end of the header block.
  size_t header_end = buffer_.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    // Oversized header blocks fail fast, before the terminator arrives.
    if (buffer_.size() > limits_.max_header_bytes) return Fail(431);
    return ParseResult::kNeedMore;
  }
  if (header_end + 4 > limits_.max_header_bytes) return Fail(431);

  std::string_view head(buffer_.data(), header_end);

  // Request line: METHOD SP TARGET SP VERSION.
  size_t line_end = head.find("\r\n");
  std::string_view request_line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);
  size_t sp1 = request_line.find(' ');
  size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
    return Fail(400);
  }
  HttpRequest request;
  request.method = std::string(request_line.substr(0, sp1));
  request.target = std::string(request_line.substr(sp1 + 1, sp2 - sp1 - 1));
  request.version = std::string(request_line.substr(sp2 + 1));
  if (request.method.empty() || request.target.empty() ||
      request.target[0] != '/' ||
      (request.version != "HTTP/1.1" && request.version != "HTTP/1.0")) {
    return Fail(400);
  }

  // Header fields.
  size_t content_length = 0;
  bool has_length = false;
  size_t cursor = line_end == std::string_view::npos ? head.size()
                                                     : line_end + 2;
  while (cursor < head.size()) {
    size_t next = head.find("\r\n", cursor);
    std::string_view line = head.substr(
        cursor, next == std::string_view::npos ? head.size() - cursor
                                               : next - cursor);
    cursor = next == std::string_view::npos ? head.size() : next + 2;
    size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) return Fail(400);
    std::string name = ToLowerAscii(line.substr(0, colon));
    if (name.find(' ') != std::string::npos ||
        name.find('\t') != std::string::npos) {
      return Fail(400);  // whitespace before the colon is forbidden
    }
    std::string value(StripWhitespace(line.substr(colon + 1)));
    if (name == "transfer-encoding") return Fail(501);
    if (name == "content-length") {
      if (has_length) return Fail(400);
      // Digits only: strtoull would accept "-1" by wrapping around.
      if (value.empty() ||
          value.find_first_not_of("0123456789") != std::string::npos) {
        return Fail(400);
      }
      char* end = nullptr;
      unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
      if (end != value.c_str() + value.size()) return Fail(400);
      content_length = static_cast<size_t>(parsed);
      has_length = true;
    }
    request.headers.emplace_back(std::move(name), std::move(value));
  }

  if (content_length > limits_.max_body_bytes) return Fail(413);

  size_t body_start = header_end + 4;
  if (buffer_.size() - body_start < content_length) {
    return ParseResult::kNeedMore;
  }
  request.body = buffer_.substr(body_start, content_length);
  buffer_.erase(0, body_start + content_length);
  *out = std::move(request);
  return ParseResult::kRequest;
}

}  // namespace serve
}  // namespace prox
