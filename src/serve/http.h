#ifndef PROX_SERVE_HTTP_H_
#define PROX_SERVE_HTTP_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace prox {
namespace serve {

/// \brief HTTP/1.1 message types and an incremental request parser.
///
/// The parser is a push API over a growing connection buffer: the server
/// appends whatever `read()` produced and asks for the next complete
/// request. Requests split across arbitrary read boundaries and multiple
/// pipelined requests in one buffer both work; the parser never blocks and
/// never copies more than the one message it returns. Only the subset the
/// PROX endpoints need is implemented: `Content-Length` bodies (no chunked
/// transfer coding — that parses to 501), no trailers, no continuation
/// lines.

/// One parsed request. Header names are lower-cased at parse time;
/// values keep their bytes (surrounding whitespace stripped).
struct HttpRequest {
  std::string method;   ///< as sent: "GET", "POST", ...
  std::string target;   ///< origin-form target, e.g. "/v1/summarize"
  std::string version;  ///< "HTTP/1.1"
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// First value of `name` (lower-case), or "" when absent.
  std::string_view Header(std::string_view name) const;
  /// True when the client asked for `Connection: close`.
  bool WantsClose() const;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
  bool close_connection = false;  ///< force `Connection: close`

  /// Extra headers rendered verbatim after the standard ones.
  std::vector<std::pair<std::string, std::string>> headers;
};

/// The reason phrase for the handful of codes the server emits
/// ("Unknown" for anything else).
const char* StatusReason(int status);

/// The canned transport-level error document both transports (and the
/// balancer) send when no handler response exists: 503 shed, 408 idle
/// mid-request, parser failures, 502 from the balancer. Shared so the
/// blocking and epoll transports stay byte-identical on every path.
HttpResponse CannedErrorResponse(int status);

/// Renders the full response message. Deterministic: no Date or Server
/// header, so equal responses are byte-identical on the wire.
std::string RenderResponse(const HttpResponse& response);

/// Outcome of one HttpParser::Next call.
enum class ParseResult {
  kRequest,     ///< a complete request was produced
  kNeedMore,    ///< buffer holds only a partial message
  kError,       ///< malformed input; see error_status() for the HTTP code
};

/// \brief Incremental HTTP/1.1 request parser over a connection buffer.
///
/// Usage: `Feed()` every chunk the socket yields, then loop `Next()` until
/// kNeedMore (or kError). Consumed bytes are discarded internally, so
/// pipelined requests parse one per Next() call. After kError the
/// connection is poisoned: the server writes `error_status()` (400
/// malformed / 431 oversized headers / 413 oversized body / 501 chunked)
/// and closes.
class HttpParser {
 public:
  struct Limits {
    size_t max_header_bytes = 16 * 1024;  ///< request line + headers
    size_t max_body_bytes = 4 * 1024 * 1024;
  };

  HttpParser() : HttpParser(Limits{}) {}
  explicit HttpParser(Limits limits) : limits_(limits) {}

  void Feed(std::string_view data) { buffer_.append(data); }

  ParseResult Next(HttpRequest* out);

  /// HTTP status describing the parse failure (set after kError).
  int error_status() const { return error_status_; }

  /// Bytes buffered but not yet consumed (tests).
  size_t buffered_bytes() const { return buffer_.size(); }

 private:
  ParseResult Fail(int status) {
    error_status_ = status;
    return ParseResult::kError;
  }

  Limits limits_;
  std::string buffer_;
  int error_status_ = 0;
};

}  // namespace serve
}  // namespace prox

#endif  // PROX_SERVE_HTTP_H_
