#ifndef PROX_SERVE_ROUTE_STATS_H_
#define PROX_SERVE_ROUTE_STATS_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"

namespace prox {
namespace serve {

/// \brief Per-endpoint latency accounting behind /metrics: a fine-grained
/// le-histogram with trace-id exemplars, rolling-window p50/p99 gauges,
/// and an SLO burn-rate gauge per route.
///
/// Observe() lands every request in
/// `prox_serve_route_duration_nanos{route=...}` (1-2-5 buckets,
/// obs::RequestLatencyBucketsNanos) and in a bounded ring of the most
/// recent latencies. ExportGauges() — called by the /metrics handler just
/// before rendering — recomputes from each ring:
///
///   prox_serve_route_latency_p50_nanos{route=...}
///   prox_serve_route_latency_p99_nanos{route=...}
///   prox_serve_route_slo_burn_rate{route=...}
///
/// Burn rate is the classic multi-window form collapsed to one window:
/// (fraction of recent requests over `slo_latency_nanos`) divided by the
/// error budget `1 - slo_target`. 1.0 means the budget is being spent
/// exactly as fast as it accrues; above 1.0 the route is burning budget
/// it does not have.
///
/// Thread-safe; Observe is called from every server worker.
class RouteStats {
 public:
  struct Options {
    size_t window = 1024;                     ///< latencies retained per route
    int64_t slo_latency_nanos = 250'000'000;  ///< 250 ms objective
    double slo_target = 0.99;  ///< fraction of requests that must meet it
  };

  RouteStats() : RouteStats(Options{}) {}
  explicit RouteStats(Options options);

  /// Records one request. `trace_id_hex` (32 lower-case hex chars, may be
  /// empty) becomes the exemplar of the landing histogram bucket.
  void Observe(const std::string& route, int64_t latency_nanos,
               std::string_view trace_id_hex);

  /// Recomputes the p50/p99 and burn-rate gauges from the current rings.
  void ExportGauges();

  const Options& options() const { return options_; }

 private:
  struct PerRoute {
    obs::Histogram* duration = nullptr;
    obs::Gauge* p50 = nullptr;
    obs::Gauge* p99 = nullptr;
    obs::Gauge* burn_rate = nullptr;
    std::vector<int64_t> ring;  ///< window of recent latencies
    size_t next = 0;            ///< ring write position once full
  };

  /// Looks up (or registers) the per-route state. Caller holds mu_.
  PerRoute& GetRouteLocked(const std::string& route);

  Options options_;
  std::mutex mu_;
  std::map<std::string, PerRoute> routes_;
};

}  // namespace serve
}  // namespace prox

#endif  // PROX_SERVE_ROUTE_STATS_H_
