#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "obs/log.h"
#include "serve/serve_metrics.h"

namespace prox {
namespace serve {

namespace {

/// Writes all of `data`, retrying short writes. MSG_NOSIGNAL turns a dead
/// peer into EPIPE instead of SIGPIPE.
bool SendAll(int fd, std::string_view data) {
  while (!data.empty()) {
    ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<size_t>(n));
  }
  return true;
}

void SendCannedResponse(int fd, int status) {
  SendAll(fd, RenderResponse(CannedErrorResponse(status)));
}

void SetRecvTimeout(int fd, int timeout_ms) {
  timeval timeout{};
  timeout.tv_sec = timeout_ms / 1000;
  timeout.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
}

}  // namespace

HttpServer::HttpServer(Options options, Handler handler)
    : options_(std::move(options)), handler_(std::move(handler)) {}

HttpServer::~HttpServer() { Stop(); }

Status HttpServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("server already started");
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal("socket(): " + std::string(std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad listen address: " + options_.host);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status status = Status::Internal("bind(" + options_.host + ":" +
                                     std::to_string(options_.port) +
                                     "): " + std::strerror(errno));
    ::close(fd);
    return status;
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  port_ = ntohs(addr.sin_port);
  if (::listen(fd, options_.backlog) < 0) {
    Status status =
        Status::Internal("listen(): " + std::string(std::strerror(errno)));
    ::close(fd);
    return status;
  }

  // Publish the listener only once it is fully set up; Stop() takes it
  // back with exchange(-1) so close() happens exactly once.
  listen_fd_.store(fd, std::memory_order_release);
  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  int worker_count = options_.threads < 1 ? 1 : options_.threads;
  workers_.reserve(worker_count);
  for (int i = 0; i < worker_count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void HttpServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);
  // Closing the listener unblocks accept(); no new connections after this.
  int fd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
  if (acceptor_.joinable()) acceptor_.join();
  // Wake workers blocked in recv(): shutting the read side down makes
  // recv return 0, after which the worker answers what it already
  // buffered and closes. Fully received requests still complete.
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    for (int fd : active_fds_) ::shutdown(fd, SHUT_RD);
  }
  // Workers drain every admitted connection, then observe stopping_ with
  // an empty queue and exit.
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

bool HttpServer::Admit(int fd) {
  static obs::Gauge* inflight_metric = ServeInflight();
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (inflight_ >= options_.max_inflight) return false;
    ++inflight_;
    queue_.push_back(fd);
  }
  inflight_metric->Add(1.0);
  queue_cv_.notify_one();
  return true;
}

void HttpServer::AcceptLoop() {
  static obs::Counter* connections_metric = ServeConnections();
  static obs::Counter* overload_metric = ServeOverload();
  while (!stopping_.load(std::memory_order_acquire)) {
    int listen_fd = listen_fd_.load(std::memory_order_acquire);
    if (listen_fd < 0) break;  // Stop() already took the listener
    int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed by Stop(), or fatal
    }
    connections_metric->Increment();
    if (!Admit(fd)) {
      overload_metric->Increment();
      // Shed connections never reach the router, so the access-log line
      // for them is written here: status 503, shed=true, no method/path
      // or trace id (the request was never parsed).
      if (obs::AccessLogEnabled()) {
        obs::AccessLogRecord line;
        line.status = 503;
        line.shed = true;
        obs::WriteAccessLog(line);
      }
      SendCannedResponse(fd, 503);
      ::close(fd);
    }
  }
}

void HttpServer::WorkerLoop() {
  static obs::Gauge* inflight_metric = ServeInflight();
  while (true) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] {
        return !queue_.empty() || stopping_.load(std::memory_order_acquire);
      });
      if (queue_.empty()) return;  // stopping and fully drained
      fd = queue_.front();
      queue_.pop_front();
      active_fds_.push_back(fd);
    }
    ServeConnection(fd);
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      active_fds_.erase(
          std::find(active_fds_.begin(), active_fds_.end(), fd));
      --inflight_;
    }
    ::close(fd);
    inflight_metric->Add(-1.0);
  }
}

void HttpServer::ServeConnection(int fd) {
  static obs::Counter* idle_reaped_metric = ServeIdleReaped();
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  HttpParser parser(options_.limits);
  char buffer[16 * 1024];
  // The receive timeout is re-armed before every recv to match the
  // connection's state: the longer idle budget between requests, the
  // shorter read budget once a request started arriving. -1 forces the
  // first setsockopt.
  int armed_timeout_ms = -1;
  while (true) {
    // Answer everything already buffered (pipelining) before reading.
    HttpRequest request;
    ParseResult result;
    while ((result = parser.Next(&request)) == ParseResult::kRequest) {
      HttpResponse response = handler_(request);
      bool close = request.WantsClose() || response.close_connection ||
                   stopping_.load(std::memory_order_acquire);
      response.close_connection = close;
      if (!SendAll(fd, RenderResponse(response))) return;
      if (close) return;
    }
    if (result == ParseResult::kError) {
      SendCannedResponse(fd, parser.error_status());
      return;
    }
    if (stopping_.load(std::memory_order_acquire) &&
        parser.buffered_bytes() == 0) {
      // Drained: don't wait for more requests on an idle keep-alive
      // connection while the server shuts down.
      return;
    }
    const bool mid_request = parser.buffered_bytes() > 0;
    const int want_timeout_ms =
        mid_request ? options_.read_timeout_ms : options_.idle_timeout_ms;
    if (want_timeout_ms != armed_timeout_ms) {
      SetRecvTimeout(fd, want_timeout_ms);
      armed_timeout_ms = want_timeout_ms;
    }
    ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n == 0) return;  // client closed
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Timeout. Mid-request silence is the client's fault (408); an
        // idle keep-alive connection is reaped silently but accounted.
        if (mid_request) {
          SendCannedResponse(fd, 408);
        } else {
          idle_reaped_metric->Increment();
        }
        return;
      }
      return;
    }
    parser.Feed(std::string_view(buffer, static_cast<size_t>(n)));
  }
}

}  // namespace serve
}  // namespace prox
