#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "common/str_util.h"

namespace prox {
namespace serve {

std::string_view ClientResponse::Header(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (key == name) return value;
  }
  return {};
}

ClientConnection::ClientConnection(ClientConnection&& other) noexcept
    : fd_(other.fd_), buffer_(std::move(other.buffer_)) {
  other.fd_ = -1;
}

ClientConnection& ClientConnection::operator=(
    ClientConnection&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    buffer_ = std::move(other.buffer_);
    other.fd_ = -1;
  }
  return *this;
}

ClientConnection::~ClientConnection() { Close(); }

void ClientConnection::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<ClientConnection> ClientConnection::Connect(const std::string& host,
                                                   int port, int timeout_ms) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal("socket(): " + std::string(std::strerror(errno)));
  }
  timeval timeout{};
  timeout.tv_sec = timeout_ms / 1000;
  timeout.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status status = Status::Internal("connect(" + host + ":" +
                                     std::to_string(port) +
                                     "): " + std::strerror(errno));
    ::close(fd);
    return status;
  }
  ClientConnection connection;
  connection.fd_ = fd;
  return connection;
}

Status ClientConnection::SendRaw(std::string_view bytes) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  while (!bytes.empty()) {
    ssize_t n = ::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal("send(): " + std::string(std::strerror(errno)));
    }
    bytes.remove_prefix(static_cast<size_t>(n));
  }
  return Status::OK();
}

Status ClientConnection::SendRequest(const std::string& method,
                                     const std::string& target,
                                     const std::string& body,
                                     const std::string& content_type) {
  std::string request = method + " " + target + " HTTP/1.1\r\n";
  request += "Host: loopback\r\n";
  if (!body.empty() || method == "POST") {
    request += "Content-Type: " + content_type + "\r\n";
    request += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  request += "\r\n";
  request += body;
  return SendRaw(request);
}

Result<ClientResponse> ClientConnection::ReadResponse() {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  char chunk[16 * 1024];
  while (true) {
    size_t header_end = buffer_.find("\r\n\r\n");
    if (header_end != std::string::npos) {
      // Parse the status line + headers, then wait for the full body.
      std::string_view head(buffer_.data(), header_end);
      size_t line_end = head.find("\r\n");
      std::string_view status_line =
          line_end == std::string_view::npos ? head : head.substr(0, line_end);
      // "HTTP/1.1 NNN Reason"
      size_t sp = status_line.find(' ');
      if (sp == std::string_view::npos) {
        return Status::Internal("malformed status line");
      }
      ClientResponse response;
      response.status =
          std::atoi(std::string(status_line.substr(sp + 1)).c_str());

      size_t content_length = 0;
      size_t cursor =
          line_end == std::string_view::npos ? head.size() : line_end + 2;
      while (cursor < head.size()) {
        size_t next = head.find("\r\n", cursor);
        std::string_view line = head.substr(
            cursor, next == std::string_view::npos ? head.size() - cursor
                                                   : next - cursor);
        cursor = next == std::string_view::npos ? head.size() : next + 2;
        size_t colon = line.find(':');
        if (colon == std::string_view::npos) continue;
        std::string name = ToLowerAscii(line.substr(0, colon));
        std::string value(StripWhitespace(line.substr(colon + 1)));
        if (name == "content-length") {
          content_length = static_cast<size_t>(
              std::strtoull(value.c_str(), nullptr, 10));
        }
        response.headers.emplace_back(std::move(name), std::move(value));
      }

      size_t body_start = header_end + 4;
      if (buffer_.size() - body_start >= content_length) {
        response.body = buffer_.substr(body_start, content_length);
        buffer_.erase(0, body_start + content_length);
        return response;
      }
    }
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) return Status::Internal("connection closed mid-response");
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal("recv(): " + std::string(std::strerror(errno)));
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

Result<ClientResponse> Fetch(const std::string& host, int port,
                             const std::string& method,
                             const std::string& target,
                             const std::string& body, int timeout_ms) {
  PROX_ASSIGN_OR_RETURN(ClientConnection connection,
                        ClientConnection::Connect(host, port, timeout_ms));
  PROX_RETURN_NOT_OK(connection.SendRequest(method, target, body));
  return connection.ReadResponse();
}

}  // namespace serve
}  // namespace prox
