#ifndef PROX_SERVE_SERVER_H_
#define PROX_SERVE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "serve/http.h"

namespace prox {
namespace serve {

/// \brief A dependency-free embedded HTTP/1.1 server: POSIX sockets, one
/// blocking acceptor thread, a fixed pool of worker threads, and a bounded
/// admission queue with 503 overload shedding.
///
/// Life cycle: construct with a handler, `Start()`, serve, `Stop()`.
/// Stop is a graceful drain — the listener closes first (no new
/// connections), then workers finish every admitted connection before
/// joining. `prox_server` wires SIGINT to Stop(), so Ctrl-C drains
/// in-flight requests and exits 0.
///
/// Admission control: at most `max_inflight` connections are admitted
/// (queued + being served) at once. The acceptor sheds connection
/// `max_inflight + 1` with a canned `503 Service Unavailable` and counts
/// it in `prox_serve_overload_total` — the queue is bounded, so slow
/// handlers translate into fast 503s instead of unbounded memory.
///
/// Connections are HTTP/1.1 keep-alive: each worker loops parse → handle
/// → respond until the client closes, sends `Connection: close`, errors,
/// or the read timeout fires (408). Pipelined requests in one buffer are
/// answered in order. Parse failures get the parser's status (400 / 413 /
/// 431 / 501) and close the connection.
///
/// Metrics (docs/OBSERVABILITY.md): `prox_serve_connections_total`,
/// `prox_serve_overload_total`, `prox_serve_inflight`, and per-request
/// series recorded by the handler (router.cc).
class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  struct Options {
    std::string host = "127.0.0.1";
    int port = 0;  ///< 0 = ephemeral; see port() after Start()
    int threads = 4;
    int max_inflight = 64;
    int backlog = 128;
    /// Mid-request budget: a connection with a partially received request
    /// gets a 408 when no byte arrives for this long.
    int read_timeout_ms = 5000;
    /// Keep-alive budget: an idle connection (no request in flight, empty
    /// parse buffer) is silently reaped after this long, counted in
    /// `prox_serve_idle_reaped_total`. Before this knob existed an idle
    /// connection pinned its worker for read_timeout_ms per wait with no
    /// accounting at all.
    int idle_timeout_ms = 15000;
    HttpParser::Limits limits;
  };

  HttpServer(Options options, Handler handler);
  ~HttpServer();  ///< calls Stop()

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds, listens and spawns the acceptor + workers. Fails with
  /// Internal when the socket can't be bound.
  Status Start();

  /// Graceful drain (see class comment). Idempotent; safe to call from a
  /// signal-watcher thread.
  void Stop();

  /// The bound port (resolves port 0 requests). Valid after Start().
  int port() const { return port_; }

  bool running() const { return running_.load(std::memory_order_acquire); }

 private:
  void AcceptLoop();
  void WorkerLoop();
  void ServeConnection(int fd);
  bool Admit(int fd);

  Options options_;
  Handler handler_;

  /// Atomic because Stop() closes and clears it while AcceptLoop() is
  /// blocked in accept() on it.
  std::atomic<int> listen_fd_{-1};
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<int> queue_;
  int inflight_ = 0;  ///< admitted connections (queued + active)
  /// Connections currently inside ServeConnection. Stop() shuts their
  /// read side down so workers blocked in recv() wake promptly, finish
  /// the requests they already received, and exit.
  std::vector<int> active_fds_;

  std::thread acceptor_;
  std::vector<std::thread> workers_;
};

}  // namespace serve
}  // namespace prox

#endif  // PROX_SERVE_SERVER_H_
